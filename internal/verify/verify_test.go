package verify

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

// mapScan adapts a plain map to ScanFunc for tests.
func mapScan(m map[uint64]uint64, mu *sync.Mutex) ScanFunc {
	return func(lo, hi uint64, fn func(k, v uint64) bool) error {
		if mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		keys := make([]uint64, 0, len(m))
		for k := range m {
			if k >= lo && k <= hi {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if !fn(k, m[k]) {
				return nil
			}
		}
		return nil
	}
}

func TestBucketSpanPartition(t *testing.T) {
	for _, nb := range []int{1, 2, 64, 4096} {
		lo, _ := BucketSpan(0, nb)
		if lo != 0 {
			t.Fatalf("nb=%d: first bucket starts at %d", nb, lo)
		}
		_, hi := BucketSpan(nb-1, nb)
		if hi != ^uint64(0) {
			t.Fatalf("nb=%d: last bucket ends at %d", nb, hi)
		}
		for b := 0; b < nb-1; b++ {
			_, hi := BucketSpan(b, nb)
			lo2, _ := BucketSpan(b+1, nb)
			if hi+1 != lo2 {
				t.Fatalf("nb=%d: gap between buckets %d and %d", nb, b, b+1)
			}
			if BucketOf(hi, nb) != b || BucketOf(lo2, nb) != b+1 {
				t.Fatalf("nb=%d: BucketOf disagrees with BucketSpan at %d", nb, b)
			}
		}
	}
}

// TestStreamMatchesOverlay pins the core determinism contract: the
// checkpoint-path StreamHasher and the incremental Overlay must agree
// on the root of identical content.
func TestStreamMatchesOverlay(t *testing.T) {
	m := map[uint64]uint64{}
	var x uint64 = 1
	for i := 0; i < 5000; i++ {
		x *= 0x9E3779B97F4A7C15
		m[x] = x ^ 0xABCD
	}
	nb := 256
	sh := NewStreamHasher(nb)
	if err := mapScan(m, nil)(0, ^uint64(0), func(k, v uint64) bool {
		sh.Add(k, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := sh.Root()

	ov := NewOverlay(nb, mapScan(m, nil))
	got, err := ov.Root()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("overlay root %x != stream root %x", got, want)
	}

	// Any single change must change the root; undoing it must restore.
	m[42] = 1
	ov.MarkKey(42)
	changed, _ := ov.Root()
	if changed == want {
		t.Fatal("root did not change after a mutation")
	}
	delete(m, 42)
	ov.MarkKey(42)
	back, _ := ov.Root()
	if back != want {
		t.Fatal("root did not return after undoing the mutation")
	}
}

// TestIncrementalOnlyRehashesDirty pins the maintenance economy: after
// the initial build, one mutation costs one bucket re-hash.
func TestIncrementalOnlyRehashesDirty(t *testing.T) {
	m := map[uint64]uint64{1: 1, 2: 2, 1 << 60: 3}
	ov := NewOverlay(64, mapScan(m, nil))
	if _, err := ov.Root(); err != nil {
		t.Fatal(err)
	}
	before := ov.Rehashed.Load()
	m[3] = 3
	ov.MarkKey(3)
	if _, err := ov.Root(); err != nil {
		t.Fatal(err)
	}
	if n := ov.Rehashed.Load() - before; n != 1 {
		t.Fatalf("one mutation re-hashed %d buckets, want 1", n)
	}
}

func buildProof(t *testing.T, maps []map[uint64]uint64, nb int, key uint64) *Proof {
	t.Helper()
	shards := len(maps)
	si := ShardOf(key, shards)
	roots := make([]Hash, shards)
	var ov *Overlay
	for i, m := range maps {
		o := NewOverlay(nb, mapScan(m, nil))
		r, err := o.Root()
		if err != nil {
			t.Fatal(err)
		}
		roots[i] = r
		if i == si {
			ov = o
		}
	}
	b := BucketOf(key, nb)
	lo, hi := BucketSpan(b, nb)
	p := &Proof{Shards: shards, ShardIdx: si, Buckets: nb, Bucket: b,
		ShardRoots: roots, Siblings: ov.LeafPath(b)}
	if err := mapScan(maps[si], nil)(lo, hi, func(k, v uint64) bool {
		p.Keys = append(p.Keys, k)
		p.Vals = append(p.Vals, v)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProofRoundTripAndVerify(t *testing.T) {
	maps := []map[uint64]uint64{
		{10: 100, 20: 200},
		{0x6000000000000000: 7, 0x6000000000000005: 8},
		{0xF000000000000000: 9},
	}
	for i, m := range maps {
		for k := range m {
			if ShardOf(k, len(maps)) != i {
				t.Fatalf("fixture: key %#x not in shard %d", k, i)
			}
		}
	}
	nb := 128
	roots := make([]Hash, len(maps))
	for i, m := range maps {
		o := NewOverlay(nb, mapScan(m, nil))
		roots[i], _ = o.Root()
	}
	trusted := CombineShards(roots, nb)

	for _, tc := range []struct {
		key     uint64
		present bool
		val     uint64
	}{
		{10, true, 100}, {20, true, 200}, {0x6000000000000005, true, 8}, {15, false, 0}, {1 << 63, false, 0},
	} {
		p := buildProof(t, maps, nb, tc.key)
		enc := EncodeProof(nil, p)
		dec, err := DecodeProof(enc)
		if err != nil {
			t.Fatalf("key %d: decode: %v", tc.key, err)
		}
		v, present, err := dec.Verify(tc.key, trusted)
		if err != nil {
			t.Fatalf("key %d: verify: %v", tc.key, err)
		}
		if present != tc.present || v != tc.val {
			t.Fatalf("key %d: got (%d,%v), want (%d,%v)", tc.key, v, present, tc.val, tc.present)
		}
	}
}

// TestProofTamperRejected is the acceptance property behind
// client.VerifiedGet: any bit the server lies about must fail
// verification against the pinned root.
func TestProofTamperRejected(t *testing.T) {
	maps := []map[uint64]uint64{{10: 100, 20: 200}, {1 << 63: 7}}
	nb := 64
	roots := make([]Hash, len(maps))
	for i, m := range maps {
		o := NewOverlay(nb, mapScan(m, nil))
		roots[i], _ = o.Root()
	}
	trusted := CombineShards(roots, nb)
	key := uint64(10)

	tampers := []struct {
		name string
		mut  func(p *Proof)
	}{
		{"value lie", func(p *Proof) { p.Vals[0] ^= 1 }},
		{"drop pair (fake exclusion)", func(p *Proof) { p.Keys = p.Keys[1:]; p.Vals = p.Vals[1:] }},
		{"extra pair (fake inclusion)", func(p *Proof) {
			p.Keys = append(p.Keys, p.Keys[len(p.Keys)-1]+1)
			p.Vals = append(p.Vals, 1)
		}},
		{"sibling swap", func(p *Proof) {
			if len(p.Siblings) > 1 {
				p.Siblings[0], p.Siblings[1] = p.Siblings[1], p.Siblings[0]
			} else {
				p.Siblings[0][0] ^= 1
			}
		}},
		{"foreign shard root", func(p *Proof) { p.ShardRoots[1][5] ^= 1 }},
		{"wrong bucket", func(p *Proof) { p.Bucket ^= 1 }},
	}
	for _, tc := range tampers {
		p := buildProof(t, maps, nb, key)
		tc.mut(p)
		// Tampered proofs may also fail re-encoding checks; go through
		// the codec exactly as a client would.
		dec, err := DecodeProof(EncodeProof(nil, p))
		if err != nil {
			continue // rejected at decode: also a pass
		}
		if _, _, err := dec.Verify(key, trusted); err == nil {
			t.Fatalf("%s: tampered proof verified", tc.name)
		} else if !errors.Is(err, ErrBadProof) && !errors.Is(err, ErrRootMismatch) {
			t.Fatalf("%s: unexpected error class %v", tc.name, err)
		}
	}
}

func TestDecodeProofNeverPanics(t *testing.T) {
	cases := [][]byte{
		nil, {}, {1}, make([]byte, 15), make([]byte, 16), make([]byte, 1000),
	}
	// A valid proof truncated at every length.
	p := buildProof(t, []map[uint64]uint64{{1: 2, 3: 4}}, 16, 1)
	enc := EncodeProof(nil, p)
	for i := range enc {
		cases = append(cases, enc[:i])
	}
	for _, c := range cases {
		_, _ = DecodeProof(c) // must not panic
	}
	if _, err := DecodeProof(enc); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}
