package verify

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Proof is the server's evidence for one key: the complete pair list
// of the key's bucket in its owning shard, the sibling hashes that
// fold that bucket's leaf to the shard root, and every shard root. A
// verifier recomputes the leaf from the pairs, folds it up the
// siblings, substitutes the result into the shard roots, combines
// them into an engine root, and compares that against a root it
// trusts — the proof itself carries no authority, only consistency.
//
// The same proof shows inclusion (the key is listed, with its value)
// and exclusion (the key is absent from the one bucket that could
// hold it).
type Proof struct {
	Shards     int    // engine shard count
	ShardIdx   int    // shard the key maps to
	Buckets    int    // nb: buckets per shard
	Bucket     int    // bucket the key maps to
	ShardRoots []Hash // one root per shard, in shard order
	Siblings   []Hash // fold path, bottom-up: Depth(nb) hashes
	Keys       []uint64
	Vals       []uint64 // parallel to Keys: the bucket's full pair list
}

// Proof decoding limits: a hostile payload must never drive a large
// allocation before its length has paid for it.
const (
	maxProofShards = 4096
	maxProofDepth  = 24 // log2(MaxBuckets)
)

// ErrBadProof reports a proof that is malformed or internally
// inconsistent (its pairs do not fold to its own roots).
var ErrBadProof = errors.New("verify: malformed or inconsistent proof")

// ErrRootMismatch reports a well-formed proof whose engine root is not
// the root the verifier trusts — the server's state is not the pinned
// state.
var ErrRootMismatch = errors.New("verify: proof root does not match pinned root")

// EncodeProof appends the wire form of p to b:
//
//	shards u32 | shardIdx u32 | nb u32 | bucket u32 |
//	shards × root [32] | depth u8 | depth × sibling [32] |
//	npairs u32 | npairs × (key u64 | value u64)
func EncodeProof(b []byte, p *Proof) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Shards))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.ShardIdx))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Buckets))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.Bucket))
	for i := range p.ShardRoots {
		b = append(b, p.ShardRoots[i][:]...)
	}
	b = append(b, byte(len(p.Siblings)))
	for i := range p.Siblings {
		b = append(b, p.Siblings[i][:]...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.Keys)))
	for i := range p.Keys {
		b = binary.LittleEndian.AppendUint64(b, p.Keys[i])
		b = binary.LittleEndian.AppendUint64(b, p.Vals[i])
	}
	return b
}

// DecodeProof parses the wire form. It never panics on corrupt input
// and bounds every allocation by the payload that backs it.
func DecodeProof(b []byte) (*Proof, error) {
	if len(b) < 16 {
		return nil, ErrBadProof
	}
	p := &Proof{
		Shards:   int(binary.LittleEndian.Uint32(b[0:4])),
		ShardIdx: int(binary.LittleEndian.Uint32(b[4:8])),
		Buckets:  int(binary.LittleEndian.Uint32(b[8:12])),
		Bucket:   int(binary.LittleEndian.Uint32(b[12:16])),
	}
	b = b[16:]
	if p.Shards < 1 || p.Shards > maxProofShards ||
		p.ShardIdx < 0 || p.ShardIdx >= p.Shards ||
		!ValidBuckets(p.Buckets) ||
		p.Bucket < 0 || p.Bucket >= p.Buckets {
		return nil, ErrBadProof
	}
	if len(b) < p.Shards*HashSize+1 {
		return nil, ErrBadProof
	}
	p.ShardRoots = make([]Hash, p.Shards)
	for i := range p.ShardRoots {
		copy(p.ShardRoots[i][:], b[i*HashSize:])
	}
	b = b[p.Shards*HashSize:]
	depth := int(b[0])
	b = b[1:]
	if depth != Depth(p.Buckets) || depth > maxProofDepth || len(b) < depth*HashSize+4 {
		return nil, ErrBadProof
	}
	p.Siblings = make([]Hash, depth)
	for i := range p.Siblings {
		copy(p.Siblings[i][:], b[i*HashSize:])
	}
	b = b[depth*HashSize:]
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	b = b[4:]
	if n != len(b)/16 || len(b) != n*16 {
		return nil, ErrBadProof
	}
	p.Keys = make([]uint64, n)
	p.Vals = make([]uint64, n)
	for i := 0; i < n; i++ {
		p.Keys[i] = binary.LittleEndian.Uint64(b[i*16:])
		p.Vals[i] = binary.LittleEndian.Uint64(b[i*16+8:])
	}
	return p, nil
}

// Root recomputes the engine root the proof commits to: leaf from the
// pair list, folded up the siblings into the shard root slot, then the
// shard combination. It errs if the fold does not land on the shard
// root the proof itself lists — such a proof is self-contradictory and
// proves nothing.
func (p *Proof) Root() (Hash, error) {
	h := PathRoot(LeafOf(p.Keys, p.Vals), p.Bucket, p.Siblings)
	if h != p.ShardRoots[p.ShardIdx] {
		return Hash{}, fmt.Errorf("%w: fold does not reach the listed shard root", ErrBadProof)
	}
	return CombineShards(p.ShardRoots, p.Buckets), nil
}

// PathRoot folds a leaf hash up its sibling path (bottom-up, idx the
// leaf's bucket index) to the shard root — the shared step of proof
// construction and proof verification.
func PathRoot(leaf Hash, idx int, sibs []Hash) Hash {
	h := leaf
	for _, sib := range sibs {
		if idx&1 == 1 {
			h = Combine(sib, h)
		} else {
			h = Combine(h, sib)
		}
		idx >>= 1
	}
	return h
}

// Lookup verifies the proof applies to key and answers it: the key's
// shard and bucket must be the ones the proof covers, the pair list
// must be strictly ascending and confined to the bucket, and then the
// list settles presence. It does not compare against any trusted
// root — callers combine it with Root.
func (p *Proof) Lookup(key uint64) (value uint64, present bool, err error) {
	if ShardOf(key, p.Shards) != p.ShardIdx || BucketOf(key, p.Buckets) != p.Bucket {
		return 0, false, fmt.Errorf("%w: proof covers the wrong shard or bucket for the key", ErrBadProof)
	}
	for i := range p.Keys {
		if i > 0 && p.Keys[i] <= p.Keys[i-1] {
			return 0, false, fmt.Errorf("%w: pair list not strictly ascending", ErrBadProof)
		}
		if BucketOf(p.Keys[i], p.Buckets) != p.Bucket {
			return 0, false, fmt.Errorf("%w: pair outside the proof's bucket", ErrBadProof)
		}
		if p.Keys[i] == key {
			value, present = p.Vals[i], true
		}
	}
	return value, present, nil
}

// Verify is the full client-side check: the proof must be
// self-consistent, must cover key, and must fold to trusted. It
// returns the key's value and presence on success, ErrRootMismatch
// when the proof is sound but describes a different state, and
// ErrBadProof otherwise.
func (p *Proof) Verify(key uint64, trusted Hash) (value uint64, present bool, err error) {
	value, present, err = p.Lookup(key)
	if err != nil {
		return 0, false, err
	}
	root, err := p.Root()
	if err != nil {
		return 0, false, err
	}
	if root != trusted {
		return 0, false, ErrRootMismatch
	}
	return value, present, nil
}
