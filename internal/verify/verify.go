// Package verify is the opt-in integrity layer (Options.Verified): a
// deterministic hash tree over the index's key/value pairs whose root
// commits to the exact state of every shard. The design follows the
// transparency-log shape of rsc's MPT sketch — publish one root per
// database state, let clients and auditors check answers against it —
// adapted to the repo's fixed-width keyspace:
//
//   - The 2^64 key space is cut into nb equal **buckets** (nb a power
//     of two, default 4096): bucket(k) = k >> (64 − log2 nb). Each
//     engine hashes the pairs it stores per bucket into a **leaf
//     hash**, folds the nb leaves pairwise into a perfect binary tree,
//     and the fold's apex is the **shard root**.
//   - The shard roots combine, in shard order, into one **engine
//     root** — the value OpRoot serves, /metrics exposes, checkpoints
//     persist, and followers compare.
//   - An inclusion/exclusion **proof** for key k is the full pair list
//     of k's bucket plus the log2(nb) sibling hashes up the fold plus
//     every shard root: a verifier recomputes the leaf from the pairs,
//     folds to the shard root, combines to the engine root, and
//     compares against a root it trusts. The pair list answers
//     presence (k is listed with its value) and absence (it is not)
//     with the same evidence.
//
// Everything here is pure computation over stdlib crypto — the package
// deliberately imports neither the tree nor the wire layer, so the
// shard engine (which feeds it scans) and the wire codec's fuzz tests
// (which feed it garbage) can both depend on it without cycles.
package verify

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
)

// HashSize is the byte length of every hash in the tree (SHA-256).
const HashSize = sha256.Size

// Hash is one node of the hash tree.
type Hash = [HashSize]byte

// DefaultBuckets is the bucket count used when Options.VerifyBuckets
// is zero: fine enough that a proof's pair list stays small (pairs are
// ~total/4096), coarse enough that the overlay is 128 KiB per shard.
const DefaultBuckets = 4096

// MaxBuckets bounds bucket counts accepted from configuration and from
// the wire (a proof names its nb; a decoder must not let a hostile
// value drive allocation).
const MaxBuckets = 1 << 24

// domain separators: leaves and interior nodes must never collide.
const (
	tagLeaf     = 0x00
	tagInterior = 0x01
)

// rootLabel domain-separates the final shard-root combination.
var rootLabel = []byte("blinkroot/v1")

// ValidBuckets reports whether nb is a usable bucket count: a power of
// two in [1, MaxBuckets].
func ValidBuckets(nb int) bool {
	return nb >= 1 && nb <= MaxBuckets && nb&(nb-1) == 0
}

// Depth returns log2(nb) — the sibling count of a proof path. nb must
// be a valid bucket count.
func Depth(nb int) int {
	d := 0
	for 1<<d < nb {
		d++
	}
	return d
}

// BucketOf maps a key to its bucket: the top log2(nb) bits of the key,
// so buckets are contiguous key ranges and a key-ordered scan visits
// them in order.
func BucketOf(k uint64, nb int) int {
	return int(k >> (64 - uint(Depth(nb))))
}

// BucketSpan returns the inclusive key range bucket b covers.
func BucketSpan(b, nb int) (lo, hi uint64) {
	shift := 64 - uint(Depth(nb))
	lo = uint64(b) << shift
	if b == nb-1 {
		return lo, ^uint64(0)
	}
	return lo, uint64(b+1)<<shift - 1
}

// ShardOf maps a key to its shard index under the router's static
// range partitioning (stride = ceil(2^64 / shards)) — the same formula
// the server uses, so a proof verifier can check that the shard a
// proof names is the shard that must own the key.
func ShardOf(k uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	stride := ^uint64(0)/uint64(shards) + 1
	return int(k / stride)
}

// LeafHasher incrementally hashes one bucket's pairs, fed in ascending
// key order. The zero value is an empty bucket; Sum resets it so one
// hasher can walk bucket after bucket.
type LeafHasher struct {
	st hash.Hash
}

// Add folds one pair into the leaf.
func (l *LeafHasher) Add(k, v uint64) {
	if l.st == nil {
		l.st = sha256.New()
		l.st.Write([]byte{tagLeaf})
	}
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], k)
	binary.LittleEndian.PutUint64(b[8:16], v)
	l.st.Write(b[:])
}

// Sum finalizes the leaf hash and resets the hasher to empty.
func (l *LeafHasher) Sum() Hash {
	if l.st == nil {
		return EmptyLeaf()
	}
	var out Hash
	l.st.Sum(out[:0])
	l.st = nil
	return out
}

// emptyLeaf is H(tagLeaf): the hash of a bucket with no pairs.
var emptyLeaf = sha256.Sum256([]byte{tagLeaf})

// EmptyLeaf returns the hash of an empty bucket.
func EmptyLeaf() Hash { return emptyLeaf }

// LeafOf hashes a complete pair list (ascending key order) in one call.
func LeafOf(keys, vals []uint64) Hash {
	var l LeafHasher
	for i := range keys {
		l.Add(keys[i], vals[i])
	}
	return l.Sum()
}

// Combine hashes two sibling nodes into their parent.
func Combine(l, r Hash) Hash {
	var b [1 + 2*HashSize]byte
	b[0] = tagInterior
	copy(b[1:], l[:])
	copy(b[1+HashSize:], r[:])
	return sha256.Sum256(b[:])
}

// FoldLeaves folds nb leaf hashes pairwise into the shard root. The
// slice is consumed as scratch; pass a copy if it must survive.
func FoldLeaves(leaves []Hash) Hash {
	n := len(leaves)
	if n == 0 {
		return EmptyLeaf()
	}
	for n > 1 {
		for i := 0; i < n; i += 2 {
			leaves[i/2] = Combine(leaves[i], leaves[i+1])
		}
		n /= 2
	}
	return leaves[0]
}

// CombineShards folds the per-shard roots into the engine root — the
// published value. It commits to the shard count and bucket count, so
// configurations that would bucket keys differently can never share a
// root by accident.
func CombineShards(shardRoots []Hash, nb int) Hash {
	h := sha256.New()
	h.Write(rootLabel)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(shardRoots)))
	binary.LittleEndian.PutUint32(b[4:8], uint32(nb))
	h.Write(b[:])
	for i := range shardRoots {
		h.Write(shardRoots[i][:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// StreamHasher computes one shard root from a key-ordered,
// exactly-once pair stream — the checkpoint/StreamState scan. Feed it
// every pair in ascending key order, then Root.
type StreamHasher struct {
	nb     int
	cur    int
	leaf   LeafHasher
	leaves []Hash
}

// NewStreamHasher prepares a hasher for nb buckets (which must be a
// valid bucket count).
func NewStreamHasher(nb int) *StreamHasher {
	s := &StreamHasher{nb: nb, leaves: make([]Hash, nb)}
	for i := range s.leaves {
		s.leaves[i] = emptyLeaf
	}
	return s
}

// Add folds one pair; keys must arrive in strictly ascending order
// (the scan contract Engine.StreamState pins).
func (s *StreamHasher) Add(k, v uint64) {
	b := BucketOf(k, s.nb)
	if b != s.cur {
		s.leaves[s.cur] = s.leaf.Sum()
		s.cur = b
	}
	s.leaf.Add(k, v)
}

// Root finalizes and returns the shard root. The hasher must not be
// reused afterwards.
func (s *StreamHasher) Root() Hash {
	s.leaves[s.cur] = s.leaf.Sum()
	return FoldLeaves(s.leaves)
}
