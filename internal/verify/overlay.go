package verify

import (
	"sync"
	"sync/atomic"
	"time"
)

// ScanFunc visits every pair with lo ≤ key ≤ hi in ascending key
// order — the engine supplies its tree's Range so the overlay never
// has to import it.
type ScanFunc func(lo, hi uint64, fn func(k, v uint64) bool) error

// Overlay maintains one shard's leaf hashes incrementally: mutations
// mark the touched bucket dirty (an atomic bit, off the hot path's
// critical section cost), and Rehash — called by the background hasher
// and by any root reader — re-scans only dirty buckets. The ordering
// that keeps this sound: Rehash clears a bucket's dirty flag *before*
// scanning it, and mutators mark *after* their tree change is applied,
// so a change that races a scan either lands in the scan or re-dirties
// the bucket for the next pass. Nothing is ever lost.
type Overlay struct {
	nb    int
	scan  ScanFunc
	dirty []atomic.Bool

	mu     sync.Mutex // guards leaves
	leaves []Hash

	// Rehashed counts buckets re-hashed since open — the /metrics and
	// E17 visibility into maintenance work.
	Rehashed atomic.Uint64
}

// NewOverlay builds an overlay of nb buckets (a valid bucket count)
// over scan, with every bucket dirty so the first Rehash builds the
// full tree.
func NewOverlay(nb int, scan ScanFunc) *Overlay {
	o := &Overlay{nb: nb, scan: scan, dirty: make([]atomic.Bool, nb), leaves: make([]Hash, nb)}
	for i := range o.leaves {
		o.leaves[i] = EmptyLeaf()
	}
	o.MarkAll()
	return o
}

// Buckets returns nb.
func (o *Overlay) Buckets() int { return o.nb }

// MarkKey flags the key's bucket for re-hashing. Call it after the
// mutation is applied to the tree (see the ordering note on Overlay).
func (o *Overlay) MarkKey(k uint64) {
	o.dirty[BucketOf(k, o.nb)].Store(true)
}

// MarkAll flags every bucket — the bulk-load / recovery / wipe path.
func (o *Overlay) MarkAll() {
	for i := range o.dirty {
		o.dirty[i].Store(true)
	}
}

// Rehash re-hashes every currently dirty bucket and reports how many
// it did. Safe to call concurrently with mutators and with itself
// (concurrent calls may duplicate work, never lose it).
func (o *Overlay) Rehash() (int, error) {
	done := 0
	for b := range o.dirty {
		if !o.dirty[b].CompareAndSwap(true, false) {
			continue
		}
		lo, hi := BucketSpan(b, o.nb)
		var leaf LeafHasher
		if err := o.scan(lo, hi, func(k, v uint64) bool {
			leaf.Add(k, v)
			return true
		}); err != nil {
			o.dirty[b].Store(true) // not hashed; keep it pending
			return done, err
		}
		h := leaf.Sum()
		o.mu.Lock()
		o.leaves[b] = h
		o.mu.Unlock()
		done++
	}
	o.Rehashed.Add(uint64(done))
	return done, nil
}

// Root re-hashes whatever is dirty and folds the leaves into the
// shard root. Concurrent mutations make the result a fuzzy (but
// recent) root; quiesced, it is exact and deterministic.
func (o *Overlay) Root() (Hash, error) {
	if _, err := o.Rehash(); err != nil {
		return Hash{}, err
	}
	o.mu.Lock()
	scratch := make([]Hash, o.nb)
	copy(scratch, o.leaves)
	o.mu.Unlock()
	return FoldLeaves(scratch), nil
}

// LeafPath returns, for bucket b, the sibling hashes of its fold path
// (bottom-up) computed from the current leaves, with the leaf slot b
// itself *excluded* — the caller pairs it with a leaf it computed from
// a pair list, which keeps a proof self-consistent even if the bucket
// moves between the list scan and this call.
func (o *Overlay) LeafPath(b int) []Hash {
	o.mu.Lock()
	scratch := make([]Hash, o.nb)
	copy(scratch, o.leaves)
	o.mu.Unlock()
	depth := Depth(o.nb)
	sibs := make([]Hash, 0, depth)
	idx := b
	n := o.nb
	for n > 1 {
		sibs = append(sibs, scratch[idx^1])
		for i := 0; i < n; i += 2 {
			scratch[i/2] = Combine(scratch[i], scratch[i+1])
		}
		n /= 2
		idx >>= 1
	}
	return sibs
}

// Hasher is the decoupled maintenance worker, same shape as the
// compression worker pool (internal/compress): Start launches a
// background goroutine that periodically re-hashes dirty buckets so a
// fresh root is a fold away instead of a full rescan; Stop quiesces
// it. Root readers do not depend on it for correctness — they rehash
// whatever is still dirty themselves — it just keeps the pending set
// small.
type Hasher struct {
	o     *Overlay
	every time.Duration
	stop  chan struct{}
	wg    sync.WaitGroup
}

// DefaultRehashInterval is the background re-hash cadence when the
// engine does not configure one.
const DefaultRehashInterval = 25 * time.Millisecond

// NewHasher builds a worker over o. every ≤ 0 selects the default.
func NewHasher(o *Overlay, every time.Duration) *Hasher {
	if every <= 0 {
		every = DefaultRehashInterval
	}
	return &Hasher{o: o, every: every, stop: make(chan struct{})}
}

// Start launches the background worker.
func (h *Hasher) Start() {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		tick := time.NewTicker(h.every)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				_, _ = h.o.Rehash() // scan errors resurface on Root
			}
		}
	}()
}

// Stop quiesces and waits for the worker.
func (h *Hasher) Stop() {
	close(h.stop)
	h.wg.Wait()
}
