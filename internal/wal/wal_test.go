package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
)

func nop(Record) error { return nil }

// collectApply returns an apply func appending into *out.
func collectApply(out *[]Record) func(Record) error {
	return func(r Record) error {
		*out = append(*out, r)
		return nil
	}
}

func put(k, v uint64) Record {
	return Record{Kind: KindPut, Key: base.Key(k), Value: base.Value(v)}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var last Ticket
	for i := uint64(0); i < n; i++ {
		r := put(i, i*3)
		if i%5 == 4 {
			r = Record{Kind: KindDel, Key: base.Key(i)}
		}
		last = lg.Append(r)
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	lg2, err := Open(dir, Options{}, 0, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if uint64(r.Key) != uint64(i) {
			t.Fatalf("record %d: key %d", i, r.Key)
		}
		wantKind := KindPut
		if i%5 == 4 {
			wantKind = KindDel
		}
		if r.Kind != wantKind {
			t.Fatalf("record %d: kind %d, want %d", i, r.Kind, wantKind)
		}
	}
	if got := lg2.Stats().Replayed; got != n {
		t.Fatalf("Replayed stat = %d, want %d", got, n)
	}
}

// TestTornTailEveryByte truncates a one-segment log at every byte
// boundary and checks recovery yields exactly the whole records that
// survive — the prefix-consistency contract at its finest grain.
func TestTornTailEveryByte(t *testing.T) {
	src := t.TempDir()
	lg, err := Open(src, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	var last Ticket
	for i := uint64(0); i < n; i++ {
		last = lg.Append(put(i, i+1000))
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(src)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments %v, err %v", segs, err)
	}
	data, err := os.ReadFile(segPath(src, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if want := segHeaderLen + n*recLen; len(data) != want {
		t.Fatalf("segment is %d bytes, want %d", len(data), want)
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segPath(dir, segs[0]), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []Record
		lg2, err := Open(dir, Options{}, 0, collectApply(&got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		if cut >= segHeaderLen {
			want = (cut - segHeaderLen) / recLen
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		for i, r := range got {
			if uint64(r.Key) != uint64(i) || uint64(r.Value) != uint64(i)+1000 {
				t.Fatalf("cut %d: record %d = %+v", cut, i, r)
			}
		}
		// The reopened log must keep accepting appends, and a second
		// recovery must see old prefix + new suffix.
		if err := lg2.Append(put(999, 999)).Wait(); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := lg2.Close(); err != nil {
			t.Fatal(err)
		}
		var again []Record
		lg3, err := Open(dir, Options{}, 0, collectApply(&again))
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		lg3.Close()
		if len(again) != want+1 || uint64(again[want].Key) != 999 {
			t.Fatalf("cut %d: second recovery got %d records", cut, len(again))
		}
	}
}

// TestCrashInjectionRandomized kills the committer at randomized torn-
// write offsets under concurrent appenders and verifies the recovered
// log is a per-appender prefix that covers every acknowledged record.
func TestCrashInjectionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 25; round++ {
		dir := t.TempDir()
		lg, err := Open(dir, Options{}, 0, nop)
		if err != nil {
			t.Fatal(err)
		}
		const workers = 4
		acked := make([]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(0); ; i++ {
					tk := lg.Append(put(uint64(w)<<32|i, i))
					if tk.Wait() != nil {
						return
					}
					acked[w] = i + 1
				}
			}(w)
		}
		time.Sleep(time.Duration(rng.Intn(4)+1) * time.Millisecond)
		lg.Crash(rng.Intn(3 * recLen))
		wg.Wait()

		var got []Record
		lg2, err := Open(dir, Options{}, 0, collectApply(&got))
		if err != nil {
			t.Fatalf("round %d: recovery: %v", round, err)
		}
		lg2.Close()
		// Per worker, the recovered records must be the exact sequence
		// 0,1,2,... (a prefix of its appends) and at least as long as
		// what was acknowledged.
		next := make([]uint64, workers)
		for _, r := range got {
			w := int(uint64(r.Key) >> 32)
			i := uint64(r.Key) & (1<<32 - 1)
			if w >= workers || i != next[w] {
				t.Fatalf("round %d: worker %d replayed seq %d, want %d (phantom or gap)", round, w, i, next[w])
			}
			next[w]++
		}
		for w := 0; w < workers; w++ {
			if next[w] < acked[w] {
				t.Fatalf("round %d: worker %d acked %d records but only %d recovered", round, w, acked[w], next[w])
			}
		}
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: a handful of records each.
	opts := Options{SegmentBytes: segHeaderLen + 4*recLen}
	lg, err := Open(dir, opts, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := lg.Append(put(i, i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := lg.Stats().Rotations; got == 0 {
		t.Fatal("expected rotations with tiny segments")
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("want multiple segments, got %v", segs)
	}
	var got []Record
	lg2, err := Open(dir, opts, 0, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d across segments, want %d", len(got), n)
	}
	for i, r := range got {
		if uint64(r.Key) != uint64(i) {
			t.Fatalf("order broken at %d: key %d", i, r.Key)
		}
	}
}

func TestRotateAndRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		lg.Append(put(i, i))
	}
	seg, err := lg.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(100); i < 110; i++ {
		if err := lg.Append(put(i, i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.RemoveBelow(seg); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery from startSeg must see only the post-rotation suffix.
	var got []Record
	lg2, err := Open(dir, Options{}, seg, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	if len(got) != 10 || uint64(got[0].Key) != 100 {
		t.Fatalf("post-checkpoint replay = %d records starting %v", len(got), got)
	}
}

func TestCorruptMidSegmentStopsReplay(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	var last Ticket
	for i := uint64(0); i < n; i++ {
		last = lg.Append(put(i, i))
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	segs, _ := listSegments(dir)
	path := segPath(dir, segs[0])
	data, _ := os.ReadFile(path)
	data[segHeaderLen+3*recLen+recHeaderLen] ^= 0xff // corrupt record 3's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []Record
	lg2, err := Open(dir, Options{}, 0, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	if len(got) != 3 {
		t.Fatalf("replay past corruption: got %d records, want 3", len(got))
	}
}

func TestGroupCommitAmortizes(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := lg.Append(put(uint64(w*per+i), 0)).Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := lg.Stats()
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != workers*per {
		t.Fatalf("records = %d, want %d", st.Records, workers*per)
	}
	if st.Syncs == 0 || st.Syncs > st.Records {
		t.Fatalf("syncs = %d out of range", st.Syncs)
	}
	t.Logf("group commit: %d records in %d syncs (mean %.1f, max %d)",
		st.Records, st.Syncs, st.MeanGroup(), st.MaxGroup)
}

func TestCheckpointHelpers(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := LatestCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	for _, seg := range []uint64{3, 7, 5} {
		if err := os.WriteFile(CheckpointPath(dir, seg), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seg, path, ok, err := LatestCheckpoint(dir)
	if err != nil || !ok || seg != 7 {
		t.Fatalf("latest = %d %q %v %v", seg, path, ok, err)
	}
	if err := RemoveCheckpointsBelow(dir, 7); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != filepath.Base(CheckpointPath(dir, 7)) {
		var names []string
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover checkpoints: %v", names)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(put(1, 1)).Wait(); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestNoSyncStillRecovers(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, Options{NoSync: true}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := lg.Append(put(i, i)).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()
	var got []Record
	lg2, err := Open(dir, Options{NoSync: true}, 0, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	if len(got) != 10 {
		t.Fatalf("got %d", len(got))
	}
}

func TestReplayedOrderAcrossManySegments(t *testing.T) {
	// Rotation via explicit Rotate interleaved with appends must keep
	// global record order on replay.
	dir := t.TempDir()
	lg, err := Open(dir, Options{}, 0, nop)
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for s := 0; s < 5; s++ {
		for i := 0; i < 7; i++ {
			lg.Append(put(seq, seq))
			seq++
		}
		if _, err := lg.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()
	var got []Record
	lg2, err := Open(dir, Options{}, 0, collectApply(&got))
	if err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	if uint64(len(got)) != seq {
		t.Fatalf("got %d records, want %d", len(got), seq)
	}
	for i, r := range got {
		if uint64(r.Key) != uint64(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
}
