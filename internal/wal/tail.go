package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrTruncated reports a tail position whose segment no longer exists:
// a checkpoint deleted it, so the records between the position and the
// live log are gone and the reader must fall back to a state snapshot
// (see repl's bootstrap).
var ErrTruncated = errors.New("wal: position truncated (segment removed by a checkpoint)")

// SegmentHeaderLen is the byte offset of the first record in a
// segment — the starting offset of a fresh tail position.
const SegmentHeaderLen = segHeaderLen

// TailReader reads committed records from a log directory concurrently
// with the log's own committer — the replication streamer's view of
// the WAL. It follows the same trust rule as replay: a record counts
// only when its length and CRC check out, so a half-written group
// (the committer's write racing the read) simply reads as "no more
// yet" and is retried on the next call. Rotation is followed by
// advancing to the next segment id once the current one is exhausted
// and its successor exists on disk.
//
// A TailReader is not safe for concurrent use; each follower feed owns
// one per shard.
type TailReader struct {
	dir string
	seg uint64
	off int64
	f   *os.File
	buf []byte
}

// NewTailReader positions a reader at (seg, off) in dir. The position
// is validated lazily on the first Next.
func NewTailReader(dir string, seg uint64, off int64) *TailReader {
	return &TailReader{dir: dir, seg: seg, off: off}
}

// Pos returns the reader's current position: the segment id and byte
// offset of the next unread record.
func (t *TailReader) Pos() (uint64, int64) { return t.seg, t.off }

// Close releases the open segment file. The reader may be reused; the
// next call reopens at the current position.
func (t *TailReader) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// Next reads up to max committed records at the current position and
// advances past them, following rotations. It returns the records read
// (the slice is reused across calls) — an empty result means the
// reader is caught up with the committer. ErrTruncated means the
// position's segment was deleted by a checkpoint and the caller must
// re-bootstrap from a snapshot.
func (t *TailReader) Next(max int, recs []Record) ([]Record, error) {
	for len(recs) < max {
		if err := t.open(); err != nil {
			return recs, err
		}
		n, err := t.readRecords(max-len(recs), &recs)
		if err != nil {
			return recs, err
		}
		if n > 0 {
			continue // the segment may hold more
		}
		// Caught up within this segment. If its successor exists the
		// committer has rotated away and this segment is complete.
		if _, err := os.Stat(segPath(t.dir, t.seg+1)); err != nil {
			return recs, nil // still the live segment: genuinely caught up
		}
		t.Close()
		t.seg, t.off = t.seg+1, segHeaderLen
	}
	return recs, nil
}

// open ensures the current segment file is open with a validated
// header. A file that exists but is shorter than its header is a
// segment racing its own creation: treated as "no data yet".
func (t *TailReader) open() error {
	if t.f != nil {
		return nil
	}
	if t.off < segHeaderLen {
		return fmt.Errorf("wal: tail offset %d inside segment header", t.off)
	}
	f, err := os.Open(segPath(t.dir, t.seg))
	if err != nil {
		if os.IsNotExist(err) {
			return ErrTruncated
		}
		return err
	}
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil // header not yet written; retry later
		}
		return err
	}
	if [4]byte(hdr[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != segVersion ||
		binary.LittleEndian.Uint64(hdr[8:16]) != t.seg {
		f.Close()
		return fmt.Errorf("wal: segment %d header mismatch", t.seg)
	}
	t.f = f
	return nil
}

// readRecords decodes up to max complete records at t.off, appending
// them to *recs and advancing the offset. A torn or incomplete record
// ends the read without error — it is the committer's in-flight tail.
func (t *TailReader) readRecords(max int, recs *[]Record) (int, error) {
	want := max * recLen
	if cap(t.buf) < want {
		t.buf = make([]byte, want)
	}
	b := t.buf[:want]
	n, err := t.f.ReadAt(b, t.off)
	if err != nil && !errors.Is(err, io.EOF) {
		return 0, err
	}
	b = b[:n]
	read := 0
	for read < max {
		rec, consumed, derr := decodeRecord(b)
		if derr != nil {
			break
		}
		*recs = append(*recs, rec)
		b = b[consumed:]
		t.off += int64(consumed)
		read++
	}
	return read, nil
}
