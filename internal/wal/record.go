package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"blinktree/internal/base"
)

// Kind discriminates the two physical record types every logical
// mutation normalizes to. Insert, Upsert, GetOrInsert-that-inserted,
// Update and a successful CompareAndSwap all log the resolved final
// value as a put; Delete and a successful CompareAndDelete log a del.
// Normalizing at append time is what makes replay idempotent: a put
// replays as Upsert and a del as Delete-ignoring-absence, so replaying
// a record whose effect a fuzzy checkpoint already captured is a
// harmless no-op.
type Kind uint8

// Record kinds.
const (
	// KindPut sets Key to Value.
	KindPut Kind = 1
	// KindDel removes Key.
	KindDel Kind = 2
)

// Record is one logical mutation in the log.
type Record struct {
	Kind  Kind
	Key   base.Key
	Value base.Value
}

// Record wire format (little endian):
//
//	length u32 | crc u32 | payload
//	payload = kind u8 | key u64 | value u64
//
// length counts payload bytes only; crc is CRC-32C (Castagnoli) over
// the payload. The length prefix leaves room for variable-size record
// types later (the transparent-log direction); today every payload is
// exactly payloadLen bytes and decoders reject other lengths.
const (
	recHeaderLen = 8
	payloadLen   = 17
	recLen       = recHeaderLen + payloadLen
)

// RecordLen is the on-disk byte length of one record — the unit
// replication uses to cut a Records frame exactly at a sealed-root
// position.
const RecordLen = recLen

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord encodes r onto buf.
func appendRecord(buf []byte, r Record) []byte {
	var p [payloadLen]byte
	p[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(p[1:], uint64(r.Key))
	binary.LittleEndian.PutUint64(p[9:], uint64(r.Value))
	var h [recHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], payloadLen)
	binary.LittleEndian.PutUint32(h[4:], crc32.Checksum(p[:], crcTable))
	buf = append(buf, h[:]...)
	return append(buf, p[:]...)
}

// errTorn is the internal sentinel for "stop replay here": a record
// whose header, payload or CRC does not check out, i.e. the torn tail
// of an interrupted write (or genuine corruption — the two are
// indistinguishable and both end the trusted prefix).
var errTorn = fmt.Errorf("wal: torn or corrupt record")

// decodeRecord parses the record at the front of b, returning the
// record and the bytes consumed. It returns errTorn when b holds no
// complete, CRC-valid record.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderLen {
		return Record{}, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[0:])
	if n != payloadLen || len(b) < recHeaderLen+int(n) {
		return Record{}, 0, errTorn
	}
	p := b[recHeaderLen : recHeaderLen+payloadLen]
	if crc32.Checksum(p, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, errTorn
	}
	r := Record{
		Kind:  Kind(p[0]),
		Key:   base.Key(binary.LittleEndian.Uint64(p[1:])),
		Value: base.Value(binary.LittleEndian.Uint64(p[9:])),
	}
	if r.Kind != KindPut && r.Kind != KindDel {
		return Record{}, 0, errTorn
	}
	return r, recLen, nil
}
