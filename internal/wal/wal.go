// Package wal is the durability subsystem: an append-only, segmented,
// CRC-protected record log with group commit, plus the replayer that
// reconstructs state from "checkpoint + log suffix" after a crash.
//
// The model matches the paper's storage substrate (§2.2): the only
// primitive trusted is that a page-sized write either lands or does
// not — nothing about ordering across writes survives a crash. So
// every record carries its own length and CRC-32C, and replay simply
// stops at the first record that fails validation: the torn tail of an
// interrupted group write ends the trusted prefix, which is exactly
// the set of operations the log ever acknowledged.
//
// Group commit amortizes fsync the same way ApplyBatch amortizes
// descents: appenders enqueue encoded records into the current batch
// and block on a Ticket; a single committer goroutine writes the whole
// batch with one write + one fsync and completes every ticket in it.
// While the committer syncs batch N, concurrent appenders fill batch
// N+1, so the mean group size grows with offered load and the fsync
// cost per operation shrinks accordingly.
//
// Layout of a log directory:
//
//	wal-<id>.seg          append-only record segments, id ascending
//	checkpoint-<id>.snap  snapshot covering all segments with id < <id>
//
// A checkpoint is taken by rotating to a fresh segment, streaming a
// snapshot, durably renaming it into place, and then deleting the
// segments (and older checkpoints) it covers; recovery loads the
// newest checkpoint and replays only segments at or above its id.
// Every step is crash-safe: a crash between any two of them leaves a
// directory that still recovers to a consistent state. The snapshot
// scan runs concurrently with readers and writers, but the engine
// pauses background compression for its duration (see
// shard.Engine.Checkpoint): compression can move a pair leftward
// across the scan cursor, and a pair missed that way would lose its
// only durable copy when the covered segments are deleted.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Sentinel errors.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")
	// ErrCrashed is returned to waiters whose group never committed
	// because the log crashed (or was crashed by fault injection).
	ErrCrashed = errors.New("wal: crashed before commit")
)

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 4 << 20

// Segment file header (little endian): magic | version u32 | id u64.
const (
	segHeaderLen = 16
	segVersion   = 1
)

var segMagic = [4]byte{'B', 'L', 'W', 'L'}

// Options configures a Log.
type Options struct {
	// SegmentBytes is the size past which the committer rotates to a
	// fresh segment. Default DefaultSegmentBytes.
	SegmentBytes int
	// NoSync skips fsync on group commits. The log is then crash-
	// durable only to the extent the OS flushes its own caches — useful
	// for benchmarking the logging cost separately from the sync cost,
	// never for production.
	NoSync bool
}

// Stats is a snapshot of log counters. Appends counts records enqueued;
// Records counts records committed (written and synced); Syncs counts
// group commits, so Records/Syncs is the achieved group size.
type Stats struct {
	Appends   uint64
	Records   uint64
	Syncs     uint64
	Bytes     uint64
	Rotations uint64
	Replayed  uint64
	MaxGroup  uint64
}

// MeanGroup returns the mean records per group commit.
func (s Stats) MeanGroup() float64 {
	if s.Syncs == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Syncs)
}

// Merge folds o into s the way a sharded aggregate wants it: counters
// sum, high-waters take the maximum. Living next to the struct, it
// cannot drift when Stats grows a field.
func (s *Stats) Merge(o Stats) {
	s.Appends += o.Appends
	s.Records += o.Records
	s.Syncs += o.Syncs
	s.Bytes += o.Bytes
	s.Rotations += o.Rotations
	s.Replayed += o.Replayed
	if o.MaxGroup > s.MaxGroup {
		s.MaxGroup = o.MaxGroup
	}
}

// batch is one commit group: records encoded into the shared buffer,
// completed all at once by the committer.
type batch struct {
	done chan struct{}
	err  error
}

// Ticket is an appender's claim on a group commit. Wait blocks until
// the group's write+fsync completes (or fails). The zero Ticket waits
// for nothing and returns nil, so volatile code paths can thread
// tickets without branching.
type Ticket struct {
	b   *batch
	err error
}

// Wait blocks until the ticket's group is durable.
func (t Ticket) Wait() error {
	if t.b == nil {
		return t.err
	}
	<-t.b.done
	return t.b.err
}

// Pending reports whether the ticket is attached to a commit group at
// all — false for the zero Ticket a no-op operation carries.
func (t Ticket) Pending() bool { return t.b != nil }

// Log is an append-only segmented record log with group commit. All
// methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex // guards buf, spare, cur, nrecs, closed, failed
	buf    []byte
	spare  []byte
	cur    *batch
	nrecs  int
	closed bool
	failed error

	ioMu     sync.Mutex // serializes steal+write+rotate; guards f, curSeg, segBytes
	f        *os.File
	curSeg   uint64
	segBytes int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// failAfter < 0 disables fault injection; ≥ 0 makes the next group
	// write persist at most that many bytes and then crash the log.
	failAfter atomic.Int64

	appends, records, syncs, bytes, rotations, replayed atomic.Uint64
	maxGroup                                            atomic.Uint64
}

// Open opens (creating if necessary) the log directory, replays every
// surviving record in segments with id ≥ startSeg through apply in
// append order, truncates the torn tail, and returns a log ready for
// appends. startSeg is the id recorded by the newest checkpoint (0
// when there is none); stale segments below it are deleted, not
// replayed — their effects are already inside the checkpoint.
//
// Replay stops at the first record failing length or CRC validation;
// everything from that point on (including later segments) is
// discarded, which makes recovery idempotent: reopening the same
// directory always yields the same prefix.
func Open(dir string, opts Options, startSeg uint64, apply func(Record) error) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:  dir,
		opts: opts,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	l.failAfter.Store(-1)

	// Drop segments a checkpoint already covers: their records predate
	// the checkpoint state and must not be replayed onto it.
	live := segs[:0]
	for _, id := range segs {
		if id < startSeg {
			if err := os.Remove(segPath(dir, id)); err != nil {
				return nil, fmt.Errorf("wal: remove stale segment: %w", err)
			}
			continue
		}
		live = append(live, id)
	}

	tail := -1
	for i, id := range live {
		path := segPath(dir, id)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		off, recs, aerr, torn := replaySegment(data, id, apply)
		l.replayed.Add(recs)
		if aerr != nil {
			return nil, fmt.Errorf("wal: replay segment %d: %w", id, aerr)
		}
		if !torn {
			tail = i
			continue
		}
		// The trusted prefix ends here: truncate this segment at the
		// last valid record (or drop it whole when even the header is
		// torn) and discard every later segment.
		if off < segHeaderLen {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			tail = i - 1
		} else {
			if err := os.Truncate(path, off); err != nil {
				return nil, err
			}
			tail = i
		}
		for _, later := range live[i+1:] {
			if err := os.Remove(segPath(dir, later)); err != nil {
				return nil, err
			}
		}
		break
	}

	if tail >= 0 {
		id := live[tail]
		f, err := os.OpenFile(segPath(dir, id), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if !opts.NoSync {
			if err := f.Sync(); err != nil { // make any tail truncation durable
				f.Close()
				return nil, err
			}
		}
		l.f, l.curSeg, l.segBytes = f, id, st.Size()
	} else {
		id := startSeg
		if id == 0 {
			id = 1
		}
		f, err := createSegment(dir, id, !opts.NoSync)
		if err != nil {
			return nil, err
		}
		l.f, l.curSeg, l.segBytes = f, id, segHeaderLen
	}
	go l.committer()
	return l, nil
}

// replaySegment validates data's header and streams its records into
// apply. It returns the offset after the last valid record, the number
// of records applied, apply's error if any, and whether the segment
// ended in a torn/invalid region.
func replaySegment(data []byte, id uint64, apply func(Record) error) (off int64, recs uint64, aerr error, torn bool) {
	if len(data) < segHeaderLen ||
		[4]byte(data[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segVersion ||
		binary.LittleEndian.Uint64(data[8:16]) != id {
		return 0, 0, nil, true
	}
	o := segHeaderLen
	for o < len(data) {
		rec, n, err := decodeRecord(data[o:])
		if err != nil {
			return int64(o), recs, nil, true
		}
		if err := apply(rec); err != nil {
			return int64(o), recs, err, false
		}
		recs++
		o += n
	}
	return int64(o), recs, nil, false
}

// Append enqueues r into the current commit group and returns a Ticket
// for its fsync. The record is durable — and the operation it logs may
// be acknowledged — only once Wait returns nil.
func (l *Log) Append(r Record) Ticket {
	l.mu.Lock()
	if l.closed || l.failed != nil {
		err := l.failed
		if err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		return Ticket{err: err}
	}
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	l.buf = appendRecord(l.buf, r)
	l.nrecs++
	t := Ticket{b: l.cur}
	l.mu.Unlock()
	l.appends.Add(1)
	select {
	case l.kick <- struct{}{}:
	default:
	}
	return t
}

// committer is the single goroutine that turns pending batches into
// one write + one fsync each.
func (l *Log) committer() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case <-l.kick:
		}
		// Yield once before stealing: appenders just woken by the
		// previous commit get a chance to enqueue into this batch, which
		// materially grows group size when cores are scarce — the
		// classic group-commit "brief wait" at its cheapest.
		runtime.Gosched()
		l.ioMu.Lock()
		l.flushLocked()
		l.ioMu.Unlock()
	}
}

// flushLocked steals the pending batch and commits it. Caller holds
// ioMu, which is what keeps batches in append order even when Rotate
// or Close flush inline.
func (l *Log) flushLocked() error {
	l.mu.Lock()
	buf, b, n := l.buf, l.cur, l.nrecs
	l.buf, l.cur, l.nrecs = l.spare[:0], nil, 0
	l.spare = nil
	failed := l.failed
	l.mu.Unlock()
	if b == nil {
		l.reclaim(buf)
		return nil
	}
	err := failed
	if err == nil {
		err = l.writeGroup(buf, n)
	}
	b.err = err
	close(b.done)
	l.reclaim(buf)
	return err
}

// reclaim returns a stolen buffer for reuse.
func (l *Log) reclaim(buf []byte) {
	l.mu.Lock()
	if l.spare == nil {
		l.spare = buf[:0]
	}
	l.mu.Unlock()
}

// writeGroup writes one batch to the current segment and syncs it,
// honouring the fault-injection hook. Caller holds ioMu.
func (l *Log) writeGroup(buf []byte, n int) error {
	if fa := l.failAfter.Load(); fa >= 0 {
		k := min(int(fa), len(buf))
		if k > 0 {
			l.f.Write(buf[:k])
			l.f.Sync()
		}
		l.failNow(ErrCrashed)
		return ErrCrashed
	}
	if _, err := l.f.Write(buf); err != nil {
		l.failNow(err)
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			l.failNow(err)
			return err
		}
	}
	l.segBytes += int64(len(buf))
	l.syncs.Add(1)
	l.records.Add(uint64(n))
	l.bytes.Add(uint64(len(buf)))
	for g := uint64(n); ; {
		cur := l.maxGroup.Load()
		if g <= cur || l.maxGroup.CompareAndSwap(cur, g) {
			break
		}
	}
	if l.segBytes >= int64(l.opts.SegmentBytes) {
		return l.rotateLocked()
	}
	return nil
}

// failNow marks the log permanently failed; later appends and flushes
// observe the error instead of touching the file.
func (l *Log) failNow(err error) {
	l.mu.Lock()
	if l.failed == nil {
		l.failed = err
	}
	l.mu.Unlock()
}

// rotateLocked switches appends to a fresh segment. Caller holds ioMu.
func (l *Log) rotateLocked() error {
	id := l.curSeg + 1
	f, err := createSegment(l.dir, id, !l.opts.NoSync)
	if err != nil {
		l.failNow(err)
		return err
	}
	old := l.f
	l.f, l.curSeg, l.segBytes = f, id, segHeaderLen
	old.Close()
	l.rotations.Add(1)
	return nil
}

// Rotate flushes any pending group into the current segment, then
// starts a fresh one, returning the new segment's id. A checkpoint
// snapshot taken after Rotate returns covers every record in segments
// below the returned id: any operation whose record landed in an older
// segment was fully applied before Rotate returned, so a subsequent
// state scan observes its effect.
func (l *Log) Rotate() (uint64, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	closed, failed := l.closed, l.failed
	l.mu.Unlock()
	if failed != nil {
		return 0, failed
	}
	if closed {
		return 0, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return 0, err
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.curSeg, nil
}

// Position flushes any pending group and returns the exact log
// position after the last committed record: the current segment id and
// the byte offset one past its final record — the same coordinates
// wal.TailReader reports, so a position taken here names a cut a
// replication reader will land on exactly. The integrity layer's
// sealed roots rely on this: with mutators quiesced, (Position, state
// hash) binds a root to one precise point in the log.
func (l *Log) Position() (uint64, int64, error) {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	closed, failed := l.closed, l.failed
	l.mu.Unlock()
	if failed != nil {
		return 0, 0, failed
	}
	if closed {
		return 0, 0, ErrClosed
	}
	if err := l.flushLocked(); err != nil {
		return 0, 0, err
	}
	return l.curSeg, l.segBytes, nil
}

// RemoveBelow deletes every segment with id < seg — called after a
// checkpoint covering them is durably in place. Segment ids only ever
// grow, so this races safely with concurrent rotation.
func (l *Log) RemoveBelow(seg uint64) error {
	ids, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, id := range ids {
		if id >= seg {
			continue
		}
		if err := os.Remove(segPath(l.dir, id)); err != nil {
			return err
		}
	}
	return SyncDir(l.dir)
}

// Sync forces a group commit of anything pending and blocks until it
// is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.cur == nil && l.failed == nil {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.flushLocked()
}

// Close flushes pending records, stops the committer and closes the
// current segment. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	err := l.flushLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, ErrCrashed) {
		err = nil // fault-injected logs close quietly
	}
	return err
}

// Crash simulates a crash for durability testing: the committer stops
// without flushing, at most partial bytes of the pending group reach
// the file (a torn group write), every unacknowledged ticket fails
// with ErrCrashed, and the log becomes unusable. Reopening the
// directory exercises recovery exactly as a process kill would.
func (l *Log) Crash(partial int) {
	l.failAfter.Store(int64(partial))
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	if l.failed == nil {
		l.failed = ErrCrashed
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	l.mu.Lock()
	buf, b := l.buf, l.cur
	l.buf, l.cur, l.nrecs = nil, nil, 0
	l.mu.Unlock()
	if b != nil {
		if k := min(partial, len(buf)); k > 0 {
			l.f.Write(buf[:k])
		}
		b.err = ErrCrashed
		close(b.done)
	}
	l.f.Close()
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	return Stats{
		Appends:   l.appends.Load(),
		Records:   l.records.Load(),
		Syncs:     l.syncs.Load(),
		Bytes:     l.bytes.Load(),
		Rotations: l.rotations.Load(),
		Replayed:  l.replayed.Load(),
		MaxGroup:  l.maxGroup.Load(),
	}
}

// CurrentSegment returns the id of the segment receiving appends.
func (l *Log) CurrentSegment() uint64 {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.curSeg
}

// --- directory layout helpers ---

func segPath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", id))
}

// CheckpointPath returns the path of the checkpoint file covering
// every segment with id < seg.
func CheckpointPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.snap", seg))
}

// listSegments returns the segment ids present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []uint64
	for _, e := range ents {
		var id uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%x.seg", &id); n == 1 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// LatestCheckpoint returns the newest checkpoint file in dir and the
// segment id it covers up to, or ok=false when none exists.
func LatestCheckpoint(dir string) (seg uint64, path string, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", false, nil
		}
		return 0, "", false, err
	}
	for _, e := range ents {
		var id uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%x.snap", &id); n == 1 && id >= seg {
			seg, path, ok = id, filepath.Join(dir, e.Name()), true
		}
	}
	return seg, path, ok, nil
}

// RemoveCheckpointsBelow deletes checkpoint files covering less than
// seg — called after a newer checkpoint is durably in place.
func RemoveCheckpointsBelow(dir string, seg uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		var id uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%x.snap", &id); n == 1 && id < seg {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// createSegment creates a fresh segment file with a durable header.
func createSegment(dir string, id uint64, sync bool) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderLen]byte
	copy(hdr[0:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], id)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// WriteFileDurable atomically replaces path with data using the
// write-temp → fsync → rename → fsync-dir discipline: a crash at any
// step leaves either the old file or the complete new one, never a
// torn mix. The small metadata files around the log (layout stamps,
// replication positions) all go through here.
func WriteFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so renames and removals inside it are
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
