package wal

import (
	"errors"
	"os"
	"testing"

	"blinktree/internal/base"
)

// tailCollect drains the reader fully, returning everything read.
func tailCollect(t *testing.T, tr *TailReader) []Record {
	t.Helper()
	var out []Record
	for {
		recs, err := tr.Next(64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
	}
}

// TestTailReaderFollowsRotation: records written across several
// segment rotations come back complete, in order, and the reader's
// position lands in the live segment.
func TestTailReaderFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true}, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 100 // 100 × 25 bytes across 256-byte segments: many rotations
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Kind: KindPut, Key: base.Key(i), Value: base.Value(i * 3)}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tr := NewTailReader(dir, 1, SegmentHeaderLen)
	defer tr.Close()
	got := tailCollect(t, tr)
	if len(got) != n {
		t.Fatalf("tail read %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Key != base.Key(i) || r.Value != base.Value(i*3) || r.Kind != KindPut {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	seg, _ := tr.Pos()
	if cur := l.CurrentSegment(); seg != cur {
		t.Fatalf("tail stopped in segment %d, live segment is %d", seg, cur)
	}
	if l.Stats().Rotations == 0 {
		t.Fatal("test did not exercise rotation")
	}

	// More appends after the reader caught up must be picked up by the
	// same reader (the live-tail case).
	if err := l.Append(Record{Kind: KindDel, Key: 7}).Wait(); err != nil {
		t.Fatal(err)
	}
	got = tailCollect(t, tr)
	if len(got) != 1 || got[0].Kind != KindDel || got[0].Key != 7 {
		t.Fatalf("live tail read %+v, want the del", got)
	}
}

// TestTailReaderTornTail: a torn record at the end of the live segment
// reads as "no more yet" — never an error, never a partial record.
func TestTailReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true}, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Kind: KindPut, Key: 1, Value: 2}).Wait(); err != nil {
		t.Fatal(err)
	}
	seg := l.CurrentSegment()
	l.Close()
	// Append garbage prefixed by a plausible length: a torn group.
	f, err := os.OpenFile(segPath(dir, seg), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{17, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr := NewTailReader(dir, seg, SegmentHeaderLen)
	defer tr.Close()
	recs, err := tr.Next(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != 1 {
		t.Fatalf("read %+v, want exactly the one valid record", recs)
	}
	if recs, err = tr.Next(16, nil); err != nil || len(recs) != 0 {
		t.Fatalf("torn tail read (%v, %v), want (none, nil)", recs, err)
	}
}

// TestTailReaderTruncated: a position whose segment a checkpoint
// removed reports ErrTruncated, the caller's signal to re-bootstrap.
func TestTailReaderTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true}, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(Record{Kind: KindPut, Key: 1, Value: 2}).Wait(); err != nil {
		t.Fatal(err)
	}
	seg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveBelow(seg); err != nil {
		t.Fatal(err)
	}
	tr := NewTailReader(dir, seg-1, SegmentHeaderLen)
	defer tr.Close()
	if _, err := tr.Next(16, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("tail of removed segment: %v, want ErrTruncated", err)
	}
}
