package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"blinktree/internal/base"
)

func TestHelloRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteHello(&b); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHello(&b)
	if err != nil {
		t.Fatal(err)
	}
	if v != Version {
		t.Fatalf("version = %d, want %d", v, Version)
	}
}

func TestHelloRejections(t *testing.T) {
	if _, err := ReadHello(bytes.NewReader([]byte("HTTP/1.1"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	bad := make([]byte, 8)
	copy(bad, Magic[:])
	binary.LittleEndian.PutUint16(bad[4:6], Version+7)
	if _, err := ReadHello(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	if _, err := ReadHello(bytes.NewReader(bad[:3])); err == nil {
		t.Fatal("short hello: want error")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&b, uint64(i)*77, uint8(i), p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&b)
	var scratch []byte
	for i, p := range payloads {
		id, code, got, err := ReadFrame(br, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != uint64(i)*77 || code != uint8(i) {
			t.Fatalf("frame %d: id=%d code=%d", i, id, code)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: got %v, want EOF", err)
	}
}

func TestFrameTornTail(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, 9, OpSearch, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	whole := b.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		br := bufio.NewReader(bytes.NewReader(whole[:cut]))
		_, _, _, err := ReadFrame(br, nil)
		if err == nil {
			t.Fatalf("cut %d: want error", cut)
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d inside frame: got %v, want unexpected EOF", cut, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, 1, OpBatch, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write: got %v", err)
	}
	var h [4]byte
	binary.LittleEndian.PutUint32(h[:], MaxFrame+64)
	br := bufio.NewReader(bytes.NewReader(h[:]))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read: got %v", err)
	}
}

func TestStatusErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		code uint8
	}{
		{nil, StatusOK},
		{base.ErrNotFound, StatusNotFound},
		{base.ErrDuplicate, StatusDuplicate},
		{base.ErrClosed, StatusClosed},
		{base.ErrCorrupt, StatusCorrupt},
		{errors.New("disk on fire"), StatusInternal},
	}
	for _, c := range cases {
		if got := ErrStatus(c.err); got != c.code {
			t.Fatalf("ErrStatus(%v) = %d, want %d", c.err, got, c.code)
		}
	}
	// Sentinels survive the round trip so errors.Is works across the wire.
	for _, sentinel := range []error{base.ErrNotFound, base.ErrDuplicate, base.ErrClosed, base.ErrCorrupt} {
		if got := StatusError(ErrStatus(sentinel), ""); !errors.Is(got, sentinel) {
			t.Fatalf("round trip of %v = %v", sentinel, got)
		}
	}
	if StatusError(StatusOK, "") != nil {
		t.Fatal("StatusOK should map to nil")
	}
	var werr *Error
	if err := StatusError(StatusBadRequest, "nope"); !errors.As(err, &werr) || werr.Msg != "nope" {
		t.Fatalf("StatusBadRequest: got %v", err)
	}
}

func TestBufDecRoundTrip(t *testing.T) {
	var b Buf
	b.U8(7)
	b.U32(1 << 30)
	b.U64(^uint64(0))
	d := Dec{B: b.B}
	if d.U8() != 7 || d.U32() != 1<<30 || d.U64() != ^uint64(0) {
		t.Fatal("decode mismatch")
	}
	if !d.Done() {
		t.Fatalf("not done: off/err %v", d.Err)
	}
	d.U8()
	if d.Err == nil {
		t.Fatal("overread: want error")
	}
}
