// Package wire defines the binary protocol spoken between
// internal/server and the public client package (and any third-party
// client; docs/protocol.md is the normative specification). It is the
// only vocabulary the two sides share, so the server never imports the
// client and the client never imports the engine.
//
// The protocol is length-prefixed binary, little endian throughout:
//
//	hello    magic "BLNK" | version u16 | flags u16        (both directions, once)
//	request  len u32 | id u64 | op u8 | payload            (len counts id..payload)
//	response len u32 | id u64 | status u8 | payload
//
// Requests are pipelined: a client may send any number of requests
// without waiting, and the server may answer them in any order — the
// id, chosen by the client, is what matches a response to its request.
// Out-of-order completion is what lets the server coalesce a burst of
// pipelined requests into one shard-parallel batch.
//
// Payload shapes per op are documented on the Op constants and in
// docs/protocol.md. Every error travels as a one-byte status code
// (plus an optional UTF-8 message payload); StatusError and ErrStatus
// convert between codes and the module's sentinel errors so that
// errors.Is(err, blinktree.ErrNotFound) works across the wire.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"blinktree/internal/base"
)

// Magic opens the hello exchange in both directions.
var Magic = [4]byte{'B', 'L', 'N', 'K'}

// Version is the newest protocol version this build speaks and
// MinVersion the oldest it still accepts. Versioning rule: adding ops
// or status codes is backward compatible (old clients never send the
// new op), changing a payload shape requires a version bump. A server
// answers the client's hello with the version it will speak —
// min(client, server) — so an old client keeps working against a new
// server; version 2 added the cluster vocabulary (OpMigrate,
// OpClusterMap, StatusWrongShard) and version 3 the integrity
// vocabulary (OpRoot, OpProve, FrameRoot), each without changing any
// earlier payload.
const (
	Version    uint16 = 3
	MinVersion uint16 = 1
)

// helloLen is the byte length of a hello in either direction.
const helloLen = 8

// Op codes. The payload shapes given here are the request → response
// payloads on StatusOK; error responses carry an optional message.
const (
	// OpPing: "" → "". Liveness and pipelining-barrier probe.
	OpPing uint8 = 1
	// OpSearch: key u64 → value u64.
	OpSearch uint8 = 2
	// OpInsert: key u64 | value u64 → "". StatusDuplicate if present.
	OpInsert uint8 = 3
	// OpDelete: key u64 → "". StatusNotFound if absent.
	OpDelete uint8 = 4
	// OpUpsert: key u64 | value u64 → old u64 | existed u8.
	OpUpsert uint8 = 5
	// OpGetOrInsert: key u64 | value u64 → actual u64 | loaded u8.
	OpGetOrInsert uint8 = 6
	// OpCompareAndSwap: key u64 | old u64 | new u64 → swapped u8.
	// A mismatch is StatusOK with swapped = 0; a missing key is
	// StatusNotFound.
	OpCompareAndSwap uint8 = 7
	// OpCompareAndDelete: key u64 | old u64 → deleted u8.
	OpCompareAndDelete uint8 = 8
	// OpScan: lo u64 | hi u64 | limit u32 →
	// more u8 | count u32 | count × (key u64 | value u64).
	// One bounded page of lo ≤ key ≤ hi in ascending order; limit 0
	// means DefaultScanLimit and is capped at MaxScanLimit. more = 1
	// reports that the page filled before hi was reached — resume with
	// lo = last returned key + 1.
	OpScan uint8 = 9
	// OpBatch: count u32 | count × (kind u8 | key u64 | value u64 | old u64) →
	// count × (status u8 | value u64 | ok u8).
	// kind is one of OpSearch..OpCompareAndDelete; slots execute
	// shard-parallel with per-slot status, positionally aligned.
	OpBatch uint8 = 10
	// OpLen: "" → n u64.
	OpLen uint8 = 11
	// OpCheckpoint: "" → "". Durable snapshot + WAL truncation; no-op
	// (still StatusOK) on a volatile server.
	OpCheckpoint uint8 = 12
	// OpStats: "" → count u32 | count × u64, the index-level counters
	// in StatsFields order. Clients must tolerate count greater than
	// the fields they know (new fields append).
	OpStats uint8 = 13
	// OpFollow: shards u32 | shards × (seg u64 | off u64) →
	// shards u32. The replication handshake: the payload carries the
	// follower's durable per-shard WAL positions (seg 0 = fresh). On
	// StatusOK the connection leaves request/response mode and becomes
	// a replication stream of Frame* frames (primary → follower) and
	// FrameAck frames (follower → primary); see docs/protocol.md.
	// Requires a durable server and a matching shard count.
	OpFollow uint8 = 14
	// OpPromote: "" → was u8 (1 = the server was a follower). Stops
	// replication and makes a read-only follower writable; a no-op
	// (was = 0) on a server that was not following.
	OpPromote uint8 = 15
	// OpMigrate: mode u8 | shard u32 | targetLen u16 | target → "".
	// Mode 0 (admin → source) triggers a live migration of the shard's
	// key range to the cluster member at target and answers when the
	// handoff completes (or failed). Mode 1 (source → target, target
	// empty) is the ingest handshake: on StatusOK the response payload
	// is already u8 — 1 means the target already owns the range (a
	// prior handoff completed) and no stream follows; 0 means the
	// connection leaves request/response mode and becomes a migration
	// stream of FrameReset/FrameRecords/FrameHandoff frames (source →
	// target) and FrameMigAck frames (target → source). Requires a
	// cluster-enabled durable server; see docs/protocol.md.
	OpMigrate uint8 = 16
	// OpClusterMap: "" → an encoded ClusterMap (the server's current
	// view of range ownership). Any cluster member answers; a
	// non-cluster server answers StatusBadRequest.
	OpClusterMap uint8 = 17
	// OpRoot: "" → root [32]. The server's current state root under the
	// integrity layer's hash tree (v3). Concurrent with writers the
	// root is fuzzy-but-recent; quiesced it is the exact deterministic
	// hash of the full content. StatusBadRequest on an unverified
	// server.
	OpRoot uint8 = 18
	// OpProve: key u64 → an encoded inclusion/exclusion proof (v3; see
	// verify.EncodeProof and docs/protocol.md §Proof encoding). The
	// proof pins the key's presence or absence, and its value when
	// present, to a state root the client checks against one it
	// trusts. StatusBadRequest on an unverified server.
	OpProve uint8 = 19
)

// Replication stream frame codes. After an OpFollow handshake the
// op/status byte carries these instead; the frame id carries the shard
// index (0 for FrameAck). They live above the status range so a
// follower can never confuse a stream frame with a late response.
const (
	// FrameRecords (primary→follower): seg u64 | endOff u64 |
	// count u32 | count × (kind u8 | key u64 | value u64). The shard's
	// next records in log order; (seg, endOff) is the WAL position
	// after the last one — the follower's new resume position, except
	// seg 0 which means "do not advance" (snapshot bootstrap pairs).
	FrameRecords uint8 = 200
	// FrameReset (primary→follower): "". The follower's position for
	// this shard cannot be served (fresh follower, or the segments
	// were truncated by a checkpoint): the follower must wipe the
	// shard and apply the snapshot FrameRecords that follow.
	FrameReset uint8 = 201
	// FrameSnapEnd (primary→follower): seg u64. Ends a snapshot
	// bootstrap: the shard now equals the primary's fuzzy snapshot and
	// streaming resumes at (seg, start-of-records); only now does the
	// follower commit the shard's position.
	FrameSnapEnd uint8 = 202
	// FrameHandoff (migration source→target): version u64. Ends a
	// migration stream: every record for the range has been shipped and
	// the source is fenced. The target wipes nothing further, persists
	// itself as the range's owner at the given map version, starts
	// serving the range, and answers with a final FrameMigAck.
	FrameHandoff uint8 = 203
	// FrameRoot (primary→follower, v3 streams only): seg u64 | off u64 |
	// root [32]. The primary's sealed per-shard state root at an exact
	// WAL position: every record at or below (seg, off) is reflected in
	// root and every record above it is not. A follower that reaches
	// exactly that position computes its own shard root and compares;
	// divergence means follower corruption or a tampered stream, and
	// the follower refuses to continue. The frame id carries the shard
	// index, like every primary→follower frame.
	FrameRoot uint8 = 204
	// FrameAck (follower→primary): shards u32 | shards × (seg u64 |
	// off u64) | applied u64. Periodic acknowledgement of the
	// follower's durable positions and cumulative applied-record
	// count; the primary uses it for lag gauges and backpressure.
	FrameAck uint8 = 210
	// FrameMigAck (migration target→source): applied u64. Cumulative
	// count of records the target has applied; flow control for the
	// migration stream, and — after FrameHandoff — the commit
	// acknowledgement that the target owns the range.
	FrameMigAck uint8 = 211
)

// StatsFields is the order of the u64 counters in an OpStats response:
// shards, len, height, searches, inserts, deletes, upserts, updates,
// cas, scans, batches, batch-ops. New fields append; old clients
// ignore the tail, old servers send fewer.
const StatsFields = 12

// Status codes.
const (
	StatusOK         uint8 = 0
	StatusNotFound   uint8 = 1
	StatusDuplicate  uint8 = 2
	StatusClosed     uint8 = 3
	StatusCorrupt    uint8 = 4
	StatusBadRequest uint8 = 5
	StatusTooLarge   uint8 = 6
	StatusInternal   uint8 = 7
	// StatusShutdown reports the server is draining; the client should
	// reconnect (likely to another instance) and retry.
	StatusShutdown uint8 = 8
	// StatusReadOnly reports a mutation sent to a read-only follower;
	// writes must go to the primary.
	StatusReadOnly uint8 = 9
	// StatusWrongShard reports an op on a key range this server does
	// not own (it was migrated away, is mid-handoff, or never lived
	// here). The payload is an encoded ClusterMap naming the owner the
	// client should retry against — during the brief fenced window of a
	// live migration the named owner may itself redirect back until the
	// handoff commits, so clients retry with a small backoff. The op
	// was refused before any state change, so retrying is always safe.
	StatusWrongShard uint8 = 10
)

// Limits. MaxFrame bounds a single frame's payload in both directions;
// the scan and batch caps keep any one request's response under it
// (a full scan page is 5 + 16·MaxScanLimit bytes, a full batch
// response 10·MaxBatchOps bytes).
const (
	MaxFrame         = 1 << 20
	DefaultScanLimit = 1024
	MaxScanLimit     = 4096
	MaxBatchOps      = 8192
	headerLen        = 13 // len u32 + id u64 + op/status u8
)

// Protocol-level errors.
var (
	// ErrBadMagic reports a hello that did not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic (not a blinkserver endpoint?)")
	// ErrVersion reports an unsupported protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrFrameTooLarge reports a frame exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	// ErrReadOnly is the sentinel for StatusReadOnly: the target is a
	// read-only follower and mutations must go to the primary.
	ErrReadOnly = errors.New("wire: read-only follower (writes must go to the primary)")
	// ErrWrongShard is the sentinel matched (via errors.Is) by the
	// *RedirectError a StatusWrongShard response decodes to.
	ErrWrongShard = errors.New("wire: wrong shard")
)

// Error is a server-reported failure that does not map to one of the
// module's sentinel errors.
type Error struct {
	Code uint8
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	name := ""
	switch e.Code {
	case StatusBadRequest:
		name = "bad request"
	case StatusTooLarge:
		name = "too large"
	case StatusInternal:
		name = "internal"
	case StatusShutdown:
		name = "shutting down"
	case StatusReadOnly:
		name = "read-only follower"
	case StatusWrongShard:
		name = "wrong shard"
	default:
		name = fmt.Sprintf("status %d", e.Code)
	}
	if e.Msg == "" {
		return "wire: " + name
	}
	return "wire: " + name + ": " + e.Msg
}

// ErrStatus maps an engine error to its wire status code.
func ErrStatus(err error) uint8 {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, base.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, base.ErrDuplicate):
		return StatusDuplicate
	case errors.Is(err, base.ErrClosed):
		return StatusClosed
	case errors.Is(err, base.ErrCorrupt):
		return StatusCorrupt
	case errors.Is(err, ErrReadOnly):
		return StatusReadOnly
	default:
		return StatusInternal
	}
}

// RedirectError is the error form of StatusWrongShard. Payload is the
// raw response payload — an encoded ClusterMap naming the range's
// owner — preserved so a cluster-aware client can refresh its map and
// retry; errors.Is(err, ErrWrongShard) matches it.
type RedirectError struct{ Payload []byte }

// Error implements error.
func (e *RedirectError) Error() string {
	return "wire: wrong shard (range not owned by this server)"
}

// Is makes errors.Is(err, ErrWrongShard) true for any RedirectError.
func (e *RedirectError) Is(target error) bool { return target == ErrWrongShard }

// StatusError maps a wire status code back to an error. Codes with a
// module sentinel return it (so errors.Is matches across the wire);
// StatusWrongShard returns *RedirectError preserving the map payload;
// the rest return *Error carrying msg.
func StatusError(code uint8, msg string) error {
	switch code {
	case StatusOK:
		return nil
	case StatusNotFound:
		return base.ErrNotFound
	case StatusDuplicate:
		return base.ErrDuplicate
	case StatusClosed:
		return base.ErrClosed
	case StatusCorrupt:
		return base.ErrCorrupt
	case StatusReadOnly:
		return ErrReadOnly
	case StatusWrongShard:
		return &RedirectError{Payload: []byte(msg)}
	default:
		return &Error{Code: code, Msg: msg}
	}
}

// WriteHello writes the 8-byte hello advertising Version.
func WriteHello(w io.Writer) error {
	return WriteHelloVersion(w, Version)
}

// WriteHelloVersion writes the 8-byte hello advertising an explicit
// version — the server's negotiated answer to a client hello.
func WriteHelloVersion(w io.Writer, v uint16) error {
	var b [helloLen]byte
	copy(b[:4], Magic[:])
	binary.LittleEndian.PutUint16(b[4:6], v)
	_, err := w.Write(b[:])
	return err
}

// ReadHello reads and validates the peer's hello, returning its
// version. Any version in [MinVersion, Version] is accepted — a server
// answers with min(peer, Version), the version it will speak, so an
// old client works against a new server. ErrBadMagic and ErrVersion
// are the two rejections.
func ReadHello(r io.Reader) (uint16, error) {
	var b [helloLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	if [4]byte(b[:4]) != Magic {
		return 0, ErrBadMagic
	}
	v := binary.LittleEndian.Uint16(b[4:6])
	if v < MinVersion || v > Version {
		return 0, fmt.Errorf("%w: peer speaks %d, this build speaks %d–%d", ErrVersion, v, MinVersion, Version)
	}
	return v, nil
}

// WriteFrame writes one frame — request or response, the shape is the
// same — with the given id, op-or-status byte and payload.
func WriteFrame(w io.Writer, id uint64, code uint8, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var h [headerLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(headerLen-4+len(payload)))
	binary.LittleEndian.PutUint64(h[4:12], id)
	h[12] = code
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one complete frame from br. The returned payload
// reuses buf when it fits (callers that keep a payload across frames
// must copy it). A frame longer than MaxFrame returns
// ErrFrameTooLarge with the stream positioned unusably — the
// connection must be dropped.
func ReadFrame(br *bufio.Reader, buf []byte) (id uint64, code uint8, payload []byte, err error) {
	// The header is parsed in place via Peek/Discard rather than
	// ReadFull into a local array: a local passed through io.ReadFull's
	// interface argument escapes, costing one heap allocation per
	// frame — on the hottest read path of both the server and the
	// client.
	h, err := br.Peek(headerLen)
	if err != nil {
		if len(h) == 0 {
			return 0, 0, nil, err // clean close between frames
		}
		if len(h) >= 4 {
			// Enough for the length prefix: report an invalid length
			// over a torn header.
			n := binary.LittleEndian.Uint32(h[0:4])
			if n < headerLen-4 {
				return 0, 0, nil, fmt.Errorf("wire: frame length %d below header", n)
			}
			if n > MaxFrame+headerLen-4 {
				return 0, 0, nil, ErrFrameTooLarge
			}
		}
		return 0, 0, nil, unexpectEOF(err)
	}
	n := binary.LittleEndian.Uint32(h[0:4])
	if n < headerLen-4 {
		return 0, 0, nil, fmt.Errorf("wire: frame length %d below header", n)
	}
	if n > MaxFrame+headerLen-4 {
		return 0, 0, nil, ErrFrameTooLarge
	}
	id = binary.LittleEndian.Uint64(h[4:12])
	code = h[12]
	br.Discard(headerLen)
	pl := int(n) - (headerLen - 4)
	if pl == 0 {
		return id, code, nil, nil
	}
	if pl <= cap(buf) {
		payload = buf[:pl]
	} else {
		payload = make([]byte, pl)
	}
	if _, err = io.ReadFull(br, payload); err != nil {
		return 0, 0, nil, unexpectEOF(err)
	}
	return id, code, payload, nil
}

// unexpectEOF turns a mid-frame EOF into ErrUnexpectedEOF so callers
// can distinguish a clean close (between frames) from a torn frame.
func unexpectEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Buf is a tiny append-only encode buffer for payloads.
type Buf struct{ B []byte }

// Reset empties the buffer, keeping capacity.
func (b *Buf) Reset() { b.B = b.B[:0] }

// U8 appends one byte.
func (b *Buf) U8(v uint8) { b.B = append(b.B, v) }

// U16 appends a little-endian uint16.
func (b *Buf) U16(v uint16) { b.B = binary.LittleEndian.AppendUint16(b.B, v) }

// U32 appends a little-endian uint32.
func (b *Buf) U32(v uint32) { b.B = binary.LittleEndian.AppendUint32(b.B, v) }

// U64 appends a little-endian uint64.
func (b *Buf) U64(v uint64) { b.B = binary.LittleEndian.AppendUint64(b.B, v) }

// Dec is the matching decode cursor. Failed reads set Err and return
// zeros, so a payload can be decoded with one error check at the end.
type Dec struct {
	B   []byte
	off int
	Err error
}

// fail records the first decode error.
func (d *Dec) fail() {
	if d.Err == nil {
		d.Err = errors.New("wire: short payload")
	}
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if d.Err != nil || d.off+1 > len(d.B) {
		d.fail()
		return 0
	}
	v := d.B[d.off]
	d.off++
	return v
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	if d.Err != nil || d.off+2 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.B[d.off:])
	d.off += 2
	return v
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.Err != nil || d.off+4 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.Err != nil || d.off+8 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.B[d.off:])
	d.off += 8
	return v
}

// Done reports whether the cursor consumed the payload exactly.
func (d *Dec) Done() bool { return d.Err == nil && d.off == len(d.B) }

// Cluster-map limits: a map is one entry per range (the servers' shard
// count) and each owner is a host:port string.
const (
	MaxClusterRanges = 1 << 12
	MaxAddrLen       = 255
)

// ClusterMap is the versioned range-ownership table exchanged via
// OpClusterMap responses and StatusWrongShard redirect payloads.
// Owners[i] is the address of the server owning range i of the static
// range partition (range i = [i·stride, (i+1)·stride) with stride =
// ^uint64(0)/len + 1, matching the router's shard spans). Version
// increases with every completed migration; a client replaces its map
// when it sees a newer one.
type ClusterMap struct {
	Version uint64
	Owners  []string
}

// Range returns the index of the range containing k.
func (m *ClusterMap) Range(k uint64) int {
	if len(m.Owners) <= 1 {
		return 0
	}
	stride := ^uint64(0)/uint64(len(m.Owners)) + 1
	return int(k / stride)
}

// Clone returns a deep copy.
func (m *ClusterMap) Clone() *ClusterMap {
	return &ClusterMap{Version: m.Version, Owners: append([]string(nil), m.Owners...)}
}

// AppendClusterMap encodes m: version u64 | ranges u32 | ranges ×
// (len u16 | owner bytes).
func AppendClusterMap(b *Buf, m *ClusterMap) {
	b.U64(m.Version)
	b.U32(uint32(len(m.Owners)))
	for _, o := range m.Owners {
		b.U16(uint16(len(o)))
		b.B = append(b.B, o...)
	}
}

// DecodeClusterMap decodes an AppendClusterMap payload.
func DecodeClusterMap(payload []byte) (*ClusterMap, error) {
	d := Dec{B: payload}
	m := &ClusterMap{Version: d.U64()}
	n := d.U32()
	if d.Err == nil && (n == 0 || n > MaxClusterRanges) {
		return nil, fmt.Errorf("wire: cluster map with %d ranges", n)
	}
	for i := uint32(0); i < n && d.Err == nil; i++ {
		l := int(d.U16())
		if l > MaxAddrLen {
			return nil, fmt.Errorf("wire: cluster map owner %d bytes long", l)
		}
		if d.off+l > len(d.B) {
			d.fail()
			break
		}
		m.Owners = append(m.Owners, string(d.B[d.off:d.off+l]))
		d.off += l
	}
	if d.Err != nil || !d.Done() {
		if d.Err != nil {
			return nil, d.Err
		}
		return nil, errors.New("wire: cluster map with trailing bytes")
	}
	return m, nil
}
