package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// The hot-path contract of this package: once buffers are warm, a
// frame round trip allocates nothing. These assertions are what keeps
// the contract from regressing silently — testing.AllocsPerRun runs a
// GC first and counts mallocs, so a stray escape shows up as a hard
// failure, not a slow drift on a profile.

func TestZeroAllocAppendFrame(t *testing.T) {
	payload := []byte("0123456789abcdef")
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = AppendFrame(buf[:0], 7, OpSearch, payload)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame: %.1f allocs/op, want 0", allocs)
	}
}

func TestZeroAllocFrameWriter(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	payload := []byte("0123456789abcdef")
	// Warm the accumulator once so growth is out of the measured loop.
	if err := fw.WriteFrame(1, StatusOK, payload); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fw.WriteFrame(2, StatusOK, payload); err != nil {
			t.Fatal(err)
		}
		e := fw.Begin(3, StatusOK)
		e.U64(42)
		e.U8(1)
		if err := fw.End(); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameWriter write+flush: %.1f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocReadFrame proves the read side: with a warm scratch
// buffer and a buffered reader, decoding a frame allocates nothing —
// including the header, which is parsed in place from the bufio
// buffer rather than read into an escaping local.
func TestZeroAllocReadFrame(t *testing.T) {
	frame, err := AppendFrame(nil, 9, OpUpsert, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Reader
	br := bufio.NewReader(&stream)
	scratch := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		stream.Reset(frame)
		br.Reset(&stream)
		id, code, payload, err := ReadFrame(br, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if id != 9 || code != OpUpsert || len(payload) != 16 {
			t.Fatalf("frame mismatch: id=%d code=%d len=%d", id, code, len(payload))
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadFrame: %.1f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocWireRoundTrip drives a full encode→decode round trip
// through in-memory buffers, the shape both the server poll loop and
// the client writer/reader execute per operation.
func TestZeroAllocWireRoundTrip(t *testing.T) {
	var wireBuf bytes.Buffer
	fw := NewFrameWriter(&wireBuf)
	var stream bytes.Reader
	br := bufio.NewReader(&stream)
	scratch := make([]byte, 0, 64)
	req := []byte("0123456789abcdef")

	// Warm everything once.
	if err := fw.WriteFrame(0, OpUpsert, req); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	wireBuf.Reset()

	allocs := testing.AllocsPerRun(1000, func() {
		if err := fw.WriteFrame(1, OpUpsert, req); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		stream.Reset(wireBuf.Bytes())
		br.Reset(&stream)
		if _, _, _, err := ReadFrame(br, scratch); err != nil {
			t.Fatal(err)
		}
		wireBuf.Reset()
	})
	if allocs != 0 {
		t.Fatalf("wire round trip: %.1f allocs/op, want 0", allocs)
	}
}

// TestFrameWriterNoCopySegments checks the writev path assembles
// header spans and retained payloads in order.
func TestFrameWriterNoCopySegments(t *testing.T) {
	var out bytes.Buffer
	fw := NewFrameWriter(&out)
	big := bytes.Repeat([]byte{0xAB}, 100)
	if err := fw.WriteFrame(1, StatusOK, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrameNoCopy(2, StatusOK, big); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(3, StatusOK, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&out)
	for i, wantLen := range []int{2, 100, 2} {
		id, code, payload, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint64(i+1) || code != StatusOK || len(payload) != wantLen {
			t.Fatalf("frame %d: id=%d code=%d len=%d want len %d", i+1, id, code, len(payload), wantLen)
		}
	}
}

// TestZeroAllocFrameWriterNoCopyFlush proves the writev path reuses
// its segment slice across flushes. net.Buffers.WriteTo advances the
// slice header it is called on as it consumes segments; a regression
// that lets it run on f.segs itself leaves the field with zero
// capacity and shows up here as one segment-slice allocation per
// retained-payload flush.
func TestZeroAllocFrameWriterNoCopyFlush(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	payload := bytes.Repeat([]byte{0xCD}, 64)
	flushOnce := func() {
		if err := fw.WriteFrame(1, StatusOK, payload); err != nil {
			t.Fatal(err)
		}
		if err := fw.WriteFrameNoCopy(2, StatusOK, payload); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	flushOnce() // warm buf, cuts, owned, segs
	allocs := testing.AllocsPerRun(1000, flushOnce)
	if allocs != 0 {
		t.Fatalf("retained-payload flush: %.1f allocs/op, want 0", allocs)
	}
	if cap(fw.segs) < 2 {
		t.Fatalf("segment slice capacity %d lost across Flush", cap(fw.segs))
	}
}

func BenchmarkAppendFrame(b *testing.B) {
	payload := []byte("0123456789abcdef")
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = AppendFrame(buf[:0], uint64(i), OpSearch, payload)
	}
}

func BenchmarkFrameWriterFlush(b *testing.B) {
	fw := NewFrameWriter(io.Discard)
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fw.WriteFrame(uint64(i), StatusOK, payload)
		fw.Flush()
	}
}

func BenchmarkReadFrame(b *testing.B) {
	frame, err := AppendFrame(nil, 9, OpUpsert, []byte("0123456789abcdef"))
	if err != nil {
		b.Fatal(err)
	}
	var stream bytes.Reader
	br := bufio.NewReader(&stream)
	scratch := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stream.Reset(frame)
		br.Reset(&stream)
		if _, _, _, err := ReadFrame(br, scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteFrameLegacy measures the io.Writer-based WriteFrame
// kept for cold paths, for comparison against FrameWriter.
func BenchmarkWriteFrameLegacy(b *testing.B) {
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(io.Discard, uint64(i), OpSearch, payload); err != nil {
			b.Fatal(err)
		}
	}
}
