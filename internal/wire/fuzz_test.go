package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"blinktree/internal/verify"
)

// frame assembles one wire frame for seeding.
func frame(id uint64, code uint8, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, id, code, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecode hammers the frame decoder — the first untrusted bytes a
// networked server parses — with arbitrary input. The properties under
// test: ReadFrame never panics, never returns a payload larger than
// MaxFrame, terminates (every accepted frame consumes ≥ 13 bytes), and
// every frame it accepts round-trips identically through WriteFrame.
// The hello validator gets the same treatment.
func FuzzDecode(f *testing.F) {
	// Seeds: one of each frame shape the protocol actually uses, plus
	// hand-broken variants (truncations, oversized length, bad magic).
	var b Buf
	b.U64(42)
	f.Add(frame(1, OpSearch, b.B))
	b.Reset()
	b.U64(7)
	b.U64(9)
	f.Add(frame(2, OpUpsert, b.B))
	f.Add(frame(3, OpPing, nil))
	b.Reset()
	b.U64(0)
	b.U64(^uint64(0))
	b.U32(128)
	f.Add(frame(4, OpScan, b.B))
	b.Reset()
	b.U32(1)
	b.U8(OpInsert)
	b.U64(5)
	b.U64(6)
	b.U64(0)
	f.Add(frame(5, OpBatch, b.B))
	b.Reset()
	b.U32(2)
	b.U64(3)
	b.U64(16)
	b.U64(0)
	b.U64(0)
	f.Add(frame(6, OpFollow, b.B))
	f.Add(frame(7, FrameAck, []byte{1, 0, 0, 0}))
	// v3 integrity vocabulary: root fetch, proof fetch, and the
	// replication root announcement (seg u64 | off u64 | root [32]).
	f.Add(frame(12, OpRoot, nil))
	f.Add(frame(12, OpRoot, make([]byte, 32)))
	b.Reset()
	b.U64(42)
	f.Add(frame(13, OpProve, b.B))
	pf := verify.EncodeProof(nil, &verify.Proof{
		Shards: 2, ShardIdx: 1, Buckets: 4, Bucket: 3,
		ShardRoots: make([]verify.Hash, 2),
		Siblings:   make([]verify.Hash, 2),
		Keys:       []uint64{42}, Vals: []uint64{7},
	})
	f.Add(frame(13, OpProve, pf))
	// Broken proofs: truncated mid-roots, depth lying about nb, and a
	// pair count that outruns the payload.
	f.Add(frame(13, OpProve, pf[:20]))
	lied := append([]byte(nil), pf...)
	lied[16+2*32] = 9
	f.Add(frame(13, OpProve, lied))
	f.Add(frame(13, OpProve, append(pf[:len(pf)-16], 0xff, 0xff, 0xff, 0xff)))
	rootFrame := make([]byte, 48)
	binary.LittleEndian.PutUint64(rootFrame[0:8], 3)
	binary.LittleEndian.PutUint64(rootFrame[8:16], 16)
	f.Add(frame(0, FrameRoot, rootFrame))
	f.Add(frame(0, FrameRoot, rootFrame[:17]))
	// Two frames back to back: the loop must consume both.
	f.Add(append(frame(8, OpLen, nil), frame(9, OpStats, nil)...))
	// Torn header, torn payload, zero length, oversized length.
	f.Add(frame(10, OpDelete, []byte{1, 2, 3, 4, 5, 6, 7, 8})[:6])
	f.Add(frame(11, OpInsert, make([]byte, 16))[:17])
	f.Add([]byte{0, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrame+100))
	// Hellos: valid, bad magic, bad version.
	hello := []byte{'B', 'L', 'N', 'K', 1, 0, 0, 0}
	f.Add(hello)
	f.Add([]byte{'H', 'T', 'T', 'P', 1, 0, 0, 0})
	f.Add([]byte{'B', 'L', 'N', 'K', 99, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		consumedBound := len(data)
		frames := 0
		for {
			id, code, payload, err := ReadFrame(br, nil)
			if err != nil {
				break
			}
			frames++
			if frames > consumedBound/13+1 {
				t.Fatalf("decoded %d frames from %d bytes: decoder is not consuming", frames, len(data))
			}
			if len(payload) > MaxFrame {
				t.Fatalf("payload of %d bytes exceeds MaxFrame", len(payload))
			}
			var out bytes.Buffer
			if err := WriteFrame(&out, id, code, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			rb := bufio.NewReader(&out)
			id2, code2, payload2, err := ReadFrame(rb, nil)
			if err != nil || id2 != id || code2 != code || !bytes.Equal(payload2, payload) {
				t.Fatalf("round-trip mismatch: (%d,%d,%x,%v) vs (%d,%d,%x)",
					id2, code2, payload2, err, id, code, payload)
			}
		}
		// Proof decoding faces the same untrusted bytes (an OpProve
		// response payload). It must never panic, and any proof it
		// accepts must re-encode to the exact bytes it was parsed from
		// — the encoding is canonical.
		if p, err := verify.DecodeProof(data); err == nil {
			if enc := verify.EncodeProof(nil, p); !bytes.Equal(enc, data) {
				t.Fatalf("proof round-trip mismatch: %x vs %x", enc, data)
			}
			p.Lookup(42)
			p.Root()
		}
		// The hello validator must reject or accept without panicking,
		// and only ever accept the exact magic plus a version this
		// build speaks ([MinVersion, Version] — the negotiation range).
		if v, err := ReadHello(bytes.NewReader(data)); err == nil {
			if !bytes.Equal(data[:4], Magic[:]) || v < MinVersion || v > Version {
				t.Fatalf("ReadHello accepted %x as version %d", data[:8], v)
			}
		}
	})
}
