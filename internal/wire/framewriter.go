package wire

import (
	"encoding/binary"
	"io"
	"net"
)

// AppendFrame appends one encoded frame — header and payload — to dst
// and returns the extended slice. It is the allocation-free counterpart
// of WriteFrame: when dst has capacity nothing escapes to the heap, so
// a caller that reuses dst across frames encodes an entire pipelined
// burst without allocating.
func AppendFrame(dst []byte, id uint64, code uint8, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen-4+len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, code)
	return append(dst, payload...), nil
}

// fwRetain caps how much accumulation capacity a FrameWriter keeps
// across Flush calls. A burst larger than this (a scan-heavy poll can
// approach the server's inflight cap) grows the buffer for that burst
// only; steady-state point-op polls stay far below it.
const fwRetain = 256 << 10

// FrameWriter accumulates whole frames in one owned buffer and writes
// them with a single syscall per Flush — the response-side half of
// syscall batching. It replaces bufio.Writer on the hot path, which
// both issued one write per 64 KiB and forced WriteFrame's header
// array to escape through the io.Writer interface (one allocation per
// frame; see the E18 allocation table).
//
// Buffer ownership rules:
//   - WriteFrame copies the payload; the caller may reuse it
//     immediately (the server's per-connection encode scratch does).
//   - WriteFrameNoCopy retains the payload slice until the next Flush;
//     ownership transfers to the writer and the caller must not touch
//     it again. Retained slices are flushed with net.Buffers, so a
//     *net.TCPConn sees one writev covering the accumulated frames and
//     every retained payload.
//   - Begin/End encode a payload in place in the writer's own buffer —
//     zero copies, zero per-frame allocations. Abort discards an open
//     frame (for errors discovered mid-encode).
//
// The writer is sticky on error: after any write error every method
// fails fast with it and the connection must be dropped.
type FrameWriter struct {
	w     io.Writer
	buf   []byte
	cuts  []int    // offsets in buf after which owned[i] is spliced
	owned [][]byte // payloads retained by WriteFrameNoCopy
	segs  net.Buffers
	open  int // offset of the open frame's header, -1 if none
	err   error
	// scratch is the Buf handed out by Begin; it aliases buf between
	// Begin and End so payloads are encoded in place.
	scratch Buf
}

// NewFrameWriter returns a FrameWriter flushing to w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, open: -1}
}

// Reset redirects the writer to w and drops any buffered data and
// sticky error, reusing the accumulated capacity.
func (f *FrameWriter) Reset(w io.Writer) {
	f.w = w
	f.buf = f.buf[:0]
	f.cuts = f.cuts[:0]
	f.owned = f.owned[:0]
	f.open = -1
	f.err = nil
}

// Buffered reports the number of bytes waiting for Flush.
func (f *FrameWriter) Buffered() int {
	n := len(f.buf)
	for _, p := range f.owned {
		n += len(p)
	}
	return n
}

// WriteFrame appends one frame, copying the payload into the writer's
// buffer. The caller keeps ownership of payload.
func (f *FrameWriter) WriteFrame(id uint64, code uint8, payload []byte) error {
	if f.err != nil {
		return f.err
	}
	if f.open >= 0 {
		return f.setErr(errFrameOpen)
	}
	b, err := AppendFrame(f.buf, id, code, payload)
	if err != nil {
		return f.setErr(err)
	}
	f.buf = b
	return nil
}

// WriteFrameNoCopy appends one frame whose payload is retained — not
// copied — until the next Flush. Ownership of payload transfers to the
// writer; the caller must not modify or reuse it before Flush returns.
func (f *FrameWriter) WriteFrameNoCopy(id uint64, code uint8, payload []byte) error {
	if f.err != nil {
		return f.err
	}
	if f.open >= 0 {
		return f.setErr(errFrameOpen)
	}
	if len(payload) > MaxFrame {
		return f.setErr(ErrFrameTooLarge)
	}
	f.buf = binary.LittleEndian.AppendUint32(f.buf, uint32(headerLen-4+len(payload)))
	f.buf = binary.LittleEndian.AppendUint64(f.buf, id)
	f.buf = append(f.buf, code)
	f.cuts = append(f.cuts, len(f.buf))
	f.owned = append(f.owned, payload)
	return nil
}

// Begin opens a frame and returns an encode buffer positioned at its
// payload: the caller appends payload bytes to the returned Buf (which
// aliases the writer's own buffer) and calls End. Exactly one frame
// may be open at a time.
func (f *FrameWriter) Begin(id uint64, code uint8) *Buf {
	if f.err != nil || f.open >= 0 {
		if f.open >= 0 {
			f.setErr(errFrameOpen)
		}
		// Hand back a throwaway buffer so callers can stay linear;
		// End reports the sticky error.
		f.scratch.Reset()
		return &f.scratch
	}
	f.open = len(f.buf)
	f.buf = binary.LittleEndian.AppendUint32(f.buf, 0) // patched by End
	f.buf = binary.LittleEndian.AppendUint64(f.buf, id)
	f.buf = append(f.buf, code)
	f.scratch.B = f.buf
	return &f.scratch
}

// End closes the frame opened by Begin, patching its length header.
func (f *FrameWriter) End() error {
	if f.err != nil {
		return f.err
	}
	if f.open < 0 {
		return f.setErr(errFrameNotOpen)
	}
	f.buf = f.scratch.B
	f.scratch.B = nil
	payload := len(f.buf) - f.open - headerLen
	if payload > MaxFrame {
		f.buf = f.buf[:f.open]
		f.open = -1
		return f.setErr(ErrFrameTooLarge)
	}
	binary.LittleEndian.PutUint32(f.buf[f.open:], uint32(headerLen-4+payload))
	f.open = -1
	return nil
}

// Abort discards the frame opened by Begin, e.g. when an error is
// discovered mid-encode and an error frame should be sent instead.
func (f *FrameWriter) Abort() {
	if f.open >= 0 {
		f.buf = f.buf[:f.open]
		f.scratch.B = nil
		f.open = -1
	}
}

// Flush writes every buffered frame. With no retained payloads this is
// a single Write; with retained payloads it assembles a net.Buffers
// and hands it to the connection in one call (one writev on a
// *net.TCPConn).
func (f *FrameWriter) Flush() error {
	if f.err != nil {
		return f.err
	}
	if f.open >= 0 {
		return f.setErr(errFrameOpen)
	}
	if len(f.buf) == 0 && len(f.owned) == 0 {
		return nil
	}
	if len(f.owned) == 0 {
		_, err := f.w.Write(f.buf)
		f.afterFlush()
		if err != nil {
			return f.setErr(err)
		}
		return nil
	}
	segs := f.segs[:0]
	prev := 0
	for i, cut := range f.cuts {
		if cut > prev {
			segs = append(segs, f.buf[prev:cut])
		}
		if len(f.owned[i]) > 0 {
			segs = append(segs, f.owned[i])
		}
		prev = cut
	}
	if len(f.buf) > prev {
		segs = append(segs, f.buf[prev:])
	}
	// WriteTo advances its receiver's slice header as it consumes
	// segments, leaving f.segs pointing at the exhausted tail with zero
	// capacity — so the pre-WriteTo header is kept in segs and restored
	// (emptied) afterwards, or every retained-payload flush would
	// reallocate the segment slice. Restoring goes through the local
	// header rather than running WriteTo on a local copy: the copy's
	// address would escape through the io.Writer plumbing, costing the
	// allocation this path exists to avoid. The elements are cleared so
	// flushed payloads are not pinned until the next flush overwrites
	// them.
	f.segs = segs
	_, err := f.segs.WriteTo(f.w)
	for i := range segs {
		segs[i] = nil
	}
	f.segs = segs[:0]
	f.afterFlush()
	if err != nil {
		return f.setErr(err)
	}
	return nil
}

// afterFlush resets the accumulation state, bounding retained capacity.
func (f *FrameWriter) afterFlush() {
	if cap(f.buf) > fwRetain {
		f.buf = nil
	} else {
		f.buf = f.buf[:0]
	}
	f.cuts = f.cuts[:0]
	for i := range f.owned {
		f.owned[i] = nil
	}
	f.owned = f.owned[:0]
}

// setErr records the writer's first error.
func (f *FrameWriter) setErr(err error) error {
	if f.err == nil {
		f.err = err
	}
	return f.err
}

// Err returns the sticky error, if any.
func (f *FrameWriter) Err() error { return f.err }

var (
	errFrameOpen    = errLit("wire: FrameWriter: frame still open")
	errFrameNotOpen = errLit("wire: FrameWriter: End without Begin")
)

// errLit is a tiny constant-friendly error type.
type errLit string

func (e errLit) Error() string { return string(e) }
