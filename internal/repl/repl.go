// Package repl is the asynchronous replication subsystem: WAL shipping
// from a durable primary to read replicas over the wire protocol's
// follower stream (docs/protocol.md).
//
// The design reuses the two guarantees the durability subsystem
// already establishes. First, the per-shard WAL is a prefix-consistent
// record of every acknowledged mutation in apply order, so a follower
// that replays a WAL prefix holds exactly a past state of that shard.
// Second, replay is idempotent — puts re-apply as upserts, dels as
// delete-if-present — so records may be shipped, applied, and (after a
// follower restart) re-shipped at-least-once without coordination.
// Together they reduce replication to tailing segment files and
// re-running recovery continuously on another machine: the same
// argument Sagiv's §5.2 makes for crash recovery (correctness from the
// structure's invariants plus idempotent re-application, not mutual
// exclusion) carried over the network.
//
// Primary side (Feed, one per follower connection): a wal.TailReader
// per shard reads committed records straight from the segment files —
// concurrently with the committer, trusting only CRC-valid prefixes —
// and ships them as FrameRecords. When a follower's position predates
// the oldest surviving segment (a fresh follower, or one that slept
// through a checkpoint's truncation), the feed bootstraps the shard:
// FrameReset, a fuzzy state snapshot via Engine.StreamState (rotate,
// scan concurrent with writers), FrameSnapEnd carrying the resume
// segment. Backpressure is ack-based: the feed pauses once the
// shipped-minus-acked record window fills, so a slow follower bounds
// the primary's buffering, never its write path.
//
// Replica side (Follower): dials the primary, handshakes OpFollow with
// its durable per-shard positions, applies streamed records through
// shard.Router.ApplyBatch — so a durable follower writes its own WAL
// and group-commits like any other writer, making it promotable — and
// acks periodically. Positions persist in a small CRC-guarded file
// (atomic rename); a stale or torn position file only ever causes
// harmless re-application or a fresh bootstrap, never divergence.
// Promotion is Stop with intent: the follower stops streaming and the
// serving layer flips read-only off.
package repl

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

// Position is a follower's durable location in one shard's WAL: the
// next record to apply lives at byte Off of segment Seg. Seg 0 means
// "fresh" — no records applied, bootstrap needed.
type Position struct {
	Seg uint64
	Off int64
}

// fresh reports whether the position predates any applied record.
func (p Position) fresh() bool { return p.Seg == 0 }

// maxFrameRecords bounds records per FrameRecords frame; at 17 payload
// bytes per record a full frame stays ~9 KiB, far under wire.MaxFrame.
const maxFrameRecords = 512

// AppendRecords encodes a FrameRecords payload: the resume position
// after the batch, then the records. Snapshot bootstrap frames pass
// seg 0 so the follower applies without advancing its position.
// Exported because migration streams (internal/cluster) ship records
// in the same shape.
func AppendRecords(b *wire.Buf, seg uint64, endOff int64, recs []wal.Record) {
	b.Reset()
	b.U64(seg)
	b.U64(uint64(endOff))
	b.U32(uint32(len(recs)))
	for _, r := range recs {
		b.U8(uint8(r.Kind))
		b.U64(uint64(r.Key))
		b.U64(uint64(r.Value))
	}
}

// DecodeRecords parses a FrameRecords payload into recs (reused).
func DecodeRecords(payload []byte, recs []wal.Record) (seg uint64, endOff int64, _ []wal.Record, err error) {
	d := wire.Dec{B: payload}
	seg = d.U64()
	endOff = int64(d.U64())
	n := int(d.U32())
	if d.Err == nil && n > (len(payload)-20)/17 {
		return 0, 0, nil, fmt.Errorf("repl: records frame count %d exceeds payload", n)
	}
	for i := 0; i < n; i++ {
		r := wal.Record{
			Kind:  wal.Kind(d.U8()),
			Key:   base.Key(d.U64()),
			Value: base.Value(d.U64()),
		}
		if r.Kind != wal.KindPut && r.Kind != wal.KindDel {
			return 0, 0, nil, fmt.Errorf("repl: unknown record kind %d", r.Kind)
		}
		recs = append(recs, r)
	}
	if !d.Done() {
		return 0, 0, nil, fmt.Errorf("repl: malformed records frame")
	}
	return seg, endOff, recs, nil
}

// appendAck encodes a FrameAck payload.
func appendAck(b *wire.Buf, pos []Position, applied uint64) {
	b.Reset()
	b.U32(uint32(len(pos)))
	for _, p := range pos {
		b.U64(p.Seg)
		b.U64(uint64(p.Off))
	}
	b.U64(applied)
}

// decodeAck parses a FrameAck payload; shards is the expected count.
func decodeAck(payload []byte, shards int) (pos []Position, applied uint64, err error) {
	d := wire.Dec{B: payload}
	n := int(d.U32())
	if d.Err != nil || n != shards {
		return nil, 0, fmt.Errorf("repl: ack for %d shards, want %d", n, shards)
	}
	pos = make([]Position, n)
	for i := range pos {
		pos[i] = Position{Seg: d.U64(), Off: int64(d.U64())}
	}
	applied = d.U64()
	if !d.Done() {
		return nil, 0, fmt.Errorf("repl: malformed ack frame")
	}
	return pos, applied, nil
}

// DecodeFollowRequest parses an OpFollow payload into per-shard
// positions, validating the count against the serving router's.
func DecodeFollowRequest(payload []byte, shards int) ([]Position, error) {
	d := wire.Dec{B: payload}
	n := int(d.U32())
	if d.Err != nil || n != shards {
		return nil, fmt.Errorf("follower has %d shards, primary has %d (shard counts must match)", n, shards)
	}
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{Seg: d.U64(), Off: int64(d.U64())}
	}
	if !d.Done() {
		return nil, fmt.Errorf("malformed follow payload")
	}
	return pos, nil
}

// AppendFollowRequest encodes an OpFollow payload.
func AppendFollowRequest(b *wire.Buf, pos []Position) {
	b.Reset()
	b.U32(uint32(len(pos)))
	for _, p := range pos {
		b.U64(p.Seg)
		b.U64(uint64(p.Off))
	}
}
