package repl_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"blinktree/client"
	"blinktree/internal/base"
	"blinktree/internal/repl"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// startPrimary opens a durable router in dir and serves it.
func startPrimary(t *testing.T, shards int, dir string) (*shard.Router, *server.Server) {
	t.Helper()
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: 4, Durable: true, Dir: dir, WALNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(r, server.Config{Addr: "127.0.0.1:0", Logf: func(string, ...any) {}})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	return r, s
}

// startFollower opens a durable router in dir and follows primary.
func startFollower(t *testing.T, shards int, dir, primary string) (*shard.Router, *repl.Follower) {
	t.Helper()
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: 4, Durable: true, Dir: dir, WALNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := repl.NewFollower(r, repl.FollowerConfig{Primary: primary, Dir: dir, AckEvery: 64})
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(func() { f.Stop(); r.Close() })
	return r, f
}

// waitConverge polls until follower state equals want exactly (every
// pair present with its value, nothing extra), or fails after 15s.
func waitConverge(t *testing.T, r *shard.Router, want map[base.Key]base.Value) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if equalState(r, want) == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge: %v", equalState(r, want))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// equalState reports the first difference between r and want, nil when
// they match exactly.
func equalState(r *shard.Router, want map[base.Key]base.Value) error {
	if n := r.Len(); n != len(want) {
		return fmt.Errorf("len %d, want %d", n, len(want))
	}
	var derr error
	err := r.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		w, ok := want[k]
		if !ok {
			derr = fmt.Errorf("phantom key %d", k)
			return false
		}
		if w != v {
			derr = fmt.Errorf("key %d = %d, want %d", k, v, w)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return derr
}

// scatter spreads small ints over the full keyspace so every shard
// sees traffic.
func scatter(i uint64) base.Key { return base.Key(i * 11400714819323198485) }

func TestReplicationConverges(t *testing.T) {
	r1, s := startPrimary(t, 4, t.TempDir())
	want := make(map[base.Key]base.Value)
	// Writes before the follower exists: forces a snapshot bootstrap.
	for i := uint64(0); i < 2000; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}
	r2, f := startFollower(t, 4, t.TempDir(), s.Addr().String())
	waitConverge(t, r2, want)
	if got := f.Stats().Resets; got == 0 {
		t.Fatalf("fresh follower should have bootstrapped, resets = %d", got)
	}
	// Live stream: mixed overwrites and deletes after bootstrap.
	for i := uint64(0); i < 2000; i++ {
		k := scatter(i)
		if i%3 == 0 {
			if err := r1.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
		} else {
			if _, _, err := r1.Upsert(k, base.Value(i*7)); err != nil {
				t.Fatal(err)
			}
			want[k] = base.Value(i * 7)
		}
	}
	waitConverge(t, r2, want)
}

// TestFollowerResumeNoRebootstrap is the reconnect/resume regression:
// a follower that restarts mid-stream must resume from its persisted
// per-shard positions — no snapshot bootstrap, no duplicate
// application beyond the un-acked tail — and still converge exactly.
func TestFollowerResumeNoRebootstrap(t *testing.T) {
	r1, s := startPrimary(t, 4, t.TempDir())
	fdir := t.TempDir()
	want := make(map[base.Key]base.Value)
	for i := uint64(0); i < 1000; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}
	r2, f := startFollower(t, 4, fdir, s.Addr().String())
	waitConverge(t, r2, want)

	// Restart the follower (clean stop persists exact positions) with
	// writes happening while it is away.
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	const delta = 500
	for i := uint64(0); i < delta; i++ {
		k := scatter(100000 + i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}
	r2b, f2 := startFollower(t, 4, fdir, s.Addr().String())
	waitConverge(t, r2b, want)
	// State convergence races the last frame's counter bump by a few
	// microseconds; wait for the count, then assert it is EXACTLY the
	// records missed — one more would be a duplicate application.
	deadline := time.Now().Add(5 * time.Second)
	for f2.Stats().Applied < delta && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := f2.Stats()
	if st.Resets != 0 {
		t.Fatalf("resumed follower re-bootstrapped: %d resets", st.Resets)
	}
	if st.Applied != delta {
		t.Fatalf("resumed follower applied %d records, want exactly the %d it missed", st.Applied, delta)
	}
}

// TestBootstrapAfterCheckpointTruncation: a follower that slept
// through a checkpoint finds its position truncated and must fall back
// to a snapshot bootstrap — including learning about deletions it
// never saw a record for (the wipe).
func TestBootstrapAfterCheckpointTruncation(t *testing.T) {
	r1, s := startPrimary(t, 2, t.TempDir())
	fdir := t.TempDir()
	want := make(map[base.Key]base.Value)
	for i := uint64(0); i < 1000; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}
	r2, f := startFollower(t, 2, fdir, s.Addr().String())
	waitConverge(t, r2, want)
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// While the follower is away: delete half, then checkpoint — the
	// delete records are truncated out of the log.
	for i := uint64(0); i < 1000; i += 2 {
		k := scatter(i)
		if err := r1.Delete(k); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	if err := r1.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	r2b, f2 := startFollower(t, 2, fdir, s.Addr().String())
	waitConverge(t, r2b, want)
	if f2.Stats().Resets == 0 {
		t.Fatal("truncated follower should have re-bootstrapped")
	}
	// And the stream must still be live past the bootstrap.
	k := scatter(999999)
	if _, _, err := r1.Upsert(k, 42); err != nil {
		t.Fatal(err)
	}
	want[k] = 42
	waitConverge(t, r2b, want)
}

// TestPromoteOverWire covers the failover path: a follower serves
// reads, refuses writes with ErrReadOnly, and after Promote accepts
// writes and stops replicating.
func TestPromoteOverWire(t *testing.T) {
	r1, s1 := startPrimary(t, 2, t.TempDir())
	fdir := t.TempDir()
	r2, err := shard.NewRouter(2, shard.Options{MinPairs: 4, Durable: true, Dir: fdir, WALNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	f, err := repl.NewFollower(r2, repl.FollowerConfig{Primary: s1.Addr().String(), Dir: fdir, AckEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	s2 := server.New(r2, server.Config{
		Addr:      "127.0.0.1:0",
		ReadOnly:  true,
		OnPromote: f.Stop,
		Logf:      func(string, ...any) {},
	})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	defer f.Stop()

	want := make(map[base.Key]base.Value)
	for i := uint64(0); i < 500; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}
	waitConverge(t, r2, want)

	ctx := context.Background()
	cl, err := client.Dial(s2.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Reads serve; writes refuse — as point ops and as batch slots.
	if v, err := cl.Search(ctx, client.Key(scatter(1))); err != nil || v != 1 {
		t.Fatalf("follower read: (%d, %v)", v, err)
	}
	if _, _, err := cl.Upsert(ctx, 12345, 1); !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("follower upsert: %v, want ErrReadOnly", err)
	}
	res, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpSearch, Key: client.Key(scatter(1))},
		{Kind: client.OpInsert, Key: 12345, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Value != 1 {
		t.Fatalf("batch read slot: %+v", res[0])
	}
	if !errors.Is(res[1].Err, client.ErrReadOnly) {
		t.Fatalf("batch write slot: %v, want ErrReadOnly", res[1].Err)
	}

	// Promote: idempotence of the second call included.
	if was, err := cl.Promote(ctx); err != nil || !was {
		t.Fatalf("promote: (%v, %v)", was, err)
	}
	if was, err := cl.Promote(ctx); err != nil || was {
		t.Fatalf("second promote: (%v, %v), want no-op", was, err)
	}
	if _, _, err := cl.Upsert(ctx, 12345, 99); err != nil {
		t.Fatalf("post-promotion write: %v", err)
	}
	// The promoted follower no longer applies primary writes.
	if _, _, err := r1.Upsert(scatter(777777), 7); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := r2.Search(scatter(777777)); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("promoted follower still replicating: %v", err)
	}
}

// TestStopBeforeStart: a follower promoted (stopped) before Start —
// the window cmd/blinkserver opens by wiring OnPromote before calling
// Start — must make the later Start inert, not panic.
func TestStopBeforeStart(t *testing.T) {
	r, err := shard.NewRouter(1, shard.Options{MinPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	f, err := repl.NewFollower(r, repl.FollowerConfig{Primary: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	f.Start() // must not launch a session or close a closed channel
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Connected {
		t.Fatal("stopped-before-start follower reports a connection")
	}
}

// TestReplicaReadRouting: a client with a ReplicaAddr serves
// idempotent reads from the replica and falls back to the primary when
// the replica dies. Two independent servers with different values for
// the same key make the routing observable.
func TestReplicaReadRouting(t *testing.T) {
	open := func(v base.Value) (*shard.Router, *server.Server) {
		r, err := shard.NewRouter(1, shard.Options{MinPairs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.Upsert(1, v); err != nil {
			t.Fatal(err)
		}
		s := server.New(r, server.Config{Addr: "127.0.0.1:0", Logf: func(string, ...any) {}})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close(); r.Close() })
		return r, s
	}
	rp, sp := open(100) // primary says 100
	_, sr := open(200)  // replica says 200

	cl, err := client.Dial(sp.Addr().String(), client.Options{
		Conns: 1, ReplicaAddr: sr.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if v, err := cl.Search(ctx, 1); err != nil || v != 200 {
		t.Fatalf("replica-routed read: (%d, %v), want 200 from the replica", v, err)
	}
	// Mutations go to the primary.
	if _, _, err := cl.Upsert(ctx, 2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Search(2); err != nil {
		t.Fatalf("write did not land on the primary: %v", err)
	}
	// Replica down: reads fall back to the primary.
	sr.Close()
	if v, err := cl.Search(ctx, 1); err != nil || v != 100 {
		t.Fatalf("fallback read: (%d, %v), want 100 from the primary", v, err)
	}
}

// TestVerifiedReplicationRootChecks runs a verified primary/follower
// pair and proves both halves of the tier-3 contract: a clean follower
// recomputes and matches the primary's published roots (no false
// alarms), and a follower whose state is tampered with detects the
// divergence at the next root boundary and refuses to continue.
func TestVerifiedReplicationRootChecks(t *testing.T) {
	vopts := shard.Options{MinPairs: 4, Durable: true, WALNoSync: true,
		Verified: true, VerifyBuckets: 64}

	popts := vopts
	popts.Dir = t.TempDir()
	r1, err := shard.NewRouter(4, popts)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(r1, server.Config{Addr: "127.0.0.1:0",
		RootEvery: 25 * time.Millisecond, Logf: func(string, ...any) {}})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r1.Close() })

	want := make(map[base.Key]base.Value)
	for i := uint64(0); i < 2000; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i)
	}

	fopts := vopts
	fopts.Dir = t.TempDir()
	r2, err := shard.NewRouter(4, fopts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := repl.NewFollower(r2, repl.FollowerConfig{
		Primary: s.Addr().String(), Dir: fopts.Dir, AckEvery: 64,
		Logf: func(format string, args ...any) { t.Logf("follower: "+format, args...) },
	})
	if err != nil {
		r2.Close()
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(func() { f.Stop(); r2.Close() })
	waitConverge(t, r2, want)

	// Clean run: roots get published, recomputed, and matched — and
	// keep matching while writes continue.
	deadline := time.Now().Add(15 * time.Second)
	for f.Stats().RootChecks < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("no root checks after convergence: %+v", f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := uint64(0); i < 500; i++ {
		k := scatter(i)
		if _, _, err := r1.Upsert(k, base.Value(i*3)); err != nil {
			t.Fatal(err)
		}
		want[k] = base.Value(i * 3)
	}
	waitConverge(t, r2, want)
	if st := f.Stats(); st.LastErr != "" {
		t.Fatalf("false alarm on a clean verified pair: %q", st.LastErr)
	}

	// Tamper with the follower's local state behind replication's
	// back: the next exactly-positioned root must expose it and the
	// follower must give up for good.
	if _, _, err := r2.Upsert(scatter(7), 0xdead); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if strings.Contains(st.LastErr, "divergence") && !st.Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tampered follower did not alarm: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
