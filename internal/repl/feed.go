package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/shard"
	"blinktree/internal/verify"
	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

// FeedConfig tunes one primary-side follower feed. The zero value of
// every field selects a sensible default.
type FeedConfig struct {
	// Window is the backpressure bound: the maximum number of shipped
	// records not yet acknowledged by the follower before the feed
	// pauses streaming. Default 65536.
	Window int
	// Poll is how long the feed sleeps when fully caught up with every
	// shard's committer. Default 2ms.
	Poll time.Duration
	// AckTimeout is the liveness bound on a full window: a follower
	// that keeps the window full without acknowledging anything for
	// this long is declared dead and its feed ends. This is what
	// stops a stalled (or malicious) peer from wedging a snapshot
	// bootstrap — and with it the engine's checkpoint lock — forever.
	// Default 30s.
	AckTimeout time.Duration
	// Logf receives feed-level notices. Default: discard.
	Logf func(format string, args ...any)
	// Version is the connection's negotiated protocol version. Root
	// frames (verified replication) are published only at ≥ 3 — an
	// older follower would reject the unknown frame code.
	Version uint16
	// RootEvery is how often a verified primary seals and publishes a
	// per-shard state root to this follower. Default 1s. Ignored when
	// the primary is unverified or Version < 3.
	RootEvery time.Duration
}

func (c *FeedConfig) fill() {
	if c.Window <= 0 {
		c.Window = 1 << 16
	}
	if c.Poll <= 0 {
		c.Poll = 2 * time.Millisecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 30 * time.Second
	}
	if c.RootEvery <= 0 {
		c.RootEvery = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// FeedStats is a snapshot of one feed's counters for metrics: Lag is
// records shipped but not yet acknowledged by the follower; Roots is
// the number of sealed state roots published on a verified feed.
type FeedStats struct {
	Remote  string
	Shipped uint64
	Acked   uint64
	Resets  uint64
	Roots   uint64
	LastAck time.Time
}

// Lag returns shipped-minus-acked records.
func (s FeedStats) Lag() uint64 {
	if s.Shipped < s.Acked {
		return 0
	}
	return s.Shipped - s.Acked
}

// Registry tracks the live feeds of one server for /metrics.
type Registry struct {
	mu    sync.Mutex
	feeds map[*Feed]struct{}
}

func (g *Registry) add(f *Feed) {
	g.mu.Lock()
	if g.feeds == nil {
		g.feeds = make(map[*Feed]struct{})
	}
	g.feeds[f] = struct{}{}
	g.mu.Unlock()
}

func (g *Registry) remove(f *Feed) {
	g.mu.Lock()
	delete(g.feeds, f)
	g.mu.Unlock()
}

// Snapshot returns the stats of every live feed.
func (g *Registry) Snapshot() []FeedStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]FeedStats, 0, len(g.feeds))
	for f := range g.feeds {
		out = append(out, f.stats())
	}
	return out
}

// Feed streams one follower's replication feed: per-shard WAL tails
// multiplexed onto one connection, with snapshot bootstrap for
// positions the log no longer covers and ack-based backpressure.
type Feed struct {
	r      *shard.Router
	cfg    FeedConfig
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	remote string
	stop   <-chan struct{}

	shipped atomic.Uint64
	acked   atomic.Uint64
	resets  atomic.Uint64
	roots   atomic.Uint64
	lastAck atomic.Int64 // unix nanos

	ackKick chan struct{} // 1-buffered; readAcks nudges waitWindow
	dead    chan struct{} // closed when the ack reader fails
	deadErr error         // set before dead closes
}

func (f *Feed) stats() FeedStats {
	s := FeedStats{
		Remote:  f.remote,
		Shipped: f.shipped.Load(),
		Acked:   f.acked.Load(),
		Resets:  f.resets.Load(),
		Roots:   f.roots.Load(),
	}
	if ns := f.lastAck.Load(); ns != 0 {
		s.LastAck = time.Unix(0, ns)
	}
	return s
}

// errFeedStopped ends a feed cleanly on server drain.
var errFeedStopped = errors.New("repl: feed stopped")

// ServeFeed runs a follower feed on an established connection whose
// OpFollow handshake already succeeded (the OK response is on the
// wire). pos is the follower's per-shard positions from the handshake.
// It returns when the connection dies, a shard errors, or stop closes;
// the connection is closed on return. reg, when non-nil, exposes the
// feed for metrics while it runs.
func ServeFeed(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, r *shard.Router, pos []Position, cfg FeedConfig, stop <-chan struct{}, reg *Registry) error {
	cfg.fill()
	f := &Feed{
		r: r, cfg: cfg, nc: nc, br: br, bw: bw,
		remote:  nc.RemoteAddr().String(),
		stop:    stop,
		ackKick: make(chan struct{}, 1),
		dead:    make(chan struct{}),
	}
	f.lastAck.Store(time.Now().UnixNano()) // liveness baseline until the first real ack
	if reg != nil {
		reg.add(f)
		defer reg.remove(f)
	}
	ackDone := make(chan struct{})
	defer func() {
		nc.Close()
		<-ackDone
	}()
	go f.readAcks(ackDone)

	err := f.stream(pos)
	if errors.Is(err, errFeedStopped) {
		return nil
	}
	return err
}

// stream is the feed's single writer loop: round-robin over shards,
// ship whatever each WAL tail holds, bootstrap shards the log no
// longer covers, sleep briefly when everything is caught up.
// rootSeal is a state root pinned to the exact WAL position it
// covers, waiting for the feed to ship every record at or below that
// position before it can be published as a FrameRoot.
type rootSeal struct {
	root verify.Hash
	seg  uint64
	off  int64
}

func (f *Feed) stream(pos []Position) error {
	shards := f.r.Shards()
	readers := make([]*wal.TailReader, shards)
	defer func() {
		for _, t := range readers {
			if t != nil {
				t.Close()
			}
		}
	}()
	for i := range readers {
		if !pos[i].fresh() {
			readers[i] = wal.NewTailReader(f.r.Engine(i).WALDir(), pos[i].Seg, pos[i].Off)
		}
	}
	recs := make([]wal.Record, 0, maxFrameRecords)
	verified := f.cfg.Version >= 3 && f.r.Verified()
	seals := make([]*rootSeal, shards)
	lastRoot := make([]time.Time, shards)
	var enc wire.Buf
	for {
		if err := f.checkLive(); err != nil {
			return err
		}
		shippedThisRound := 0
		for i := 0; i < shards; i++ {
			if readers[i] == nil {
				t, err := f.bootstrap(i, &enc)
				if err != nil {
					return err
				}
				readers[i] = t
				seals[i] = nil
				shippedThisRound++
				continue
			}
			if verified && seals[i] == nil && time.Since(lastRoot[i]) >= f.cfg.RootEvery {
				root, sseg, soff, err := f.r.Engine(i).SealedRoot()
				if err != nil {
					return err
				}
				seals[i] = &rootSeal{root: root, seg: sseg, off: soff}
			}
			if err := f.waitWindow(); err != nil {
				return err
			}
			maxN := maxFrameRecords
			if s := seals[i]; s != nil {
				rseg, roff := readers[i].Pos()
				switch {
				case rseg > s.seg || (rseg == s.seg && roff > s.off):
					// The reader already passed the sealed position (it
					// was overshot mid-frame by an earlier round): this
					// seal can no longer be published at an exact
					// boundary, so drop it and seal afresh later.
					seals[i] = nil
				case rseg == s.seg && roff == s.off:
					// Every record at or below the seal has shipped and
					// nothing above it: publish the root at this exact
					// boundary.
					enc.Reset()
					enc.U64(s.seg)
					enc.U64(uint64(s.off))
					enc.B = append(enc.B, s.root[:]...)
					if err := f.writeFrame(uint64(i), wire.FrameRoot, enc.B); err != nil {
						return err
					}
					f.roots.Add(1)
					lastRoot[i] = time.Now()
					seals[i] = nil
					shippedThisRound++
					continue
				case rseg == s.seg:
					// Cap the read so the next frame ends exactly at
					// the sealed position (records are fixed-length).
					if remain := int((s.off - roff) / wal.RecordLen); remain < maxN {
						maxN = remain
					}
				}
			}
			var err error
			recs, err = readers[i].Next(maxN, recs[:0])
			if errors.Is(err, wal.ErrTruncated) {
				// A checkpoint outran this follower: the suffix it needs
				// is gone. Fall back to a snapshot bootstrap next round.
				f.cfg.Logf("repl feed %s: shard %d position truncated, re-bootstrapping", f.remote, i)
				readers[i].Close()
				readers[i] = nil
				continue
			}
			if err != nil {
				return err
			}
			if len(recs) == 0 {
				continue
			}
			seg, off := readers[i].Pos()
			AppendRecords(&enc, seg, off, recs)
			if err := f.writeFrame(uint64(i), wire.FrameRecords, enc.B); err != nil {
				return err
			}
			f.shipped.Add(uint64(len(recs)))
			shippedThisRound++
		}
		if err := f.flush(); err != nil {
			return err
		}
		if shippedThisRound == 0 {
			select {
			case <-f.stop:
				return errFeedStopped
			case <-f.dead:
				return f.deadErr
			case <-time.After(f.cfg.Poll):
			}
		}
	}
}

// bootstrap ships shard i from scratch: reset, fuzzy state snapshot,
// snapshot-end carrying the resume segment. Returns the tail reader
// positioned at that segment. The snapshot scan holds the engine's
// checkpoint lock and pauses its background compression, so
// backpressure stalls inside it stall checkpoints too — the price of
// never losing a pair between snapshot and stream.
func (f *Feed) bootstrap(i int, enc *wire.Buf) (*wal.TailReader, error) {
	f.resets.Add(1)
	if err := f.writeFrame(uint64(i), wire.FrameReset, nil); err != nil {
		return nil, err
	}
	e := f.r.Engine(i)
	recs := make([]wal.Record, 0, maxFrameRecords)
	ship := func() error {
		if len(recs) == 0 {
			return nil
		}
		if err := f.waitWindow(); err != nil {
			return err
		}
		AppendRecords(enc, 0, 0, recs)
		if err := f.writeFrame(uint64(i), wire.FrameRecords, enc.B); err != nil {
			return err
		}
		f.shipped.Add(uint64(len(recs)))
		recs = recs[:0]
		return f.flush()
	}
	seg, err := e.StreamState(func(k base.Key, v base.Value) error {
		recs = append(recs, wal.Record{Kind: wal.KindPut, Key: k, Value: v})
		if len(recs) == maxFrameRecords {
			return ship()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := ship(); err != nil {
		return nil, err
	}
	enc.Reset()
	enc.U64(seg)
	if err := f.writeFrame(uint64(i), wire.FrameSnapEnd, enc.B); err != nil {
		return nil, err
	}
	if err := f.flush(); err != nil {
		return nil, err
	}
	return wal.NewTailReader(e.WALDir(), seg, wal.SegmentHeaderLen), nil
}

// waitWindow blocks while the shipped-minus-acked window is full,
// bounded by the ack-liveness timeout: a follower that reads forever
// without acknowledging must not hold the feed (and, during a
// bootstrap, the engine's checkpoint lock) hostage.
func (f *Feed) waitWindow() error {
	for f.shipped.Load()-f.acked.Load() >= uint64(f.cfg.Window) {
		if since := time.Since(time.Unix(0, f.lastAck.Load())); since > f.cfg.AckTimeout {
			return fmt.Errorf("repl: follower %s stalled: window full with no ack for %v", f.remote, since.Round(time.Second))
		}
		select {
		case <-f.stop:
			return errFeedStopped
		case <-f.dead:
			return f.deadErr
		case <-f.ackKick:
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil
}

// checkLive folds the stop and connection-death signals into one poll.
func (f *Feed) checkLive() error {
	select {
	case <-f.stop:
		return errFeedStopped
	case <-f.dead:
		return f.deadErr
	default:
		return nil
	}
}

func (f *Feed) writeFrame(id uint64, code uint8, payload []byte) error {
	return wire.WriteFrame(f.bw, id, code, payload)
}

// flush drains the buffered writer with a generous deadline: a
// follower stalled past it is indistinguishable from a dead one.
func (f *Feed) flush() error {
	if f.bw.Buffered() == 0 {
		return nil
	}
	f.nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	return f.bw.Flush()
}

// readAcks is the feed's read half: it consumes FrameAck frames,
// advancing the acked counter and nudging a blocked waitWindow. Any
// read error marks the feed dead (the stream loop observes it); the
// loop exits when ServeFeed closes the connection.
func (f *Feed) readAcks(done chan<- struct{}) {
	defer close(done)
	f.nc.SetReadDeadline(time.Time{})
	shards := f.r.Shards()
	var buf []byte
	for {
		_, code, payload, err := wire.ReadFrame(f.br, buf)
		if err != nil {
			f.deadErr = fmt.Errorf("repl: follower %s: %w", f.remote, err)
			close(f.dead)
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:0]
		}
		if code != wire.FrameAck {
			f.deadErr = fmt.Errorf("repl: follower %s sent frame %d, want ack", f.remote, code)
			close(f.dead)
			return
		}
		_, applied, err := decodeAck(payload, shards)
		if err != nil {
			f.deadErr = err
			close(f.dead)
			return
		}
		f.acked.Store(applied)
		f.lastAck.Store(time.Now().UnixNano())
		select {
		case f.ackKick <- struct{}{}:
		default:
		}
	}
}
