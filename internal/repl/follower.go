package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/shard"
	"blinktree/internal/verify"
	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

// PositionsFile is the name of the follower's durable position record,
// stored beside the per-shard WAL directories.
const PositionsFile = "replpos"

// FollowerConfig tunes a Follower. Primary is required; everything
// else defaults.
type FollowerConfig struct {
	// Primary is the primary server's wire address (host:port).
	Primary string
	// Dir is where per-shard positions persist (the follower's
	// durability directory). Empty = positions live only in memory:
	// every restart bootstraps from a fresh snapshot.
	Dir string
	// DialTimeout bounds each dial + handshake. Default 5s.
	DialTimeout time.Duration
	// Backoff is the initial reconnect delay after a broken session;
	// it doubles up to 4s. Default 250ms.
	Backoff time.Duration
	// AckEvery is how many applied records between acks (and position
	// persists). Default 1024.
	AckEvery int
	// Logf receives connection-level notices. Default: discard.
	Logf func(format string, args ...any)
}

func (c *FollowerConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// FollowerStats is a snapshot of a follower's replication counters.
type FollowerStats struct {
	// Applied counts records applied over the follower's lifetime
	// (including snapshot bootstrap pairs).
	Applied uint64
	// Resets counts snapshot bootstraps (fresh start, or the primary
	// checkpointed past this follower's position).
	Resets uint64
	// Connected reports a live session with the primary.
	Connected bool
	// Positions are the current per-shard WAL positions.
	Positions []Position
	// RootChecks counts primary-published state roots this follower
	// recomputed locally and matched (verified replication).
	RootChecks uint64
	// LastErr is the most recent session error ("" when none).
	LastErr string
}

// Follower replicates a primary's WAL into a local Router: it dials,
// handshakes OpFollow with its durable per-shard positions, applies
// the streamed records through ApplyBatch — on a durable router that
// appends to the follower's own WAL and group-commits, which is what
// makes the follower promotable — and acknowledges periodically.
// Broken sessions reconnect with backoff and resume from the acked
// positions; re-applied records are idempotent by the WAL's replay
// contract.
type Follower struct {
	r   *shard.Router
	cfg FollowerConfig

	mu      sync.Mutex
	pos     []Position
	lastErr string

	applied    atomic.Uint64
	resets     atomic.Uint64
	rootChecks atomic.Uint64
	connected  atomic.Bool

	stopMu  sync.Mutex // serializes Stop (e.g. concurrent promotions)
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewFollower prepares a follower for r, loading persisted positions
// from cfg.Dir when present. A missing, torn, or mismatched position
// file degrades to a fresh bootstrap — never an error.
func NewFollower(r *shard.Router, cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: FollowerConfig.Primary required")
	}
	cfg.fill()
	f := &Follower{
		r:    r,
		cfg:  cfg,
		pos:  make([]Position, r.Shards()),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Dir != "" {
		if pos, ok := loadPositions(filepath.Join(cfg.Dir, PositionsFile), r.Shards()); ok {
			f.pos = pos
		}
	}
	return f, nil
}

// Start launches the replication loop. Safe against a racing Stop:
// a follower stopped (e.g. promoted) before Start simply never runs.
func (f *Follower) Start() {
	f.stopMu.Lock()
	defer f.stopMu.Unlock()
	if f.started {
		return // already running, or Stop won the race and closed done
	}
	f.started = true
	go f.run()
}

// Stop ends replication: the session closes, positions persist, and
// Stop returns once the loop has exited. Idempotent and safe for
// concurrent use (two clients racing to promote call it together).
// Promotion is Stop plus whatever the serving layer does to accept
// writes.
func (f *Follower) Stop() error {
	f.stopMu.Lock()
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	if !f.started {
		close(f.done)
		f.started = true
	}
	f.stopMu.Unlock()
	<-f.done
	return f.persistPositions()
}

// Stats returns a snapshot of the follower's counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	pos := append([]Position(nil), f.pos...)
	lastErr := f.lastErr
	f.mu.Unlock()
	return FollowerStats{
		Applied:    f.applied.Load(),
		Resets:     f.resets.Load(),
		Connected:  f.connected.Load(),
		Positions:  pos,
		RootChecks: f.rootChecks.Load(),
		LastErr:    lastErr,
	}
}

// run is the reconnect loop.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.Backoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progressed, err := f.session()
		if err == nil {
			return // clean stop
		}
		f.mu.Lock()
		f.lastErr = err.Error()
		f.mu.Unlock()
		if errors.Is(err, errPermanent) {
			f.cfg.Logf("repl follower: %v — giving up (fix the configuration and restart)", err)
			return
		}
		if progressed {
			backoff = f.cfg.Backoff
		}
		f.cfg.Logf("repl follower: %v (reconnecting in %v)", err, backoff)
		select {
		case <-f.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 4*time.Second {
			backoff *= 2
		}
	}
}

// errPermanent wraps handshake rejections that retrying cannot fix
// (shard-count mismatch, volatile primary).
var errPermanent = errors.New("permanent")

// session runs one connection: dial, handshake, apply until the
// connection dies or stop closes. It returns (_, nil) only on clean
// stop; progressed reports whether any record was applied (resets the
// reconnect backoff).
func (f *Follower) session() (progressed bool, err error) {
	nc, err := net.DialTimeout("tcp", f.cfg.Primary, f.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	nc.SetDeadline(time.Now().Add(f.cfg.DialTimeout))
	if err := wire.WriteHello(nc); err != nil {
		return false, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 16<<10)
	if _, err := wire.ReadHello(br); err != nil {
		return false, fmt.Errorf("repl: hello: %w", err)
	}

	// Handshake: ship our positions, expect OK + the primary's shard
	// count (already validated server-side; double-checked here).
	var enc wire.Buf
	f.mu.Lock()
	AppendFollowRequest(&enc, f.pos)
	f.mu.Unlock()
	if err := wire.WriteFrame(nc, 1, wire.OpFollow, enc.B); err != nil {
		return false, err
	}
	_, status, payload, err := wire.ReadFrame(br, nil)
	if err != nil {
		return false, fmt.Errorf("repl: handshake: %w", err)
	}
	if status != wire.StatusOK {
		err := wire.StatusError(status, string(payload))
		if status == wire.StatusBadRequest {
			return false, fmt.Errorf("%w: primary rejected follow: %v", errPermanent, err)
		}
		return false, fmt.Errorf("repl: primary rejected follow: %w", err)
	}
	d := wire.Dec{B: payload}
	if n := int(d.U32()); d.Err != nil || n != f.r.Shards() {
		return false, fmt.Errorf("%w: primary has %d shards, follower has %d", errPermanent, n, f.r.Shards())
	}
	nc.SetDeadline(time.Time{})
	f.connected.Store(true)
	defer f.connected.Store(false)
	f.mu.Lock()
	f.lastErr = ""
	f.mu.Unlock()

	return f.apply(nc, br, bw)
}

// apply is the session's frame loop. Acks carry the record count
// applied within THIS session, matching the feed's shipped counter for
// lag accounting; positions in the ack are the durable resume points.
func (f *Follower) apply(nc net.Conn, br *bufio.Reader, bw *bufio.Writer) (progressed bool, err error) {
	var (
		scratch        []byte
		recs           []wal.Record
		ops            []shard.Op
		enc            wire.Buf
		sessionApplied uint64
		sinceAck       int
	)
	sendAck := func() error {
		f.mu.Lock()
		appendAck(&enc, f.pos, sessionApplied)
		f.mu.Unlock()
		if err := wire.WriteFrame(bw, 0, wire.FrameAck, enc.B); err != nil {
			return err
		}
		nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if err := bw.Flush(); err != nil {
			return err
		}
		sinceAck = 0
		return f.persistPositions()
	}
	handle := func(id uint64, code uint8, payload []byte) error {
		sh := int(id)
		if sh < 0 || sh >= f.r.Shards() {
			return fmt.Errorf("repl: frame for shard %d of %d", sh, f.r.Shards())
		}
		switch code {
		case wire.FrameRecords:
			seg, endOff, rs, err := DecodeRecords(payload, recs[:0])
			if err != nil {
				return err
			}
			recs = rs
			if err := f.applyRecords(recs, &ops); err != nil {
				return err
			}
			if seg != 0 {
				f.mu.Lock()
				f.pos[sh] = Position{Seg: seg, Off: endOff}
				f.mu.Unlock()
			}
			f.applied.Add(uint64(len(recs)))
			sessionApplied += uint64(len(recs))
			sinceAck += len(recs)
			progressed = true
			if sinceAck >= f.cfg.AckEvery {
				return sendAck()
			}
			return nil
		case wire.FrameReset:
			f.resets.Add(1)
			return f.wipeShard(sh)
		case wire.FrameRoot:
			if len(payload) != 48 {
				return fmt.Errorf("repl: malformed root frame")
			}
			seg := binary.LittleEndian.Uint64(payload[0:8])
			off := int64(binary.LittleEndian.Uint64(payload[8:16]))
			var root verify.Hash
			copy(root[:], payload[16:])
			if !f.r.Verified() {
				return nil // primary is verified, follower isn't: nothing to compare
			}
			f.mu.Lock()
			pos := f.pos[sh]
			f.mu.Unlock()
			if pos.Seg != seg || pos.Off != off {
				// Not at the sealed boundary (mid-bootstrap, or a
				// resumed session skipped frames the primary already
				// counted): comparing here would false-alarm, skip.
				return nil
			}
			// This goroutine is the only mutator of the follower's
			// router, so the root is exact at this position.
			own, err := f.r.Engine(sh).VerifyRoot()
			if err != nil {
				return err
			}
			if own != root {
				f.cfg.Logf("repl follower: ALARM: state root divergence at shard %d seg %d off %d: primary %x, follower %x",
					sh, seg, off, root[:8], own[:8])
				return fmt.Errorf("%w: state root divergence at shard %d (seg %d off %d): data divergence or tampering detected, refusing to continue",
					errPermanent, sh, seg, off)
			}
			f.rootChecks.Add(1)
			return nil
		case wire.FrameSnapEnd:
			d := wire.Dec{B: payload}
			seg := d.U64()
			if !d.Done() || seg == 0 {
				return fmt.Errorf("repl: malformed snap-end frame")
			}
			f.mu.Lock()
			f.pos[sh] = Position{Seg: seg, Off: wal.SegmentHeaderLen}
			f.mu.Unlock()
			return sendAck()
		default:
			return fmt.Errorf("repl: unexpected frame code %d", code)
		}
	}
	// drainBuffered processes the complete frames already sitting in
	// the read buffer. Stopping without this could drop a received
	// FrameSnapEnd, losing a just-finished bootstrap's position commit
	// and forcing a needless re-bootstrap on the next session.
	drainBuffered := func() error {
		for br.Buffered() >= 4 {
			p, err := br.Peek(4)
			if err != nil {
				return nil
			}
			flen := int(binary.LittleEndian.Uint32(p))
			if flen < 9 || flen > wire.MaxFrame+9 || br.Buffered() < 4+flen {
				return nil
			}
			id, code, payload, err := wire.ReadFrame(br, scratch)
			if err != nil {
				return nil
			}
			if cap(payload) > cap(scratch) {
				scratch = payload[:0]
			}
			if err := handle(id, code, payload); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		// Deadline expiry is only taken on Peek — which never consumes —
		// so waking to observe stop cannot tear a frame (the same
		// discipline as the server's gather loop).
		select {
		case <-f.stop:
			if err := drainBuffered(); err != nil {
				return progressed, err
			}
			if sinceAck > 0 {
				sendAck() //nolint:errcheck // best effort on the way out
			}
			return progressed, nil
		default:
		}
		nc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := br.Peek(4); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				if sinceAck > 0 {
					if err := sendAck(); err != nil {
						return progressed, err
					}
				}
				continue
			}
			return progressed, err
		}
		nc.SetReadDeadline(time.Now().Add(30 * time.Second))
		id, code, payload, err := wire.ReadFrame(br, scratch)
		if err != nil {
			return progressed, err
		}
		if cap(payload) > cap(scratch) {
			scratch = payload[:0]
		}
		if err := handle(id, code, payload); err != nil {
			return progressed, err
		}
	}
}

// applyRecords re-applies one frame's records through the router —
// puts as upserts, dels as delete-if-present — exactly the WAL replay
// contract, which is what makes at-least-once delivery safe.
func (f *Follower) applyRecords(recs []wal.Record, ops *[]shard.Op) error {
	*ops = (*ops)[:0]
	for _, r := range recs {
		switch r.Kind {
		case wal.KindPut:
			*ops = append(*ops, shard.Op{Kind: shard.OpUpsert, Key: r.Key, Value: r.Value})
		case wal.KindDel:
			*ops = append(*ops, shard.Op{Kind: shard.OpDelete, Key: r.Key})
		}
	}
	for i, res := range f.r.ApplyBatch(*ops) {
		if res.Err != nil && !((*ops)[i].Kind == shard.OpDelete && errors.Is(res.Err, base.ErrNotFound)) {
			return fmt.Errorf("repl: apply record: %w", res.Err)
		}
	}
	return nil
}

// wipeShard deletes every pair in shard sh's span ahead of a snapshot
// bootstrap. Deletes route through ApplyBatch so a durable follower
// logs them — its own recovery must not resurrect wiped pairs.
func (f *Follower) wipeShard(sh int) error {
	lo, hi := f.r.ShardSpan(sh)
	keys := make([]base.Key, 0, 2048)
	ops := make([]shard.Op, 0, 2048)
	for {
		keys = keys[:0]
		err := f.r.Range(lo, hi, func(k base.Key, _ base.Value) bool {
			keys = append(keys, k)
			return len(keys) < 2048
		})
		if err != nil {
			return err
		}
		if len(keys) == 0 {
			return nil
		}
		ops = ops[:0]
		for _, k := range keys {
			ops = append(ops, shard.Op{Kind: shard.OpDelete, Key: k})
		}
		for _, res := range f.r.ApplyBatch(ops) {
			if res.Err != nil && !errors.Is(res.Err, base.ErrNotFound) {
				return fmt.Errorf("repl: wipe shard %d: %w", sh, res.Err)
			}
		}
	}
}

// persistPositions atomically rewrites the position file (no-op
// without a Dir) through wal.WriteFileDurable — a crash leaves either
// the old file or the new one, and a torn file fails its CRC and
// degrades to a bootstrap.
func (f *Follower) persistPositions() error {
	if f.cfg.Dir == "" {
		return nil
	}
	f.mu.Lock()
	pos := append([]Position(nil), f.pos...)
	f.mu.Unlock()
	buf := make([]byte, 0, 16+16*len(pos))
	buf = append(buf, 'B', 'L', 'R', 'P')
	buf = binary.LittleEndian.AppendUint32(buf, 1)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pos)))
	for _, p := range pos {
		buf = binary.LittleEndian.AppendUint64(buf, p.Seg)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Off))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli)))
	return wal.WriteFileDurable(filepath.Join(f.cfg.Dir, PositionsFile), buf)
}

// loadPositions reads a persisted position file; ok=false (fresh
// bootstrap) for a missing, torn, or mismatched file.
func loadPositions(path string, shards int) ([]Position, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(data) < 16 || string(data[0:4]) != "BLRP" ||
		binary.LittleEndian.Uint32(data[4:8]) != 1 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if n != shards || len(data) != 12+16*n+4 {
		return nil, false
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != sum {
		return nil, false
	}
	pos := make([]Position, n)
	for i := range pos {
		o := 12 + 16*i
		pos[i] = Position{
			Seg: binary.LittleEndian.Uint64(data[o:]),
			Off: int64(binary.LittleEndian.Uint64(data[o+8:])),
		}
	}
	return pos, true
}
