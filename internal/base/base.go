// Package base defines the shared vocabulary of the blinktree module:
// keys, values, open bounds (±∞), page identifiers, the Tree interface
// implemented by the Sagiv tree and every baseline, and common errors.
//
// Everything else in the module depends on this package and this package
// depends on nothing, so it must stay small and allocation-free.
package base

import (
	"errors"
	"fmt"
)

// Key is a search key. The full uint64 range is usable; the open bounds
// −∞ and +∞ are represented out of band by Bound.
type Key uint64

// Value is the "pointer to the record" of the paper: an opaque 64-bit
// payload stored next to each key in a leaf.
type Value uint64

// PageID names a node page. Zero is the nil pointer (no page), matching
// the paper's use of nil links on the rightmost node of each level.
type PageID uint32

// NilPage is the null page pointer.
const NilPage PageID = 0

// Bound is a key extended with −∞ and +∞, used for the high value of the
// rightmost node at each level (+∞) and the low value of the leftmost
// node (−∞). The zero value is −∞ so that freshly zeroed nodes have a
// conservative low bound.
type Bound struct {
	// Kind discriminates the bound.
	Kind BoundKind
	// K is the finite key; meaningful only when Kind == Finite.
	K Key
}

// BoundKind enumerates the three kinds of bound.
type BoundKind uint8

// The three bound kinds. NegInf is the zero value.
const (
	NegInf BoundKind = iota
	Finite
	PosInf
)

// FiniteBound returns the bound equal to k.
func FiniteBound(k Key) Bound { return Bound{Kind: Finite, K: k} }

// NegInfBound returns −∞.
func NegInfBound() Bound { return Bound{Kind: NegInf} }

// PosInfBound returns +∞.
func PosInfBound() Bound { return Bound{Kind: PosInf} }

// Less reports whether b < k. −∞ is less than every key; +∞ is less than
// none.
func (b Bound) Less(k Key) bool {
	switch b.Kind {
	case NegInf:
		return true
	case PosInf:
		return false
	default:
		return b.K < k
	}
}

// GreaterEqual reports whether b ≥ k.
func (b Bound) GreaterEqual(k Key) bool { return !b.Less(k) }

// LessBound reports whether b < o in the extended order.
func (b Bound) LessBound(o Bound) bool {
	if b.Kind != o.Kind {
		return b.Kind < o.Kind // NegInf < Finite < PosInf by construction
	}
	if b.Kind == Finite {
		return b.K < o.K
	}
	return false
}

// Equal reports whether two bounds are the same point.
func (b Bound) Equal(o Bound) bool {
	if b.Kind != o.Kind {
		return false
	}
	return b.Kind != Finite || b.K == o.K
}

// IsFinite reports whether the bound is a real key.
func (b Bound) IsFinite() bool { return b.Kind == Finite }

// String renders the bound for diagnostics.
func (b Bound) String() string {
	switch b.Kind {
	case NegInf:
		return "-inf"
	case PosInf:
		return "+inf"
	default:
		return fmt.Sprintf("%d", b.K)
	}
}

// Item is a key/value pair stored in a leaf.
type Item struct {
	Key   Key
	Value Value
}

// Common errors shared by every tree implementation.
var (
	// ErrNotFound is returned by Search and Delete when the key is absent.
	ErrNotFound = errors.New("blinktree: key not found")
	// ErrDuplicate is returned by Insert when the key is already present.
	ErrDuplicate = errors.New("blinktree: key already present")
	// ErrClosed is returned by operations on a closed tree or store.
	ErrClosed = errors.New("blinktree: closed")
	// ErrCorrupt is returned when an invariant check or a page decode fails.
	ErrCorrupt = errors.New("blinktree: corrupt structure")
)

// Tree is the logical-operation interface of the paper (§4): searches,
// insertions and deletions over (key, record-pointer) pairs, plus a
// sequential scan over the leaf chain — widened with the conditional
// writes (Upsert, GetOrInsert, Update, CompareAndSwap,
// CompareAndDelete) real serving workloads are shaped around. Each
// conditional write is a single atomic logical operation: the
// present/absent decision and the applied write are indivisible, which
// an emulation by Search followed by Insert/Delete is not. All
// implementations are safe for concurrent use unless documented
// otherwise.
type Tree interface {
	// Search returns the value stored under k, or ErrNotFound.
	Search(k Key) (Value, error)
	// Insert stores v under k. It returns ErrDuplicate if k is present.
	Insert(k Key, v Value) error
	// Delete removes k. It returns ErrNotFound if k is absent.
	Delete(k Key) error
	// Upsert stores v under k unconditionally, returning the previously
	// stored value and whether one existed.
	Upsert(k Key, v Value) (old Value, existed bool, err error)
	// GetOrInsert returns the value stored under k, inserting v first
	// when k is absent. loaded reports whether the value was already
	// present.
	GetOrInsert(k Key, v Value) (actual Value, loaded bool, err error)
	// Update atomically replaces the value under k with fn(current) and
	// returns the new value, or ErrNotFound when k is absent. fn runs
	// under the implementation's write lock and may be re-invoked after
	// internal restarts; it must be fast and side-effect free.
	Update(k Key, fn func(Value) Value) (Value, error)
	// CompareAndSwap replaces the value under k with new only when the
	// stored value equals old, reporting whether it swapped. A missing
	// key is ErrNotFound; a present key with a different value is
	// (false, nil).
	CompareAndSwap(k Key, old, new Value) (swapped bool, err error)
	// CompareAndDelete removes k only when the stored value equals old,
	// reporting whether it deleted, with the same error convention as
	// CompareAndSwap.
	CompareAndDelete(k Key, old Value) (deleted bool, err error)
	// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order,
	// stopping early if fn returns false.
	Range(lo, hi Key, fn func(Key, Value) bool) error
	// Len returns the number of stored pairs (approximate under
	// concurrent mutation).
	Len() int
	// Close releases resources. The tree must not be used afterwards.
	Close() error
}

// Checker is implemented by trees that can validate their structural
// invariants. Check must be called quiesced (no concurrent mutators)
// unless the implementation documents otherwise.
type Checker interface {
	Check() error
}
