package base

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundLess(t *testing.T) {
	tests := []struct {
		name string
		b    Bound
		k    Key
		want bool
	}{
		{"neginf less than zero", NegInfBound(), 0, true},
		{"neginf less than max", NegInfBound(), math.MaxUint64, true},
		{"posinf not less than max", PosInfBound(), math.MaxUint64, false},
		{"posinf not less than zero", PosInfBound(), 0, false},
		{"finite less", FiniteBound(5), 6, true},
		{"finite equal", FiniteBound(5), 5, false},
		{"finite greater", FiniteBound(5), 4, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.b.Less(tt.k); got != tt.want {
				t.Fatalf("(%v).Less(%d) = %v, want %v", tt.b, tt.k, got, tt.want)
			}
			if ge := tt.b.GreaterEqual(tt.k); ge == tt.want {
				t.Fatalf("GreaterEqual must be the negation of Less")
			}
		})
	}
}

func TestBoundLessBound(t *testing.T) {
	ni, pi := NegInfBound(), PosInfBound()
	f3, f7 := FiniteBound(3), FiniteBound(7)

	ordered := []Bound{ni, f3, f7, pi}
	for i := range ordered {
		for j := range ordered {
			want := i < j && !(ordered[i].Equal(ordered[j]))
			if got := ordered[i].LessBound(ordered[j]); got != want {
				t.Errorf("LessBound(%v, %v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
	if ni.LessBound(ni) || pi.LessBound(pi) || f3.LessBound(f3) {
		t.Fatal("LessBound must be irreflexive")
	}
}

func TestBoundEqualAndString(t *testing.T) {
	if !NegInfBound().Equal(NegInfBound()) || !PosInfBound().Equal(PosInfBound()) {
		t.Fatal("infinities must equal themselves")
	}
	if NegInfBound().Equal(PosInfBound()) {
		t.Fatal("-inf must not equal +inf")
	}
	if !FiniteBound(9).Equal(FiniteBound(9)) || FiniteBound(9).Equal(FiniteBound(8)) {
		t.Fatal("finite equality must compare keys")
	}
	if NegInfBound().String() != "-inf" || PosInfBound().String() != "+inf" || FiniteBound(42).String() != "42" {
		t.Fatal("unexpected String rendering")
	}
	if NegInfBound().IsFinite() || PosInfBound().IsFinite() || !FiniteBound(1).IsFinite() {
		t.Fatal("IsFinite misclassifies")
	}
}

func TestZeroBoundIsNegInf(t *testing.T) {
	var b Bound
	if b.Kind != NegInf {
		t.Fatalf("zero Bound kind = %v, want NegInf", b.Kind)
	}
}

// Property: for finite bounds, Less agrees with the key order, and
// LessBound is a strict total order consistent with Less.
func TestBoundOrderProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		ba, bb := FiniteBound(Key(a)), FiniteBound(Key(b))
		if ba.Less(Key(b)) != (a < b) {
			return false
		}
		if ba.LessBound(bb) != (a < b) {
			return false
		}
		// trichotomy
		n := 0
		if ba.LessBound(bb) {
			n++
		}
		if bb.LessBound(ba) {
			n++
		}
		if ba.Equal(bb) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
