// Package server turns a sharded blinktree engine into a network
// service: a TCP front-end speaking the length-prefixed binary
// protocol of internal/wire (specified in docs/protocol.md), plus an
// HTTP listener for /healthz and /metrics.
//
// The design premise is that network batching and the engine's
// batching are the same shape. Clients pipeline requests — many
// goroutines multiplexed onto one connection by the client package —
// and the server's per-connection poll loop gathers every request
// that arrives within a short coalescing window (Config.Coalesce,
// default 200µs, bounded by Config.MaxBatch requests and
// Config.MaxInflight bytes) into ONE shard.Router.ApplyBatch call.
// ApplyBatch fans the group out shard-parallel, and on a durable
// index each touched shard commits the whole group with a single WAL
// fsync. So the deeper clients pipeline, the fewer descents, lock
// acquisitions and fsyncs each operation costs — the same
// amortization Sagiv's design applies to structure modification,
// applied at the wire.
//
// Request/response framing is id-matched: the server may complete
// requests in any order, and a poll's responses are written with one
// buffered flush. Scans are served in bounded pages (wire.MaxScanLimit)
// so one request can never hold a connection or the response buffer
// hostage; Checkpoint and Stats execute inline on the connection's
// goroutine.
//
// Lock discipline inherited from the engine (see ARCHITECTURE.md):
// the server adds no locks around tree operations — searches stay
// lock-free, updates lock at most one node per shard, and the only
// server-side synchronization is each connection's private state plus
// the accept bookkeeping.
//
// Shutdown is graceful by default: Close stops accepting, lets every
// connection finish the poll it is executing (responses for accepted
// requests are flushed), and force-closes stragglers after
// Config.DrainTimeout.
//
// Replication rides the same front-end. A durable server accepts
// OpFollow handshakes and hands those connections to internal/repl
// feeds (WAL shipping with ack-based backpressure; lag surfaces on
// /metrics). Started with Config.ReadOnly, the server is a follower:
// mutations answer StatusReadOnly while reads serve normally, until
// an OpPromote request runs Config.OnPromote and flips it writable —
// the failover path cmd/blinkserver wires to a repl.Follower.
//
// The package deliberately depends on shard.Router, not on the public
// facade, so the facade, the harness and the benchmarks can all embed
// a Server without an import cycle. cmd/blinkserver is the thin
// binary around it; the public client lives in the client package.
package server
