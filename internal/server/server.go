package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/cluster"
	"blinktree/internal/metrics"
	"blinktree/internal/repl"
	"blinktree/internal/shard"
	"blinktree/internal/verify"
	"blinktree/internal/wire"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Addr is the TCP listen address. Default "127.0.0.1:4640"; use
	// ":0" to let the kernel pick (read it back with Server.Addr).
	Addr string
	// HTTPAddr, when non-empty, starts an HTTP listener serving
	// /healthz and /metrics. ":0" works here too (Server.HTTPAddr).
	HTTPAddr string
	// Coalesce is how long a connection's poll loop waits for more
	// pipelined requests after the first one before executing the
	// gathered batch. Default 200µs. 0 keeps the default; use a
	// negative value to disable waiting (each poll executes whatever
	// is already buffered).
	Coalesce time.Duration
	// MaxBatch caps requests gathered per poll. Default 1024.
	MaxBatch int
	// MaxInflight is the per-connection backpressure bound: the poll
	// loop stops reading once this many request bytes are gathered,
	// so one connection can never hold more than MaxInflight +
	// one response set in memory. Default 1 MiB.
	MaxInflight int
	// DrainTimeout bounds graceful shutdown: connections get this
	// long to finish their in-flight poll before being closed hard.
	// Default 5s.
	DrainTimeout time.Duration
	// IdleTimeout closes connections with no traffic for this long.
	// Default 0 = never.
	IdleTimeout time.Duration
	// Logf receives connection-level errors. Default: os.Stderr.
	Logf func(format string, args ...any)
	// ReadOnly starts the server refusing mutations with
	// StatusReadOnly — follower mode. Reads, scans, stats and
	// checkpoints (of the follower's own WAL) still serve. Cleared by
	// an OpPromote request.
	ReadOnly bool
	// OnPromote, when set, runs when an OpPromote request arrives and
	// the server is read-only — the hook that stops the local
	// replication Follower. The server becomes writable only if it
	// returns nil.
	OnPromote func() error
	// FollowWindow is the per-follower-feed backpressure bound: the
	// maximum number of shipped-but-unacknowledged records before a
	// feed pauses. Default 65536.
	FollowWindow int
	// RootEvery is how often a verified server publishes a sealed
	// state root on each follower feed. Default 1s.
	RootEvery time.Duration
	// Cluster, when set, makes this a cluster member: every op checks
	// the node's range-ownership map, ops on ranges owned elsewhere
	// (or fenced mid-migration) answer StatusWrongShard with a
	// redirect payload, and the OpMigrate/OpClusterMap ops serve.
	Cluster *cluster.Node
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:4640"
	}
	if c.Coalesce == 0 {
		c.Coalesce = 200 * time.Microsecond
	}
	if c.Coalesce < 0 {
		c.Coalesce = 0
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "blinkserver: "+format+"\n", args...)
		}
	}
}

// Metrics are the server's own counters, separate from the index's
// per-shard routing metrics (shard.OpMetrics). Polls vs Requests is
// the coalescing evidence: Requests/Polls is the mean number of
// pipelined requests each ApplyBatch absorbed.
type Metrics struct {
	Accepted  metrics.Counter // connections accepted
	Active    atomic.Int64    // connections currently open
	Polls     metrics.Counter // gather→execute→respond cycles
	Requests  metrics.Counter // requests served
	BatchOps  metrics.Counter // operations executed via ApplyBatch
	Scans     metrics.Counter // scan pages served
	Errors    metrics.Counter // protocol/decode errors
	BytesIn   metrics.Counter
	BytesOut  metrics.Counter
	PollLat   metrics.Histogram // execute+respond latency per poll
	ConnDrops metrics.Counter   // connections ended by error (not EOF)
}

// Server serves the wire protocol over TCP on top of a shard.Router.
// Each connection is handled by one goroutine running a poll loop:
// block for the first pipelined request, keep reading until the
// coalescing window closes (or MaxBatch/MaxInflight trip), execute the
// batchable operations as a single shard-parallel ApplyBatch — on a
// durable index that is also one WAL group commit per touched shard —
// then write all responses and flush once. Responses carry the
// client's request ids, so completion order never matters.
type Server struct {
	r   *shard.Router
	cfg Config

	ln     net.Listener
	httpLn net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed atomic.Bool   // accepting stopped
	drain  atomic.Bool   // connections should finish their poll and exit
	stopCh chan struct{} // closed with drain; wakes blocking loops (feeds)

	readOnly atomic.Bool   // follower mode: mutations refused
	feeds    repl.Registry // live follower feeds, for /metrics

	// Metrics is live while the server runs; read-only for callers.
	Metrics Metrics
}

// errDraining ends a connection loop during graceful shutdown.
var errDraining = errors.New("server: draining")

// New wraps r in an unstarted Server. The Router stays owned by the
// caller: Close drains connections but does not close r.
func New(r *shard.Router, cfg Config) *Server {
	cfg.fill()
	s := &Server{r: r, cfg: cfg, conns: make(map[net.Conn]struct{}), stopCh: make(chan struct{})}
	s.readOnly.Store(cfg.ReadOnly)
	return s
}

// ReadOnly reports whether the server is refusing mutations (follower
// mode, before promotion).
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// ReplStats snapshots the live follower feeds (empty when nothing
// follows this server).
func (s *Server) ReplStats() []repl.FeedStats { return s.feeds.Snapshot() }

// Start begins listening and accepting. It returns once the listeners
// are bound; serving happens on background goroutines.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.HTTPAddr != "" {
		if err := s.startHTTP(); err != nil {
			ln.Close()
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound TCP address (useful with Addr ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close gracefully shuts the server down: stop accepting, let every
// connection finish the poll it is executing (with DrainTimeout as the
// bound), then close everything. Safe to call more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.drain.Store(true)
	close(s.stopCh)
	err := s.ln.Close()
	if s.httpLn != nil {
		s.httpLn.Close()
	}
	// Connections poll their read deadline at least every 500ms, so
	// they notice drain promptly; force-close whatever remains after
	// the timeout.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.Metrics.Accepted.Inc()
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.Metrics.Active.Add(1)
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// request is one decoded frame awaiting execution. The payload slice
// is owned by the poll (copied out of the read buffer).
type request struct {
	id      uint64
	op      uint8
	payload []byte
}

func (s *Server) handleConn(nc net.Conn) {
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.Metrics.Active.Add(-1)
		s.wg.Done()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	fw := wire.NewFrameWriter(nc)

	// Hello exchange: validate the client before serving anything,
	// answering with the version we will speak — min(client, ours) —
	// so an old client works against a new server.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	clientV, err := wire.ReadHello(br)
	if err != nil {
		s.Metrics.Errors.Inc()
		return
	}
	negotiated := min(clientV, wire.Version)
	if err := wire.WriteHelloVersion(nc, negotiated); err != nil {
		return
	}

	c := &connState{s: s, nc: nc, br: br, fw: fw, ingestShard: -1, version: negotiated}
	for {
		c.reqs, c.ops, c.opRq = c.reqs[:0], c.ops[:0], c.opRq[:0]
		gerr := s.gather(c)
		if len(c.reqs) > 0 {
			start := time.Now()
			s.execute(c)
			if err := fw.Flush(); err != nil {
				if c.ingestShard >= 0 {
					s.cfg.Cluster.AbortIngest()
				}
				s.Metrics.ConnDrops.Inc()
				return
			}
			s.Metrics.PollLat.Observe(time.Since(start))
			s.Metrics.Polls.Inc()
		}
		if c.ingestShard >= 0 {
			// The poll carried an accepted migration-ingest handshake
			// (response flushed above): the connection now belongs to
			// the migration stream until the handoff ends it. The stream
			// loops speak bufio, built here — the poll loop's FrameWriter
			// is fully flushed and never used again on this connection.
			err := s.cfg.Cluster.ServeIngest(nc, br, bufio.NewWriterSize(nc, 64<<10), s.r, c.ingestShard)
			if err != nil && !isCleanClose(err) {
				s.cfg.Logf("migration ingest %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		if c.followPos != nil {
			// The poll carried an accepted OpFollow (response flushed
			// above): the connection now belongs to the replication
			// feed until the follower disconnects or the server drains.
			err := repl.ServeFeed(nc, br, bufio.NewWriterSize(nc, 64<<10), s.r,
				c.followPos, repl.FeedConfig{Window: s.cfg.FollowWindow, Logf: s.cfg.Logf,
					Version: c.version, RootEvery: s.cfg.RootEvery},
				s.stopCh, &s.feeds)
			if err != nil && !isCleanClose(err) {
				s.cfg.Logf("follower %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		if gerr != nil {
			if errors.Is(gerr, errDraining) {
				// Answer any requests already buffered with
				// StatusShutdown before closing, so a pipelining
				// client learns to reconnect-and-retry instead of
				// seeing an unexplained severed connection.
				s.refuseBuffered(c)
			} else if !isCleanClose(gerr) {
				s.Metrics.ConnDrops.Inc()
				s.cfg.Logf("conn %s: %v", nc.RemoteAddr(), gerr)
			}
			return
		}
	}
}

// refuseBuffered drains complete frames already sitting in the read
// buffer and answers each with StatusShutdown. Frames still in the
// kernel buffer or partially received are left unanswered — their
// caller sees the close, exactly like a request sent after the drain.
func (s *Server) refuseBuffered(c *connState) {
	for c.br.Buffered() >= 4 {
		p, err := c.br.Peek(4)
		if err != nil {
			break
		}
		flen := int(binary.LittleEndian.Uint32(p))
		if flen < 9 || flen > wire.MaxFrame+9 || c.br.Buffered() < 4+flen {
			break
		}
		id, _, _, err := wire.ReadFrame(c.br, c.scratch)
		if err != nil {
			break
		}
		s.writeFrame(c, id, wire.StatusShutdown, nil)
	}
	c.fw.Flush()
}

// connState is the per-connection scratch reused across polls; a
// connection is served by exactly one goroutine, so none of it is
// synchronized.
type connState struct {
	s       *Server
	nc      net.Conn
	br      *bufio.Reader
	fw      *wire.FrameWriter // response accumulator, one write per poll
	version uint16            // negotiated protocol version for this connection
	reqs    []request
	ops     []shard.Op         // batchable slots of the current poll
	opRq    []int              // ops[j] answers reqs[opRq[j]]
	batchSc shard.BatchScratch // ApplyBatchInto working memory for the poll's fused point ops
	// unitSc is serveBatch's own ApplyBatchInto scratch: an OpBatch
	// frame is served mid-dispatch, while execute is still answering
	// point ops from batchSc's results, so the two applies must not
	// share working memory.
	unitSc  shard.BatchScratch
	enc     wire.Buf // response payload scratch
	pool    []byte   // payload arena for the current poll
	scratch []byte   // frame read scratch, grown to the largest frame seen
	// frameStart is the accumulator size when the current beginFrame
	// opened, for the BytesOut metric.
	frameStart int
	// followPos, set by an accepted OpFollow, hands the connection to
	// the replication feed once the poll's responses are flushed.
	followPos []repl.Position
	// ingestShard (≥ 0), set by an accepted OpMigrate ingest
	// handshake, hands the connection to the migration ingest loop
	// once the poll's responses are flushed.
	ingestShard int
	// skipWait disables the coalesce wait after a window expired dry
	// (nothing more can arrive while callers await responses);
	// pollSeq re-samples it every 32nd poll.
	skipWait bool
	pollSeq  int
}

// isCleanClose reports errors that are a normal end of connection: a
// clean EOF between frames, a drain, or our own Close racing the read.
func isCleanClose(err error) bool {
	return errors.Is(err, errDraining) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF)
}

// gather reads one poll's worth of pipelined requests: block for the
// first frame (waking every 500ms to notice drain/idle), then keep
// decoding until the coalescing deadline passes with nothing buffered,
// or MaxBatch / MaxInflight trip. Deadline expiry is only ever taken
// on Peek — which never consumes — so a timeout cannot tear a frame.
func (s *Server) gather(c *connState) error {
	c.pollSeq++
	idleAt := time.Time{}
	if s.cfg.IdleTimeout > 0 {
		idleAt = time.Now().Add(s.cfg.IdleTimeout)
	}
	for {
		if s.drain.Load() {
			return errDraining
		}
		if !idleAt.IsZero() && time.Now().After(idleAt) {
			return io.EOF
		}
		c.nc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := c.br.Peek(4); err == nil {
			break
		} else if !errors.Is(err, os.ErrDeadlineExceeded) {
			return err
		}
	}
	now := time.Now()
	deadline := now.Add(s.cfg.Coalesce)
	// A frame is (at least partially) available: commit to reading it
	// whole. One generous deadline covers every frame of the poll — a
	// peer stalling mid-frame is a protocol violation and times out —
	// so the hot buffered-frame path resets no deadlines at all.
	c.nc.SetReadDeadline(now.Add(30 * time.Second))
	bytes, caught := 0, 0
	c.pool = c.pool[:0]
	for {
		id, op, payload, err := wire.ReadFrame(c.br, c.scratch)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.Metrics.Errors.Inc()
			}
			return err
		}
		if cap(payload) > cap(c.scratch) {
			c.scratch = payload[:0]
		}
		// Point ops — the hot path — decode straight into their
		// ApplyBatch slot, no payload copy. Everything else (units and
		// malformed frames) copies into the poll arena, because
		// ReadFrame's scratch is overwritten by the next frame.
		if sop, ok := decodePoint(op, payload); ok {
			c.opRq = append(c.opRq, len(c.reqs))
			c.ops = append(c.ops, sop)
			c.reqs = append(c.reqs, request{id: id, op: op})
		} else {
			off := len(c.pool)
			c.pool = append(c.pool, payload...)
			c.reqs = append(c.reqs, request{id: id, op: op, payload: c.pool[off:len(c.pool):len(c.pool)]})
		}
		bytes += len(payload) + 13
		s.Metrics.BytesIn.Add(uint64(len(payload) + 13))
		if len(c.reqs) >= s.cfg.MaxBatch || bytes >= s.cfg.MaxInflight || s.drain.Load() {
			return nil
		}
		if c.br.Buffered() >= 4 {
			continue // next frame already in the buffer
		}
		// Nothing else is buffered. A client's writer emits pipelined
		// calls in single write bursts, so a drained buffer usually
		// means the burst is over — and if every caller on this
		// connection is now awaiting a response, no more frames can
		// arrive until we answer. Waiting out the window then buys
		// nothing and costs its full length, so once the poll already
		// amortizes well, execute immediately; only small polls pay
		// the wait to merge straggler bursts.
		if len(c.reqs) >= 16 {
			return nil
		}
		if time.Until(deadline) <= 0 {
			return nil
		}
		// Adaptive: once every caller on this connection has its
		// request in flight, no more frames can arrive until we
		// answer — a window opened then expires empty and its full
		// length is pure added latency. A dry window (nothing caught)
		// therefore disables waiting, and every 32nd poll re-samples:
		// if that window catches traffic, waiting is productive again.
		// Serial request/response callers settle into (almost) never
		// waiting; deep pipelines keep the window exactly while it
		// keeps catching straggler bursts.
		if c.skipWait && c.pollSeq%32 != 0 {
			return nil
		}
		c.nc.SetReadDeadline(deadline)
		_, err = c.br.Peek(4)
		if err == nil {
			// More arrived within the window; restore the full-frame
			// deadline and keep gathering.
			caught++
			c.nc.SetReadDeadline(deadline.Add(30 * time.Second))
			continue
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			c.skipWait = caught == 0 // dry window: don't pay again
			return nil               // window closed; execute what we have
		}
		return err
	}
}

// execute runs one gathered poll. Point operations (search, insert,
// delete and the conditional writes) across ALL pipelined requests —
// already decoded into c.ops by gather — fuse into one ApplyBatch:
// shard-parallel, one WAL group commit per touched durable shard.
// Unit requests (scan, batch, len, stats, checkpoint, ping) run
// inline afterwards. Responses are written in request order, which is
// incidental: ids make any order legal.
//
// Ordering contract (docs/protocol.md): requests pipelined without
// waiting for responses may execute in any relative order; the only
// guarantee is that each response reflects some serial execution.
func (s *Server) execute(c *connState) {
	s.Metrics.Requests.Add(uint64(len(c.reqs)))
	var results []shard.Result
	if len(c.ops) > 0 {
		results = s.applyOps(c.ops, &c.batchSc)
		s.Metrics.BatchOps.Add(uint64(len(c.ops)))
	}
	next := 0 // cursor over c.opRq/results, aligned with request order
	for i := range c.reqs {
		rq := &c.reqs[i]
		if next < len(c.opRq) && c.opRq[next] == i {
			s.writePointResponse(c, rq, results[next])
			next++
			continue
		}
		s.serveUnit(c, rq)
	}
}

// applyOps dispatches a point-op batch through whichever gate applies:
// read-only follower, cluster ownership, or straight to the router.
// The results live in sc — valid until the next apply through the same
// scratch. The poll's fused point ops and serveBatch's explicit OpBatch
// frames use distinct scratches (c.batchSc vs c.unitSc) because an
// OpBatch is applied mid-dispatch, while point results from the same
// poll are still being encoded.
func (s *Server) applyOps(ops []shard.Op, sc *shard.BatchScratch) []shard.Result {
	if s.readOnly.Load() {
		return s.applyReadOnly(ops)
	}
	if s.cfg.Cluster != nil {
		return s.applyCluster(ops, sc)
	}
	return s.r.ApplyBatchInto(ops, sc)
}

// wrongShardErr marks a result refused because this server does not
// serve the op's range; the response layer turns it into
// StatusWrongShard with a redirect payload. It never leaves the server.
type wrongShardErr struct{ sh int }

func (e wrongShardErr) Error() string { return "server: wrong shard" }

// applyCluster executes a point-op batch on a cluster member: ops on
// ranges served here fuse into one shard-parallel batch, the rest are
// refused with a redirect. The ownership check and the apply sit
// under the node's fence read-lock — the migration fence takes the
// write side once after marking a range fenced, so when it proceeds no
// in-flight batch can still append to that range's WAL. Reads are
// gated too: a range owned elsewhere may hold stale data.
func (s *Server) applyCluster(ops []shard.Op, sc *shard.BatchScratch) []shard.Result {
	n := s.cfg.Cluster
	n.FenceRLock()
	defer n.FenceRUnlock()
	results := make([]shard.Result, len(ops))
	accepted := ops[:0:0]
	var idx []int
	for j, op := range ops {
		if sh := s.r.ShardFor(op.Key); !n.Serving(sh) {
			results[j].Err = wrongShardErr{sh: sh}
		} else {
			accepted = append(accepted, op)
			idx = append(idx, j)
		}
	}
	if len(idx) == len(ops) {
		return s.r.ApplyBatchInto(ops, sc)
	}
	if len(accepted) > 0 {
		for jj, res := range s.r.ApplyBatch(accepted) {
			results[idx[jj]] = res
		}
	}
	return results
}

// applyReadOnly executes a point-op batch on a follower: searches
// still fuse into one shard-parallel batch; every mutation answers
// StatusReadOnly without touching the index.
func (s *Server) applyReadOnly(ops []shard.Op) []shard.Result {
	results := make([]shard.Result, len(ops))
	var reads []shard.Op
	var readIdx []int
	for j, op := range ops {
		if op.Kind == shard.OpSearch {
			reads = append(reads, op)
			readIdx = append(readIdx, j)
		} else {
			results[j].Err = wire.ErrReadOnly
		}
	}
	if len(reads) > 0 {
		for jj, res := range s.r.ApplyBatch(reads) {
			results[readIdx[jj]] = res
		}
	}
	return results
}

// decodePoint maps a point-op request to its ApplyBatch slot. ok is
// false for unit ops and for malformed payloads (the latter are caught
// again — with a proper error response — in serveUnit).
func decodePoint(op uint8, payload []byte) (shard.Op, bool) {
	d := wire.Dec{B: payload}
	var o shard.Op
	switch op {
	case wire.OpSearch:
		o = shard.Op{Kind: shard.OpSearch, Key: base.Key(d.U64())}
	case wire.OpInsert:
		o = shard.Op{Kind: shard.OpInsert, Key: base.Key(d.U64()), Value: base.Value(d.U64())}
	case wire.OpDelete:
		o = shard.Op{Kind: shard.OpDelete, Key: base.Key(d.U64())}
	case wire.OpUpsert:
		o = shard.Op{Kind: shard.OpUpsert, Key: base.Key(d.U64()), Value: base.Value(d.U64())}
	case wire.OpGetOrInsert:
		o = shard.Op{Kind: shard.OpGetOrInsert, Key: base.Key(d.U64()), Value: base.Value(d.U64())}
	case wire.OpCompareAndSwap:
		o = shard.Op{Kind: shard.OpCompareAndSwap, Key: base.Key(d.U64())}
		o.Old = base.Value(d.U64())
		o.Value = base.Value(d.U64())
	case wire.OpCompareAndDelete:
		o = shard.Op{Kind: shard.OpCompareAndDelete, Key: base.Key(d.U64()), Old: base.Value(d.U64())}
	default:
		return shard.Op{}, false
	}
	if !d.Done() {
		return shard.Op{}, false
	}
	return o, true
}

// writePointResponse encodes one ApplyBatch result for its request.
func (s *Server) writePointResponse(c *connState, rq *request, res shard.Result) {
	if ws, ok := res.Err.(wrongShardErr); ok {
		s.writeFrame(c, rq.id, wire.StatusWrongShard, s.cfg.Cluster.RedirectPayload(ws.sh))
		return
	}
	if res.Err != nil {
		s.writeErr(c, rq.id, res.Err)
		return
	}
	c.enc.Reset()
	switch rq.op {
	case wire.OpSearch:
		c.enc.U64(uint64(res.Value))
	case wire.OpInsert, wire.OpDelete:
		// empty payload
	case wire.OpUpsert, wire.OpGetOrInsert:
		c.enc.U64(uint64(res.Value))
		c.enc.U8(boolByte(res.OK))
	case wire.OpCompareAndSwap, wire.OpCompareAndDelete:
		c.enc.U8(boolByte(res.OK))
	}
	s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
}

// serveUnit executes one non-point request inline and writes its
// response. Malformed point ops also land here (decodePoint rejected
// them), answered with StatusBadRequest.
func (s *Server) serveUnit(c *connState, rq *request) {
	d := wire.Dec{B: rq.payload}
	switch rq.op {
	case wire.OpPing:
		s.writeFrame(c, rq.id, wire.StatusOK, nil)
	case wire.OpLen:
		c.enc.Reset()
		c.enc.U64(uint64(s.servedLen()))
		s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
	case wire.OpCheckpoint:
		if err := s.r.Checkpoint(); err != nil {
			s.writeErr(c, rq.id, err)
			return
		}
		s.writeFrame(c, rq.id, wire.StatusOK, nil)
	case wire.OpStats:
		s.serveStats(c, rq)
	case wire.OpScan:
		lo, hi, limit := base.Key(d.U64()), base.Key(d.U64()), d.U32()
		if !d.Done() {
			s.badRequest(c, rq.id, "scan payload")
			return
		}
		s.serveScan(c, rq.id, lo, hi, int(limit))
	case wire.OpBatch:
		s.serveBatch(c, rq)
	case wire.OpFollow:
		s.serveFollow(c, rq)
	case wire.OpPromote:
		s.servePromote(c, rq)
	case wire.OpMigrate:
		s.serveMigrate(c, rq)
	case wire.OpClusterMap:
		if s.cfg.Cluster == nil {
			s.badRequest(c, rq.id, "not a cluster member")
			return
		}
		s.writeFrame(c, rq.id, wire.StatusOK, s.cfg.Cluster.MapPayload())
	case wire.OpRoot:
		s.serveRoot(c, rq)
	case wire.OpProve:
		s.serveProve(c, rq, &d)
	default:
		// Unknown ops and point ops whose payload failed to decode.
		s.badRequest(c, rq.id, fmt.Sprintf("unknown op %d or malformed payload", rq.op))
	}
}

// servedLen counts the pairs this server answers for: everything on a
// plain server, only the ranges it serves on a cluster member (data
// for migrated-away ranges is garbage awaiting a wipe, not inventory).
func (s *Server) servedLen() int {
	n := s.cfg.Cluster
	if n == nil {
		return s.r.Len()
	}
	total := 0
	for i := 0; i < s.r.Shards(); i++ {
		if n.Serving(i) {
			total += s.r.Engine(i).Tree.Len()
		}
	}
	return total
}

// serveScan answers one bounded page of lo ≤ key ≤ hi. On a cluster
// member the page is clamped to lo's range: a scan touching a range
// served elsewhere redirects, and a page ending at a served range's
// boundary reports more=1 so the client resumes (and re-routes) at the
// next range.
func (s *Server) serveScan(c *connState, id uint64, lo, hi base.Key, limit int) {
	if limit <= 0 {
		limit = wire.DefaultScanLimit
	}
	if limit > wire.MaxScanLimit {
		limit = wire.MaxScanLimit
	}
	clamped := false
	if n := s.cfg.Cluster; n != nil {
		sh := s.r.ShardFor(lo)
		if !n.Serving(sh) {
			s.writeFrame(c, id, wire.StatusWrongShard, n.RedirectPayload(sh))
			return
		}
		if _, rangeHi := s.r.ShardSpan(sh); hi > rangeHi {
			hi, clamped = rangeHi, true
		}
	}
	// The page is encoded directly into the frame accumulator — a full
	// page is 64 KiB of pairs, worth not staging through c.enc — with
	// the more/count prefix patched in place once the walk ends.
	e := s.beginFrame(c, id, wire.StatusOK)
	base0 := len(e.B)
	e.U8(0)  // more, patched below
	e.U32(0) // count, patched below
	count, more := 0, false
	err := s.r.Range(lo, hi, func(k base.Key, v base.Value) bool {
		if count == limit {
			more = true
			return false
		}
		e.U64(uint64(k))
		e.U64(uint64(v))
		count++
		return true
	})
	if err != nil {
		c.fw.Abort()
		s.writeErr(c, id, err)
		return
	}
	e.B[base0] = boolByte(more || clamped)
	e.B[base0+1] = byte(count)
	e.B[base0+2] = byte(count >> 8)
	e.B[base0+3] = byte(count >> 16)
	e.B[base0+4] = byte(count >> 24)
	s.Metrics.Scans.Inc()
	s.endFrame(c)
}

// serveBatch decodes an explicit OpBatch frame, applies it as its own
// shard-parallel batch, and encodes the positional per-slot results.
func (s *Server) serveBatch(c *connState, rq *request) {
	d := wire.Dec{B: rq.payload}
	n := int(d.U32())
	if d.Err != nil || n < 0 || n > wire.MaxBatchOps || len(rq.payload) != 4+25*n {
		if n > wire.MaxBatchOps {
			s.writeFrame(c, rq.id, wire.StatusTooLarge, []byte(fmt.Sprintf("batch of %d > %d", n, wire.MaxBatchOps)))
			return
		}
		s.badRequest(c, rq.id, "batch payload")
		return
	}
	ops := make([]shard.Op, n)
	for i := range ops {
		kind := d.U8()
		key, val, old := base.Key(d.U64()), base.Value(d.U64()), base.Value(d.U64())
		sk, ok := batchKind(kind)
		if !ok {
			s.badRequest(c, rq.id, fmt.Sprintf("batch slot %d kind %d", i, kind))
			return
		}
		ops[i] = shard.Op{Kind: sk, Key: key, Value: val, Old: old}
	}
	results := s.applyOps(ops, &c.unitSc)
	s.Metrics.BatchOps.Add(uint64(n))
	// Encode straight into the frame accumulator: no intermediate
	// payload buffer, no copy of up to 10·n bytes.
	e := s.beginFrame(c, rq.id, wire.StatusOK)
	for i := range results {
		// Batch slots are fixed-width, so a refused slot carries the
		// status alone; the client refreshes its map via OpClusterMap.
		if _, ok := results[i].Err.(wrongShardErr); ok {
			e.U8(wire.StatusWrongShard)
		} else {
			e.U8(wire.ErrStatus(results[i].Err))
		}
		e.U64(uint64(results[i].Value))
		e.U8(boolByte(results[i].OK))
	}
	s.endFrame(c)
}

// serveFollow validates a replication handshake and arms the feed
// handoff: the OK response (carrying the shard count) is written into
// the poll's response buffer, and once the poll flushes, handleConn
// hands the connection to repl.ServeFeed.
func (s *Server) serveFollow(c *connState, rq *request) {
	if !s.r.Durable() {
		s.badRequest(c, rq.id, "follow requires a durable primary (-durable)")
		return
	}
	pos, err := repl.DecodeFollowRequest(rq.payload, s.r.Shards())
	if err != nil {
		s.badRequest(c, rq.id, err.Error())
		return
	}
	c.followPos = pos
	c.enc.Reset()
	c.enc.U32(uint32(s.r.Shards()))
	s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
}

// servePromote flips a read-only follower writable, stopping its
// replication Follower through the OnPromote hook first. On a server
// that was not read-only it reports was=0 and changes nothing.
func (s *Server) servePromote(c *connState, rq *request) {
	was := s.readOnly.Load()
	if was {
		if s.cfg.OnPromote != nil {
			if err := s.cfg.OnPromote(); err != nil {
				s.writeErr(c, rq.id, err)
				return
			}
		}
		s.readOnly.Store(false)
		s.cfg.Logf("promoted: now accepting writes")
	}
	c.enc.Reset()
	c.enc.U8(boolByte(was))
	s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
}

// serveMigrate handles OpMigrate. Mode 0 (admin → source) runs a full
// live migration inline — the admin connection blocks until the
// handoff commits or fails, which keeps the trigger's semantics
// obvious; other connections are unaffected. Mode 1 (source → target)
// is the ingest handshake: it arms the connection handoff to the
// migration ingest loop, mirroring serveFollow.
func (s *Server) serveMigrate(c *connState, rq *request) {
	n := s.cfg.Cluster
	if n == nil {
		s.badRequest(c, rq.id, "not a cluster member (start with -cluster-advertise)")
		return
	}
	if !s.r.Durable() {
		s.badRequest(c, rq.id, "migration requires a durable server (-durable)")
		return
	}
	d := wire.Dec{B: rq.payload}
	mode := d.U8()
	sh := int(d.U32())
	tlen := int(d.U16())
	if d.Err != nil || len(rq.payload) != 7+tlen {
		s.badRequest(c, rq.id, "migrate payload")
		return
	}
	target := string(rq.payload[7:])
	switch mode {
	case 0:
		if err := n.Migrate(s.r, sh, target); err != nil {
			s.writeErr(c, rq.id, err)
			return
		}
		s.writeFrame(c, rq.id, wire.StatusOK, nil)
	case 1:
		already, version, err := n.BeginIngest(sh)
		if err != nil {
			s.writeErr(c, rq.id, err)
			return
		}
		if !already {
			c.ingestShard = sh
		}
		c.enc.Reset()
		c.enc.U8(boolByte(already))
		c.enc.U64(version)
		s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
	default:
		s.badRequest(c, rq.id, fmt.Sprintf("migrate mode %d", mode))
	}
}

// serveRoot answers the server's current engine state root (v3).
func (s *Server) serveRoot(c *connState, rq *request) {
	if c.version < 3 {
		s.badRequest(c, rq.id, "root requires protocol v3")
		return
	}
	if !s.r.Verified() {
		s.badRequest(c, rq.id, "server is not verified (start with -verified)")
		return
	}
	root, err := s.r.Root()
	if err != nil {
		s.writeErr(c, rq.id, err)
		return
	}
	s.writeFrame(c, rq.id, wire.StatusOK, root[:])
}

// serveProve answers an inclusion/exclusion proof for one key (v3).
func (s *Server) serveProve(c *connState, rq *request, d *wire.Dec) {
	if c.version < 3 {
		s.badRequest(c, rq.id, "prove requires protocol v3")
		return
	}
	if !s.r.Verified() {
		s.badRequest(c, rq.id, "server is not verified (start with -verified)")
		return
	}
	key := base.Key(d.U64())
	if !d.Done() {
		s.badRequest(c, rq.id, "prove payload")
		return
	}
	p, err := s.r.Prove(key)
	if err != nil {
		s.writeErr(c, rq.id, err)
		return
	}
	payload := verify.EncodeProof(nil, p)
	if len(payload) > wire.MaxFrame {
		s.writeFrame(c, rq.id, wire.StatusTooLarge,
			[]byte(fmt.Sprintf("proof of %d bytes exceeds the frame limit; raise VerifyBuckets", len(payload))))
		return
	}
	// The proof buffer is freshly built and never touched again, so the
	// writer can retain it as-is: the poll's flush sends it with writev
	// instead of copying a multi-KiB proof into the accumulator.
	s.Metrics.BytesOut.Add(uint64(len(payload) + 13))
	if err := c.fw.WriteFrameNoCopy(rq.id, wire.StatusOK, payload); err != nil {
		_ = err // surfaces at Flush, handled by the poll loop
	}
}

// ClusterStats snapshots the cluster node's counters (zero Stats when
// not a cluster member).
func (s *Server) ClusterStats() (cluster.Stats, bool) {
	if s.cfg.Cluster == nil {
		return cluster.Stats{}, false
	}
	return s.cfg.Cluster.ClusterStats(), true
}

// batchKind maps a wire op code to the shard batch kind it executes as.
func batchKind(op uint8) (shard.OpKind, bool) {
	switch op {
	case wire.OpSearch:
		return shard.OpSearch, true
	case wire.OpInsert:
		return shard.OpInsert, true
	case wire.OpDelete:
		return shard.OpDelete, true
	case wire.OpUpsert:
		return shard.OpUpsert, true
	case wire.OpGetOrInsert:
		return shard.OpGetOrInsert, true
	case wire.OpCompareAndSwap:
		return shard.OpCompareAndSwap, true
	case wire.OpCompareAndDelete:
		return shard.OpCompareAndDelete, true
	default:
		return 0, false
	}
}

// serveStats answers the cheap index-level counters (no occupancy
// walk): per-shard routed totals plus size and height.
func (s *Server) serveStats(c *connState, rq *request) {
	var fields [wire.StatsFields]uint64
	ss := s.r.ShardStats()
	fields[0] = uint64(len(ss))
	var height uint64
	for _, st := range ss {
		fields[1] += uint64(st.Len)
		if uint64(st.Height) > height {
			height = uint64(st.Height)
		}
		fields[3] += st.Searches
		fields[4] += st.Inserts
		fields[5] += st.Deletes
		fields[6] += st.Upserts
		fields[7] += st.Updates
		fields[8] += st.Cas
		fields[9] += st.Scans
		fields[10] += st.Batches
		fields[11] += st.BatchOps
	}
	fields[2] = height
	c.enc.Reset()
	c.enc.U32(wire.StatsFields)
	for _, f := range fields {
		c.enc.U64(f)
	}
	s.writeFrame(c, rq.id, wire.StatusOK, c.enc.B)
}

// writeErr maps err to its status code and writes an error response.
func (s *Server) writeErr(c *connState, id uint64, err error) {
	code := wire.ErrStatus(err)
	var msg []byte
	if code == wire.StatusInternal {
		msg = []byte(err.Error())
	}
	s.writeFrame(c, id, code, msg)
}

// badRequest answers a malformed frame without killing the connection.
func (s *Server) badRequest(c *connState, id uint64, what string) {
	s.Metrics.Errors.Inc()
	s.writeFrame(c, id, wire.StatusBadRequest, []byte(what))
}

// beginFrame opens a response frame encoded in place in the frame
// accumulator — for the big payloads (scan pages, batch results) where
// an intermediate encode buffer would mean copying the payload twice.
func (s *Server) beginFrame(c *connState, id uint64, code uint8) *wire.Buf {
	c.frameStart = c.fw.Buffered()
	return c.fw.Begin(id, code)
}

// endFrame closes a frame opened with beginFrame.
func (s *Server) endFrame(c *connState) {
	if err := c.fw.End(); err == nil {
		s.Metrics.BytesOut.Add(uint64(c.fw.Buffered() - c.frameStart))
	}
}

// writeFrame appends one response frame to the connection's frame
// accumulator (written to the socket once per poll).
func (s *Server) writeFrame(c *connState, id uint64, code uint8, payload []byte) {
	s.Metrics.BytesOut.Add(uint64(len(payload) + 13))
	if err := c.fw.WriteFrame(id, code, payload); err != nil {
		// Accumulated writes only fail at Flush; the poll loop
		// handles that. Nothing to do here.
		_ = err
	}
}

// boolByte encodes a bool as 0/1.
func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
