package server

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// startHTTP binds the health/metrics listener and serves it in the
// background. Endpoints:
//
//	/healthz  200 {"status":"ok"} while serving, 503 while draining
//	/metrics  Prometheus text exposition of the server counters and
//	          the per-shard routing stats (cheap: no occupancy walk)
func (s *Server) startHTTP() error {
	ln, err := net.Listen("tcp", s.cfg.HTTPAddr)
	if err != nil {
		return err
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ends when the listener closes
	return nil
}

// HTTPAddr returns the bound health/metrics address, or nil when
// Config.HTTPAddr was empty.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.drain.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m := &s.Metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP blinkserver_%s %s\n# TYPE blinkserver_%s counter\nblinkserver_%s %d\n",
			name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP blinkserver_%s %s\n# TYPE blinkserver_%s gauge\nblinkserver_%s %d\n",
			name, help, name, name, v)
	}
	counter("connections_accepted_total", "TCP connections accepted", m.Accepted.Load())
	gauge("connections_active", "TCP connections currently open", m.Active.Load())
	counter("polls_total", "gather-execute-respond cycles", m.Polls.Load())
	counter("requests_total", "requests served", m.Requests.Load())
	counter("batch_ops_total", "operations executed through ApplyBatch", m.BatchOps.Load())
	counter("scan_pages_total", "scan pages served", m.Scans.Load())
	counter("protocol_errors_total", "malformed frames and decode failures", m.Errors.Load())
	counter("conn_drops_total", "connections ended by error", m.ConnDrops.Load())
	counter("bytes_in_total", "request bytes read", m.BytesIn.Load())
	counter("bytes_out_total", "response bytes written", m.BytesOut.Load())
	fmt.Fprintf(w, "# HELP blinkserver_poll_latency_seconds execute+respond latency per poll\n")
	fmt.Fprintf(w, "# TYPE blinkserver_poll_latency_seconds summary\n")
	fmt.Fprintf(w, "blinkserver_poll_latency_seconds{quantile=\"0.5\"} %g\n", m.PollLat.Quantile(0.5).Seconds())
	fmt.Fprintf(w, "blinkserver_poll_latency_seconds{quantile=\"0.99\"} %g\n", m.PollLat.Quantile(0.99).Seconds())
	fmt.Fprintf(w, "blinkserver_poll_latency_seconds_count %d\n", m.PollLat.Count())

	// Per-shard routing balance, from the router's cheap stats.
	fmt.Fprintf(w, "# HELP blinkshard_pairs stored pairs per shard\n# TYPE blinkshard_pairs gauge\n")
	ss := s.r.ShardStats()
	for _, st := range ss {
		fmt.Fprintf(w, "blinkshard_pairs{shard=\"%d\"} %d\n", st.Shard, st.Len)
	}
	fmt.Fprintf(w, "# HELP blinkshard_routed_ops_total point+scan ops routed per shard\n# TYPE blinkshard_routed_ops_total counter\n")
	for _, st := range ss {
		routed := st.Searches + st.Inserts + st.Deletes + st.Upserts + st.Updates + st.Cas + st.Scans + st.BatchOps
		fmt.Fprintf(w, "blinkshard_routed_ops_total{shard=\"%d\"} %d\n", st.Shard, routed)
	}

	// Buffer pool behaviour per shard, when the index is disk-native
	// (or otherwise file-backed): demand hits/misses, eviction churn,
	// read-ahead, and the pin discipline's high-water.
	pooled := false
	for _, st := range ss {
		if st.Pooled {
			pooled = true
			break
		}
	}
	if pooled {
		poolCounter := func(name, help string, get func(shard int) uint64) {
			fmt.Fprintf(w, "# HELP blinkpool_%s %s\n# TYPE blinkpool_%s counter\n", name, help, name)
			for _, st := range ss {
				fmt.Fprintf(w, "blinkpool_%s{shard=\"%d\"} %d\n", name, st.Shard, get(st.Shard))
			}
		}
		poolGauge := func(name, help string, get func(shard int) int) {
			fmt.Fprintf(w, "# HELP blinkpool_%s %s\n# TYPE blinkpool_%s gauge\n", name, help, name)
			for _, st := range ss {
				fmt.Fprintf(w, "blinkpool_%s{shard=\"%d\"} %d\n", name, st.Shard, get(st.Shard))
			}
		}
		poolCounter("hits_total", "buffer pool demand hits", func(i int) uint64 { return ss[i].Pool.Hits })
		poolCounter("misses_total", "buffer pool demand misses", func(i int) uint64 { return ss[i].Pool.Misses })
		poolCounter("evictions_total", "frames evicted", func(i int) uint64 { return ss[i].Pool.Evictions })
		poolCounter("writebacks_total", "dirty frames written back", func(i int) uint64 { return ss[i].Pool.Writebacks })
		poolCounter("prefetches_total", "read-ahead hints issued", func(i int) uint64 { return ss[i].Pool.Prefetches })
		poolCounter("prefetch_loads_total", "pages faulted in by read-ahead", func(i int) uint64 { return ss[i].Pool.PrefetchLoads })
		poolGauge("resident_frames", "pages currently resident", func(i int) int { return ss[i].Pool.Resident })
		poolGauge("capacity_frames", "frame budget", func(i int) int { return ss[i].Pool.Capacity })
		poolGauge("pinned_frames", "frames currently pinned", func(i int) int { return ss[i].Pool.Pinned })
		poolGauge("pinned_high_water", "max simultaneously pinned frames", func(i int) int { return ss[i].Pool.PinnedHighWater })
	}

	// Replication: this server's role plus one lag gauge per live
	// follower feed (records shipped but not yet acknowledged).
	ro := int64(0)
	if s.readOnly.Load() {
		ro = 1
	}
	gauge("read_only", "1 while this server is a read-only follower", ro)
	feeds := s.feeds.Snapshot()
	gauge("followers", "live follower feeds", int64(len(feeds)))
	fmt.Fprintf(w, "# HELP blinkrepl_shipped_records_total records shipped per follower\n# TYPE blinkrepl_shipped_records_total counter\n")
	for _, fs := range feeds {
		fmt.Fprintf(w, "blinkrepl_shipped_records_total{follower=%q} %d\n", fs.Remote, fs.Shipped)
	}
	fmt.Fprintf(w, "# HELP blinkrepl_lag_records records shipped but not yet acknowledged, per follower\n# TYPE blinkrepl_lag_records gauge\n")
	for _, fs := range feeds {
		fmt.Fprintf(w, "blinkrepl_lag_records{follower=%q} %d\n", fs.Remote, fs.Lag())
	}
	fmt.Fprintf(w, "# HELP blinkrepl_resets_total snapshot bootstraps served, per follower\n# TYPE blinkrepl_resets_total counter\n")
	for _, fs := range feeds {
		fmt.Fprintf(w, "blinkrepl_resets_total{follower=%q} %d\n", fs.Remote, fs.Resets)
	}

	// Integrity: whether state-root hashing is on, how much rehash
	// work the background hasher has done, and how many sealed roots
	// this primary has published per follower feed.
	verified := int64(0)
	if s.r.Verified() {
		verified = 1
	}
	fmt.Fprintf(w, "# HELP blinkverify_enabled 1 while the integrity layer (state root hashing) is on\n# TYPE blinkverify_enabled gauge\nblinkverify_enabled %d\n", verified)
	if verified == 1 {
		if rs, err := s.r.Stats(); err == nil {
			fmt.Fprintf(w, "# HELP blinkverify_rehashes_total dirty leaf buckets re-hashed\n# TYPE blinkverify_rehashes_total counter\nblinkverify_rehashes_total %d\n", rs.VerifyRehashes)
		}
		fmt.Fprintf(w, "# HELP blinkverify_roots_published_total sealed state roots published, per follower\n# TYPE blinkverify_roots_published_total counter\n")
		for _, fs := range feeds {
			fmt.Fprintf(w, "blinkverify_roots_published_total{follower=%q} %d\n", fs.Remote, fs.Roots)
		}
	}

	// Cluster: the ownership map and live-migration progress.
	if cs, ok := s.ClusterStats(); ok {
		cgauge := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP blinkcluster_%s %s\n# TYPE blinkcluster_%s gauge\nblinkcluster_%s %d\n",
				name, help, name, name, v)
		}
		ccounter := func(name, help string, v uint64) {
			fmt.Fprintf(w, "# HELP blinkcluster_%s %s\n# TYPE blinkcluster_%s counter\nblinkcluster_%s %d\n",
				name, help, name, name, v)
		}
		cgauge("map_version", "cluster map version", int64(cs.Version))
		cgauge("ranges_owned", "ranges served by this member", int64(cs.Owned))
		cgauge("ranges_fenced", "ranges frozen mid-handoff", int64(cs.Fenced))
		cgauge("migration_shard", "range being migrated out (-1 idle)", cs.MigratingShard)
		cgauge("migration_phase", "0 idle, 1 snapshot, 2 chase, 3 fence", int64(cs.Phase))
		ccounter("migration_records_shipped_total", "records shipped to migration targets", cs.Shipped)
		ccounter("migration_records_ingested_total", "records applied from migration sources", cs.Ingested)
		ccounter("migrations_out_total", "completed outbound handoffs", cs.Migrations)
		ccounter("migrations_in_total", "completed inbound takeovers", cs.Takeovers)
		ccounter("redirects_total", "ops refused with StatusWrongShard", cs.Redirects)
		fmt.Fprintf(w, "# HELP blinkcluster_fence_seconds duration of the last write fence\n# TYPE blinkcluster_fence_seconds gauge\nblinkcluster_fence_seconds %g\n",
			cs.LastFence.Seconds())
		fmt.Fprintf(w, "# HELP blinkcluster_fence_seconds_total cumulative write-fence time\n# TYPE blinkcluster_fence_seconds_total counter\nblinkcluster_fence_seconds_total %g\n",
			cs.FenceTotal.Seconds())
	}
}
