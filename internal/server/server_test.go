package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"blinktree/client"
	"blinktree/internal/shard"
	"blinktree/internal/wire"
)

// start spins up a server over a fresh router and returns both plus a
// connected client. Everything is cleaned up with t.Cleanup.
func start(t *testing.T, shards int, cfg Config, opts shard.Options) (*Server, *shard.Router, *client.Client) {
	t.Helper()
	r, err := shard.NewRouter(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.Logf = func(format string, args ...any) { t.Logf("server: "+format, args...) }
	s := New(r, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(s.Addr().String(), client.Options{})
	if err != nil {
		s.Close()
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
		r.Close()
	})
	return s, r, c
}

func TestPointOpsOverWire(t *testing.T) {
	_, _, c := start(t, 4, Config{}, shard.Options{})
	ctx := context.Background()

	if err := c.Insert(ctx, 10, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, 10, 100); !errors.Is(err, client.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if v, err := c.Search(ctx, 10); err != nil || v != 100 {
		t.Fatalf("search: %d, %v", v, err)
	}
	if _, err := c.Search(ctx, 11); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("missing search: %v", err)
	}
	old, existed, err := c.Upsert(ctx, 10, 101)
	if err != nil || !existed || old != 100 {
		t.Fatalf("upsert: %d %v %v", old, existed, err)
	}
	actual, loaded, err := c.GetOrInsert(ctx, 20, 200)
	if err != nil || loaded || actual != 200 {
		t.Fatalf("get-or-insert fresh: %d %v %v", actual, loaded, err)
	}
	actual, loaded, err = c.GetOrInsert(ctx, 20, 999)
	if err != nil || !loaded || actual != 200 {
		t.Fatalf("get-or-insert present: %d %v %v", actual, loaded, err)
	}
	swapped, err := c.CompareAndSwap(ctx, 10, 101, 102)
	if err != nil || !swapped {
		t.Fatalf("cas hit: %v %v", swapped, err)
	}
	swapped, err = c.CompareAndSwap(ctx, 10, 101, 103)
	if err != nil || swapped {
		t.Fatalf("cas miss: %v %v", swapped, err)
	}
	if _, err := c.CompareAndSwap(ctx, 999, 0, 1); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("cas absent: %v", err)
	}
	deleted, err := c.CompareAndDelete(ctx, 20, 200)
	if err != nil || !deleted {
		t.Fatalf("cad: %v %v", deleted, err)
	}
	if err := c.Delete(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(ctx, 10); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if n, err := c.Len(ctx); err != nil || n != 0 {
		t.Fatalf("len: %d %v", n, err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestScanPaging(t *testing.T) {
	_, _, c := start(t, 4, Config{}, shard.Options{})
	ctx := context.Background()

	// Spread keys over all shards.
	const n = 1000
	stride := ^uint64(0)/n + 1
	ops := make([]client.Op, n)
	for i := range ops {
		ops[i] = client.Op{Kind: client.OpInsert, Key: client.Key(uint64(i) * stride), Value: client.Value(i)}
	}
	if _, err := c.Batch(ctx, ops); err != nil {
		t.Fatal(err)
	}

	// Page through with a small page size and check order + totals.
	var got []client.Key
	lo := client.Key(0)
	pages := 0
	for {
		pairs, more, err := c.Scan(ctx, lo, client.Key(^uint64(0)), 64)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, p := range pairs {
			got = append(got, p.Key)
		}
		if !more {
			break
		}
		lo = pairs[len(pairs)-1].Key + 1
	}
	if len(got) != n {
		t.Fatalf("scanned %d pairs, want %d", len(got), n)
	}
	if pages < n/64 {
		t.Fatalf("only %d pages — paging not happening", pages)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated at %d: %d after %d", i, got[i], got[i-1])
		}
	}

	// Range helper agrees.
	count := 0
	if err := c.Range(ctx, 0, client.Key(^uint64(0)), 100, func(client.Key, client.Value) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("Range visited %d, want %d", count, n)
	}

	// Early stop.
	count = 0
	if err := c.Range(ctx, 0, client.Key(^uint64(0)), 10, func(client.Key, client.Value) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBatchMixedKinds(t *testing.T) {
	_, _, c := start(t, 4, Config{}, shard.Options{})
	ctx := context.Background()
	res, err := c.Batch(ctx, []client.Op{
		{Kind: client.OpInsert, Key: 1, Value: 10},
		{Kind: client.OpInsert, Key: 1, Value: 11}, // duplicate
		{Kind: client.OpUpsert, Key: 1, Value: 12},
		{Kind: client.OpSearch, Key: 1},
		{Kind: client.OpCompareAndSwap, Key: 1, Old: 12, Value: 13},
		{Kind: client.OpDelete, Key: 404},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("slot 0: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, client.ErrDuplicate) {
		t.Fatalf("slot 1: %v", res[1].Err)
	}
	if res[2].Err != nil || !res[2].OK || res[2].Value != 10 {
		t.Fatalf("slot 2: %+v", res[2])
	}
	if res[3].Err != nil || res[3].Value != 12 {
		t.Fatalf("slot 3: %+v", res[3])
	}
	if res[4].Err != nil || !res[4].OK {
		t.Fatalf("slot 4: %+v", res[4])
	}
	if !errors.Is(res[5].Err, client.ErrNotFound) {
		t.Fatalf("slot 5: %v", res[5].Err)
	}
}

// TestPollMixesBatchAndPointOps is a regression test for a scratch-
// aliasing bug: a poll carrying an explicit OpBatch frame alongside
// point ops used to run the batch's apply through the same per-
// connection scratch that still backed the point-op results being
// dispatched, so point ops dispatched after the OpBatch frame were
// answered from clobbered slots. It speaks raw wire so both frames
// arrive in one burst and are gathered into one poll, with the OpBatch
// frame first — its apply runs mid-dispatch, before the trailing point
// op's response is encoded.
func TestPollMixesBatchAndPointOps(t *testing.T) {
	s, _, c := start(t, 4, Config{}, shard.Options{})
	ctx := context.Background()
	const k1, k2 = 1, 2
	if err := c.Insert(ctx, k1, 111); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(ctx, k2, 222); err != nil {
		t.Fatal(err)
	}

	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteHello(nc); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	if _, err := wire.ReadHello(br); err != nil {
		t.Fatal(err)
	}

	// A few rounds, in case a burst ever straddles two polls (which
	// would make that round vacuously pass).
	for round := 0; round < 8; round++ {
		// Frame 1: OpBatch with a single search of k2. Frame 2: point
		// search of k1. One Write, so the poll gathers both.
		var bp wire.Buf
		bp.U32(1)
		bp.U8(wire.OpSearch)
		bp.U64(k2)
		bp.U64(0)
		bp.U64(0)
		burst, err := wire.AppendFrame(nil, uint64(2*round+1), wire.OpBatch, bp.B)
		if err != nil {
			t.Fatal(err)
		}
		var pp wire.Buf
		pp.U64(k1)
		burst, err = wire.AppendFrame(burst, uint64(2*round+2), wire.OpSearch, pp.B)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nc.Write(burst); err != nil {
			t.Fatal(err)
		}

		for i := 0; i < 2; i++ {
			id, status, pl, err := wire.ReadFrame(br, nil)
			if err != nil {
				t.Fatal(err)
			}
			if status != wire.StatusOK {
				t.Fatalf("round %d id %d: status %d", round, id, status)
			}
			switch id {
			case uint64(2*round + 1): // batch response: 10 bytes/slot
				if len(pl) != 10 {
					t.Fatalf("round %d: batch response %d bytes", round, len(pl))
				}
				d := wire.Dec{B: pl[1:9]}
				if v := d.U64(); v != 222 {
					t.Fatalf("round %d: batch search of k2 = %d, want 222", round, v)
				}
			case uint64(2*round + 2): // point search response: value only
				if len(pl) != 8 {
					t.Fatalf("round %d: point response %d bytes", round, len(pl))
				}
				d := wire.Dec{B: pl}
				if v := d.U64(); v != 111 {
					t.Fatalf("round %d: point search of k1 = %d, want 111 (answered from the batch's clobbered scratch?)", round, v)
				}
			default:
				t.Fatalf("round %d: unexpected response id %d", round, id)
			}
		}
	}
}

func TestConcurrentPipelining(t *testing.T) {
	s, _, c := start(t, 8, Config{}, shard.Options{})
	ctx := context.Background()
	const workers, per = 32, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := client.Key(uint64(w*per+i) * 0x9E3779B97F4A7C15)
				if _, _, err := c.Upsert(ctx, k, client.Value(i)); err != nil {
					t.Error(err)
					return
				}
				if v, err := c.Search(ctx, k); err != nil || v != client.Value(i) {
					t.Errorf("readback %d: %d %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	n, err := c.Len(ctx)
	if err != nil || n != workers*per {
		t.Fatalf("len: %d %v, want %d", n, err, workers*per)
	}
	// Coalescing must actually happen: with 32 concurrent pipeliners,
	// polls should carry well over one request on average.
	polls, reqs := s.Metrics.Polls.Load(), s.Metrics.Requests.Load()
	if polls == 0 || reqs == 0 {
		t.Fatal("no polls recorded")
	}
	t.Logf("coalescing: %d requests over %d polls (%.1f req/poll)",
		reqs, polls, float64(reqs)/float64(polls))
	if float64(reqs)/float64(polls) < 1.5 {
		t.Errorf("mean poll size %.2f — pipelined requests are not being coalesced",
			float64(reqs)/float64(polls))
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 8 || st.Len != uint64(workers*per) || st.BatchOps == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDurableOverWireWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := shard.Options{Durable: true, Dir: dir}
	_, _, c := start(t, 2, Config{}, opts)
	ctx := context.Background()
	for i := uint64(0); i < 500; i++ {
		if _, _, err := c.Upsert(ctx, client.Key(i*(^uint64(0)/500+1)), client.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	for i := uint64(500); i < 600; i++ {
		if _, _, err := c.Upsert(ctx, client.Key(i), client.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen the same dir: checkpoint + log suffix must reproduce all
	// 600 acknowledged writes.
	r2, err := shard.NewRouter(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.Len(); got != 600 {
		t.Fatalf("recovered %d pairs, want 600", got)
	}
}

func TestMalformedFramesGetBadRequest(t *testing.T) {
	s, _, _ := start(t, 1, Config{}, shard.Options{})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteHello(nc); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	if _, err := wire.ReadHello(br); err != nil {
		t.Fatal(err)
	}
	// Search with a truncated payload, then an unknown op: both must be
	// answered (bad request), and the connection must stay usable.
	if err := wire.WriteFrame(nc, 1, wire.OpSearch, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(nc, 2, 200, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(nc, 3, wire.OpPing, nil); err != nil {
		t.Fatal(err)
	}
	got := map[uint64]uint8{}
	for i := 0; i < 3; i++ {
		id, code, _, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		got[id] = code
	}
	if got[1] != wire.StatusBadRequest || got[2] != wire.StatusBadRequest || got[3] != wire.StatusOK {
		t.Fatalf("statuses: %v", got)
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	s, _, _ := start(t, 1, Config{}, shard.Options{})
	nc, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	fmt.Fprintf(nc, "GET / HTTP/1.1\r\nHost: x\r\n\r\n")
	buf := make([]byte, 1)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("server should close on bad magic, got %v", err)
	}
}

func TestGracefulDrain(t *testing.T) {
	s, r, c := start(t, 2, Config{DrainTimeout: 2 * time.Second}, shard.Options{})
	ctx := context.Background()
	if err := c.Insert(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// New calls fail once the server is gone.
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := c.Search(cctx, 1); err == nil {
		t.Fatal("search after close should fail")
	}
	// The router is untouched by server shutdown.
	if v, err := r.Search(1); err != nil || v != 1 {
		t.Fatalf("router after drain: %d %v", v, err)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	cfg := Config{HTTPAddr: "127.0.0.1:0"}
	s, _, c := start(t, 2, cfg, shard.Options{})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if err := c.Insert(ctx, client.Key(i), client.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	base := "http://" + s.HTTPAddr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"blinkserver_requests_total",
		"blinkserver_polls_total",
		"blinkserver_connections_active",
		`blinkshard_pairs{shard="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	_, _, c := start(t, 1, Config{}, shard.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Ping(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ping: %v", err)
	}
	// The connection survives an abandoned call.
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLockFootprintsHoldOverWire(t *testing.T) {
	_, r, c := start(t, 4, Config{}, shard.Options{})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := client.Key(uint64(w*300+i) * 0x9E3779B97F4A7C15)
				switch i % 3 {
				case 0:
					if _, _, err := c.Upsert(ctx, k, 1); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.Search(ctx, k); err != nil && !errors.Is(err, client.ErrNotFound) {
						t.Error(err)
						return
					}
				default:
					if err := c.Delete(ctx, k); err != nil && !errors.Is(err, client.ErrNotFound) {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 || st.Tree.DeleteLocks.MaxHeld > 1 || st.Tree.CondLocks.MaxHeld > 1 {
		t.Fatalf("update footprint exceeded 1 over the wire: %+v", st.Tree)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}
