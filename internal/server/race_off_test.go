//go:build !race

package server

// raceEnabled reports whether the race detector is active. Allocation
// assertions skip under it: -race instruments every allocation and
// sync.Pool deliberately drops puts to expose races, so allocs/op
// counts stop meaning anything.
const raceEnabled = false
