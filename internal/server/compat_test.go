package server

import (
	"bufio"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"blinktree/internal/shard"
	"blinktree/internal/wire"
)

// TestHelloBackwardCompat pins the negotiation rule that lets an old
// client keep working against a new server: the server answers a hello
// with min(client version, its own), and a connection negotiated down
// to v1 serves the whole v1 op surface unchanged. Version 2 added only
// cluster vocabulary, so this is the compatibility contract the bump
// rides on.
func TestHelloBackwardCompat(t *testing.T) {
	s, _, _ := start(t, 2, Config{}, shard.Options{})

	dial := func() (net.Conn, *bufio.Reader) {
		t.Helper()
		nc, err := net.DialTimeout("tcp", s.Addr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nc.Close() })
		return nc, bufio.NewReader(nc)
	}

	// An old client advertises v1; the server must answer exactly v1,
	// not its own newer version.
	nc, br := dial()
	if err := wire.WriteHelloVersion(nc, 1); err != nil {
		t.Fatal(err)
	}
	v, err := wire.ReadHello(br)
	if err != nil {
		t.Fatalf("server rejected a v1 hello: %v", err)
	}
	if v != 1 {
		t.Fatalf("server answered version %d to a v1 client, want 1", v)
	}

	// The negotiated-down connection serves v1 ops: insert then search.
	var buf wire.Buf
	roundTrip := func(id uint64, op uint8, payload []byte) (uint8, []byte) {
		t.Helper()
		if err := wire.WriteFrame(nc, id, op, payload); err != nil {
			t.Fatal(err)
		}
		gotID, status, resp, err := wire.ReadFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gotID != id {
			t.Fatalf("response id %d, want %d", gotID, id)
		}
		return status, resp
	}

	buf.U64(99)
	buf.U64(7)
	if status, _ := roundTrip(1, wire.OpInsert, buf.B); status != wire.StatusOK {
		t.Fatalf("v1 insert: status %d", status)
	}
	buf.Reset()
	buf.U64(99)
	status, resp := roundTrip(2, wire.OpSearch, buf.B)
	if status != wire.StatusOK {
		t.Fatalf("v1 search: status %d", status)
	}
	if got := binary.LittleEndian.Uint64(resp); got != 7 {
		t.Fatalf("v1 search = %d, want 7", got)
	}

	// A current client negotiates the full version.
	nc2, br2 := dial()
	if err := wire.WriteHello(nc2); err != nil {
		t.Fatal(err)
	}
	if v, err := wire.ReadHello(br2); err != nil || v != wire.Version {
		t.Fatalf("current hello answered (%d, %v), want (%d, nil)", v, err, wire.Version)
	}

	// A hello from the future is refused outright — the server cannot
	// promise to speak a version it does not know; the connection is
	// dropped without an answer.
	nc3, br3 := dial()
	if err := wire.WriteHelloVersion(nc3, wire.Version+1); err != nil {
		t.Fatal(err)
	}
	nc3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br3.ReadByte(); err == nil {
		t.Fatalf("server answered a v%d hello; want the connection dropped", wire.Version+1)
	}
}
