package server

import (
	"context"
	"errors"
	"testing"

	"blinktree/client"
	"blinktree/internal/shard"
)

// golden spreads dense ints over the keyspace so every shard is hit.
const golden = 0x9e3779b97f4a7c15

func TestVerifiedServingOverWire(t *testing.T) {
	_, _, c := start(t, 4, Config{}, shard.Options{Verified: true, VerifyBuckets: 64})
	ctx := context.Background()
	key := func(i uint64) client.Key { return client.Key(i * golden) }
	for i := uint64(0); i < 500; i++ {
		if err := c.Insert(ctx, key(i), client.Value(i)); err != nil {
			t.Fatal(err)
		}
	}

	// VerifiedGet before any pin must refuse, not trust blindly.
	if _, _, err := c.VerifiedGet(ctx, key(7)); !errors.Is(err, client.ErrNoPinnedRoot) {
		t.Fatalf("VerifiedGet without pin = %v, want ErrNoPinnedRoot", err)
	}

	root, err := c.Root(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c.PinRoot(root)

	// Inclusion: a present key verifies and returns its value.
	v, present, err := c.VerifiedGet(ctx, key(7))
	if err != nil || !present || v != 7 {
		t.Fatalf("VerifiedGet(present) = %d, %v, %v; want 7, true, nil", v, present, err)
	}
	// Exclusion: absence is proven too, against the same root.
	if _, present, err := c.VerifiedGet(ctx, client.Key(12345)); err != nil || present {
		t.Fatalf("VerifiedGet(absent) = %v, %v; want false, nil", present, err)
	}

	// One mutation anywhere moves the whole-state commitment: every
	// proof — even for untouched keys in other shards — must now be
	// rejected against the stale pinned root.
	if _, _, err := c.Upsert(ctx, key(7), 999); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.VerifiedGet(ctx, key(7)); !errors.Is(err, client.ErrRootMismatch) {
		t.Fatalf("VerifiedGet(mutated key) = %v, want ErrRootMismatch", err)
	}
	if _, _, err := c.VerifiedGet(ctx, key(100)); !errors.Is(err, client.ErrRootMismatch) {
		t.Fatalf("VerifiedGet(untouched key after mutation) = %v, want ErrRootMismatch", err)
	}

	// Re-pinning the moved root restores verified reads.
	root2, err := c.Root(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if root2 == root {
		t.Fatal("state root did not change after a mutation")
	}
	c.PinRoot(root2)
	if v, present, err := c.VerifiedGet(ctx, key(7)); err != nil || !present || v != 999 {
		t.Fatalf("VerifiedGet(re-pinned) = %d, %v, %v; want 999, true, nil", v, present, err)
	}
}

func TestUnverifiedServerRejectsVerifyOps(t *testing.T) {
	_, _, c := start(t, 2, Config{}, shard.Options{})
	ctx := context.Background()
	if _, err := c.Root(ctx); err == nil {
		t.Fatal("Root on an unverified server should fail")
	}
	if _, err := c.Prove(ctx, 1); err == nil {
		t.Fatal("Prove on an unverified server should fail")
	}
}
