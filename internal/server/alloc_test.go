package server

import (
	"context"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/shard"
)

// TestZeroAllocPointRoundTrip asserts the end-to-end steady state of
// the point-op serving path: client encode → pipelined write burst →
// server gather/decode → ApplyBatchInto → response frame → single
// flush → client decode. Searches mutate nothing, so with every
// buffer warm the entire stack — both processes' halves of it — should
// allocate nothing per operation.
//
// The assertion runs the whole server in-process, so it counts every
// allocation on both sides (testing.AllocsPerRun reads the global
// counter). The threshold is not exactly zero: sync.Pool caches are
// emptied by the GC AllocsPerRun triggers, so the first operations
// after it re-seed the pools, and the runtime occasionally grows a
// goroutine stack mid-run. Amortized over the measured runs that is
// well under one allocation per op — anything above the threshold
// means a real per-op allocation crept back into the path.
func TestZeroAllocPointRoundTrip(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race (instrumented allocs, sync.Pool drops puts)")
	}
	_, r, c := start(t, 1, Config{}, shard.Options{})
	ctx := context.Background()

	if err := r.Insert(42, 99); err != nil {
		t.Fatal(err)
	}
	// Warm every buffer on both sides.
	for i := 0; i < 200; i++ {
		if v, err := c.Search(ctx, 42); err != nil || v != 99 {
			t.Fatalf("warmup search: v=%d err=%v", v, err)
		}
	}

	// AllocsPerRun reads the global malloc counter, so any background
	// goroutine that happens to allocate mid-measurement (a sibling
	// test's server tearing down, the runtime growing a stack) inflates
	// the count. The path under test is deterministic; take the best of
	// a few attempts so only a real per-op allocation fails the gate.
	allocs := minAllocsPerRun(3, 1, func() float64 {
		return testing.AllocsPerRun(2000, func() {
			if _, err := c.Search(ctx, 42); err != nil {
				t.Fatal(err)
			}
		})
	})
	if allocs >= 1 {
		t.Fatalf("steady-state Search round trip: %.2f allocs/op, want < 1", allocs)
	}
}

// TestAllocBatchScratchReuse asserts the server-side batch path reuses
// its per-connection scratch: a warm ApplyBatchInto of search-only
// operations allocates nothing.
// minAllocsPerRun returns the minimum of up to attempts measurements,
// stopping early once one lands under target.
func minAllocsPerRun(attempts int, target float64, measure func() float64) float64 {
	best := measure()
	for i := 1; i < attempts && best >= target; i++ {
		if a := measure(); a < best {
			best = a
		}
	}
	return best
}

func TestAllocBatchScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race (instrumented allocs, sync.Pool drops puts)")
	}
	r, err := shard.NewRouter(4, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for k := uint64(0); k < 64; k++ {
		if err := r.Insert(base.Key(k), base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	ops := make([]shard.Op, 32)
	for i := range ops {
		ops[i] = shard.Op{Kind: shard.OpSearch, Key: base.Key(i)}
	}
	var sc shard.BatchScratch
	// Warm the scratch.
	for i := 0; i < 10; i++ {
		for _, res := range r.ApplyBatchInto(ops, &sc) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	allocs := minAllocsPerRun(3, 9, func() float64 {
		return testing.AllocsPerRun(500, func() {
			r.ApplyBatchInto(ops, &sc)
		})
	})
	// A multi-shard batch spawns one goroutine (plus its closure) per
	// non-inline shard group — with 4 shards that is ≤ 3 goroutine
	// closures per batch of 32 ops. Anything materially above that
	// means per-op state stopped being reused.
	if allocs > 8 {
		t.Fatalf("warm ApplyBatchInto(32 ops, 4 shards): %.2f allocs/batch, want <= 8 (goroutine spawns only)", allocs)
	}
}
