package blink

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"blinktree/internal/base"
)

func TestCursorFullScan(t *testing.T) {
	tr := newTestTree(t, 2)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i*3), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(0)
	count := 0
	lastKey := -1
	for {
		k, v, ok := c.Next()
		if !ok {
			break
		}
		if int(k) <= lastKey {
			t.Fatalf("cursor not ascending: %d after %d", k, lastKey)
		}
		if v != base.Value(k/3) {
			t.Fatalf("cursor value mismatch at %d", k)
		}
		lastKey = int(k)
		count++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("cursor saw %d pairs, want %d", count, n)
	}
	// Exhausted cursor stays exhausted.
	if _, _, ok := c.Next(); ok {
		t.Fatal("exhausted cursor yielded a pair")
	}
}

func TestCursorSeekAndPartial(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 100; i++ {
		_ = tr.Insert(base.Key(i*10), base.Value(i))
	}
	c := tr.NewCursor(255) // between 250 and 260
	k, _, ok := c.Next()
	if !ok || k != 260 {
		t.Fatalf("first pair from 255 = (%d,%v), want 260", k, ok)
	}
	c.Seek(55)
	if k, _, ok = c.Next(); !ok || k != 60 {
		t.Fatalf("after Seek(55): (%d,%v), want 60", k, ok)
	}
	// Seek beyond the end.
	c.Seek(100000)
	if _, _, ok = c.Next(); ok {
		t.Fatal("cursor past end yielded a pair")
	}
}

func TestCursorEmptyTree(t *testing.T) {
	tr := newTestTree(t, 2)
	c := tr.NewCursor(0)
	if _, _, ok := c.Next(); ok {
		t.Fatal("empty tree cursor yielded a pair")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestCursorMaxKey(t *testing.T) {
	tr := newTestTree(t, 2)
	maxKey := base.Key(^uint64(0))
	_ = tr.Insert(maxKey, 1)
	_ = tr.Insert(maxKey-1, 2)
	c := tr.NewCursor(maxKey - 1)
	seen := 0
	for {
		_, _, ok := c.Next()
		if !ok {
			break
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("saw %d keys around MaxUint64, want 2", seen)
	}
}

// TestCursorUnderConcurrentMutation: cursors must stay strictly
// ascending with correct values while the tree churns.
func TestCursorUnderConcurrentMutation(t *testing.T) {
	tr := newTestTree(t, 3)
	const n = 2000
	for i := 0; i < n; i += 2 {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := base.Key(rng.Intn(n/2)*2 + 1)
			if rng.Intn(2) == 0 {
				_ = tr.Insert(k, base.Value(k))
			} else {
				_ = tr.Delete(k)
			}
		}
	}()
	for round := 0; round < 20; round++ {
		c := tr.NewCursor(0)
		lastKey := -1
		evens := 0
		for {
			k, v, ok := c.Next()
			if !ok {
				break
			}
			if int(k) <= lastKey {
				t.Fatalf("descending cursor: %d after %d", k, lastKey)
			}
			if v != base.Value(k) {
				t.Fatalf("wrong value %d under %d", v, k)
			}
			lastKey = int(k)
			if k%2 == 0 {
				evens++
			}
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		if evens != n/2 {
			t.Fatalf("cursor missed stable keys: %d/%d", evens, n/2)
		}
	}
	close(stop)
	wg.Wait()
	mustCheck(t, tr)
}

func TestBulkLoadBasic(t *testing.T) {
	tr := newTestTree(t, 4)
	const n = 10000
	i := 0
	err := tr.BulkLoad(func() (base.Key, base.Value, bool) {
		if i >= n {
			return 0, 0, false
		}
		k := base.Key(i * 2)
		i++
		return k, base.Value(k + 1), true
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustCheck(t, tr)
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for j := 0; j < n; j++ {
		k := base.Key(j * 2)
		if v, err := tr.Search(k); err != nil || v != base.Value(k+1) {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, err)
		}
	}
	// Fully packed: node count near the minimum.
	occ, err := tr.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	if occ.Underfull != 0 {
		t.Fatalf("bulk load produced %d underfull nodes", occ.Underfull)
	}
	if occ.MeanFill < 0.9 {
		t.Fatalf("bulk load fill %.2f, want ≥ 0.9 at fill=1.0", occ.MeanFill)
	}
	// The tree is live: inserts and deletes work afterwards.
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(0); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, tr)
}

func TestBulkLoadSizesProperty(t *testing.T) {
	// Every input size, including awkward tails, must satisfy all
	// invariants at several fills.
	f := func(rawN uint16, fillSel uint8) bool {
		n := int(rawN % 3000)
		fill := []float64{0.6, 0.75, 1.0}[int(fillSel)%3]
		tr, err := New(Config{MinPairs: 3})
		if err != nil {
			return false
		}
		i := 0
		err = tr.BulkLoad(func() (base.Key, base.Value, bool) {
			if i >= n {
				return 0, 0, false
			}
			k := base.Key(i * 5)
			i++
			return k, base.Value(k), true
		}, fill)
		if err != nil {
			return false
		}
		if tr.Len() != n {
			return false
		}
		if err := tr.Check(); err != nil {
			return false
		}
		occ, err := tr.OccupancyStats()
		if err != nil {
			return false
		}
		return occ.Underfull == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tr := newTestTree(t, 2)
	_ = tr.Insert(1, 1)
	if err := tr.BulkLoad(func() (base.Key, base.Value, bool) { return 0, 0, false }, 0); err == nil {
		t.Fatal("BulkLoad on non-empty tree accepted")
	}
	tr2 := newTestTree(t, 2)
	if err := tr2.BulkLoad(func() (base.Key, base.Value, bool) { return 0, 0, false }, 0.3); err == nil {
		t.Fatal("fill 0.3 accepted")
	}
	// Non-ascending input rejected.
	tr3 := newTestTree(t, 2)
	vals := []base.Key{5, 4}
	i := 0
	err := tr3.BulkLoad(func() (base.Key, base.Value, bool) {
		if i >= len(vals) {
			return 0, 0, false
		}
		k := vals[i]
		i++
		return k, 0, true
	}, 0)
	if err == nil || !errors.Is(err, base.ErrCorrupt) {
		t.Fatalf("descending input = %v", err)
	}
	// Empty input leaves a valid empty tree.
	tr4 := newTestTree(t, 2)
	if err := tr4.BulkLoad(func() (base.Key, base.Value, bool) { return 0, 0, false }, 0); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, tr4)
}

func TestBulkLoadThenConcurrentUse(t *testing.T) {
	tr := newTestTree(t, 4)
	const n = 20000
	i := 0
	if err := tr.BulkLoad(func() (base.Key, base.Value, bool) {
		if i >= n {
			return 0, 0, false
		}
		k := base.Key(i * 4)
		i++
		return k, base.Value(k), true
	}, 0.75); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base.Key(rng.Intn(n)*4 + 1 + w%3)
				switch rng.Intn(2) {
				case 0:
					if err := tr.Insert(k, 0); err != nil && !errors.Is(err, base.ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				default:
					if err := tr.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	mustCheck(t, tr)
	for j := 0; j < n; j++ {
		k := base.Key(j * 4)
		if v, err := tr.Search(k); err != nil || v != base.Value(k) {
			t.Fatalf("bulk key %d lost: (%d,%v)", k, v, err)
		}
	}
}
