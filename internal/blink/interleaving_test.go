package blink

import (
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
)

// These tests construct, by direct store surgery, the exact
// intermediate states the paper's trickiest arguments are about, and
// verify each recovery path deterministically (stress tests reach them
// only probabilistically).

// buildSmall returns a quiesced two-level tree over an accessible store:
// leaves [0..k), [k..2k) ... with sequential keys 0..n-1.
func buildSurgeryTree(t *testing.T, k, n int) (*Tree, *node.MemStore) {
	t.Helper()
	st := node.NewMemStore()
	tr, err := New(Config{Store: st, Locks: locks.NewTable(), MinPairs: k})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, tr)
	return tr, st
}

// TestDeletedNodeForwarding (§5.2 case 1): a search that lands on a
// deleted node must follow its outlink to the merge survivor and find
// the key there, without restarting.
func TestDeletedNodeForwarding(t *testing.T) {
	tr, st := buildSurgeryTree(t, 2, 40)
	p, err := st.ReadPrime()
	if err != nil {
		t.Fatal(err)
	}
	// Take the first two leaves A, B and merge them manually: move B's
	// pairs into A, fix the parent, and mark B deleted with an outlink.
	a, err := st.Get(p.Leftmost[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Get(a.Link)
	if err != nil {
		t.Fatal(err)
	}
	// Thin both leaves by ordinary deletions so the surgical merge fits
	// in one node (the underfull state compression acts on).
	for _, k := range a.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range b.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	a = mustGet(t, st, a.ID)
	b = mustGet(t, st, b.ID)
	// The search under test will be sent to B by a stale parent read;
	// emulate by first capturing B's id, then merging.
	bKey := b.Keys[0]

	a2 := a.Clone()
	a2.Keys = append(a2.Keys, b.Keys...)
	a2.Vals = append(a2.Vals, b.Vals...)
	a2.High = b.High
	a2.Link = b.Link
	if err := st.Put(a2); err != nil {
		t.Fatal(err)
	}
	// Parent: remove separator and pointer to B. The parent of the
	// leftmost leaf is the leftmost node one level up.
	parent := mustGet(t, st, p.Leftmost[1])
	idx := parent.FindChild(a.ID)
	if idx < 0 || parent.Children[idx+1] != b.ID {
		t.Fatalf("surgery precondition failed: %v", parent)
	}
	if err := st.Put(parent.RemoveSeparator(idx)); err != nil {
		t.Fatal(err)
	}
	b2 := &node.Node{ID: b.ID, Leaf: true, Deleted: true, OutLink: a.ID, Low: b.Low, High: b.High}
	if err := st.Put(b2); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, tr)

	// A reader that reaches B directly (simulating a stale pointer)
	// must find bKey via the outlink.
	got, err := tr.searchFrom(b.ID, mustGet(t, st, a.ID), bKey) // resolved through step
	if err != nil || got != base.Value(bKey) {
		t.Fatalf("forwarded search = (%d, %v)", got, err)
	}
	// And a normal search works too.
	if v, err := tr.Search(bKey); err != nil || v != base.Value(bKey) {
		t.Fatalf("search after merge = (%d,%v)", v, err)
	}
	if tr.Stats().OutlinkHops == 0 {
		t.Log("note: outlink not exercised by the normal path (parent already updated) — covered by the direct searchFrom above")
	}
}

func mustGet(t *testing.T, st node.Store, id base.PageID) *node.Node {
	t.Helper()
	n, err := st.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWrongNodeRestart (§5.2 case 2): a process whose key moved LEFT
// (redistribution B→A) and that reads the new B must detect v ≤ low and
// restart rather than miss the key.
func TestWrongNodeRestart(t *testing.T) {
	tr, st := buildSurgeryTree(t, 3, 60)
	p, _ := st.ReadPrime()
	a := mustGet(t, st, p.Leftmost[0])
	b := mustGet(t, st, a.Link)
	movedKey := b.Keys[0] // will move left into A

	// Redistribute B→A manually: A gains B's first pair.
	a2 := a.Clone()
	a2.Keys = append(a2.Keys, b.Keys[0])
	a2.Vals = append(a2.Vals, b.Vals[0])
	newSep := b.Keys[0]
	a2.High = base.FiniteBound(newSep)
	b2 := b.Clone()
	b2.Keys = b2.Keys[1:]
	b2.Vals = b2.Vals[1:]
	b2.Low = base.FiniteBound(newSep)
	parent := mustGet(t, st, p.Leftmost[1])
	idx := parent.FindChild(a.ID)
	if idx < 0 {
		t.Fatalf("surgery precondition failed: %v", parent)
	}
	f2 := parent.Clone()
	f2.Keys[idx] = newSep
	// Paper's write order: gaining child, parent, other child.
	if err := st.Put(a2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(f2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(b2); err != nil {
		t.Fatal(err)
	}
	mustCheck(t, tr)

	// A reader that (with a stale parent image) lands on the new B in
	// search of movedKey must restart — step() signals it — and the
	// public Search must still find the key.
	if _, err := tr.step(b.ID, movedKey); !isRestart(err) {
		t.Fatalf("step on wrong node = %v, want restart signal", err)
	}
	if v, err := tr.Search(movedKey); err != nil || v != base.Value(movedKey) {
		t.Fatalf("search after redistribution = (%d,%v)", v, err)
	}
}

// TestPrimeBlockLagOnRootSplit (§3.3): a process that must insert at a
// level the prime block does not advertise yet (a new root's creation
// is mid-flight) waits rather than failing. We simulate the lag by
// holding the root's lock while another insertion needs to split it.
func TestPrimeBlockLagOnRootSplit(t *testing.T) {
	st := node.NewMemStore()
	lt := locks.NewTable()
	tr, err := New(Config{Store: st, Locks: lt, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the root leaf to capacity.
	for i := 0; i < 4; i++ {
		if err := tr.Insert(base.Key(i*10), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Hold the root lock, forcing the next insert (which must split the
	// root) to block; release after a delay. The insert must complete.
	p, _ := st.ReadPrime()
	lt.Lock(p.Root)
	done := make(chan error, 1)
	go func() { done <- tr.Insert(100, 1) }()
	select {
	case err := <-done:
		t.Fatalf("insert finished through a held root lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lt.Unlock(p.Root)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert never completed after root lock release")
	}
	mustCheck(t, tr)
	if tr.Height() != 2 {
		t.Fatalf("height = %d, want 2 after root split", tr.Height())
	}
}

// TestWaitForLevelWakesUp: a pending separator for a level that does
// not exist yet must wait until a concurrent root split publishes it
// (the unlikely scenario of §3.3 made deterministic).
func TestWaitForLevelWakesUp(t *testing.T) {
	st := node.NewMemStore()
	tr, err := New(Config{Store: st, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Insert(1, 1)

	// Ask for level 5 directly; publish it after a delay.
	var wg sync.WaitGroup
	wg.Add(1)
	var got base.PageID
	var werr error
	go func() {
		defer wg.Done()
		got, werr = tr.waitForLevel(5)
	}()
	time.Sleep(30 * time.Millisecond)
	p, _ := st.ReadPrime()
	p.Levels = 6
	p.Leftmost = append(p.Leftmost, 101, 102, 103, 104, 105)
	if err := st.WritePrime(p); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if werr != nil || got != 105 {
		t.Fatalf("waitForLevel = (%d, %v), want 105", got, werr)
	}
	if tr.Stats().LevelWaits == 0 {
		t.Fatal("no level waits recorded")
	}
}

// TestCondWriteIntoDeletedLeafRecovers: a conditional write whose
// target leaf is merged away between descent and lock must follow the
// outlink (§5.2 case 1) exactly like insertions and deletions do, and
// must still apply its decision against the survivor's state.
func TestCondWriteIntoDeletedLeafRecovers(t *testing.T) {
	tr, st := buildSurgeryTree(t, 2, 20)
	p, _ := st.ReadPrime()
	a := mustGet(t, st, p.Leftmost[0])
	b := mustGet(t, st, a.Link)
	for _, k := range a.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range b.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	a = mustGet(t, st, a.ID)
	b = mustGet(t, st, b.ID)
	survivorKey := b.Keys[0]

	// Merge B into A by surgery (as in TestDeletedNodeForwarding).
	a2 := a.Clone()
	a2.Keys = append(a2.Keys, b.Keys...)
	a2.Vals = append(a2.Vals, b.Vals...)
	a2.High = b.High
	a2.Link = b.Link
	parent := mustGet(t, st, p.Leftmost[1])
	idx := parent.FindChild(a.ID)
	if idx < 0 || parent.Children[idx+1] != b.ID {
		t.Fatalf("surgery precondition failed: %v", parent)
	}
	if err := st.Put(a2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(parent.RemoveSeparator(idx)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&node.Node{ID: b.ID, Leaf: true, Deleted: true, OutLink: a.ID, Low: b.Low, High: b.High}); err != nil {
		t.Fatal(err)
	}

	// Drive condStep directly at the deleted node: it must redirect
	// through the outlink without applying the probe.
	h := locks.NewHolder(tr.lt)
	probed := false
	var pend pending
	var stack []base.PageID
	status, next, _, err := tr.condStep(h, survivorKey, func(base.Value, bool) condOutcome {
		probed = true
		return condOutcome{action: condPut, value: 123}
	}, b.ID, &stack, &pend)
	if err != nil && !isRestart(err) {
		t.Fatalf("condStep on deleted node: %v", err)
	}
	if probed {
		t.Fatal("probe ran against a deleted node")
	}
	if err == nil {
		if status != condChase || next != a.ID {
			t.Fatalf("condStep = (%v, %d), want chase to outlink target %d", status, next, a.ID)
		}
	}
	h.UnlockAll()

	// The public path applies against the survivor: the upsert must see
	// the merged-in pair and replace its value.
	old, existed, err := tr.Upsert(survivorKey, 777)
	if err != nil || !existed || old != base.Value(survivorKey) {
		t.Fatalf("upsert after merge = (%d, %v, %v)", old, existed, err)
	}
	if v, err := tr.Search(survivorKey); err != nil || v != 777 {
		t.Fatalf("search after upsert = (%d, %v)", v, err)
	}
	mustCheck(t, tr)
}

// TestInsertIntoDeletedLeafRecovers: an insert whose target leaf is
// merged away between descent and lock must follow the outlink and
// succeed.
func TestInsertIntoDeletedLeafRecovers(t *testing.T) {
	tr, st := buildSurgeryTree(t, 2, 20)
	p, _ := st.ReadPrime()
	a := mustGet(t, st, p.Leftmost[0])
	b := mustGet(t, st, a.Link)
	for _, k := range a.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range b.Keys[1:] {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	a = mustGet(t, st, a.ID)
	b = mustGet(t, st, b.ID)

	// Merge B into A by surgery (as in TestDeletedNodeForwarding).
	a2 := a.Clone()
	a2.Keys = append(a2.Keys, b.Keys...)
	a2.Vals = append(a2.Vals, b.Vals...)
	a2.High = b.High
	a2.Link = b.Link
	parent := mustGet(t, st, p.Leftmost[1])
	idx := parent.FindChild(a.ID)
	if idx < 0 || parent.Children[idx+1] != b.ID {
		t.Fatalf("surgery precondition failed: %v", parent)
	}
	if err := st.Put(a2); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(parent.RemoveSeparator(idx)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&node.Node{ID: b.ID, Leaf: true, Deleted: true, OutLink: a.ID, Low: b.Low, High: b.High}); err != nil {
		t.Fatal(err)
	}

	// Drive insertStep directly at the deleted node: it must redirect.
	h := locks.NewHolder(tr.lt)
	pend := &pending{key: b.Keys[0] + 1000, val: 9}
	var stack []base.PageID
	done, next, err := tr.insertStep(h, pend, b.ID, &stack)
	if err != nil && !isRestart(err) {
		t.Fatalf("insertStep on deleted node: %v", err)
	}
	if done {
		t.Fatal("insert completed inside a deleted node")
	}
	if err == nil && next != a.ID {
		t.Fatalf("insertStep redirected to %d, want outlink target %d", next, a.ID)
	}
	h.UnlockAll()

	// The public path works end to end.
	if err := tr.Insert(999999, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Search(999999); err != nil || v != 7 {
		t.Fatalf("end-to-end insert after merge = (%d,%v)", v, err)
	}
	mustCheck(t, tr)
}
