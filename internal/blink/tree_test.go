package blink

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/node"
	"blinktree/internal/storage"
)

func newTestTree(t *testing.T, k int) *Tree {
	t.Helper()
	tr, err := New(Config{MinPairs: k})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustCheck(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Check(); err != nil {
		t.Fatalf("invariant check failed: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTestTree(t, 2)
	if _, err := tr.Search(5); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("Search on empty = %v, want ErrNotFound", err)
	}
	if err := tr.Delete(5); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("Delete on empty = %v, want ErrNotFound", err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	mustCheck(t, tr)
}

func TestInsertSearchSingle(t *testing.T) {
	tr := newTestTree(t, 2)
	if err := tr.Insert(42, 420); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Search(42)
	if err != nil || v != 420 {
		t.Fatalf("Search(42) = (%d, %v)", v, err)
	}
	if err := tr.Insert(42, 999); !errors.Is(err, base.ErrDuplicate) {
		t.Fatalf("duplicate insert = %v, want ErrDuplicate", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	mustCheck(t, tr)
}

func TestInsertManySequentialAscending(t *testing.T) {
	tr := newTestTree(t, 2)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i*2)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	mustCheck(t, tr)
	for i := 0; i < n; i++ {
		v, err := tr.Search(base.Key(i))
		if err != nil || v != base.Value(i*2) {
			t.Fatalf("Search(%d) = (%d, %v)", i, v, err)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("height %d suspiciously small for %d keys at k=2", tr.Height(), n)
	}
	st := tr.Stats()
	if st.Splits == 0 || st.RootSplits == 0 {
		t.Fatalf("expected splits, got %+v", st)
	}
	// Headline claim: insertions lock at most one node simultaneously.
	if st.InsertLocks.MaxHeld != 1 {
		t.Fatalf("insert max locks held = %d, want 1", st.InsertLocks.MaxHeld)
	}
}

func TestInsertManyDescending(t *testing.T) {
	tr := newTestTree(t, 2)
	const n = 500
	for i := n - 1; i >= 0; i-- {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	mustCheck(t, tr)
	for i := 0; i < n; i++ {
		if _, err := tr.Search(base.Key(i)); err != nil {
			t.Fatalf("Search(%d): %v", i, err)
		}
	}
}

func TestInsertManyRandom(t *testing.T) {
	tr := newTestTree(t, 3)
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(2000)
	for _, k := range keys {
		if err := tr.Insert(base.Key(k), base.Value(k+1)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	mustCheck(t, tr)
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range keys {
		v, err := tr.Search(base.Key(k))
		if err != nil || v != base.Value(k+1) {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, err)
		}
	}
	// Absent keys.
	for i := 2000; i < 2100; i++ {
		if _, err := tr.Search(base.Key(i)); !errors.Is(err, base.ErrNotFound) {
			t.Fatalf("Search(%d) = %v, want ErrNotFound", i, err)
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i += 2 {
		if err := tr.Delete(base.Key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	mustCheck(t, tr)
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, err := tr.Search(base.Key(i))
		if i%2 == 0 && !errors.Is(err, base.ErrNotFound) {
			t.Fatalf("deleted key %d still found (%v)", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete(0); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("re-delete = %v", err)
	}
	// Deletions also hold at most one lock.
	if st := tr.Stats(); st.DeleteLocks.MaxHeld != 1 {
		t.Fatalf("delete max locks held = %d, want 1", st.DeleteLocks.MaxHeld)
	}
}

func TestDeleteAllLeavesValidEmptyishTree(t *testing.T) {
	tr := newTestTree(t, 2)
	const n = 300
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := tr.Delete(base.Key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	mustCheck(t, tr) // structure remains valid even though sparse (§4)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	occ, err := tr.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	if occ.Pairs != 0 {
		t.Fatalf("pairs = %d after deleting all", occ.Pairs)
	}
	// The trivial deletion policy wastes space — that is the motivation
	// for §5's compression.
	if occ.Underfull == 0 {
		t.Fatal("expected underfull nodes after mass deletion (no compression)")
	}
}

func TestUnderfullHookFires(t *testing.T) {
	tr := newTestTree(t, 3)
	var events []UnderfullEvent
	tr.SetUnderfullHandler(func(ev UnderfullEvent) { events = append(events, ev) })
	for i := 0; i < 50; i++ {
		if err := tr.Insert(base.Key(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if err := tr.Delete(base.Key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(events) == 0 {
		t.Fatal("underfull hook never fired across a mass deletion")
	}
	for _, ev := range events {
		if ev.Level != 0 {
			t.Fatalf("leaf deletion produced level-%d event", ev.Level)
		}
		if ev.ID == base.NilPage {
			t.Fatal("event with nil page")
		}
	}
	st := tr.Stats()
	if st.UnderfullEvents != uint64(len(events)) {
		t.Fatalf("stat %d != events %d", st.UnderfullEvents, len(events))
	}
	tr.SetUnderfullHandler(nil)
	before := len(events)
	_ = tr.Insert(1, 0)
	_ = tr.Delete(1)
	if len(events) != before {
		t.Fatal("hook fired after removal")
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 200; i += 2 {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []base.Key
	err := tr.Range(31, 101, func(k base.Key, v base.Value) bool {
		if base.Value(k) != v {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []base.Key
	for i := 32; i <= 100; i += 2 {
		want = append(want, base.Key(i))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRangeEarlyStopAndEmpty(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 50; i++ {
		_ = tr.Insert(base.Key(i), 0)
	}
	count := 0
	_ = tr.Range(0, 49, func(base.Key, base.Value) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop emitted %d", count)
	}
	count = 0
	_ = tr.Range(60, 50, func(base.Key, base.Value) bool { count++; return true })
	if count != 0 {
		t.Fatal("inverted range emitted pairs")
	}
	count = 0
	_ = tr.Range(1000, 2000, func(base.Key, base.Value) bool { count++; return true })
	if count != 0 {
		t.Fatal("out-of-range scan emitted pairs")
	}
}

func TestMinMax(t *testing.T) {
	tr := newTestTree(t, 2)
	if _, _, err := tr.Min(); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("Min on empty must be ErrNotFound")
	}
	if _, _, err := tr.Max(); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("Max on empty must be ErrNotFound")
	}
	for _, k := range []base.Key{50, 10, 90, 30, 70} {
		_ = tr.Insert(k, base.Value(k))
	}
	if k, v, err := tr.Min(); err != nil || k != 10 || v != 10 {
		t.Fatalf("Min = (%d,%d,%v)", k, v, err)
	}
	if k, v, err := tr.Max(); err != nil || k != 90 || v != 90 {
		t.Fatalf("Max = (%d,%d,%v)", k, v, err)
	}
	// Delete the max; Max must fall back correctly even though the
	// rightmost leaf may be sparse.
	_ = tr.Delete(90)
	if k, _, err := tr.Max(); err != nil || k != 70 {
		t.Fatalf("Max after delete = (%d,%v)", k, err)
	}
}

func TestExtremeKeys(t *testing.T) {
	tr := newTestTree(t, 2)
	maxKey := base.Key(^uint64(0))
	for _, k := range []base.Key{0, 1, maxKey, maxKey - 1} {
		if err := tr.Insert(k, base.Value(k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	mustCheck(t, tr)
	for _, k := range []base.Key{0, 1, maxKey, maxKey - 1} {
		if v, err := tr.Search(k); err != nil || v != base.Value(k) {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, err)
		}
	}
	var got []base.Key
	_ = tr.Range(0, maxKey, func(k base.Key, _ base.Value) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("full scan = %v", got)
	}
}

func TestPagedStoreTree(t *testing.T) {
	ps, err := node.NewPagedStore(storage.NewMemStore(512))
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	if max := node.MaxPairs(512); 2*k > max {
		t.Fatalf("2k=%d exceeds page capacity %d", 2*k, max)
	}
	tr, err := New(Config{Store: ps, MinPairs: k})
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i*3), base.Value(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	mustCheck(t, tr)
	for i := 0; i < n; i++ {
		if v, err := tr.Search(base.Key(i * 3)); err != nil || v != base.Value(i) {
			t.Fatalf("Search = (%d,%v)", v, err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := tr.Delete(base.Key(i * 3)); err != nil {
			t.Fatal(err)
		}
	}
	mustCheck(t, tr)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MinPairs: 1}); err == nil {
		t.Fatal("MinPairs 1 must be rejected")
	}
	tr, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MinPairs() != DefaultMinPairs {
		t.Fatalf("default k = %d", tr.MinPairs())
	}
}

func TestClosedTree(t *testing.T) {
	tr := newTestTree(t, 2)
	_ = tr.Insert(1, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Search(1); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("Search after close = %v", err)
	}
	if err := tr.Insert(2, 2); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("Insert after close = %v", err)
	}
	if err := tr.Delete(1); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("Delete after close = %v", err)
	}
	if err := tr.Range(0, 10, nil); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("Range after close = %v", err)
	}
}

func TestAdoptExistingStore(t *testing.T) {
	store := node.NewMemStore()
	tr1, err := New(Config{Store: store, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = tr1.Insert(base.Key(i), base.Value(i))
	}
	_ = tr1.Close()
	// A second tree over the same store adopts the existing structure.
	tr2, err := New(Config{Store: store, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v, err := tr2.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("adopted tree lost key %d: (%d,%v)", i, v, err)
		}
	}
	// Len is tracked per-Tree, so Check would flag the mismatch; verify
	// the structural part by occupancy instead.
	occ, err := tr2.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	if occ.Pairs != 100 {
		t.Fatalf("adopted pairs = %d", occ.Pairs)
	}
}

func TestStatsSnapshotAndReset(t *testing.T) {
	tr := newTestTree(t, 2)
	for i := 0; i < 64; i++ {
		_ = tr.Insert(base.Key(i), 0)
	}
	_, _ = tr.Search(1)
	_ = tr.Delete(1)
	st := tr.Stats()
	if st.Inserts != 64 || st.Searches != 1 || st.Deletes != 1 {
		t.Fatalf("op counts wrong: %+v", st)
	}
	if st.InsertLocks.Ops != 64 {
		t.Fatalf("insert footprint ops = %d", st.InsertLocks.Ops)
	}
	tr.ResetStats()
	if st := tr.Stats(); st.Inserts != 0 || st.Splits != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		tr := newTestTree(t, k)
		const n = 1000
		for i := 0; i < n; i++ {
			if err := tr.Insert(base.Key(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		h := tr.Height()
		// Height is at most log_{k+1}(n) + a couple (nodes hold ≥ k
		// after pure insertion splits... loosely bounded here).
		if h > 12 {
			t.Fatalf("k=%d height=%d too tall for %d keys", k, h, n)
		}
		mustCheck(t, tr)
	}
}

func TestStringer(t *testing.T) {
	tr := newTestTree(t, 2)
	_ = tr.Insert(1, 1)
	s := tr.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	var k, l, h int
	if _, err := fmt.Sscanf(s, "blink.Tree{k=%d, len=%d, height=%d}", &k, &l, &h); err != nil {
		t.Fatalf("unexpected String format %q: %v", s, err)
	}
}
