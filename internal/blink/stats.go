package blink

import (
	"sync/atomic"

	"blinktree/internal/locks"
)

// Stats holds the tree's operation counters. All fields are updated
// atomically; Snapshot returns a consistent-enough copy for reporting.
type Stats struct {
	searches atomic.Uint64
	inserts  atomic.Uint64
	deletes  atomic.Uint64
	scans    atomic.Uint64

	upserts atomic.Uint64 // Upsert + GetOrInsert
	updates atomic.Uint64 // Update
	cas     atomic.Uint64 // CompareAndSwap + CompareAndDelete attempts

	splits     atomic.Uint64 // node splits, including root splits
	rootSplits atomic.Uint64 // new roots created

	linkHops    atomic.Uint64 // right-link follows (the B-link overhead)
	outlinkHops atomic.Uint64 // deleted-node forwards (§5.2 case 1)
	restarts    atomic.Uint64 // wrong-node restarts (§5.2 case 2)
	backtracks  atomic.Uint64 // restart attempts resumed from the stack
	levelWaits  atomic.Uint64 // §3.3 waits for a level to appear

	underfullEvents atomic.Uint64 // underfull hook firings

	insertFP locks.FootprintStats
	deleteFP locks.FootprintStats
	condFP   locks.FootprintStats
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Searches, Inserts, Deletes, Scans uint64

	// Upserts counts Upsert + GetOrInsert, Updates counts Update, and
	// Cas counts CompareAndSwap + CompareAndDelete attempts (successful
	// or not).
	Upserts, Updates, Cas uint64

	Splits, RootSplits uint64

	LinkHops, OutlinkHops, Restarts, Backtracks, LevelWaits uint64

	UnderfullEvents uint64

	// InsertLocks, DeleteLocks and CondLocks summarize the lock
	// footprint of updates (CondLocks covers the conditional writes).
	// Searches take no locks by construction.
	InsertLocks locks.Footprint
	DeleteLocks locks.Footprint
	CondLocks   locks.Footprint
}

// Stats returns a snapshot of the counters.
func (t *Tree) Stats() StatsSnapshot {
	return StatsSnapshot{
		Searches:        t.stats.searches.Load(),
		Inserts:         t.stats.inserts.Load(),
		Deletes:         t.stats.deletes.Load(),
		Scans:           t.stats.scans.Load(),
		Upserts:         t.stats.upserts.Load(),
		Updates:         t.stats.updates.Load(),
		Cas:             t.stats.cas.Load(),
		Splits:          t.stats.splits.Load(),
		RootSplits:      t.stats.rootSplits.Load(),
		LinkHops:        t.stats.linkHops.Load(),
		OutlinkHops:     t.stats.outlinkHops.Load(),
		Restarts:        t.stats.restarts.Load(),
		Backtracks:      t.stats.backtracks.Load(),
		LevelWaits:      t.stats.levelWaits.Load(),
		UnderfullEvents: t.stats.underfullEvents.Load(),
		InsertLocks:     t.stats.insertFP.Snapshot(),
		DeleteLocks:     t.stats.deleteFP.Snapshot(),
		CondLocks:       t.stats.condFP.Snapshot(),
	}
}

// ResetStats zeroes every counter.
func (t *Tree) ResetStats() {
	t.stats.searches.Store(0)
	t.stats.inserts.Store(0)
	t.stats.deletes.Store(0)
	t.stats.scans.Store(0)
	t.stats.upserts.Store(0)
	t.stats.updates.Store(0)
	t.stats.cas.Store(0)
	t.stats.splits.Store(0)
	t.stats.rootSplits.Store(0)
	t.stats.linkHops.Store(0)
	t.stats.outlinkHops.Store(0)
	t.stats.restarts.Store(0)
	t.stats.backtracks.Store(0)
	t.stats.levelWaits.Store(0)
	t.stats.underfullEvents.Store(0)
	t.stats.insertFP.Reset()
	t.stats.deleteFP.Reset()
	t.stats.condFP.Reset()
}
