package blink

import (
	"blinktree/internal/base"
	"blinktree/internal/node"
)

// Cursor iterates the tree in ascending key order by walking the leaf
// chain — the sequential-access pattern the right links were originally
// introduced for (§2.1 footnote 3). A Cursor holds no locks; it reads
// leaf snapshots and is therefore safe to keep open indefinitely while
// the tree mutates, with the same monotonic semantics as Range: keys
// come back strictly ascending, each at-most-once, and concurrent
// insertions or deletions may or may not be observed.
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	t    *Tree
	leaf *node.Node
	idx  int
	// next is the smallest key not yet returned; it makes sibling hops
	// and restarts idempotent.
	next    base.Key
	started bool
	done    bool
	err     error
}

// NewCursor returns a cursor positioned before the smallest key ≥ start.
func (t *Tree) NewCursor(start base.Key) *Cursor {
	return &Cursor{t: t, next: start}
}

// Err returns the error that terminated iteration, if any.
func (c *Cursor) Err() error { return c.err }

// Next advances to the following pair, returning false at the end of
// the tree or on error (check Err).
func (c *Cursor) Next() (base.Key, base.Value, bool) {
	if c.done || c.err != nil {
		return 0, 0, false
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		k, v, ok, err := c.step()
		if err == nil {
			if !ok {
				c.done = true
				return 0, 0, false
			}
			return k, v, true
		}
		if !isRestart(err) {
			c.err = err
			return 0, 0, false
		}
		c.t.stats.restarts.Add(1)
		c.leaf = nil // re-seek from the root
	}
	c.err = ErrLivelock
	return 0, 0, false
}

// step yields the next pair ≥ c.next, seeking when unpositioned.
func (c *Cursor) step() (base.Key, base.Value, bool, error) {
	if c.leaf == nil {
		if err := c.seek(); err != nil {
			return 0, 0, false, err
		}
	}
	for {
		for c.idx < len(c.leaf.Keys) {
			i := c.idx
			c.idx++
			k := c.leaf.Keys[i]
			if k < c.next {
				continue
			}
			v := c.leaf.Vals[i]
			if k == base.Key(^uint64(0)) {
				c.done = true // maximum key: nothing can follow
			} else {
				c.next = k + 1
			}
			return k, v, true, nil
		}
		// Advance past this leaf's range so later redistributions
		// cannot replay pairs.
		if c.leaf.High.Kind == base.PosInf || c.leaf.Link == base.NilPage {
			return 0, 0, false, nil
		}
		if c.leaf.High.K >= c.next {
			c.next = c.leaf.High.K + 1
		}
		n, err := c.t.step(c.leaf.Link, c.next)
		if err != nil {
			return 0, 0, false, err
		}
		c.leaf = n
		c.idx = 0
		c.t.prefetchLink(n)
	}
}

// seek positions the cursor at the leaf that may contain c.next.
func (c *Cursor) seek() error {
	id, n, err := c.t.descend(c.next, nil)
	if err != nil {
		return err
	}
	if _, n, err = c.t.moveright(id, n, c.next); err != nil {
		return err
	}
	c.leaf = n
	c.idx = 0
	c.started = true
	c.t.prefetchLink(n)
	return nil
}

// Seek repositions the cursor before the smallest key ≥ k. Seeking
// backwards is allowed.
func (c *Cursor) Seek(k base.Key) {
	c.next = k
	c.leaf = nil
	c.idx = 0
	c.done = false
	c.err = nil
}
