package blink

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blinktree/internal/base"
)

// TestConcurrentInsertDisjoint: goroutines insert disjoint key ranges;
// afterwards everything must be present and the structure valid. This
// is the core Theorem 1 scenario (concurrent insertions with
// overtaking).
func TestConcurrentInsertDisjoint(t *testing.T) {
	tr := newTestTree(t, 2)
	const workers = 8
	const perWorker = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := base.Key(w*perWorker + i)
				if err := tr.Insert(k, base.Value(k)+1); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
	if tr.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perWorker)
	}
	for i := 0; i < workers*perWorker; i++ {
		v, err := tr.Search(base.Key(i))
		if err != nil || v != base.Value(i)+1 {
			t.Fatalf("Search(%d) = (%d,%v)", i, v, err)
		}
	}
	if st := tr.Stats(); st.InsertLocks.MaxHeld != 1 {
		t.Fatalf("insert held %d locks simultaneously", st.InsertLocks.MaxHeld)
	}
}

// TestConcurrentInsertInterleaved: same key space striped across
// workers so neighbouring inserts contend on the same leaves.
func TestConcurrentInsertInterleaved(t *testing.T) {
	tr := newTestTree(t, 3)
	const workers = 8
	const total = 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := w; k < total; k += workers {
				if err := tr.Insert(base.Key(k), base.Value(k)); err != nil {
					t.Errorf("insert %d: %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
	if tr.Len() != total {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestConcurrentDuplicateInserts: all workers race to insert the same
// keys; exactly one may win each.
func TestConcurrentDuplicateInserts(t *testing.T) {
	tr := newTestTree(t, 2)
	const workers = 8
	const keys = 200
	var wins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				err := tr.Insert(base.Key(k), base.Value(w))
				switch {
				case err == nil:
					wins.Add(1)
				case errors.Is(err, base.ErrDuplicate):
				default:
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
	if wins.Load() != keys {
		t.Fatalf("wins = %d, want %d (exactly one per key)", wins.Load(), keys)
	}
	if tr.Len() != keys {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestConcurrentReadersDuringInserts: readers run lock-free against a
// tree being populated; every key a reader finds must carry the right
// value, and keys written before the reader started must be visible.
func TestConcurrentReadersDuringInserts(t *testing.T) {
	tr := newTestTree(t, 3)
	const preload = 1000
	for i := 0; i < preload; i++ {
		if err := tr.Insert(base.Key(i*2), base.Value(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers add odd keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < preload; i++ {
			if err := tr.Insert(base.Key(i*2+1), base.Value(i*2+1)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	// Readers check stable keys continuously.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base.Key(rng.Intn(preload) * 2)
				v, err := tr.Search(k)
				if err != nil || v != base.Value(k) {
					t.Errorf("stable key %d: (%d,%v)", k, v, err)
					return
				}
			}
		}(r)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	mustCheck(t, tr)
}

// TestConcurrentMixedWorkload: insert/delete/search churn over a shared
// key space, validated against a mutex-protected model map. Keys are
// partitioned per worker for model determinism; the tree still sees
// full structural contention since keys interleave at leaf granularity.
func TestConcurrentMixedWorkload(t *testing.T) {
	tr := newTestTree(t, 3)
	const workers = 6
	const opsPerWorker = 3000
	type model struct {
		mu sync.Mutex
		m  map[base.Key]base.Value
	}
	models := make([]*model, workers)
	for i := range models {
		models[i] = &model{m: make(map[base.Key]base.Value)}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7))
			md := models[w]
			for i := 0; i < opsPerWorker; i++ {
				// Worker w owns keys ≡ w (mod workers).
				k := base.Key(rng.Intn(500)*workers + w)
				switch rng.Intn(3) {
				case 0:
					err := tr.Insert(k, base.Value(k)+7)
					md.mu.Lock()
					_, present := md.m[k]
					if err == nil {
						if present {
							t.Errorf("insert of present key %d succeeded", k)
						}
						md.m[k] = base.Value(k) + 7
					} else if errors.Is(err, base.ErrDuplicate) {
						if !present {
							t.Errorf("duplicate error for absent key %d", k)
						}
					} else {
						t.Errorf("insert: %v", err)
					}
					md.mu.Unlock()
				case 1:
					err := tr.Delete(k)
					md.mu.Lock()
					_, present := md.m[k]
					if err == nil {
						if !present {
							t.Errorf("delete of absent key %d succeeded", k)
						}
						delete(md.m, k)
					} else if errors.Is(err, base.ErrNotFound) {
						if present {
							t.Errorf("not-found for present key %d", k)
						}
					} else {
						t.Errorf("delete: %v", err)
					}
					md.mu.Unlock()
				default:
					v, err := tr.Search(k)
					md.mu.Lock()
					want, present := md.m[k]
					if err == nil {
						if !present || v != want {
							t.Errorf("search %d = %d, model (%d,%v)", k, v, want, present)
						}
					} else if errors.Is(err, base.ErrNotFound) {
						if present {
							t.Errorf("search missed present key %d", k)
						}
					} else {
						t.Errorf("search: %v", err)
					}
					md.mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
	// Final state must equal the union of the models.
	total := 0
	for _, md := range models {
		total += len(md.m)
		for k, want := range md.m {
			v, err := tr.Search(k)
			if err != nil || v != want {
				t.Fatalf("final state: key %d = (%d,%v), want %d", k, v, err, want)
			}
		}
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, model = %d", tr.Len(), total)
	}
	st := tr.Stats()
	if st.InsertLocks.MaxHeld > 1 || st.DeleteLocks.MaxHeld > 1 {
		t.Fatalf("update lock footprint exceeded 1: %+v", st)
	}
}

// TestConcurrentRangeScans: scans running against churn must emit
// strictly ascending keys with correct values.
func TestConcurrentRangeScans(t *testing.T) {
	tr := newTestTree(t, 3)
	for i := 0; i < 2000; i += 2 {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn odd keys
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := base.Key(rng.Intn(1000)*2 + 1)
			if rng.Intn(2) == 0 {
				_ = tr.Insert(k, base.Value(k))
			} else {
				_ = tr.Delete(k)
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				last := -1
				evens := 0
				err := tr.Range(0, 1999, func(k base.Key, v base.Value) bool {
					if int(k) <= last {
						t.Errorf("scan not ascending: %d after %d", k, last)
						return false
					}
					if base.Value(k) != v {
						t.Errorf("scan value mismatch at %d", k)
						return false
					}
					last = int(k)
					if k%2 == 0 {
						evens++
					}
					return true
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if evens != 1000 {
					t.Errorf("scan saw %d stable even keys, want 1000", evens)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	mustCheck(t, tr)
}

// TestLinkHopsObserved: with heavy splitting, some operation must
// traverse a right link (the B-link mechanism actually engages).
func TestLinkHopsObserved(t *testing.T) {
	tr := newTestTree(t, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = tr.Insert(base.Key(i*8+w), 0)
			}
		}(w)
	}
	wg.Wait()
	mustCheck(t, tr)
	// Not guaranteed on every schedule, but with 4000 contended inserts
	// at k=2 a zero link-hop count would indicate the moveright path is
	// dead code; accept zero only alongside zero splits.
	st := tr.Stats()
	if st.LinkHops == 0 && st.Splits > 100 {
		t.Logf("warning: %d splits but zero link hops (legal but unlikely)", st.Splits)
	}
}
