package blink

import (
	"iter"

	"blinktree/internal/base"
)

// Range-over-func iteration. All, Ascend and Descend adapt the
// cursors to iter.Seq2, so callers write
//
//	for k, v := range t.Ascend(lo, hi) { ... }
//
// with the cursors' concurrent-mutation semantics: no locks held, keys
// strictly monotonic, each key at most once, concurrent insertions or
// deletions may or may not be observed. A sequence that terminates
// early because of an internal error (closed tree, corrupt structure)
// simply stops; use the cursor API directly when the distinction
// between exhaustion and failure matters.

// All returns an iterator over every pair in ascending key order.
func (t *Tree) All() iter.Seq2[base.Key, base.Value] {
	return t.Ascend(0, base.Key(^uint64(0)))
}

// Ascend returns an iterator over the pairs with lo ≤ key ≤ hi in
// ascending key order. An inverted range (hi < lo) is empty.
func (t *Tree) Ascend(lo, hi base.Key) iter.Seq2[base.Key, base.Value] {
	return func(yield func(base.Key, base.Value) bool) {
		if hi < lo {
			return
		}
		c := t.NewCursor(lo)
		for {
			k, v, ok := c.Next()
			if !ok || k > hi {
				return
			}
			if !yield(k, v) {
				return
			}
		}
	}
}

// Descend returns an iterator over the pairs with lo ≤ key ≤ hi in
// descending key order, from hi down to lo. An inverted range
// (hi < lo) is empty. Reverse order pays one descent per leaf visited;
// see ReverseCursor.
func (t *Tree) Descend(hi, lo base.Key) iter.Seq2[base.Key, base.Value] {
	return func(yield func(base.Key, base.Value) bool) {
		if hi < lo {
			return
		}
		c := t.NewReverseCursor(hi)
		for {
			k, v, ok := c.Next()
			if !ok || k < lo {
				return
			}
			if !yield(k, v) {
				return
			}
		}
	}
}
