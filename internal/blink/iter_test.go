package blink

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

// collectRange gathers [lo, hi] via the callback Range.
func collectRange(t *testing.T, tr *Tree, lo, hi base.Key) []base.Key {
	t.Helper()
	var out []base.Key
	if err := tr.Range(lo, hi, func(k base.Key, _ base.Value) bool {
		out = append(out, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAscendDescendAgreeWithRange: on randomized trees, All/Ascend
// agree exactly with callback Range, and Descend is its exact
// reversal, for arbitrary windows — the iteration-equivalence
// acceptance criterion.
func TestAscendDescendAgreeWithRange(t *testing.T) {
	f := func(keys []uint16, lo16, hi16 uint16) bool {
		tr, err := New(Config{MinPairs: 2})
		if err != nil {
			return false
		}
		for _, raw := range keys {
			k := base.Key(raw % 900)
			if _, _, err := tr.Upsert(k, base.Value(k)*7); err != nil {
				return false
			}
		}
		lo, hi := base.Key(lo16%1000), base.Key(hi16%1000)
		want := collectRangeQuick(tr, lo, hi)

		var asc []base.Key
		for k, v := range tr.Ascend(lo, hi) {
			if v != base.Value(k)*7 {
				return false
			}
			asc = append(asc, k)
		}
		if !keysEqual(asc, want) {
			return false
		}

		var desc []base.Key
		for k, v := range tr.Descend(hi, lo) {
			if v != base.Value(k)*7 {
				return false
			}
			desc = append(desc, k)
		}
		reverse(desc)
		if !keysEqual(desc, want) {
			return false
		}

		// All == Range over the full keyspace.
		full := collectRangeQuick(tr, 0, base.Key(^uint64(0)))
		var all []base.Key
		for k := range tr.All() {
			all = append(all, k)
		}
		return keysEqual(all, full)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func collectRangeQuick(tr *Tree, lo, hi base.Key) []base.Key {
	var out []base.Key
	_ = tr.Range(lo, hi, func(k base.Key, _ base.Value) bool {
		out = append(out, k)
		return true
	})
	return out
}

func keysEqual(a, b []base.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func reverse(ks []base.Key) {
	for i, j := 0, len(ks)-1; i < j; i, j = i+1, j-1 {
		ks[i], ks[j] = ks[j], ks[i]
	}
}

func TestReverseCursorBasics(t *testing.T) {
	tr, err := New(Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Empty tree: nothing to yield.
	if _, _, ok := tr.NewReverseCursor(base.Key(^uint64(0))).Next(); ok {
		t.Fatal("reverse cursor on empty tree yielded a pair")
	}
	keys := []base.Key{3, 9, 27, 81, 243, 729}
	for _, k := range keys {
		if err := tr.Insert(k, base.Value(k)+1); err != nil {
			t.Fatal(err)
		}
	}
	// From above the top: everything, descending.
	c := tr.NewReverseCursor(1000)
	for i := len(keys) - 1; i >= 0; i-- {
		k, v, ok := c.Next()
		if !ok || k != keys[i] || v != base.Value(keys[i])+1 {
			t.Fatalf("reverse[%d] = (%d, %d, %v), want %d", i, k, v, ok, keys[i])
		}
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("reverse cursor ran past the start")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// Start exactly on a key (inclusive) and between keys.
	c.Seek(27)
	if k, _, ok := c.Next(); !ok || k != 27 {
		t.Fatalf("seek(27) -> %d", k)
	}
	c.Seek(26)
	if k, _, ok := c.Next(); !ok || k != 9 {
		t.Fatalf("seek(26) -> %d", k)
	}
	// Key 0 terminates cleanly.
	if err := tr.Insert(0, 1); err != nil {
		t.Fatal(err)
	}
	c.Seek(2)
	if k, _, ok := c.Next(); !ok || k != 0 {
		t.Fatalf("seek(2) -> %d", k)
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("cursor continued below key 0")
	}
}

// TestReverseCursorLargeTree walks a multi-level tree backwards and
// must see every key exactly once in exact descending order.
func TestReverseCursorLargeTree(t *testing.T) {
	tr, err := New(Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	model := map[base.Key]bool{}
	for i := 0; i < 5000; i++ {
		k := base.Key(rng.Uint64() % 100000)
		if !model[k] {
			if err := tr.Insert(k, base.Value(k)); err != nil {
				t.Fatal(err)
			}
			model[k] = true
		}
	}
	sorted := make([]base.Key, 0, len(model))
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })

	c := tr.NewReverseCursor(base.Key(^uint64(0)))
	i := 0
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if i >= len(sorted) || k != sorted[i] {
			t.Fatalf("reverse[%d] = %d, want %d", i, k, sorted[i])
		}
		i++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(sorted) {
		t.Fatalf("reverse walk saw %d of %d keys", i, len(sorted))
	}
}

// TestReverseCursorUnderMutation: stable keys must all be observed in
// strictly descending order while adjacent keys churn (the mirrored
// analog of the forward-cursor stability test).
func TestReverseCursorUnderMutation(t *testing.T) {
	tr, err := New(Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	stable := make([]base.Key, 0, 200)
	for i := 0; i < 200; i++ {
		k := base.Key(i * 100)
		stable = append(stable, k)
		if err := tr.Insert(k, base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := stable[rng.Intn(len(stable))] + 1 + base.Key(rng.Intn(50))
			if i%2 == 0 {
				_ = tr.Insert(k, 0)
			} else {
				_ = tr.Delete(k)
			}
		}
	}()
	for iter := 0; iter < 30; iter++ {
		c := tr.NewReverseCursor(base.Key(^uint64(0)))
		var prev base.Key
		first := true
		seen := 0
		for {
			k, _, ok := c.Next()
			if !ok {
				break
			}
			if !first && k >= prev {
				t.Fatalf("iter %d: reverse cursor regressed: %d after %d", iter, k, prev)
			}
			first = false
			prev = k
			if k%100 == 0 {
				seen++
			}
		}
		if err := c.Err(); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if seen != len(stable) {
			t.Fatalf("iter %d: saw %d of %d stable keys", iter, seen, len(stable))
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestIterEarlyBreak: breaking out of a range-over-func loop stops the
// underlying cursor without error.
func TestIterEarlyBreak(t *testing.T) {
	tr, err := New(Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for range tr.All() {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("early break after %d", n)
	}
	n = 0
	for range tr.Descend(base.Key(^uint64(0)), 0) {
		n++
		if n == 7 {
			break
		}
	}
	if n != 7 {
		t.Fatalf("reverse early break after %d", n)
	}
	// Inverted windows yield nothing.
	for k, v := range tr.Ascend(50, 10) {
		t.Fatalf("inverted Ascend yielded (%d, %d)", k, v)
	}
	for k, v := range tr.Descend(10, 50) {
		t.Fatalf("inverted Descend yielded (%d, %d)", k, v)
	}
}
