package blink

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/node"
)

// BulkLoad builds the tree's content bottom-up from a sorted stream of
// strictly ascending pairs. It is dramatically faster than repeated
// Insert for initial loads because it writes each page exactly once and
// packs nodes to the target fill fraction.
//
// BulkLoad requires an EMPTY tree (as produced by New over a fresh
// store) and exclusive access — it is the one operation that is not
// concurrent; the tree is fully usable (and concurrent) afterwards.
// fill is the target fraction of capacity per node in (0.5, 1.0]; 0
// means 1.0 (fully packed, the B*-tree ideal for read-mostly data);
// loads expecting further inserts should use ~0.7.
func (t *Tree) BulkLoad(pairs func() (base.Key, base.Value, bool), fill float64) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	if t.Len() != 0 {
		return fmt.Errorf("blink: BulkLoad on non-empty tree (%d pairs)", t.Len())
	}
	if fill == 0 {
		fill = 1.0
	}
	if fill <= 0.5 || fill > 1.0 {
		return fmt.Errorf("blink: BulkLoad fill %.2f outside (0.5, 1.0]", fill)
	}
	per := int(float64(t.capacity()) * fill)
	if per < t.k {
		per = t.k
	}

	p, err := t.store.ReadPrime()
	if err != nil {
		return err
	}
	oldRoot := p.Root

	level, highs, count, err := t.buildLeafLevel(pairs, per)
	if err != nil {
		return err
	}
	if len(level) == 0 {
		return nil // empty input: tree unchanged
	}
	leftmost := []base.PageID{level[0]}
	for len(level) > 1 {
		if level, highs, err = t.buildInternalLevel(level, highs, per); err != nil {
			return err
		}
		leftmost = append(leftmost, level[0])
	}

	// Stamp the root bit and publish the prime block.
	rootN, err := t.store.Get(level[0])
	if err != nil {
		return err
	}
	r2 := rootN.Clone()
	r2.Root = true
	if err := t.store.Put(r2); err != nil {
		return err
	}
	if err := t.store.WritePrime(node.Prime{
		Root:     level[0],
		Levels:   len(leftmost),
		Leftmost: leftmost,
	}); err != nil {
		return err
	}
	t.length.Add(int64(count))
	// Retire the placeholder root left over from New.
	if oldRoot != base.NilPage && oldRoot != level[0] {
		if t.rec != nil {
			t.rec.Retire(oldRoot)
		} else if err := t.store.Free(oldRoot); err != nil {
			return err
		}
	}
	return nil
}

// buildLeafLevel consumes the sorted pair stream into packed leaves,
// links them, and returns their ids, high bounds and the pair count.
func (t *Tree) buildLeafLevel(pairs func() (base.Key, base.Value, bool), per int) ([]base.PageID, []base.Bound, int, error) {
	var leaves []*node.Node
	var cur *node.Node
	last := base.NegInfBound()
	count := 0
	for {
		k, v, ok := pairs()
		if !ok {
			break
		}
		if !last.Less(k) {
			return nil, nil, 0, fmt.Errorf("%w: BulkLoad input not strictly ascending at key %d", base.ErrCorrupt, k)
		}
		if cur == nil || len(cur.Keys) >= per {
			id, err := t.store.Allocate()
			if err != nil {
				return nil, nil, 0, err
			}
			cur = &node.Node{ID: id, Leaf: true}
			leaves = append(leaves, cur)
		}
		cur.Keys = append(cur.Keys, k)
		cur.Vals = append(cur.Vals, v)
		last = base.FiniteBound(k)
		count++
	}
	if len(leaves) == 0 {
		return nil, nil, 0, nil
	}
	leaves, err := t.rebalanceTailLeaf(leaves)
	if err != nil {
		return nil, nil, 0, err
	}
	ids, highs, err := t.sealChain(leaves)
	return ids, highs, count, err
}

// rebalanceTailLeaf fixes the last leaf when it is under k pairs:
// either merge it into its predecessor (when both fit in one node) or
// split the combined pairs evenly.
func (t *Tree) rebalanceTailLeaf(leaves []*node.Node) ([]*node.Node, error) {
	if len(leaves) < 2 {
		return leaves, nil
	}
	lastL, prevL := leaves[len(leaves)-1], leaves[len(leaves)-2]
	q := len(lastL.Keys)
	if q >= t.k {
		return leaves, nil
	}
	combined := len(prevL.Keys) + q
	if combined <= t.capacity() {
		prevL.Keys = append(prevL.Keys, lastL.Keys...)
		prevL.Vals = append(prevL.Vals, lastL.Vals...)
		if err := t.store.Free(lastL.ID); err != nil {
			return nil, err
		}
		return leaves[:len(leaves)-1], nil
	}
	need := (combined+1)/2 - q
	cut := len(prevL.Keys) - need
	lastL.Keys = append(append([]base.Key(nil), prevL.Keys[cut:]...), lastL.Keys...)
	lastL.Vals = append(append([]base.Value(nil), prevL.Vals[cut:]...), lastL.Vals...)
	prevL.Keys = prevL.Keys[:cut]
	prevL.Vals = prevL.Vals[:cut]
	return leaves, nil
}

// sealChain sets low/high bounds and right links across a finished
// level (leaf highs are their largest key, §2.1's creation rule; the
// rightmost node gets +∞/nil) and writes every node.
func (t *Tree) sealChain(nodes []*node.Node) ([]base.PageID, []base.Bound, error) {
	ids := make([]base.PageID, len(nodes))
	highs := make([]base.Bound, len(nodes))
	low := base.NegInfBound()
	for i, n := range nodes {
		n.Low = low
		if i < len(nodes)-1 {
			if n.Leaf {
				n.High = base.FiniteBound(n.Keys[len(n.Keys)-1])
			}
			// Internal nodes had High set when they were closed.
			n.Link = nodes[i+1].ID
		} else {
			n.High = base.PosInfBound()
			n.Link = base.NilPage
		}
		low = n.High
		if err := t.store.Put(n); err != nil {
			return nil, nil, err
		}
		ids[i] = n.ID
		highs[i] = n.High
	}
	return ids, highs, nil
}

// buildInternalLevel packs one internal level over children (with their
// high bounds, parallel slices) and returns the new level.
func (t *Tree) buildInternalLevel(children []base.PageID, highs []base.Bound, per int) ([]base.PageID, []base.Bound, error) {
	var nodes []*node.Node
	var cur *node.Node
	for i, child := range children {
		if cur != nil && len(cur.Keys) < per {
			// The separator before this child is the previous child's
			// high value — exactly the Fig. 2 sequence.
			sep := highs[i-1]
			if !sep.IsFinite() {
				return nil, nil, fmt.Errorf("%w: non-finite separator during bulk load", base.ErrCorrupt)
			}
			cur.Keys = append(cur.Keys, sep.K)
			cur.Children = append(cur.Children, child)
			continue
		}
		if cur != nil {
			cur.High = highs[i-1] // closes at the boundary separator
		}
		id, err := t.store.Allocate()
		if err != nil {
			return nil, nil, err
		}
		cur = &node.Node{ID: id, Children: []base.PageID{child}}
		nodes = append(nodes, cur)
	}
	nodes, err := t.rebalanceTailInternal(nodes)
	if err != nil {
		return nil, nil, err
	}
	return t.sealChain(nodes)
}

// rebalanceTailInternal fixes the last internal node when it is under k
// separators: merge into the predecessor (pulling the boundary
// separator down) when everything fits, otherwise move separators and
// children across so both halves hold ≥ k.
func (t *Tree) rebalanceTailInternal(nodes []*node.Node) ([]*node.Node, error) {
	if len(nodes) < 2 {
		return nodes, nil
	}
	lastN, prevN := nodes[len(nodes)-1], nodes[len(nodes)-2]
	q := len(lastN.Keys)
	if q >= t.k {
		return nodes, nil
	}
	// The boundary separator between the two nodes is prevN.High (set
	// when prevN was closed); merging or rebalancing pulls it down.
	boundary := prevN.High
	if !boundary.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite boundary during bulk load", base.ErrCorrupt)
	}
	combined := len(prevN.Keys) + 1 + q
	if combined <= t.capacity() {
		prevN.Keys = append(append(prevN.Keys, boundary.K), lastN.Keys...)
		prevN.Children = append(prevN.Children, lastN.Children...)
		prevN.High = base.Bound{} // reopened; sealChain/next close sets it
		if err := t.store.Free(lastN.ID); err != nil {
			return nil, err
		}
		return nodes[:len(nodes)-1], nil
	}
	// Split the combined sequence so lastN ends with target keys.
	target := combined / 2
	need := target - q // separators to add to lastN (≥ 1)
	cut := len(prevN.Keys) - need
	newBoundary := prevN.Keys[cut]
	movedKeys := append([]base.Key(nil), prevN.Keys[cut+1:]...)
	movedKids := append([]base.PageID(nil), prevN.Children[cut+1:]...)
	lastN.Keys = append(append(movedKeys, boundary.K), lastN.Keys...)
	lastN.Children = append(movedKids, lastN.Children...)
	prevN.Keys = prevN.Keys[:cut]
	prevN.Children = prevN.Children[:cut+1]
	prevN.High = base.FiniteBound(newBoundary)
	return nodes, nil
}
