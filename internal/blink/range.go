package blink

import (
	"blinktree/internal/base"
)

// Range calls fn for every pair with lo ≤ key ≤ hi in ascending key
// order, stopping early when fn returns false. The scan walks the leaf
// chain through the right links — the sequential-traversal property the
// links were originally added for (§2.1 footnote 3).
//
// Concurrent-mutation semantics: each visited leaf is an atomic
// snapshot, and the scan never emits a key twice or out of order, but
// pairs inserted or deleted concurrently with the scan may or may not
// appear. (The paper's serializability theorem covers point operations;
// scans get this weaker, still-monotonic guarantee.)
func (t *Tree) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	if hi < lo {
		return nil
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)
	t.stats.scans.Add(1)

	// cursor is the smallest key not yet emitted; it makes restarts and
	// sibling hops idempotent.
	cursor := lo
	for attempt := 0; attempt < maxRestarts; attempt++ {
		done, err := t.scanFrom(&cursor, hi, fn)
		if err == nil || !isRestart(err) {
			_ = done
			return err
		}
		t.stats.restarts.Add(1)
	}
	return ErrLivelock
}

// scanFrom emits pairs in [*cursor, hi], advancing *cursor as it goes,
// until the range is exhausted, fn stops it, or a wrong node forces a
// restart.
func (t *Tree) scanFrom(cursor *base.Key, hi base.Key, fn func(base.Key, base.Value) bool) (bool, error) {
	id, n, err := t.descend(*cursor, nil)
	if err != nil {
		return false, err
	}
	if id, n, err = t.moveright(id, n, *cursor); err != nil {
		return false, err
	}
	for {
		t.prefetchLink(n)
		for i, k := range n.Keys {
			if k < *cursor {
				continue
			}
			if k > hi {
				return true, nil
			}
			if !fn(k, n.Vals[i]) {
				return true, nil
			}
			if k == base.Key(^uint64(0)) {
				return true, nil // emitted the maximum key; nothing above it
			}
			*cursor = k + 1
		}
		// Advance past this leaf's range so a redistribution that
		// shifts pairs left cannot replay them.
		if n.High.Kind == base.PosInf {
			return true, nil
		}
		if n.High.K >= hi {
			return true, nil
		}
		if n.High.K >= *cursor {
			*cursor = n.High.K + 1
		}
		next := n.Link
		if next == base.NilPage {
			return true, nil
		}
		if n, err = t.step(next, *cursor); err != nil {
			return false, err
		}
	}
}

// Min returns the smallest key in the tree, or ErrNotFound when empty.
func (t *Tree) Min() (base.Key, base.Value, error) {
	var rk base.Key
	var rv base.Value
	found := false
	err := t.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		rk, rv, found = k, v, true
		return false
	})
	if err != nil {
		return 0, 0, err
	}
	if !found {
		return 0, 0, base.ErrNotFound
	}
	return rk, rv, nil
}

// Max returns the largest key in the tree, or ErrNotFound when empty.
// It walks the rightmost spine rather than scanning.
func (t *Tree) Max() (base.Key, base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, 0, err
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)

	for attempt := 0; attempt < maxRestarts; attempt++ {
		k, v, err := t.maxOnce()
		if err == nil || !isRestart(err) {
			return k, v, err
		}
		t.stats.restarts.Add(1)
	}
	return 0, 0, ErrLivelock
}

func (t *Tree) maxOnce() (base.Key, base.Value, error) {
	maxKey := base.Key(^uint64(0))
	id, n, err := t.descend(maxKey, nil)
	if err != nil {
		return 0, 0, err
	}
	if _, n, err = t.moveright(id, n, maxKey); err != nil {
		return 0, 0, err
	}
	// The rightmost leaf can be empty after deletions even when the
	// tree is not; fall back to a full reverse-less scan via Range in
	// that rare case by walking from the left.
	if len(n.Keys) == 0 {
		var rk base.Key
		var rv base.Value
		found := false
		err := t.Range(0, maxKey, func(k base.Key, v base.Value) bool {
			rk, rv, found = k, v, true
			return true
		})
		if err != nil {
			return 0, 0, err
		}
		if !found {
			return 0, 0, base.ErrNotFound
		}
		return rk, rv, nil
	}
	i := len(n.Keys) - 1
	return n.Keys[i], n.Vals[i], nil
}
