package blink

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/node"
)

// Check validates every structural invariant of the Blink-tree. It must
// run quiesced (no concurrent mutators or compressors mid-flight). The
// checks encode §2.1's structure and the Fig. 2 observation that each
// level repeats the (high value, link) sequence of the level below:
//
//  1. prime block consistency (levels, leftmost array, root);
//  2. per level: the right-link chain is finite, nodes are live and
//     locally valid, low/high bounds tile the key space exactly
//     (−∞ … +∞ with each node's low equal to its left neighbour's
//     high), and only level 0 holds leaves;
//  3. across levels: concatenating the child lists of level i+1 in
//     chain order yields exactly the chain of level i, and each child's
//     (low, high] equals the separator interval its parent assigns;
//  4. globally: leaf keys strictly ascend across the whole chain, and
//     the pair count matches Len.
func (t *Tree) Check() error {
	p, err := t.store.ReadPrime()
	if err != nil {
		return err
	}
	if p.Levels == 0 {
		return fmt.Errorf("%w: prime block has no levels", base.ErrCorrupt)
	}
	if len(p.Leftmost) != p.Levels {
		return fmt.Errorf("%w: prime leftmost has %d entries for %d levels", base.ErrCorrupt, len(p.Leftmost), p.Levels)
	}
	if p.Leftmost[p.Levels-1] != p.Root {
		return fmt.Errorf("%w: prime root %d != top leftmost %d", base.ErrCorrupt, p.Root, p.Leftmost[p.Levels-1])
	}

	root, err := t.store.Get(p.Root)
	if err != nil {
		return err
	}
	if !root.Root {
		return fmt.Errorf("%w: root %d missing root bit", base.ErrCorrupt, p.Root)
	}

	var pairs int
	var prevChain []base.PageID
	for level := p.Levels - 1; level >= 0; level-- {
		chain, err := t.checkLevel(p, level)
		if err != nil {
			return fmt.Errorf("level %d: %w", level, err)
		}
		if level < p.Levels-1 {
			// Invariant 3: children of the level above are exactly this
			// chain (Fig. 2).
			kids, err := t.childrenOf(prevChain)
			if err != nil {
				return err
			}
			if err := samePageSeq(kids, chain); err != nil {
				return fmt.Errorf("level %d children vs level %d chain: %w", level+1, level, err)
			}
		}
		if level == 0 {
			n, err := t.countPairs(chain)
			if err != nil {
				return err
			}
			pairs = n
		}
		prevChain = chain
	}
	if got := t.Len(); got != pairs {
		return fmt.Errorf("%w: Len() = %d but leaves hold %d pairs", base.ErrCorrupt, got, pairs)
	}
	return nil
}

// checkLevel validates one level's chain and returns it in order.
func (t *Tree) checkLevel(p node.Prime, level int) ([]base.PageID, error) {
	var chain []base.PageID
	id := p.Leftmost[level]
	prevHigh := base.NegInfBound()
	limit := t.store.Pages() + 2
	for id != base.NilPage {
		if len(chain) > limit {
			return nil, fmt.Errorf("%w: link cycle", base.ErrCorrupt)
		}
		n, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		if n.Deleted {
			return nil, fmt.Errorf("%w: deleted node %d in chain", base.ErrCorrupt, id)
		}
		if err := n.Validate(); err != nil {
			return nil, err
		}
		if n.Leaf != (level == 0) {
			return nil, fmt.Errorf("%w: node %d leaf=%v at level %d", base.ErrCorrupt, id, n.Leaf, level)
		}
		if !n.Low.Equal(prevHigh) {
			return nil, fmt.Errorf("%w: node %d low %v != left neighbour high %v", base.ErrCorrupt, id, n.Low, prevHigh)
		}
		if n.Root != (id == p.Root) {
			return nil, fmt.Errorf("%w: node %d root bit %v (root is %d)", base.ErrCorrupt, id, n.Root, p.Root)
		}
		if n.Pairs() > t.capacity() {
			return nil, fmt.Errorf("%w: node %d holds %d > 2k pairs", base.ErrCorrupt, id, n.Pairs())
		}
		chain = append(chain, id)
		prevHigh = n.High
		id = n.Link
	}
	if prevHigh.Kind != base.PosInf {
		return nil, fmt.Errorf("%w: chain ends with high %v, want +inf", base.ErrCorrupt, prevHigh)
	}
	return chain, nil
}

// childrenOf concatenates the child lists of the given internal nodes,
// also verifying each child's bounds against its separator interval.
func (t *Tree) childrenOf(chain []base.PageID) ([]base.PageID, error) {
	var kids []base.PageID
	for _, id := range chain {
		f, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		for i, c := range f.Children {
			child, err := t.store.Get(c)
			if err != nil {
				return nil, fmt.Errorf("parent %d child %d: %w", id, c, err)
			}
			lo, hi := f.SeparatorBefore(i), f.SeparatorAfter(i)
			if !child.Low.Equal(lo) || !child.High.Equal(hi) {
				return nil, fmt.Errorf("%w: child %d of %d spans (%v,%v], parent assigns (%v,%v]",
					base.ErrCorrupt, c, id, child.Low, child.High, lo, hi)
			}
			kids = append(kids, c)
		}
	}
	return kids, nil
}

func (t *Tree) countPairs(chain []base.PageID) (int, error) {
	total := 0
	var last base.Bound // strictly ascending watermark, starts −∞
	for _, id := range chain {
		n, err := t.store.Get(id)
		if err != nil {
			return 0, err
		}
		for _, k := range n.Keys {
			if !last.Less(k) {
				return 0, fmt.Errorf("%w: leaf key %d not above watermark %v", base.ErrCorrupt, k, last)
			}
			last = base.FiniteBound(k)
		}
		total += n.Pairs()
	}
	return total, nil
}

func samePageSeq(a, b []base.PageID) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d children vs %d chain nodes", base.ErrCorrupt, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%w: position %d: child %d != chain %d", base.ErrCorrupt, i, a[i], b[i])
		}
	}
	return nil
}

// Occupancy describes how full the tree's nodes are; compression
// experiments (E3) report it before and after compressing.
type Occupancy struct {
	Nodes     int     // live nodes, all levels
	Leaves    int     // live leaves
	Pairs     int     // pairs stored in leaves
	Underfull int     // non-root nodes with < k pairs
	MeanFill  float64 // mean pairs/(2k) over non-root nodes
	Height    int
}

// OccupancyStats walks the quiesced tree and reports fill statistics.
func (t *Tree) OccupancyStats() (Occupancy, error) {
	p, err := t.store.ReadPrime()
	if err != nil {
		return Occupancy{}, err
	}
	occ := Occupancy{Height: p.Levels}
	var fillSum float64
	var fillN int
	for level := 0; level < p.Levels; level++ {
		id := p.Leftmost[level]
		for id != base.NilPage {
			n, err := t.store.Get(id)
			if err != nil {
				return Occupancy{}, err
			}
			occ.Nodes++
			if n.Leaf {
				occ.Leaves++
				occ.Pairs += n.Pairs()
			}
			if !n.Root {
				if n.Pairs() < t.k {
					occ.Underfull++
				}
				fillSum += float64(n.Pairs()) / float64(t.capacity())
				fillN++
			}
			id = n.Link
		}
	}
	if fillN > 0 {
		occ.MeanFill = fillSum / float64(fillN)
	}
	return occ, nil
}
