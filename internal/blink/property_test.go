package blink

import (
	"errors"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

// TestPropertySequentialOpsMatchModel drives random op sequences —
// the paper's three plus every conditional write — against a map model
// and checks result equivalence plus invariants: the data-equivalence
// notion of Theorem 1 specialized to one process, over the widened
// operation surface.
func TestPropertySequentialOpsMatchModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16 // small space to force collisions
		Val  uint16
	}
	f := func(ops []op) bool {
		tr, err := New(Config{MinPairs: 2})
		if err != nil {
			return false
		}
		model := map[base.Key]base.Value{}
		for _, o := range ops {
			k := base.Key(o.Key % 512)
			v := base.Value(o.Val)
			want, present := model[k]
			switch o.Kind % 8 {
			case 0:
				err := tr.Insert(k, v)
				if present {
					if !errors.Is(err, base.ErrDuplicate) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model[k] = v
				}
			case 1:
				err := tr.Delete(k)
				if present {
					if err != nil {
						return false
					}
					delete(model, k)
				} else if !errors.Is(err, base.ErrNotFound) {
					return false
				}
			case 2:
				got, err := tr.Search(k)
				if present {
					if err != nil || got != want {
						return false
					}
				} else if !errors.Is(err, base.ErrNotFound) {
					return false
				}
			case 3:
				old, existed, err := tr.Upsert(k, v)
				if err != nil || existed != present || (present && old != want) {
					return false
				}
				model[k] = v
			case 4:
				got, loaded, err := tr.GetOrInsert(k, v)
				if err != nil || loaded != present {
					return false
				}
				if present {
					if got != want {
						return false
					}
				} else {
					if got != v {
						return false
					}
					model[k] = v
				}
			case 5:
				got, err := tr.Update(k, func(cur base.Value) base.Value { return cur + 1 })
				if present {
					if err != nil || got != want+1 {
						return false
					}
					model[k] = want + 1
				} else if !errors.Is(err, base.ErrNotFound) {
					return false
				}
			case 6:
				// Half the attempts use the right expected value.
				exp := want
				if o.Val%2 == 1 {
					exp = want + 1
				}
				ok, err := tr.CompareAndSwap(k, exp, v)
				if present {
					if err != nil || ok != (exp == want) {
						return false
					}
					if ok {
						model[k] = v
					}
				} else if !errors.Is(err, base.ErrNotFound) {
					return false
				}
			default:
				exp := want
				if o.Val%2 == 1 {
					exp = want + 1
				}
				ok, err := tr.CompareAndDelete(k, exp)
				if present {
					if err != nil || ok != (exp == want) {
						return false
					}
					if ok {
						delete(model, k)
					}
				} else if !errors.Is(err, base.ErrNotFound) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		return tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRangeMatchesModel: after random inserts, every range scan
// agrees with the sorted model contents.
func TestPropertyRangeMatchesModel(t *testing.T) {
	f := func(keys []uint16, lo, hi uint16) bool {
		tr, err := New(Config{MinPairs: 2})
		if err != nil {
			return false
		}
		model := map[base.Key]base.Value{}
		for _, raw := range keys {
			k := base.Key(raw % 300)
			if _, dup := model[k]; dup {
				continue
			}
			if tr.Insert(k, base.Value(k)*3) != nil {
				return false
			}
			model[k] = base.Value(k) * 3
		}
		l, h := base.Key(lo%350), base.Key(hi%350)
		if l > h {
			l, h = h, l
		}
		want := 0
		for k := range model {
			if k >= l && k <= h {
				want++
			}
		}
		got := 0
		lastKey := -1
		err = tr.Range(l, h, func(k base.Key, v base.Value) bool {
			if int(k) <= lastKey || k < l || k > h || v != base.Value(k)*3 {
				got = -1 << 30
				return false
			}
			lastKey = int(k)
			got++
			return true
		})
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInsertDeleteInverse: inserting a batch then deleting it
// restores emptiness (of logical data) regardless of order.
func TestPropertyInsertDeleteInverse(t *testing.T) {
	f := func(keys []uint16, seed uint8) bool {
		tr, err := New(Config{MinPairs: 2})
		if err != nil {
			return false
		}
		uniq := map[base.Key]bool{}
		var list []base.Key
		for _, raw := range keys {
			k := base.Key(raw)
			if !uniq[k] {
				uniq[k] = true
				list = append(list, k)
			}
		}
		for _, k := range list {
			if tr.Insert(k, 1) != nil {
				return false
			}
		}
		// Delete in a rotated order to vary the pattern.
		off := 0
		if len(list) > 0 {
			off = int(seed) % len(list)
		}
		for i := range list {
			if tr.Delete(list[(i+off)%len(list)]) != nil {
				return false
			}
		}
		if tr.Len() != 0 {
			return false
		}
		count := 0
		_ = tr.Range(0, base.Key(^uint64(0)), func(base.Key, base.Value) bool {
			count++
			return true
		})
		return count == 0 && tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLockFootprintAlwaysOne: whatever the op mix, an update
// never holds more than one lock (the paper's abstract claim).
func TestPropertyLockFootprintAlwaysOne(t *testing.T) {
	f := func(keys []uint16) bool {
		tr, err := New(Config{MinPairs: 2})
		if err != nil {
			return false
		}
		for _, raw := range keys {
			_ = tr.Insert(base.Key(raw%200), 0)
			if raw%4 == 0 {
				_ = tr.Delete(base.Key(raw % 100))
			}
			switch raw % 3 {
			case 0:
				_, _, _ = tr.Upsert(base.Key(raw%150), base.Value(raw))
			case 1:
				_, _ = tr.CompareAndSwap(base.Key(raw%150), 0, 1)
			default:
				_, _ = tr.CompareAndDelete(base.Key(raw%150), base.Value(raw))
			}
		}
		st := tr.Stats()
		return st.InsertLocks.MaxHeld <= 1 && st.DeleteLocks.MaxHeld <= 1 &&
			st.CondLocks.MaxHeld <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
