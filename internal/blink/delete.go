package blink

import (
	"blinktree/internal/base"
	"blinktree/internal/locks"
)

// Delete removes k from the tree. Deletions follow §4: locate the leaf,
// lock it, remove the pair by rewriting the leaf, unlock — structurally
// identical to an insertion without splitting, so it also holds at most
// one lock. No rebalancing happens here; if the leaf drops below k
// pairs the underfull hook fires (while the lock is held, §5.4) and a
// compression process takes over asynchronously.
func (t *Tree) Delete(k base.Key) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)
	t.stats.deletes.Add(1)

	sc := getScratch()
	sc.h.Init(t.lt)
	defer func() {
		sc.h.UnlockAll()
		t.stats.deleteFP.Record(&sc.h)
		putScratch(sc)
	}()

	leafID, _, err := t.descendRetry(k, &sc.stack)
	if err != nil {
		return err
	}

	cur := leafID
	for restarts := 0; ; {
		done, next, err := t.deleteStep(&sc.h, k, cur, sc.stack)
		if err == nil {
			if done {
				t.length.Add(-1)
				return nil
			}
			cur = next
			continue
		}
		if !isRestart(err) {
			return err
		}
		t.stats.restarts.Add(1)
		if restarts++; restarts > maxRestarts {
			return ErrLivelock
		}
		if cur, _, err = t.descendRetry(k, &sc.stack); err != nil {
			return err
		}
	}
}

// deleteStep attempts the removal at leaf cur, mirroring insertStep's
// lock-and-recheck discipline (Fig. 5 applied to deletion, §4).
func (t *Tree) deleteStep(h *locks.Holder, k base.Key, cur base.PageID, stack []base.PageID) (done bool, next base.PageID, err error) {
	h.Lock(cur)
	n, err := t.store.Get(cur)
	if err != nil {
		h.Unlock(cur)
		return false, base.NilPage, err
	}
	switch {
	case n.Deleted:
		h.Unlock(cur)
		if n.OutLink != base.NilPage {
			t.stats.outlinkHops.Add(1)
			return false, n.OutLink, nil
		}
		return false, base.NilPage, errRestart{}
	case !n.Low.Less(k):
		h.Unlock(cur)
		return false, base.NilPage, errRestart{}
	case n.HighLess(k):
		h.Unlock(cur)
		next, err := t.chaseRight(n, k)
		return false, next, err
	}

	n2 := n.DeleteLeafPair(k)
	if n2 == nil {
		h.Unlock(cur)
		return false, base.NilPage, base.ErrNotFound
	}
	if err := t.store.Put(n2); err != nil {
		h.Unlock(cur)
		return false, base.NilPage, err
	}
	// Fire the underfull hook while still holding the lock (§5.4: "no
	// extra lock has to be obtained in order to put A on the queue;
	// rather, the current lock on A must be kept by the process until
	// it puts A on the queue").
	if fn := t.onUnderfull.Load(); fn != nil && !n2.Root && n2.Pairs() < t.k {
		t.stats.underfullEvents.Add(1)
		(*fn)(UnderfullEvent{
			ID:    cur,
			Level: 0,
			High:  n2.High,
			Stack: append([]base.PageID(nil), stack...),
		})
	}
	h.Unlock(cur)
	return true, base.NilPage, nil
}
