package blink

import (
	"blinktree/internal/base"
	"blinktree/internal/locks"
)

// Conditional writes — Upsert, GetOrInsert, Update, CompareAndSwap,
// CompareAndDelete — are the read-modify-write surface of the tree.
// Each is a single logical operation under the paper's protocol: one
// descent (Fig. 4/5), one leaf lock, and the decision taken while that
// lock is held, so the observed value and the applied write are
// indivisible. This is exactly an insertion or deletion with one extra
// decision spliced between "lock and re-read the leaf" and "rewrite
// it"; the lock footprint therefore stays at the paper's bound of one,
// and a split triggered by an upsert propagates upward through the
// ordinary insertStep machinery (§3.1 overtaking included).

// condAction is what a conditional write decides to do with the leaf
// once its current state is known.
type condAction uint8

const (
	// condNoop leaves the leaf unchanged.
	condNoop condAction = iota
	// condPut stores the outcome's value under the key, inserting the
	// pair when absent and rewriting the value in place when present.
	condPut
	// condDelete removes the pair; valid only when the key is present.
	condDelete
)

// condOutcome is a probe's decision.
type condOutcome struct {
	action condAction
	value  base.Value // meaningful for condPut
}

// condProbe inspects the leaf state under the held lock and decides
// the write. It may be invoked more than once when wrong-node restarts
// force the descent to be redone (§5.2), but the returned action is
// applied at most once — always against the state it was shown.
type condProbe func(cur base.Value, present bool) condOutcome

// condResult reports what a conditional write observed and did.
type condResult struct {
	old     base.Value // value stored before the write; valid when existed
	existed bool
	applied condAction
}

// condStatus is condStep's verdict.
type condStatus uint8

const (
	condDone   condStatus = iota // operation complete
	condChase                    // key beyond this leaf: retry at next
	condAscend                   // leaf split: place pend one level up, starting at next
)

// condWrite is the shared engine: find the leaf, lock it, probe, apply.
// It mirrors Insert's loop (Fig. 5) at the leaf level and hands any
// split separator to the same upward propagation Insert uses.
func (t *Tree) condWrite(k base.Key, probe condProbe) (condResult, error) {
	if err := t.checkOpen(); err != nil {
		return condResult{}, err
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)

	sc := getScratch()
	sc.h.Init(t.lt)
	defer func() {
		sc.h.UnlockAll() // error-path safety; no-op on clean paths
		t.stats.condFP.Record(&sc.h)
		putScratch(sc)
	}()

	cur, _, err := t.descendRetry(k, &sc.stack)
	if err != nil {
		return condResult{}, err
	}

	// Leaf phase: reach the covering leaf and apply the probe under its
	// lock, restarting the search on wrong nodes exactly as Insert does.
	var res condResult
	var pend pending
	restarts := 0
	for {
		status, next, r, err := t.condStep(&sc.h, k, probe, cur, &sc.stack, &pend)
		if err == nil {
			switch status {
			case condDone:
				return r, nil
			case condChase:
				cur = next
				continue
			case condAscend:
				res = r
				cur = next
			}
			break
		}
		if !isRestart(err) {
			return condResult{}, err
		}
		t.stats.restarts.Add(1)
		if restarts++; restarts > maxRestarts {
			return condResult{}, ErrLivelock
		}
		if cur, _, err = t.descendRetry(k, &sc.stack); err != nil {
			return condResult{}, err
		}
	}

	// Upward phase: the leaf write is committed; what remains is the
	// ordinary separator propagation of an unsafe insertion.
	for restarts = 0; ; {
		done, next, err := t.insertStep(&sc.h, &pend, cur, &sc.stack)
		if err == nil {
			if done {
				return res, nil
			}
			cur = next
			continue
		}
		if !isRestart(err) {
			return res, err
		}
		t.stats.restarts.Add(1)
		if restarts++; restarts > maxRestarts {
			return res, ErrLivelock
		}
		if cur, err = t.descendToLevel(pend.key, pend.level); err != nil {
			return res, err
		}
	}
}

// condStep makes one locked attempt at leaf cur: the lock-and-recheck
// discipline of insertStep/deleteStep with the probe's decision spliced
// in while the single lock is held.
func (t *Tree) condStep(h *locks.Holder, k base.Key, probe condProbe, cur base.PageID, stack *[]base.PageID, pend *pending) (condStatus, base.PageID, condResult, error) {
	var res condResult
	h.Lock(cur)
	n, err := t.store.Get(cur)
	if err != nil {
		h.Unlock(cur)
		return condDone, base.NilPage, res, err
	}
	switch {
	case n.Deleted:
		h.Unlock(cur)
		if n.OutLink != base.NilPage {
			t.stats.outlinkHops.Add(1)
			return condChase, n.OutLink, res, nil
		}
		return condDone, base.NilPage, res, errRestart{}
	case !n.Low.Less(k):
		h.Unlock(cur)
		return condDone, base.NilPage, res, errRestart{}
	case n.HighLess(k):
		h.Unlock(cur)
		next, err := t.chaseRight(n, k)
		return condChase, next, res, err
	}

	res.old, res.existed = n.LeafFind(k)
	out := probe(res.old, res.existed)
	if out.action == condDelete && !res.existed {
		out.action = condNoop // deleting an absent key is a no-op
	}
	res.applied = out.action
	switch out.action {
	case condNoop:
		h.Unlock(cur)
		return condDone, base.NilPage, res, nil

	case condDelete:
		n2 := n.DeleteLeafPair(k)
		if err := t.store.Put(n2); err != nil {
			h.Unlock(cur)
			return condDone, base.NilPage, res, err
		}
		// Underfull hook under the held lock, as in deleteStep (§5.4).
		if fn := t.onUnderfull.Load(); fn != nil && !n2.Root && n2.Pairs() < t.k {
			t.stats.underfullEvents.Add(1)
			(*fn)(UnderfullEvent{
				ID:    cur,
				Level: 0,
				High:  n2.High,
				Stack: append([]base.PageID(nil), *stack...),
			})
		}
		h.Unlock(cur)
		t.length.Add(-1)
		return condDone, base.NilPage, res, nil
	}

	// condPut.
	if res.existed {
		n2 := n.SetLeafValue(k, out.value)
		err := t.store.Put(n2)
		h.Unlock(cur)
		return condDone, base.NilPage, res, err
	}
	// Absent: an ordinary insertion of (k, value) — Fig. 6 verbatim.
	*pend = pending{key: k, val: out.value, level: 0}
	if n.Pairs() < t.capacity() {
		err := t.insertIntoSafe(n, pend)
		h.Unlock(cur)
		if err == nil {
			t.length.Add(1)
		}
		return condDone, base.NilPage, res, err
	}
	if n.Root {
		err := t.insertIntoUnsafeRoot(n, pend)
		h.Unlock(cur)
		if err == nil {
			t.length.Add(1)
		}
		return condDone, base.NilPage, res, err
	}
	next, err := t.insertIntoUnsafe(n, pend, stack)
	h.Unlock(cur)
	if err != nil {
		return condDone, base.NilPage, res, err
	}
	t.length.Add(1) // the pair is live; only the separator remains
	return condAscend, next, res, nil
}

// Upsert stores v under k unconditionally, returning the value that
// was stored before (and whether one existed). Unlike Search+Insert it
// is atomic and pays a single descent: the present/absent decision is
// taken under the one held leaf lock.
func (t *Tree) Upsert(k base.Key, v base.Value) (old base.Value, existed bool, err error) {
	t.stats.upserts.Add(1)
	res, err := t.condWrite(k, func(base.Value, bool) condOutcome {
		return condOutcome{action: condPut, value: v}
	})
	return res.old, res.existed, err
}

// GetOrInsert returns the value stored under k, inserting v first if k
// is absent. loaded reports whether the value was already present.
func (t *Tree) GetOrInsert(k base.Key, v base.Value) (actual base.Value, loaded bool, err error) {
	t.stats.upserts.Add(1)
	res, err := t.condWrite(k, func(_ base.Value, present bool) condOutcome {
		if present {
			return condOutcome{}
		}
		return condOutcome{action: condPut, value: v}
	})
	if err != nil {
		return 0, false, err
	}
	if res.existed {
		return res.old, true, nil
	}
	return v, false, nil
}

// Update atomically replaces the value under k with fn(current),
// returning the new value, or ErrNotFound when k is absent. fn runs
// under the held leaf lock: keep it fast and side-effect free — it may
// be re-invoked (with a fresh current value) if a wrong-node restart
// forces the descent to be redone before the write lands.
func (t *Tree) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	t.stats.updates.Add(1)
	var newV base.Value
	res, err := t.condWrite(k, func(cur base.Value, present bool) condOutcome {
		if !present {
			return condOutcome{}
		}
		newV = fn(cur)
		return condOutcome{action: condPut, value: newV}
	})
	if err != nil {
		return 0, err
	}
	if !res.existed {
		return 0, base.ErrNotFound
	}
	return newV, nil
}

// CompareAndSwap replaces the value under k with new only if the
// stored value equals old. It returns whether the swap happened;
// ErrNotFound when k is absent (swapped false, no error, when present
// with a different value).
func (t *Tree) CompareAndSwap(k base.Key, old, new base.Value) (swapped bool, err error) {
	t.stats.cas.Add(1)
	res, err := t.condWrite(k, func(cur base.Value, present bool) condOutcome {
		if !present || cur != old {
			return condOutcome{}
		}
		return condOutcome{action: condPut, value: new}
	})
	if err != nil {
		return false, err
	}
	if !res.existed {
		return false, base.ErrNotFound
	}
	return res.applied == condPut, nil
}

// CompareAndDelete removes k only if the stored value equals old. It
// returns whether the deletion happened; ErrNotFound when k is absent.
func (t *Tree) CompareAndDelete(k base.Key, old base.Value) (deleted bool, err error) {
	t.stats.cas.Add(1)
	res, err := t.condWrite(k, func(cur base.Value, present bool) condOutcome {
		if !present || cur != old {
			return condOutcome{}
		}
		return condOutcome{action: condDelete}
	})
	if err != nil {
		return false, err
	}
	if !res.existed {
		return false, base.ErrNotFound
	}
	return res.applied == condDelete, nil
}
