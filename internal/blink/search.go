package blink

import (
	"blinktree/internal/base"
	"blinktree/internal/node"
)

// descentStackCap sizes the stack-allocated backing array for the
// movedown-and-stack traversal record (Fig. 5). A 16-level tree holds
// ≥ 2^16 nodes even at minimum fanout, so the array covers every
// realistic height and the per-operation stack never reaches the heap;
// a taller tree merely makes append spill over, which stays correct.
const descentStackCap = 16

// errRestart is the internal signal that a process reached a wrong node
// (§5.2) and must restart its search.
type errRestart struct{}

func (errRestart) Error() string { return "blink: wrong node, restart" }

// isRestart reports whether err is the restart signal.
func isRestart(err error) bool {
	_, ok := err.(errRestart)
	return ok
}

// step resolves one read of a node during a traversal looking for key k,
// applying the wrong-node rules of §5.2:
//
//   - a deleted node forwards through its outlink (case 1, the [4]
//     pointer-to-survivor technique), or demands a restart if the whole
//     level died (nil outlink);
//   - a node whose low value is ≥ k demands a restart (case 2: the data
//     moved to the left, links cannot recover it).
//
// It returns the node snapshot when it is usable.
func (t *Tree) step(id base.PageID, k base.Key) (*node.Node, error) {
	for {
		n, err := t.store.Get(id)
		if err != nil {
			return nil, err
		}
		if n.Deleted {
			if n.OutLink == base.NilPage {
				return nil, errRestart{}
			}
			t.stats.outlinkHops.Add(1)
			id = n.OutLink
			continue
		}
		if !n.Low.Less(k) {
			return nil, errRestart{}
		}
		return n, nil
	}
}

// descend walks from the root to the leaf level looking for k — the
// paper's movedown (Fig. 4) — following child pointers and links. When
// stack is non-nil it records, per nonleaf level, the node from which
// the traversal descended (movedown-and-stack, Fig. 5). The returned
// id/node is the first leaf reached; the caller continues with
// moveright if needed. from, when non-zero, resumes the walk at that
// node on the given level instead of the root (backtracking restarts).
func (t *Tree) descend(k base.Key, stack *[]base.PageID) (base.PageID, *node.Node, error) {
	p, err := t.store.ReadPrime()
	if err != nil {
		return base.NilPage, nil, err
	}
	if p.Levels == 0 {
		return base.NilPage, nil, base.ErrCorrupt
	}
	n, err := t.step(p.Root, k)
	if err != nil {
		return base.NilPage, nil, err
	}
	for !n.Leaf {
		next, isLink := n.Next(k)
		if !isLink && stack != nil {
			*stack = append(*stack, n.ID)
		}
		if isLink {
			t.stats.linkHops.Add(1)
		}
		// step resolves outlinks, so resync the id from the snapshot.
		if n, err = t.step(next, k); err != nil {
			return base.NilPage, nil, err
		}
	}
	return n.ID, n, nil
}

// moveright walks the leaf chain until it reaches the leaf whose range
// admits k (Fig. 4). id/n is the starting leaf snapshot.
func (t *Tree) moveright(id base.PageID, n *node.Node, k base.Key) (base.PageID, *node.Node, error) {
	for n.HighLess(k) {
		t.stats.linkHops.Add(1)
		id = n.Link
		if id == base.NilPage {
			// The rightmost node has high = +∞, so a nil link here
			// means a torn structure.
			return base.NilPage, nil, base.ErrCorrupt
		}
		var err error
		if n, err = t.step(id, k); err != nil {
			return base.NilPage, nil, err
		}
	}
	return n.ID, n, nil
}

// Search returns the value stored under k (Fig. 4). Searches take no
// locks; they restart if compression moved the key out from under them.
func (t *Tree) Search(k base.Key) (base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, err
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)
	t.stats.searches.Add(1)

	for attempt := 0; attempt < maxRestarts; attempt++ {
		v, err := t.searchOnce(k)
		if err == nil {
			return v, nil
		}
		if !isRestart(err) {
			return 0, err
		}
		t.stats.restarts.Add(1)
	}
	return 0, ErrLivelock
}

func (t *Tree) searchOnce(k base.Key) (base.Value, error) {
	var sc *opScratch
	var stackp *[]base.PageID
	if t.pol == RestartBacktrack {
		sc = getScratch()
		defer putScratch(sc)
		stackp = &sc.stack
	}
	id, n, err := t.descend(k, stackp)
	if err != nil {
		if isRestart(err) && t.pol == RestartBacktrack {
			return t.searchBacktrack(k, sc.stack)
		}
		return 0, err
	}
	if _, n, err = t.moveright(id, n, k); err != nil {
		if isRestart(err) && t.pol == RestartBacktrack {
			return t.searchBacktrack(k, sc.stack)
		}
		return 0, err
	}
	v, ok := n.LeafFind(k)
	if !ok {
		return 0, base.ErrNotFound
	}
	return v, nil
}

// searchBacktrack resumes a restarted search from the deepest stacked
// node that still admits k (§5.2: "we may try at first to backtrack to
// the previous node visited"). If no stacked node works it signals a
// full restart.
func (t *Tree) searchBacktrack(k base.Key, stack []base.PageID) (base.Value, error) {
	for i := len(stack) - 1; i >= 0; i-- {
		t.stats.backtracks.Add(1)
		n, err := t.store.Get(stack[i])
		if err != nil {
			return 0, err
		}
		if n.Deleted || !n.Low.Less(k) || n.Leaf {
			continue // unusable resume point; go higher
		}
		v, err := t.searchFrom(stack[i], n, k)
		if err == nil || !isRestart(err) {
			return v, err
		}
	}
	return 0, errRestart{}
}

// searchFrom completes a search for k starting at an internal node.
func (t *Tree) searchFrom(id base.PageID, n *node.Node, k base.Key) (base.Value, error) {
	for !n.Leaf {
		next, isLink := n.Next(k)
		if isLink {
			t.stats.linkHops.Add(1)
		}
		var err error
		if n, err = t.step(next, k); err != nil {
			return 0, err
		}
	}
	if _, n2, err := t.moveright(n.ID, n, k); err != nil {
		return 0, err
	} else if v, ok := n2.LeafFind(k); ok {
		return v, nil
	}
	return 0, base.ErrNotFound
}

// descendToLevel walks from the root down to the given level (leaves
// are level 0) and returns the id of the node there whose range may
// admit k. It is the restart path for insertions that must re-find the
// node at level j where a pending separator belongs (§5.2).
func (t *Tree) descendToLevel(k base.Key, level int) (base.PageID, error) {
	leftmost, err := t.waitForLevel(level)
	if err != nil {
		return base.NilPage, err
	}
	p, err := t.store.ReadPrime()
	if err != nil {
		return base.NilPage, err
	}
	if p.Levels <= level {
		// The tree shrank between the two prime reads; the leftmost
		// node of the target level (captured while it existed) is the
		// only safe entry point.
		return leftmost, nil
	}
	if p.Levels-1 == level {
		return p.Root, nil
	}
	lvl := p.Levels - 1
	n, err := t.step(p.Root, k)
	if err != nil {
		if isRestart(err) {
			return leftmost, nil
		}
		return base.NilPage, err
	}
	for lvl > level {
		if n.Leaf {
			return base.NilPage, base.ErrCorrupt
		}
		next, isLink := n.Next(k)
		if isLink {
			t.stats.linkHops.Add(1)
		} else {
			lvl--
		}
		if n, err = t.step(next, k); err != nil {
			if isRestart(err) {
				// Fall back to the leftmost node of the target level:
				// chasing right from there always terminates.
				t.stats.restarts.Add(1)
				return leftmost, nil
			}
			return base.NilPage, err
		}
	}
	return n.ID, nil
}
