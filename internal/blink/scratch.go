package blink

import (
	"sync"

	"blinktree/internal/base"
	"blinktree/internal/locks"
)

// opScratch bundles the per-operation state every tree operation
// threads through its descent: the movedown stack and (for writers)
// the lock holder. The operations pass these around by pointer —
// descend appends through *stack, insertStep pops it, the footprint
// stats read the Holder — and Go's escape analysis moves any local
// whose address crosses a call boundary to the heap. Declaring them as
// stack variables therefore costs two heap objects per operation.
//
// Pooling sidesteps that: the scratch object is heap-allocated once,
// so &sc.stack and &sc.h are interior pointers into memory that
// already lives on the heap, and the steady state allocates nothing.
// Holder.Init fully resets the holder, and callers truncate the stack
// before use, so reuse across operations (and goroutines, via the
// pool) is safe.
type opScratch struct {
	h     locks.Holder
	stack []base.PageID
}

var opScratchPool = sync.Pool{
	New: func() any {
		return &opScratch{stack: make([]base.PageID, 0, descentStackCap)}
	},
}

// getScratch returns a scratch with an empty stack. The Holder is NOT
// initialized; write paths call sc.h.Init themselves.
func getScratch() *opScratch {
	sc := opScratchPool.Get().(*opScratch)
	sc.stack = sc.stack[:0]
	return sc
}

func putScratch(sc *opScratch) { opScratchPool.Put(sc) }
