package blink

import (
	"testing"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/node"
	"blinktree/internal/storage"
)

// newPooledTree builds a tree over a PagedStore on a tiny buffer pool,
// returning the pool for stats probing. Small pages + small k give a
// deep leaf chain so sequential scans hop many pages.
func newPooledTree(t *testing.T, frames int) (*Tree, *storage.BufferPool) {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemStore(256), frames)
	st, err := node.NewPagedStore(pool)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		tr.Close()
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return tr, pool
}

// waitPrefetchLoads polls until the pool has satisfied at least min
// read-ahead loads (prefetch is asynchronous by design).
func waitPrefetchLoads(t *testing.T, pool *storage.BufferPool, min uint64) storage.PoolStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := pool.Stats()
		if st.PrefetchLoads >= min {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("read-ahead never reached %d loads: %+v", min, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRangeIssuesReadAhead: a sequential Range over a leaf chain much
// larger than the pool issues prefetch hints at least one page ahead
// of the scan position, and the hints turn into asynchronous loads.
func TestRangeIssuesReadAhead(t *testing.T) {
	tr, pool := newPooledTree(t, 4)
	const n = 400
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := pool.Stats()
	got := uint64(0)
	err := tr.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		if k != base.Key(got) {
			t.Fatalf("scan emitted %d, want %d", k, got)
		}
		got++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scan emitted %d pairs, want %d", got, n)
	}
	after := pool.Stats()
	if after.Prefetches <= before.Prefetches {
		t.Fatalf("sequential Range issued no prefetch hints: before %+v after %+v", before, after)
	}
	waitPrefetchLoads(t, pool, 1)
}

// TestCursorIssuesReadAhead: the cursor's leaf hops hint the next leaf
// the same way Range does.
func TestCursorIssuesReadAhead(t *testing.T) {
	tr, pool := newPooledTree(t, 4)
	const n = 400
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := pool.Stats()
	c := tr.NewCursor(0)
	got := uint64(0)
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if k != base.Key(got) {
			t.Fatalf("cursor emitted %d, want %d", k, got)
		}
		got++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("cursor emitted %d pairs, want %d", got, n)
	}
	after := pool.Stats()
	if after.Prefetches <= before.Prefetches {
		t.Fatalf("cursor issued no prefetch hints: before %+v after %+v", before, after)
	}
	waitPrefetchLoads(t, pool, 1)
}

// TestPooledTreeTinyPoolExactness: every point op against a 4-frame
// pool — constant eviction — must agree with an in-memory oracle map,
// and the pool must close with zero leaked pins. This is the
// single-threaded half of the eviction-safety story; the concurrent
// half lives in internal/shard's property test.
func TestPooledTreeTinyPoolExactness(t *testing.T) {
	tr, pool := newPooledTree(t, 4)
	oracle := make(map[base.Key]base.Value)
	const n = 600
	for i := 0; i < n; i++ {
		k := base.Key(uint64(i*31) % 1000)
		switch i % 3 {
		case 0, 1:
			v := base.Value(i)
			if _, _, err := tr.Upsert(k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 2:
			if _, ok := oracle[k]; ok {
				if err := tr.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(oracle, k)
			}
		}
	}
	for k, want := range oracle {
		v, err := tr.Search(k)
		if err != nil || v != want {
			t.Fatalf("key %d: got (%d, %v), want %d", k, v, err, want)
		}
	}
	count := 0
	err := tr.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		want, ok := oracle[k]
		if !ok || want != v {
			t.Fatalf("scan emitted (%d,%d), oracle says (%d,%v)", k, v, want, ok)
		}
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(oracle) {
		t.Fatalf("scan emitted %d pairs, oracle has %d", count, len(oracle))
	}
	if st := pool.Stats(); st.Evictions == 0 || st.Pinned != 0 {
		t.Fatalf("expected churn and zero pins at rest: %+v", st)
	}
}
