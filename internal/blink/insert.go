package blink

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
)

// pending is the pair an insertion is currently trying to place: the
// record pair at the leaf level, then (separator, new-node pointer)
// pairs as splits ripple upward (Fig. 6).
type pending struct {
	key   base.Key
	val   base.Value  // leaf level only
	child base.PageID // upper levels only
	level int
}

// Insert stores v under k. It implements the procedure insert of
// Fig. 5 with the insert-into-safe / insert-into-unsafe /
// insert-into-unsafe-root cases of Fig. 6. The defining property — and
// the paper's central claim — is that at most one node lock is held at
// any instant: overtaking on the way up is harmless because a level's
// pairs only ever gain members and never reorder (§3.1).
func (t *Tree) Insert(k base.Key, v base.Value) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	g, withEpoch := t.enter()
	defer t.exit(g, withEpoch)
	t.stats.inserts.Add(1)

	sc := getScratch()
	sc.h.Init(t.lt)
	defer func() {
		sc.h.UnlockAll() // error-path safety; no-op on clean paths
		t.stats.insertFP.Record(&sc.h)
		putScratch(sc)
	}()

	leafID, _, err := t.descendRetry(k, &sc.stack)
	if err != nil {
		return err
	}

	pend := pending{key: k, val: v, level: 0}
	cur := leafID
	for restarts := 0; ; {
		done, next, err := t.insertStep(&sc.h, &pend, cur, &sc.stack)
		if err == nil {
			if done {
				t.length.Add(1)
				return nil
			}
			cur = next
			continue
		}
		if !isRestart(err) {
			return err
		}
		t.stats.restarts.Add(1)
		if restarts++; restarts > maxRestarts {
			return ErrLivelock
		}
		// Re-find the node at the pending level where the pair belongs
		// (§5.2: restart "from the root for the node at level j").
		if cur, err = t.descendToLevel(pend.key, pend.level); err != nil {
			return err
		}
	}
}

// descendRetry performs movedown-and-stack, retrying on wrong-node
// restarts (which at this stage cost only the walk; no locks are held).
func (t *Tree) descendRetry(k base.Key, stack *[]base.PageID) (base.PageID, *node.Node, error) {
	for attempt := 0; attempt < maxRestarts; attempt++ {
		*stack = (*stack)[:0]
		id, n, err := t.descend(k, stack)
		if err == nil {
			return id, n, nil
		}
		if !isRestart(err) {
			return base.NilPage, nil, err
		}
		t.stats.restarts.Add(1)
	}
	return base.NilPage, nil, ErrLivelock
}

// insertStep makes one attempt to place pend at node cur on pend.level.
// It returns done=true when the insertion completed, or the next node
// id to try at the same level, or errRestart when the search for the
// right node must be redone.
//
// Locking follows Fig. 5 exactly: the candidate is locked and re-read
// (it may have been split between the descent's read and the lock);
// when the key turns out to lie beyond the high value, the lock is
// dropped and the link chain is chased WITHOUT locks (procedure
// moveright) until the next candidate.
func (t *Tree) insertStep(h *locks.Holder, pend *pending, cur base.PageID, stack *[]base.PageID) (done bool, next base.PageID, err error) {
	h.Lock(cur)
	n, err := t.store.Get(cur)
	if err != nil {
		h.Unlock(cur)
		return false, base.NilPage, err
	}
	switch {
	case n.Deleted:
		h.Unlock(cur)
		if n.OutLink != base.NilPage {
			t.stats.outlinkHops.Add(1)
			return false, n.OutLink, nil
		}
		return false, base.NilPage, errRestart{}
	case !n.Low.Less(pend.key):
		h.Unlock(cur)
		return false, base.NilPage, errRestart{}
	case n.HighLess(pend.key):
		h.Unlock(cur)
		next, err := t.chaseRight(n, pend.key)
		return false, next, err
	}

	if pend.level == 0 {
		if _, dup := n.LeafFind(pend.key); dup {
			h.Unlock(cur)
			return false, base.NilPage, base.ErrDuplicate
		}
	}

	if n.Pairs() < t.capacity() {
		err := t.insertIntoSafe(n, pend)
		h.Unlock(cur)
		return err == nil, base.NilPage, err
	}
	if n.Root {
		err := t.insertIntoUnsafeRoot(n, pend)
		h.Unlock(cur)
		return err == nil, base.NilPage, err
	}
	nextID, err := t.insertIntoUnsafe(n, pend, stack)
	h.Unlock(cur)
	if err != nil {
		return false, base.NilPage, err
	}
	return false, nextID, nil
}

// chaseRight performs the unlocked moveright of Fig. 4 starting from a
// snapshot whose high value is below k: it follows links until reaching
// the node whose range may admit k and returns its id for the caller to
// lock and re-check.
func (t *Tree) chaseRight(n *node.Node, k base.Key) (base.PageID, error) {
	for n.HighLess(k) {
		t.stats.linkHops.Add(1)
		next := n.Link
		if next == base.NilPage {
			return base.NilPage, base.ErrCorrupt
		}
		var err error
		if n, err = t.step(next, k); err != nil {
			return base.NilPage, err
		}
	}
	return n.ID, nil
}

// grown returns n plus the pending pair (on a clone).
func (t *Tree) grown(n *node.Node, pend *pending) (*node.Node, error) {
	if pend.level == 0 {
		return n.InsertLeafPair(pend.key, pend.val), nil
	}
	return n.InsertSeparator(pend.key, pend.child)
}

// insertIntoSafe (Fig. 6): the node has room; add the pair and rewrite.
func (t *Tree) insertIntoSafe(n *node.Node, pend *pending) error {
	n2, err := t.grown(n, pend)
	if err != nil {
		return err
	}
	return t.store.Put(n2)
}

// insertIntoUnsafe (Fig. 6): split, writing the new right node B before
// rewriting A (Fig. 3) so B becomes reachable exactly when A's new link
// is published. Afterwards the lock is released — before any other lock
// is taken — and the separator becomes the pending pair one level up.
// It returns the node at which to try the next level: the popped stack
// entry, or the leftmost node of that level when the stack is empty
// because the tree grew while we ran (§3.2).
func (t *Tree) insertIntoUnsafe(n *node.Node, pend *pending, stack *[]base.PageID) (base.PageID, error) {
	over, err := t.grown(n, pend)
	if err != nil {
		return base.NilPage, err
	}
	newID, err := t.store.Allocate()
	if err != nil {
		return base.NilPage, err
	}
	left, right, sep := over.Split(newID)
	if err := t.store.Put(right); err != nil {
		return base.NilPage, err
	}
	if err := t.store.Put(left); err != nil {
		return base.NilPage, err
	}
	t.stats.splits.Add(1)

	pend.key = sep
	pend.val = 0
	pend.child = newID
	pend.level++

	if n := len(*stack); n > 0 {
		id := (*stack)[n-1]
		*stack = (*stack)[:n-1]
		return id, nil
	}
	return t.waitForLevel(pend.level)
}

// insertIntoUnsafeRoot (Fig. 6): split the root and create a new one.
// The lock on the old root is held until the prime block is rewritten,
// which is what prevents two roots from being created simultaneously
// (§3.3); the prime block itself needs no lock for the same reason.
func (t *Tree) insertIntoUnsafeRoot(n *node.Node, pend *pending) error {
	over, err := t.grown(n, pend)
	if err != nil {
		return err
	}
	newID, err := t.store.Allocate()
	if err != nil {
		return err
	}
	left, right, sep := over.Split(newID)
	rootID, err := t.store.Allocate()
	if err != nil {
		return err
	}
	if err := t.store.Put(right); err != nil {
		return err
	}
	if err := t.store.Put(left); err != nil {
		return err
	}
	root := &node.Node{
		ID:       rootID,
		Root:     true,
		Low:      base.NegInfBound(),
		High:     base.PosInfBound(),
		Keys:     []base.Key{sep},
		Children: []base.PageID{n.ID, newID},
	}
	if err := t.store.Put(root); err != nil {
		return err
	}
	p, err := t.store.ReadPrime()
	if err != nil {
		return err
	}
	p = p.Clone()
	p.Root = rootID
	p.Levels++
	p.Leftmost = append(p.Leftmost, rootID)
	if err := t.store.WritePrime(p); err != nil {
		return err
	}
	t.stats.splits.Add(1)
	t.stats.rootSplits.Add(1)
	return nil
}

// String renders a one-line summary.
func (t *Tree) String() string {
	return fmt.Sprintf("blink.Tree{k=%d, len=%d, height=%d}", t.k, t.Len(), t.Height())
}
