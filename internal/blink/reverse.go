package blink

import (
	"blinktree/internal/base"
	"blinktree/internal/node"
)

// ReverseCursor iterates the tree in descending key order. A B-link
// tree has no left links — the right links exist precisely because
// splits move data rightward (§2.1) — so a backwards walk cannot chase
// a chain. Instead the cursor consumes each leaf snapshot from its top
// key down and then re-descends for the predecessor leaf: every leaf's
// low value is, by the level's tiling invariant, the inclusive upper
// bound of the leaf to its left, so descending for it lands exactly one
// leaf back. That costs one O(height) descent per leaf hop instead of
// one link read, which is the honest price of reverse order on this
// structure.
//
// Like the forward Cursor it holds no locks and reads leaf snapshots:
// keys come back strictly descending, each at most once, and concurrent
// mutations may or may not be observed. Not safe for concurrent use by
// multiple goroutines.
type ReverseCursor struct {
	t    *Tree
	leaf *node.Node
	idx  int
	// next is the largest key not yet returned; it makes predecessor
	// hops and restarts idempotent.
	next base.Key
	done bool
	err  error
}

// NewReverseCursor returns a cursor positioned before the largest key
// ≤ start.
func (t *Tree) NewReverseCursor(start base.Key) *ReverseCursor {
	return &ReverseCursor{t: t, next: start}
}

// Err returns the error that terminated iteration, if any.
func (c *ReverseCursor) Err() error { return c.err }

// Next advances to the preceding pair, returning false at the start of
// the tree or on error (check Err).
func (c *ReverseCursor) Next() (base.Key, base.Value, bool) {
	if c.done || c.err != nil {
		return 0, 0, false
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		k, v, ok, err := c.step()
		if err == nil {
			if !ok {
				c.done = true
				return 0, 0, false
			}
			return k, v, true
		}
		if !isRestart(err) {
			c.err = err
			return 0, 0, false
		}
		c.t.stats.restarts.Add(1)
		c.leaf = nil // re-seek from the root
	}
	c.err = ErrLivelock
	return 0, 0, false
}

// step yields the largest pair ≤ c.next, seeking when unpositioned.
func (c *ReverseCursor) step() (base.Key, base.Value, bool, error) {
	if c.leaf == nil {
		if err := c.seek(); err != nil {
			return 0, 0, false, err
		}
	}
	for {
		for c.idx >= 0 {
			i := c.idx
			c.idx--
			if i >= len(c.leaf.Keys) {
				continue // leaf snapshot shorter than expected
			}
			k := c.leaf.Keys[i]
			if k > c.next {
				continue
			}
			v := c.leaf.Vals[i]
			if k == 0 {
				c.done = true // minimum key: nothing can precede it
			} else {
				c.next = k - 1
			}
			return k, v, true, nil
		}
		// Leaf exhausted. Its low value is the inclusive top of the
		// predecessor leaf; clamping next to it also guarantees pairs
		// that later move right cannot be replayed.
		if c.leaf.Low.Kind != base.Finite {
			return 0, 0, false, nil // −∞: this was the leftmost leaf
		}
		if c.leaf.Low.K < c.next {
			c.next = c.leaf.Low.K
		}
		if err := c.seek(); err != nil {
			return 0, 0, false, err
		}
	}
}

// seek positions the cursor at the leaf covering c.next, scanning from
// its top key.
func (c *ReverseCursor) seek() error {
	id, n, err := c.t.descend(c.next, nil)
	if err != nil {
		return err
	}
	if _, n, err = c.t.moveright(id, n, c.next); err != nil {
		return err
	}
	c.leaf = n
	c.idx = len(n.Keys) - 1
	return nil
}

// Seek repositions the cursor before the largest key ≤ k. Seeking in
// either direction is allowed.
func (c *ReverseCursor) Seek(k base.Key) {
	c.next = k
	c.leaf = nil
	c.idx = 0
	c.done = false
	c.err = nil
}
