// Package blink implements the paper's primary contribution: a B-link
// tree ("Blink-tree", §2.1) supporting concurrent searches, insertions
// and deletions in which an insertion holds at most one lock at any
// time — the "overtaking" refinement of Lehman–Yao (§3). It also stores
// in every node the low value and deletion bit the compression
// processes of §5 need, and exposes the hooks they attach to.
//
// Concurrency model (paper §2.2): the node store's Get/Put are
// indivisible; the lock table is a single lock type that excludes other
// lockers but never readers; readers take no locks at all and recover
// from being overtaken by compression via restarts (§5.2).
package blink

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
)

// RestartPolicy selects how a process recovers after reaching a wrong
// node (§5.2): always from the root, or by backtracking first.
type RestartPolicy int

// Restart policies.
const (
	// RestartFromRoot restarts the search at the root.
	RestartFromRoot RestartPolicy = iota
	// RestartBacktrack first retries from the most recent node on the
	// descent path whose range still admits the key, falling back to
	// the root (the optimization suggested in §5.2).
	RestartBacktrack
)

// DefaultMinPairs is the default k: nodes hold between k and 2k pairs.
const DefaultMinPairs = 16

// maxRestarts bounds wrong-node restarts per logical operation. The
// paper argues restarts are finite in any finite schedule; the bound
// converts a hypothetical livelock into a diagnosable error.
const maxRestarts = 1 << 20

// ErrLivelock is returned when an operation exceeds the restart bound.
var ErrLivelock = errors.New("blink: operation restarted too many times")

// Config parameterizes a Tree.
type Config struct {
	// Store is the node store; nil means a fresh in-memory store.
	Store node.Store
	// Locks is the lock table; nil means a fresh table.
	Locks locks.Locker
	// MinPairs is k: every node holds at most 2k pairs, and compression
	// restores ≥ k. Default DefaultMinPairs; minimum 2.
	MinPairs int
	// Restart selects the wrong-node recovery policy.
	Restart RestartPolicy
	// Reclaimer, when non-nil, brackets every operation in an epoch so
	// deleted pages can be released safely (§5.3).
	Reclaimer *reclaim.Reclaimer
}

// UnderfullEvent describes a node that fell below k pairs after a
// deletion or compression step. It carries everything §5.4 says must go
// on the compression queue: the pointer, the level, the high value, and
// the stack of the path from the root.
type UnderfullEvent struct {
	ID    base.PageID
	Level int
	High  base.Bound
	Stack []base.PageID
}

// Tree is a Sagiv B-link tree. All exported methods are safe for
// concurrent use by any number of goroutines.
type Tree struct {
	store node.Store
	lt    locks.Locker
	k     int
	pol   RestartPolicy
	rec   *reclaim.Reclaimer

	// onUnderfull, when set via SetUnderfullHandler, is invoked (while
	// the lock on the node is still held, per §5.4) whenever a deletion
	// leaves a non-root node with fewer than k pairs.
	onUnderfull atomic.Pointer[func(UnderfullEvent)]

	// prefetch, when the store supports read-ahead (node.Prefetcher),
	// hints the next leaf of a sequential scan so a disk-native store
	// has it resident before the hop.
	prefetch func(base.PageID)

	length atomic.Int64
	stats  Stats
	closed atomic.Bool
}

// New creates a Tree, bootstrapping an empty root leaf if the store's
// prime block is empty (a store carrying an existing tree is adopted
// as-is).
func New(cfg Config) (*Tree, error) {
	if cfg.Store == nil {
		cfg.Store = node.NewMemStore()
	}
	if cfg.Locks == nil {
		cfg.Locks = locks.NewTable()
	}
	if cfg.MinPairs == 0 {
		cfg.MinPairs = DefaultMinPairs
	}
	if cfg.MinPairs < 2 {
		return nil, fmt.Errorf("blink: MinPairs %d < 2", cfg.MinPairs)
	}
	t := &Tree{
		store: cfg.Store,
		lt:    cfg.Locks,
		k:     cfg.MinPairs,
		pol:   cfg.Restart,
		rec:   cfg.Reclaimer,
	}
	if pf, ok := cfg.Store.(node.Prefetcher); ok {
		t.prefetch = pf.Prefetch
	}
	p, err := t.store.ReadPrime()
	if err != nil {
		return nil, err
	}
	if p.Levels == 0 {
		id, err := t.store.Allocate()
		if err != nil {
			return nil, err
		}
		root := &node.Node{
			ID:   id,
			Leaf: true,
			Root: true,
			Low:  base.NegInfBound(),
			High: base.PosInfBound(),
		}
		if err := t.store.Put(root); err != nil {
			return nil, err
		}
		if err := t.store.WritePrime(node.Prime{
			Root:     id,
			Levels:   1,
			Leftmost: []base.PageID{id},
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MinPairs returns k.
func (t *Tree) MinPairs() int { return t.k }

// capacity returns 2k, the maximum pairs per node.
func (t *Tree) capacity() int { return 2 * t.k }

// Store exposes the node store (used by the compressor, tools and
// checks that are constructed over the same substrate).
func (t *Tree) Store() node.Store { return t.store }

// Locks exposes the lock table shared with the compressor.
func (t *Tree) Locks() locks.Locker { return t.lt }

// Reclaimer returns the configured reclaimer, or nil.
func (t *Tree) Reclaimer() *reclaim.Reclaimer { return t.rec }

// SetUnderfullHandler installs fn as the underfull hook; pass nil to
// remove it. The hook runs on the deleting goroutine while the node's
// lock is held, so it must be fast and must not acquire node locks.
func (t *Tree) SetUnderfullHandler(fn func(UnderfullEvent)) {
	if fn == nil {
		t.onUnderfull.Store(nil)
		return
	}
	t.onUnderfull.Store(&fn)
}

// Len returns the number of stored pairs (exact when quiesced).
func (t *Tree) Len() int { return int(t.length.Load()) }

// Height returns the current number of levels.
func (t *Tree) Height() int {
	p, err := t.store.ReadPrime()
	if err != nil {
		return 0
	}
	return p.Levels
}

// Close marks the tree closed. It does not close the store, which the
// caller owns (stores are shared with compressors).
func (t *Tree) Close() error {
	t.closed.Store(true)
	return nil
}

func (t *Tree) checkOpen() error {
	if t.closed.Load() {
		return base.ErrClosed
	}
	return nil
}

// prefetchLink hints the store to fault n's right sibling in ahead of
// a sequential hop. Called once per visited leaf by scans and cursors;
// a no-op when the store has no read-ahead surface.
func (t *Tree) prefetchLink(n *node.Node) {
	if t.prefetch != nil && n.Link != base.NilPage {
		t.prefetch(n.Link)
	}
}

// enter brackets a logical operation in the reclamation epoch.
func (t *Tree) enter() (reclaim.Guard, bool) {
	if t.rec == nil {
		return reclaim.Guard{}, false
	}
	return t.rec.Enter(), true
}

func (t *Tree) exit(g reclaim.Guard, ok bool) {
	if ok {
		t.rec.Exit(g)
	}
}

// waitForLevel blocks until the prime block advertises at least
// level+1 levels and returns the leftmost node of that level. This is
// the §3.3 scenario: a process must insert at a level whose creation
// (by a concurrent root split) has not reached the prime block yet.
func (t *Tree) waitForLevel(level int) (base.PageID, error) {
	for spin := 0; ; spin++ {
		p, err := t.store.ReadPrime()
		if err != nil {
			return base.NilPage, err
		}
		if p.Levels > level {
			return p.Leftmost[level], nil
		}
		t.stats.levelWaits.Add(1)
		if spin < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}
