package blink

import (
	"errors"
	"sync/atomic"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/node"
)

// faultStore wraps a node.Store and starts failing after a countdown —
// the failure-injection substrate. It verifies the tree surfaces store
// errors cleanly: no panics, no leaked locks, no corrupted length.
type faultStore struct {
	node.Store
	countdown atomic.Int64 // ops until failure; negative = failing
}

var errInjected = errors.New("injected store failure")

func (f *faultStore) tick() error {
	if f.countdown.Add(-1) < 0 {
		return errInjected
	}
	return nil
}

func (f *faultStore) Get(id base.PageID) (*node.Node, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.Store.Get(id)
}

func (f *faultStore) Put(n *node.Node) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.Put(n)
}

func (f *faultStore) Allocate() (base.PageID, error) {
	if err := f.tick(); err != nil {
		return base.NilPage, err
	}
	return f.Store.Allocate()
}

func (f *faultStore) ReadPrime() (node.Prime, error) {
	if err := f.tick(); err != nil {
		return node.Prime{}, err
	}
	return f.Store.ReadPrime()
}

func (f *faultStore) WritePrime(p node.Prime) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Store.WritePrime(p)
}

// TestFaultInjectionSurfacesErrors fails the store at every possible
// op-count offset during a workload and checks errors come back as
// errors (never panics) and the lock table is never left locked (the
// next operation would hang; instead it must run or fail cleanly).
func TestFaultInjectionSurfacesErrors(t *testing.T) {
	// Determine the op budget of the workload on a healthy store.
	healthy := &faultStore{Store: node.NewMemStore()}
	healthy.countdown.Store(1 << 30)
	tr, err := New(Config{Store: healthy, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload := func(tr *Tree) error {
		for i := 0; i < 60; i++ {
			if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
				return err
			}
		}
		for i := 0; i < 60; i += 2 {
			if err := tr.Delete(base.Key(i)); err != nil {
				return err
			}
		}
		for i := 0; i < 60; i++ {
			if _, err := tr.Search(base.Key(i)); err != nil && !errors.Is(err, base.ErrNotFound) {
				return err
			}
		}
		return nil
	}
	if err := runWorkload(tr); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	budget := (1 << 30) - healthy.countdown.Load()

	for offset := int64(1); offset < budget; offset += 7 {
		fs := &faultStore{Store: node.NewMemStore()}
		fs.countdown.Store(1 << 30)
		tr, err := New(Config{Store: fs, MinPairs: 2})
		if err != nil {
			t.Fatal(err)
		}
		fs.countdown.Store(offset)
		err = runWorkload(tr)
		if err == nil {
			t.Fatalf("offset %d: workload succeeded through a failing store", offset)
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("offset %d: error lost its cause: %v", offset, err)
		}
		// The lock table must be clean: a fresh operation on the now-
		// healthy store must not hang on a leaked lock.
		fs.countdown.Store(1 << 30)
		if err := tr.Insert(1_000_000, 1); err != nil {
			t.Fatalf("offset %d: post-fault insert failed: %v", offset, err)
		}
		if _, err := tr.Search(1_000_000); err != nil {
			t.Fatalf("offset %d: post-fault search failed: %v", offset, err)
		}
	}
}

// TestFaultDuringCompactionSurfaces ensures the scanner and queue
// compressor also propagate store failures instead of looping.
func TestFaultDuringDescendRetryBounded(t *testing.T) {
	// A store whose prime block always reports a root that errors on
	// Get would make descend fail; the tree must return the error, not
	// retry forever (restarts only follow errRestart).
	fs := &faultStore{Store: node.NewMemStore()}
	fs.countdown.Store(1 << 30)
	tr, err := New(Config{Store: fs, MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Insert(5, 5)
	fs.countdown.Store(1) // ReadPrime succeeds, root Get fails
	if err := tr.Insert(6, 6); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
}
