package blink

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"blinktree/internal/base"
)

func TestUpsertBasics(t *testing.T) {
	tr := newTestTree(t, 2)
	// Insert path: key absent.
	old, existed, err := tr.Upsert(10, 100)
	if err != nil || existed || old != 0 {
		t.Fatalf("upsert absent = (%d, %v, %v)", old, existed, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Replace path: key present.
	old, existed, err = tr.Upsert(10, 200)
	if err != nil || !existed || old != 100 {
		t.Fatalf("upsert present = (%d, %v, %v)", old, existed, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after replace = %d", tr.Len())
	}
	if v, err := tr.Search(10); err != nil || v != 200 {
		t.Fatalf("search after upsert = (%d, %v)", v, err)
	}
	mustCheck(t, tr)
}

// TestUpsertSplitsLikeInsert drives upserts through node splits and
// root splits: the insert half of an upsert must be a full Fig. 6
// insertion, not a leaf-only shortcut.
func TestUpsertSplitsLikeInsert(t *testing.T) {
	tr := newTestTree(t, 2)
	const n = 500
	for i := 0; i < n; i++ {
		if _, existed, err := tr.Upsert(base.Key(i*7), base.Value(i)); err != nil || existed {
			t.Fatalf("upsert %d = (%v, %v)", i, existed, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if tr.Height() < 3 {
		t.Fatalf("height = %d: splits did not propagate", tr.Height())
	}
	if tr.Stats().CondLocks.MaxHeld > 1 {
		t.Fatalf("conditional write held %d locks", tr.Stats().CondLocks.MaxHeld)
	}
	for i := 0; i < n; i++ {
		if v, err := tr.Search(base.Key(i * 7)); err != nil || v != base.Value(i) {
			t.Fatalf("search(%d) = (%d, %v)", i*7, v, err)
		}
	}
	mustCheck(t, tr)
}

func TestGetOrInsert(t *testing.T) {
	tr := newTestTree(t, 2)
	v, loaded, err := tr.GetOrInsert(5, 50)
	if err != nil || loaded || v != 50 {
		t.Fatalf("getorinsert absent = (%d, %v, %v)", v, loaded, err)
	}
	v, loaded, err = tr.GetOrInsert(5, 999)
	if err != nil || !loaded || v != 50 {
		t.Fatalf("getorinsert present = (%d, %v, %v)", v, loaded, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestUpdate(t *testing.T) {
	tr := newTestTree(t, 2)
	if _, err := tr.Update(1, func(v base.Value) base.Value { return v + 1 }); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("update absent = %v", err)
	}
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Update(1, func(v base.Value) base.Value { return v * 3 })
	if err != nil || v != 30 {
		t.Fatalf("update = (%d, %v)", v, err)
	}
	if got, _ := tr.Search(1); got != 30 {
		t.Fatalf("stored %d", got)
	}
}

func TestCompareAndSwapAndDelete(t *testing.T) {
	tr := newTestTree(t, 2)
	if _, err := tr.CompareAndSwap(7, 0, 1); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("cas absent = %v", err)
	}
	if _, err := tr.CompareAndDelete(7, 0); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("cad absent = %v", err)
	}
	if err := tr.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if ok, err := tr.CompareAndSwap(7, 99, 100); err != nil || ok {
		t.Fatalf("cas mismatch = (%v, %v)", ok, err)
	}
	if ok, err := tr.CompareAndSwap(7, 70, 71); err != nil || !ok {
		t.Fatalf("cas match = (%v, %v)", ok, err)
	}
	if v, _ := tr.Search(7); v != 71 {
		t.Fatalf("stored %d after cas", v)
	}
	if ok, err := tr.CompareAndDelete(7, 70); err != nil || ok {
		t.Fatalf("cad mismatch = (%v, %v)", ok, err)
	}
	if ok, err := tr.CompareAndDelete(7, 71); err != nil || !ok {
		t.Fatalf("cad match = (%v, %v)", ok, err)
	}
	if _, err := tr.Search(7); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("key survived cad: %v", err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	mustCheck(t, tr)
}

// TestConcurrentCASHotKeyCounts is the linearizability smoke test for
// conditional writes: goroutines racing CAS increments on one hot key
// must serialize so that exactly one swap wins per value, making the
// final value equal the number of successful swaps.
func TestConcurrentCASHotKeyCounts(t *testing.T) {
	tr := newTestTree(t, 2)
	const hot = base.Key(42)
	if err := tr.Insert(hot, 0); err != nil {
		t.Fatal(err)
	}
	// Surround the hot key with churn so its leaf keeps splitting and
	// merging under the CAS traffic.
	const workers = 8
	const attempts = 2000
	var swaps atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				cur, err := tr.Search(hot)
				if err != nil {
					t.Errorf("search hot: %v", err)
					return
				}
				ok, err := tr.CompareAndSwap(hot, cur, cur+1)
				if err != nil {
					t.Errorf("cas hot: %v", err)
					return
				}
				if ok {
					swaps.Add(1)
				}
				k := hot + base.Key(1+(w*attempts+i)%64)
				if i%2 == 0 {
					_ = tr.Insert(k, base.Value(k))
				} else {
					_ = tr.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	final, err := tr.Search(hot)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(final) != swaps.Load() {
		t.Fatalf("final value %d != %d successful swaps: lost updates", final, swaps.Load())
	}
	if swaps.Load() == 0 {
		t.Fatal("no swap ever succeeded")
	}
	if fp := tr.Stats().CondLocks; fp.MaxHeld > 1 {
		t.Fatalf("conditional write held %d locks", fp.MaxHeld)
	}
	mustCheck(t, tr)
}

// TestConcurrentUpsertUpdateCounts: Update increments from many
// goroutines are atomic read-modify-writes — none may be lost.
func TestConcurrentUpsertUpdateCounts(t *testing.T) {
	tr := newTestTree(t, 2)
	const key = base.Key(7)
	if _, _, err := tr.Upsert(key, 0); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := tr.Update(key, func(v base.Value) base.Value { return v + 1 }); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := tr.Search(key); err != nil || v != workers*perWorker {
		t.Fatalf("final = (%d, %v), want %d", v, err, workers*perWorker)
	}
	mustCheck(t, tr)
}

// TestConditionalMixAgainstModel runs a sequential mixed conditional
// workload against a map model.
func TestConditionalMixAgainstModel(t *testing.T) {
	tr := newTestTree(t, 2)
	model := map[base.Key]base.Value{}
	nextVal := base.Value(1)
	for i := 0; i < 20000; i++ {
		k := base.Key(i * 2654435761 % 700)
		nextVal++
		switch i % 5 {
		case 0:
			old, existed, err := tr.Upsert(k, nextVal)
			if err != nil {
				t.Fatal(err)
			}
			want, present := model[k]
			if existed != present || (present && old != want) {
				t.Fatalf("upsert(%d) = (%d, %v), model (%d, %v)", k, old, existed, want, present)
			}
			model[k] = nextVal
		case 1:
			v, loaded, err := tr.GetOrInsert(k, nextVal)
			if err != nil {
				t.Fatal(err)
			}
			if want, present := model[k]; present {
				if !loaded || v != want {
					t.Fatalf("getorinsert(%d) = (%d, %v), model (%d, present)", k, v, loaded, want)
				}
			} else {
				if loaded || v != nextVal {
					t.Fatalf("getorinsert(%d) = (%d, %v), model absent", k, v, loaded)
				}
				model[k] = nextVal
			}
		case 2:
			v, err := tr.Update(k, func(v base.Value) base.Value { return v + 10 })
			if want, present := model[k]; present {
				if err != nil || v != want+10 {
					t.Fatalf("update(%d) = (%d, %v), model %d", k, v, err, want)
				}
				model[k] = want + 10
			} else if !errors.Is(err, base.ErrNotFound) {
				t.Fatalf("update absent(%d) = %v", k, err)
			}
		case 3:
			want, present := model[k]
			ok, err := tr.CompareAndSwap(k, want, want+1)
			if present {
				if err != nil || !ok {
					t.Fatalf("cas(%d) = (%v, %v)", k, ok, err)
				}
				model[k] = want + 1
			} else if !errors.Is(err, base.ErrNotFound) {
				t.Fatalf("cas absent(%d) = %v", k, err)
			}
		default:
			want, present := model[k]
			ok, err := tr.CompareAndDelete(k, want)
			if present {
				if err != nil || !ok {
					t.Fatalf("cad(%d) = (%v, %v)", k, ok, err)
				}
				delete(model, k)
			} else if !errors.Is(err, base.ErrNotFound) {
				t.Fatalf("cad absent(%d) = %v", k, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len %d != model %d", tr.Len(), len(model))
	}
	mustCheck(t, tr)
}

// TestCompareAndDeleteFiresUnderfullHook: a CAD that thins a leaf below
// k must enqueue it exactly like a plain deletion (§5.4).
func TestCompareAndDeleteFiresUnderfullHook(t *testing.T) {
	tr := newTestTree(t, 4)
	const n = 64
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	fired := 0
	tr.SetUnderfullHandler(func(UnderfullEvent) { fired++ })
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			if ok, err := tr.CompareAndDelete(base.Key(i), base.Value(i)); err != nil || !ok {
				t.Fatalf("cad(%d) = (%v, %v)", i, ok, err)
			}
		}
	}
	if fired == 0 {
		t.Fatal("mass CompareAndDelete never fired the underfull hook")
	}
	mustCheck(t, tr)
}

func TestCondWriteOnClosedTree(t *testing.T) {
	tr := newTestTree(t, 2)
	_ = tr.Close()
	if _, _, err := tr.Upsert(1, 1); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("upsert on closed = %v", err)
	}
	if _, err := tr.Update(1, func(v base.Value) base.Value { return v }); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("update on closed = %v", err)
	}
	if _, err := tr.CompareAndSwap(1, 0, 1); !errors.Is(err, base.ErrClosed) {
		t.Fatalf("cas on closed = %v", err)
	}
}
