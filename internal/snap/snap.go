// Package snap is the snapshot stream codec shared by the public
// Snapshot/Restore API and the WAL checkpoint writer. Keeping one
// codec means a checkpoint IS a snapshot: portable across front-ends
// and shard counts, and verifiable with the same CRC.
//
// Stream format (little endian):
//
//	magic "BLTS" | version u32 | count u64 | count′ × (key u64, value u64) | footer
//
// Version 1 has no footer and treats the header count as advisory
// (readers consume pairs until EOF). Version 2 appends a 12-byte
// footer — pairs-written u64 | crc32(IEEE) u32 over every preceding
// byte — so checkpoints and standalone snapshots detect truncation and
// corruption instead of silently restoring a partial state. Writers
// emit v2; readers accept both.
package snap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"blinktree/internal/base"
)

var magic = [4]byte{'B', 'L', 'T', 'S'}

// Versions. Version is what Write emits; VersionLegacy is still read.
const (
	VersionLegacy = 1
	Version       = 2
)

const (
	headerLen = 16
	pairLen   = 16
	footerLen = 12
)

// Write streams pairs from scan to w in version-2 format. count is the
// advisory pair count for the header (it may drift under concurrent
// mutation); the footer records the exact number written.
func Write(w io.Writer, count int, scan func(fn func(base.Key, base.Value) bool) error) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(count))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var pair [pairLen]byte
	written := uint64(0)
	var werr error
	err := scan(func(k base.Key, v base.Value) bool {
		binary.LittleEndian.PutUint64(pair[0:], uint64(k))
		binary.LittleEndian.PutUint64(pair[8:], uint64(v))
		if _, werr = bw.Write(pair[:]); werr != nil {
			return false
		}
		written++
		return true
	})
	if err != nil {
		return err
	}
	if werr != nil {
		return werr
	}
	// The footer's CRC covers everything before it, so flush the pair
	// stream through the hasher first.
	if err := bw.Flush(); err != nil {
		return err
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[0:8], written)
	binary.LittleEndian.PutUint32(foot[8:12], crc.Sum32())
	if _, err := w.Write(foot[:]); err != nil {
		return err
	}
	return nil
}

// Read parses a snapshot stream (either version), calling emit for
// each pair in stream order. For version 2 it verifies the pair count
// and CRC and returns a base.ErrCorrupt-wrapped error on mismatch.
func Read(r io.Reader, emit func(base.Key, base.Value) error) error {
	br := bufio.NewReader(r)
	crc := crc32.NewIEEE()
	var head [headerLen]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("snapshot header: %w", err)
	}
	if [4]byte(head[0:4]) != magic {
		return fmt.Errorf("%w: bad snapshot magic", base.ErrCorrupt)
	}
	ver := binary.LittleEndian.Uint32(head[4:8])
	switch ver {
	case VersionLegacy:
		return readV1(br, emit)
	case Version:
		crc.Write(head[:])
		return readV2(br, crc, emit)
	default:
		return fmt.Errorf("%w: snapshot version %d", base.ErrCorrupt, ver)
	}
}

// readV1 consumes 16-byte pairs until clean EOF (the legacy format has
// no integrity check beyond alignment).
func readV1(br *bufio.Reader, emit func(base.Key, base.Value) error) error {
	var pair [pairLen]byte
	for {
		if _, err := io.ReadFull(br, pair[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("snapshot body: %w", err)
		}
		k := base.Key(binary.LittleEndian.Uint64(pair[0:]))
		v := base.Value(binary.LittleEndian.Uint64(pair[8:]))
		if err := emit(k, v); err != nil {
			return err
		}
	}
}

// readV2 consumes pairs, distinguishing the 12-byte footer from the
// 16-byte pairs by lookahead: when fewer than 16 bytes remain, what
// remains must be exactly the footer, and its count and CRC must
// match what was read.
func readV2(br *bufio.Reader, crc crc32er, emit func(base.Key, base.Value) error) error {
	pairs := uint64(0)
	for {
		buf, err := br.Peek(pairLen)
		if err == nil {
			crc.Write(buf)
			k := base.Key(binary.LittleEndian.Uint64(buf[0:]))
			v := base.Value(binary.LittleEndian.Uint64(buf[8:]))
			if _, err := br.Discard(pairLen); err != nil {
				return err
			}
			if err := emit(k, v); err != nil {
				return err
			}
			pairs++
			continue
		}
		if err != io.EOF && err != io.ErrUnexpectedEOF && err != bufio.ErrBufferFull {
			return fmt.Errorf("snapshot body: %w", err)
		}
		if len(buf) != footerLen {
			return fmt.Errorf("%w: snapshot truncated (%d trailing bytes)", base.ErrCorrupt, len(buf))
		}
		wantPairs := binary.LittleEndian.Uint64(buf[0:8])
		wantCRC := binary.LittleEndian.Uint32(buf[8:12])
		if wantPairs != pairs {
			return fmt.Errorf("%w: snapshot pair count %d, footer says %d", base.ErrCorrupt, pairs, wantPairs)
		}
		if crc.Sum32() != wantCRC {
			return fmt.Errorf("%w: snapshot CRC mismatch", base.ErrCorrupt)
		}
		if _, err := br.Discard(footerLen); err != nil {
			return err
		}
		if _, err := br.ReadByte(); err != io.EOF {
			return fmt.Errorf("%w: trailing bytes after snapshot footer", base.ErrCorrupt)
		}
		return nil
	}
}

// crc32er is the subset of hash.Hash32 readV2 needs.
type crc32er interface {
	Write(p []byte) (int, error)
	Sum32() uint32
}
