package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"blinktree/internal/base"
)

func pairs(n int) [][2]uint64 {
	out := make([][2]uint64, n)
	for i := range out {
		out[i] = [2]uint64{uint64(i) * 7, uint64(i) + 100}
	}
	return out
}

func writePairs(t *testing.T, ps [][2]uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := Write(&buf, len(ps), func(fn func(base.Key, base.Value) bool) error {
		for _, p := range ps {
			if !fn(base.Key(p[0]), base.Value(p[1])) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readPairs(data []byte) ([][2]uint64, error) {
	var got [][2]uint64
	err := Read(bytes.NewReader(data), func(k base.Key, v base.Value) error {
		got = append(got, [2]uint64{uint64(k), uint64(v)})
		return nil
	})
	return got, err
}

func TestRoundtripV2(t *testing.T) {
	for _, n := range []int{0, 1, 3, 1000} {
		ps := pairs(n)
		got, err := readPairs(writePairs(t, ps))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d pairs", n, len(got))
		}
		for i := range got {
			if got[i] != ps[i] {
				t.Fatalf("n=%d: pair %d = %v, want %v", n, i, got[i], ps[i])
			}
		}
	}
}

func TestReadsLegacyV1(t *testing.T) {
	// Hand-build a v1 stream: magic | version=1 | count | pairs, no footer.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], VersionLegacy)
	binary.LittleEndian.PutUint64(hdr[4:], 2)
	buf.Write(hdr[:])
	var pair [16]byte
	for _, p := range [][2]uint64{{5, 50}, {6, 60}} {
		binary.LittleEndian.PutUint64(pair[0:], p[0])
		binary.LittleEndian.PutUint64(pair[8:], p[1])
		buf.Write(pair[:])
	}
	got, err := readPairs(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]uint64{5, 50} || got[1] != [2]uint64{6, 60} {
		t.Fatalf("got %v", got)
	}
}

func TestDetectsCorruption(t *testing.T) {
	data := writePairs(t, pairs(10))
	// Flip one byte of a pair: CRC must catch it.
	bad := bytes.Clone(data)
	bad[headerLen+3*pairLen+2] ^= 0x01
	if _, err := readPairs(bad); !errors.Is(err, base.ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
}

func TestDetectsTruncation(t *testing.T) {
	data := writePairs(t, pairs(10))
	for cut := headerLen; cut < len(data); cut++ {
		if _, err := readPairs(data[:cut]); !errors.Is(err, base.ErrCorrupt) {
			t.Fatalf("truncation at %d not detected: %v", cut, err)
		}
	}
}

func TestDetectsTrailingGarbage(t *testing.T) {
	data := append(writePairs(t, pairs(4)), 0xde, 0xad)
	if _, err := readPairs(data); !errors.Is(err, base.ErrCorrupt) {
		t.Fatalf("trailing bytes not detected: %v", err)
	}
}

func TestRejectsBadMagicAndVersion(t *testing.T) {
	data := writePairs(t, pairs(1))
	bad := bytes.Clone(data)
	bad[0] = 'X'
	if _, err := readPairs(bad); !errors.Is(err, base.ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = bytes.Clone(data)
	binary.LittleEndian.PutUint32(bad[4:8], 99)
	if _, err := readPairs(bad); !errors.Is(err, base.ErrCorrupt) {
		t.Fatalf("bad version: %v", err)
	}
}
