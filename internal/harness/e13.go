package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"blinktree/client"
	"blinktree/internal/base"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// E13NetPipeline measures what the network front-end costs relative to
// calling the engine in-process, and how pipeline depth buys it back.
// Three configurations upsert the same golden-ratio-scattered keys:
//
//   - inproc/batch: shard.Router.ApplyBatch called directly with
//     batches of d operations — the in-process ceiling.
//   - net/pipelined: d concurrent goroutines issuing point Upserts
//     through one pooled client. The client multiplexes them into
//     pipelined bursts; the server coalesces each burst into one
//     ApplyBatch. Depth is concurrency, not an API change — this is
//     the shape a fleet of independent request handlers produces.
//   - net/batch: client.Batch frames of d operations — explicit wire
//     batching, one request per d ops.
//
// The claim under test: at depth ≥ 64 the pipelined network
// configuration lands within 5x of the in-process ApplyBatch ceiling,
// because coalescing amortizes the per-request wire cost the same way
// ApplyBatch amortizes routing and group commit amortizes fsync.
func E13NetPipeline(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E13: network vs in-process upsert throughput (ops/s) by pipeline depth",
		Headers: []string{"config", "d=1", "d=16", "d=64", "d=256"},
		Notes: []string{
			"inproc/batch = Router.ApplyBatch of d ops; net/pipelined = d goroutines of",
			"point Upserts through one pooled client (TCP loopback, coalescing server);",
			"net/batch = client.Batch frames of d ops. Same scattered keys everywhere.",
		},
	}
	atbl := &Table{
		Title:   "E13a: whole-process allocations per upsert by pipeline depth",
		Headers: []string{"config", "allocs/op d=64", "B/op d=64", "allocs/op d=256", "B/op d=256"},
		Notes: []string{
			"runtime.MemStats deltas across the timed section divided by ops; net modes",
			"count client and server together (one process). The steady-state codec and",
			"transport contribute zero — what remains is the tree's copy-on-write.",
		},
	}
	depths := []int{1, 16, 64, 256}
	for _, shards := range []int{1, 8} {
		for _, mode := range []string{"inproc/batch", "net/pipelined", "net/batch"} {
			row := []any{fmt.Sprintf("%s s=%d", mode, shards)}
			arow := []any{fmt.Sprintf("%s s=%d", mode, shards)}
			for _, d := range depths {
				ops := s.n(100000)
				if mode == "net/pipelined" && d == 1 {
					ops = s.n(20000) // serial round trips: keep the cell honest but quick
				}
				cell, err := e13Cell(mode, shards, d, ops)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", cell.tput))
				if d >= 64 {
					arow = append(arow, fmt.Sprintf("%.1f", cell.allocsPerOp), fmt.Sprintf("%.0f", cell.bytesPerOp))
				}
			}
			tbl.Add(row...)
			atbl.Add(arow...)
		}
	}
	tbl.Render(w)
	atbl.Render(w)
	return nil
}

// e13Res is one E13 cell: throughput plus the process-wide allocation
// rate over the timed section.
type e13Res struct {
	tput        float64
	allocsPerOp float64
	bytesPerOp  float64
}

// memStart samples the allocation counters at the start of a timed
// section; finish converts the deltas to per-op rates.
func memStart() runtime.MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m
}

func (r *e13Res) finish(m0 runtime.MemStats, ops int, elapsed time.Duration) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	r.tput = float64(ops) / elapsed.Seconds()
	r.allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
	r.bytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops)
}

// e13Cell runs one E13 cell and returns upsert throughput plus the
// process-wide allocation rate over the timed section.
func e13Cell(mode string, shards, depth, totalOps int) (e13Res, error) {
	var out e13Res
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: 16})
	if err != nil {
		return out, err
	}
	defer r.Close()
	key := func(i int) uint64 { return uint64(i) * 11400714819323198485 }

	if mode == "inproc/batch" {
		ops := make([]shard.Op, depth)
		var sc shard.BatchScratch
		m0 := memStart()
		start := time.Now()
		done := 0
		for done < totalOps {
			n := min(depth, totalOps-done)
			for j := 0; j < n; j++ {
				ops[j] = shard.Op{Kind: shard.OpUpsert, Key: base.Key(key(done + j)), Value: base.Value(j)}
			}
			for _, res := range r.ApplyBatchInto(ops[:n], &sc) {
				if res.Err != nil {
					return out, res.Err
				}
			}
			done += n
		}
		out.finish(m0, totalOps, time.Since(start))
		return out, nil
	}

	srv := server.New(r, server.Config{Addr: "127.0.0.1:0", Logf: func(string, ...any) {}})
	if err := srv.Start(); err != nil {
		return out, err
	}
	defer srv.Close()
	conns := 2
	if depth < 2 {
		conns = 1
	}
	cl, err := client.Dial(srv.Addr().String(), client.Options{Conns: conns})
	if err != nil {
		return out, err
	}
	defer cl.Close()
	ctx := context.Background()

	switch mode {
	case "net/pipelined":
		per := totalOps / depth
		if per < 1 {
			per = 1
		}
		var wg sync.WaitGroup
		errCh := make(chan error, depth)
		m0 := memStart()
		start := time.Now()
		for g := 0; g < depth; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, _, err := cl.Upsert(ctx, client.Key(key(g*per+i)), client.Value(i)); err != nil {
						errCh <- err
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return out, err
		default:
		}
		out.finish(m0, per*depth, elapsed)
		return out, nil

	case "net/batch":
		ops := make([]client.Op, depth)
		m0 := memStart()
		start := time.Now()
		done := 0
		for done < totalOps {
			n := min(depth, totalOps-done)
			for j := 0; j < n; j++ {
				ops[j] = client.Op{Kind: client.OpUpsert, Key: client.Key(key(done + j)), Value: client.Value(j)}
			}
			results, err := cl.Batch(ctx, ops[:n])
			if err != nil {
				return out, err
			}
			for _, res := range results {
				if res.Err != nil {
					return out, res.Err
				}
			}
			done += n
		}
		out.finish(m0, totalOps, time.Since(start))
		return out, nil
	}
	return out, fmt.Errorf("e13: unknown mode %q", mode)
}
