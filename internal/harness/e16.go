package harness

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/client"
	"blinktree/internal/cluster"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// E16Migration measures what live shard migration delivers and what it
// costs: aggregate write throughput before, during, and after half the
// ranges move from one cluster member to another, plus the write-fence
// pause each handoff imposes. Two durable members run in-process,
// connected over TCP loopback exactly as production would be; a
// cluster-aware client drives batched upserts throughout and rides the
// redirects.
//
// The claim under test: migration is live — writes keep flowing while
// ranges move, the only write-unavailability per range is the final
// fence (milliseconds: drain in-flight batches + ship the fenced
// tail), and after the rebalance two members sustain more aggregate
// write throughput than one.
func E16Migration(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E16: live migration — throughput before/during/after rebalance, fence cost",
		Headers: []string{"config", "before ops/s", "during ops/s", "after ops/s", "migration ms", "fence ms max", "fence ms total", "records moved"},
		Notes: []string{
			"two durable cluster members over TCP loopback; writes = batched upserts from a",
			"cluster-aware client (6 goroutines) running continuously; 'during' spans the",
			"sequential migration of half the ranges; fence = per-handoff write pause on the",
			"source (drain in-flight batches + ship the fenced WAL tail).",
		},
	}
	for _, shards := range []int{4, 8} {
		row, err := e16Cell(shards, s.n(16384))
		if err != nil {
			return err
		}
		tbl.Add(append([]any{fmt.Sprintf("s=%d", shards)}, row...)...)
	}
	tbl.Render(w)
	return nil
}

// e16Cell runs one two-member cluster and returns the measured row.
func e16Cell(shards, keys int) ([]any, error) {
	dirA, err := os.MkdirTemp("", "e16-a")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "e16-b")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dirB)

	// Members need fixed addresses before their servers start (the
	// cluster map names them), so reserve ports up front.
	addrA, err := reserveAddr()
	if err != nil {
		return nil, err
	}
	addrB, err := reserveAddr()
	if err != nil {
		return nil, err
	}

	quiet := func(string, ...any) {}
	start := func(addr, dir string) (*shard.Router, *server.Server, *cluster.Node, error) {
		r, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Durable: true, Dir: dir})
		if err != nil {
			return nil, nil, nil, err
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			Self: addr, Shards: shards, InitialOwner: addrA, Dir: dir, Logf: quiet,
		})
		if err != nil {
			r.Close()
			return nil, nil, nil, err
		}
		s := server.New(r, server.Config{Addr: addr, Logf: quiet, Cluster: node})
		if err := s.Start(); err != nil {
			r.Close()
			return nil, nil, nil, err
		}
		return r, s, node, nil
	}
	rA, sA, nodeA, err := start(addrA, dirA)
	if err != nil {
		return nil, err
	}
	defer func() { sA.Close(); rA.Close() }()
	rB, sB, _, err := start(addrB, dirB)
	if err != nil {
		return nil, err
	}
	defer func() { sB.Close(); rB.Close() }()

	ctx := context.Background()
	cl, err := client.DialCluster(addrA, client.Options{Conns: 2})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// Preload so migrations have state to ship.
	stride := ^uint64(0)/uint64(keys) + 1
	key := func(i int) client.Key { return client.Key(uint64(i) * stride) }
	pre := make([]client.Op, 0, 256)
	for i := 0; i < keys; i += 256 {
		pre = pre[:0]
		for j := i; j < i+256 && j < keys; j++ {
			pre = append(pre, client.Op{Kind: client.OpUpsert, Key: key(j), Value: client.Value(j)})
		}
		if _, err := cl.Batch(ctx, pre); err != nil {
			return nil, err
		}
	}

	// Continuous batched writers for the whole experiment.
	var ops atomic.Uint64
	var writeErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]client.Op, 128)
			i := g * 7919
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range batch {
					i += 13
					batch[j] = client.Op{Kind: client.OpUpsert, Key: key(i % keys), Value: client.Value(i)}
				}
				results, err := cl.Batch(ctx, batch)
				if err != nil {
					writeErr.Store(err)
					return
				}
				ok := 0
				for _, res := range results {
					if res.Err == nil {
						ok++
					}
				}
				ops.Add(uint64(ok))
			}
		}(g)
	}
	rate := func(window time.Duration) float64 {
		before := ops.Load()
		time.Sleep(window)
		return float64(ops.Load()-before) / window.Seconds()
	}

	const window = 400 * time.Millisecond
	beforeRate := rate(window)

	// The rebalance: migrate the upper half of the ranges onto B, one
	// at a time, writes flowing throughout.
	migStart := time.Now()
	migOps := ops.Load()
	var fenceMax time.Duration
	for sh := shards / 2; sh < shards; sh++ {
		if err := cl.Migrate(ctx, sh, addrB); err != nil {
			return nil, fmt.Errorf("e16: migrate range %d: %w", sh, err)
		}
		if f := nodeA.ClusterStats().LastFence; f > fenceMax {
			fenceMax = f
		}
	}
	migWindow := time.Since(migStart)
	duringRate := float64(ops.Load()-migOps) / migWindow.Seconds()

	afterRate := rate(window)
	close(stop)
	wg.Wait()
	if err, ok := writeErr.Load().(error); ok && err != nil {
		return nil, fmt.Errorf("e16: writer: %w", err)
	}

	cs := nodeA.ClusterStats()
	if cs.Migrations != uint64(shards-shards/2) {
		return nil, fmt.Errorf("e16: %d migrations committed, want %d", cs.Migrations, shards-shards/2)
	}
	return []any{
		fmt.Sprintf("%.0f", beforeRate),
		fmt.Sprintf("%.0f", duringRate),
		fmt.Sprintf("%.0f", afterRate),
		fmt.Sprintf("%.0f", float64(migWindow.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(fenceMax.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(cs.FenceTotal.Microseconds())/1000),
		fmt.Sprintf("%d", cs.Shipped),
	}, nil
}

// reserveAddr picks a concrete loopback address by binding an
// ephemeral port and releasing it.
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
