package harness

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/baseline/lehmanyao"
	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/shard"
	"blinktree/internal/storage"
	"blinktree/internal/workload"
)

// Scale shrinks or grows experiment sizes. 1.0 is the full run used for
// EXPERIMENTS.md; smaller values keep smoke runs fast.
type Scale float64

func (s Scale) n(full int) int {
	v := int(float64(full) * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// E1Throughput measures mixed-workload throughput per implementation
// and worker count — the paper's overall "higher degree of concurrency"
// claim (§1). On a single-CPU host the separation comes from blocking
// behaviour under contention rather than parallel speedup.
func E1Throughput(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E1: throughput (ops/s) by implementation and goroutines, balanced mix",
		Headers: []string{"impl", "1", "4", "16", "64"},
		Notes:   []string{"balanced mix 50/25/25, uniform keys, preload " + fmt.Sprint(s.n(50000))},
	}
	for _, kind := range AllKinds {
		row := []any{string(kind)}
		for _, workers := range []int{1, 4, 16, 64} {
			res, err := Run(RunConfig{
				Kind: kind, K: 16, Workers: workers,
				OpsPerWorker: s.n(200000) / workers,
				Preload:      s.n(50000), KeySpace: 1 << 18,
				Mix: workload.Balanced, Seed: 1,
			})
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", res.Throughput))
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
	return nil
}

// E1DiskThroughput is E1 in the paper's actual regime: nodes are pages
// of simulated secondary storage (fixed per-I/O latency), so lock hold
// time spans I/O and the cost of holding 2–3 locks across the upward
// pass (Lehman–Yao) versus 1 (Sagiv) becomes visible even on one CPU —
// sleeping goroutines overlap, exactly like outstanding disk requests.
func E1DiskThroughput(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E1b: concurrent sequential inserts on simulated-disk pages (1ms/IO)",
		Headers: []string{"impl/keys", "w=1", "w=4", "w=16"},
		Notes: []string{
			"uniform: scattered keys, realistic contention; hotspot: interleaved ascending",
			"keys so every inserter fights over the rightmost path (split every ~4 inserts,",
			"k=4) — the adversarial case where Lehman–Yao's held-across-IO coupling pins",
			"its chain position while Sagiv's release-and-rechase loses ground",
		},
	}
	const ioLat = time.Millisecond // honest: Linux timer granularity rounds sub-ms sleeps up anyway
	totalOps := s.n(2400)
	if totalOps < 200 {
		totalOps = 200
	}
	for _, shape := range []string{"uniform", "hotspot"} {
		for _, kindName := range []string{"sagiv", "lehmanyao"} {
			row := []any{kindName + "/" + shape}
			for _, workers := range []int{1, 4, 16} {
				tput, err := e1bCell(kindName, shape, workers, totalOps, ioLat)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", tput))
			}
			tbl.Add(row...)
		}
	}
	tbl.Render(w)
	return nil
}

// e1bCell runs one E1b cell: workers goroutines inserting totalOps keys
// into a fresh paged tree with per-I/O latency ioLat. shape "hotspot"
// uses interleaved ascending keys (everyone fights over the rightmost
// path); "uniform" scatters keys so contention is realistic.
func e1bCell(kindName, shape string, workers, totalOps int, ioLat time.Duration) (float64, error) {
	mem := storage.NewMemStore(1024)
	lat := storage.NewLatency(mem, ioLat, ioLat)
	st, err := node.NewPagedStore(lat)
	if err != nil {
		return 0, err
	}
	var tree base.Tree
	if kindName == "sagiv" {
		tr, err := blink.New(blink.Config{Store: st, MinPairs: 4})
		if err != nil {
			return 0, err
		}
		tree = tr
	} else {
		tr, err := lehmanyao.New(lehmanyao.Config{Store: st, MinPairs: 4})
		if err != nil {
			return 0, err
		}
		tree = tr
	}
	opsPer := totalOps / workers
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				var k base.Key
				if shape == "hotspot" {
					// Worker wk inserts keys wk, wk+W, wk+2W, ... — all
					// interleave into the same rightmost leaves.
					k = base.Key(i*workers + wk)
				} else {
					// Golden-ratio scatter: unique key per (wk, i),
					// spread over the space.
					k = base.Key((uint64(i*workers+wk) * 11400714819323198485) >> 16)
				}
				if err := tree.Insert(k, 0); err != nil {
					errCh <- err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(opsPer*workers) / time.Since(start).Seconds(), nil
}

// E2LockFootprint measures the locks held simultaneously per update —
// the paper's headline claim: Sagiv 1, Lehman–Yao ≤ 3, coupling ≥ 2.
func E2LockFootprint(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E2: locks held simultaneously per operation (insert-heavy, 8 goroutines)",
		Headers: []string{"impl", "insert max", "insert mean-of-max", "delete max", "search max"},
		Notes: []string{
			"paper claim: Sagiv insertion locks ONE node at any time (abstract, §3);",
			"Lehman–Yao locks 2-3 moving up; lock coupling locks ≥2 everywhere incl. reads",
		},
	}
	for _, kind := range []Kind{KindSagiv, KindLehmanYao, KindLockCoupling} {
		res, err := Run(RunConfig{
			Kind: kind, K: 4, Workers: 8,
			OpsPerWorker: s.n(40000),
			Preload:      s.n(2000), KeySpace: 1 << 16,
			Mix: workload.Mix{SearchPct: 10, InsertPct: 70, DeletePct: 20}, Seed: 2,
		})
		if err != nil {
			return err
		}
		searchMax := "0 (lock-free)"
		if res.SearchMaxLocks > 0 {
			searchMax = fmt.Sprint(res.SearchMaxLocks)
		}
		tbl.Add(string(kind), res.InsertMaxLocks, fmt.Sprintf("%.3f", res.MeanInsertLocks), res.DeleteMaxLocks, searchMax)
	}
	tbl.Render(w)
	return nil
}

// E3Compression measures space and height recovery after mass
// deletion: none (the [8] regime), queue compression, and full
// compaction (§1, §5.1).
func E3Compression(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E3: occupancy after deleting 90% of keys (k=8)",
		Headers: []string{"regime", "nodes", "height", "underfull", "mean fill", "pages freed"},
		Notes:   []string{"paper claim: compression restores ≥ half-full nodes and minimal height (§5.1)"},
	}
	n := s.n(200000)

	type regime struct {
		name string
		run  func() (*blink.Tree, node.Store, *reclaim.Reclaimer, error)
	}
	build := func(compressed bool, compact bool) (*blink.Tree, node.Store, *reclaim.Reclaimer, error) {
		st := node.NewMemStore()
		lt := locks.NewTable()
		rec := reclaim.New(st.Free)
		tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 8, Reclaimer: rec})
		if err != nil {
			return nil, nil, nil, err
		}
		var comp *compress.Compressor
		if compressed {
			comp = compress.NewCompressor(st, lt, 8, rec)
			comp.Attach(tr)
		}
		for i := 0; i < n; i++ {
			if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
				return nil, nil, nil, err
			}
		}
		for i := 0; i < n; i++ {
			if i%10 != 0 {
				if err := tr.Delete(base.Key(i)); err != nil {
					return nil, nil, nil, err
				}
			}
		}
		if compressed {
			if err := comp.DrainOnce(); err != nil {
				return nil, nil, nil, err
			}
		}
		if compact {
			sc := compress.NewScanner(st, lt, 8, rec)
			if err := sc.Compact(); err != nil {
				return nil, nil, nil, err
			}
		}
		if _, err := rec.Collect(); err != nil {
			return nil, nil, nil, err
		}
		return tr, st, rec, nil
	}
	regimes := []regime{
		{"none (Lehman-Yao [8])", func() (*blink.Tree, node.Store, *reclaim.Reclaimer, error) { return build(false, false) }},
		{"queue compressors (§5.4)", func() (*blink.Tree, node.Store, *reclaim.Reclaimer, error) { return build(true, false) }},
		{"queue + full compaction (§5.1)", func() (*blink.Tree, node.Store, *reclaim.Reclaimer, error) { return build(true, true) }},
	}
	for _, r := range regimes {
		tr, _, rec, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		occ, err := tr.OccupancyStats()
		if err != nil {
			return err
		}
		rs := rec.Stats()
		tbl.Add(r.name, occ.Nodes, occ.Height, occ.Underfull,
			fmt.Sprintf("%.2f", occ.MeanFill), rs.Freed)
	}
	tbl.Render(w)
	return nil
}

// E4RestartRate measures how often searches restart while compression
// churns — the paper's bet that restarts beat universal lock coupling
// (§1, §5.2), plus the backtrack-vs-root ablation.
func E4RestartRate(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E4: wrong-node restarts under concurrent compression",
		Headers: []string{"restart policy", "searches", "restarts", "restarts/op", "link hops/op"},
		Notes:   []string{"paper claim: 'the problem occurs infrequently' (§1) — restarts/op should be ≪ 1"},
	}
	for _, pol := range []struct {
		name string
		p    blink.RestartPolicy
	}{{"backtrack (§5.2 opt)", blink.RestartBacktrack}, {"from-root", blink.RestartFromRoot}} {
		st := node.NewMemStore()
		lt := locks.NewTable()
		rec := reclaim.New(st.Free)
		tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 4, Reclaimer: rec, Restart: pol.p})
		if err != nil {
			return err
		}
		comp := compress.NewCompressor(st, lt, 4, rec)
		comp.Attach(tr)
		n := s.n(100000)
		for i := 0; i < n; i++ {
			if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
				return err
			}
		}
		comp.Start(2)
		done := make(chan error, 1)
		go func() {
			for i := 0; i < n; i++ {
				if i%4 != 0 {
					if err := tr.Delete(base.Key(i)); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
		searches := s.n(200000)
		for i := 0; i < searches; i++ {
			k := base.Key((i * 2654435761) % n)
			if _, err := tr.Search(k); err != nil && err != base.ErrNotFound {
				return err
			}
		}
		if err := <-done; err != nil {
			return err
		}
		comp.Stop()
		stats := tr.Stats()
		ops := float64(stats.Searches + stats.Deletes + stats.Inserts)
		tbl.Add(pol.name, stats.Searches, stats.Restarts,
			fmt.Sprintf("%.5f", float64(stats.Restarts)/ops),
			fmt.Sprintf("%.4f", float64(stats.LinkHops)/ops))
	}
	tbl.Render(w)
	return nil
}

// E5Compressors measures delete-heavy throughput and residual
// underfull nodes as the number of compressor workers varies — §5.4's
// "dynamically change the number of compression processes".
func E5Compressors(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E5: compressor scaling on a delete-heavy mix (4 mutator goroutines)",
		Headers: []string{"compressors", "ops/s", "underfull after", "queue left", "merges"},
		Notes:   []string{"paper: any number of compression processes may run concurrently (Thm 2)"},
	}
	for _, nComp := range []int{0, 1, 2, 4, 8} {
		st := node.NewMemStore()
		lt := locks.NewTable()
		rec := reclaim.New(st.Free)
		tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 8, Reclaimer: rec})
		if err != nil {
			return err
		}
		var comp *compress.Compressor
		if nComp > 0 {
			comp = compress.NewCompressor(st, lt, 8, rec)
			comp.Attach(tr)
			comp.Start(nComp)
		}
		n := s.n(100000)
		for i := 0; i < n; i++ {
			if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
				return err
			}
		}
		start := time.Now()
		var total uint64
		errCh := make(chan error, 4)
		doneCh := make(chan uint64, 4)
		for wkr := 0; wkr < 4; wkr++ {
			go func(wkr int) {
				gen, err := workload.NewGenerator(int64(wkr), workload.Uniform{N: uint64(n)}, workload.DeleteHeavy)
				if err != nil {
					errCh <- err
					return
				}
				ops := uint64(0)
				for i := 0; i < s.n(50000); i++ {
					if _, err := workload.Apply(tr, gen.Next()); err != nil {
						errCh <- err
						return
					}
					ops++
				}
				doneCh <- ops
			}(wkr)
		}
		for i := 0; i < 4; i++ {
			select {
			case err := <-errCh:
				return err
			case ops := <-doneCh:
				total += ops
			}
		}
		elapsed := time.Since(start)
		queueLeft, merges := 0, uint64(0)
		if comp != nil {
			queueLeft = comp.Queue().Len()
			merges = comp.Stats().Merges.Load()
			comp.Stop()
		}
		occ, err := tr.OccupancyStats()
		if err != nil {
			return err
		}
		tbl.Add(nComp, fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
			occ.Underfull, queueLeft, merges)
	}
	tbl.Render(w)
	return nil
}

// E6Deadlock stresses the Theorem 2 lock pattern — inserts, deletes and
// compressors together — under a watchdog: if anything deadlocks, the
// run never finishes; the table reports the lock high-water marks.
func E6Deadlock(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E6: deadlock-freedom stress (Theorem 2)",
		Headers: []string{"ops completed", "tree max locks", "compressor max locks", "watchdog"},
	}
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 2, Reclaimer: rec})
	if err != nil {
		return err
	}
	comp := compress.NewCompressor(st, lt, 2, rec)
	comp.Attach(tr)
	comp.Start(4)

	const workers = 8
	opsPer := s.n(30000)
	finished := make(chan struct{})
	errCh := make(chan error, workers)
	go func() {
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				gen, err := workload.NewGenerator(int64(wkr)*31, workload.Uniform{N: 5000}, workload.WriteOnly)
				if err != nil {
					errCh <- err
					return
				}
				for i := 0; i < opsPer; i++ {
					if _, err := workload.Apply(tr, gen.Next()); err != nil {
						errCh <- err
						return
					}
				}
			}(wkr)
		}
		wg.Wait()
		close(finished)
	}()
	watchdog := time.After(5 * time.Minute)
	select {
	case <-finished:
	case err := <-errCh:
		return err
	case <-watchdog:
		return fmt.Errorf("E6: watchdog fired — possible deadlock")
	}
	comp.Stop()
	stats := tr.Stats()
	fp := comp.Stats().Footprint.Snapshot()
	maxTree := stats.InsertLocks.MaxHeld
	if stats.DeleteLocks.MaxHeld > maxTree {
		maxTree = stats.DeleteLocks.MaxHeld
	}
	tbl.Add(workers*opsPer, maxTree, fp.MaxHeld, "passed")
	tbl.Notes = append(tbl.Notes, "updates ≤ 1 lock, compression ≤ 3 locks: the Theorem 2 acyclicity conditions")
	tbl.Render(w)
	return tr.Check()
}

// E7LinkChase measures how often searches traverse right links — the
// price of the B-link design the paper argues is "more than compensated"
// by lock avoidance (§1).
func E7LinkChase(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E7: link chases per search vs insert pressure (8 goroutines)",
		Headers: []string{"mix", "searches", "link hops", "hops/op", "restarts"},
	}
	for _, mx := range []struct {
		name string
		mix  workload.Mix
	}{
		{"read-only", workload.ReadOnly},
		{"read-mostly", workload.ReadMostly},
		{"balanced", workload.Balanced},
		{"insert-heavy", workload.InsertHeavy},
	} {
		res, err := Run(RunConfig{
			Kind: KindSagiv, K: 4, Workers: 8,
			OpsPerWorker: s.n(50000),
			Preload:      s.n(20000), KeySpace: 1 << 17,
			Mix: mx.mix, Seed: 7,
		})
		if err != nil {
			return err
		}
		tbl.Add(mx.name, res.Searches, res.LinkHops,
			fmt.Sprintf("%.4f", float64(res.LinkHops)/float64(res.Ops)), res.Restarts)
	}
	tbl.Render(w)
	return nil
}

// E12Durability measures what crash safety costs: upsert throughput of
// WAL-backed (group-commit fsync per acknowledged op) versus volatile
// configurations across writer counts, single tree and 8-way sharded.
// The durability tax is the ratio within a column; the group-commit
// story is the trend across columns — as concurrent writers grow, more
// records share each fsync (the reported mean group size) and durable
// throughput closes on volatile, the same amortization ApplyBatch
// performs for descents.
func E12Durability(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E12: durable vs volatile upsert throughput (ops/s) by concurrent writers",
		Headers: []string{"config", "w=1", "w=8", "w=64", "group@64"},
		Notes: []string{
			"durable = group-commit WAL, every op acked after fsync; group@64 is the",
			"mean records per fsync at 64 writers — the amortization factor",
		},
	}
	for _, cfg := range []struct {
		name    string
		shards  int
		durable bool
	}{
		{"tree/volatile", 1, false},
		{"tree/durable", 1, true},
		{"sharded8/volatile", 8, false},
		{"sharded8/durable", 8, true},
	} {
		row := []any{cfg.name}
		var group float64
		for _, workers := range []int{1, 8, 64} {
			tput, g, err := e12Cell(cfg.shards, cfg.durable, workers, s.n(60000))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", tput))
			group = g
		}
		if cfg.durable {
			row = append(row, fmt.Sprintf("%.1f", group))
		} else {
			row = append(row, "-")
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
	return nil
}

// e12Cell runs one E12 cell: workers goroutines upserting totalOps
// golden-ratio-scattered keys into a fresh router, volatile or
// WAL-backed, returning throughput and the achieved mean group size.
func e12Cell(shards int, durable bool, workers, totalOps int) (float64, float64, error) {
	opts := shard.Options{MinPairs: 16}
	if durable {
		dir, err := os.MkdirTemp("", "blinktree-e12")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		opts.Durable, opts.Dir = true, dir
	}
	r, err := shard.NewRouter(shards, opts)
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	opsPer := totalOps / workers
	if opsPer < 1 {
		opsPer = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := base.Key(uint64(i*workers+wk) * 11400714819323198485)
				if _, _, err := r.Upsert(k, base.Value(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	st, err := r.Stats()
	if err != nil {
		return 0, 0, err
	}
	return float64(opsPer*workers) / elapsed.Seconds(), st.WAL.MeanGroup(), nil
}

// E8Reclamation measures retired/freed page flow under churn with
// periodic Collects (§5.3).
func E8Reclamation(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E8: deleted-page reclamation under churn (§5.3)",
		Headers: []string{"phase", "pages", "retired", "freed", "limbo"},
	}
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 4, Reclaimer: rec})
	if err != nil {
		return err
	}
	comp := compress.NewCompressor(st, lt, 4, rec)
	comp.Attach(tr)
	n := s.n(100000)
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			return err
		}
	}
	snap := func(phase string) {
		rs := rec.Stats()
		tbl.Add(phase, st.Pages(), rs.Retired, rs.Freed, rs.Limbo)
	}
	snap("after load")
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := tr.Delete(base.Key(i)); err != nil {
				return err
			}
		}
	}
	snap("after 90% deletes")
	if err := comp.DrainOnce(); err != nil {
		return err
	}
	snap("after compression (no collect)")
	if _, err := rec.Collect(); err != nil {
		return err
	}
	snap("after collect")
	sc := compress.NewScanner(st, lt, 4, rec)
	if err := sc.Compact(); err != nil {
		return err
	}
	if _, err := rec.Collect(); err != nil {
		return err
	}
	snap("after full compaction + collect")
	tbl.Render(w)
	return nil
}
