package harness

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/client"
	"blinktree/internal/repl"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// E14Replication measures what asynchronous replication delivers and
// what it costs: follower read throughput while the primary takes
// writes, the replication lag those writes produce, and how fast the
// follower drains once writes stop. One primary and one follower run
// in-process (both durable — the promotable configuration), connected
// over TCP loopback exactly as production would be: the primary serves
// the wire protocol, the follower streams its WAL, and reads go to the
// follower through a read-only server via the client package.
//
// The claim under test: a follower serves reads at full speed
// regardless of the primary's write rate (replication applies writes
// through the same shard-parallel batch path, so reads contend only
// per-shard), while lag stays bounded by the shipping pipeline, not
// the write volume — and drains to zero promptly when writes pause.
func E14Replication(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E14: replication — follower reads and lag vs primary write rate × shards",
		Headers: []string{"config", "write ops/s", "follower read ops/s", "lag mean", "lag max", "catch-up ms"},
		Notes: []string{
			"primary + durable follower over TCP loopback; writes = batched upserts to the",
			"primary, reads = point searches on the read-only follower (4 goroutines); lag",
			"sampled every 10ms in records (primary WAL appends - follower applied);",
			"catch-up = drain time to lag 0 after writes stop.",
		},
	}
	for _, shards := range []int{1, 8} {
		for _, load := range []struct {
			name  string
			total int
		}{
			{"idle", 0},
			{"moderate", s.n(30000)},
			{"heavy", s.n(120000)},
		} {
			row, err := e14Cell(shards, load.total)
			if err != nil {
				return err
			}
			tbl.Add(append([]any{fmt.Sprintf("%s s=%d", load.name, shards)}, row...)...)
		}
	}
	tbl.Render(w)
	return nil
}

// e14Cell runs one primary/follower pair and returns the measured row:
// write rate, follower read rate, mean lag, max lag, catch-up ms.
func e14Cell(shards, writeOps int) ([]any, error) {
	pdir, err := os.MkdirTemp("", "e14-primary")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(pdir)
	fdir, err := os.MkdirTemp("", "e14-follower")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(fdir)

	quiet := func(string, ...any) {}
	rp, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Durable: true, Dir: pdir})
	if err != nil {
		return nil, err
	}
	defer rp.Close()
	sp := server.New(rp, server.Config{Addr: "127.0.0.1:0", Logf: quiet})
	if err := sp.Start(); err != nil {
		return nil, err
	}
	defer sp.Close()

	rf, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Durable: true, Dir: fdir})
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	fl, err := repl.NewFollower(rf, repl.FollowerConfig{Primary: sp.Addr().String(), Dir: fdir, Logf: quiet})
	if err != nil {
		return nil, err
	}
	fl.Start()
	defer fl.Stop()
	sf := server.New(rf, server.Config{Addr: "127.0.0.1:0", ReadOnly: true, OnPromote: fl.Stop, Logf: quiet})
	if err := sf.Start(); err != nil {
		return nil, err
	}
	defer sf.Close()

	ctx := context.Background()
	clP, err := client.Dial(sp.Addr().String(), client.Options{Conns: 2})
	if err != nil {
		return nil, err
	}
	defer clP.Close()
	clF, err := client.Dial(sf.Addr().String(), client.Options{Conns: 2})
	if err != nil {
		return nil, err
	}
	defer clF.Close()

	// Preload so follower reads have something to hit, and wait for
	// the bootstrap to converge before measuring.
	const preload = 4096
	key := func(i int) client.Key { return client.Key(uint64(i) * 11400714819323198485) }
	pre := make([]client.Op, 0, 256)
	for i := 0; i < preload; i += 256 {
		pre = pre[:0]
		for j := i; j < i+256 && j < preload; j++ {
			pre = append(pre, client.Op{Kind: client.OpUpsert, Key: key(j), Value: client.Value(j)})
		}
		if _, err := clP.Batch(ctx, pre); err != nil {
			return nil, err
		}
	}
	primaryRecords := func() uint64 {
		var n uint64
		for i := 0; i < shards; i++ {
			n += rp.Engine(i).WAL().Stats().Records
		}
		return n
	}
	deadline := time.Now().Add(30 * time.Second)
	for fl.Stats().Applied < primaryRecords() {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("e14: follower never caught up with the preload")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Measurement window: writers (if any) + follower readers + lag
	// sampler run together; the window ends when the writer finishes
	// (or after 500ms when idle).
	var reads atomic.Uint64
	writersDone := make(chan struct{})
	stopReads := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				if _, err := clF.Search(ctx, key(i%preload)); err != nil {
					return
				}
				i += 7
				reads.Add(1)
			}
		}(g)
	}
	var lagSum, lagMax, lagSamples uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-writersDone:
				return
			case <-tick.C:
				p, a := primaryRecords(), fl.Stats().Applied
				lag := uint64(0)
				if p > a {
					lag = p - a
				}
				lagSum += lag
				lagSamples++
				if lag > lagMax {
					lagMax = lag
				}
			}
		}
	}()

	start := time.Now()
	written := 0
	if writeOps > 0 {
		ops := make([]client.Op, 64)
		for written < writeOps {
			n := min(64, writeOps-written)
			for j := 0; j < n; j++ {
				ops[j] = client.Op{Kind: client.OpUpsert, Key: key((written + j) % preload), Value: client.Value(j)}
			}
			if _, err := clP.Batch(ctx, ops[:n]); err != nil {
				return nil, err
			}
			written += n
		}
	} else {
		time.Sleep(500 * time.Millisecond)
	}
	writeWindow := time.Since(start)
	close(writersDone)

	// Catch-up: writes have stopped; how long until lag drains?
	catchStart := time.Now()
	target := primaryRecords()
	for fl.Stats().Applied < target {
		if time.Since(catchStart) > 30*time.Second {
			return nil, fmt.Errorf("e14: follower never drained")
		}
		time.Sleep(time.Millisecond)
	}
	catchup := time.Since(catchStart)
	close(stopReads)
	wg.Wait()

	writeRate := "0"
	if writeOps > 0 {
		writeRate = fmt.Sprintf("%.0f", float64(written)/writeWindow.Seconds())
	}
	lagMean := float64(0)
	if lagSamples > 0 {
		lagMean = float64(lagSum) / float64(lagSamples)
	}
	return []any{
		writeRate,
		fmt.Sprintf("%.0f", float64(reads.Load())/writeWindow.Seconds()),
		fmt.Sprintf("%.0f", lagMean),
		fmt.Sprintf("%d", lagMax),
		fmt.Sprintf("%.1f", float64(catchup.Microseconds())/1000),
	}, nil
}
