package harness

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/shard"
	"blinktree/internal/storage"
)

// E15DiskNative measures what disk-native serving costs: random point
// reads through the bounded buffer pool at several cache-to-dataset
// ratios, against the same engine fully in memory. Every configuration
// preloads the same golden-ratio-scattered keys, runs one warmup pass
// so the pool reaches its steady state, then times concurrent readers.
//
// The claim under test: with the cache fully warm (ratio 100%, every
// page resident after warmup) disk-native reads land within ~3x of the
// in-memory engine — the pool's pin/latch accounting and the LRU
// bookkeeping are the whole overhead — and throughput degrades
// smoothly, not catastrophically, as the budget shrinks and misses
// force demand fault-ins.
func E15DiskNative(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E15: disk-native random point reads (reads/s) vs in-memory, by cache ratio",
		Headers: []string{"config", "in-memory", "disk 100%", "disk 50%", "disk 10%", "disk 5%"},
		Notes: []string{
			"Same scattered preload everywhere; 8 reader goroutines; pool budget set to",
			"the named fraction of the measured on-disk footprint, split across shards.",
			"disk 100% after warmup = every page resident: the pool bookkeeping overhead.",
		},
	}
	ratios := []float64{-1, 1.0, 0.5, 0.10, 0.05} // -1 = no pool
	for _, shards := range []int{1, 8} {
		keys := s.n(120000)
		readOps := s.n(400000)
		row := []any{fmt.Sprintf("s=%d", shards)}
		for _, ratio := range ratios {
			tput, err := e15Cell(shards, ratio, keys, readOps)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", tput))
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
	return nil
}

// e15Cell preloads keys scattered pairs and times readOps random point
// reads from 8 goroutines. ratio < 0 runs the plain in-memory engine;
// otherwise the engine is disk-native with a pool budget of ratio
// times the measured page footprint, divided evenly across shards.
func e15Cell(shards int, ratio float64, keys, readOps int) (float64, error) {
	key := func(i int) base.Key { return base.Key(uint64(i) * 11400714819323198485) }
	opts := shard.Options{MinPairs: 16}
	if ratio >= 0 {
		// Size the budget against the real footprint: preload the same
		// keys into a throwaway in-memory router and count its live
		// nodes (one page each).
		probe, err := shard.NewRouter(shards, shard.Options{MinPairs: 16})
		if err != nil {
			return 0, err
		}
		if err := e15Preload(probe, keys, key); err != nil {
			probe.Close()
			return 0, err
		}
		st, err := probe.Stats()
		probe.Close()
		if err != nil {
			return 0, err
		}
		opts.DiskNative = true
		opts.CacheBytes = int64(ratio*float64(st.Occupancy.Nodes)*storage.DefaultPageSize) / int64(shards)
	}
	r, err := shard.NewRouter(shards, opts)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	if err := e15Preload(r, keys, key); err != nil {
		return 0, err
	}

	const readers = 8
	run := func(ops int, timed bool) (float64, error) {
		var wg sync.WaitGroup
		errCh := make(chan error, readers)
		per := ops / readers
		if per < 1 {
			per = 1
		}
		start := time.Now()
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)*2654435761 + 7))
				for i := 0; i < per; i++ {
					raw := rng.Intn(keys)
					if _, err := r.Search(key(raw)); err != nil {
						errCh <- fmt.Errorf("e15: key %d: %w", raw, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		if !timed {
			return 0, nil
		}
		return float64(per*readers) / elapsed.Seconds(), nil
	}
	// Warmup pass: fill the pool to steady state (or prove it can't).
	if _, err := run(readOps/4, false); err != nil {
		return 0, err
	}
	return run(readOps, true)
}

// e15Preload upserts keys scattered pairs through the batch path.
func e15Preload(r *shard.Router, keys int, key func(int) base.Key) error {
	const batch = 512
	ops := make([]shard.Op, 0, batch)
	for i := 0; i < keys; i += batch {
		ops = ops[:0]
		for j := i; j < i+batch && j < keys; j++ {
			ops = append(ops, shard.Op{Kind: shard.OpUpsert, Key: key(j), Value: base.Value(j)})
		}
		for _, res := range r.ApplyBatch(ops) {
			if res.Err != nil {
				return res.Err
			}
		}
	}
	return nil
}
