// Package harness runs the evaluation experiments E1–E8 of DESIGN.md:
// it builds each index implementation over a common substrate, drives
// deterministic workloads at varying concurrency, and prints the report
// tables that EXPERIMENTS.md records. The paper (PODS 1985) predates
// empirical evaluations, so each experiment operationalizes one of its
// quantitative claims.
package harness

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/baseline/coarse"
	"blinktree/internal/baseline/lehmanyao"
	"blinktree/internal/baseline/lockcoupling"
	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/locks"
	"blinktree/internal/metrics"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/workload"
)

// Kind names an index implementation.
type Kind string

// The four contenders.
const (
	KindSagiv        Kind = "sagiv"
	KindLehmanYao    Kind = "lehmanyao"
	KindLockCoupling Kind = "lockcoupling"
	KindCoarse       Kind = "coarse"
)

// AllKinds lists every implementation in report order.
var AllKinds = []Kind{KindSagiv, KindLehmanYao, KindLockCoupling, KindCoarse}

// Instance bundles a tree with its substrate handles (where they
// exist) so experiments can attach compressors and read footprints.
type Instance struct {
	Kind Kind
	Tree base.Tree

	// Sagiv-only handles.
	Blink      *blink.Tree
	Store      node.Store
	Locks      locks.Locker
	Reclaimer  *reclaim.Reclaimer
	Compressor *compress.Compressor

	// Baseline handles for stats.
	LY *lehmanyao.Tree
	LC *lockcoupling.Tree
}

// Build constructs an instance of kind with branching parameter k. For
// the Sagiv tree, withCompression attaches a queue compressor (not yet
// started).
func Build(kind Kind, k int, withCompression bool) (*Instance, error) {
	switch kind {
	case KindSagiv:
		st := node.NewMemStore()
		lt := locks.NewTable()
		rec := reclaim.New(st.Free)
		tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: k, Reclaimer: rec, Restart: blink.RestartBacktrack})
		if err != nil {
			return nil, err
		}
		inst := &Instance{Kind: kind, Tree: tr, Blink: tr, Store: st, Locks: lt, Reclaimer: rec}
		if withCompression {
			inst.Compressor = compress.NewCompressor(st, lt, k, rec)
			inst.Compressor.Attach(tr)
		}
		return inst, nil
	case KindLehmanYao:
		tr, err := lehmanyao.New(lehmanyao.Config{MinPairs: k})
		if err != nil {
			return nil, err
		}
		return &Instance{Kind: kind, Tree: tr, LY: tr}, nil
	case KindLockCoupling:
		tr, err := lockcoupling.New(k)
		if err != nil {
			return nil, err
		}
		return &Instance{Kind: kind, Tree: tr, LC: tr}, nil
	case KindCoarse:
		tr, err := coarse.New(k)
		if err != nil {
			return nil, err
		}
		return &Instance{Kind: kind, Tree: tr}, nil
	default:
		return nil, fmt.Errorf("harness: unknown kind %q", kind)
	}
}

// RunConfig describes one measured run.
type RunConfig struct {
	Kind         Kind
	K            int // branching parameter (MinPairs / degree)
	Workers      int
	OpsPerWorker int
	Preload      int // keys inserted (sequentially scattered) before timing
	KeySpace     uint64
	Mix          workload.Mix
	Dist         workload.KeyDist // nil = Uniform{KeySpace}
	Compression  bool             // Sagiv only: background compressor workers
	CompWorkers  int
	Seed         int64
}

// Result is the outcome of one run.
type Result struct {
	Cfg        RunConfig
	Elapsed    time.Duration
	Ops        uint64
	Throughput float64 // ops per second
	Latency    metrics.Histogram

	// Footprints (zero when the implementation lacks them).
	InsertMaxLocks, DeleteMaxLocks uint64
	SearchMaxLocks                 uint64
	MeanInsertLocks                float64

	// Sagiv-specific observability.
	Restarts, LinkHops, Splits uint64
	Searches                   uint64
}

// Run executes the configured workload and returns measurements.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.K == 0 {
		cfg.K = 16
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 1 << 20
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.OpsPerWorker == 0 {
		cfg.OpsPerWorker = 10000
	}
	inst, err := Build(cfg.Kind, cfg.K, cfg.Compression)
	if err != nil {
		return nil, err
	}
	defer inst.Tree.Close()

	// Preload with keys spread over the key space.
	if cfg.Preload > 0 {
		stride := cfg.KeySpace / uint64(cfg.Preload)
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < cfg.Preload; i++ {
			k := base.Key(uint64(i) * stride)
			if err := inst.Tree.Insert(k, base.Value(k)); err != nil && err != base.ErrDuplicate {
				return nil, fmt.Errorf("preload: %w", err)
			}
		}
	}
	if inst.Compressor != nil && cfg.Compression {
		w := cfg.CompWorkers
		if w <= 0 {
			w = 1
		}
		inst.Compressor.Start(w)
		defer inst.Compressor.Stop()
	}

	res := &Result{Cfg: cfg}
	var ops metrics.Counter
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dist := cfg.Dist
			if dist == nil {
				dist = workload.Uniform{N: cfg.KeySpace}
			}
			gen, err := workload.NewGenerator(cfg.Seed+int64(w)*1315423911, dist, cfg.Mix)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < cfg.OpsPerWorker; i++ {
				op := gen.Next()
				t0 := time.Now()
				if _, err := workload.Apply(inst.Tree, op); err != nil {
					errs <- fmt.Errorf("worker %d op %d (%v): %w", w, i, op.Kind, err)
					return
				}
				res.Latency.Observe(time.Since(t0))
				ops.Inc()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.Ops = ops.Load()
	res.Throughput = ops.Rate(res.Elapsed)

	switch {
	case inst.Blink != nil:
		st := inst.Blink.Stats()
		res.InsertMaxLocks = st.InsertLocks.MaxHeld
		res.DeleteMaxLocks = st.DeleteLocks.MaxHeld
		res.MeanInsertLocks = st.InsertLocks.MeanMaxHeld
		res.Restarts = st.Restarts
		res.LinkHops = st.LinkHops
		res.Splits = st.Splits
		res.Searches = st.Searches
	case inst.LY != nil:
		st := inst.LY.Stats()
		res.InsertMaxLocks = st.InsertLocks.MaxHeld
		res.DeleteMaxLocks = st.DeleteLocks.MaxHeld
		res.MeanInsertLocks = st.InsertLocks.MeanMaxHeld
		res.LinkHops = st.LinkHops
		res.Splits = st.Splits
		res.Searches = st.Searches
	case inst.LC != nil:
		st := inst.LC.Stats()
		res.InsertMaxLocks = st.InsertLocks.MaxHeld
		res.DeleteMaxLocks = st.DeleteLocks.MaxHeld
		res.SearchMaxLocks = st.SearchLocks.MaxHeld
		res.MeanInsertLocks = st.InsertLocks.MeanMaxHeld
		res.Splits = st.Splits
		res.Searches = st.Searches
	}
	return res, nil
}

// Table accumulates rows and renders an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// capture, when set, receives every table as it renders — the hook
// sagivbench uses to emit machine-readable results next to the text
// report without threading a collector through every experiment.
var capture func(*Table)

// SetCapture installs fn to observe every rendered table (nil
// uninstalls). Not safe to change while experiments run.
func SetCapture(fn func(*Table)) { capture = fn }

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	if capture != nil {
		capture(t)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
