package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/shard"
)

// E17Verify measures what the integrity layer costs where it hurts
// most: write throughput, across writer counts and shard counts. Every
// mutation in verified mode marks its leaf bucket dirty and a
// background hasher re-hashes dirty buckets, so the tax is one overlay
// mark per write plus the rehash work racing the writers. Volatile
// engines isolate that tax from the (much larger) group-commit fsync
// cost.
//
// The claim under test: verified-mode write throughput stays within
// ~2x of unverified at 8 shards — root maintenance amortizes, because
// a bucket re-hash covers every write that dirtied it since the last
// pass (the rehashes column vs total writes is that amortization).
func E17Verify(w io.Writer, s Scale) error {
	tbl := &Table{
		Title:   "E17: verified-mode write overhead (Merkle root maintenance), upsert ops/s",
		Headers: []string{"config", "w=1", "w=8", "w=64", "rehashes@64"},
		Notes: []string{
			"verified = every write marks its hash bucket dirty, a background hasher",
			"re-hashes marked buckets; rehashes@64 counts bucket re-hashes during the",
			"64-writer cell — each covers all writes to that bucket since the last pass",
		},
	}
	for _, cfg := range []struct {
		name     string
		shards   int
		verified bool
	}{
		{"tree/unverified", 1, false},
		{"tree/verified", 1, true},
		{"sharded8/unverified", 8, false},
		{"sharded8/verified", 8, true},
	} {
		row := []any{cfg.name}
		var rehashes uint64
		for _, workers := range []int{1, 8, 64} {
			tput, rh, err := e17Cell(cfg.shards, cfg.verified, workers, s.n(60000))
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", tput))
			rehashes = rh
		}
		if cfg.verified {
			row = append(row, fmt.Sprintf("%d", rehashes))
		} else {
			row = append(row, "-")
		}
		tbl.Add(row...)
	}
	tbl.Render(w)
	return nil
}

// e17Cell runs one E17 cell: workers goroutines upserting totalOps
// golden-ratio-scattered keys into a fresh volatile router, with or
// without the integrity layer, returning throughput and the number of
// bucket re-hashes the background hasher performed.
func e17Cell(shards int, verified bool, workers, totalOps int) (float64, uint64, error) {
	// A fast rehash interval makes the background hasher genuinely
	// race the writers — the honest worst case for the overhead claim.
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Verified: verified,
		RehashEvery: 2 * time.Millisecond})
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	opsPer := totalOps / workers
	if opsPer < 1 {
		opsPer = 1
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := base.Key(uint64(i*workers+wk) * 11400714819323198485)
				if _, _, err := r.Upsert(k, base.Value(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	st, err := r.Stats()
	if err != nil {
		return 0, 0, err
	}
	return float64(opsPer*workers) / elapsed.Seconds(), st.VerifyRehashes, nil
}
