package harness

import (
	"bytes"
	"strings"
	"testing"

	"blinktree/internal/workload"
)

func TestBuildAllKinds(t *testing.T) {
	for _, kind := range AllKinds {
		inst, err := Build(kind, 4, kind == KindSagiv)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := inst.Tree.Insert(1, 10); err != nil {
			t.Fatalf("%s insert: %v", kind, err)
		}
		if v, err := inst.Tree.Search(1); err != nil || v != 10 {
			t.Fatalf("%s search: (%d,%v)", kind, v, err)
		}
		if err := inst.Tree.Close(); err != nil {
			t.Fatalf("%s close: %v", kind, err)
		}
	}
	if _, err := Build(Kind("nonsense"), 4, false); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	for _, kind := range AllKinds {
		res, err := Run(RunConfig{
			Kind: kind, K: 4, Workers: 4, OpsPerWorker: 500,
			Preload: 500, KeySpace: 4096,
			Mix: workload.Balanced, Seed: 9,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.Ops != 2000 {
			t.Fatalf("%s ops = %d", kind, res.Ops)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%s throughput = %f", kind, res.Throughput)
		}
		if res.Latency.Count() != res.Ops {
			t.Fatalf("%s latency count %d != ops %d", kind, res.Latency.Count(), res.Ops)
		}
	}
}

func TestRunFootprintsExposed(t *testing.T) {
	res, err := Run(RunConfig{
		Kind: KindSagiv, K: 2, Workers: 2, OpsPerWorker: 2000,
		KeySpace: 2000, Mix: workload.InsertHeavy, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InsertMaxLocks != 1 {
		t.Fatalf("sagiv insert max locks = %d", res.InsertMaxLocks)
	}
	res, err = Run(RunConfig{
		Kind: KindLockCoupling, K: 2, Workers: 2, OpsPerWorker: 2000,
		KeySpace: 2000, Mix: workload.InsertHeavy, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InsertMaxLocks < 2 {
		t.Fatalf("coupling insert max locks = %d", res.InsertMaxLocks)
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "long-header"}}
	tbl.Add("x", 1)
	tbl.Add("yyyy", 2.5)
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-header", "yyyy", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsSmoke runs every experiment at a tiny scale; this is
// the integration test that the whole evaluation pipeline works.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke is not short")
	}
	var buf bytes.Buffer
	const s = Scale(0.01)
	steps := []struct {
		name string
		fn   func() error
	}{
		{"E1", func() error { return E1Throughput(&buf, s) }},
		{"E1b", func() error { return E1DiskThroughput(&buf, s) }},
		{"E2", func() error { return E2LockFootprint(&buf, s) }},
		{"E3", func() error { return E3Compression(&buf, s) }},
		{"E4", func() error { return E4RestartRate(&buf, s) }},
		{"E5", func() error { return E5Compressors(&buf, s) }},
		{"E6", func() error { return E6Deadlock(&buf, s) }},
		{"E7", func() error { return E7LinkChase(&buf, s) }},
		{"E8", func() error { return E8Reclamation(&buf, s) }},
		{"E12", func() error { return E12Durability(&buf, s) }},
	}
	for _, st := range steps {
		if err := st.fn(); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if !strings.Contains(buf.String(), st.name+":") {
			t.Fatalf("%s produced no table:\n%s", st.name, buf.String())
		}
	}
}
