package baseline_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

// outcome normalizes an operation result for cross-implementation
// comparison.
type outcome struct {
	kind  string
	value base.Value
}

func doOp(tr base.Tree, kind uint8, k base.Key) (outcome, error) {
	// Values are derived deterministically from kind and key so that
	// all implementations receive identical sequences and upserted
	// values vary across repeated visits to the same key.
	v := base.Value(k)*3 + base.Value(kind) + 1
	switch kind % 8 {
	case 0:
		err := tr.Insert(k, v)
		switch {
		case err == nil:
			return outcome{kind: "inserted"}, nil
		case errors.Is(err, base.ErrDuplicate):
			return outcome{kind: "duplicate"}, nil
		default:
			return outcome{}, err
		}
	case 1:
		err := tr.Delete(k)
		switch {
		case err == nil:
			return outcome{kind: "deleted"}, nil
		case errors.Is(err, base.ErrNotFound):
			return outcome{kind: "absent"}, nil
		default:
			return outcome{}, err
		}
	case 2:
		old, existed, err := tr.Upsert(k, v)
		if err != nil {
			return outcome{}, err
		}
		if existed {
			return outcome{kind: "upserted-over", value: old}, nil
		}
		return outcome{kind: "upserted-new"}, nil
	case 3:
		got, loaded, err := tr.GetOrInsert(k, v)
		if err != nil {
			return outcome{}, err
		}
		if loaded {
			return outcome{kind: "loaded", value: got}, nil
		}
		return outcome{kind: "stored", value: got}, nil
	case 4:
		got, err := tr.Update(k, func(cur base.Value) base.Value { return cur + 7 })
		switch {
		case err == nil:
			return outcome{kind: "updated", value: got}, nil
		case errors.Is(err, base.ErrNotFound):
			return outcome{kind: "update-missing"}, nil
		default:
			return outcome{}, err
		}
	case 5:
		// Expected value right half the time (whenever the key's value
		// was last written by an op that stored v for this kind-class).
		ok, err := tr.CompareAndSwap(k, v, v+1)
		switch {
		case err == nil:
			return outcome{kind: fmt.Sprintf("cas=%v", ok)}, nil
		case errors.Is(err, base.ErrNotFound):
			return outcome{kind: "cas-missing"}, nil
		default:
			return outcome{}, err
		}
	case 6:
		ok, err := tr.CompareAndDelete(k, v)
		switch {
		case err == nil:
			return outcome{kind: fmt.Sprintf("cad=%v", ok)}, nil
		case errors.Is(err, base.ErrNotFound):
			return outcome{kind: "cad-missing"}, nil
		default:
			return outcome{}, err
		}
	default:
		v, err := tr.Search(k)
		switch {
		case err == nil:
			return outcome{kind: "found", value: v}, nil
		case errors.Is(err, base.ErrNotFound):
			return outcome{kind: "missing"}, nil
		default:
			return outcome{}, err
		}
	}
}

// TestDifferentialAllTrees applies identical random op sequences — the
// paper's three operations plus every conditional write — to all four
// implementations and demands bit-identical outcomes — Theorem 1's
// data equivalence checked across independent codebases.
func TestDifferentialAllTrees(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
	}
	f := func(ops []op) bool {
		impls := trees2()
		names := []string{"sagiv", "lehmanyao", "lockcoupling", "coarse"}
		for i, o := range ops {
			k := base.Key(o.Key % 700)
			ref, err := doOp(impls[names[0]], o.Kind, k)
			if err != nil {
				return false
			}
			for _, name := range names[1:] {
				got, err := doOp(impls[name], o.Kind, k)
				if err != nil || got != ref {
					fmt.Printf("divergence at op %d (%v on %d): %s=%v vs %s=%v\n",
						i, o.Kind%8, k, names[0], ref, name, got)
					return false
				}
			}
		}
		// Final state identical: lengths and full scans (pairs, not
		// just keys — upserted values must agree too).
		refLen := impls[names[0]].Len()
		var refScan []base.Item
		_ = impls[names[0]].Range(0, 1000, func(k base.Key, v base.Value) bool {
			refScan = append(refScan, base.Item{Key: k, Value: v})
			return true
		})
		for _, name := range names[1:] {
			if impls[name].Len() != refLen {
				return false
			}
			var scan []base.Item
			_ = impls[name].Range(0, 1000, func(k base.Key, v base.Value) bool {
				scan = append(scan, base.Item{Key: k, Value: v})
				return true
			})
			if len(scan) != len(refScan) {
				return false
			}
			for i := range scan {
				if scan[i] != refScan[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// trees2 builds the four implementations without a *testing.T (usable
// inside quick.Check).
func trees2() map[string]base.Tree {
	out := map[string]base.Tree{}
	for _, name := range []string{"sagiv", "lehmanyao", "lockcoupling", "coarse"} {
		out[name] = mustTree(name)
	}
	return out
}
