package lockcoupling

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
)

func TestBasics(t *testing.T) {
	tr, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 11); !errors.Is(err, base.ErrDuplicate) {
		t.Fatal("dup accepted")
	}
	if v, err := tr.Search(1); err != nil || v != 10 {
		t.Fatalf("search = (%d,%v)", v, err)
	}
	if err := tr.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(1); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("double delete")
	}
	_ = tr.Close()
	if err := tr.Insert(2, 2); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed accepted insert")
	}
}

// TestScanVersusDeleteNoDeadlock is the regression test for the sibling
// lock-ordering rule: leaf-chain scans (rightward shared locks) must
// never deadlock against deletes that merge with siblings. Before the
// left-sibling locks were reordered, this interleaving could cycle.
func TestScanVersusDeleteNoDeadlock(t *testing.T) {
	tr, _ := New(2)
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		// Continuous full scans.
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 60; i++ {
					last := -1
					_ = tr.Range(0, n, func(k base.Key, v base.Value) bool {
						if int(k) <= last {
							t.Errorf("scan order violated")
							return false
						}
						last = int(k)
						return true
					})
				}
			}()
		}
		// Deleters chew through the key space, forcing merges at the
		// rightmost-child path (the left-sibling case).
		for d := 0; d < 3; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				for i := d; i < n; i += 3 {
					if i%10 == 0 {
						continue // leave some keys
					}
					if err := tr.Delete(base.Key(i)); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}(d)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: scan vs delete never finished")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedAgainstModel(t *testing.T) {
	tr, _ := New(3)
	const workers = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 3000; i++ {
				k := base.Key(rng.Intn(600)*workers + w) // per-worker keys
				switch rng.Intn(3) {
				case 0:
					_ = tr.Insert(k, base.Value(k)+1)
				case 1:
					_ = tr.Delete(k)
				default:
					if v, err := tr.Search(k); err == nil && v != base.Value(k)+1 {
						t.Errorf("foreign value")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndFootprint(t *testing.T) {
	tr, _ := New(2)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(base.Key(i), 0)
	}
	for i := 0; i < 500; i += 2 {
		_ = tr.Delete(base.Key(i))
	}
	_, _ = tr.Search(1)
	st := tr.Stats()
	if st.Inserts != 500 || st.Deletes != 250 || st.Searches != 1 {
		t.Fatalf("op counts: %+v", st)
	}
	if st.Splits == 0 {
		t.Fatal("no splits")
	}
	if st.InsertLocks.MaxHeld < 2 {
		t.Fatalf("insert footprint %d, want ≥ 2 (coupling)", st.InsertLocks.MaxHeld)
	}
	if st.SearchLocks.MaxHeld < 2 {
		t.Fatalf("search footprint %d, want ≥ 2 on multilevel tree", st.SearchLocks.MaxHeld)
	}
	if st.Merges == 0 && st.Borrows == 0 {
		t.Fatal("no rebalancing recorded")
	}
}

func TestRangeEarlyStopAndBounds(t *testing.T) {
	tr, _ := New(2)
	for i := 0; i < 100; i++ {
		_ = tr.Insert(base.Key(i*2), base.Value(i))
	}
	count := 0
	_ = tr.Range(10, 20, func(k base.Key, _ base.Value) bool {
		if k < 10 || k > 20 {
			t.Fatalf("out of range key %d", k)
		}
		count++
		return true
	})
	if count != 6 {
		t.Fatalf("count = %d", count)
	}
	count = 0
	_ = tr.Range(0, 1000, func(base.Key, base.Value) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatal("early stop failed")
	}
	if err := tr.Range(50, 10, func(base.Key, base.Value) bool { t.Fatal("inverted range"); return false }); err != nil {
		t.Fatal(err)
	}
}
