// Package lockcoupling implements the classical top-down alternative
// the paper contrasts with (the [2,3,7,12] family): a B⁺-tree where
// every process — including readers — couples locks down the tree:
// hold the parent's lock until the child's lock is granted. Writers
// take exclusive locks and preemptively split (inserts) or refill
// (deletes) children on the way down so a safe node is never revisited.
//
// Compared with B-link algorithms, readers pay for locks, writers
// exclude readers along their whole path window, and every operation
// holds two locks at once — the costs experiments E1/E2 quantify.
package lockcoupling

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
	"blinktree/internal/locks"
)

// DefaultDegree matches btree's default minimum degree.
const DefaultDegree = 16

// Tree is a lock-coupling B⁺-tree of minimum degree k (node keys in
// [k−1, 2k−1]), safe for concurrent use.
type Tree struct {
	k int

	// meta guards the root pointer. It is held only long enough to
	// latch the root node — the "lock the anchor, then the root, then
	// release the anchor" discipline.
	meta sync.RWMutex
	root *cnode

	length atomic.Int64
	closed atomic.Bool

	searches, inserts, deletes atomic.Uint64
	conds                      atomic.Uint64 // conditional writes
	splits, merges, borrows    atomic.Uint64

	searchFP, insertFP, deleteFP locks.FootprintStats
}

type cnode struct {
	mu       sync.RWMutex
	leaf     bool
	keys     []base.Key
	vals     []base.Value
	children []*cnode
	next     *cnode
}

// New returns an empty tree of minimum degree k (≥ 2).
func New(k int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("lockcoupling: k %d < 2", k)
	}
	return &Tree{k: k, root: &cnode{leaf: true}}, nil
}

func (t *Tree) maxKeys() int { return 2*t.k - 1 }
func (t *Tree) minKeys() int { return t.k - 1 }

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.length.Load()) }

// Close marks the tree closed.
func (t *Tree) Close() error {
	t.closed.Store(true)
	return nil
}

func (t *Tree) checkOpen() error {
	if t.closed.Load() {
		return base.ErrClosed
	}
	return nil
}

// tracker accounts lock footprint for one operation.
type tracker struct {
	held, maxHeld, acquires int
}

func (tk *tracker) lock() {
	tk.held++
	tk.acquires++
	if tk.held > tk.maxHeld {
		tk.maxHeld = tk.held
	}
}
func (tk *tracker) unlock() { tk.held-- }

func (n *cnode) findKey(k base.Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
	return i, i < len(n.keys) && n.keys[i] == k
}

func (n *cnode) childIndex(k base.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
}

// Search latch-couples shared locks from the root to the leaf.
func (t *Tree) Search(k base.Key) (base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, err
	}
	t.searches.Add(1)
	var tk tracker
	defer func() { t.searchFP.RecordCounts(tk.maxHeld, tk.acquires) }()

	t.meta.RLock()
	n := t.root
	n.mu.RLock()
	tk.lock()
	t.meta.RUnlock()
	for !n.leaf {
		child := n.children[n.childIndex(k)]
		child.mu.RLock() // coupled: parent still held
		tk.lock()
		n.mu.RUnlock()
		tk.unlock()
		n = child
	}
	defer func() { n.mu.RUnlock(); tk.unlock() }()
	if i, ok := n.findKey(k); ok {
		return n.vals[i], nil
	}
	return 0, base.ErrNotFound
}

// Insert latch-couples exclusive locks, splitting any full child before
// descending into it so upward propagation is never needed.
func (t *Tree) Insert(k base.Key, v base.Value) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	t.inserts.Add(1)
	var tk tracker
	defer func() { t.insertFP.RecordCounts(tk.maxHeld, tk.acquires) }()

	n := t.descendInsert(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, dup := n.findKey(k)
	if dup {
		return base.ErrDuplicate
	}
	n.insertAt(i, k, v)
	t.length.Add(1)
	return nil
}

// insertAt places (k, v) at position i of an exclusively locked leaf.
func (n *cnode) insertAt(i int, k base.Key, v base.Value) {
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
}

// descendInsert performs the insert-discipline descent — exclusive
// lock coupling with preemptive splits — and returns the locked leaf
// that admits k.
func (t *Tree) descendInsert(k base.Key, tk *tracker) *cnode {
	t.meta.Lock()
	n := t.root
	n.mu.Lock()
	tk.lock()
	if len(n.keys) == t.maxKeys() {
		// Preemptive root split while holding the meta lock.
		sep, right := t.splitNode(n)
		newRoot := &cnode{keys: []base.Key{sep}, children: []*cnode{n, right}}
		t.root = newRoot
		t.meta.Unlock()
		var child *cnode
		if k > sep {
			child = right
		} else {
			child = n
		}
		if child != n {
			child.mu.Lock()
			tk.lock()
			n.mu.Unlock()
			tk.unlock()
		}
		n = child
	} else {
		t.meta.Unlock()
	}

	for !n.leaf {
		i := n.childIndex(k)
		child := n.children[i]
		child.mu.Lock()
		tk.lock()
		if len(child.keys) == t.maxKeys() {
			sep, right := t.splitNode(child)
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = sep
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			if k > sep {
				right.mu.Lock()
				tk.lock()
				child.mu.Unlock()
				tk.unlock()
				child = right
			}
		}
		n.mu.Unlock()
		tk.unlock()
		n = child
	}
	return n
}

// descendWrite performs a value-only descent — exclusive lock coupling
// with no structural changes, sufficient for writes that cannot alter
// any node's pair count — and returns the locked leaf that admits k.
func (t *Tree) descendWrite(k base.Key, tk *tracker) *cnode {
	t.meta.RLock()
	n := t.root
	n.mu.Lock()
	tk.lock()
	t.meta.RUnlock()
	for !n.leaf {
		child := n.children[n.childIndex(k)]
		child.mu.Lock() // coupled: parent still held
		tk.lock()
		n.mu.Unlock()
		tk.unlock()
		n = child
	}
	return n
}

// splitNode splits a full, exclusively locked node; the caller holds
// (or is about to install) the parent linkage. The new right node is
// returned unlocked — it is unreachable until the caller links it.
func (t *Tree) splitNode(n *cnode) (base.Key, *cnode) {
	t.splits.Add(1)
	if n.leaf {
		m := (len(n.keys) + 1) / 2
		right := &cnode{
			leaf: true,
			keys: append([]base.Key(nil), n.keys[m:]...),
			vals: append([]base.Value(nil), n.vals[m:]...),
			next: n.next,
		}
		n.keys = n.keys[:m:m]
		n.vals = n.vals[:m:m]
		n.next = right
		return n.keys[m-1], right
	}
	m := len(n.keys) / 2
	sep := n.keys[m]
	right := &cnode{
		keys:     append([]base.Key(nil), n.keys[m+1:]...),
		children: append([]*cnode(nil), n.children[m+1:]...),
	}
	n.keys = n.keys[:m:m]
	n.children = n.children[: m+1 : m+1]
	return sep, right
}

// Delete latch-couples exclusive locks, refilling any minimal child
// (borrow or merge) before descending into it.
func (t *Tree) Delete(k base.Key) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	t.deletes.Add(1)
	var tk tracker
	defer func() { t.deleteFP.RecordCounts(tk.maxHeld, tk.acquires) }()

	n := t.descendDelete(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if !ok {
		return base.ErrNotFound
	}
	n.removeAt(i)
	t.length.Add(-1)
	return nil
}

// removeAt deletes the pair at position i of an exclusively locked leaf.
func (n *cnode) removeAt(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
}

// descendDelete performs the delete-discipline descent — exclusive
// lock coupling with preemptive refills — and returns the locked leaf
// that admits k.
func (t *Tree) descendDelete(k base.Key, tk *tracker) *cnode {
	t.meta.Lock()
	n := t.root
	n.mu.Lock()
	tk.lock()
	// Root shrink: if the root is an internal node with one child, the
	// child becomes the root (can only happen after a merge below).
	if !n.leaf && len(n.children) == 1 {
		child := n.children[0]
		t.root = child
		t.meta.Unlock()
		child.mu.Lock()
		tk.lock()
		n.mu.Unlock()
		tk.unlock()
		n = child
	} else {
		t.meta.Unlock()
	}

	for !n.leaf {
		i := n.childIndex(k)
		var child *cnode
		if i < len(n.children)-1 {
			// Not the last child: a refill, if needed, uses the RIGHT
			// sibling, so locks are acquired strictly left-to-right.
			child = n.children[i]
			child.mu.Lock()
			tk.lock()
			if len(child.keys) <= t.minKeys() {
				right := n.children[i+1]
				right.mu.Lock()
				tk.lock()
				if len(right.keys) > t.minKeys() {
					t.borrowFromRight(n, i, child, right)
					right.mu.Unlock()
					tk.unlock()
				} else {
					t.mergeInto(n, i, child, right)
					right.mu.Unlock()
					tk.unlock()
				}
			}
		} else {
			// Last child: its only sibling is to the LEFT. To keep the
			// global sibling lock order left-to-right (and so deadlock
			// free against leaf-chain scans), lock the left sibling
			// BEFORE the child — the child's occupancy cannot be
			// inspected safely without a lock, so the left lock is
			// taken speculatively.
			var left *cnode
			if i > 0 {
				left = n.children[i-1]
				left.mu.Lock()
				tk.lock()
			}
			child = n.children[i]
			child.mu.Lock()
			tk.lock()
			if left != nil && len(child.keys) <= t.minKeys() {
				if len(left.keys) > t.minKeys() {
					t.borrowFromLeft(n, i, left, child)
				} else {
					t.mergeInto(n, i-1, left, child)
					child.mu.Unlock()
					tk.unlock()
					child = left
					left = nil // descend into the merged survivor
				}
			}
			if left != nil {
				left.mu.Unlock()
				tk.unlock()
			}
		}
		n.mu.Unlock()
		tk.unlock()
		n = child
	}
	return n
}

// Upsert stores v under k, returning the previous value and whether
// one existed. It descends with the insert discipline so an absent key
// can be placed without revisiting any node.
func (t *Tree) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	if err := t.checkOpen(); err != nil {
		return 0, false, err
	}
	t.conds.Add(1)
	var tk tracker
	defer func() { t.insertFP.RecordCounts(tk.maxHeld, tk.acquires) }()
	n := t.descendInsert(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if ok {
		old := n.vals[i]
		n.vals[i] = v
		return old, true, nil
	}
	n.insertAt(i, k, v)
	t.length.Add(1)
	return 0, false, nil
}

// GetOrInsert returns the value under k, inserting v first when absent.
func (t *Tree) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	if err := t.checkOpen(); err != nil {
		return 0, false, err
	}
	t.conds.Add(1)
	var tk tracker
	defer func() { t.insertFP.RecordCounts(tk.maxHeld, tk.acquires) }()
	n := t.descendInsert(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if ok {
		return n.vals[i], true, nil
	}
	n.insertAt(i, k, v)
	t.length.Add(1)
	return v, false, nil
}

// Update replaces the value under k with fn(current), or ErrNotFound.
func (t *Tree) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, err
	}
	t.conds.Add(1)
	var tk tracker
	defer func() { t.deleteFP.RecordCounts(tk.maxHeld, tk.acquires) }()
	n := t.descendWrite(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if !ok {
		return 0, base.ErrNotFound
	}
	n.vals[i] = fn(n.vals[i])
	return n.vals[i], nil
}

// CompareAndSwap replaces the value under k with new when it equals
// old. A missing key is ErrNotFound; a mismatch is (false, nil).
func (t *Tree) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	if err := t.checkOpen(); err != nil {
		return false, err
	}
	t.conds.Add(1)
	var tk tracker
	defer func() { t.deleteFP.RecordCounts(tk.maxHeld, tk.acquires) }()
	n := t.descendWrite(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if !ok {
		return false, base.ErrNotFound
	}
	if n.vals[i] != old {
		return false, nil
	}
	n.vals[i] = new
	return true, nil
}

// CompareAndDelete removes k when its value equals old, descending
// with the delete discipline since a removal may underfill the leaf.
func (t *Tree) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	if err := t.checkOpen(); err != nil {
		return false, err
	}
	t.conds.Add(1)
	var tk tracker
	defer func() { t.deleteFP.RecordCounts(tk.maxHeld, tk.acquires) }()
	n := t.descendDelete(k, &tk)
	defer func() { n.mu.Unlock(); tk.unlock() }()
	i, ok := n.findKey(k)
	if !ok {
		return false, base.ErrNotFound
	}
	if n.vals[i] != old {
		return false, nil
	}
	n.removeAt(i)
	t.length.Add(-1)
	return true, nil
}

func (t *Tree) borrowFromLeft(n *cnode, i int, left, child *cnode) {
	t.borrows.Add(1)
	if child.leaf {
		last := len(left.keys) - 1
		child.keys = append([]base.Key{left.keys[last]}, child.keys...)
		child.vals = append([]base.Value{left.vals[last]}, child.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		n.keys[i-1] = left.keys[last-1]
		return
	}
	last := len(left.keys) - 1
	child.keys = append([]base.Key{n.keys[i-1]}, child.keys...)
	child.children = append([]*cnode{left.children[last+1]}, child.children...)
	n.keys[i-1] = left.keys[last]
	left.keys = left.keys[:last]
	left.children = left.children[:last+1]
}

func (t *Tree) borrowFromRight(n *cnode, i int, child, right *cnode) {
	t.borrows.Add(1)
	if child.leaf {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		n.keys[i] = child.keys[len(child.keys)-1]
		return
	}
	child.keys = append(child.keys, n.keys[i])
	child.children = append(child.children, right.children[0])
	n.keys[i] = right.keys[0]
	right.keys = right.keys[1:]
	right.children = right.children[1:]
}

// mergeInto folds n.children[i+1] into n.children[i] (both locked).
func (t *Tree) mergeInto(n *cnode, i int, left, right *cnode) {
	t.merges.Add(1)
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Range couples shared locks to the first leaf, then hand-over-hand
// along the leaf chain.
func (t *Tree) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	if hi < lo {
		return nil
	}
	t.meta.RLock()
	n := t.root
	n.mu.RLock()
	t.meta.RUnlock()
	for !n.leaf {
		child := n.children[n.childIndex(lo)]
		child.mu.RLock()
		n.mu.RUnlock()
		n = child
	}
	for {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi || !fn(k, n.vals[i]) {
				n.mu.RUnlock()
				return nil
			}
		}
		next := n.next
		if next == nil {
			n.mu.RUnlock()
			return nil
		}
		next.mu.RLock()
		n.mu.RUnlock()
		n = next
	}
}

// LCStats is a snapshot of counters.
type LCStats struct {
	Searches, Inserts, Deletes uint64
	// Conds counts the conditional writes (Upsert, GetOrInsert, Update,
	// CompareAndSwap, CompareAndDelete).
	Conds                    uint64
	Splits, Merges, Borrows  uint64
	SearchLocks              locks.Footprint
	InsertLocks, DeleteLocks locks.Footprint
}

// Stats returns the counters.
func (t *Tree) Stats() LCStats {
	return LCStats{
		Searches: t.searches.Load(), Inserts: t.inserts.Load(), Deletes: t.deletes.Load(),
		Conds:  t.conds.Load(),
		Splits: t.splits.Load(), Merges: t.merges.Load(), Borrows: t.borrows.Load(),
		SearchLocks: t.searchFP.Snapshot(),
		InsertLocks: t.insertFP.Snapshot(), DeleteLocks: t.deleteFP.Snapshot(),
	}
}

// Check validates invariants (call quiesced).
func (t *Tree) Check() error {
	count, _, err := t.checkNode(t.root, nil, nil, true)
	if err != nil {
		return err
	}
	if count != t.Len() {
		return fmt.Errorf("%w: Len %d but %d pairs found", base.ErrCorrupt, t.Len(), count)
	}
	return nil
}

func (t *Tree) checkNode(n *cnode, lo, hi *base.Key, isRoot bool) (int, int, error) {
	if !isRoot && len(n.keys) < t.minKeys() {
		return 0, 0, fmt.Errorf("%w: underfull node", base.ErrCorrupt)
	}
	if len(n.keys) > t.maxKeys() {
		return 0, 0, fmt.Errorf("%w: overfull node", base.ErrCorrupt)
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, 0, fmt.Errorf("%w: key order", base.ErrCorrupt)
		}
	}
	for _, k := range n.keys {
		if (lo != nil && k <= *lo) || (hi != nil && k > *hi) {
			return 0, 0, fmt.Errorf("%w: key %d out of bounds", base.ErrCorrupt, k)
		}
	}
	if n.leaf {
		return len(n.keys), 1, nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, 0, fmt.Errorf("%w: fanout mismatch", base.ErrCorrupt)
	}
	total, depth := 0, 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		cnt, d, err := t.checkNode(c, clo, chi, false)
		if err != nil {
			return 0, 0, err
		}
		if depth == 0 {
			depth = d
		} else if depth != d {
			return 0, 0, fmt.Errorf("%w: uneven depth", base.ErrCorrupt)
		}
		total += cnt
	}
	return total, depth + 1, nil
}
