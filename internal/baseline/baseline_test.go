// Package baseline_test cross-validates every concurrent index in the
// module — Sagiv, Lehman–Yao, lock coupling, coarse — against the same
// workloads and against each other, and asserts the lock-footprint
// separation that is the paper's central quantitative claim.
package baseline_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/baseline/coarse"
	"blinktree/internal/baseline/lehmanyao"
	"blinktree/internal/baseline/lockcoupling"
	"blinktree/internal/blink"
)

// checker unifies the optional Check method.
type checker interface{ Check() error }

// mustTree builds one implementation by name, panicking on failure
// (used by quick.Check properties that have no *testing.T).
func mustTree(name string) base.Tree {
	var tr base.Tree
	var err error
	switch name {
	case "sagiv":
		tr, err = blink.New(blink.Config{MinPairs: 4})
	case "lehmanyao":
		tr, err = lehmanyao.New(lehmanyao.Config{MinPairs: 4})
	case "lockcoupling":
		tr, err = lockcoupling.New(4)
	case "coarse":
		tr, err = coarse.New(4)
	default:
		panic("unknown tree " + name)
	}
	if err != nil {
		panic(err)
	}
	return tr
}

// trees builds one of each implementation at an equivalent branching
// parameter.
func trees(t *testing.T) map[string]base.Tree {
	t.Helper()
	sag, err := blink.New(blink.Config{MinPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ly, err := lehmanyao.New(lehmanyao.Config{MinPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := lockcoupling.New(4)
	if err != nil {
		t.Fatal(err)
	}
	co, err := coarse.New(4)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]base.Tree{"sagiv": sag, "lehmanyao": ly, "lockcoupling": lc, "coarse": co}
}

func TestAllTreesSequentialEquivalence(t *testing.T) {
	for name, tr := range trees(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			model := map[base.Key]base.Value{}
			for i := 0; i < 5000; i++ {
				k := base.Key(rng.Intn(1200))
				switch rng.Intn(3) {
				case 0:
					err := tr.Insert(k, base.Value(k)+3)
					if _, p := model[k]; p != errors.Is(err, base.ErrDuplicate) {
						t.Fatalf("insert(%d) err=%v model-present=%v", k, err, p)
					}
					if err == nil {
						model[k] = base.Value(k) + 3
					}
				case 1:
					err := tr.Delete(k)
					if _, p := model[k]; p == errors.Is(err, base.ErrNotFound) {
						t.Fatalf("delete(%d) err=%v model-present=%v", k, err, p)
					}
					if err == nil {
						delete(model, k)
					}
				default:
					v, err := tr.Search(k)
					w, p := model[k]
					if p != (err == nil) || (p && v != w) {
						t.Fatalf("search(%d) = (%d,%v), model (%d,%v)", k, v, err, w, p)
					}
				}
			}
			if tr.Len() != len(model) {
				t.Fatalf("Len %d != model %d", tr.Len(), len(model))
			}
			if c, ok := tr.(checker); ok {
				if err := c.Check(); err != nil {
					t.Fatalf("Check: %v", err)
				}
			}
			// Range equivalence over a window.
			want := 0
			for k := range model {
				if k >= 100 && k <= 600 {
					want++
				}
			}
			got := 0
			if err := tr.Range(100, 600, func(k base.Key, v base.Value) bool {
				if model[k] != v {
					t.Fatalf("range pair (%d,%d) not in model", k, v)
				}
				got++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("range count %d != %d", got, want)
			}
		})
	}
}

func TestAllTreesConcurrentStress(t *testing.T) {
	for name, tr := range trees(t) {
		t.Run(name, func(t *testing.T) {
			const workers, ops = 6, 1500
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < ops; i++ {
						k := base.Key(rng.Intn(800))
						switch rng.Intn(4) {
						case 0, 1:
							if err := tr.Insert(k, base.Value(k)); err != nil && !errors.Is(err, base.ErrDuplicate) {
								t.Errorf("insert: %v", err)
								return
							}
						case 2:
							if err := tr.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
								t.Errorf("delete: %v", err)
								return
							}
						default:
							if v, err := tr.Search(k); err == nil && v != base.Value(k) {
								t.Errorf("search(%d) returned foreign value %d", k, v)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if c, ok := tr.(checker); ok {
				if err := c.Check(); err != nil {
					t.Fatalf("Check after stress: %v", err)
				}
			}
		})
	}
}

// TestAllTreesConcurrentCASHotKey hammers one hot key with CAS
// increments from every implementation: conditional writes must be
// atomic under each locking protocol, so the final value equals the
// number of successful swaps — no lost updates, ever.
func TestAllTreesConcurrentCASHotKey(t *testing.T) {
	for name, tr := range trees(t) {
		t.Run(name, func(t *testing.T) {
			const hot = base.Key(400)
			if err := tr.Insert(hot, 0); err != nil {
				t.Fatal(err)
			}
			const workers, attempts = 6, 1500
			var swaps atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) * 31))
					for i := 0; i < attempts; i++ {
						cur, err := tr.Search(hot)
						if err != nil {
							t.Errorf("search: %v", err)
							return
						}
						ok, err := tr.CompareAndSwap(hot, cur, cur+1)
						if err != nil {
							t.Errorf("cas: %v", err)
							return
						}
						if ok {
							swaps.Add(1)
						}
						// Neighbour churn keeps the hot leaf splitting.
						k := hot + 1 + base.Key(rng.Intn(64))
						if i%2 == 0 {
							_, _, _ = tr.Upsert(k, base.Value(k))
						} else {
							_, _ = tr.CompareAndDelete(k, base.Value(k))
						}
					}
				}(w)
			}
			wg.Wait()
			final, err := tr.Search(hot)
			if err != nil {
				t.Fatal(err)
			}
			if uint64(final) != swaps.Load() {
				t.Fatalf("final %d != %d successful swaps: lost updates", final, swaps.Load())
			}
			if swaps.Load() == 0 {
				t.Fatal("no swap ever succeeded")
			}
			if c, ok := tr.(checker); ok {
				if err := c.Check(); err != nil {
					t.Fatalf("Check after CAS stress: %v", err)
				}
			}
		})
	}
}

// TestLockFootprintSeparation is the paper's Table-1-equivalent claim
// stated as an assertion: Sagiv updates hold at most 1 lock, Lehman–Yao
// inserts hold up to 3 (and at least 2 whenever a split propagates),
// and lock-coupling operations hold at least 2.
func TestLockFootprintSeparation(t *testing.T) {
	const n = 4000

	sag, _ := blink.New(blink.Config{MinPairs: 2})
	ly, _ := lehmanyao.New(lehmanyao.Config{MinPairs: 2})
	lc, _ := lockcoupling.New(2)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				_ = sag.Insert(base.Key(i), 0)
				_ = ly.Insert(base.Key(i), 0)
				_ = lc.Insert(base.Key(i), 0)
			}
		}(w)
	}
	wg.Wait()

	sagFP := sag.Stats().InsertLocks
	lyFP := ly.Stats().InsertLocks
	lcFP := lc.Stats().InsertLocks

	if sagFP.MaxHeld != 1 {
		t.Errorf("sagiv insert MaxHeld = %d, want exactly 1", sagFP.MaxHeld)
	}
	if lyFP.MaxHeld < 2 || lyFP.MaxHeld > 3 {
		t.Errorf("lehman-yao insert MaxHeld = %d, want 2..3", lyFP.MaxHeld)
	}
	if lcFP.MaxHeld < 2 {
		t.Errorf("lock-coupling insert MaxHeld = %d, want ≥ 2", lcFP.MaxHeld)
	}
	// Readers: Sagiv/LY searches take no locks at all; coupling does.
	if _, err := sag.Search(1); err != nil && !errors.Is(err, base.ErrNotFound) {
		t.Fatal(err)
	}
	lcs, _ := lc.Search(0)
	_ = lcs
	if fp := lc.Stats().SearchLocks; fp.MaxHeld < 2 && fp.Ops > 0 {
		t.Errorf("lock-coupling search MaxHeld = %d, want ≥ 2 on a multi-level tree", fp.MaxHeld)
	}
}

func TestLehmanYaoSparseLeavesRemain(t *testing.T) {
	// The LY deletion policy never rebalances — the space-waste defect
	// Sagiv's compression fixes. Verify the defect is faithfully
	// reproduced.
	ly, _ := lehmanyao.New(lehmanyao.Config{MinPairs: 2})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := ly.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := ly.Delete(base.Key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ly.Check(); err != nil {
		t.Fatal(err)
	}
	if ly.Len() != n/10 {
		t.Fatalf("Len = %d", ly.Len())
	}
	// All survivors reachable.
	for i := 0; i < n; i += 10 {
		if v, err := ly.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("survivor %d: (%d,%v)", i, v, err)
		}
	}
}

func TestLockCouplingDeepDeleteRebalances(t *testing.T) {
	lc, _ := lockcoupling.New(2)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := lc.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%25 != 0 {
			if err := lc.Delete(base.Key(i)); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
	if err := lc.Check(); err != nil {
		t.Fatal(err)
	}
	st := lc.Stats()
	if st.Merges == 0 {
		t.Fatal("no merges recorded on mass deletion")
	}
	for i := 0; i < n; i += 25 {
		if v, err := lc.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("survivor %d: (%d,%v)", i, v, err)
		}
	}
}

func TestCoarseBaselineBasics(t *testing.T) {
	co, err := coarse.New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := co.Insert(base.Key(i), base.Value(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if co.Height() < 2 {
		t.Fatal("tree did not grow")
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Search(1); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed tree served a search")
	}
	if err := co.Insert(1, 1); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed tree accepted an insert")
	}
}
