// Package lehmanyao reimplements the comparator the paper improves on:
// the original Lehman–Yao B-link algorithm (reference [8]). Searches
// are lock-free and identical to the Sagiv tree's; the difference is
// the insertion's upward phase. Lehman–Yao forbids one updater from
// overtaking another on the way up: after splitting a node, the
// inserter keeps the child locked while it locks (and moves right at)
// the parent, holding up to three locks simultaneously. Sagiv's
// observation is that this coupling is unnecessary — measured directly
// by experiment E2.
//
// Deletions follow the original paper too: remove the pair from the
// leaf and do nothing else, even if the leaf becomes sparse (the space
// leak that motivates Sagiv's compression).
package lehmanyao

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
)

// DefaultMinPairs matches the Sagiv tree's default k.
const DefaultMinPairs = 16

// Config parameterizes a Tree.
type Config struct {
	// Store is the node store; nil means a fresh in-memory store.
	Store node.Store
	// Locks is the lock table; nil means a fresh table.
	Locks locks.Locker
	// MinPairs is k: nodes hold at most 2k pairs.
	MinPairs int
}

// Tree is a Lehman–Yao B-link tree, safe for concurrent use.
type Tree struct {
	store node.Store
	lt    locks.Locker
	k     int

	length atomic.Int64
	closed atomic.Bool

	searches, inserts, deletes atomic.Uint64
	conds                      atomic.Uint64 // conditional writes
	splits, linkHops           atomic.Uint64
	insertFP, deleteFP         locks.FootprintStats
}

// New creates a Tree, bootstrapping an empty root leaf when the store
// is fresh.
func New(cfg Config) (*Tree, error) {
	if cfg.Store == nil {
		cfg.Store = node.NewMemStore()
	}
	if cfg.Locks == nil {
		cfg.Locks = locks.NewTable()
	}
	if cfg.MinPairs == 0 {
		cfg.MinPairs = DefaultMinPairs
	}
	if cfg.MinPairs < 2 {
		return nil, fmt.Errorf("lehmanyao: MinPairs %d < 2", cfg.MinPairs)
	}
	t := &Tree{store: cfg.Store, lt: cfg.Locks, k: cfg.MinPairs}
	p, err := t.store.ReadPrime()
	if err != nil {
		return nil, err
	}
	if p.Levels == 0 {
		id, err := t.store.Allocate()
		if err != nil {
			return nil, err
		}
		root := &node.Node{
			ID: id, Leaf: true, Root: true,
			Low: base.NegInfBound(), High: base.PosInfBound(),
		}
		if err := t.store.Put(root); err != nil {
			return nil, err
		}
		if err := t.store.WritePrime(node.Prime{Root: id, Levels: 1, Leftmost: []base.PageID{id}}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (t *Tree) capacity() int { return 2 * t.k }

// MinPairs returns k.
func (t *Tree) MinPairs() int { return t.k }

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return int(t.length.Load()) }

// Close marks the tree closed.
func (t *Tree) Close() error {
	t.closed.Store(true)
	return nil
}

func (t *Tree) checkOpen() error {
	if t.closed.Load() {
		return base.ErrClosed
	}
	return nil
}

// descend walks to the leaf level, optionally stacking descent nodes.
// Without compression no wrong-node condition can arise, so there is no
// restart logic — only link chases.
func (t *Tree) descend(k base.Key, stack *[]base.PageID) (*node.Node, error) {
	p, err := t.store.ReadPrime()
	if err != nil {
		return nil, err
	}
	n, err := t.store.Get(p.Root)
	if err != nil {
		return nil, err
	}
	for !n.Leaf {
		next, isLink := n.Next(k)
		if !isLink && stack != nil {
			*stack = append(*stack, n.ID)
		}
		if isLink {
			t.linkHops.Add(1)
		}
		if n, err = t.store.Get(next); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// moveright follows links to the node admitting k (unlocked reads).
func (t *Tree) moveright(n *node.Node, k base.Key) (*node.Node, error) {
	for n.HighLess(k) {
		t.linkHops.Add(1)
		next := n.Link
		if next == base.NilPage {
			return nil, base.ErrCorrupt
		}
		var err error
		if n, err = t.store.Get(next); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Search returns the value under k; identical to the Sagiv search.
func (t *Tree) Search(k base.Key) (base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, err
	}
	t.searches.Add(1)
	n, err := t.descend(k, nil)
	if err != nil {
		return 0, err
	}
	if n, err = t.moveright(n, k); err != nil {
		return 0, err
	}
	if v, ok := n.LeafFind(k); ok {
		return v, nil
	}
	return 0, base.ErrNotFound
}

// lockedMoveright is the Lehman–Yao "move.right": while holding the
// current node's lock, lock the right neighbour before releasing the
// current lock, so that the chain position is never given up (two locks
// held during the hop).
func (t *Tree) lockedMoveright(h *locks.Holder, n *node.Node, k base.Key) (*node.Node, error) {
	for n.HighLess(k) {
		t.linkHops.Add(1)
		next := n.Link
		if next == base.NilPage {
			h.UnlockAll()
			return nil, base.ErrCorrupt
		}
		h.Lock(next)
		h.Unlock(n.ID)
		var err error
		if n, err = t.store.Get(next); err != nil {
			h.UnlockAll()
			return nil, err
		}
	}
	return n, nil
}

// lockedLeaf descends to k's leaf, locks it, re-reads it and moves
// right under lock coupling, returning the locked current snapshot.
func (t *Tree) lockedLeaf(h *locks.Holder, k base.Key, stack *[]base.PageID) (*node.Node, error) {
	n, err := t.descend(k, stack)
	if err != nil {
		return nil, err
	}
	h.Lock(n.ID)
	if n, err = t.store.Get(n.ID); err != nil {
		return nil, err
	}
	return t.lockedMoveright(h, n, k)
}

// Insert stores v under k using the original Lehman–Yao protocol: on a
// split, the child's lock is retained while the parent is locked and
// moved-right, holding 2–3 locks simultaneously during the upward pass.
func (t *Tree) Insert(k base.Key, v base.Value) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	t.inserts.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.insertFP.Record(h)
	}()

	var stack []base.PageID
	n, err := t.lockedLeaf(h, k, &stack)
	if err != nil {
		return err
	}
	if _, dup := n.LeafFind(k); dup {
		h.Unlock(n.ID)
		return base.ErrDuplicate
	}
	return t.placeFrom(h, n, k, v, stack)
}

// placeFrom performs the upward placement half of an insertion,
// starting from the locked leaf n with the key known to be absent.
func (t *Tree) placeFrom(h *locks.Holder, n *node.Node, k base.Key, v base.Value, stack []base.PageID) error {
	var err error
	pendKey, pendVal, pendChild := k, v, base.NilPage
	level := 0
	for {
		if n.Pairs() < t.capacity() {
			// Safe: rewrite and we are done.
			var n2 *node.Node
			if level == 0 {
				n2 = n.InsertLeafPair(pendKey, pendVal)
			} else {
				if n2, err = n.InsertSeparator(pendKey, pendChild); err != nil {
					return err
				}
			}
			if err := t.store.Put(n2); err != nil {
				return err
			}
			h.Unlock(n.ID)
			if level == 0 {
				t.length.Add(1) // only leaf-level insertions add a pair
			}
			return nil
		}

		// Unsafe: split.
		var grown *node.Node
		if level == 0 {
			grown = n.InsertLeafPair(pendKey, pendVal)
		} else {
			if grown, err = n.InsertSeparator(pendKey, pendChild); err != nil {
				return err
			}
		}
		newID, err := t.store.Allocate()
		if err != nil {
			return err
		}
		left, right, sep := grown.Split(newID)
		if n.Root {
			// Root split: same as the Sagiv tree (the special case [8]
			// leaves implicit, §3.2).
			if err := t.splitRoot(n, left, right, sep, newID); err != nil {
				return err
			}
			h.Unlock(n.ID)
			if level == 0 {
				t.length.Add(1)
			}
			return nil
		}
		if err := t.store.Put(right); err != nil {
			return err
		}
		if err := t.store.Put(left); err != nil {
			return err
		}
		t.splits.Add(1)
		if level == 0 {
			t.length.Add(1)
		}

		// THE LEHMAN–YAO DIFFERENCE: keep n locked while acquiring the
		// parent, so no other updater can overtake us on the way up.
		pendKey, pendVal, pendChild = sep, 0, newID
		level++
		var parentID base.PageID
		if len(stack) > 0 {
			parentID = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			if parentID, err = t.waitForLevel(level); err != nil {
				return err
			}
		}
		h.Lock(parentID) // two locks held
		parent, err := t.store.Get(parentID)
		if err != nil {
			return err
		}
		// Move right at the parent while still holding the child: the
		// peak of three simultaneous locks.
		parent, err = t.lockedMoverightKeepChild(h, parent, pendKey, left.ID)
		if err != nil {
			return err
		}
		h.Unlock(left.ID) // child released only now
		n = parent
	}
}

// lockedMoverightKeepChild moves right at the parent level with lock
// coupling while the child childID stays locked throughout.
func (t *Tree) lockedMoverightKeepChild(h *locks.Holder, n *node.Node, k base.Key, childID base.PageID) (*node.Node, error) {
	for n.HighLess(k) {
		t.linkHops.Add(1)
		next := n.Link
		if next == base.NilPage {
			h.UnlockAll()
			return nil, base.ErrCorrupt
		}
		h.Lock(next) // child + current + next = 3 locks
		h.Unlock(n.ID)
		var err error
		if n, err = t.store.Get(next); err != nil {
			h.UnlockAll()
			return nil, err
		}
	}
	return n, nil
}

func (t *Tree) splitRoot(n *node.Node, left, right *node.Node, sep base.Key, newID base.PageID) error {
	rootID, err := t.store.Allocate()
	if err != nil {
		return err
	}
	if err := t.store.Put(right); err != nil {
		return err
	}
	if err := t.store.Put(left); err != nil {
		return err
	}
	root := &node.Node{
		ID: rootID, Root: true,
		Low: base.NegInfBound(), High: base.PosInfBound(),
		Keys:     []base.Key{sep},
		Children: []base.PageID{n.ID, newID},
	}
	if err := t.store.Put(root); err != nil {
		return err
	}
	p, err := t.store.ReadPrime()
	if err != nil {
		return err
	}
	p = p.Clone()
	p.Root = rootID
	p.Levels++
	p.Leftmost = append(p.Leftmost, rootID)
	if err := t.store.WritePrime(p); err != nil {
		return err
	}
	t.splits.Add(1)
	return nil
}

func (t *Tree) waitForLevel(level int) (base.PageID, error) {
	for spin := 0; ; spin++ {
		p, err := t.store.ReadPrime()
		if err != nil {
			return base.NilPage, err
		}
		if p.Levels > level {
			return p.Leftmost[level], nil
		}
		if spin < 100 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// Delete removes k with the trivial [8] deletion: rewrite the leaf, no
// rebalancing ever.
func (t *Tree) Delete(k base.Key) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	t.deletes.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.deleteFP.Record(h)
	}()

	n, err := t.lockedLeaf(h, k, nil)
	if err != nil {
		return err
	}
	n2 := n.DeleteLeafPair(k)
	if n2 == nil {
		h.Unlock(n.ID)
		return base.ErrNotFound
	}
	if err := t.store.Put(n2); err != nil {
		return err
	}
	h.Unlock(n.ID)
	t.length.Add(-1)
	return nil
}

// Upsert stores v under k, returning the previous value and whether
// one existed. The decision happens under the held leaf lock; an
// absent key continues as an ordinary Lehman–Yao insertion.
func (t *Tree) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	if err := t.checkOpen(); err != nil {
		return 0, false, err
	}
	t.conds.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.insertFP.Record(h)
	}()
	var stack []base.PageID
	n, err := t.lockedLeaf(h, k, &stack)
	if err != nil {
		return 0, false, err
	}
	if old, ok := n.LeafFind(k); ok {
		if err := t.store.Put(n.SetLeafValue(k, v)); err != nil {
			return 0, false, err
		}
		h.Unlock(n.ID)
		return old, true, nil
	}
	return 0, false, t.placeFrom(h, n, k, v, stack)
}

// GetOrInsert returns the value under k, inserting v first when absent.
func (t *Tree) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	if err := t.checkOpen(); err != nil {
		return 0, false, err
	}
	t.conds.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.insertFP.Record(h)
	}()
	var stack []base.PageID
	n, err := t.lockedLeaf(h, k, &stack)
	if err != nil {
		return 0, false, err
	}
	if old, ok := n.LeafFind(k); ok {
		h.Unlock(n.ID)
		return old, true, nil
	}
	return v, false, t.placeFrom(h, n, k, v, stack)
}

// Update replaces the value under k with fn(current), or ErrNotFound.
func (t *Tree) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	if err := t.checkOpen(); err != nil {
		return 0, err
	}
	t.conds.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.deleteFP.Record(h)
	}()
	n, err := t.lockedLeaf(h, k, nil)
	if err != nil {
		return 0, err
	}
	old, ok := n.LeafFind(k)
	if !ok {
		h.Unlock(n.ID)
		return 0, base.ErrNotFound
	}
	v := fn(old)
	if err := t.store.Put(n.SetLeafValue(k, v)); err != nil {
		return 0, err
	}
	h.Unlock(n.ID)
	return v, nil
}

// CompareAndSwap replaces the value under k with new when it equals
// old. A missing key is ErrNotFound; a mismatch is (false, nil).
func (t *Tree) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	if err := t.checkOpen(); err != nil {
		return false, err
	}
	t.conds.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.deleteFP.Record(h)
	}()
	n, err := t.lockedLeaf(h, k, nil)
	if err != nil {
		return false, err
	}
	cur, ok := n.LeafFind(k)
	if !ok {
		h.Unlock(n.ID)
		return false, base.ErrNotFound
	}
	if cur != old {
		h.Unlock(n.ID)
		return false, nil
	}
	if err := t.store.Put(n.SetLeafValue(k, new)); err != nil {
		return false, err
	}
	h.Unlock(n.ID)
	return true, nil
}

// CompareAndDelete removes k when its value equals old, with the same
// convention as CompareAndSwap.
func (t *Tree) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	if err := t.checkOpen(); err != nil {
		return false, err
	}
	t.conds.Add(1)
	h := locks.NewHolder(t.lt)
	defer func() {
		h.UnlockAll()
		t.deleteFP.Record(h)
	}()
	n, err := t.lockedLeaf(h, k, nil)
	if err != nil {
		return false, err
	}
	cur, ok := n.LeafFind(k)
	if !ok {
		h.Unlock(n.ID)
		return false, base.ErrNotFound
	}
	if cur != old {
		h.Unlock(n.ID)
		return false, nil
	}
	if err := t.store.Put(n.DeleteLeafPair(k)); err != nil {
		return false, err
	}
	h.Unlock(n.ID)
	t.length.Add(-1)
	return true, nil
}

// Range scans [lo, hi] through the leaf chain.
func (t *Tree) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	if hi < lo {
		return nil
	}
	n, err := t.descend(lo, nil)
	if err != nil {
		return err
	}
	if n, err = t.moveright(n, lo); err != nil {
		return err
	}
	cursor := lo
	for {
		for i, k := range n.Keys {
			if k < cursor || k > hi {
				if k > hi {
					return nil
				}
				continue
			}
			if !fn(k, n.Vals[i]) {
				return nil
			}
		}
		if n.High.Kind == base.PosInf || n.High.K >= hi || n.Link == base.NilPage {
			return nil
		}
		cursor = n.High.K + 1
		if n, err = t.store.Get(n.Link); err != nil {
			return err
		}
	}
}

// LYStats is a snapshot of operation counters.
type LYStats struct {
	Searches, Inserts, Deletes uint64
	// Conds counts the conditional writes (Upsert, GetOrInsert, Update,
	// CompareAndSwap, CompareAndDelete).
	Conds                    uint64
	Splits, LinkHops         uint64
	InsertLocks, DeleteLocks locks.Footprint
}

// Stats returns the counters.
func (t *Tree) Stats() LYStats {
	return LYStats{
		Searches: t.searches.Load(), Inserts: t.inserts.Load(), Deletes: t.deletes.Load(),
		Conds:  t.conds.Load(),
		Splits: t.splits.Load(), LinkHops: t.linkHops.Load(),
		InsertLocks: t.insertFP.Snapshot(), DeleteLocks: t.deleteFP.Snapshot(),
	}
}

// Check validates structure via a borrowed Sagiv-style walk: key order,
// bound tiling and parent/child agreement.
func (t *Tree) Check() error {
	p, err := t.store.ReadPrime()
	if err != nil {
		return err
	}
	var prevChain []base.PageID
	for level := p.Levels - 1; level >= 0; level-- {
		var chain []base.PageID
		id := p.Leftmost[level]
		prevHigh := base.NegInfBound()
		for id != base.NilPage {
			n, err := t.store.Get(id)
			if err != nil {
				return err
			}
			if err := n.Validate(); err != nil {
				return err
			}
			if !n.Low.Equal(prevHigh) {
				return fmt.Errorf("%w: node %d low %v != prev high %v", base.ErrCorrupt, id, n.Low, prevHigh)
			}
			chain = append(chain, id)
			prevHigh = n.High
			id = n.Link
		}
		if prevHigh.Kind != base.PosInf {
			return fmt.Errorf("%w: level %d ends at %v", base.ErrCorrupt, level, prevHigh)
		}
		if prevChain != nil {
			var kids []base.PageID
			for _, pid := range prevChain {
				f, err := t.store.Get(pid)
				if err != nil {
					return err
				}
				kids = append(kids, f.Children...)
			}
			if len(kids) != len(chain) {
				return fmt.Errorf("%w: level %d has %d nodes but parents list %d", base.ErrCorrupt, level, len(chain), len(kids))
			}
			for i := range kids {
				if kids[i] != chain[i] {
					return fmt.Errorf("%w: child order mismatch at %d", base.ErrCorrupt, i)
				}
			}
		}
		prevChain = chain
	}
	return nil
}
