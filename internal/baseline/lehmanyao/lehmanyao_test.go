package lehmanyao

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/node"
	"blinktree/internal/storage"
)

func TestBasics(t *testing.T) {
	tr, err := New(Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{MinPairs: 1}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := tr.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(7, 71); !errors.Is(err, base.ErrDuplicate) {
		t.Fatal("dup accepted")
	}
	if v, err := tr.Search(7); err != nil || v != 70 {
		t.Fatalf("search = (%d,%v)", v, err)
	}
	if _, err := tr.Search(8); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("ghost key")
	}
	if err := tr.Delete(7); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	_ = tr.Close()
	if err := tr.Insert(1, 1); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed tree accepted insert")
	}
}

func TestBulkOrdersAndCheck(t *testing.T) {
	for _, name := range []string{"asc", "desc", "rand"} {
		t.Run(name, func(t *testing.T) {
			tr, _ := New(Config{MinPairs: 2})
			const n = 2000
			keys := make([]int, n)
			for i := range keys {
				keys[i] = i
			}
			switch name {
			case "desc":
				for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
					keys[i], keys[j] = keys[j], keys[i]
				}
			case "rand":
				rand.New(rand.NewSource(2)).Shuffle(n, func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
			}
			for _, k := range keys {
				if err := tr.Insert(base.Key(k), base.Value(k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if v, err := tr.Search(base.Key(i)); err != nil || v != base.Value(i) {
					t.Fatalf("search(%d) = (%d,%v)", i, v, err)
				}
			}
		})
	}
}

// TestInsertFootprintBounded: the defining LY behaviour — at most three
// locks, and more than one whenever splits propagate.
func TestInsertFootprintBounded(t *testing.T) {
	tr, _ := New(Config{MinPairs: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 4000; i += 4 {
				if err := tr.Insert(base.Key(i), 0); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	fp := tr.Stats().InsertLocks
	if fp.MaxHeld < 2 || fp.MaxHeld > 3 {
		t.Fatalf("LY insert MaxHeld = %d, want 2..3", fp.MaxHeld)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr, _ := New(Config{MinPairs: 3})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2500; i++ {
				k := base.Key(rng.Intn(1000))
				switch rng.Intn(3) {
				case 0:
					if err := tr.Insert(k, base.Value(k)); err != nil && !errors.Is(err, base.ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if err := tr.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				default:
					if v, err := tr.Search(k); err == nil && v != base.Value(k) {
						t.Errorf("foreign value %d", v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeScan(t *testing.T) {
	tr, _ := New(Config{MinPairs: 2})
	for i := 0; i < 300; i += 3 {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	var got []base.Key
	if err := tr.Range(30, 60, func(k base.Key, v base.Value) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[0] != 30 || got[10] != 60 {
		t.Fatalf("scan = %v", got)
	}
	count := 0
	_ = tr.Range(0, 300, func(base.Key, base.Value) bool { count++; return false })
	if count != 1 {
		t.Fatal("early stop")
	}
}

func TestOnPagedStore(t *testing.T) {
	st, err := node.NewPagedStore(storage.NewMemStore(512))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Store: st, MinPairs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(base.Key(i*5), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if v, err := tr.Search(base.Key(i * 5)); err != nil || v != base.Value(i) {
			t.Fatalf("paged search = (%d,%v)", v, err)
		}
	}
}
