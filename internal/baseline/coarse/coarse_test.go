package coarse

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"blinktree/internal/base"
)

func TestBasics(t *testing.T) {
	tr, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := tr.Insert(3, 30); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(3, 31); !errors.Is(err, base.ErrDuplicate) {
		t.Fatal("dup accepted")
	}
	if v, err := tr.Search(3); err != nil || v != 30 {
		t.Fatalf("search = (%d,%v)", v, err)
	}
	if err := tr.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(3); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("double delete")
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d h=%d", tr.Len(), tr.Height())
	}
}

func TestConcurrentSerializesCorrectly(t *testing.T) {
	tr, _ := New(3)
	var wg sync.WaitGroup
	const workers = 6
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := base.Key(rng.Intn(500)*workers + w)
				switch rng.Intn(3) {
				case 0:
					if err := tr.Insert(k, base.Value(k)); err != nil && !errors.Is(err, base.ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if err := tr.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				default:
					if v, err := tr.Search(k); err == nil && v != base.Value(k) {
						t.Errorf("foreign value")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeAndClose(t *testing.T) {
	tr, _ := New(2)
	for i := 0; i < 90; i += 3 {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	count := 0
	if err := tr.Range(10, 40, func(k base.Key, v base.Value) bool {
		if k < 10 || k > 40 || v != base.Value(k) {
			t.Fatalf("bad pair (%d,%d)", k, v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	_ = tr.Close()
	if err := tr.Range(0, 10, nil); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed tree served Range")
	}
	if err := tr.Delete(1); !errors.Is(err, base.ErrClosed) {
		t.Fatal("closed tree served Delete")
	}
}
