// Package coarse is the zero-concurrency baseline: a sequential
// B⁺-tree behind a single RWMutex. Readers share; any update excludes
// everything. Every concurrent-index paper implicitly compares against
// this floor, and the experiment harness uses it to show what the
// fine-grained algorithms buy.
package coarse

import (
	"sync"

	"blinktree/internal/base"
	"blinktree/internal/btree"
)

// Tree is a coarsely locked B⁺-tree implementing base.Tree.
type Tree struct {
	mu     sync.RWMutex
	t      *btree.Tree
	closed bool
}

// New returns an empty tree of minimum degree k.
func New(k int) (*Tree, error) {
	t, err := btree.New(k)
	if err != nil {
		return nil, err
	}
	return &Tree{t: t}, nil
}

// Search implements base.Tree.
func (c *Tree) Search(k base.Key) (base.Value, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return 0, base.ErrClosed
	}
	return c.t.Search(k)
}

// Insert implements base.Tree.
func (c *Tree) Insert(k base.Key, v base.Value) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return base.ErrClosed
	}
	return c.t.Insert(k, v)
}

// Delete implements base.Tree.
func (c *Tree) Delete(k base.Key) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return base.ErrClosed
	}
	return c.t.Delete(k)
}

// Upsert implements base.Tree.
func (c *Tree) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, false, base.ErrClosed
	}
	return c.t.Upsert(k, v)
}

// GetOrInsert implements base.Tree.
func (c *Tree) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, false, base.ErrClosed
	}
	return c.t.GetOrInsert(k, v)
}

// Update implements base.Tree.
func (c *Tree) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, base.ErrClosed
	}
	return c.t.Update(k, fn)
}

// CompareAndSwap implements base.Tree.
func (c *Tree) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, base.ErrClosed
	}
	return c.t.CompareAndSwap(k, old, new)
}

// CompareAndDelete implements base.Tree.
func (c *Tree) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, base.ErrClosed
	}
	return c.t.CompareAndDelete(k, old)
}

// Range implements base.Tree.
func (c *Tree) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return base.ErrClosed
	}
	return c.t.Range(lo, hi, fn)
}

// Len implements base.Tree.
func (c *Tree) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Len()
}

// Close implements base.Tree.
func (c *Tree) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Check validates the underlying tree's invariants.
func (c *Tree) Check() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Check()
}

// Height returns the tree height.
func (c *Tree) Height() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t.Height()
}
