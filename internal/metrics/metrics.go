// Package metrics provides the small measurement kit the experiment
// harness uses: lock-free latency histograms with power-of-two buckets
// and percentile estimation, and simple running aggregates.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets spans 1ns .. ~1.15s in power-of-two buckets, plus an
// overflow bucket.
const histBuckets = 31

// Histogram is a concurrent power-of-two latency histogram. The zero
// value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns) // bucket i covers [2^(i-1), 2^i)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean duration.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) to bucket resolution
// (upper bound of the containing power-of-two bucket).
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 1
			}
			return time.Duration(uint64(1) << uint(i)) // upper bound 2^i ns
		}
	}
	return h.Max()
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Counter is an atomic event counter. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Rate computes events per second over elapsed.
func (c *Counter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.v.Load()) / elapsed.Seconds()
}
