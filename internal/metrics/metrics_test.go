package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero histogram not empty")
	}
	h.Observe(100 * time.Nanosecond)
	h.Observe(200 * time.Nanosecond)
	h.Observe(10 * time.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 3*time.Microsecond || mean > 4*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	if h.Max() != 10*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	// p50 lands in the bucket containing 200ns: (128,256].
	if q := h.Quantile(0.5); q < 200*time.Nanosecond || q > 512*time.Nanosecond {
		t.Fatalf("p50 = %v", q)
	}
	// p100 uses the top occupied bucket.
	if q := h.Quantile(1.0); q < 10*time.Microsecond {
		t.Fatalf("p100 = %v", q)
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone at %.2f: %v < %v", q, v, last)
		}
		last = v
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Hour) // far beyond the top bucket
	if h.Count() != 1 {
		t.Fatal("overflow observation lost")
	}
	if q := h.Quantile(0.99); q <= 0 {
		t.Fatalf("overflow quantile = %v", q)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Fatalf("counter = %d", c.Load())
	}
	if r := c.Rate(2 * time.Second); r != 5 {
		t.Fatalf("rate = %f", r)
	}
	if r := c.Rate(0); r != 0 {
		t.Fatalf("rate(0) = %f", r)
	}
}
