package btree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

func TestBasicOps(t *testing.T) {
	tr, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if err := tr.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Search(5); err != nil || v != 50 {
		t.Fatalf("Search = (%d,%v)", v, err)
	}
	if err := tr.Insert(5, 51); !errors.Is(err, base.ErrDuplicate) {
		t.Fatal("duplicate accepted")
	}
	if _, err := tr.Search(6); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("missing key found")
	}
	if err := tr.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(5); !errors.Is(err, base.ErrNotFound) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestBulkAscendingDescendingRandom(t *testing.T) {
	orders := map[string]func(n int) []int{
		"ascending": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = i
			}
			return out
		},
		"descending": func(n int) []int {
			out := make([]int, n)
			for i := range out {
				out[i] = n - 1 - i
			}
			return out
		},
		"random": func(n int) []int { return rand.New(rand.NewSource(5)).Perm(n) },
	}
	const n = 3000
	for name, gen := range orders {
		t.Run(name, func(t *testing.T) {
			tr, _ := New(3)
			for _, k := range gen(n) {
				if err := tr.Insert(base.Key(k), base.Value(k*2)); err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d", tr.Len())
			}
			for i := 0; i < n; i++ {
				if v, err := tr.Search(base.Key(i)); err != nil || v != base.Value(i*2) {
					t.Fatalf("Search(%d) = (%d,%v)", i, v, err)
				}
			}
		})
	}
}

func TestDeleteRebalancing(t *testing.T) {
	const n = 3000
	tr, _ := New(2)
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	hFull := tr.Height()
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, k := range perm[:n-10] {
		if err := tr.Delete(base.Key(k)); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		// Invariants hold after EVERY delete (full rebalancing).
		if tr.Len()%500 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("check at len %d: %v", tr.Len(), err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= hFull {
		t.Fatalf("height did not shrink: %d -> %d", hFull, tr.Height())
	}
	for _, k := range perm[n-10:] {
		if _, err := tr.Search(base.Key(k)); err != nil {
			t.Fatalf("survivor %d lost", k)
		}
	}
}

func TestRange(t *testing.T) {
	tr, _ := New(2)
	for i := 0; i < 100; i += 3 {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	var got []base.Key
	_ = tr.Range(10, 50, func(k base.Key, v base.Value) bool {
		got = append(got, k)
		return true
	})
	var want []base.Key
	for i := 12; i <= 50; i += 3 {
		want = append(want, base.Key(i))
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	_ = tr.Range(0, 99, func(base.Key, base.Value) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop count %d", count)
	}
}

// Property: random op sequences agree with a map model.
func TestPropertyMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
	}
	f := func(ops []op) bool {
		tr, _ := New(2)
		model := map[base.Key]base.Value{}
		for _, o := range ops {
			k := base.Key(o.Key % 400)
			switch o.Kind % 3 {
			case 0:
				err := tr.Insert(k, base.Value(k)+1)
				if _, p := model[k]; p != errors.Is(err, base.ErrDuplicate) {
					return false
				}
				if err == nil {
					model[k] = base.Value(k) + 1
				}
			case 1:
				err := tr.Delete(k)
				if _, p := model[k]; p == errors.Is(err, base.ErrNotFound) {
					return false
				}
				if err == nil {
					delete(model, k)
				}
			default:
				v, err := tr.Search(k)
				w, p := model[k]
				if p != (err == nil) || (p && v != w) {
					return false
				}
			}
		}
		return tr.Check() == nil && tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
