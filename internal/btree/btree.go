// Package btree is a plain, sequential B⁺-tree with full rebalancing
// (borrow and merge on deletion). It serves two roles in the
// reproduction: the substrate of the coarse-grained baseline (one
// RWMutex around the whole tree — the zero-concurrency floor the paper
// improves on) and a reference oracle for differential tests.
//
// It uses the classic minimum-degree convention: with degree k, every
// node except the root holds between k−1 and 2k−1 keys, which is what
// makes single-pass preemptive splitting (on insert) and preemptive
// fill (on delete) possible.
//
// It is NOT safe for concurrent use; wrap it (see baseline/coarse).
package btree

import (
	"fmt"
	"sort"

	"blinktree/internal/base"
)

// Tree is a sequential B⁺-tree of minimum degree k: nodes hold between
// k−1 and 2k−1 keys (except the root).
type Tree struct {
	k    int
	root *bnode
	size int
}

type bnode struct {
	leaf     bool
	keys     []base.Key
	vals     []base.Value // leaves
	children []*bnode     // internal
	next     *bnode       // leaf chain for scans
}

// New returns an empty tree of minimum degree k (≥ 2).
func New(k int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("btree: k %d < 2", k)
	}
	return &Tree{k: k, root: &bnode{leaf: true}}, nil
}

// cap is the maximum keys per node (2k−1); min is k−1.
func (t *Tree) cap() int { return 2*t.k - 1 }
func (t *Tree) min() int { return t.k - 1 }

// Len returns the number of stored pairs.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

func (n *bnode) findKey(k base.Key) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
	return i, i < len(n.keys) && n.keys[i] == k
}

// childIndex returns which child to descend into: child i covers keys
// in (keys[i-1], keys[i]].
func (n *bnode) childIndex(k base.Key) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= k })
}

// Search returns the value under k or ErrNotFound.
func (t *Tree) Search(k base.Key) (base.Value, error) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(k)]
	}
	if i, ok := n.findKey(k); ok {
		return n.vals[i], nil
	}
	return 0, base.ErrNotFound
}

// Insert stores v under k, or returns ErrDuplicate.
func (t *Tree) Insert(k base.Key, v base.Value) error {
	// Preemptive root split keeps the recursion simple.
	if len(t.root.keys) == t.cap() {
		old := t.root
		sep, right := old.split()
		t.root = &bnode{
			keys:     []base.Key{sep},
			children: []*bnode{old, right},
		}
	}
	if err := t.insertNonFull(t.root, k, v); err != nil {
		return err
	}
	t.size++
	return nil
}

// split divides a full node in half, returning the separator and the
// new right node. For internal nodes the separator moves up
// exclusively; leaves keep it (B⁺ semantics).
func (n *bnode) split() (base.Key, *bnode) {
	if n.leaf {
		m := (len(n.keys) + 1) / 2
		right := &bnode{
			leaf: true,
			keys: append([]base.Key(nil), n.keys[m:]...),
			vals: append([]base.Value(nil), n.vals[m:]...),
			next: n.next,
		}
		n.keys = n.keys[:m:m]
		n.vals = n.vals[:m:m]
		n.next = right
		return n.keys[m-1], right
	}
	m := len(n.keys) / 2
	sep := n.keys[m]
	right := &bnode{
		keys:     append([]base.Key(nil), n.keys[m+1:]...),
		children: append([]*bnode(nil), n.children[m+1:]...),
	}
	n.keys = n.keys[:m:m]
	n.children = n.children[: m+1 : m+1]
	return sep, right
}

func (t *Tree) insertNonFull(n *bnode, k base.Key, v base.Value) error {
	for !n.leaf {
		i := n.childIndex(k)
		child := n.children[i]
		if len(child.keys) == t.cap() {
			sep, right := child.split()
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = sep
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = right
			if k > sep {
				child = right
			}
		}
		n = child
	}
	i, ok := n.findKey(k)
	if ok {
		return base.ErrDuplicate
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = k
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
	return nil
}

// leafFor descends to the leaf that would hold k.
func (t *Tree) leafFor(k base.Key) *bnode {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(k)]
	}
	return n
}

// Upsert stores v under k, returning the previously stored value and
// whether one existed.
func (t *Tree) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	n := t.leafFor(k)
	if i, ok := n.findKey(k); ok {
		old := n.vals[i]
		n.vals[i] = v
		return old, true, nil
	}
	return 0, false, t.Insert(k, v)
}

// GetOrInsert returns the value under k, inserting v first when absent.
func (t *Tree) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	n := t.leafFor(k)
	if i, ok := n.findKey(k); ok {
		return n.vals[i], true, nil
	}
	return v, false, t.Insert(k, v)
}

// Update replaces the value under k with fn(current), or ErrNotFound.
func (t *Tree) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	n := t.leafFor(k)
	i, ok := n.findKey(k)
	if !ok {
		return 0, base.ErrNotFound
	}
	n.vals[i] = fn(n.vals[i])
	return n.vals[i], nil
}

// CompareAndSwap replaces the value under k with new when it equals
// old. A missing key is ErrNotFound; a mismatch is (false, nil).
func (t *Tree) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	n := t.leafFor(k)
	i, ok := n.findKey(k)
	if !ok {
		return false, base.ErrNotFound
	}
	if n.vals[i] != old {
		return false, nil
	}
	n.vals[i] = new
	return true, nil
}

// CompareAndDelete removes k when its value equals old, with the same
// convention as CompareAndSwap.
func (t *Tree) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	n := t.leafFor(k)
	i, ok := n.findKey(k)
	if !ok {
		return false, base.ErrNotFound
	}
	if n.vals[i] != old {
		return false, nil
	}
	return true, t.Delete(k)
}

// Delete removes k, rebalancing so every non-root node keeps ≥ k keys.
func (t *Tree) Delete(k base.Key) error {
	if err := t.deleteFrom(t.root, k); err != nil {
		return err
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	t.size--
	return nil
}

// deleteFrom removes k from the subtree at n, guaranteeing on entry
// that n has > k keys (or is the root) so a child removal cannot
// underflow it.
func (t *Tree) deleteFrom(n *bnode, k base.Key) error {
	for !n.leaf {
		i := n.childIndex(k)
		child := n.children[i]
		if len(child.keys) <= t.min() {
			i = t.fill(n, i)
			child = n.children[i]
		}
		n = child
	}
	i, ok := n.findKey(k)
	if !ok {
		return base.ErrNotFound
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	return nil
}

// fill ensures n.children[i] has more than min keys by borrowing from
// a sibling or merging, returning the (possibly shifted) index of the
// child that now covers the original child's range.
func (t *Tree) fill(n *bnode, i int) int {
	if i > 0 && len(n.children[i-1].keys) > t.min() {
		t.borrowFromLeft(n, i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) > t.min() {
		t.borrowFromRight(n, i)
		return i
	}
	if i > 0 {
		t.mergeChildren(n, i-1)
		return i - 1
	}
	t.mergeChildren(n, i)
	return i
}

func (t *Tree) borrowFromLeft(n *bnode, i int) {
	child, left := n.children[i], n.children[i-1]
	if child.leaf {
		last := len(left.keys) - 1
		child.keys = append([]base.Key{left.keys[last]}, child.keys...)
		child.vals = append([]base.Value{left.vals[last]}, child.vals...)
		left.keys = left.keys[:last]
		left.vals = left.vals[:last]
		n.keys[i-1] = left.keys[last-1]
		return
	}
	last := len(left.keys) - 1
	child.keys = append([]base.Key{n.keys[i-1]}, child.keys...)
	child.children = append([]*bnode{left.children[last+1]}, child.children...)
	n.keys[i-1] = left.keys[last]
	left.keys = left.keys[:last]
	left.children = left.children[:last+1]
}

func (t *Tree) borrowFromRight(n *bnode, i int) {
	child, right := n.children[i], n.children[i+1]
	if child.leaf {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		n.keys[i] = child.keys[len(child.keys)-1]
		return
	}
	child.keys = append(child.keys, n.keys[i])
	child.children = append(child.children, right.children[0])
	n.keys[i] = right.keys[0]
	right.keys = right.keys[1:]
	right.children = right.children[1:]
}

// mergeChildren folds child i+1 into child i, pulling the separator
// down for internal nodes.
func (t *Tree) mergeChildren(n *bnode, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order.
func (t *Tree) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	if hi < lo {
		return nil
	}
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(lo)]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return nil
			}
			if !fn(k, n.vals[i]) {
				return nil
			}
		}
		n = n.next
	}
	return nil
}

// Check validates structural invariants.
func (t *Tree) Check() error {
	count, _, err := t.checkNode(t.root, nil, nil, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("%w: size %d but %d pairs found", base.ErrCorrupt, t.size, count)
	}
	return nil
}

func (t *Tree) checkNode(n *bnode, lo, hi *base.Key, isRoot bool) (int, int, error) {
	if !isRoot && len(n.keys) < t.min() {
		return 0, 0, fmt.Errorf("%w: node underfull (%d < %d)", base.ErrCorrupt, len(n.keys), t.min())
	}
	if len(n.keys) > t.cap() {
		return 0, 0, fmt.Errorf("%w: node overfull (%d > %d)", base.ErrCorrupt, len(n.keys), t.cap())
	}
	for i := 1; i < len(n.keys); i++ {
		if n.keys[i-1] >= n.keys[i] {
			return 0, 0, fmt.Errorf("%w: keys out of order", base.ErrCorrupt)
		}
	}
	for _, k := range n.keys {
		if lo != nil && k <= *lo {
			return 0, 0, fmt.Errorf("%w: key %d ≤ lower bound %d", base.ErrCorrupt, k, *lo)
		}
		if hi != nil && k > *hi {
			return 0, 0, fmt.Errorf("%w: key %d > upper bound %d", base.ErrCorrupt, k, *hi)
		}
	}
	if n.leaf {
		if len(n.vals) != len(n.keys) {
			return 0, 0, fmt.Errorf("%w: leaf vals/keys mismatch", base.ErrCorrupt)
		}
		return len(n.keys), 1, nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, 0, fmt.Errorf("%w: children/keys mismatch", base.ErrCorrupt)
	}
	total := 0
	depth := 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = &n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = &n.keys[i]
		}
		cnt, d, err := t.checkNode(c, clo, chi, false)
		if err != nil {
			return 0, 0, err
		}
		if depth == 0 {
			depth = d
		} else if d != depth {
			return 0, 0, fmt.Errorf("%w: uneven depth", base.ErrCorrupt)
		}
		total += cnt
	}
	return total, depth + 1, nil
}
