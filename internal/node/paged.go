package node

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
	"blinktree/internal/storage"
)

// Prefetcher is the optional read-ahead surface of a Store: a scan that
// knows which page it will visit next can hint it so the page is
// resident by the time the hop happens. Prefetch is best-effort and
// asynchronous; it never blocks and its errors are swallowed.
type Prefetcher interface {
	Prefetch(id base.PageID)
}

// PagedStore implements Store over a storage.Store, serializing nodes
// with the page codec. It is the disk-resident substrate: combined with
// storage.FileStore (+ BufferPool, + Latency) it exercises the regime
// the paper was written for, where a node is a page of secondary
// storage. The first allocated page holds the prime block.
//
// Over a BufferPool the store works frame-native: Get pins the page's
// frame, reuses the decoded node cached on the frame when the bytes
// have not changed (the common warm-cache case — no page read, no
// decode, no allocation), and decodes in place under the frame latch
// otherwise; Put encodes into the frame in place and caches the node it
// just encoded. Nodes are immutable snapshots, so a cached node can be
// shared freely; the pin only spans the decode or encode, never the
// caller's use of the node, which is what lets the tree above stay
// lock-free while frames are evicted and reused underneath it (the
// §5.3 epoch rules gate the Free, the pool's write-back gates the frame
// reuse).
type PagedStore struct {
	under  storage.Store
	pool   *storage.BufferPool // non-nil when under is (or wraps) a pool
	prime  base.PageID
	closed atomic.Bool

	// primeCache keeps the decoded prime block behind an atomic pointer:
	// every descend starts with ReadPrime, and re-reading + re-decoding
	// a page per operation would dominate warm-cache serving. primeMu
	// orders WritePrime and cache fills so a stale fill can never
	// overwrite a newer write.
	primeMu    sync.Mutex
	primeCache atomic.Pointer[Prime]

	gets, puts atomic.Uint64
}

// NewPagedStore initializes a paged node store on under, allocating and
// writing an empty prime block. When under is a *storage.BufferPool the
// store uses its pin/unpin surface for zero-copy node access.
func NewPagedStore(under storage.Store) (*PagedStore, error) {
	id, err := under.Allocate()
	if err != nil {
		return nil, fmt.Errorf("node: allocate prime page: %w", err)
	}
	s := &PagedStore{under: under, prime: id}
	if pool, ok := under.(*storage.BufferPool); ok {
		s.pool = pool
	}
	if err := s.WritePrime(Prime{}); err != nil {
		return nil, err
	}
	return s, nil
}

// MaxPairs returns the per-node pair capacity of this store's pages.
func (s *PagedStore) MaxPairs() int { return MaxPairs(s.under.PageSize()) }

// Pool returns the buffer pool beneath the store, or nil when the
// substrate is unpooled.
func (s *PagedStore) Pool() *storage.BufferPool { return s.pool }

// Get implements Store.
func (s *PagedStore) Get(id base.PageID) (*Node, error) {
	if s.closed.Load() {
		return nil, base.ErrClosed
	}
	s.gets.Add(1)
	if s.pool != nil {
		return s.getPooled(id)
	}
	buf := make([]byte, s.under.PageSize())
	if err := s.under.Read(id, buf); err != nil {
		return nil, err
	}
	return Decode(id, buf)
}

// getPooled reads a node through the pool's pin surface. The cached
// object is set only under the frame latch, so it always corresponds to
// the frame's current bytes; two racing readers may both decode and
// both cache, which is benign (equal content, immutable nodes).
func (s *PagedStore) getPooled(id base.PageID) (*Node, error) {
	fr, err := s.pool.Pin(id)
	if err != nil {
		return nil, err
	}
	if obj := fr.CachedObject(); obj != nil {
		s.pool.Unpin(fr)
		return obj.(*Node), nil
	}
	fr.RLock()
	n, err := Decode(id, fr.Data())
	if err == nil {
		fr.SetCachedObject(n)
	}
	fr.RUnlock()
	s.pool.Unpin(fr)
	return n, err
}

// Put implements Store.
func (s *PagedStore) Put(n *Node) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	s.puts.Add(1)
	if s.pool != nil {
		fr, err := s.pool.Pin(n.ID)
		if err != nil {
			return err
		}
		fr.Lock()
		err = Encode(n, fr.Data())
		if err == nil {
			fr.SetCachedObject(n)
			fr.MarkDirty()
		}
		fr.Unlock()
		s.pool.Unpin(fr)
		return err
	}
	buf := make([]byte, s.under.PageSize())
	if err := Encode(n, buf); err != nil {
		return err
	}
	return s.under.Write(n.ID, buf)
}

// Allocate implements Store.
func (s *PagedStore) Allocate() (base.PageID, error) {
	if s.closed.Load() {
		return base.NilPage, base.ErrClosed
	}
	return s.under.Allocate()
}

// Free implements Store.
func (s *PagedStore) Free(id base.PageID) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	return s.under.Free(id)
}

// Prefetch implements Prefetcher: it hints the pool to fault id in
// ahead of demand. No-op without a pool.
func (s *PagedStore) Prefetch(id base.PageID) {
	if s.pool != nil && !s.closed.Load() {
		s.pool.Prefetch(id)
	}
}

// ReadPrime implements Store.
func (s *PagedStore) ReadPrime() (Prime, error) {
	if s.closed.Load() {
		return Prime{}, base.ErrClosed
	}
	// Same sharing discipline as MemStore.ReadPrime: the returned value
	// shallow-copies the cached block, so callers must treat it as
	// read-only (they already must — MemStore shares identically).
	if p := s.primeCache.Load(); p != nil {
		return *p, nil
	}
	s.primeMu.Lock()
	defer s.primeMu.Unlock()
	if p := s.primeCache.Load(); p != nil {
		return *p, nil
	}
	buf := make([]byte, s.under.PageSize())
	if err := s.under.Read(s.prime, buf); err != nil {
		return Prime{}, err
	}
	p, err := DecodePrime(buf)
	if err != nil {
		return Prime{}, err
	}
	s.primeCache.Store(&p)
	return p, nil
}

// WritePrime implements Store.
func (s *PagedStore) WritePrime(p Prime) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	buf := make([]byte, s.under.PageSize())
	if err := EncodePrime(p, buf); err != nil {
		return err
	}
	s.primeMu.Lock()
	defer s.primeMu.Unlock()
	if err := s.under.Write(s.prime, buf); err != nil {
		return err
	}
	cp := p.Clone()
	s.primeCache.Store(&cp)
	return nil
}

// Pages implements Store (excludes the prime page).
func (s *PagedStore) Pages() int { return s.under.Pages() - 1 }

// Close implements Store.
func (s *PagedStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.under.Close()
}

// Ops returns the lifetime get and put counts.
func (s *PagedStore) Ops() (gets, puts uint64) {
	return s.gets.Load(), s.puts.Load()
}
