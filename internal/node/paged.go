package node

import (
	"fmt"
	"sync/atomic"

	"blinktree/internal/base"
	"blinktree/internal/storage"
)

// PagedStore implements Store over a storage.Store, serializing nodes
// with the page codec. It is the disk-resident substrate: combined with
// storage.FileStore (+ BufferPool, + Latency) it exercises the regime
// the paper was written for, where a node is a page of secondary
// storage. The first allocated page holds the prime block.
type PagedStore struct {
	under  storage.Store
	prime  base.PageID
	closed atomic.Bool

	gets, puts atomic.Uint64
}

// NewPagedStore initializes a paged node store on under, allocating and
// writing an empty prime block.
func NewPagedStore(under storage.Store) (*PagedStore, error) {
	id, err := under.Allocate()
	if err != nil {
		return nil, fmt.Errorf("node: allocate prime page: %w", err)
	}
	s := &PagedStore{under: under, prime: id}
	if err := s.WritePrime(Prime{}); err != nil {
		return nil, err
	}
	return s, nil
}

// MaxPairs returns the per-node pair capacity of this store's pages.
func (s *PagedStore) MaxPairs() int { return MaxPairs(s.under.PageSize()) }

// Get implements Store.
func (s *PagedStore) Get(id base.PageID) (*Node, error) {
	if s.closed.Load() {
		return nil, base.ErrClosed
	}
	buf := make([]byte, s.under.PageSize())
	if err := s.under.Read(id, buf); err != nil {
		return nil, err
	}
	s.gets.Add(1)
	return Decode(id, buf)
}

// Put implements Store.
func (s *PagedStore) Put(n *Node) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	buf := make([]byte, s.under.PageSize())
	if err := Encode(n, buf); err != nil {
		return err
	}
	s.puts.Add(1)
	return s.under.Write(n.ID, buf)
}

// Allocate implements Store.
func (s *PagedStore) Allocate() (base.PageID, error) {
	if s.closed.Load() {
		return base.NilPage, base.ErrClosed
	}
	return s.under.Allocate()
}

// Free implements Store.
func (s *PagedStore) Free(id base.PageID) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	return s.under.Free(id)
}

// ReadPrime implements Store.
func (s *PagedStore) ReadPrime() (Prime, error) {
	if s.closed.Load() {
		return Prime{}, base.ErrClosed
	}
	buf := make([]byte, s.under.PageSize())
	if err := s.under.Read(s.prime, buf); err != nil {
		return Prime{}, err
	}
	return DecodePrime(buf)
}

// WritePrime implements Store.
func (s *PagedStore) WritePrime(p Prime) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	buf := make([]byte, s.under.PageSize())
	if err := EncodePrime(p, buf); err != nil {
		return err
	}
	return s.under.Write(s.prime, buf)
}

// Pages implements Store (excludes the prime page).
func (s *PagedStore) Pages() int { return s.under.Pages() - 1 }

// Close implements Store.
func (s *PagedStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.under.Close()
}

// Ops returns the lifetime get and put counts.
func (s *PagedStore) Ops() (gets, puts uint64) {
	return s.gets.Load(), s.puts.Load()
}
