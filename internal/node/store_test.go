package node

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
	"blinktree/internal/storage"
)

func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore() },
		"paged-mem": func() Store {
			s, err := NewPagedStore(storage.NewMemStore(512))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"paged-file": func() Store {
			fs, err := storage.NewFileStore(filepath.Join(t.TempDir(), "n.db"), 512)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewPagedStore(fs)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestStoreNodeRoundTrip(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			n := &Node{
				ID: id, Leaf: true, Root: true,
				Low: base.FiniteBound(3), High: base.FiniteBound(99),
				Link: 0, Keys: []base.Key{5, 9}, Vals: []base.Value{50, 90},
			}
			if err := s.Put(n); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != id || !got.Leaf || !got.Root ||
				!got.Low.Equal(n.Low) || !got.High.Equal(n.High) ||
				!reflect.DeepEqual(got.Keys, n.Keys) || !reflect.DeepEqual(got.Vals, n.Vals) {
				t.Fatalf("round trip mismatch: %v vs %v", got, n)
			}
		})
	}
}

func TestStoreInternalNodeRoundTrip(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			id, _ := s.Allocate()
			n := &Node{
				ID: id, Deleted: true, OutLink: 77,
				Low: base.NegInfBound(), High: base.PosInfBound(),
				Link: 42, Keys: []base.Key{10}, Children: []base.PageID{1, 2},
			}
			if err := s.Put(n); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if got.Leaf || !got.Deleted || got.OutLink != 77 || got.Link != 42 ||
				got.Low.Kind != base.NegInf || got.High.Kind != base.PosInf ||
				!reflect.DeepEqual(got.Children, n.Children) {
				t.Fatalf("round trip mismatch: %+v", got)
			}
		})
	}
}

func TestStorePrime(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			p, err := s.ReadPrime()
			if err != nil {
				t.Fatal(err)
			}
			if p.Levels != 0 || p.Root != base.NilPage {
				t.Fatalf("fresh prime not empty: %+v", p)
			}
			want := Prime{Root: 9, Levels: 2, Leftmost: []base.PageID{5, 9}}
			if err := s.WritePrime(want); err != nil {
				t.Fatal(err)
			}
			got, err := s.ReadPrime()
			if err != nil {
				t.Fatal(err)
			}
			if got.Root != 9 || got.Levels != 2 || !reflect.DeepEqual(got.Leftmost, want.Leftmost) {
				t.Fatalf("prime mismatch: %+v", got)
			}
		})
	}
}

func TestStoreGetUnallocated(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			if _, err := s.Get(base.PageID(999)); err == nil {
				t.Fatal("Get of unallocated page must fail")
			}
		})
	}
}

func TestStoreFreeReuse(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			id, _ := s.Allocate()
			before := s.Pages()
			if err := s.Free(id); err != nil {
				t.Fatal(err)
			}
			if s.Pages() != before-1 {
				t.Fatalf("Pages() after free = %d, want %d", s.Pages(), before-1)
			}
		})
	}
}

// TestMemStoreSnapshotIsolation: a Get taken before a Put must keep
// observing the old image (snapshots are immutable).
func TestMemStoreSnapshotIsolation(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	id, _ := s.Allocate()
	v1 := &Node{ID: id, Leaf: true, High: base.PosInfBound(), Keys: []base.Key{1}, Vals: []base.Value{10}}
	if err := s.Put(v1); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Get(id)
	v2 := v1.InsertLeafPair(2, 20)
	v2.ID = id
	if err := s.Put(v2); err != nil {
		t.Fatal(err)
	}
	if len(snap.Keys) != 1 {
		t.Fatal("old snapshot changed under a later Put")
	}
	cur, _ := s.Get(id)
	if len(cur.Keys) != 2 {
		t.Fatal("Put not visible to later Get")
	}
}

func TestMemStoreConcurrentGetPut(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	id, _ := s.Allocate()
	if err := s.Put(leafWith(id, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Put(leafWith(id, i)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3000; i++ {
		n, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// Each snapshot must be internally consistent: key == value/10.
		for j, k := range n.Keys {
			if base.Value(k*10) != n.Vals[j] {
				t.Fatalf("torn snapshot: %v", n)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func leafWith(id base.PageID, gen int) *Node {
	n := &Node{ID: id, Leaf: true, High: base.PosInfBound()}
	for j := 0; j <= gen%8; j++ {
		k := base.Key(gen + j)
		n.Keys = append(n.Keys, k)
		n.Vals = append(n.Vals, base.Value(k*10))
	}
	return n
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Decode(1, make([]byte, 64)); err == nil {
		t.Fatal("Decode accepted zero page")
	}
	if _, err := DecodePrime(make([]byte, 64)); err == nil {
		t.Fatal("DecodePrime accepted zero page")
	}
	// A node page is not a prime block and vice versa.
	buf := make([]byte, 256)
	n := &Node{ID: 1, Leaf: true, High: base.PosInfBound()}
	if err := Encode(n, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePrime(buf); err == nil {
		t.Fatal("DecodePrime accepted a node page")
	}
	if err := EncodePrime(Prime{Root: 1, Levels: 1, Leftmost: []base.PageID{1}}, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(1, buf); err == nil {
		t.Fatal("Decode accepted a prime page")
	}
}

func TestCodecTooSmallPage(t *testing.T) {
	n := &Node{ID: 1, Leaf: true, High: base.PosInfBound()}
	for i := 0; i < 10; i++ {
		n.Keys = append(n.Keys, base.Key(i))
		n.Vals = append(n.Vals, 0)
	}
	buf := make([]byte, 64) // too small for 10 pairs
	if err := Encode(n, buf); err == nil {
		t.Fatal("Encode must reject an oversized node")
	}
}

func TestMaxPairsFitsPage(t *testing.T) {
	for _, ps := range []int{256, 512, 4096} {
		m := MaxPairs(ps)
		if m < 1 {
			t.Fatalf("MaxPairs(%d) = %d", ps, m)
		}
		// A leaf and an internal node of m pairs must both encode.
		leaf := &Node{ID: 1, Leaf: true, High: base.PosInfBound()}
		inner := &Node{ID: 2, High: base.PosInfBound(), Children: []base.PageID{1}}
		for i := 0; i < m; i++ {
			leaf.Keys = append(leaf.Keys, base.Key(i))
			leaf.Vals = append(leaf.Vals, 0)
			inner.Keys = append(inner.Keys, base.Key(i))
			inner.Children = append(inner.Children, base.PageID(i+2))
		}
		buf := make([]byte, ps)
		if err := Encode(leaf, buf); err != nil {
			t.Fatalf("leaf of MaxPairs(%d) does not fit: %v", ps, err)
		}
		if err := Encode(inner, buf); err != nil {
			t.Fatalf("internal of MaxPairs(%d) does not fit: %v", ps, err)
		}
	}
}

// Property: Encode/Decode round-trips arbitrary well-formed nodes.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(leaf bool, root, deleted bool, low, high uint64, link, out uint32, rawKeys []uint64) bool {
		n := &Node{
			ID: 1, Leaf: leaf, Root: root, Deleted: deleted,
			Link: base.PageID(link), OutLink: base.PageID(out),
			High: base.PosInfBound(),
		}
		if low%3 == 0 {
			n.Low = base.FiniteBound(base.Key(low))
		}
		if high%2 == 0 && high >= low {
			n.High = base.FiniteBound(base.Key(high))
		}
		if len(rawKeys) > 20 {
			rawKeys = rawKeys[:20]
		}
		for i, k := range rawKeys {
			n.Keys = append(n.Keys, base.Key(k))
			if leaf {
				n.Vals = append(n.Vals, base.Value(k+1))
			} else {
				n.Children = append(n.Children, base.PageID(i+2))
			}
		}
		if !leaf {
			n.Children = append(n.Children, base.PageID(len(rawKeys)+2))
		}
		buf := make([]byte, 512)
		if err := Encode(n, buf); err != nil {
			return true // oversized for the page: not a round-trip case
		}
		got, err := Decode(1, buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, normalize(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// normalize maps empty slices to nil so DeepEqual compares decoded
// (nil-slices) against constructed nodes.
func normalize(n *Node) *Node {
	c := *n
	if len(c.Keys) == 0 {
		c.Keys = make([]base.Key, 0)
	}
	if c.Leaf {
		if len(c.Vals) == 0 {
			c.Vals = make([]base.Value, 0)
		}
		c.Children = nil
	} else {
		c.Vals = nil
	}
	return &c
}

func TestCodecExtremeKeys(t *testing.T) {
	n := &Node{
		ID: 1, Leaf: true,
		Low:  base.FiniteBound(0),
		High: base.FiniteBound(base.Key(math.MaxUint64)),
		Keys: []base.Key{1, base.Key(math.MaxUint64)},
		Vals: []base.Value{base.Value(math.MaxUint64), 0},
	}
	buf := make([]byte, 256)
	if err := Encode(n, buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Keys, n.Keys) || !reflect.DeepEqual(got.Vals, n.Vals) {
		t.Fatal("extreme keys mangled")
	}
	if !bytes.Equal(buf[0:4], []byte("BLNK")) {
		t.Fatal("magic missing")
	}
}
