package node

import (
	"encoding/binary"
	"fmt"

	"blinktree/internal/base"
)

// Page layout (little endian). All multi-byte fields are fixed width so
// a node image is decodable without scanning.
//
//	offset  size  field
//	0       4     magic "BLNK"
//	4       1     flags (bit0 leaf, bit1 root, bit2 deleted,
//	              bit3 low finite, bit4 high finite, bit5 high +inf)
//	5       1     reserved
//	6       2     nkeys (uint16)
//	8       8     low key (meaningful iff low finite)
//	16      8     high key (meaningful iff high finite)
//	24      4     link page id
//	28      4     outlink page id
//	32      -     nkeys × 8-byte keys, then payload:
//	              leaf: nkeys × 8-byte values
//	              internal: (nkeys+1) × 4-byte child ids
//
// The prime block uses the same magic with flag bit6 set:
//
//	0   4  magic
//	4   1  flags (bit6 prime)
//	5   3  reserved
//	8   4  root page id
//	12  4  levels
//	16  -  levels × 4-byte leftmost ids
const (
	headerSize = 32

	flagLeaf       = 1 << 0
	flagRoot       = 1 << 1
	flagDeleted    = 1 << 2
	flagLowFinite  = 1 << 3
	flagHighFinite = 1 << 4
	flagHighPosInf = 1 << 5
	flagPrime      = 1 << 6
)

var magic = [4]byte{'B', 'L', 'N', 'K'}

// MaxPairs returns the largest pair count a node can hold in a page of
// pageSize bytes. Internal nodes are the tighter constraint only for
// tiny pages; both are computed and the minimum returned.
func MaxPairs(pageSize int) int {
	// leaf: header + n*8 + n*8
	leaf := (pageSize - headerSize) / 16
	// internal: header + n*8 + (n+1)*4
	internal := (pageSize - headerSize - 4) / 12
	if internal < leaf {
		return internal
	}
	return leaf
}

// EncodedSize returns the number of bytes the node occupies when
// encoded.
func EncodedSize(n *Node) int {
	if n.Leaf {
		return headerSize + len(n.Keys)*16
	}
	return headerSize + len(n.Keys)*8 + len(n.Children)*4
}

// Encode writes n into buf, which must be large enough (a full page).
func Encode(n *Node, buf []byte) error {
	need := EncodedSize(n)
	if len(buf) < need {
		return fmt.Errorf("%w: node %d needs %d bytes, page is %d", base.ErrCorrupt, n.ID, need, len(buf))
	}
	clear(buf)
	copy(buf[0:4], magic[:])
	var flags byte
	if n.Leaf {
		flags |= flagLeaf
	}
	if n.Root {
		flags |= flagRoot
	}
	if n.Deleted {
		flags |= flagDeleted
	}
	switch n.Low.Kind {
	case base.Finite:
		flags |= flagLowFinite
		binary.LittleEndian.PutUint64(buf[8:], uint64(n.Low.K))
	case base.PosInf:
		return fmt.Errorf("%w: node %d low bound is +inf", base.ErrCorrupt, n.ID)
	}
	switch n.High.Kind {
	case base.Finite:
		flags |= flagHighFinite
		binary.LittleEndian.PutUint64(buf[16:], uint64(n.High.K))
	case base.PosInf:
		flags |= flagHighPosInf
	default:
		return fmt.Errorf("%w: node %d high bound is -inf", base.ErrCorrupt, n.ID)
	}
	buf[4] = flags
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(n.Keys)))
	binary.LittleEndian.PutUint32(buf[24:], uint32(n.Link))
	binary.LittleEndian.PutUint32(buf[28:], uint32(n.OutLink))

	off := headerSize
	for _, k := range n.Keys {
		binary.LittleEndian.PutUint64(buf[off:], uint64(k))
		off += 8
	}
	if n.Leaf {
		for _, v := range n.Vals {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	} else {
		for _, c := range n.Children {
			binary.LittleEndian.PutUint32(buf[off:], uint32(c))
			off += 4
		}
	}
	return nil
}

// Decode parses a node image. id is the page it was read from.
func Decode(id base.PageID, buf []byte) (*Node, error) {
	if len(buf) < headerSize || [4]byte(buf[0:4]) != magic {
		return nil, fmt.Errorf("%w: page %d has no node magic", base.ErrCorrupt, id)
	}
	flags := buf[4]
	if flags&flagPrime != 0 {
		return nil, fmt.Errorf("%w: page %d is a prime block", base.ErrCorrupt, id)
	}
	n := &Node{
		ID:      id,
		Leaf:    flags&flagLeaf != 0,
		Root:    flags&flagRoot != 0,
		Deleted: flags&flagDeleted != 0,
		Link:    base.PageID(binary.LittleEndian.Uint32(buf[24:])),
		OutLink: base.PageID(binary.LittleEndian.Uint32(buf[28:])),
	}
	if flags&flagLowFinite != 0 {
		n.Low = base.FiniteBound(base.Key(binary.LittleEndian.Uint64(buf[8:])))
	}
	switch {
	case flags&flagHighFinite != 0:
		n.High = base.FiniteBound(base.Key(binary.LittleEndian.Uint64(buf[16:])))
	case flags&flagHighPosInf != 0:
		n.High = base.PosInfBound()
	default:
		return nil, fmt.Errorf("%w: page %d high bound is -inf", base.ErrCorrupt, id)
	}
	nkeys := int(binary.LittleEndian.Uint16(buf[6:]))
	need := headerSize + nkeys*8
	if n.Leaf {
		need += nkeys * 8
	} else {
		need += (nkeys + 1) * 4
	}
	if len(buf) < need {
		return nil, fmt.Errorf("%w: page %d truncated (%d < %d)", base.ErrCorrupt, id, len(buf), need)
	}
	off := headerSize
	n.Keys = make([]base.Key, nkeys)
	for i := range n.Keys {
		n.Keys[i] = base.Key(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	if n.Leaf {
		n.Vals = make([]base.Value, nkeys)
		for i := range n.Vals {
			n.Vals[i] = base.Value(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	} else {
		n.Children = make([]base.PageID, nkeys+1)
		for i := range n.Children {
			n.Children[i] = base.PageID(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	}
	return n, nil
}

// EncodePrime writes the prime block into buf.
func EncodePrime(p Prime, buf []byte) error {
	need := 16 + 4*p.Levels
	if len(buf) < need {
		return fmt.Errorf("%w: prime block needs %d bytes, page is %d", base.ErrCorrupt, need, len(buf))
	}
	if p.Levels != len(p.Leftmost) {
		return fmt.Errorf("%w: prime block levels %d != leftmost %d", base.ErrCorrupt, p.Levels, len(p.Leftmost))
	}
	clear(buf)
	copy(buf[0:4], magic[:])
	buf[4] = flagPrime
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.Root))
	binary.LittleEndian.PutUint32(buf[12:], uint32(p.Levels))
	off := 16
	for _, id := range p.Leftmost {
		binary.LittleEndian.PutUint32(buf[off:], uint32(id))
		off += 4
	}
	return nil
}

// DecodePrime parses a prime block image.
func DecodePrime(buf []byte) (Prime, error) {
	if len(buf) < 16 || [4]byte(buf[0:4]) != magic || buf[4]&flagPrime == 0 {
		return Prime{}, fmt.Errorf("%w: not a prime block", base.ErrCorrupt)
	}
	p := Prime{
		Root:   base.PageID(binary.LittleEndian.Uint32(buf[8:])),
		Levels: int(binary.LittleEndian.Uint32(buf[12:])),
	}
	if len(buf) < 16+4*p.Levels {
		return Prime{}, fmt.Errorf("%w: prime block truncated", base.ErrCorrupt)
	}
	p.Leftmost = make([]base.PageID, p.Levels)
	off := 16
	for i := range p.Leftmost {
		p.Leftmost[i] = base.PageID(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return p, nil
}
