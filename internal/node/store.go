package node

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
)

// Store provides the paper's get/put model over Nodes (§2.2): Get and
// Put of a single page are indivisible, Get never blocks (not even on a
// locked node — locks live in a separate table), and a Get concurrent
// with a Put returns a complete before- or after-image.
//
// Nodes returned by Get are immutable snapshots and must not be
// modified; Put publishes a new snapshot for the page named by n.ID.
type Store interface {
	// Get returns the current snapshot of the page.
	Get(id base.PageID) (*Node, error)
	// Put atomically replaces the snapshot of page n.ID.
	Put(n *Node) error
	// Allocate reserves a fresh page id.
	Allocate() (base.PageID, error)
	// Free returns a page to the allocator.
	Free(id base.PageID) error
	// ReadPrime returns the current prime block.
	ReadPrime() (Prime, error)
	// WritePrime atomically replaces the prime block.
	WritePrime(Prime) error
	// Pages returns the number of allocated node pages.
	Pages() int
	// Close releases resources.
	Close() error
}

// MemStore keeps node snapshots in memory behind atomic pointers. It is
// the fastest substrate and the reference implementation of the
// indivisibility contract: Put is a single pointer swap.
type MemStore struct {
	mu     sync.RWMutex // guards growth of slots
	slots  []*slot
	free   []base.PageID
	prime  atomic.Pointer[Prime]
	closed atomic.Bool

	gets, puts atomic.Uint64
}

type slot struct {
	n atomic.Pointer[Node] // nil when the page is unallocated
}

// NewMemStore returns an empty in-memory node store with an empty prime
// block (no root).
func NewMemStore() *MemStore {
	s := &MemStore{}
	s.prime.Store(&Prime{})
	return s
}

func (s *MemStore) slotFor(id base.PageID) (*slot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := int(id)
	if i <= 0 || i > len(s.slots) || s.slots[i-1] == nil {
		return nil, fmt.Errorf("%w: page %d unallocated", base.ErrCorrupt, id)
	}
	return s.slots[i-1], nil
}

// Get implements Store.
func (s *MemStore) Get(id base.PageID) (*Node, error) {
	if s.closed.Load() {
		return nil, base.ErrClosed
	}
	sl, err := s.slotFor(id)
	if err != nil {
		return nil, err
	}
	s.gets.Add(1)
	n := sl.n.Load()
	if n == nil {
		return nil, fmt.Errorf("%w: page %d never written", base.ErrCorrupt, id)
	}
	return n, nil
}

// Put implements Store.
func (s *MemStore) Put(n *Node) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	if n.ID == base.NilPage {
		return fmt.Errorf("%w: Put of node with nil id", base.ErrCorrupt)
	}
	sl, err := s.slotFor(n.ID)
	if err != nil {
		return err
	}
	s.puts.Add(1)
	sl.n.Store(n)
	return nil
}

// Allocate implements Store.
func (s *MemStore) Allocate() (base.PageID, error) {
	if s.closed.Load() {
		return base.NilPage, base.ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		id := s.free[n-1]
		s.free = s.free[:n-1]
		s.slots[id-1] = &slot{}
		return id, nil
	}
	s.slots = append(s.slots, &slot{})
	return base.PageID(len(s.slots)), nil
}

// Free implements Store.
func (s *MemStore) Free(id base.PageID) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := int(id)
	if i <= 0 || i > len(s.slots) || s.slots[i-1] == nil {
		return fmt.Errorf("%w: Free of unallocated page %d", base.ErrCorrupt, id)
	}
	s.slots[i-1] = nil
	s.free = append(s.free, id)
	return nil
}

// ReadPrime implements Store.
func (s *MemStore) ReadPrime() (Prime, error) {
	if s.closed.Load() {
		return Prime{}, base.ErrClosed
	}
	return *s.prime.Load(), nil
}

// WritePrime implements Store.
func (s *MemStore) WritePrime(p Prime) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	cp := p.Clone()
	s.prime.Store(&cp)
	return nil
}

// Pages implements Store.
func (s *MemStore) Pages() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, sl := range s.slots {
		if sl != nil {
			n++
		}
	}
	return n
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.closed.Store(true)
	return nil
}

// Ops returns the lifetime get and put counts, the paper's physical-
// operation counts.
func (s *MemStore) Ops() (gets, puts uint64) {
	return s.gets.Load(), s.puts.Load()
}
