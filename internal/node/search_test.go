package node

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"blinktree/internal/base"
)

// findKeyLinear is the reference implementation findKey must agree
// with: the smallest i with keys[i] >= k.
func findKeyLinear(keys []base.Key, k base.Key) int {
	for i, kk := range keys {
		if kk >= k {
			return i
		}
	}
	return len(keys)
}

// TestFindKeyDifferential checks the binary search (and its
// small-node linear fallback) against the linear reference on
// randomized sorted nodes, probing every stored key, every gap
// between keys, and the boundary cases — below the first key, the
// exact first and last keys, beyond the high key, and the extremes of
// the key space.
func TestFindKeyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200) // crosses linearMax in both directions
		keys := make([]base.Key, 0, n)
		seen := map[base.Key]bool{}
		for len(keys) < n {
			k := base.Key(rng.Uint64() >> uint(rng.Intn(40))) // mix dense and sparse
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		probe := func(k base.Key) {
			got, want := findKey(keys, k), findKeyLinear(keys, k)
			if got != want {
				t.Fatalf("trial %d: findKey(%d keys, %d) = %d, linear reference = %d", trial, len(keys), k, got, want)
			}
		}
		probe(0)
		probe(math.MaxUint64)
		for _, k := range keys {
			probe(k) // exact hit
			if k > 0 {
				probe(k - 1)
			}
			if k < math.MaxUint64 {
				probe(k + 1) // just past: includes beyond-last-key (high-key side)
			}
		}
		for i := 0; i < 32; i++ {
			probe(base.Key(rng.Uint64())) // random misses
		}
	}
}

// TestFindKeyThreshold pins the agreement exactly at the linear/binary
// crossover sizes so a future threshold change cannot hide a boundary
// bug.
func TestFindKeyThreshold(t *testing.T) {
	for _, n := range []int{0, 1, linearMax - 1, linearMax, linearMax + 1, 2 * linearMax} {
		keys := make([]base.Key, n)
		for i := range keys {
			keys[i] = base.Key(2*i + 10) // even keys: every odd probe is a miss
		}
		for k := base.Key(8); k < base.Key(2*n+14); k++ {
			got, want := findKey(keys, k), findKeyLinear(keys, k)
			if got != want {
				t.Fatalf("n=%d k=%d: findKey=%d linear=%d", n, k, got, want)
			}
		}
	}
}

func BenchmarkFindKey(b *testing.B) {
	for _, n := range []int{4, 16, 64, 128} {
		keys := make([]base.Key, n)
		for i := range keys {
			keys[i] = base.Key(i * 7)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var sink int
			for i := 0; i < b.N; i++ {
				sink += findKey(keys, base.Key(uint64(i*13)%uint64(n*7+7)))
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}
