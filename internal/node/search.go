// In-node key search. This is the innermost loop of every descent —
// each level of the tree runs exactly one findKey — so it is hand
// rolled rather than written with sort.Search: the closure form costs
// an indirect call per probe and kept the comparison from inlining
// (both visible in the point-op CPU profile as searchKeys.func1 /
// ChildFor.func1 before this file existed).
package node

import "blinktree/internal/base"

// linearMax is the node size at or below which findKey scans linearly.
// For a handful of keys a branch-predictable sequential scan over one
// cache line beats the data-dependent branches of a binary search; 8
// uint64 keys is one 64-byte line. Above it, binary search wins —
// production nodes run at MinPairs 16–64, i.e. up to ~128 keys.
const linearMax = 8

// findKey returns the smallest index i with keys[i] >= k (len(keys) if
// none). It is the common kernel of searchKeys and ChildFor and must
// agree exactly with the obvious linear scan — TestFindKeyDifferential
// checks that on randomized nodes.
func findKey(keys []base.Key, k base.Key) int {
	if len(keys) <= linearMax {
		for i, kk := range keys {
			if kk >= k {
				return i
			}
		}
		return len(keys)
	}
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
