// Package node defines the B-link tree node model shared by the Sagiv
// tree, the Lehman–Yao baseline, and the compression processes: nodes
// with a high value and a right link (Lehman–Yao, §2.1), extended with
// the low value and the deletion bit the compression algorithm needs
// (§5.1), plus the prime block (§3.3), the fixed-size page codec, and
// two node stores (in-memory and paged-over-storage).
//
// Nodes are immutable snapshots: a Node obtained from a Store must never
// be mutated. To change a node, Clone it, edit the copy, and Put it —
// this is precisely the paper's "read the node, change the data and
// rewrite it" protocol, and it is what makes get/put indivisible.
package node

import (
	"fmt"

	"blinktree/internal/base"
)

// Node is one page of a B-link tree.
//
// Internal-node layout (paper Fig. 1): Children[j] roots the subtree
// holding keys v with sep(j-1) < v ≤ sep(j), where sep(-1) = Low and
// sep(len(Keys)) = High; so len(Children) == len(Keys)+1.
//
// Leaf layout: Keys[i] holds Vals[i]; len(Vals) == len(Keys). A leaf's
// High may exceed its largest key after deletions (paper footnote 7).
type Node struct {
	ID      base.PageID
	Leaf    bool
	Root    bool        // the root bit of §3.3
	Deleted bool        // the deletion bit of §5.1
	OutLink base.PageID // when Deleted: the merge survivor to follow (§5.2 case 1)

	Low  base.Bound  // v₀: high value of the left neighbour, or −∞
	High base.Bound  // v_{i+1}: upper bound of this node's coverage, or +∞
	Link base.PageID // right neighbour at the same level; NilPage at the right edge

	Keys     []base.Key
	Vals     []base.Value  // leaves only
	Children []base.PageID // internal nodes only
}

// Clone returns a deep copy safe to mutate.
func (n *Node) Clone() *Node {
	c := *n
	c.Keys = append([]base.Key(nil), n.Keys...)
	c.Vals = append([]base.Value(nil), n.Vals...)
	c.Children = append([]base.PageID(nil), n.Children...)
	return &c
}

// Covers reports whether k belongs to this node's key range (Low, High].
func (n *Node) Covers(k base.Key) bool {
	return n.Low.Less(k) && n.High.GreaterEqual(k)
}

// HighLess reports whether the node's high value is smaller than k,
// i.e. the search for k must follow the link (paper §3.1).
func (n *Node) HighLess(k base.Key) bool { return n.High.Less(k) }

// searchKeys returns the position of k in Keys and whether it is present.
func (n *Node) searchKeys(k base.Key) (int, bool) {
	i := findKey(n.Keys, k)
	return i, i < len(n.Keys) && n.Keys[i] == k
}

// LeafFind returns the value stored under k in a leaf.
func (n *Node) LeafFind(k base.Key) (base.Value, bool) {
	if !n.Leaf {
		panic("node: LeafFind on internal node")
	}
	if i, ok := n.searchKeys(k); ok {
		return n.Vals[i], true
	}
	return 0, false
}

// ChildFor returns the child pointer to follow for k, assuming
// k ≤ High. This is the non-link half of the paper's next(A, v).
func (n *Node) ChildFor(k base.Key) base.PageID {
	if n.Leaf {
		panic("node: ChildFor on leaf")
	}
	return n.Children[findKey(n.Keys, k)]
}

// Next implements the paper's next(A, v): the link if v is beyond the
// high value, otherwise the child to descend into. followLink reports
// which case applied.
func (n *Node) Next(k base.Key) (next base.PageID, followLink bool) {
	if n.HighLess(k) {
		return n.Link, true
	}
	return n.ChildFor(k), false
}

// InsertLeafPair returns a copy of the leaf with (k, v) added. The key
// must be absent and the leaf must cover k.
func (n *Node) InsertLeafPair(k base.Key, v base.Value) *Node {
	i, ok := n.searchKeys(k)
	if ok {
		panic(fmt.Sprintf("node: InsertLeafPair duplicate key %d", k))
	}
	c := n.Clone()
	c.Keys = append(c.Keys, 0)
	copy(c.Keys[i+1:], c.Keys[i:])
	c.Keys[i] = k
	c.Vals = append(c.Vals, 0)
	copy(c.Vals[i+1:], c.Vals[i:])
	c.Vals[i] = v
	return c
}

// SetLeafValue returns a copy of the leaf with the value stored under k
// replaced by v. The key must be present — this is the in-place half of
// an upsert, which rewrites the node exactly like an insertion but
// cannot change its pair count.
func (n *Node) SetLeafValue(k base.Key, v base.Value) *Node {
	if !n.Leaf {
		panic("node: SetLeafValue on internal node")
	}
	i, ok := n.searchKeys(k)
	if !ok {
		panic(fmt.Sprintf("node: SetLeafValue of absent key %d", k))
	}
	c := n.Clone()
	c.Vals[i] = v
	return c
}

// DeleteLeafPair returns a copy of the leaf with k removed, or nil if k
// is absent.
func (n *Node) DeleteLeafPair(k base.Key) *Node {
	i, ok := n.searchKeys(k)
	if !ok {
		return nil
	}
	c := n.Clone()
	c.Keys = append(c.Keys[:i], c.Keys[i+1:]...)
	c.Vals = append(c.Vals[:i], c.Vals[i+1:]...)
	return c
}

// InsertSeparator returns a copy of the internal node with separator sep
// and the pointer to the new right sibling inserted: sep goes
// immediately left of the smallest key greater than it, and child goes
// just right of sep (paper §3.1). The separator must be absent.
func (n *Node) InsertSeparator(sep base.Key, child base.PageID) (*Node, error) {
	if n.Leaf {
		panic("node: InsertSeparator on leaf")
	}
	i, ok := n.searchKeys(sep)
	if ok {
		return nil, fmt.Errorf("%w: separator %d already present in node %d", base.ErrCorrupt, sep, n.ID)
	}
	c := n.Clone()
	c.Keys = append(c.Keys, 0)
	copy(c.Keys[i+1:], c.Keys[i:])
	c.Keys[i] = sep
	c.Children = append(c.Children, 0)
	copy(c.Children[i+2:], c.Children[i+1:])
	c.Children[i+1] = child
	return c, nil
}

// RemoveSeparator returns a copy with Keys[i] and Children[i+1] removed —
// the compression step that deletes "the old high value of A and the
// pointer to B" from the parent (§5.2 case 1). The removed child is the
// one to the right of the separator.
func (n *Node) RemoveSeparator(i int) *Node {
	if n.Leaf {
		panic("node: RemoveSeparator on leaf")
	}
	c := n.Clone()
	c.Keys = append(c.Keys[:i], c.Keys[i+1:]...)
	c.Children = append(c.Children[:i+1], c.Children[i+2:]...)
	return c
}

// Pairs returns the number of stored pairs: key/value pairs in a leaf,
// key/pointer pairs in an internal node (the paper counts an internal
// node's pairs as its separator count).
func (n *Node) Pairs() int { return len(n.Keys) }

// FindChild returns the index in Children of the pointer equal to id,
// or -1.
func (n *Node) FindChild(id base.PageID) int {
	for i, c := range n.Children {
		if c == id {
			return i
		}
	}
	return -1
}

// SeparatorAfter returns the bound that closes child index i's range:
// Keys[i] for all but the last child, High for the last.
func (n *Node) SeparatorAfter(i int) base.Bound {
	if i < len(n.Keys) {
		return base.FiniteBound(n.Keys[i])
	}
	return n.High
}

// SeparatorBefore returns the bound that opens child index i's range:
// Low for the first child, Keys[i-1] otherwise.
func (n *Node) SeparatorBefore(i int) base.Bound {
	if i == 0 {
		return n.Low
	}
	return base.FiniteBound(n.Keys[i-1])
}

// Split divides an over-full node (called with 2k+1 pairs, after the
// pending pair was added to a clone) into the retained left node and a
// fresh right node, following Fig. 3: the new right node B receives the
// upper half together with A's old high value and link; A keeps the
// lower half, its High becomes the separator, and its Link points to B.
// newID names B's page. The returned separator is A's new high value —
// the key to insert one level up.
//
// For internal nodes the middle key moves up exclusively (it becomes
// A.High and the parent separator but stays in neither half); for
// leaves it is retained in the left half, since leaf keys carry data.
func (n *Node) Split(newID base.PageID) (left, right *Node, sep base.Key) {
	if n.Pairs() < 2 {
		panic("node: Split of node with <2 pairs")
	}
	left = n.Clone()
	right = &Node{
		ID:   newID,
		Leaf: n.Leaf,
		High: n.High,
		Link: n.Link,
	}
	if n.Leaf {
		m := (len(n.Keys) + 1) / 2 // left keeps m pairs incl. separator key
		sep = n.Keys[m-1]
		right.Keys = append([]base.Key(nil), n.Keys[m:]...)
		right.Vals = append([]base.Value(nil), n.Vals[m:]...)
		left.Keys = left.Keys[:m]
		left.Vals = left.Vals[:m]
	} else {
		m := len(n.Keys) / 2 // Keys[m] moves up
		sep = n.Keys[m]
		right.Keys = append([]base.Key(nil), n.Keys[m+1:]...)
		right.Children = append([]base.PageID(nil), n.Children[m+1:]...)
		left.Keys = left.Keys[:m]
		left.Children = left.Children[:m+1]
	}
	right.Low = base.FiniteBound(sep)
	left.High = base.FiniteBound(sep)
	left.Link = newID
	left.Root = false // a split node is never the root afterwards
	return left, right, sep
}

// Validate performs local sanity checks on one node.
func (n *Node) Validate() error {
	for i := 1; i < len(n.Keys); i++ {
		if n.Keys[i-1] >= n.Keys[i] {
			return fmt.Errorf("%w: node %d keys out of order at %d", base.ErrCorrupt, n.ID, i)
		}
	}
	if len(n.Keys) > 0 {
		if !n.Low.Less(n.Keys[0]) {
			return fmt.Errorf("%w: node %d first key %d ≤ low %v", base.ErrCorrupt, n.ID, n.Keys[0], n.Low)
		}
		last := n.Keys[len(n.Keys)-1]
		if n.High.Less(last) {
			return fmt.Errorf("%w: node %d last key %d > high %v", base.ErrCorrupt, n.ID, last, n.High)
		}
	}
	if n.High.LessBound(n.Low) {
		return fmt.Errorf("%w: node %d high %v < low %v", base.ErrCorrupt, n.ID, n.High, n.Low)
	}
	if n.Leaf {
		if len(n.Vals) != len(n.Keys) {
			return fmt.Errorf("%w: leaf %d has %d vals for %d keys", base.ErrCorrupt, n.ID, len(n.Vals), len(n.Keys))
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("%w: leaf %d has children", base.ErrCorrupt, n.ID)
		}
	} else {
		if len(n.Children) != len(n.Keys)+1 {
			return fmt.Errorf("%w: internal %d has %d children for %d keys", base.ErrCorrupt, n.ID, len(n.Children), len(n.Keys))
		}
		if len(n.Vals) != 0 {
			return fmt.Errorf("%w: internal %d has values", base.ErrCorrupt, n.ID)
		}
	}
	return nil
}

// String renders a compact diagnostic form.
func (n *Node) String() string {
	kind := "internal"
	if n.Leaf {
		kind = "leaf"
	}
	flags := ""
	if n.Root {
		flags += "R"
	}
	if n.Deleted {
		flags += "D"
	}
	return fmt.Sprintf("%s %d%s (%v,%v] link=%d keys=%v", kind, n.ID, flags, n.Low, n.High, n.Link, n.Keys)
}

// Prime is the prime block of §3.3: the entry point every operation
// reads first. Leftmost[i] is the leftmost node at level i (leaves are
// level 0); Leftmost[Levels-1] is the root.
type Prime struct {
	Root     base.PageID
	Levels   int
	Leftmost []base.PageID
}

// Clone returns a deep copy.
func (p Prime) Clone() Prime {
	p.Leftmost = append([]base.PageID(nil), p.Leftmost...)
	return p
}
