package node

import (
	"math"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

func leafNode(id base.PageID, keys ...base.Key) *Node {
	n := &Node{ID: id, Leaf: true, High: base.PosInfBound()}
	for _, k := range keys {
		n.Keys = append(n.Keys, k)
		n.Vals = append(n.Vals, base.Value(k*10))
	}
	if len(keys) > 0 {
		n.High = base.FiniteBound(keys[len(keys)-1])
	}
	return n
}

func TestCoversAndNext(t *testing.T) {
	n := &Node{
		ID:       1,
		Low:      base.FiniteBound(10),
		High:     base.FiniteBound(40),
		Link:     9,
		Keys:     []base.Key{20, 30},
		Children: []base.PageID{2, 3, 4},
	}
	if n.Covers(10) {
		t.Fatal("low bound is exclusive")
	}
	if !n.Covers(11) || !n.Covers(40) {
		t.Fatal("range (10,40] must cover 11 and 40")
	}
	if n.Covers(41) {
		t.Fatal("high bound is inclusive upper limit")
	}

	tests := []struct {
		k    base.Key
		want base.PageID
		link bool
	}{
		{11, 2, false}, {20, 2, false},
		{21, 3, false}, {30, 3, false},
		{31, 4, false}, {40, 4, false},
		{41, 9, true}, {100, 9, true},
	}
	for _, tt := range tests {
		got, link := n.Next(tt.k)
		if got != tt.want || link != tt.link {
			t.Errorf("Next(%d) = (%d,%v), want (%d,%v)", tt.k, got, link, tt.want, tt.link)
		}
	}
}

func TestLeafFindInsertDelete(t *testing.T) {
	n := leafNode(1, 10, 20, 30)
	if v, ok := n.LeafFind(20); !ok || v != 200 {
		t.Fatalf("LeafFind(20) = (%d,%v)", v, ok)
	}
	if _, ok := n.LeafFind(25); ok {
		t.Fatal("LeafFind(25) found a missing key")
	}

	n2 := n.InsertLeafPair(25, 250)
	if got := n2.Keys; len(got) != 4 || got[0] != 10 || got[1] != 20 || got[2] != 25 || got[3] != 30 {
		t.Fatalf("keys after insert: %v", got)
	}
	if v, _ := n2.LeafFind(25); v != 250 {
		t.Fatal("inserted value lost")
	}
	// Original must be untouched (immutability contract).
	if len(n.Keys) != 3 {
		t.Fatal("InsertLeafPair mutated the receiver")
	}

	n3 := n2.DeleteLeafPair(20)
	if n3 == nil || len(n3.Keys) != 3 {
		t.Fatalf("delete failed: %v", n3)
	}
	if _, ok := n3.LeafFind(20); ok {
		t.Fatal("deleted key still found")
	}
	if n2.DeleteLeafPair(99) != nil {
		t.Fatal("delete of absent key must return nil")
	}
}

func TestInsertSeparator(t *testing.T) {
	n := &Node{
		ID:       1,
		High:     base.PosInfBound(),
		Keys:     []base.Key{20, 40},
		Children: []base.PageID{2, 3, 4},
	}
	n2, err := n.InsertSeparator(30, 99)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []base.Key{20, 30, 40}
	wantKids := []base.PageID{2, 3, 99, 4}
	for i, k := range wantKeys {
		if n2.Keys[i] != k {
			t.Fatalf("keys = %v, want %v", n2.Keys, wantKeys)
		}
	}
	for i, c := range wantKids {
		if n2.Children[i] != c {
			t.Fatalf("children = %v, want %v", n2.Children, wantKids)
		}
	}
	if _, err := n2.InsertSeparator(30, 7); err == nil {
		t.Fatal("duplicate separator must error")
	}
	// Separator beyond every key lands at the end.
	n3, err := n.InsertSeparator(50, 77)
	if err != nil {
		t.Fatal(err)
	}
	if n3.Keys[2] != 50 || n3.Children[3] != 77 {
		t.Fatalf("tail insert wrong: keys=%v children=%v", n3.Keys, n3.Children)
	}
}

func TestRemoveSeparator(t *testing.T) {
	n := &Node{
		ID:       1,
		High:     base.PosInfBound(),
		Keys:     []base.Key{20, 30, 40},
		Children: []base.PageID{2, 3, 4, 5},
	}
	n2 := n.RemoveSeparator(1) // removes key 30 and child 4
	if len(n2.Keys) != 2 || n2.Keys[0] != 20 || n2.Keys[1] != 40 {
		t.Fatalf("keys = %v", n2.Keys)
	}
	if len(n2.Children) != 3 || n2.Children[0] != 2 || n2.Children[1] != 3 || n2.Children[2] != 5 {
		t.Fatalf("children = %v", n2.Children)
	}
}

func TestSplitLeaf(t *testing.T) {
	n := leafNode(1, 10, 20, 30, 40, 50)
	n.High = base.PosInfBound()
	n.Link = base.NilPage
	n.Root = true
	left, right, sep := n.Split(2)

	if sep != 30 {
		t.Fatalf("sep = %d, want 30 (left keeps ceil half)", sep)
	}
	if len(left.Keys) != 3 || len(right.Keys) != 2 {
		t.Fatalf("split sizes %d/%d", len(left.Keys), len(right.Keys))
	}
	if !left.High.Equal(base.FiniteBound(30)) || left.Link != 2 {
		t.Fatalf("left high/link wrong: %v", left)
	}
	if !right.Low.Equal(base.FiniteBound(30)) || right.High.Kind != base.PosInf || right.Link != base.NilPage {
		t.Fatalf("right bounds wrong: %v", right)
	}
	if left.Root {
		t.Fatal("split node kept root bit")
	}
	// B gets A's high value and link (Fig. 3); values travel with keys.
	if v, ok := right.LeafFind(50); !ok || v != 500 {
		t.Fatal("right half lost a value")
	}
	if err := left.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := right.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitInternal(t *testing.T) {
	n := &Node{
		ID:       1,
		Low:      base.NegInfBound(),
		High:     base.FiniteBound(100),
		Link:     7,
		Keys:     []base.Key{10, 20, 30, 40, 50},
		Children: []base.PageID{11, 12, 13, 14, 15, 16},
	}
	left, right, sep := n.Split(2)
	if sep != 30 {
		t.Fatalf("sep = %d, want middle key 30", sep)
	}
	// The separator moves up exclusively: in neither half's keys.
	for _, k := range append(append([]base.Key{}, left.Keys...), right.Keys...) {
		if k == 30 {
			t.Fatal("separator retained in a half")
		}
	}
	if len(left.Keys) != 2 || len(left.Children) != 3 {
		t.Fatalf("left shape %d/%d", len(left.Keys), len(left.Children))
	}
	if len(right.Keys) != 2 || len(right.Children) != 3 {
		t.Fatalf("right shape %d/%d", len(right.Keys), len(right.Children))
	}
	if left.Children[2] != 13 || right.Children[0] != 14 {
		t.Fatal("children mispartitioned around separator")
	}
	if !left.High.Equal(base.FiniteBound(30)) || !right.Low.Equal(base.FiniteBound(30)) {
		t.Fatal("bounds not set to separator")
	}
	if !right.High.Equal(base.FiniteBound(100)) || right.Link != 7 {
		t.Fatal("right must inherit old high and link")
	}
	if err := left.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := right.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting a random leaf preserves the multiset of pairs and
// the coverage partition.
func TestSplitLeafProperty(t *testing.T) {
	f := func(raw []uint64) bool {
		// Build a sorted, deduped leaf with 2..64 keys.
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		seen := map[base.Key]bool{}
		n := &Node{ID: 1, Leaf: true, High: base.PosInfBound(), Link: 5}
		for _, r := range raw {
			k := base.Key(r % 100000)
			if !seen[k] {
				seen[k] = true
				n.Keys = append(n.Keys, k)
			}
		}
		if len(n.Keys) < 2 {
			return true
		}
		sortKeys(n.Keys)
		n.Vals = make([]base.Value, len(n.Keys))
		for i, k := range n.Keys {
			n.Vals[i] = base.Value(k + 1)
		}
		left, right, sep := n.Split(2)
		if left.Validate() != nil || right.Validate() != nil {
			return false
		}
		if !left.High.Equal(base.FiniteBound(sep)) || !right.Low.Equal(base.FiniteBound(sep)) {
			return false
		}
		if left.Keys[len(left.Keys)-1] != sep {
			return false // leaf split keeps separator as left's max key
		}
		// Pair preservation.
		got := map[base.Key]base.Value{}
		for i, k := range left.Keys {
			got[k] = left.Vals[i]
		}
		for i, k := range right.Keys {
			got[k] = right.Vals[i]
		}
		if len(got) != len(n.Keys) {
			return false
		}
		for i, k := range n.Keys {
			if got[k] != n.Vals[i] {
				return false
			}
		}
		// Balance: both halves ≥ floor(n/2) ≥ 1.
		return len(left.Keys) >= len(n.Keys)/2 && len(right.Keys) >= len(n.Keys)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortKeys(ks []base.Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j-1] > ks[j]; j-- {
			ks[j-1], ks[j] = ks[j], ks[j-1]
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name string
		n    *Node
	}{
		{"keys out of order", &Node{ID: 1, Leaf: true, High: base.PosInfBound(), Keys: []base.Key{2, 1}, Vals: []base.Value{0, 0}}},
		{"dup keys", &Node{ID: 1, Leaf: true, High: base.PosInfBound(), Keys: []base.Key{2, 2}, Vals: []base.Value{0, 0}}},
		{"key below low", &Node{ID: 1, Leaf: true, Low: base.FiniteBound(5), High: base.PosInfBound(), Keys: []base.Key{5}, Vals: []base.Value{0}}},
		{"key above high", &Node{ID: 1, Leaf: true, High: base.FiniteBound(3), Keys: []base.Key{4}, Vals: []base.Value{0}}},
		{"val count", &Node{ID: 1, Leaf: true, High: base.PosInfBound(), Keys: []base.Key{1}, Vals: nil}},
		{"child count", &Node{ID: 1, High: base.PosInfBound(), Keys: []base.Key{1}, Children: []base.PageID{2}}},
		{"high below low", &Node{ID: 1, Leaf: true, Low: base.FiniteBound(9), High: base.FiniteBound(3)}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.n.Validate(); err == nil {
				t.Fatalf("Validate accepted corrupt node %v", tt.n)
			}
		})
	}
	good := leafNode(1, 1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate rejected a good node: %v", err)
	}
}

func TestSeparatorBounds(t *testing.T) {
	n := &Node{
		ID:       1,
		Low:      base.FiniteBound(5),
		High:     base.FiniteBound(50),
		Keys:     []base.Key{10, 20},
		Children: []base.PageID{2, 3, 4},
	}
	if !n.SeparatorBefore(0).Equal(base.FiniteBound(5)) {
		t.Fatal("first child opens at Low")
	}
	if !n.SeparatorAfter(0).Equal(base.FiniteBound(10)) || !n.SeparatorBefore(1).Equal(base.FiniteBound(10)) {
		t.Fatal("middle separators wrong")
	}
	if !n.SeparatorAfter(2).Equal(base.FiniteBound(50)) {
		t.Fatal("last child closes at High")
	}
	if n.FindChild(3) != 1 || n.FindChild(99) != -1 {
		t.Fatal("FindChild wrong")
	}
}

func TestMaxKeyUsable(t *testing.T) {
	// The full key space including MaxUint64 must be storable because
	// infinities are out-of-band.
	n := leafNode(1, base.Key(math.MaxUint64))
	n.High = base.PosInfBound()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if !n.Covers(base.Key(math.MaxUint64)) {
		t.Fatal("max key not covered under +inf high")
	}
}
