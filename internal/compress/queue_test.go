package compress

import (
	"sync"
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/blink"
)

func ev(id base.PageID, level int, high base.Key) blink.UnderfullEvent {
	return blink.UnderfullEvent{ID: id, Level: level, High: base.FiniteBound(high)}
}

func TestQueueFIFOWithinLevel(t *testing.T) {
	q := NewQueue()
	q.Offer(ev(1, 0, 10), true)
	q.Offer(ev(2, 0, 20), true)
	q.Offer(ev(3, 0, 30), true)
	for _, want := range []base.PageID{1, 2, 3} {
		got, ok := q.TryPop()
		if !ok || got.ID != want {
			t.Fatalf("pop = (%v,%v), want id %d", got.ID, ok, want)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueHigherLevelFirst(t *testing.T) {
	q := NewQueue()
	q.Offer(ev(1, 0, 10), true)
	q.Offer(ev(2, 2, 20), true)
	q.Offer(ev(3, 1, 30), true)
	order := []base.PageID{2, 3, 1} // footnote 17: higher level first
	for _, want := range order {
		got, ok := q.TryPop()
		if !ok || got.ID != want {
			t.Fatalf("pop = (%v,%v), want %d", got.ID, ok, want)
		}
	}
}

func TestQueueDedupAndUpdate(t *testing.T) {
	q := NewQueue()
	q.Offer(ev(1, 0, 10), true)
	q.Offer(ev(1, 0, 99), true) // update=true: high refreshed
	if q.Len() != 1 {
		t.Fatalf("Len = %d after dup offer", q.Len())
	}
	got, _ := q.TryPop()
	if !got.High.Equal(base.FiniteBound(99)) {
		t.Fatalf("high = %v, want updated 99", got.High)
	}

	q.Offer(ev(2, 0, 10), true)
	q.Offer(ev(2, 0, 55), false) // update=false: untouched
	got, _ = q.TryPop()
	if !got.High.Equal(base.FiniteBound(10)) {
		t.Fatalf("high = %v, want original 10", got.High)
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue()
	q.Offer(ev(1, 0, 10), true)
	q.Offer(ev(2, 0, 20), true)
	q.Remove(1)
	if q.Len() != 1 {
		t.Fatalf("Len = %d after remove", q.Len())
	}
	got, ok := q.TryPop()
	if !ok || got.ID != 2 {
		t.Fatalf("pop = (%v,%v)", got.ID, ok)
	}
	q.Remove(99) // absent: no-op
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := NewQueue()
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Pop on closed empty queue returned ok")
	}
	q.Offer(ev(1, 0, 1), true) // dropped after close
	if q.Len() != 0 {
		t.Fatal("Offer after Close enqueued")
	}
}

func TestQueuePopBlocksUntilOffer(t *testing.T) {
	q := NewQueue()
	got := make(chan blink.UnderfullEvent)
	go func() {
		e, ok := q.Pop()
		if ok {
			got <- e
		}
	}()
	q.Offer(ev(7, 0, 70), true)
	e := <-got
	if e.ID != 7 {
		t.Fatalf("popped %d", e.ID)
	}
	q.Close()
}

func TestQueueConcurrentOfferPop(t *testing.T) {
	q := NewQueue()
	const producers, perProducer = 4, 200
	var wg sync.WaitGroup
	seen := make(chan base.PageID, producers*perProducer)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				e, ok := q.Pop()
				if !ok {
					return
				}
				seen <- e.ID
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				q.Offer(ev(base.PageID(p*perProducer+i+1), i%3, 1), true)
			}
		}(p)
	}
	pwg.Wait()
	// Wait for drain, then close.
	for q.Len() > 0 {
	}
	q.Close()
	wg.Wait()
	close(seen)
	ids := map[base.PageID]bool{}
	for id := range seen {
		if ids[id] {
			t.Fatalf("id %d popped twice", id)
		}
		ids[id] = true
	}
	if len(ids) != producers*perProducer {
		t.Fatalf("popped %d unique ids, want %d", len(ids), producers*perProducer)
	}
	st := q.Stats()
	if st.Offered != producers*perProducer || st.Popped != producers*perProducer {
		t.Fatalf("stats: %+v", st)
	}
}
