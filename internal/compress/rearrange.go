package compress

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
)

// rearrangeOutcome reports what happened to one (A, B) sibling pair.
type rearrangeOutcome int

const (
	// outcomeSkipped: neither sibling was underfull (footnote 15) or
	// the parent's view was stale; nothing was written.
	outcomeSkipped rearrangeOutcome = iota
	// outcomeMerged: B's pairs moved into A and B was deleted.
	outcomeMerged
	// outcomeRedistributed: pairs were shifted so both hold ≥ k.
	outcomeRedistributed
)

// rearrangeResult carries the after-images the caller needs for
// follow-up work (requeueing an underfull parent or survivor, retiring
// the deleted page).
type rearrangeResult struct {
	outcome  rearrangeOutcome
	parent   *node.Node  // F after rewrite (nil when skipped)
	survivor *node.Node  // A after rewrite (nil when skipped)
	deleted  base.PageID // B's page when merged, else NilPage
}

// rearrange performs the §5.2 "rearrange A and B" step. The caller
// holds locks (via h) on F, A and B, where A = F.Children[idx] and B is
// A's right sibling with its pointer at F.Children[idx+1]; snapshots
// are current. rearrange writes the three nodes in the paper's order —
// the child that gains data first, then the parent, then the other
// child — releasing each lock immediately after its node is rewritten,
// and returns with all three unlocked.
func rearrange(st node.Store, h *locks.Holder, f *node.Node, idx int, a, b *node.Node, k int) (rearrangeResult, error) {
	unlockAll := func() {
		h.Unlock(a.ID)
		h.Unlock(b.ID)
		h.Unlock(f.ID)
	}

	// Defensive staleness checks: the separator at idx must be exactly
	// A's high value and the adjacent pointers must be A and B. The
	// callers verify this from their own snapshots; re-verifying here
	// keeps the invariant local.
	if f.Children[idx] != a.ID || idx+1 >= len(f.Children) || f.Children[idx+1] != b.ID {
		unlockAll()
		return rearrangeResult{}, fmt.Errorf("%w: rearrange with stale parent view", base.ErrCorrupt)
	}
	if !f.SeparatorAfter(idx).Equal(a.High) || !a.High.Equal(b.Low) {
		unlockAll()
		return rearrangeResult{}, fmt.Errorf("%w: separator/high mismatch at parent %d idx %d", base.ErrCorrupt, f.ID, idx)
	}

	if a.Pairs() >= k && b.Pairs() >= k {
		// Footnote 15: A no longer needs compression; unlock without
		// rewriting.
		unlockAll()
		return rearrangeResult{outcome: outcomeSkipped}, nil
	}

	combined := a.Pairs() + b.Pairs()
	if !a.Leaf {
		combined++ // the separator is pulled down on an internal merge
	}
	if combined <= 2*k {
		return merge(st, h, f, idx, a, b)
	}
	return redistribute(st, h, f, idx, a, b)
}

// merge moves all of B's pairs into A, gives A B's high value and link,
// deletes the separator and B's pointer from F, and marks B deleted
// with an outlink to A (§5.2 case 1 + the [4] forwarding-pointer
// technique). Write order: A (gains data), F, B.
func merge(st node.Store, h *locks.Holder, f *node.Node, idx int, a, b *node.Node) (rearrangeResult, error) {
	a2 := a.Clone()
	if a.Leaf {
		a2.Keys = append(a2.Keys, b.Keys...)
		a2.Vals = append(a2.Vals, b.Vals...)
	} else {
		// Pull the separator down between the two key runs.
		a2.Keys = append(a2.Keys, f.Keys[idx])
		a2.Keys = append(a2.Keys, b.Keys...)
		a2.Children = append(a2.Children, b.Children...)
	}
	a2.High = b.High
	a2.Link = b.Link

	f2 := f.RemoveSeparator(idx)

	b2 := &node.Node{
		ID:      b.ID,
		Leaf:    b.Leaf,
		Deleted: true,
		OutLink: a.ID,
		Low:     b.Low,
		High:    b.High,
	}

	if err := st.Put(a2); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(a.ID)
	if err := st.Put(f2); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(f.ID)
	if err := st.Put(b2); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(b.ID)

	return rearrangeResult{
		outcome:  outcomeMerged,
		parent:   f2,
		survivor: a2,
		deleted:  b.ID,
	}, nil
}

// redistribute shifts pairs between A and B so both end with at least
// k, updating the separator in F and the adjacent bounds in A and B
// (§5.2 case 2). Write order follows the acknowledgment's rule: the
// child that gains data, then the parent, then the other child — which
// confines the wrong-node hazard to the "data moved left, reader holds
// stale B" case that the low-value check detects.
func redistribute(st node.Store, h *locks.Holder, f *node.Node, idx int, a, b *node.Node) (rearrangeResult, error) {
	var a2, b2 *node.Node
	var newSep base.Key

	if a.Leaf {
		keys := append(append([]base.Key(nil), a.Keys...), b.Keys...)
		vals := append(append([]base.Value(nil), a.Vals...), b.Vals...)
		m := (len(keys) + 1) / 2
		newSep = keys[m-1]
		a2, b2 = a.Clone(), b.Clone()
		a2.Keys, a2.Vals = keys[:m:m], vals[:m:m]
		b2.Keys, b2.Vals = keys[m:], vals[m:]
	} else {
		// Combined sequence with the old separator in the middle.
		keys := append(append([]base.Key(nil), a.Keys...), f.Keys[idx])
		keys = append(keys, b.Keys...)
		kids := append(append([]base.PageID(nil), a.Children...), b.Children...)
		m := len(keys) / 2 // keys[m] becomes the new separator
		newSep = keys[m]
		a2, b2 = a.Clone(), b.Clone()
		a2.Keys, a2.Children = keys[:m:m], kids[:m+1:m+1]
		b2.Keys, b2.Children = keys[m+1:], kids[m+1:]
	}
	a2.High = base.FiniteBound(newSep)
	b2.Low = base.FiniteBound(newSep)

	f2 := f.Clone()
	f2.Keys[idx] = newSep

	// Who gains data? If A ends with more pairs than it had, data moved
	// B→A (write A first); otherwise A→B (write B first).
	aGains := a2.Pairs() > a.Pairs()
	first, second := b2, a2
	firstOld, secondOld := b.ID, a.ID
	if aGains {
		first, second = a2, b2
		firstOld, secondOld = a.ID, b.ID
	}
	if err := st.Put(first); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(firstOld)
	if err := st.Put(f2); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(f.ID)
	if err := st.Put(second); err != nil {
		h.UnlockAll()
		return rearrangeResult{}, err
	}
	h.Unlock(secondOld)

	return rearrangeResult{
		outcome:  outcomeRedistributed,
		parent:   f2,
		survivor: a2,
		deleted:  base.NilPage,
	}, nil
}
