package compress

import (
	"sync"

	"blinktree/internal/base"
	"blinktree/internal/blink"
)

// Queue is the compression queue of §5.4: a deduplicated set of
// underfull nodes keyed by page id, drained highest-level-first (the
// paper's footnote 17: "give priority to nodes having a higher level").
// All methods are safe for concurrent use.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	byID   map[base.PageID]*entry
	levels map[int][]*entry // FIFO per level; lazily compacted
	maxLvl int
	closed bool

	offered, popped, updated, removed uint64
}

type entry struct {
	ev       blink.UnderfullEvent
	dequeued bool // popped or removed; still referenced from levels slice
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	q := &Queue{
		byID:   make(map[base.PageID]*entry),
		levels: make(map[int][]*entry),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Offer adds ev to the queue. If the node is already queued and update
// is true, the stored high value is refreshed (callers holding the
// node's lock have information "identical to or more recent than the
// one stored on the queue", §5.4); with update false the existing entry
// is left untouched (the left-neighbour requeue case, where the queued
// information "must have been put there after the process removed A
// and, hence, is more recent").
func (q *Queue) Offer(ev blink.UnderfullEvent, update bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	if e, ok := q.byID[ev.ID]; ok {
		if update {
			// The level of a node never changes; the stack need not be
			// refreshed (§5.4).
			e.ev.High = ev.High
			q.updated++
		}
		return
	}
	e := &entry{ev: ev}
	q.byID[ev.ID] = e
	q.levels[ev.Level] = append(q.levels[ev.Level], e)
	if ev.Level > q.maxLvl {
		q.maxLvl = ev.Level
	}
	q.offered++
	q.cond.Signal()
}

// Remove drops the queued entry for id, if any — used when a merge
// deletes a node that was itself awaiting compression.
func (q *Queue) Remove(id base.PageID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.byID[id]; ok {
		e.dequeued = true
		delete(q.byID, id)
		q.removed++
	}
}

// TryPop removes and returns the highest-level entry without blocking.
func (q *Queue) TryPop() (blink.UnderfullEvent, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

// Pop blocks until an entry is available or the queue is closed.
func (q *Queue) Pop() (blink.UnderfullEvent, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if ev, ok := q.popLocked(); ok {
			return ev, true
		}
		if q.closed {
			return blink.UnderfullEvent{}, false
		}
		q.cond.Wait()
	}
}

func (q *Queue) popLocked() (blink.UnderfullEvent, bool) {
	for lvl := q.maxLvl; lvl >= 0; lvl-- {
		bucket := q.levels[lvl]
		for len(bucket) > 0 {
			e := bucket[0]
			bucket = bucket[1:]
			if e.dequeued {
				continue
			}
			q.levels[lvl] = bucket
			e.dequeued = true
			delete(q.byID, e.ev.ID)
			q.popped++
			return e.ev, true
		}
		q.levels[lvl] = bucket
	}
	return blink.UnderfullEvent{}, false
}

// Len returns the number of queued entries.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.byID)
}

// Close wakes all blocked Pops; subsequent Offers are dropped.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// QueueStats is a snapshot of queue activity.
type QueueStats struct {
	Offered, Popped, Updated, Removed uint64
	Pending                           int
}

// Stats returns the lifetime counters.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Offered: q.offered, Popped: q.popped,
		Updated: q.updated, Removed: q.removed,
		Pending: len(q.byID),
	}
}
