package compress

import (
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
)

// Scanner is the single compression process of §5.1: it scans the
// levels of the tree bottom-up, examining pairs of adjacent children of
// each parent node (procedure compress-level, Fig. 7) and rearranging
// any pair with an underfull member. It runs concurrently with
// searches, insertions and deletions, locking three nodes at a time in
// parent-then-children order.
type Scanner struct {
	st  node.Store
	lt  locks.Locker
	k   int
	rec *reclaim.Reclaimer

	// WaitDelay is how long to sleep when a sibling's pointer has not
	// yet been inserted into the parent (Fig. 7: "wait & later restart
	// the loop"). MaxWaits bounds the waiting; after that the pair is
	// skipped and left for a later pass.
	WaitDelay time.Duration
	MaxWaits  int

	stats ScannerStats
}

// ScannerStats counts scanner activity.
type ScannerStats struct {
	Merges, Redistributions, Skips, Waits, RootCollapses atomic.Uint64
	Footprint                                            locks.FootprintStats
}

// NewScanner builds a Scanner over the tree's substrate. rec may be
// nil (deleted pages then stay allocated, as in §4's trivial regime).
func NewScanner(st node.Store, lt locks.Locker, minPairs int, rec *reclaim.Reclaimer) *Scanner {
	return &Scanner{
		st: st, lt: lt, k: minPairs, rec: rec,
		WaitDelay: 200 * time.Microsecond,
		MaxWaits:  50,
	}
}

// Stats exposes the counters.
func (s *Scanner) Stats() *ScannerStats { return &s.stats }

// CompressAll runs compress-level on every level from the leaves up,
// then collapses the root while it has a single child. One pass moves
// each level's slack up one level; O(log n) passes fully compact a
// degenerate tree (§5.1), which Compact provides.
func (s *Scanner) CompressAll() error {
	p, err := s.st.ReadPrime()
	if err != nil {
		return err
	}
	for level := 0; level < p.Levels-1; level++ {
		if err := s.CompressLevel(level); err != nil {
			return err
		}
	}
	return s.collapseRoot()
}

// Compact runs CompressAll until a pass makes no change, fully
// compacting a quiesced tree.
func (s *Scanner) Compact() error {
	for {
		before := s.changeCount()
		if err := s.CompressAll(); err != nil {
			return err
		}
		if s.changeCount() == before {
			return nil
		}
	}
}

func (s *Scanner) changeCount() uint64 {
	return s.stats.Merges.Load() + s.stats.Redistributions.Load() + s.stats.RootCollapses.Load()
}

// CompressLevel examines every pair of adjacent children at level
// (leaves are level 0) by walking the parents at level+1 — the
// procedure compress-level(i) of Fig. 7.
func (s *Scanner) CompressLevel(level int) error {
	p, err := s.st.ReadPrime()
	if err != nil {
		return err
	}
	if level+1 >= p.Levels {
		return nil // no parents at level+1; nothing to compress against
	}
	parent := p.Leftmost[level+1]
	idx := 0
	waits := 0
	for parent != base.NilPage {
		next, nextIdx, err := s.compressPair(parent, idx, &waits)
		if err != nil {
			return err
		}
		parent, idx = next, nextIdx
	}
	return nil
}

// compressPair handles one (parent, child-index) step and returns where
// to continue: same parent with an advanced (or repeated) index, the
// right neighbour parent, or NilPage when the level is finished.
func (s *Scanner) compressPair(parentID base.PageID, idx int, waits *int) (base.PageID, int, error) {
	if s.rec != nil {
		g := s.rec.Enter()
		defer s.rec.Exit(g)
	}
	h := locks.NewHolder(s.lt)
	defer func() {
		h.UnlockAll()
		s.stats.Footprint.Record(h)
	}()

	h.Lock(parentID)
	f, err := s.st.Get(parentID)
	if err != nil {
		return base.NilPage, 0, err
	}
	if f.Deleted {
		// The parent was merged away while we scanned; resume from its
		// survivor (which is to its left — positions restart at 0).
		h.Unlock(parentID)
		return f.OutLink, 0, nil // OutLink may be nil: level finished
	}
	if idx >= len(f.Children)-1 {
		// All pairs in F processed; move to the right neighbour (Fig. 7
		// "all pointers in F have been processed").
		next := f.Link
		h.Unlock(parentID)
		return next, 0, nil
	}

	aID := f.Children[idx]
	h.Lock(aID)
	a, err := s.st.Get(aID)
	if err != nil {
		return base.NilPage, 0, err
	}
	if a.Deleted || !f.SeparatorBefore(idx).Equal(a.Low) {
		// Stale view (another compressor got here first); re-read F.
		h.Unlock(aID)
		h.Unlock(parentID)
		return parentID, idx, nil
	}
	twoID := a.Link
	if twoID == base.NilPage {
		// A is the rightmost node of its level: done (Fig. 7 "if two =
		// nil then return").
		h.Unlock(aID)
		h.Unlock(parentID)
		return base.NilPage, 0, nil
	}
	h.Lock(twoID)
	b, err := s.st.Get(twoID)
	if err != nil {
		return base.NilPage, 0, err
	}

	if idx+1 < len(f.Children) && f.Children[idx+1] == twoID {
		// "two is in F": rearrange if needed.
		res, err := rearrange(s.st, h, f, idx, a, b, s.k)
		if err != nil {
			return base.NilPage, 0, err
		}
		*waits = 0
		switch res.outcome {
		case outcomeMerged:
			s.stats.Merges.Add(1)
			s.retire(res.deleted)
			// A absorbed B; the pair starting at idx is now (A, A's new
			// right sibling): examine idx again.
			return parentID, idx, nil
		case outcomeRedistributed:
			s.stats.Redistributions.Add(1)
			return parentID, idx + 1, nil
		default:
			s.stats.Skips.Add(1)
			return parentID, idx + 1, nil
		}
	}

	// "two is not in F" (§5.2): unlock all three and decide.
	h.Unlock(twoID)
	h.Unlock(aID)
	h.Unlock(parentID)
	belongsInF := !f.High.LessBound(b.High) // B's range ends within F's
	needsWork := a.Pairs() < s.k || b.Pairs() < s.k
	switch {
	case belongsInF && needsWork:
		// Case (1): wait until the pending separator insertion puts
		// two into F, then retry the same pair.
		s.stats.Waits.Add(1)
		if *waits++; *waits > s.MaxWaits {
			*waits = 0
			return parentID, idx + 1, nil // skip; a later pass retries
		}
		time.Sleep(s.WaitDelay)
		return parentID, idx, nil
	case belongsInF:
		// Case (2): nothing to do for this pair; move on.
		*waits = 0
		return parentID, idx + 1, nil
	default:
		// Case (3): B hangs under F's right neighbour.
		*waits = 0
		return f.Link, 0, nil
	}
}

// retire hands a dead page to the reclaimer, or leaves it allocated
// (readable, marked deleted) when no reclaimer is configured.
func (s *Scanner) retire(id base.PageID) {
	if s.rec != nil && id != base.NilPage {
		s.rec.Retire(id)
	}
}

// collapseRoot removes root levels while the root has exactly one
// child with no right sibling, making that child the new root (§5.4).
// The four-step write order of the paper is followed: new root first
// (root bit on), then the prime block, then the old root is marked
// deleted.
func (s *Scanner) collapseRoot() error {
	for {
		collapsed, err := s.collapseRootOnce()
		if err != nil || !collapsed {
			return err
		}
		s.stats.RootCollapses.Add(1)
	}
}

func (s *Scanner) collapseRootOnce() (bool, error) {
	if s.rec != nil {
		g := s.rec.Enter()
		defer s.rec.Exit(g)
	}
	h := locks.NewHolder(s.lt)
	defer func() {
		h.UnlockAll()
		s.stats.Footprint.Record(h)
	}()

	p, err := s.st.ReadPrime()
	if err != nil {
		return false, err
	}
	rootID := p.Root
	h.Lock(rootID)
	f, err := s.st.Get(rootID)
	if err != nil {
		return false, err
	}
	if f.Deleted || !f.Root || f.Leaf || len(f.Children) != 1 {
		h.Unlock(rootID)
		return false, nil
	}
	childID := f.Children[0]
	h.Lock(childID)
	a, err := s.st.Get(childID)
	if err != nil {
		return false, err
	}
	if a.Deleted || a.Link != base.NilPage {
		// Not the only node at its level: a split is in flight; the
		// root must stay (§5.4's link-nil check).
		h.Unlock(childID)
		h.Unlock(rootID)
		return false, nil
	}

	// Step 1: rewrite the child with the root bit on.
	a2 := a.Clone()
	a2.Root = true
	if err := s.st.Put(a2); err != nil {
		return false, err
	}
	// Step 2: rewrite the prime block, then release the new root.
	p2, err := s.st.ReadPrime()
	if err != nil {
		return false, err
	}
	p2 = p2.Clone()
	p2.Root = childID
	p2.Levels--
	p2.Leftmost = p2.Leftmost[:p2.Levels]
	if err := s.st.WritePrime(p2); err != nil {
		return false, err
	}
	h.Unlock(childID)
	// Steps 3–4: mark the old root deleted and release it. The outlink
	// stays nil — the node's whole level is gone, so there is no
	// same-level survivor to forward to; stale readers restart from the
	// (new) prime block instead (§5.4 "the whole level is deleted").
	f2 := &node.Node{
		ID:      rootID,
		Leaf:    f.Leaf,
		Deleted: true,
		Low:     f.Low,
		High:    f.High,
	}
	if err := s.st.Put(f2); err != nil {
		return false, err
	}
	h.Unlock(rootID)
	s.retire(rootID)
	return true, nil
}
