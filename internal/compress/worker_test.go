package compress

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
)

// newCompressedTree wires a tree to a queue compressor (§5.4 mode 2).
func newCompressedTree(t *testing.T, k int) (*blink.Tree, *Compressor) {
	t.Helper()
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: k, Reclaimer: rec})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompressor(st, lt, k, rec)
	c.Attach(tr)
	return tr, c
}

func TestCompressorDrainRestoresOccupancy(t *testing.T) {
	const k, n = 3, 2000
	tr, c := newCompressedTree(t, k)
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := tr.Delete(base.Key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.Queue().Len() == 0 {
		t.Fatal("precondition: deletions enqueued nothing")
	}
	if err := c.DrainOnce(); err != nil {
		t.Fatalf("DrainOnce: %v", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("post-drain invariants: %v", err)
	}
	occ, err := tr.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	// Queue compression fixes exactly the nodes deletions flagged, so
	// occupancy must improve dramatically (a few stragglers whose
	// neighbours were compressed first may remain).
	if occ.Underfull > occ.Nodes/4 {
		t.Fatalf("still %d/%d underfull after drain", occ.Underfull, occ.Nodes)
	}
	if c.Stats().Merges.Load() == 0 {
		t.Fatal("no merges recorded")
	}
	for i := 0; i < n; i += 10 {
		if v, err := tr.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("survivor %d: (%d,%v)", i, v, err)
		}
	}
}

func TestCompressorThreeLockMaximum(t *testing.T) {
	const k, n = 2, 1000
	tr, c := newCompressedTree(t, k)
	for i := 0; i < n; i++ {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			_ = tr.Delete(base.Key(i))
		}
	}
	if err := c.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	fp := c.Stats().Footprint.Snapshot()
	if fp.MaxHeld > 3 {
		t.Fatalf("queue compression held %d locks, max is 3", fp.MaxHeld)
	}
}

func TestCompressorRootCollapseViaQueue(t *testing.T) {
	const k, n = 2, 2000
	tr, c := newCompressedTree(t, k)
	for i := 0; i < n; i++ {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	hBefore := tr.Height()
	for i := 0; i < n; i++ {
		if i != 500 && i != 1500 {
			_ = tr.Delete(base.Key(i))
		}
	}
	// Several drains: each level of slack needs its own enqueue round.
	for r := 0; r < 12; r++ {
		if err := c.DrainOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= hBefore {
		t.Fatalf("height did not shrink: %d -> %d", hBefore, tr.Height())
	}
	if c.Stats().RootCollapses.Load() == 0 {
		t.Fatal("no root collapse recorded")
	}
	for _, want := range []base.Key{500, 1500} {
		if v, err := tr.Search(want); err != nil || v != base.Value(want) {
			t.Fatalf("survivor %d: (%d,%v)", want, v, err)
		}
	}
}

// TestCompressorConcurrentWithTraffic is the Theorem 2 scenario: any
// number of searches, insertions, deletions and compressions running
// together, with background workers draining the shared queue.
func TestCompressorConcurrentWithTraffic(t *testing.T) {
	const k = 3
	tr, c := newCompressedTree(t, k)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i*2), base.Value(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	c.Start(3) // three compressor workers (§5.4 mode 2)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churners: delete and reinsert odd keys.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 4000; i++ {
				key := base.Key(rng.Intn(n)*2 + 1)
				if rng.Intn(2) == 0 {
					err := tr.Insert(key, base.Value(key))
					if err != nil && !errors.Is(err, base.ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				} else {
					err := tr.Delete(key)
					if err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Deleters: remove even keys to generate underfull leaves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if i%5 != 0 {
				if err := tr.Delete(base.Key(i * 2)); err != nil {
					t.Errorf("delete even %d: %v", i*2, err)
					return
				}
			}
		}
	}()
	// Readers: stable keys (multiples of 10 in the even space) must
	// always be found with correct values.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(n/5) * 5
				key := base.Key(i * 2)
				v, err := tr.Search(key)
				if err != nil || v != base.Value(key) {
					t.Errorf("stable key %d: (%d,%v)", key, v, err)
					return
				}
			}
		}(r)
	}
	// Garbage collector ticks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := c.CollectGarbage(); err != nil {
					t.Errorf("collect: %v", err)
					return
				}
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	c.Stop()
	// Settle: drain whatever remains, then verify invariants.
	if err := c.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CollectGarbage(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants after concurrent compression: %v", err)
	}
	// Stable keys all present.
	for i := 0; i < n; i += 5 {
		key := base.Key(i * 2)
		if v, err := tr.Search(key); err != nil || v != base.Value(key) {
			t.Fatalf("stable key %d after settle: (%d,%v)", key, v, err)
		}
	}
	fp := c.Stats().Footprint.Snapshot()
	if fp.MaxHeld > 3 {
		t.Fatalf("compressor exceeded 3 locks: %+v", fp)
	}
	st := tr.Stats()
	if st.InsertLocks.MaxHeld > 1 || st.DeleteLocks.MaxHeld > 1 {
		t.Fatalf("tree ops exceeded 1 lock: %+v", st)
	}
}

// TestCompressorDiscardStaleEntry: an entry whose node was split after
// being queued (high value changed) is discarded, not endlessly
// requeued (§5.4's "does not have to consider A" rule).
func TestCompressorDiscardStaleEntry(t *testing.T) {
	const k = 3
	tr, c := newCompressedTree(t, k)
	for i := 0; i < 200; i++ {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	// Make a leaf underfull, capture the queue entry, then refill the
	// leaf region so its shape changes before the compressor runs.
	for i := 10; i < 14; i++ {
		_ = tr.Delete(base.Key(i))
	}
	for i := 10; i < 14; i++ {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	if err := c.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Either skipped (not underfull anymore) or discarded; never an
	// error, and all data intact.
	for i := 0; i < 200; i++ {
		if v, err := tr.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("key %d: (%d,%v)", i, v, err)
		}
	}
}

// TestCompressorStartStop: workers start, process, and shut down
// cleanly even when idle.
func TestCompressorStartStop(t *testing.T) {
	tr, c := newCompressedTree(t, 2)
	c.Start(2)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(base.Key(i), 0)
	}
	for i := 0; i < 500; i += 2 {
		_ = tr.Delete(base.Key(i))
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Queue().Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestScannerAndQueueCompressorConcurrently: both compression styles at
// once — the paper allows any number of compression processes.
func TestScannerAndQueueCompressorConcurrently(t *testing.T) {
	const k, n = 2, 1500
	st := node.NewMemStore()
	lt := locks.NewTable()
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: k})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCompressor(st, lt, k, nil)
	c.Attach(tr)
	for i := 0; i < n; i++ {
		_ = tr.Insert(base.Key(i), base.Value(i))
	}
	c.Start(2)
	s := NewScanner(st, lt, k, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pass := 0; pass < 3; pass++ {
			if err := s.CompressAll(); err != nil {
				t.Errorf("scanner: %v", err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		if i%8 != 0 {
			if err := tr.Delete(base.Key(i)); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	}
	wg.Wait()
	c.Stop()
	if err := c.DrainOnce(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	for i := 0; i < n; i += 8 {
		if v, err := tr.Search(base.Key(i)); err != nil || v != base.Value(i) {
			t.Fatalf("survivor %d: (%d,%v)", i, v, err)
		}
	}
}
