package compress

import (
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
)

// buildTree populates a fresh tree with n sequential keys at the given
// k and returns it plus its substrate pieces.
func buildTree(t *testing.T, k, n int) (*blink.Tree, node.Store, locks.Locker) {
	t.Helper()
	st := node.NewMemStore()
	lt := locks.NewTable()
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: k})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tr, st, lt
}

func deleteRange(t *testing.T, tr *blink.Tree, lo, hi, step int) {
	t.Helper()
	for i := lo; i < hi; i += step {
		if err := tr.Delete(base.Key(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
}

func verifySurvivors(t *testing.T, tr *blink.Tree, n int, deleted func(int) bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, err := tr.Search(base.Key(i))
		if deleted(i) {
			if err == nil {
				t.Fatalf("deleted key %d still present", i)
			}
			continue
		}
		if err != nil || v != base.Value(i) {
			t.Fatalf("survivor %d: (%d, %v)", i, v, err)
		}
	}
}

func TestScannerCompactRestoresOccupancy(t *testing.T) {
	const k, n = 3, 2000
	tr, st, lt := buildTree(t, k, n)
	for i := 0; i < n; i++ {
		if i%10 != 0 { // delete all but every 10th key
			if err := tr.Delete(base.Key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := tr.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	if before.Underfull == 0 {
		t.Fatal("precondition: expected underfull nodes before compression")
	}

	s := NewScanner(st, lt, k, nil)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("post-compaction invariants: %v", err)
	}
	after, err := tr.OccupancyStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Underfull != 0 {
		t.Fatalf("underfull nodes after Compact: %d (occ %+v)", after.Underfull, after)
	}
	if after.Nodes >= before.Nodes {
		t.Fatalf("node count did not shrink: %d -> %d", before.Nodes, after.Nodes)
	}
	if after.Height > before.Height {
		t.Fatalf("height grew: %d -> %d", before.Height, after.Height)
	}
	if s.Stats().Merges.Load() == 0 {
		t.Fatal("no merges recorded")
	}
	verifySurvivors(t, tr, n, func(i int) bool { return i%10 != 0 })
}

func TestScannerEmptiedTreeCollapsesToSingleLeaf(t *testing.T) {
	const k, n = 2, 1000
	tr, st, lt := buildTree(t, k, n)
	deleteRange(t, tr, 0, n, 1)

	s := NewScanner(st, lt, k, nil)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h != 1 {
		t.Fatalf("height after full deletion + compaction = %d, want 1", h)
	}
	occ, _ := tr.OccupancyStats()
	if occ.Nodes != 1 || occ.Pairs != 0 {
		t.Fatalf("expected a single empty root leaf, got %+v", occ)
	}
	if s.Stats().RootCollapses.Load() == 0 {
		t.Fatal("no root collapses recorded")
	}
}

func TestScannerThreeLockMaximum(t *testing.T) {
	const k, n = 2, 800
	tr, st, lt := buildTree(t, k, n)
	for i := 0; i < n; i++ {
		if i%5 != 0 {
			_ = tr.Delete(base.Key(i))
		}
	}
	s := NewScanner(st, lt, k, nil)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	fp := s.Stats().Footprint.Snapshot()
	if fp.MaxHeld > 3 {
		t.Fatalf("compression held %d locks simultaneously, max is 3 (§5)", fp.MaxHeld)
	}
	if fp.MaxHeld < 3 {
		t.Fatalf("compression never held 3 locks (%d) — rearrange path untested", fp.MaxHeld)
	}
}

func TestScannerPreservesDataAcrossPatterns(t *testing.T) {
	patterns := []struct {
		name    string
		deleted func(int) bool
	}{
		{"evens", func(i int) bool { return i%2 == 0 }},
		{"front-block", func(i int) bool { return i < 700 }},
		{"back-block", func(i int) bool { return i >= 300 }},
		{"middle", func(i int) bool { return i >= 250 && i < 750 }},
		{"sparse", func(i int) bool { return i%7 != 3 }},
	}
	const k, n = 3, 1000
	for _, p := range patterns {
		t.Run(p.name, func(t *testing.T) {
			tr, st, lt := buildTree(t, k, n)
			for i := 0; i < n; i++ {
				if p.deleted(i) {
					if err := tr.Delete(base.Key(i)); err != nil {
						t.Fatal(err)
					}
				}
			}
			s := NewScanner(st, lt, k, nil)
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			occ, _ := tr.OccupancyStats()
			if occ.Underfull != 0 {
				t.Fatalf("underfull after compact: %+v", occ)
			}
			verifySurvivors(t, tr, n, p.deleted)
			// Range scan agrees too.
			count := 0
			_ = tr.Range(0, base.Key(n), func(k base.Key, v base.Value) bool {
				if p.deleted(int(k)) || base.Value(k) != v {
					t.Fatalf("scan returned wrong pair (%d,%d)", k, v)
				}
				count++
				return true
			})
			want := 0
			for i := 0; i < n; i++ {
				if !p.deleted(i) {
					want++
				}
			}
			if count != want {
				t.Fatalf("scan count %d, want %d", count, want)
			}
		})
	}
}

func TestScannerWithReclaimerFreesPages(t *testing.T) {
	const k, n = 2, 1500
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: k, Reclaimer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	pagesBefore := st.Pages()
	for i := 0; i < n; i++ {
		if i%20 != 0 {
			if err := tr.Delete(base.Key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := NewScanner(st, lt, k, rec)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Collect(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if st.Pages() >= pagesBefore {
		t.Fatalf("pages not reclaimed: %d -> %d", pagesBefore, st.Pages())
	}
	rs := rec.Stats()
	if rs.Freed == 0 || rs.Freed != rs.Retired {
		t.Fatalf("reclaim stats: %+v", rs)
	}
	verifySurvivors(t, tr, n, func(i int) bool { return i%20 != 0 })
}

func TestScannerIdempotentOnCompactTree(t *testing.T) {
	const k, n = 3, 500
	tr, st, lt := buildTree(t, k, n)
	s := NewScanner(st, lt, k, nil)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	merges := s.Stats().Merges.Load()
	redis := s.Stats().Redistributions.Load()
	// A second pass over an already-compact tree must change nothing.
	if err := s.CompressAll(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Merges.Load() != merges || s.Stats().Redistributions.Load() != redis {
		t.Fatal("second pass modified a compact tree")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestScannerInternalLevels(t *testing.T) {
	// Deep tree (k=2) so internal levels need compression too: after
	// deleting most keys and compacting leaves, internal nodes become
	// underfull and must merge.
	const k, n = 2, 3000
	tr, st, lt := buildTree(t, k, n)
	if tr.Height() < 4 {
		t.Fatalf("precondition: height %d too small", tr.Height())
	}
	for i := 0; i < n; i++ {
		if i%50 != 0 {
			_ = tr.Delete(base.Key(i))
		}
	}
	s := NewScanner(st, lt, k, nil)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	occ, _ := tr.OccupancyStats()
	if occ.Underfull != 0 {
		t.Fatalf("underfull after compact: %+v", occ)
	}
	if occ.Height >= tr.MinPairs()+4 {
		t.Fatalf("height %d did not shrink meaningfully", occ.Height)
	}
}
