package compress

import (
	"sort"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
)

// Compressor implements the queue-driven compression of §5.4: deletion
// processes enqueue nodes that fall under k pairs, and one or more
// worker processes drain the queue, each locking parent + two adjacent
// children to merge or redistribute. All three deployment shapes of the
// paper map onto it:
//
//   - §5.4 mode 1 (single process, one queue): Start(1)
//   - §5.4 mode 2 (worker pool, shared queue):  Start(n)
//   - §5.4 mode 3 (per-deletion processes):     DrainOnce from the
//     deleting goroutine, or short-lived Start/Stop pairs
type Compressor struct {
	st  node.Store
	lt  locks.Locker
	k   int
	rec *reclaim.Reclaimer

	queue *Queue
	wg    sync.WaitGroup

	// gate lets Pause quiesce the background workers: each worker holds
	// it shared around one compression, Pause takes it exclusively — so
	// Pause returns only once no rearrangement is in flight and blocks
	// new ones until Resume. Durable checkpoints need this: a fuzzy
	// snapshot scan must not race pair movement to the left, which only
	// compression produces.
	gate sync.RWMutex

	stats CompressorStats
}

// CompressorStats counts worker activity.
type CompressorStats struct {
	Merges, Redistributions, Skips atomic.Uint64
	Requeues, Discards             atomic.Uint64
	RootCollapses                  atomic.Uint64
	Footprint                      locks.FootprintStats
}

// NewCompressor builds a Compressor over the tree's substrate with its
// own queue. rec may be nil.
func NewCompressor(st node.Store, lt locks.Locker, minPairs int, rec *reclaim.Reclaimer) *Compressor {
	return &Compressor{st: st, lt: lt, k: minPairs, rec: rec, queue: NewQueue()}
}

// Queue returns the compressor's queue.
func (c *Compressor) Queue() *Queue { return c.queue }

// Stats exposes the counters.
func (c *Compressor) Stats() *CompressorStats { return &c.stats }

// Attach installs the compressor as tr's underfull handler, so every
// deletion that leaves a leaf under k pairs enqueues it (§5.4: the
// deletion process holds the node's lock while putting it on the
// queue, which Offer's update=true relies on).
func (c *Compressor) Attach(tr *blink.Tree) {
	tr.SetUnderfullHandler(func(ev blink.UnderfullEvent) {
		c.queue.Offer(ev, true)
	})
}

// Start launches n background workers that block on the queue.
func (c *Compressor) Start(n int) {
	for i := 0; i < n; i++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for {
				ev, ok := c.queue.Pop()
				if !ok {
					return
				}
				c.gate.RLock()
				_ = c.compressOne(ev) // errors are counted, not fatal
				c.gate.RUnlock()
			}
		}()
	}
}

// Stop closes the queue and waits for the workers to exit.
func (c *Compressor) Stop() {
	c.queue.Close()
	c.wg.Wait()
}

// Pause blocks until no background compression is in flight and keeps
// the workers from starting more until Resume. Deletions keep
// enqueueing underfull nodes meanwhile — nothing is lost, repair just
// waits. Pause/Resume pairs must not be nested.
func (c *Compressor) Pause() { c.gate.Lock() }

// Resume lets the background workers drain the queue again.
func (c *Compressor) Resume() { c.gate.Unlock() }

// DrainOnce synchronously processes queue entries until the queue is
// empty or no further progress is possible (entries that only requeue
// are abandoned after a bounded number of attempts). It is the
// quiesced-compaction entry point used by tests and benchmarks.
func (c *Compressor) DrainOnce() error {
	attempts := make(map[base.PageID]int)
	for {
		ev, ok := c.queue.TryPop()
		if !ok {
			return nil
		}
		if attempts[ev.ID]++; attempts[ev.ID] > 8 {
			c.stats.Discards.Add(1)
			continue
		}
		if err := c.compressOne(ev); err != nil {
			return err
		}
	}
}

// compressOne handles one dequeued node per the §5.4 case analysis.
func (c *Compressor) compressOne(ev blink.UnderfullEvent) error {
	if c.rec != nil {
		g := c.rec.Enter()
		defer c.rec.Exit(g)
	}
	h := locks.NewHolder(c.lt)
	defer func() {
		h.UnlockAll()
		c.stats.Footprint.Record(h)
	}()

	f, ok, err := c.locateParent(h, ev)
	if err != nil {
		return err
	}
	if !ok {
		// The node's level has become the root level (§5.4: "nothing
		// has to be done about A").
		c.stats.Discards.Add(1)
		return nil
	}

	j := f.FindChild(ev.ID)
	if j < 0 || !f.SeparatorAfter(j).Equal(ev.High) {
		// F does not have the pair (p, v) — including the "p and v both
		// appear but not adjacent" subcase (§5.4 footnote 14).
		h.Unlock(f.ID)
		cur, err := c.st.Get(ev.ID)
		if err != nil {
			return err
		}
		if cur.Deleted || !cur.High.Equal(ev.High) {
			// A was split or compressed since it was queued: whoever
			// changed it requeued it if it still needs work; discard.
			c.stats.Discards.Add(1)
			return nil
		}
		// High unchanged but the pointer is missing: the separator
		// insertion is still in flight; reconsider later.
		c.requeue(ev)
		return nil
	}

	if len(f.Children) == 1 {
		return c.singlePointerParent(h, f, ev)
	}
	if j < len(f.Children)-1 {
		return c.rearrangeWithRight(h, f, j, ev)
	}
	return c.rearrangeWithLeft(h, f, j, ev)
}

// rearrangeWithRight is §5.4 case (1): A is not the rightmost child, so
// pair it with its right sibling.
func (c *Compressor) rearrangeWithRight(h *locks.Holder, f *node.Node, j int, ev blink.UnderfullEvent) error {
	aID := f.Children[j]
	h.Lock(aID)
	a, err := c.st.Get(aID)
	if err != nil {
		return err
	}
	if a.Deleted {
		h.Unlock(aID)
		h.Unlock(f.ID)
		c.stats.Discards.Add(1)
		return nil
	}
	twoID := a.Link
	if twoID == base.NilPage || twoID != f.Children[j+1] {
		// A split since it was queued (its link now points at a node
		// whose pointer is not yet in F): put A back for later.
		h.Unlock(aID)
		h.Unlock(f.ID)
		c.requeue(ev)
		return nil
	}
	h.Lock(twoID)
	b, err := c.st.Get(twoID)
	if err != nil {
		return err
	}
	res, err := rearrange(c.st, h, f, j, a, b, c.k)
	if err != nil {
		return err
	}
	c.afterRearrange(res, ev.Level, ev.Stack)
	return nil
}

// rearrangeWithLeft is §5.4 case (2): A is the rightmost child, so pair
// it with the left neighbour named by the preceding pointer in F. The
// deleted node is then A itself.
func (c *Compressor) rearrangeWithLeft(h *locks.Holder, f *node.Node, j int, ev blink.UnderfullEvent) error {
	leftID := f.Children[j-1]
	h.Lock(leftID)
	left, err := c.st.Get(leftID)
	if err != nil {
		return err
	}
	if left.Deleted || left.Link != ev.ID {
		// The left neighbour's link does not point to A (e.g. it split
		// in between): unlock and requeue A — this is the one requeue
		// the paper notes happens without holding A's lock, so the
		// queued info must not be overwritten (update=false).
		h.Unlock(leftID)
		h.Unlock(f.ID)
		c.requeue(ev)
		return nil
	}
	h.Lock(ev.ID)
	a, err := c.st.Get(ev.ID)
	if err != nil {
		return err
	}
	if a.Deleted {
		h.UnlockAll()
		c.stats.Discards.Add(1)
		return nil
	}
	res, err := rearrange(c.st, h, f, j-1, left, a, c.k)
	if err != nil {
		return err
	}
	c.afterRearrange(res, ev.Level, ev.Stack)
	return nil
}

// afterRearrange performs the §5.4 bookkeeping: retire and dequeue the
// deleted node, requeue the survivor or parent if they are now
// underfull.
func (c *Compressor) afterRearrange(res rearrangeResult, level int, stack []base.PageID) {
	switch res.outcome {
	case outcomeMerged:
		c.stats.Merges.Add(1)
		c.queue.Remove(res.deleted)
		if c.rec != nil {
			c.rec.Retire(res.deleted)
		}
	case outcomeRedistributed:
		c.stats.Redistributions.Add(1)
	default:
		c.stats.Skips.Add(1)
		return
	}
	if s := res.survivor; s.Pairs() < c.k && !s.Root {
		c.queue.Offer(blink.UnderfullEvent{
			ID: s.ID, Level: level, High: s.High,
			Stack: append([]base.PageID(nil), stack...),
		}, false)
	}
	if p := res.parent; p.Pairs() < c.k && !p.Root {
		parentStack := stack
		if len(parentStack) > 0 {
			parentStack = parentStack[:len(parentStack)-1]
		}
		c.queue.Offer(blink.UnderfullEvent{
			ID: p.ID, Level: level + 1, High: p.High,
			Stack: append([]base.PageID(nil), parentStack...),
		}, false)
	}
}

// singlePointerParent handles the two special cases of §5.4 where F has
// exactly one pointer: if F is the root, collapse the tree height; if
// not, F itself must be compressed first, so enqueue F and requeue A.
func (c *Compressor) singlePointerParent(h *locks.Holder, f *node.Node, ev blink.UnderfullEvent) error {
	if f.Root {
		h.Unlock(f.ID)
		// Collapse through a Scanner-equivalent single step; the
		// collapse relocks root and child in order.
		s := &Scanner{st: c.st, lt: c.lt, k: c.k, rec: c.rec}
		for {
			collapsed, err := s.collapseRootOnce()
			if err != nil {
				return err
			}
			if !collapsed {
				break
			}
			c.stats.RootCollapses.Add(1)
		}
		// A may now be the root or have a different parent; requeue so
		// the normal path re-evaluates it (it is discarded if its level
		// became the root level).
		c.requeue(ev)
		return nil
	}
	// F has one pointer and is not the root: it is itself underfull
	// (zero separators), and A cannot be compressed until F gains a
	// neighbour pointer for it (§5.4: "F is also on the queue and must
	// be compressed before A"). We hold F's lock, so update=true.
	parentStack := ev.Stack
	if len(parentStack) > 0 {
		parentStack = parentStack[:len(parentStack)-1]
	}
	c.queue.Offer(blink.UnderfullEvent{
		ID: f.ID, Level: ev.Level + 1, High: f.High,
		Stack: append([]base.PageID(nil), parentStack...),
	}, true)
	h.Unlock(f.ID)
	c.requeue(ev)
	return nil
}

func (c *Compressor) requeue(ev blink.UnderfullEvent) {
	c.stats.Requeues.Add(1)
	c.queue.Offer(ev, false)
}

// CollectGarbage frees retired pages that no live operation can still
// reference. It is a no-op without a reclaimer.
func (c *Compressor) CollectGarbage() (int, error) {
	if c.rec == nil {
		return 0, nil
	}
	return c.rec.Collect()
}

// locateParent finds and locks the node at ev.Level+1 that should
// contain A's high value, starting from the stack top when possible and
// restarting from the root otherwise (§5.4). It returns ok=false when
// A's level has become the root level.
func (c *Compressor) locateParent(h *locks.Holder, ev blink.UnderfullEvent) (*node.Node, bool, error) {
	target := ev.Level + 1
	v := ev.High

	for attempt := 0; ; attempt++ {
		p, err := c.st.ReadPrime()
		if err != nil {
			return nil, false, err
		}
		if p.Levels <= target {
			return nil, false, nil // whole parent level is gone
		}
		var cur base.PageID
		if attempt == 0 && len(ev.Stack) > 0 {
			cur = ev.Stack[len(ev.Stack)-1]
		} else {
			cur, err = c.descendToLevelBound(p, v, target)
			if err != nil {
				return nil, false, err
			}
			if cur == base.NilPage {
				return nil, false, nil
			}
		}
		f, ok, err := c.chaseAndLock(h, cur, v)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return f, true, nil
		}
		// Stale entry point; retry from the root.
	}
}

// chaseAndLock moves right from cur to the node whose range admits v,
// then locks it and re-reads to confirm (the lock-validate protocol of
// §5.4). ok=false means the walk hit a dead end and the caller should
// restart from the root.
func (c *Compressor) chaseAndLock(h *locks.Holder, cur base.PageID, v base.Bound) (*node.Node, bool, error) {
	for hops := 0; hops < 1<<16; hops++ {
		n, err := c.st.Get(cur)
		if err != nil {
			return nil, false, err
		}
		if n.Deleted {
			if n.OutLink == base.NilPage {
				return nil, false, nil
			}
			cur = n.OutLink
			continue
		}
		if !n.Low.LessBound(v) {
			return nil, false, nil // overshot: v belongs to the left
		}
		if n.High.LessBound(v) {
			if n.Link == base.NilPage {
				return nil, false, nil
			}
			cur = n.Link
			continue
		}
		// Candidate: lock, re-read, re-validate.
		h.Lock(cur)
		n2, err := c.st.Get(cur)
		if err != nil {
			h.Unlock(cur)
			return nil, false, err
		}
		if n2.Deleted || !n2.Low.LessBound(v) {
			h.Unlock(cur)
			return nil, false, nil
		}
		if n2.High.LessBound(v) {
			h.Unlock(cur)
			cur = n2.Link
			if cur == base.NilPage {
				return nil, false, nil
			}
			continue
		}
		return n2, true, nil
	}
	return nil, false, nil
}

// descendToLevelBound walks from the root to the target level chasing
// the bound v (which may be +∞ for rightmost nodes).
func (c *Compressor) descendToLevelBound(p node.Prime, v base.Bound, target int) (base.PageID, error) {
	cur := p.Root
	lvl := p.Levels - 1
	for lvl > target {
		n, err := c.st.Get(cur)
		if err != nil {
			return base.NilPage, err
		}
		switch {
		case n.Deleted:
			if n.OutLink == base.NilPage {
				return p.Leftmost[target], nil
			}
			cur = n.OutLink
		case !n.Low.LessBound(v):
			return p.Leftmost[target], nil
		case n.High.LessBound(v):
			if n.Link == base.NilPage {
				return p.Leftmost[target], nil
			}
			cur = n.Link
		case n.Leaf:
			return base.NilPage, base.ErrCorrupt
		default:
			cur = childForBound(n, v)
			lvl--
		}
	}
	return cur, nil
}

// childForBound returns the child of n whose separator interval admits
// v; v must satisfy Low < v ≤ High.
func childForBound(n *node.Node, v base.Bound) base.PageID {
	i := sort.Search(len(n.Keys), func(i int) bool {
		return !base.FiniteBound(n.Keys[i]).LessBound(v)
	})
	return n.Children[i]
}
