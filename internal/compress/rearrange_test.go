package compress

import (
	"testing"
	"testing/quick"

	"blinktree/internal/base"
	"blinktree/internal/locks"
	"blinktree/internal/node"
)

// buildPair constructs a minimal valid parent with two adjacent leaf
// children holding the given key counts, all registered in a store.
func buildPair(t testing.TB, nA, nB int) (node.Store, *locks.Locker, *node.Node, *node.Node, *node.Node) {
	st := node.NewMemStore()
	aID, _ := st.Allocate()
	bID, _ := st.Allocate()
	fID, _ := st.Allocate()

	a := &node.Node{ID: aID, Leaf: true, Low: base.NegInfBound(), Link: bID}
	for i := 0; i < nA; i++ {
		a.Keys = append(a.Keys, base.Key(i*10))
		a.Vals = append(a.Vals, base.Value(i*10+1))
	}
	sep := base.Key(nA*10 + 5)
	a.High = base.FiniteBound(sep)
	b := &node.Node{ID: bID, Leaf: true, Low: base.FiniteBound(sep), High: base.PosInfBound()}
	for i := 0; i < nB; i++ {
		k := sep + base.Key(i*10+10)
		b.Keys = append(b.Keys, k)
		b.Vals = append(b.Vals, base.Value(k+1))
	}
	f := &node.Node{
		ID: fID, Root: true,
		Low: base.NegInfBound(), High: base.PosInfBound(),
		Keys:     []base.Key{sep},
		Children: []base.PageID{aID, bID},
	}
	for _, n := range []*node.Node{a, b, f} {
		if err := st.Put(n); err != nil {
			t.Fatal(err)
		}
	}
	return st, nil, f, a, b
}

// TestRearrangeProperty: for every (nA, nB) shape, rearrange either
// skips (both ≥ k), merges (combined ≤ 2k) or redistributes, and in
// all cases preserves the pair multiset and the bound tiling.
func TestRearrangeProperty(t *testing.T) {
	const k = 4
	f := func(rawA, rawB uint8) bool {
		nA := int(rawA % (2*k + 1)) // 0..2k
		nB := int(rawB % (2*k + 1))
		st, _, fn, a, b := buildPair(t, nA, nB)
		lt := locks.NewTable()
		h := locks.NewHolder(lt)
		h.Lock(fn.ID)
		h.Lock(a.ID)
		h.Lock(b.ID)
		res, err := rearrange(st, h, fn, 0, a, b, k)
		if err != nil {
			return false
		}
		if h.Held() != 0 {
			return false // rearrange must release everything
		}
		// Collect surviving pairs.
		pairs := map[base.Key]base.Value{}
		collect := func(id base.PageID) bool {
			n, err := st.Get(id)
			if err != nil {
				return false
			}
			if n.Deleted {
				return true
			}
			for i, key := range n.Keys {
				pairs[key] = n.Vals[i]
			}
			return true
		}
		if !collect(a.ID) || !collect(b.ID) {
			return false
		}
		if len(pairs) != nA+nB {
			return false
		}
		// Expected outcome by shape.
		switch {
		case nA >= k && nB >= k:
			if res.outcome != outcomeSkipped {
				return false
			}
		case nA+nB <= 2*k:
			if res.outcome != outcomeMerged {
				return false
			}
			merged, _ := st.Get(a.ID)
			bb, _ := st.Get(b.ID)
			if !bb.Deleted || bb.OutLink != a.ID {
				return false
			}
			if merged.High.Kind != base.PosInf || merged.Link != base.NilPage {
				return false
			}
			f2, _ := st.Get(fn.ID)
			if len(f2.Children) != 1 {
				return false
			}
		default:
			if res.outcome != outcomeRedistributed {
				return false
			}
			a2, _ := st.Get(a.ID)
			b2, _ := st.Get(b.ID)
			if a2.Pairs() < k || b2.Pairs() < k {
				return false
			}
			if !a2.High.Equal(b2.Low) {
				return false
			}
			f2, _ := st.Get(fn.ID)
			if !f2.SeparatorAfter(0).Equal(a2.High) {
				return false
			}
			if a2.Validate() != nil || b2.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRearrangeInternalNodes: the separator pulls down on internal
// merges and rotates on internal redistribution.
func TestRearrangeInternalNodes(t *testing.T) {
	const k = 2
	st := node.NewMemStore()
	ids := make([]base.PageID, 10)
	for i := range ids {
		ids[i], _ = st.Allocate()
	}
	// A: keys [10], children [c0, c1]; B: keys [30, 40], children [c2..c4]
	a := &node.Node{ID: ids[0], Low: base.NegInfBound(), High: base.FiniteBound(20), Link: ids[1],
		Keys: []base.Key{10}, Children: []base.PageID{ids[3], ids[4]}}
	b := &node.Node{ID: ids[1], Low: base.FiniteBound(20), High: base.PosInfBound(),
		Keys: []base.Key{30, 40}, Children: []base.PageID{ids[5], ids[6], ids[7]}}
	f := &node.Node{ID: ids[2], Root: true, Low: base.NegInfBound(), High: base.PosInfBound(),
		Keys: []base.Key{20}, Children: []base.PageID{ids[0], ids[1]}}
	for _, n := range []*node.Node{a, b, f} {
		if err := st.Put(n); err != nil {
			t.Fatal(err)
		}
	}
	lt := locks.NewTable()
	h := locks.NewHolder(lt)
	h.Lock(f.ID)
	h.Lock(a.ID)
	h.Lock(b.ID)
	res, err := rearrange(st, h, f, 0, a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 2 separators + pulled-down boundary = 4 ≤ 2k: merged.
	if res.outcome != outcomeMerged {
		t.Fatalf("outcome = %v, want merge", res.outcome)
	}
	merged, _ := st.Get(a.ID)
	wantKeys := []base.Key{10, 20, 30, 40}
	if len(merged.Keys) != 4 {
		t.Fatalf("merged keys = %v", merged.Keys)
	}
	for i, wk := range wantKeys {
		if merged.Keys[i] != wk {
			t.Fatalf("merged keys = %v, want %v", merged.Keys, wantKeys)
		}
	}
	if len(merged.Children) != 5 {
		t.Fatalf("merged children = %v", merged.Children)
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}
