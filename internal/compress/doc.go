// Package compress implements the tree-compression processes of the
// paper's §5: deletions in the Blink-tree never rebalance inline (that
// is what keeps their lock footprint at one node, Theorem 1), so
// separate compression processes repair underfull nodes concurrently
// with all other operations.
//
// Map from code to paper sections:
//
//   - scanner.go (§5.1, Fig. 7): Scanner runs procedure
//     compress-level over whole levels, merging or redistributing
//     adjacent siblings until every non-root node holds ≥ k pairs,
//     and collapsing degenerate roots to restore minimal height.
//   - queue.go (§5.4, footnote 17): Queue is the deduplicated set of
//     underfull nodes, keyed by page id and drained
//     highest-level-first ("give priority to nodes having a higher
//     level"), fed by the tree's underfull hook while the deleting
//     process still holds the node's lock.
//   - worker.go (§5.4 modes 1–3): Compressor drains the queue with a
//     single process, a worker pool, or per-deletion processes.
//   - rearrange.go (§5.2–§5.3): the shared merge/redistribute step.
//     It locks three nodes — parent, then two adjacent children — the
//     exact pattern whose deadlock-freedom Theorem 2 proves; emptied
//     nodes keep a forwarding "outlink" so overtaken readers recover,
//     and retired pages go to the reclaimer's limbo (§5.3) until no
//     live operation can reference them.
//
// In the sharded front-end (internal/shard), each shard owns a private
// Queue and Compressor, so compression traffic never crosses shard
// boundaries.
package compress
