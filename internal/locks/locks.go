// Package locks implements the lock substrate of the paper's model
// (§2.2): a single lock type per node that excludes other lockers but
// not readers. It also provides
//
//   - Holder: per-operation accounting of how many locks are held
//     simultaneously, which is the unit of the paper's headline claim
//     (Sagiv insertions hold 1, Lehman–Yao up to 3, lock coupling ≥ 2);
//   - RWTable: read/write locks for the lock-coupling baseline;
//   - Detector: a wait-for-graph deadlock detector used as a test oracle
//     for Theorem 2's deadlock-freedom proof.
package locks

import (
	"sync"

	"blinktree/internal/base"
)

// Locker is a per-page mutual-exclusion service. Lock blocks until the
// page lock is available. Locks are not reentrant.
type Locker interface {
	Lock(id base.PageID)
	Unlock(id base.PageID)
}

const tableShards = 64

// Table is the standard Locker: a sharded map of per-page mutexes.
// Entries persist once created; the per-page footprint is one mutex.
type Table struct {
	shards [tableShards]tableShard
}

type tableShard struct {
	mu sync.Mutex
	m  map[base.PageID]*sync.Mutex
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[base.PageID]*sync.Mutex)
	}
	return t
}

func (t *Table) mutexFor(id base.PageID) *sync.Mutex {
	s := &t.shards[id%tableShards]
	s.mu.Lock()
	m, ok := s.m[id]
	if !ok {
		m = &sync.Mutex{}
		s.m[id] = m
	}
	s.mu.Unlock()
	return m
}

// Lock implements Locker.
func (t *Table) Lock(id base.PageID) { t.mutexFor(id).Lock() }

// Unlock implements Locker.
func (t *Table) Unlock(id base.PageID) { t.mutexFor(id).Unlock() }

// RWTable provides per-page read/write locks for algorithms (the
// lock-coupling baseline) that, unlike the paper's, make readers lock.
type RWTable struct {
	shards [tableShards]rwShard
}

type rwShard struct {
	mu sync.Mutex
	m  map[base.PageID]*sync.RWMutex
}

// NewRWTable returns an empty read/write lock table.
func NewRWTable() *RWTable {
	t := &RWTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[base.PageID]*sync.RWMutex)
	}
	return t
}

func (t *RWTable) mutexFor(id base.PageID) *sync.RWMutex {
	s := &t.shards[id%tableShards]
	s.mu.Lock()
	m, ok := s.m[id]
	if !ok {
		m = &sync.RWMutex{}
		s.m[id] = m
	}
	s.mu.Unlock()
	return m
}

// RLock takes the page lock in shared mode.
func (t *RWTable) RLock(id base.PageID) { t.mutexFor(id).RLock() }

// RUnlock releases a shared hold.
func (t *RWTable) RUnlock(id base.PageID) { t.mutexFor(id).RUnlock() }

// Lock takes the page lock exclusively.
func (t *RWTable) Lock(id base.PageID) { t.mutexFor(id).Lock() }

// Unlock releases an exclusive hold.
func (t *RWTable) Unlock(id base.PageID) { t.mutexFor(id).Unlock() }
