package locks

import (
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
)

func TestTableMutualExclusion(t *testing.T) {
	tab := NewTable()
	const page = base.PageID(7)
	var inside, maxInside int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tab.Lock(page)
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				mu.Unlock()
				mu.Lock()
				inside--
				mu.Unlock()
				tab.Unlock(page)
			}
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("critical section had %d goroutines", maxInside)
	}
}

func TestTableDistinctPagesIndependent(t *testing.T) {
	tab := NewTable()
	tab.Lock(1)
	done := make(chan struct{})
	go func() {
		tab.Lock(2) // must not block on page 1's lock
		tab.Unlock(2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lock on a different page blocked")
	}
	tab.Unlock(1)
}

func TestHolderAccounting(t *testing.T) {
	h := NewHolder(NewTable())
	h.Lock(1)
	h.Lock(2)
	h.Lock(3)
	if h.Held() != 3 || h.MaxHeld() != 3 {
		t.Fatalf("held=%d max=%d, want 3/3", h.Held(), h.MaxHeld())
	}
	h.Unlock(2)
	if h.Held() != 2 || h.MaxHeld() != 3 {
		t.Fatalf("held=%d max=%d after one unlock, want 2/3", h.Held(), h.MaxHeld())
	}
	h.Lock(4)
	h.Unlock(1)
	h.Unlock(3)
	h.Unlock(4)
	if h.Held() != 0 {
		t.Fatal("locks leaked")
	}
	if h.Locks() != 4 {
		t.Fatalf("total acquisitions = %d, want 4", h.Locks())
	}
	h.Reset()
	if h.MaxHeld() != 0 || h.Locks() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestHolderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	h := NewHolder(NewTable())
	h.Lock(1)
	mustPanic("re-lock", func() { h.Lock(1) })
	mustPanic("reset while held", func() { h.Reset() })
	h.Unlock(1)
	mustPanic("unlock not held", func() { h.Unlock(9) })
}

func TestHolderUnlockAll(t *testing.T) {
	tab := NewTable()
	h := NewHolder(tab)
	h.Lock(1)
	h.Lock(2)
	h.UnlockAll()
	if h.Held() != 0 {
		t.Fatal("UnlockAll left locks")
	}
	// Pages must actually be free again.
	tab.Lock(1)
	tab.Unlock(1)
	tab.Lock(2)
	tab.Unlock(2)
}

func TestFootprintStats(t *testing.T) {
	tab := NewTable()
	var fs FootprintStats

	h := NewHolder(tab)
	h.Lock(1)
	h.Lock(2)
	h.Unlock(1)
	h.Unlock(2)
	fs.Record(h)
	h.Reset()

	h.Lock(3)
	h.Unlock(3)
	fs.Record(h)
	h.Reset()

	snap := fs.Snapshot()
	if snap.Ops != 2 || snap.Acquires != 3 || snap.MaxHeld != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if snap.MeanMaxHeld != 1.5 || snap.MeanLocks != 1.5 {
		t.Fatalf("unexpected means: %+v", snap)
	}
	fs.Reset()
	if s := fs.Snapshot(); s.Ops != 0 || s.MaxHeld != 0 {
		t.Fatalf("Reset did not zero: %+v", s)
	}
}

func TestFootprintStatsConcurrent(t *testing.T) {
	tab := NewTable()
	var fs FootprintStats
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHolder(tab)
			for i := 0; i < 50; i++ {
				id := base.PageID(w*1000 + i)
				h.Lock(id)
				h.Unlock(id)
				fs.Record(h)
				h.Reset()
			}
		}(w)
	}
	wg.Wait()
	snap := fs.Snapshot()
	if snap.Ops != 200 || snap.Acquires != 200 || snap.MaxHeld != 1 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
}

func TestRWTableSharedReaders(t *testing.T) {
	tab := NewRWTable()
	tab.RLock(5)
	done := make(chan struct{})
	go func() {
		tab.RLock(5) // shared with the other reader
		tab.RUnlock(5)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second reader blocked")
	}
	tab.RUnlock(5)
}

func TestRWTableWriterExcludesReader(t *testing.T) {
	tab := NewRWTable()
	tab.Lock(5)
	acquired := make(chan struct{})
	go func() {
		tab.RLock(5)
		tab.RUnlock(5)
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired while writer held")
	case <-time.After(50 * time.Millisecond):
	}
	tab.Unlock(5)
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("reader starved after writer release")
	}
}

func TestDetectorNoCycleOnCleanUse(t *testing.T) {
	d := NewDetector(NewTable())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := d.NewAgent()
			for i := 0; i < 100; i++ {
				// Parent-then-children order, as compression does.
				a.Lock(1)
				a.Lock(2)
				a.Lock(3)
				a.Unlock(3)
				a.Unlock(2)
				a.Unlock(1)
			}
		}()
	}
	wg.Wait()
	if d.Cycles() != 0 {
		t.Fatalf("clean ordered locking reported %d cycles", d.Cycles())
	}
}

func TestDetectorFindsCycle(t *testing.T) {
	d := NewDetector(NewTable())
	a1, a2 := d.NewAgent(), d.NewAgent()

	a1.Lock(1)
	a2.Lock(2)

	go func() { a1.Lock(2); a1.Unlock(2); a1.Unlock(1) }()
	// Give a1 time to block on page 2 so the wait edge is registered.
	time.Sleep(20 * time.Millisecond)
	go func() { a2.Lock(1); a2.Unlock(1); a2.Unlock(2) }()
	time.Sleep(50 * time.Millisecond)

	if d.Cycles() == 0 {
		t.Fatal("detector missed a genuine wait-for cycle")
	}
	// The two goroutines are genuinely deadlocked by construction; they
	// are deliberately abandoned (process exit reaps them). This is the
	// one test that must create a real cycle to validate the oracle.
}
