package locks

import (
	"fmt"
	"sync"

	"blinktree/internal/base"
)

// Detector is a Locker that maintains a wait-for graph: which agent owns
// each page and which page each agent is waiting for. Tests use it to
// assert the deadlock-freedom argument of Theorem 2 empirically — if a
// cycle ever forms, Check reports it.
//
// Agents are identified by the Holder-like token passed to Bind; the
// zero Detector is not usable, call NewDetector.
type Detector struct {
	under Locker

	mu      sync.Mutex
	owner   map[base.PageID]int // page -> agent id
	waiting map[int]base.PageID // agent -> page it is blocked on
	next    int
	cycles  int
}

// NewDetector wraps under with wait-for-graph tracking.
func NewDetector(under Locker) *Detector {
	return &Detector{
		under:   under,
		owner:   make(map[base.PageID]int),
		waiting: make(map[int]base.PageID),
	}
}

// Agent is one locking participant (one goroutine / logical operation
// stream). Agents are not safe for concurrent use.
type Agent struct {
	d  *Detector
	id int
}

// NewAgent registers a new participant.
func (d *Detector) NewAgent() *Agent {
	d.mu.Lock()
	d.next++
	id := d.next
	d.mu.Unlock()
	return &Agent{d: d, id: id}
}

// Lock acquires the page lock, recording the wait edge while blocked and
// checking for a cycle before blocking.
func (a *Agent) Lock(id base.PageID) {
	d := a.d
	d.mu.Lock()
	d.waiting[a.id] = id
	if cyc := d.findCycleLocked(a.id); cyc != nil {
		d.cycles++
		// Record and proceed anyway (the underlying lock will then
		// actually deadlock, which the test watchdog converts into a
		// failure with this diagnostic available).
	}
	d.mu.Unlock()

	d.under.Lock(id)

	d.mu.Lock()
	delete(d.waiting, a.id)
	d.owner[id] = a.id
	d.mu.Unlock()
}

// Unlock releases the page lock.
func (a *Agent) Unlock(id base.PageID) {
	d := a.d
	d.mu.Lock()
	if d.owner[id] != a.id {
		d.mu.Unlock()
		panic(fmt.Sprintf("locks: agent %d unlocking page %d owned by %d", a.id, id, d.owner[id]))
	}
	delete(d.owner, id)
	d.mu.Unlock()
	d.under.Unlock(id)
}

// findCycleLocked follows waits-for edges from agent start. Caller holds
// d.mu. Returns the cycle as agent ids, or nil.
func (d *Detector) findCycleLocked(start int) []int {
	seen := map[int]bool{}
	path := []int{start}
	cur := start
	for {
		page, blocked := d.waiting[cur]
		if !blocked {
			return nil
		}
		own, held := d.owner[page]
		if !held {
			return nil // page free: the waiter will get it
		}
		if own == start {
			return path
		}
		if seen[own] {
			return nil // cycle not through start; its own walk reports it
		}
		seen[own] = true
		path = append(path, own)
		cur = own
	}
}

// Cycles returns how many times a lock request would have completed a
// wait-for cycle. Any nonzero value indicates a potential deadlock.
func (d *Detector) Cycles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cycles
}
