package locks

import (
	"fmt"
	"sync/atomic"

	"blinktree/internal/base"
)

// Holder wraps a Locker on behalf of one logical operation and accounts
// for the number of locks held simultaneously. Holders are not safe for
// concurrent use; each operation owns one.
//
// The accounting feeds experiment E2: the paper's central efficiency
// argument is that an insertion "has to lock only one node at any time"
// (abstract, §3.1) versus two or three in Lehman–Yao.
type Holder struct {
	l       Locker
	held    []base.PageID // pages currently locked, in acquisition order
	maxHeld int
	locks   int // total acquisitions by this operation
	// heldBuf backs held for the common case. The paper's algorithms
	// hold at most a handful of locks at once (Sagiv holds one), so a
	// per-op Holder never allocates: Init points held at this array and
	// the point-op hot path declares Holders as stack values.
	heldBuf [4]base.PageID
}

// NewHolder returns a Holder acquiring through l.
func NewHolder(l Locker) *Holder {
	h := &Holder{}
	h.Init(l)
	return h
}

// Init prepares a zero Holder to acquire through l — the
// allocation-free alternative to NewHolder for callers that keep the
// Holder as a stack value.
func (h *Holder) Init(l Locker) {
	h.l = l
	h.held = h.heldBuf[:0]
	h.maxHeld = 0
	h.locks = 0
}

// Reset prepares the Holder for a new operation. It panics if locks are
// still held: leaking a page lock is always a bug.
func (h *Holder) Reset() {
	if len(h.held) != 0 {
		panic(fmt.Sprintf("locks: Reset with %d locks still held: %v", len(h.held), h.held))
	}
	h.maxHeld = 0
	h.locks = 0
}

// Lock acquires the page lock. Acquiring a page already held by this
// Holder panics (the paper's locks are not reentrant).
func (h *Holder) Lock(id base.PageID) {
	for _, p := range h.held {
		if p == id {
			panic(fmt.Sprintf("locks: re-lock of page %d by same operation", id))
		}
	}
	h.l.Lock(id)
	h.held = append(h.held, id)
	h.locks++
	if len(h.held) > h.maxHeld {
		h.maxHeld = len(h.held)
	}
}

// Unlock releases the page lock, which must be held by this Holder.
func (h *Holder) Unlock(id base.PageID) {
	for i, p := range h.held {
		if p == id {
			h.held = append(h.held[:i], h.held[i+1:]...)
			h.l.Unlock(id)
			return
		}
	}
	panic(fmt.Sprintf("locks: Unlock of page %d not held", id))
}

// UnlockAll releases every held lock in reverse acquisition order. It is
// the error-path escape hatch.
func (h *Holder) UnlockAll() {
	for i := len(h.held) - 1; i >= 0; i-- {
		h.l.Unlock(h.held[i])
	}
	h.held = h.held[:0]
}

// Held returns the number of locks currently held.
func (h *Holder) Held() int { return len(h.held) }

// MaxHeld returns the maximum number of locks held simultaneously since
// the last Reset.
func (h *Holder) MaxHeld() int { return h.maxHeld }

// Locks returns the total number of acquisitions since the last Reset.
func (h *Holder) Locks() int { return h.locks }

// FootprintStats aggregates Holder observations across operations. All
// methods are safe for concurrent use.
type FootprintStats struct {
	ops      atomic.Uint64
	acquires atomic.Uint64
	maxHeld  atomic.Uint64 // high-water across all operations
	sumMax   atomic.Uint64 // sum of per-op maxima, for the mean
}

// Record folds one finished operation's Holder into the stats.
func (s *FootprintStats) Record(h *Holder) {
	s.RecordCounts(h.MaxHeld(), h.Locks())
}

// RecordCounts folds one finished operation's raw lock counts into the
// stats — for algorithms (e.g. RW lock coupling) that do not use a
// Holder.
func (s *FootprintStats) RecordCounts(maxHeld, acquires int) {
	s.ops.Add(1)
	s.acquires.Add(uint64(acquires))
	s.sumMax.Add(uint64(maxHeld))
	m := uint64(maxHeld)
	for {
		cur := s.maxHeld.Load()
		if m <= cur || s.maxHeld.CompareAndSwap(cur, m) {
			break
		}
	}
}

// Footprint is a snapshot of FootprintStats.
type Footprint struct {
	Ops         uint64  // operations recorded
	Acquires    uint64  // total lock acquisitions
	MaxHeld     uint64  // max locks held simultaneously by any operation
	MeanMaxHeld float64 // mean of per-operation maxima
	MeanLocks   float64 // mean acquisitions per operation
}

// Snapshot returns the current aggregate.
func (s *FootprintStats) Snapshot() Footprint {
	ops := s.ops.Load()
	f := Footprint{
		Ops:      ops,
		Acquires: s.acquires.Load(),
		MaxHeld:  s.maxHeld.Load(),
	}
	if ops > 0 {
		f.MeanMaxHeld = float64(s.sumMax.Load()) / float64(ops)
		f.MeanLocks = float64(f.Acquires) / float64(ops)
	}
	return f
}

// Reset zeroes the aggregate.
func (s *FootprintStats) Reset() {
	s.ops.Store(0)
	s.acquires.Store(0)
	s.maxHeld.Store(0)
	s.sumMax.Store(0)
}
