package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"blinktree/internal/base"
	"blinktree/internal/verify"
	"blinktree/internal/wal"
)

// This file binds the integrity layer (internal/verify) to the engine:
// the per-shard hash overlay mutations dirty, the sealed roots
// replication publishes, per-checkpoint root persistence with a
// recompute-and-compare at recovery, and bucket proofs for OpProve.

// markVerify flags k's bucket in the overlay. Durable mutation paths
// call it inside the key's stripe lock, right after the tree change —
// which is what makes SealedRoot exact: holding every stripe means no
// applied-but-unmarked change can exist.
func (e *Engine) markVerify(k base.Key) {
	if e.overlay != nil {
		e.overlay.MarkKey(uint64(k))
	}
}

// scanRange adapts the tree's ordered scan to the overlay's ScanFunc.
func (e *Engine) scanRange(lo, hi uint64, fn func(k, v uint64) bool) error {
	return e.Tree.Range(base.Key(lo), base.Key(hi), func(k base.Key, v base.Value) bool {
		return fn(uint64(k), uint64(v))
	})
}

// Verified reports whether the engine maintains the integrity overlay.
func (e *Engine) Verified() bool { return e.overlay != nil }

// VerifyBuckets returns the overlay's bucket count (0 when unverified).
func (e *Engine) VerifyBuckets() int { return e.verifyNB }

// VerifyRoot re-hashes whatever is dirty and returns the shard root.
// Concurrent with writers the result is fuzzy-but-recent; quiesced it
// is the exact, deterministic hash of the shard's content.
func (e *Engine) VerifyRoot() (verify.Hash, error) {
	if e.overlay == nil {
		return verify.Hash{}, fmt.Errorf("blinktree: engine is not verified")
	}
	return e.overlay.Root()
}

// SealedRoot computes a root bound to an exact WAL position: it
// re-hashes the dirty backlog, then holds every stripe lock — so no
// mutation is between its tree apply and its log append — re-hashes
// the residue, folds the root, and captures the flushed log position.
// Every record at or below (seg, off) is reflected in the root and
// every record above it is not, which is what lets a follower compare
// its own root at that position without any false alarm.
func (e *Engine) SealedRoot() (root verify.Hash, seg uint64, off int64, err error) {
	if e.overlay == nil {
		return root, 0, 0, fmt.Errorf("blinktree: engine is not verified")
	}
	// Bulk of the re-hash first, outside the stripes, so the write stall
	// below covers only the residue.
	if _, err = e.overlay.Rehash(); err != nil {
		return root, 0, 0, err
	}
	if e.wal != nil {
		for i := range e.stripes {
			e.stripes[i].Lock()
		}
		defer func() {
			for i := range e.stripes {
				e.stripes[i].Unlock()
			}
		}()
	}
	if root, err = e.overlay.Root(); err != nil {
		return root, 0, 0, err
	}
	if e.wal != nil {
		seg, off, err = e.wal.Position()
	}
	return root, seg, off, err
}

// BucketProof is one engine's contribution to an inclusion/exclusion
// proof: the full pair list of the key's bucket, the sibling path that
// folds its leaf to the shard root, and the shard root the fold
// reaches. The three are mutually consistent by construction — the
// root is computed from this very leaf and path — so the assembled
// proof always verifies against itself; whether it matches a *pinned*
// root is the client's judgement.
type BucketProof struct {
	Bucket    int
	Keys      []uint64
	Vals      []uint64
	Siblings  []verify.Hash
	ShardRoot verify.Hash
}

// Prove builds the engine's bucket proof for k.
func (e *Engine) Prove(k base.Key) (BucketProof, error) {
	if e.overlay == nil {
		return BucketProof{}, fmt.Errorf("blinktree: engine is not verified")
	}
	if _, err := e.overlay.Rehash(); err != nil {
		return BucketProof{}, err
	}
	b := verify.BucketOf(uint64(k), e.verifyNB)
	lo, hi := verify.BucketSpan(b, e.verifyNB)
	p := BucketProof{Bucket: b}
	if err := e.scanRange(lo, hi, func(k, v uint64) bool {
		p.Keys = append(p.Keys, k)
		p.Vals = append(p.Vals, v)
		return true
	}); err != nil {
		return BucketProof{}, err
	}
	p.Siblings = e.overlay.LeafPath(b)
	p.ShardRoot = verify.PathRoot(verify.LeafOf(p.Keys, p.Vals), b, p.Siblings)
	return p, nil
}

// --- per-checkpoint root persistence ---
//
// Every checkpoint of a verified engine writes a sibling root file
// recording the hash of exactly the pairs the snapshot captured.
// Recovery re-hashes the snapshot as it loads and compares: a
// mismatch means the checkpoint bytes changed since they were written
// — corruption or tampering the CRC footer alone cannot prove, since
// a consistent re-CRC is cheap for an attacker and free for a bit rot
// pattern that hits both. A missing root file is tolerated (crash
// window between checkpoint rename and root write; or a pre-verified
// checkpoint lineage).

const (
	rootFileVersion = 1
	rootFileLen     = 4 + 4 + 4 + verify.HashSize + 4
)

var rootFileMagic = [4]byte{'B', 'L', 'R', 'H'}

// rootPath names the root file bound to the checkpoint at seg.
func rootPath(dir string, seg uint64) string {
	return filepath.Join(dir, fmt.Sprintf("root-%016x.hash", seg))
}

// writeRootFile durably records root beside the checkpoint at seg.
func writeRootFile(dir string, seg uint64, nb int, root verify.Hash) error {
	b := make([]byte, 0, rootFileLen)
	b = append(b, rootFileMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, rootFileVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(nb))
	b = append(b, root[:]...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return wal.WriteFileDurable(rootPath(dir, seg), b)
}

// readRootFile loads the root recorded for the checkpoint at seg.
// ok=false when no (valid, same-bucketing) root file exists.
func readRootFile(dir string, seg uint64, nb int) (root verify.Hash, ok bool, err error) {
	b, err := os.ReadFile(rootPath(dir, seg))
	if os.IsNotExist(err) {
		return root, false, nil
	}
	if err != nil {
		return root, false, err
	}
	if len(b) != rootFileLen ||
		[4]byte(b[0:4]) != rootFileMagic ||
		binary.LittleEndian.Uint32(b[4:8]) != rootFileVersion ||
		binary.LittleEndian.Uint32(b[len(b)-4:]) != crc32.ChecksumIEEE(b[:len(b)-4]) {
		return root, false, fmt.Errorf("blinktree: root file for segment %d is corrupt", seg)
	}
	if int(binary.LittleEndian.Uint32(b[8:12])) != nb {
		// Bucketing changed between runs: the recorded root is simply
		// incomparable, not wrong.
		return root, false, nil
	}
	copy(root[:], b[12:12+verify.HashSize])
	return root, true, nil
}

// removeRootFilesBelow deletes root files for checkpoints below seg,
// mirroring wal.RemoveCheckpointsBelow.
func removeRootFilesBelow(dir string, seg uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		var id uint64
		if n, _ := fmt.Sscanf(ent.Name(), "root-%016x.hash", &id); n != 1 {
			continue
		}
		if id < seg {
			if err := os.Remove(filepath.Join(dir, ent.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Router surface ---

// Verified reports whether the router's engines maintain the
// integrity overlay.
func (r *Router) Verified() bool { return r.engines[0].Verified() }

// VerifyBuckets returns the overlay bucket count (0 when unverified).
func (r *Router) VerifyBuckets() int { return r.engines[0].VerifyBuckets() }

// Root combines every shard's root into the engine root — the value
// OpRoot serves, clients pin, and followers audit against.
func (r *Router) Root() (verify.Hash, error) {
	roots := make([]verify.Hash, len(r.engines))
	for i, e := range r.engines {
		var err error
		if roots[i], err = e.VerifyRoot(); err != nil {
			return verify.Hash{}, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return verify.CombineShards(roots, r.engines[0].VerifyBuckets()), nil
}

// Prove assembles the full inclusion/exclusion proof for k: the owning
// shard's bucket proof plus every other shard's current root. The
// proof is self-consistent by construction; whether its combined root
// matches the verifier's pinned root is the client's call.
func (r *Router) Prove(k base.Key) (*verify.Proof, error) {
	si := r.shardFor(k)
	bp, err := r.engines[si].Prove(k)
	if err != nil {
		return nil, err
	}
	p := &verify.Proof{
		Shards:     len(r.engines),
		ShardIdx:   si,
		Buckets:    r.engines[si].VerifyBuckets(),
		Bucket:     bp.Bucket,
		ShardRoots: make([]verify.Hash, len(r.engines)),
		Siblings:   bp.Siblings,
		Keys:       bp.Keys,
		Vals:       bp.Vals,
	}
	for i, e := range r.engines {
		if i == si {
			// Must be the root the bucket proof folds to, not a fresh
			// VerifyRoot — a racing mutation between the two calls would
			// make the proof self-contradictory.
			p.ShardRoots[i] = bp.ShardRoot
			continue
		}
		if p.ShardRoots[i], err = e.VerifyRoot(); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return p, nil
}

// compareCheckpointRoot checks a recovered checkpoint's recomputed
// root against the persisted one, failing recovery on divergence.
func (e *Engine) compareCheckpointRoot(seg uint64, got verify.Hash) error {
	want, ok, err := readRootFile(e.dir, seg, e.verifyNB)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if got != want {
		return fmt.Errorf("blinktree: checkpoint state root mismatch for segment %d: recomputed %x, recorded %x — snapshot corruption or tampering detected", seg, got[:8], want[:8])
	}
	return nil
}
