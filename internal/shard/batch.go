package shard

import (
	"sync"
	"time"

	"blinktree/internal/base"
)

// OpKind is one batched operation type.
type OpKind uint8

// Batched operation kinds.
const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
)

// Op is one operation in a batch. Value is ignored for searches and
// deletes.
type Op struct {
	Kind  OpKind
	Key   base.Key
	Value base.Value
}

// Result is the outcome of one batched operation, in the same position
// as its Op. Value is set only for successful searches.
type Result struct {
	Value base.Value
	Err   error
}

// ApplyBatch executes ops grouped by destination shard, one goroutine
// per non-empty shard group, and returns results positionally aligned
// with ops. Grouping pays the routing division once per op but lets
// disjoint shards proceed in parallel with no cross-shard
// coordination; within one shard, the group's operations run in their
// original relative order.
//
// Errors are per-operation (base.ErrNotFound, base.ErrDuplicate, ...),
// never aggregate: a failed op does not stop the batch.
func (r *Router) ApplyBatch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	groups := make([][]int32, len(r.engines))
	for i, op := range ops {
		s := r.shardFor(op.Key)
		groups[s] = append(groups[s], int32(i))
	}
	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int32) {
			defer wg.Done()
			start := time.Now()
			tr := r.engines[s].Tree
			for _, i := range idxs {
				op := ops[i]
				switch op.Kind {
				case OpInsert:
					results[i].Err = tr.Insert(op.Key, op.Value)
				case OpDelete:
					results[i].Err = tr.Delete(op.Key)
				default:
					results[i].Value, results[i].Err = tr.Search(op.Key)
				}
			}
			m := &r.ms[s]
			m.Batches.Inc()
			m.BatchOps.Add(uint64(len(idxs)))
			m.BatchLatency.Observe(time.Since(start))
		}(s, idxs)
	}
	wg.Wait()
	return results
}
