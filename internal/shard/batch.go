package shard

import (
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/wal"
)

// pendingCommit pairs a batch slot with its commit ticket so a durable
// shard group can wait once and still report per-operation errors.
type pendingCommit struct {
	i int32
	t wal.Ticket
}

// OpKind is one batched operation type.
type OpKind uint8

// Batched operation kinds. Update is not batchable — it carries a
// function, which has no place in a value-shaped batch slot; use the
// point API for read-modify-write closures.
const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
	OpUpsert
	OpGetOrInsert
	OpCompareAndSwap
	OpCompareAndDelete
)

// Op is one operation in a batch. Value is ignored for searches and
// deletes; Old is the expected current value for OpCompareAndSwap and
// OpCompareAndDelete and ignored otherwise.
type Op struct {
	Kind  OpKind
	Key   base.Key
	Value base.Value
	Old   base.Value
}

// Result is the outcome of one batched operation, in the same position
// as its Op. Value carries the searched value (OpSearch), the previous
// value (OpUpsert) or the resulting value (OpGetOrInsert). OK reports
// the kind-specific boolean: existed for OpUpsert, loaded for
// OpGetOrInsert, swapped/deleted for the compare ops.
type Result struct {
	Value base.Value
	OK    bool
	Err   error
}

// BatchScratch is the reusable working memory of ApplyBatchInto: the
// results slice, the shard-grouping arrays and the inline group's
// commit-ticket buffer. A zero BatchScratch is ready to use; after the
// first batch of a given size it is warm and ApplyBatchInto allocates
// nothing. A scratch belongs to one caller at a time (the server keeps
// one per connection) and the returned results alias it, so they are
// valid only until the next ApplyBatchInto with the same scratch.
type BatchScratch struct {
	results []Result
	shardOf []int32 // destination shard per op
	idxs    []int32 // op indexes bucketed by shard, one backing array
	counts  []int32 // per-shard group size, then fill cursor
	starts  []int32 // per-shard offset of its bucket in idxs
	pend    []pendingCommit
	// wg lives here rather than as an ApplyBatchInto local: the spawn
	// closures capture it, so a local would be moved to the heap on
	// every batch — even single-shard batches that spawn nothing.
	wg sync.WaitGroup
}

// grow returns s resized to n int32s, reusing capacity.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// ApplyBatch executes ops grouped by destination shard and returns
// results positionally aligned with ops. It is ApplyBatchInto with a
// throwaway scratch — callers on a steady-state path (the server's
// poll loop) hold a BatchScratch instead.
func (r *Router) ApplyBatch(ops []Op) []Result {
	var sc BatchScratch
	return r.ApplyBatchInto(ops, &sc)
}

// ApplyBatchInto executes ops grouped by destination shard, disjoint
// groups in parallel, and returns results positionally aligned with
// ops, storing all working state in sc. Grouping pays the routing
// division once per op but lets disjoint shards proceed with no
// cross-shard coordination; within one shard, the group's operations
// run in their original relative order.
//
// One group — there is always at least one when ops is non-empty —
// runs inline on the calling goroutine rather than on a spawned one:
// a single-shard batch (every point-op poll against a one-shard
// server, and any burst that happens to hash together) therefore
// spawns no goroutines at all.
//
// Errors are per-operation (base.ErrNotFound, base.ErrDuplicate, ...),
// never aggregate: a failed op does not stop the batch.
func (r *Router) ApplyBatchInto(ops []Op, sc *BatchScratch) []Result {
	n := len(ops)
	if cap(sc.results) < n {
		sc.results = make([]Result, n)
	}
	results := sc.results[:n]
	clear(results) // stale Err/Value from the previous batch
	if n == 0 {
		return results
	}
	ns := len(r.engines)

	// Bucket op indexes by shard with a counting sort: one shared
	// backing array instead of per-shard append-grown slices.
	shardOf := grow(sc.shardOf, n)
	counts := grow(sc.counts, ns)
	clear(counts)
	for i, op := range ops {
		s := int32(r.shardFor(op.Key))
		shardOf[i] = s
		counts[s]++
	}
	starts := grow(sc.starts, ns)
	sum := int32(0)
	for s, c := range counts {
		starts[s] = sum
		sum += c
	}
	idxs := grow(sc.idxs, n)
	fill := counts // reuse as fill cursors: fill[s] counts placed ops
	clear(fill)
	for i := int32(0); i < int32(n); i++ {
		s := shardOf[i]
		idxs[starts[s]+fill[s]] = i
		fill[s]++
	}
	sc.shardOf, sc.counts, sc.starts, sc.idxs = shardOf, counts, starts, idxs

	// Dispatch: every non-empty group but the last gets a goroutine;
	// the last runs inline with the scratch's pend buffer.
	inline := -1
	for s := ns - 1; s >= 0; s-- {
		if fill[s] > 0 {
			inline = s
			break
		}
	}
	wg := &sc.wg
	for s := 0; s < inline; s++ {
		if fill[s] == 0 {
			continue
		}
		group := idxs[starts[s] : starts[s]+fill[s]]
		wg.Add(1)
		go func(s int, group []int32) {
			defer wg.Done()
			r.runGroup(s, group, ops, results, nil)
		}(s, group)
	}
	if inline >= 0 {
		group := idxs[starts[inline] : starts[inline]+fill[inline]]
		if cap(sc.pend) < len(group) {
			sc.pend = make([]pendingCommit, 0, len(group))
		}
		r.runGroup(inline, group, ops, results, sc.pend[:0])
	}
	wg.Wait()
	return results
}

// runGroup applies one shard's group of a batch. pend, when non-nil,
// is a caller-provided commit-ticket buffer (capacity ≥ len(idxs)).
func (r *Router) runGroup(s int, idxs []int32, ops []Op, results []Result, pend []pendingCommit) {
	start := time.Now()
	e := r.engines[s]
	// On a durable engine, apply the whole group first — collecting
	// commit tickets — and fsync-wait once at the end: the shard group
	// rides a single group commit instead of paying one fsync per
	// operation.
	durable := e.wal != nil
	for _, i := range idxs {
		op := ops[i]
		var tk wal.Ticket
		switch op.Kind {
		case OpInsert:
			tk, results[i].Err = e.insertT(op.Key, op.Value)
		case OpDelete:
			tk, results[i].Err = e.deleteT(op.Key)
		case OpUpsert:
			results[i].Value, results[i].OK, tk, results[i].Err = e.upsertT(op.Key, op.Value)
		case OpGetOrInsert:
			results[i].Value, results[i].OK, tk, results[i].Err = e.getOrInsertT(op.Key, op.Value)
		case OpCompareAndSwap:
			results[i].OK, tk, results[i].Err = e.compareAndSwapT(op.Key, op.Old, op.Value)
		case OpCompareAndDelete:
			results[i].OK, tk, results[i].Err = e.compareAndDeleteT(op.Key, op.Old)
		default:
			results[i].Value, results[i].Err = e.Tree.Search(op.Key)
			continue
		}
		if durable && results[i].Err == nil {
			if tk.Pending() {
				pend = append(pend, pendingCommit{i: i, t: tk})
			} else if err := tk.Wait(); err != nil {
				// Not attached to a group, yet erroring: the append
				// itself failed (log crashed or closed). A genuine
				// no-op's zero ticket returns nil here.
				results[i].Err = err
			}
		}
	}
	if len(pend) > 0 {
		// Group commits complete in order, so a clean wait on the
		// newest ticket covers every earlier one; on failure, fan out
		// to assign per-operation errors.
		if err := pend[len(pend)-1].t.Wait(); err != nil {
			for _, p := range pend {
				if werr := p.t.Wait(); werr != nil && results[p.i].Err == nil {
					results[p.i].Err = werr
				}
			}
		}
	}
	m := &r.ms[s]
	m.Batches.Inc()
	m.BatchOps.Add(uint64(len(idxs)))
	m.BatchLatency.Observe(time.Since(start))
}
