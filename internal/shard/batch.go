package shard

import (
	"sync"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/wal"
)

// pendingCommit pairs a batch slot with its commit ticket so a durable
// shard group can wait once and still report per-operation errors.
type pendingCommit struct {
	i int32
	t wal.Ticket
}

// OpKind is one batched operation type.
type OpKind uint8

// Batched operation kinds. Update is not batchable — it carries a
// function, which has no place in a value-shaped batch slot; use the
// point API for read-modify-write closures.
const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
	OpUpsert
	OpGetOrInsert
	OpCompareAndSwap
	OpCompareAndDelete
)

// Op is one operation in a batch. Value is ignored for searches and
// deletes; Old is the expected current value for OpCompareAndSwap and
// OpCompareAndDelete and ignored otherwise.
type Op struct {
	Kind  OpKind
	Key   base.Key
	Value base.Value
	Old   base.Value
}

// Result is the outcome of one batched operation, in the same position
// as its Op. Value carries the searched value (OpSearch), the previous
// value (OpUpsert) or the resulting value (OpGetOrInsert). OK reports
// the kind-specific boolean: existed for OpUpsert, loaded for
// OpGetOrInsert, swapped/deleted for the compare ops.
type Result struct {
	Value base.Value
	OK    bool
	Err   error
}

// ApplyBatch executes ops grouped by destination shard, one goroutine
// per non-empty shard group, and returns results positionally aligned
// with ops. Grouping pays the routing division once per op but lets
// disjoint shards proceed in parallel with no cross-shard
// coordination; within one shard, the group's operations run in their
// original relative order.
//
// Errors are per-operation (base.ErrNotFound, base.ErrDuplicate, ...),
// never aggregate: a failed op does not stop the batch.
func (r *Router) ApplyBatch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	groups := make([][]int32, len(r.engines))
	for i, op := range ops {
		s := r.shardFor(op.Key)
		groups[s] = append(groups[s], int32(i))
	}
	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int32) {
			defer wg.Done()
			start := time.Now()
			e := r.engines[s]
			// On a durable engine, apply the whole group first —
			// collecting commit tickets — and fsync-wait once at the
			// end: the shard group rides a single group commit instead
			// of paying one fsync per operation.
			var pend []pendingCommit
			durable := e.wal != nil
			for _, i := range idxs {
				op := ops[i]
				var tk wal.Ticket
				switch op.Kind {
				case OpInsert:
					tk, results[i].Err = e.insertT(op.Key, op.Value)
				case OpDelete:
					tk, results[i].Err = e.deleteT(op.Key)
				case OpUpsert:
					results[i].Value, results[i].OK, tk, results[i].Err = e.upsertT(op.Key, op.Value)
				case OpGetOrInsert:
					results[i].Value, results[i].OK, tk, results[i].Err = e.getOrInsertT(op.Key, op.Value)
				case OpCompareAndSwap:
					results[i].OK, tk, results[i].Err = e.compareAndSwapT(op.Key, op.Old, op.Value)
				case OpCompareAndDelete:
					results[i].OK, tk, results[i].Err = e.compareAndDeleteT(op.Key, op.Old)
				default:
					results[i].Value, results[i].Err = e.Tree.Search(op.Key)
					continue
				}
				if durable && results[i].Err == nil {
					if tk.Pending() {
						pend = append(pend, pendingCommit{i: i, t: tk})
					} else if err := tk.Wait(); err != nil {
						// Not attached to a group, yet erroring: the
						// append itself failed (log crashed or closed).
						// A genuine no-op's zero ticket returns nil here.
						results[i].Err = err
					}
				}
			}
			if len(pend) > 0 {
				// Group commits complete in order, so a clean wait on
				// the newest ticket covers every earlier one; on
				// failure, fan out to assign per-operation errors.
				if err := pend[len(pend)-1].t.Wait(); err != nil {
					for _, p := range pend {
						if werr := p.t.Wait(); werr != nil && results[p.i].Err == nil {
							results[p.i].Err = werr
						}
					}
				}
			}
			m := &r.ms[s]
			m.Batches.Inc()
			m.BatchOps.Add(uint64(len(idxs)))
			m.BatchLatency.Observe(time.Since(start))
		}(s, idxs)
	}
	wg.Wait()
	return results
}
