package shard

import (
	"sync"
	"time"

	"blinktree/internal/base"
)

// OpKind is one batched operation type.
type OpKind uint8

// Batched operation kinds. Update is not batchable — it carries a
// function, which has no place in a value-shaped batch slot; use the
// point API for read-modify-write closures.
const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
	OpUpsert
	OpGetOrInsert
	OpCompareAndSwap
	OpCompareAndDelete
)

// Op is one operation in a batch. Value is ignored for searches and
// deletes; Old is the expected current value for OpCompareAndSwap and
// OpCompareAndDelete and ignored otherwise.
type Op struct {
	Kind  OpKind
	Key   base.Key
	Value base.Value
	Old   base.Value
}

// Result is the outcome of one batched operation, in the same position
// as its Op. Value carries the searched value (OpSearch), the previous
// value (OpUpsert) or the resulting value (OpGetOrInsert). OK reports
// the kind-specific boolean: existed for OpUpsert, loaded for
// OpGetOrInsert, swapped/deleted for the compare ops.
type Result struct {
	Value base.Value
	OK    bool
	Err   error
}

// ApplyBatch executes ops grouped by destination shard, one goroutine
// per non-empty shard group, and returns results positionally aligned
// with ops. Grouping pays the routing division once per op but lets
// disjoint shards proceed in parallel with no cross-shard
// coordination; within one shard, the group's operations run in their
// original relative order.
//
// Errors are per-operation (base.ErrNotFound, base.ErrDuplicate, ...),
// never aggregate: a failed op does not stop the batch.
func (r *Router) ApplyBatch(ops []Op) []Result {
	results := make([]Result, len(ops))
	if len(ops) == 0 {
		return results
	}
	groups := make([][]int32, len(r.engines))
	for i, op := range ops {
		s := r.shardFor(op.Key)
		groups[s] = append(groups[s], int32(i))
	}
	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int32) {
			defer wg.Done()
			start := time.Now()
			tr := r.engines[s].Tree
			for _, i := range idxs {
				op := ops[i]
				switch op.Kind {
				case OpInsert:
					results[i].Err = tr.Insert(op.Key, op.Value)
				case OpDelete:
					results[i].Err = tr.Delete(op.Key)
				case OpUpsert:
					results[i].Value, results[i].OK, results[i].Err = tr.Upsert(op.Key, op.Value)
				case OpGetOrInsert:
					results[i].Value, results[i].OK, results[i].Err = tr.GetOrInsert(op.Key, op.Value)
				case OpCompareAndSwap:
					results[i].OK, results[i].Err = tr.CompareAndSwap(op.Key, op.Old, op.Value)
				case OpCompareAndDelete:
					results[i].OK, results[i].Err = tr.CompareAndDelete(op.Key, op.Old)
				default:
					results[i].Value, results[i].Err = tr.Search(op.Key)
				}
			}
			m := &r.ms[s]
			m.Batches.Inc()
			m.BatchOps.Add(uint64(len(idxs)))
			m.BatchLatency.Observe(time.Since(start))
		}(s, idxs)
	}
	wg.Wait()
	return results
}
