package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/wal"
)

// captureState runs the bootstrap protocol replication and migration
// both build on: StreamState into a map, then replay the WAL tail from
// the returned segment on top of it. The caller must have quiesced
// mutators first, so a drained tail means the capture is the complete
// state. ErrTruncated (a checkpoint deleted the resume segment before
// the tail was read) restarts the whole capture, exactly as a real
// follower re-bootstraps.
func captureState(t *testing.T, e *Engine) map[base.Key]base.Value {
	t.Helper()
	for attempt := 0; attempt < 5; attempt++ {
		state := make(map[base.Key]base.Value)
		seg, err := e.StreamState(func(k base.Key, v base.Value) error {
			state[k] = v
			return nil
		})
		if err != nil {
			t.Fatalf("StreamState: %v", err)
		}
		tail := wal.NewTailReader(e.WALDir(), seg, wal.SegmentHeaderLen)
		recs := make([]wal.Record, 0, 256)
		truncated := false
		for {
			recs, err = tail.Next(256, recs[:0])
			if errors.Is(err, wal.ErrTruncated) {
				truncated = true
				break
			}
			if err != nil {
				t.Fatalf("tail: %v", err)
			}
			if len(recs) == 0 {
				break
			}
			for _, rec := range recs {
				switch rec.Kind {
				case wal.KindPut:
					state[rec.Key] = rec.Value
				case wal.KindDel:
					delete(state, rec.Key)
				}
			}
		}
		tail.Close()
		if !truncated {
			return state
		}
	}
	t.Fatal("capture: resume segment truncated on every attempt")
	return nil
}

// checkCapture fails the test unless captured equals the engine's
// state exactly.
func checkCapture(t *testing.T, e *Engine, captured map[base.Key]base.Value) {
	t.Helper()
	live := 0
	err := e.Tree.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		live++
		got, ok := captured[k]
		if !ok {
			t.Errorf("capture missing key %d", k)
			return false
		}
		if got != v {
			t.Errorf("capture key %d = %d, want %d", k, got, v)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if live != len(captured) {
		t.Fatalf("capture holds %d pairs, engine holds %d", len(captured), live)
	}
}

// TestStreamStateRacesCheckpoint drives writers and a checkpoint loop
// against repeated StreamState scans, then verifies the protocol's
// contract: snapshot plus tail replay from the returned segment equals
// the final state, with checkpoints free to truncate segments at any
// point (the capture re-bootstraps, never silently loses records).
func TestStreamStateRacesCheckpoint(t *testing.T) {
	r := mustRouter(t, 1, Options{MinPairs: 4, Durable: true, Dir: t.TempDir(), WALNoSync: true})
	e := r.Engine(0)
	const keys = 4096
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base.Key(uint64(i%keys) * 1234567)
				if i%5 == 0 {
					if err := e.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Error(err)
						return
					}
				} else if _, _, err := e.Upsert(k, base.Value(i)); err != nil {
					t.Error(err)
					return
				}
				i += 3
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Scans racing live writers and checkpoints: each must complete
	// without error (consistency of a mid-flight scan is unobservable;
	// the full protocol is checked after quiesce below).
	for i := 0; i < 4; i++ {
		if _, err := e.StreamState(func(base.Key, base.Value) error { return nil }); err != nil {
			t.Fatalf("StreamState under load: %v", err)
		}
	}

	close(stop)
	wg.Wait()
	checkCapture(t, e, captureState(t, e))
}

// TestStreamStateRacesCompression runs a delete-heavy workload that
// keeps the background compressors busy merging underfull nodes while
// StreamState scans, then checks the capture protocol end to end and
// the tree's structural invariants. Pair movement to the left during a
// scan could make the scan skip pairs; StreamState pauses the workers
// for exactly this reason, and this test is the regression net.
func TestStreamStateRacesCompression(t *testing.T) {
	r := mustRouter(t, 1, Options{MinPairs: 8, CompressorWorkers: 2, Durable: true, Dir: t.TempDir(), WALNoSync: true})
	e := r.Engine(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wave := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Insert a dense block, then delete most of it: every wave
			// leaves a trail of underfull nodes for the compressors.
			lo := uint64(wave%8) * 100000
			for i := uint64(0); i < 512; i++ {
				if _, _, err := e.Upsert(base.Key(lo+i), base.Value(wave)); err != nil {
					t.Error(err)
					return
				}
			}
			for i := uint64(0); i < 512; i++ {
				if i%7 == 0 {
					continue
				}
				if err := e.Delete(base.Key(lo + i)); err != nil && !errors.Is(err, base.ErrNotFound) {
					t.Error(err)
					return
				}
			}
			wave++
		}
	}()

	for i := 0; i < 6; i++ {
		if _, err := e.StreamState(func(base.Key, base.Value) error { return nil }); err != nil {
			t.Fatalf("StreamState under load: %v", err)
		}
	}

	close(stop)
	wg.Wait()
	checkCapture(t, e, captureState(t, e))
	if err := r.Check(); err != nil {
		t.Fatalf("structural check after scans: %v", err)
	}
}

// TestStreamStateStrictOrderExactlyOnce pins the ordering contract the
// integrity layer leans on: every StreamState scan emits keys in
// strictly ascending order, each key exactly once — even while writers
// mutate, Checkpoint rotates and truncates segments, and a delete-heavy
// workload keeps the compressors moving pairs leftward. StreamHasher
// folds the checkpoint stream into the state root in emission order, so
// a duplicate or out-of-order pair would silently corrupt every root.
func TestStreamStateStrictOrderExactlyOnce(t *testing.T) {
	r := mustRouter(t, 1, Options{MinPairs: 8, CompressorWorkers: 2, Durable: true, Dir: t.TempDir(), WALNoSync: true})
	e := r.Engine(0)

	// A permanent floor of keys nobody deletes: every scan must see at
	// least these, so an empty emission is a genuine skip, not timing.
	const floor = 100
	for i := uint64(0); i < floor; i++ {
		if _, _, err := e.Upsert(base.Key(5000000+i*17), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn writers: dense insert waves followed by sparse deletes keep
	// a steady supply of underfull nodes in the compression queue.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wave := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := uint64(g)*1000000 + uint64(wave%8)*50000
				for i := uint64(0); i < 256; i++ {
					if _, _, err := e.Upsert(base.Key(lo+i), base.Value(wave)); err != nil {
						t.Error(err)
						return
					}
				}
				for i := uint64(0); i < 256; i++ {
					if i%5 == 0 {
						continue
					}
					if err := e.Delete(base.Key(lo + i)); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Error(err)
						return
					}
				}
				wave++
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for scan := 0; scan < 8; scan++ {
		var prev base.Key
		n := 0
		_, err := e.StreamState(func(k base.Key, v base.Value) error {
			if n > 0 && k <= prev {
				return fmt.Errorf("scan %d emitted key %d after %d (pair %d): order/once violated", scan, k, prev, n)
			}
			prev = k
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("StreamState: %v", err)
		}
		if n < floor {
			t.Fatalf("scan %d emitted %d pairs, below the permanent floor of %d", scan, n, floor)
		}
	}

	close(stop)
	wg.Wait()
	checkCapture(t, e, captureState(t, e))
	if err := r.Check(); err != nil {
		t.Fatalf("structural check after scans: %v", err)
	}
}

// TestStreamStateVolatile pins the error contract: a volatile engine
// has no WAL to resume from, so StreamState must refuse.
func TestStreamStateVolatile(t *testing.T) {
	r := mustRouter(t, 1, Options{MinPairs: 4})
	if _, err := r.Engine(0).StreamState(func(base.Key, base.Value) error { return nil }); err == nil {
		t.Fatal("StreamState on a volatile engine did not fail")
	}
}
