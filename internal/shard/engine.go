package shard

import (
	"fmt"

	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/storage"
)

// CompressionMode selects how underfull nodes are repaired.
type CompressionMode int

// Compression modes.
const (
	// CompressionBackground runs worker goroutines that drain the
	// underfull queue concurrently with other operations (§5.4). The
	// default.
	CompressionBackground CompressionMode = iota
	// CompressionManual enqueues underfull nodes but compresses only
	// when Compact or DrainCompression is called.
	CompressionManual
	// CompressionOff never rebalances after deletions, exactly the
	// Lehman–Yao regime the paper improves on ([8], §4).
	CompressionOff
)

// Options configures OpenEngine. The zero value is a usable in-memory
// engine with background compression.
type Options struct {
	// MinPairs is the paper's k: nodes hold between k and 2k pairs.
	// Default blink.DefaultMinPairs.
	MinPairs int
	// Compression selects the repair mode. Default background.
	Compression CompressionMode
	// CompressorWorkers is the number of background compression
	// goroutines (§5.4 mode 2). Default 1. Ignored unless background.
	CompressorWorkers int
	// Path, when non-empty, stores nodes in a file at this path through
	// the page codec instead of in memory. PageSize (default 4096) and
	// CachePages (default 1024, LRU buffer pool; 0 disables caching)
	// control the paged store.
	Path       string
	PageSize   int
	CachePages int
	// RestartFromRoot disables the backtracking optimization for
	// wrong-node restarts (§5.2); restarts then always begin at the
	// root.
	RestartFromRoot bool
}

// Engine bundles one blink.Tree with the private substrate the paper's
// full system needs around it: the node store, the lock table shared
// with compression, the reclamation epoch, the §5.4 queue compressor
// and the §5.1 scan compressor. Every Engine is completely independent
// of every other — nothing is shared, so N engines contend on nothing.
type Engine struct {
	Tree    *blink.Tree
	store   node.Store
	lt      locks.Locker
	rec     *reclaim.Reclaimer
	comp    *compress.Compressor
	scanner *compress.Scanner
	mode    CompressionMode
	workers int
	pool    *storage.BufferPool
}

// Stats aggregates the counters of an engine's tree and compressors.
type Stats struct {
	Tree       blink.StatsSnapshot
	Occupancy  blink.Occupancy
	Reclaim    reclaim.ReclaimStats
	QueueDepth int
	Merges     uint64
	Redist     uint64
	Collapses  uint64
	// CompressorMaxLocks is the high-water of simultaneous locks held
	// by compression (≤ 3 per the paper).
	CompressorMaxLocks uint64
}

// OpenEngine assembles a complete engine per opts: store (memory or
// paged file), lock table, reclaimer, tree, scanner, and — unless
// compression is off — a queue compressor, started when background.
func OpenEngine(opts Options) (*Engine, error) {
	if opts.MinPairs == 0 {
		opts.MinPairs = blink.DefaultMinPairs
	}
	var st node.Store
	var pool *storage.BufferPool
	if opts.Path != "" {
		ps := opts.PageSize
		if ps == 0 {
			ps = storage.DefaultPageSize
		}
		if max := node.MaxPairs(ps); 2*opts.MinPairs > max {
			return nil, fmt.Errorf("blinktree: 2k=%d pairs exceed page capacity %d for page size %d",
				2*opts.MinPairs, max, ps)
		}
		fs, err := storage.NewFileStore(opts.Path, ps)
		if err != nil {
			return nil, err
		}
		var under storage.Store = fs
		cache := opts.CachePages
		if cache == 0 {
			cache = 1024
		}
		if cache > 0 {
			pool = storage.NewBufferPool(fs, cache)
			under = pool
		}
		paged, err := node.NewPagedStore(under)
		if err != nil {
			return nil, err
		}
		st = paged
	} else {
		st = node.NewMemStore()
	}

	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	pol := blink.RestartBacktrack
	if opts.RestartFromRoot {
		pol = blink.RestartFromRoot
	}
	inner, err := blink.New(blink.Config{
		Store:     st,
		Locks:     lt,
		MinPairs:  opts.MinPairs,
		Restart:   pol,
		Reclaimer: rec,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Tree:    inner,
		store:   st,
		lt:      lt,
		rec:     rec,
		mode:    opts.Compression,
		workers: opts.CompressorWorkers,
		pool:    pool,
	}
	e.scanner = compress.NewScanner(st, lt, opts.MinPairs, rec)
	if opts.Compression != CompressionOff {
		e.comp = compress.NewCompressor(st, lt, opts.MinPairs, rec)
		e.comp.Attach(inner)
		if opts.Compression == CompressionBackground {
			if e.workers <= 0 {
				e.workers = 1
			}
			e.comp.Start(e.workers)
		}
	}
	return e, nil
}

// Compact fully compresses the engine's tree: it drains the underfull
// queue, runs scan passes (§5.1) until every non-root node holds at
// least MinPairs pairs and the height is minimal, then frees retired
// pages.
func (e *Engine) Compact() error {
	if e.comp != nil {
		if err := e.comp.DrainOnce(); err != nil {
			return err
		}
	}
	if err := e.scanner.Compact(); err != nil {
		return err
	}
	_, err := e.rec.Collect()
	return err
}

// DrainCompression processes the pending underfull queue once without
// running full scan passes. No-op when compression is off.
func (e *Engine) DrainCompression() error {
	if e.comp == nil {
		return nil
	}
	if err := e.comp.DrainOnce(); err != nil {
		return err
	}
	_, err := e.rec.Collect()
	return err
}

// CollectGarbage frees pages retired by compression that no live
// operation can still reference (§5.3).
func (e *Engine) CollectGarbage() (int, error) { return e.rec.Collect() }

// QueueDepth reports pending underfull-queue entries (0 when
// compression is off).
func (e *Engine) QueueDepth() int {
	if e.comp == nil {
		return 0
	}
	return e.comp.Queue().Len()
}

// Stats returns a snapshot of operation and compression counters.
// Occupancy is gathered with a full walk; avoid calling it in hot
// loops.
func (e *Engine) Stats() (Stats, error) {
	occ, err := e.Tree.OccupancyStats()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tree:      e.Tree.Stats(),
		Occupancy: occ,
		Reclaim:   e.rec.Stats(),
	}
	sc := e.scanner.Stats()
	s.Merges += sc.Merges.Load()
	s.Redist += sc.Redistributions.Load()
	s.Collapses += sc.RootCollapses.Load()
	if fp := sc.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
		s.CompressorMaxLocks = fp.MaxHeld
	}
	if e.comp != nil {
		cs := e.comp.Stats()
		s.Merges += cs.Merges.Load()
		s.Redist += cs.Redistributions.Load()
		s.Collapses += cs.RootCollapses.Load()
		s.QueueDepth = e.comp.Queue().Len()
		if fp := cs.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
			s.CompressorMaxLocks = fp.MaxHeld
		}
	}
	return s, nil
}

// Close stops background compression and closes the store. The engine
// must not be used afterwards.
func (e *Engine) Close() error {
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Stop()
	}
	if err := e.Tree.Close(); err != nil {
		return err
	}
	return e.store.Close()
}
