package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/snap"
	"blinktree/internal/storage"
	"blinktree/internal/verify"
	"blinktree/internal/wal"
)

// CompressionMode selects how underfull nodes are repaired.
type CompressionMode int

// Compression modes.
const (
	// CompressionBackground runs worker goroutines that drain the
	// underfull queue concurrently with other operations (§5.4). The
	// default.
	CompressionBackground CompressionMode = iota
	// CompressionManual enqueues underfull nodes but compresses only
	// when Compact or DrainCompression is called.
	CompressionManual
	// CompressionOff never rebalances after deletions, exactly the
	// Lehman–Yao regime the paper improves on ([8], §4).
	CompressionOff
)

// Options configures OpenEngine. The zero value is a usable in-memory
// engine with background compression.
type Options struct {
	// MinPairs is the paper's k: nodes hold between k and 2k pairs.
	// Default blink.DefaultMinPairs.
	MinPairs int
	// Compression selects the repair mode. Default background.
	Compression CompressionMode
	// CompressorWorkers is the number of background compression
	// goroutines (§5.4 mode 2). Default 1. Ignored unless background.
	CompressorWorkers int
	// Path, when non-empty, stores nodes in a file at this path through
	// the page codec instead of in memory. PageSize (default 4096) and
	// CachePages (default 1024, LRU buffer pool; 0 disables caching)
	// control the paged store.
	Path       string
	PageSize   int
	CachePages int
	// DiskNative serves the tree through a bounded buffer pool over a
	// page file even when Path is empty: the disk-resident regime the
	// paper assumes, where main memory holds a few pages at a time.
	// The page file lands beside the WAL (Dir/pages) when Dir is set,
	// else in a temporary file removed at Close. Page files are scratch
	// either way — they are recreated at every open and the
	// authoritative state stays "checkpoint + log suffix" (see
	// internal/storage doc.go), so eviction write-back needs no
	// ordering against the WAL.
	DiskNative bool
	// CacheBytes bounds the buffer pool's resident bytes when
	// DiskNative is set (per engine, so per shard in a sharded index).
	// Default 4 MiB; the pool floor of 4 frames always applies.
	// Ignored unless DiskNative (use CachePages with Path otherwise).
	CacheBytes int64
	// RestartFromRoot disables the backtracking optimization for
	// wrong-node restarts (§5.2); restarts then always begin at the
	// root.
	RestartFromRoot bool
	// Durable, with a non-empty Dir, makes the engine crash-recoverable:
	// every mutating operation appends a logical record to a group-
	// commit write-ahead log in Dir and is acknowledged only after its
	// group's fsync, and opening the same Dir again recovers the state
	// "checkpoint + log suffix". For a sharded index, shard i logs
	// independently under Dir/shard<i>.
	Durable bool
	// Dir is the durability directory (segments + checkpoints).
	Dir string
	// WALSegmentBytes is the log segment rotation threshold. Default
	// wal.DefaultSegmentBytes.
	WALSegmentBytes int
	// WALNoSync skips the fsync in group commits (crash durability then
	// depends on the OS). For measuring logging cost apart from sync
	// cost; never for production.
	WALNoSync bool
	// SyncPageWrites makes a file-backed page store (Path) fsync every
	// page write. Independent of the WAL — it hardens the paged
	// substrate itself, at a large cost; see storage.FileStore.
	SyncPageWrites bool
	// Verified maintains an incremental hash tree over the engine's
	// content (internal/verify): mutations dirty their key's bucket, a
	// background hasher re-hashes dirty buckets, and the fold of all
	// bucket leaves is the shard's state root. The root is persisted
	// with every checkpoint and recomputed-and-compared at recovery, so
	// snapshot corruption or tampering fails the open instead of
	// silently serving wrong data.
	Verified bool
	// VerifyBuckets is the number of hash-tree leaves (a power of two;
	// default verify.DefaultBuckets). More buckets mean cheaper
	// re-hashing per mutation and longer proofs. Ignored unless
	// Verified.
	VerifyBuckets int
	// RehashEvery is the background hasher's drain interval (default
	// verify.DefaultRehashInterval). Ignored unless Verified.
	RehashEvery time.Duration
}

// Engine bundles one blink.Tree with the private substrate the paper's
// full system needs around it: the node store, the lock table shared
// with compression, the reclamation epoch, the §5.4 queue compressor
// and the §5.1 scan compressor. Every Engine is completely independent
// of every other — nothing is shared, so N engines contend on nothing.
type Engine struct {
	Tree    *blink.Tree
	store   node.Store
	lt      locks.Locker
	rec     *reclaim.Reclaimer
	comp    *compress.Compressor
	scanner *compress.Scanner
	mode    CompressionMode
	workers int
	pool    *storage.BufferPool

	// Durability (nil wal = volatile engine). stripes order the
	// apply+append pair of racing mutations on the same key, so the
	// log's per-key record order always matches the apply order; ckptMu
	// serializes checkpoints.
	wal         *wal.Log
	dir         string
	stripes     []sync.Mutex
	ckptMu      sync.Mutex
	checkpoints atomic.Uint64

	// tmpPages is the scratch page file of a DiskNative engine without
	// a durability Dir, removed at Close.
	tmpPages string

	// Integrity layer (nil overlay = unverified engine). verifyNB is
	// the overlay's bucket count, fixed for the engine's lifetime.
	overlay  *verify.Overlay
	vhasher  *verify.Hasher
	verifyNB int
}

// walStripes is the number of key stripes ordering apply+append pairs.
const walStripes = 128

// stripe returns the stripe lock for k. Only used when the engine is
// durable.
func (e *Engine) stripe(k base.Key) *sync.Mutex {
	// Fibonacci hashing spreads adjacent keys across stripes.
	return &e.stripes[(uint64(k)*11400714819323198485)>>57&(walStripes-1)]
}

// Stats aggregates the counters of an engine's tree and compressors.
type Stats struct {
	Tree       blink.StatsSnapshot
	Occupancy  blink.Occupancy
	Reclaim    reclaim.ReclaimStats
	QueueDepth int
	Merges     uint64
	Redist     uint64
	Collapses  uint64
	// CompressorMaxLocks is the high-water of simultaneous locks held
	// by compression (≤ 3 per the paper).
	CompressorMaxLocks uint64
	// WAL reports the durability counters (zero when volatile):
	// records appended/committed, group-commit syncs — Records/Syncs is
	// the achieved group size — bytes, rotations and records replayed
	// at recovery. For a sharded index the counters sum across shards
	// and MaxGroup takes the maximum.
	WAL wal.Stats
	// Checkpoints counts completed Checkpoint calls.
	Checkpoints uint64
	// Pool reports the buffer pool counters of a disk-native or
	// file-backed engine (zero when the store is unpooled memory). For
	// a sharded index counters and resident frames sum across shards
	// and PinnedHighWater takes the maximum.
	Pool storage.PoolStats
	// Pooled reports whether a buffer pool is present (distinguishes
	// an all-zero Pool from "no pool at all").
	Pooled bool
	// Verified reports whether the integrity overlay is maintained;
	// VerifyRehashes counts bucket re-hashes it has performed. For a
	// sharded index VerifyRehashes sums across shards.
	Verified       bool
	VerifyRehashes uint64
}

// OpenEngine assembles a complete engine per opts: store (memory or
// paged file), lock table, reclaimer, tree, scanner, and — unless
// compression is off — a queue compressor, started when background.
func OpenEngine(opts Options) (*Engine, error) {
	if opts.MinPairs == 0 {
		opts.MinPairs = blink.DefaultMinPairs
	}
	if opts.Verified {
		if opts.VerifyBuckets == 0 {
			opts.VerifyBuckets = verify.DefaultBuckets
		}
		if !verify.ValidBuckets(opts.VerifyBuckets) {
			return nil, fmt.Errorf("blinktree: VerifyBuckets must be a power of two in [1, %d], got %d",
				verify.MaxBuckets, opts.VerifyBuckets)
		}
	}
	tmpPages := ""
	adopted := false
	defer func() {
		if tmpPages != "" && !adopted {
			os.Remove(tmpPages)
		}
	}()
	if opts.DiskNative && opts.Path == "" {
		if opts.Durable && opts.Dir != "" {
			if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
				return nil, fmt.Errorf("blinktree: disk-native dir: %w", err)
			}
			opts.Path = filepath.Join(opts.Dir, "pages")
		} else {
			f, err := os.CreateTemp("", "blinktree-pages-*")
			if err != nil {
				return nil, fmt.Errorf("blinktree: disk-native scratch file: %w", err)
			}
			opts.Path = f.Name()
			tmpPages = f.Name()
			f.Close()
		}
	}
	if opts.DiskNative && opts.CachePages == 0 {
		ps := opts.PageSize
		if ps == 0 {
			ps = storage.DefaultPageSize
		}
		cb := opts.CacheBytes
		if cb <= 0 {
			cb = 4 << 20
		}
		opts.CachePages = int(cb / int64(ps))
		if opts.CachePages < 1 {
			opts.CachePages = 1 // the pool floor of 4 frames applies
		}
	}
	var st node.Store
	var pool *storage.BufferPool
	if opts.Path != "" {
		ps := opts.PageSize
		if ps == 0 {
			ps = storage.DefaultPageSize
		}
		if max := node.MaxPairs(ps); 2*opts.MinPairs > max {
			return nil, fmt.Errorf("blinktree: 2k=%d pairs exceed page capacity %d for page size %d",
				2*opts.MinPairs, max, ps)
		}
		fs, err := storage.NewFileStore(opts.Path, ps)
		if err != nil {
			return nil, err
		}
		fs.SetSyncWrites(opts.SyncPageWrites)
		var under storage.Store = fs
		cache := opts.CachePages
		if cache == 0 {
			cache = 1024
		}
		if cache > 0 {
			pool = storage.NewBufferPool(fs, cache)
			under = pool
		}
		paged, err := node.NewPagedStore(under)
		if err != nil {
			return nil, err
		}
		st = paged
	} else {
		st = node.NewMemStore()
	}

	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	pol := blink.RestartBacktrack
	if opts.RestartFromRoot {
		pol = blink.RestartFromRoot
	}
	inner, err := blink.New(blink.Config{
		Store:     st,
		Locks:     lt,
		MinPairs:  opts.MinPairs,
		Restart:   pol,
		Reclaimer: rec,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Tree:     inner,
		store:    st,
		lt:       lt,
		rec:      rec,
		mode:     opts.Compression,
		workers:  opts.CompressorWorkers,
		pool:     pool,
		tmpPages: tmpPages,
	}
	if opts.Verified {
		// verifyNB must be settled before openDurable: the recovery path
		// compares the recomputed checkpoint root against the persisted
		// one, and roots are only comparable under the same bucketing.
		e.verifyNB = opts.VerifyBuckets
	}
	adopted = true // from here Close owns the scratch page file
	e.scanner = compress.NewScanner(st, lt, opts.MinPairs, rec)
	if opts.Compression != CompressionOff {
		e.comp = compress.NewCompressor(st, lt, opts.MinPairs, rec)
		e.comp.Attach(inner)
		if opts.Compression == CompressionBackground {
			if e.workers <= 0 {
				e.workers = 1
			}
			e.comp.Start(e.workers)
		}
	}
	if opts.Durable {
		if err := e.openDurable(opts); err != nil {
			e.Close()
			return nil, err
		}
	}
	if opts.Verified {
		// The overlay starts all-dirty, which covers whatever recovery
		// just rebuilt; the background hasher then amortizes the initial
		// full hash and every later re-hash off the mutation paths.
		e.overlay = verify.NewOverlay(e.verifyNB, e.scanRange)
		e.vhasher = verify.NewHasher(e.overlay, opts.RehashEvery)
		e.vhasher.Start()
	}
	return e, nil
}

// openDurable recovers the engine's state from opts.Dir — newest
// checkpoint first, then the surviving log suffix — and readies the
// write-ahead log for appends.
func (e *Engine) openDurable(opts Options) error {
	if opts.Dir == "" {
		return fmt.Errorf("blinktree: Options.Durable requires Options.Dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return fmt.Errorf("blinktree: durability dir: %w", err)
	}
	e.dir = opts.Dir
	e.stripes = make([]sync.Mutex, walStripes)
	startSeg := uint64(0)
	seg, path, ok, err := wal.LatestCheckpoint(e.dir)
	if err != nil {
		return err
	}
	if ok {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		// On a verified engine, tee the load into a stream hasher: the
		// snapshot was hashed in this same key order when it was written,
		// so recomputing from the file bytes and comparing against the
		// persisted root detects any corruption of the checkpoint —
		// beyond what its CRC footer can promise.
		var sh *verify.StreamHasher
		if e.verifyNB != 0 {
			sh = verify.NewStreamHasher(e.verifyNB)
		}
		err = snap.Read(f, func(k base.Key, v base.Value) error {
			if sh != nil {
				sh.Add(uint64(k), uint64(v))
			}
			return e.Tree.Insert(k, v)
		})
		f.Close()
		if err != nil {
			return fmt.Errorf("blinktree: checkpoint %s: %w", filepath.Base(path), err)
		}
		if sh != nil {
			if err := e.compareCheckpointRoot(seg, sh.Root()); err != nil {
				return err
			}
		}
		startSeg = seg
	}
	lg, err := wal.Open(e.dir, wal.Options{
		SegmentBytes: opts.WALSegmentBytes,
		NoSync:       opts.WALNoSync,
	}, startSeg, e.applyRecord)
	if err != nil {
		return err
	}
	e.wal = lg
	return nil
}

// applyRecord replays one log record onto the tree. Puts replay as
// Upsert and dels as Delete-ignoring-absence, so replaying a record
// whose effect the checkpoint already captured is a no-op — the
// idempotence recovery relies on.
func (e *Engine) applyRecord(r wal.Record) error {
	switch r.Kind {
	case wal.KindPut:
		_, _, err := e.Tree.Upsert(r.Key, r.Value)
		return err
	case wal.KindDel:
		if err := e.Tree.Delete(r.Key); err != nil && !errors.Is(err, base.ErrNotFound) {
			return err
		}
		return nil
	default:
		return fmt.Errorf("blinktree: unknown wal record kind %d", r.Kind)
	}
}

// Checkpoint writes the engine's current state as a durable snapshot
// and truncates the log to the suffix the snapshot does not cover. It
// runs concurrently with readers AND writers: the log first rotates to
// a fresh segment, so every operation whose record landed in an older
// segment was fully applied before the state scan began and is
// captured by it, while operations racing the scan land in the kept
// suffix and replay idempotently on top. No-op on a volatile engine.
//
// Compression, however, IS quiesced for the duration of the scan
// (background workers pause; Compact/DrainCompression serialize on
// the same lock): a merge or redistribution can move a pair leftward
// across the scan cursor, and a pair the fuzzy snapshot misses that
// way has no record in the kept log suffix — truncation would destroy
// the only durable copy of an acknowledged write. Searches, inserts,
// deletes and conditional writes never move pairs left, so they stay
// unblocked; deletions keep enqueueing underfull nodes for repair
// after Resume.
//
// Crash-safety: the snapshot is written to a temp file, fsynced, and
// renamed into place before anything is deleted; a crash between any
// two steps recovers from the previous checkpoint plus the full log.
func (e *Engine) Checkpoint() error {
	if e.wal == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	seg, err := e.wal.Rotate()
	if err != nil {
		return err
	}
	tmp := filepath.Join(e.dir, "checkpoint.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Pause()
	}
	// A verified engine hashes the pairs exactly as they stream into the
	// snapshot; the resulting root describes this checkpoint's bytes and
	// is persisted beside it for the recovery compare.
	var sh *verify.StreamHasher
	if e.verifyNB != 0 {
		sh = verify.NewStreamHasher(e.verifyNB)
	}
	err = snap.Write(f, e.Tree.Len(), func(fn func(base.Key, base.Value) bool) error {
		return e.Tree.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
			if sh != nil {
				sh.Add(uint64(k), uint64(v))
			}
			return fn(k, v)
		})
	})
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Resume()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, wal.CheckpointPath(e.dir, seg)); err != nil {
		return err
	}
	if err := wal.SyncDir(e.dir); err != nil {
		return err
	}
	// The root file lands after the checkpoint rename: a crash between
	// the two leaves a checkpoint without a root, which recovery
	// tolerates (missing root = no compare), never a root without its
	// checkpoint.
	if sh != nil {
		if err := writeRootFile(e.dir, seg, e.verifyNB, sh.Root()); err != nil {
			return err
		}
	}
	if err := e.wal.RemoveBelow(seg); err != nil {
		return err
	}
	if err := wal.RemoveCheckpointsBelow(e.dir, seg); err != nil {
		return err
	}
	if e.verifyNB != 0 {
		if err := removeRootFilesBelow(e.dir, seg); err != nil {
			return err
		}
	}
	e.checkpoints.Add(1)
	return nil
}

// WAL returns the engine's write-ahead log, or nil when the engine is
// volatile. Replication tails it through wal.TailReader; everything
// else should go through the operation surface.
func (e *Engine) WAL() *wal.Log { return e.wal }

// WALDir returns the engine's durability directory ("" when volatile).
func (e *Engine) WALDir() string { return e.dir }

// StreamState is the replication bootstrap's counterpart of
// Checkpoint: it rotates the log to a fresh segment, streams a fuzzy
// snapshot of the current pairs through send, and returns the segment
// id at which log streaming must resume. The same argument that makes
// checkpoints crash-safe makes the result prefix-consistent: every
// operation whose record landed below the returned segment was fully
// applied before the scan began and is captured by it, while
// operations racing the scan land at or above it and re-apply
// idempotently on top. Serializes with Checkpoint and pauses
// background compression for the scan, for the same leftward-movement
// reason documented there.
func (e *Engine) StreamState(send func(base.Key, base.Value) error) (uint64, error) {
	if e.wal == nil {
		return 0, fmt.Errorf("blinktree: StreamState on a volatile engine")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	seg, err := e.wal.Rotate()
	if err != nil {
		return 0, err
	}
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Pause()
	}
	var serr error
	err = e.Tree.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		serr = send(k, v)
		return serr == nil
	})
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Resume()
	}
	if err == nil {
		err = serr
	}
	return seg, err
}

// CrashWAL simulates a crash for durability testing: at most partial
// bytes of the pending commit group reach disk, unacknowledged
// operations fail, and the engine's log becomes unusable. The engine
// must be abandoned afterwards (not Closed and reused); recovery is
// exercised by opening the same Dir again.
func (e *Engine) CrashWAL(partial int) {
	if e.wal != nil {
		e.wal.Crash(partial)
	}
	// Sever the buffer pool too: a dead process writes no evicted pages,
	// so the abandoned engine must not keep writing into a page file
	// that recovery is about to reopen.
	if e.pool != nil {
		e.pool.Crash()
	}
}

// Compact fully compresses the engine's tree: it drains the underfull
// queue, runs scan passes (§5.1) until every non-root node holds at
// least MinPairs pairs and the height is minimal, then frees retired
// pages. On a durable engine it serializes with Checkpoint — a
// checkpoint's state scan must not race pair movement to the left.
func (e *Engine) Compact() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if e.comp != nil {
		if err := e.comp.DrainOnce(); err != nil {
			return err
		}
	}
	if err := e.scanner.Compact(); err != nil {
		return err
	}
	_, err := e.rec.Collect()
	return err
}

// DrainCompression processes the pending underfull queue once without
// running full scan passes. No-op when compression is off; serializes
// with Checkpoint like Compact.
func (e *Engine) DrainCompression() error {
	if e.comp == nil {
		return nil
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if err := e.comp.DrainOnce(); err != nil {
		return err
	}
	_, err := e.rec.Collect()
	return err
}

// CollectGarbage frees pages retired by compression that no live
// operation can still reference (§5.3).
func (e *Engine) CollectGarbage() (int, error) { return e.rec.Collect() }

// QueueDepth reports pending underfull-queue entries (0 when
// compression is off).
func (e *Engine) QueueDepth() int {
	if e.comp == nil {
		return 0
	}
	return e.comp.Queue().Len()
}

// Stats returns a snapshot of operation and compression counters.
// Occupancy is gathered with a full walk; avoid calling it in hot
// loops.
func (e *Engine) Stats() (Stats, error) {
	occ, err := e.Tree.OccupancyStats()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tree:      e.Tree.Stats(),
		Occupancy: occ,
		Reclaim:   e.rec.Stats(),
	}
	sc := e.scanner.Stats()
	s.Merges += sc.Merges.Load()
	s.Redist += sc.Redistributions.Load()
	s.Collapses += sc.RootCollapses.Load()
	if fp := sc.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
		s.CompressorMaxLocks = fp.MaxHeld
	}
	if e.comp != nil {
		cs := e.comp.Stats()
		s.Merges += cs.Merges.Load()
		s.Redist += cs.Redistributions.Load()
		s.Collapses += cs.RootCollapses.Load()
		s.QueueDepth = e.comp.Queue().Len()
		if fp := cs.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
			s.CompressorMaxLocks = fp.MaxHeld
		}
	}
	if e.wal != nil {
		s.WAL = e.wal.Stats()
		s.Checkpoints = e.checkpoints.Load()
	}
	if e.pool != nil {
		s.Pool = e.pool.Stats()
		s.Pooled = true
	}
	if e.overlay != nil {
		s.Verified = true
		s.VerifyRehashes = e.overlay.Rehashed.Load()
	}
	return s, nil
}

// PoolStats returns the buffer pool counters and whether a pool exists
// (false for an in-memory engine). Cheap; safe in hot loops.
func (e *Engine) PoolStats() (storage.PoolStats, bool) {
	if e.pool == nil {
		return storage.PoolStats{}, false
	}
	return e.pool.Stats(), true
}

// Close stops background compression, flushes and closes the write-
// ahead log, and closes the store. The engine must not be used
// afterwards.
func (e *Engine) Close() error {
	if e.vhasher != nil {
		e.vhasher.Stop()
	}
	if e.comp != nil && e.mode == CompressionBackground {
		e.comp.Stop()
	}
	var werr error
	if e.wal != nil {
		werr = e.wal.Close()
	}
	if err := e.Tree.Close(); err != nil {
		return err
	}
	serr := e.store.Close()
	if e.tmpPages != "" {
		os.Remove(e.tmpPages)
	}
	if serr != nil {
		return serr
	}
	return werr
}
