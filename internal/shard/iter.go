package shard

import (
	"iter"

	"blinktree/internal/base"
)

// Range-over-func iteration over the whole fleet, built on the
// stitched cursors: ascending sequences visit shards left to right,
// descending ones right to left, with the cursors' no-locks,
// at-most-once, may-or-may-not-observe-concurrent-mutation semantics.
// A sequence that hits an internal error simply stops; use the cursor
// API directly when that distinction matters.

// All returns an iterator over every pair in ascending key order.
func (r *Router) All() iter.Seq2[base.Key, base.Value] {
	return r.Ascend(0, base.Key(^uint64(0)))
}

// Ascend returns an iterator over the pairs with lo ≤ key ≤ hi in
// ascending key order. An inverted range (hi < lo) is empty.
func (r *Router) Ascend(lo, hi base.Key) iter.Seq2[base.Key, base.Value] {
	return func(yield func(base.Key, base.Value) bool) {
		if hi < lo {
			return
		}
		c := r.NewCursor(lo)
		for {
			k, v, ok := c.Next()
			if !ok || k > hi {
				return
			}
			if !yield(k, v) {
				return
			}
		}
	}
}

// Descend returns an iterator over the pairs with lo ≤ key ≤ hi in
// descending key order, from hi down to lo. An inverted range
// (hi < lo) is empty.
func (r *Router) Descend(hi, lo base.Key) iter.Seq2[base.Key, base.Value] {
	return func(yield func(base.Key, base.Value) bool) {
		if hi < lo {
			return
		}
		c := r.NewReverseCursor(hi)
		for {
			k, v, ok := c.Next()
			if !ok || k < lo {
				return
			}
			if !yield(k, v) {
				return
			}
		}
	}
}
