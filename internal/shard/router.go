package shard

import (
	"errors"
	"fmt"
	"path/filepath"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/locks"
	"blinktree/internal/metrics"
	"blinktree/internal/storage"
)

// OpMetrics counts the operations routed to one shard, wired into the
// internal/metrics kit so callers can watch partition balance live.
// The inner tree keeps its own structural counters (splits, link hops,
// restarts); these count what the Router sent its way.
type OpMetrics struct {
	Searches metrics.Counter
	Inserts  metrics.Counter
	Deletes  metrics.Counter
	Scans    metrics.Counter
	// Upserts counts Upsert + GetOrInsert, Updates counts Update, and
	// Cas counts CompareAndSwap + CompareAndDelete routed to the shard.
	Upserts metrics.Counter
	Updates metrics.Counter
	Cas     metrics.Counter
	// Batches and BatchLatency describe ApplyBatch dispatches: one
	// observation per batch slice routed to this shard.
	Batches      metrics.Counter
	BatchOps     metrics.Counter
	BatchLatency metrics.Histogram
}

// Router range-partitions the keyspace across N independent Engines.
// Shard i owns keys [i·stride, (i+1)·stride) with stride = ceil(2^64/N),
// so keys of shard i all precede keys of shard i+1 and ordered scans
// can visit shards left to right. All methods are safe for concurrent
// use by any number of goroutines.
type Router struct {
	engines []*Engine
	stride  uint64 // 0 means a single shard owning everything
	ms      []OpMetrics
}

// NewRouter builds n engines per opts. With a non-empty opts.Path,
// shard i persists to "<path>.shard<i>"; otherwise shards are in
// memory. n must be ≥ 1.
func NewRouter(n int, opts Options) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards (need ≥ 1)", n)
	}
	if opts.Durable && opts.Dir != "" {
		if err := EnsureLayout(opts.Dir, n); err != nil {
			return nil, err
		}
	}
	r := &Router{
		engines: make([]*Engine, n),
		ms:      make([]OpMetrics, n),
	}
	if n > 1 {
		r.stride = ^uint64(0)/uint64(n) + 1
	}
	for i := range r.engines {
		o := opts
		if opts.Path != "" {
			o.Path = fmt.Sprintf("%s.shard%d", opts.Path, i)
		}
		if opts.Dir != "" {
			// One WAL segment set (and checkpoint lineage) per shard, so
			// shards group-commit and truncate independently.
			o.Dir = filepath.Join(opts.Dir, fmt.Sprintf("shard%d", i))
		}
		e, err := OpenEngine(o)
		if err != nil {
			for _, prev := range r.engines[:i] {
				prev.Close()
			}
			return nil, err
		}
		r.engines[i] = e
	}
	return r, nil
}

// Shards returns the number of partitions.
func (r *Router) Shards() int { return len(r.engines) }

// shardFor maps a key to its owning shard index.
func (r *Router) shardFor(k base.Key) int {
	if r.stride == 0 {
		return 0
	}
	return int(uint64(k) / r.stride)
}

// ShardFor maps a key to its shard index — the range index the cluster
// layer assigns owners to.
func (r *Router) ShardFor(k base.Key) int { return r.shardFor(k) }

// lowKey returns the smallest key shard i can own.
func (r *Router) lowKey(i int) base.Key { return base.Key(uint64(i) * r.stride) }

// Metrics returns the routed-operation counters of shard i.
func (r *Router) Metrics(i int) *OpMetrics { return &r.ms[i] }

// ShardSpan returns the inclusive key range shard i owns.
func (r *Router) ShardSpan(i int) (lo, hi base.Key) {
	lo = r.lowKey(i)
	if r.stride == 0 || i == len(r.engines)-1 {
		return lo, base.Key(^uint64(0))
	}
	return lo, r.lowKey(i+1) - 1
}

// Durable reports whether the router's engines log to a WAL.
func (r *Router) Durable() bool { return r.engines[0].WAL() != nil }

// Insert stores v under k in k's shard.
func (r *Router) Insert(k base.Key, v base.Value) error {
	i := r.shardFor(k)
	r.ms[i].Inserts.Inc()
	return r.engines[i].Insert(k, v)
}

// InsertDirect stores v under k in k's shard, bypassing the write-
// ahead log — the loading path Restore shares with BulkLoad. Callers
// need exclusive access and must Checkpoint afterwards to make the
// loaded state durable (no-ops when volatile).
func (r *Router) InsertDirect(k base.Key, v base.Value) error {
	e := r.engines[r.shardFor(k)]
	if err := e.Tree.Insert(k, v); err != nil {
		return err
	}
	e.markVerify(k)
	return nil
}

// Search returns the value stored under k, or base.ErrNotFound.
func (r *Router) Search(k base.Key) (base.Value, error) {
	i := r.shardFor(k)
	r.ms[i].Searches.Inc()
	return r.engines[i].Tree.Search(k)
}

// Delete removes k from its shard, or returns base.ErrNotFound.
func (r *Router) Delete(k base.Key) error {
	i := r.shardFor(k)
	r.ms[i].Deletes.Inc()
	return r.engines[i].Delete(k)
}

// Upsert stores v under k in k's shard, returning the previous value
// and whether one existed.
func (r *Router) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	i := r.shardFor(k)
	r.ms[i].Upserts.Inc()
	return r.engines[i].Upsert(k, v)
}

// GetOrInsert returns the value under k, inserting v first when k is
// absent from its shard.
func (r *Router) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	i := r.shardFor(k)
	r.ms[i].Upserts.Inc()
	return r.engines[i].GetOrInsert(k, v)
}

// Update atomically replaces the value under k with fn(current), or
// returns base.ErrNotFound.
func (r *Router) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	i := r.shardFor(k)
	r.ms[i].Updates.Inc()
	return r.engines[i].Update(k, fn)
}

// CompareAndSwap swaps k's value from old to new in its shard.
func (r *Router) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	i := r.shardFor(k)
	r.ms[i].Cas.Inc()
	return r.engines[i].CompareAndSwap(k, old, new)
}

// CompareAndDelete removes k from its shard when its value equals old.
func (r *Router) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	i := r.shardFor(k)
	r.ms[i].Cas.Inc()
	return r.engines[i].CompareAndDelete(k, old)
}

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order
// across all shards, stopping early if fn returns false. Within each
// shard it has the scan semantics of blink.Tree.Range; across shards,
// order is preserved because partitions are contiguous.
func (r *Router) Range(lo, hi base.Key, fn func(base.Key, base.Value) bool) error {
	if hi < lo {
		return nil
	}
	stopped := false
	wrapped := func(k base.Key, v base.Value) bool {
		if !fn(k, v) {
			stopped = true
			return false
		}
		return true
	}
	first, last := r.shardFor(lo), r.shardFor(hi)
	for i := first; i <= last && !stopped; i++ {
		from := lo
		if i > first {
			from = r.lowKey(i)
		}
		r.ms[i].Scans.Inc()
		if err := r.engines[i].Tree.Range(from, hi, wrapped); err != nil {
			return err
		}
	}
	return nil
}

// Min returns the smallest stored pair, or base.ErrNotFound when every
// shard is empty.
func (r *Router) Min() (base.Key, base.Value, error) {
	for _, e := range r.engines {
		k, v, err := e.Tree.Min()
		if err == nil {
			return k, v, nil
		}
		if !errors.Is(err, base.ErrNotFound) {
			return 0, 0, err
		}
	}
	return 0, 0, base.ErrNotFound
}

// Max returns the largest stored pair, or base.ErrNotFound when every
// shard is empty.
func (r *Router) Max() (base.Key, base.Value, error) {
	for i := len(r.engines) - 1; i >= 0; i-- {
		k, v, err := r.engines[i].Tree.Max()
		if err == nil {
			return k, v, nil
		}
		if !errors.Is(err, base.ErrNotFound) {
			return 0, 0, err
		}
	}
	return 0, 0, base.ErrNotFound
}

// Len returns the total number of stored pairs (exact when quiesced).
func (r *Router) Len() int {
	n := 0
	for _, e := range r.engines {
		n += e.Tree.Len()
	}
	return n
}

// Height returns the tallest shard's level count.
func (r *Router) Height() int {
	h := 0
	for _, e := range r.engines {
		if eh := e.Tree.Height(); eh > h {
			h = eh
		}
	}
	return h
}

// BulkLoad builds all shards bottom-up from one strictly ascending
// pair stream, cutting the stream at partition boundaries. Same
// contract as blink.Tree.BulkLoad: empty shards, exclusive access.
func (r *Router) BulkLoad(pairs func() (base.Key, base.Value, bool), fill float64) error {
	var (
		heldK base.Key
		heldV base.Value
		held  bool
		done  bool
	)
	for i, e := range r.engines {
		if done {
			break
		}
		boundary := base.Key(0)
		last := i == len(r.engines)-1
		if !last {
			boundary = r.lowKey(i + 1)
		}
		sub := func() (base.Key, base.Value, bool) {
			k, v := heldK, heldV
			if held {
				held = false
			} else {
				var ok bool
				if k, v, ok = pairs(); !ok {
					done = true
					return 0, 0, false
				}
			}
			if !last && k >= boundary {
				heldK, heldV, held = k, v, true
				return 0, 0, false
			}
			return k, v, true
		}
		if err := e.BulkLoad(sub, fill); err != nil {
			return err
		}
	}
	return nil
}

// Compact fully compresses every shard.
func (r *Router) Compact() error {
	for _, e := range r.engines {
		if err := e.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// DrainCompression drains every shard's underfull queue once.
func (r *Router) DrainCompression() error {
	for _, e := range r.engines {
		if err := e.DrainCompression(); err != nil {
			return err
		}
	}
	return nil
}

// CollectGarbage frees retired pages in every shard, returning the
// total freed.
func (r *Router) CollectGarbage() (int, error) {
	total := 0
	for _, e := range r.engines {
		n, err := e.CollectGarbage()
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Checkpoint checkpoints every shard: each writes its state as a
// durable snapshot and truncates its own log. Shards checkpoint
// independently — there is no cross-shard barrier, matching the
// per-shard commit independence of the WAL itself. No-op when the
// router is volatile.
func (r *Router) Checkpoint() error {
	for i, e := range r.engines {
		if err := e.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Engine returns shard i's engine — the handle stress and fault-
// injection tooling uses to reach per-shard durability controls.
func (r *Router) Engine(i int) *Engine { return r.engines[i] }

// CrashWAL simulates a crash on every shard's log for durability
// testing; see Engine.CrashWAL. The router must be abandoned
// afterwards.
func (r *Router) CrashWAL(partial int) {
	for _, e := range r.engines {
		e.CrashWAL(partial)
	}
}

// Check validates every shard's structural invariants. Run it quiesced.
func (r *Router) Check() error {
	for i, e := range r.engines {
		if err := e.Tree.Check(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close closes every shard, returning the first error but closing all.
func (r *Router) Close() error {
	var first error
	for _, e := range r.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats aggregates all shards' counters into one Stats: counters sum,
// lock high-waters take the max, occupancy merges with a node-weighted
// mean fill.
func (r *Router) Stats() (Stats, error) {
	var agg Stats
	var fillSum float64
	var fillN int
	for _, e := range r.engines {
		s, err := e.Stats()
		if err != nil {
			return Stats{}, err
		}
		agg.Tree = mergeSnapshots(agg.Tree, s.Tree)
		agg.Reclaim.Retired += s.Reclaim.Retired
		agg.Reclaim.Freed += s.Reclaim.Freed
		agg.Reclaim.Limbo += s.Reclaim.Limbo
		agg.QueueDepth += s.QueueDepth
		agg.Merges += s.Merges
		agg.Redist += s.Redist
		agg.Collapses += s.Collapses
		if s.CompressorMaxLocks > agg.CompressorMaxLocks {
			agg.CompressorMaxLocks = s.CompressorMaxLocks
		}
		agg.WAL.Merge(s.WAL)
		agg.Checkpoints += s.Checkpoints
		agg.Pool.Merge(s.Pool)
		agg.Pooled = agg.Pooled || s.Pooled
		agg.Verified = agg.Verified || s.Verified
		agg.VerifyRehashes += s.VerifyRehashes
		o := s.Occupancy
		agg.Occupancy.Nodes += o.Nodes
		agg.Occupancy.Leaves += o.Leaves
		agg.Occupancy.Pairs += o.Pairs
		agg.Occupancy.Underfull += o.Underfull
		if o.Height > agg.Occupancy.Height {
			agg.Occupancy.Height = o.Height
		}
		// MeanFill averages over non-root nodes; each shard has one root.
		if w := o.Nodes - 1; w > 0 {
			fillSum += o.MeanFill * float64(w)
			fillN += w
		}
	}
	if fillN > 0 {
		agg.Occupancy.MeanFill = fillSum / float64(fillN)
	}
	return agg, nil
}

// ShardStat is the per-shard row of ShardStats: who owns what, how
// much was routed there, and how the shard is doing.
type ShardStat struct {
	Shard      int
	Low        base.Key // smallest key this shard can own
	Len        int
	Height     int
	QueueDepth int
	Searches   uint64 // ops routed by this Router
	Inserts    uint64
	Deletes    uint64
	Upserts    uint64
	Updates    uint64
	Cas        uint64
	Scans      uint64
	Batches    uint64
	BatchOps   uint64
	// Pool carries the shard's buffer pool counters when the shard is
	// disk-native or file-backed (Pooled false otherwise).
	Pool   storage.PoolStats
	Pooled bool
}

// ShardStats reports routing balance and size per shard, cheaply (no
// occupancy walk).
func (r *Router) ShardStats() []ShardStat {
	out := make([]ShardStat, len(r.engines))
	for i, e := range r.engines {
		m := &r.ms[i]
		out[i] = ShardStat{
			Shard:      i,
			Low:        r.lowKey(i),
			Len:        e.Tree.Len(),
			Height:     e.Tree.Height(),
			QueueDepth: e.QueueDepth(),
			Searches:   m.Searches.Load(),
			Inserts:    m.Inserts.Load(),
			Deletes:    m.Deletes.Load(),
			Upserts:    m.Upserts.Load(),
			Updates:    m.Updates.Load(),
			Cas:        m.Cas.Load(),
			Scans:      m.Scans.Load(),
			Batches:    m.Batches.Load(),
			BatchOps:   m.BatchOps.Load(),
		}
		out[i].Pool, out[i].Pooled = e.PoolStats()
	}
	return out
}

// mergeSnapshots sums the counters of two tree snapshots and merges
// their lock footprints.
func mergeSnapshots(a, b blink.StatsSnapshot) blink.StatsSnapshot {
	a.Searches += b.Searches
	a.Inserts += b.Inserts
	a.Deletes += b.Deletes
	a.Scans += b.Scans
	a.Upserts += b.Upserts
	a.Updates += b.Updates
	a.Cas += b.Cas
	a.Splits += b.Splits
	a.RootSplits += b.RootSplits
	a.LinkHops += b.LinkHops
	a.OutlinkHops += b.OutlinkHops
	a.Restarts += b.Restarts
	a.Backtracks += b.Backtracks
	a.LevelWaits += b.LevelWaits
	a.UnderfullEvents += b.UnderfullEvents
	a.InsertLocks = mergeFootprints(a.InsertLocks, b.InsertLocks)
	a.DeleteLocks = mergeFootprints(a.DeleteLocks, b.DeleteLocks)
	a.CondLocks = mergeFootprints(a.CondLocks, b.CondLocks)
	return a
}

// mergeFootprints combines two footprints: sums ops and acquisitions,
// keeps the larger high-water, and re-derives the means op-weighted.
func mergeFootprints(a, b locks.Footprint) locks.Footprint {
	out := locks.Footprint{
		Ops:      a.Ops + b.Ops,
		Acquires: a.Acquires + b.Acquires,
		MaxHeld:  a.MaxHeld,
	}
	if b.MaxHeld > out.MaxHeld {
		out.MaxHeld = b.MaxHeld
	}
	if out.Ops > 0 {
		out.MeanMaxHeld = (a.MeanMaxHeld*float64(a.Ops) + b.MeanMaxHeld*float64(b.Ops)) / float64(out.Ops)
		out.MeanLocks = float64(out.Acquires) / float64(out.Ops)
	}
	return out
}
