package shard

import (
	"blinktree/internal/base"
	"blinktree/internal/blink"
)

// Cursor iterates all shards in ascending key order by stitching
// per-shard blink cursors end to end: partitions are contiguous, so
// exhausting shard i and opening a cursor at shard i+1's low bound
// continues the global order with no merging. It inherits the
// per-shard cursor semantics (§2.1 footnote 3, §5.2): no locks held,
// keys strictly ascending, each key at most once, concurrent mutations
// may or may not be observed.
//
// Construction routes directly to the shard owning start, exactly as
// point operations do — a start inside the last shard opens one
// per-shard cursor and nothing else. When stitching onward, shards
// that are empty at hop time are skipped without opening a cursor
// (each open costs a full descent on first use); under concurrent
// insertion that can skip a pair landing in a just-probed shard, which
// the may-or-may-not-observe contract already allows.
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	r   *Router
	idx int
	cur *blink.Cursor
	err error
	// probes counts per-shard cursors opened, for tests and tuning.
	probes int
}

// NewCursor returns a cursor positioned before the smallest key ≥
// start, in whichever shard owns it.
func (r *Router) NewCursor(start base.Key) *Cursor {
	c := &Cursor{r: r}
	c.open(r.shardFor(start), start)
	return c
}

// open points the cursor into shard i starting at key k.
func (c *Cursor) open(i int, k base.Key) {
	c.idx = i
	c.cur = c.r.engines[i].Tree.NewCursor(k)
	c.probes++
}

// Next advances to the following pair, hopping to the next non-empty
// shard when the current one is exhausted. It returns false at the end
// of the last shard or on error (check Err).
func (c *Cursor) Next() (base.Key, base.Value, bool) {
	if c.err != nil {
		return 0, 0, false
	}
	for {
		k, v, ok := c.cur.Next()
		if ok {
			return k, v, true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return 0, 0, false
		}
		next := c.idx + 1
		for next < len(c.r.engines) && c.r.engines[next].Tree.Len() == 0 {
			next++
		}
		if next >= len(c.r.engines) {
			return 0, 0, false
		}
		c.open(next, c.r.lowKey(next))
	}
}

// Seek repositions the cursor before the smallest key ≥ k, switching
// shards as needed. Seeking backwards is allowed.
func (c *Cursor) Seek(k base.Key) {
	c.open(c.r.shardFor(k), k)
	c.err = nil
}

// Err returns the error that terminated iteration, if any.
func (c *Cursor) Err() error { return c.err }

// ReverseCursor iterates all shards in descending key order, stitching
// per-shard reverse cursors from the owning shard leftward. Same
// routing and empty-shard-skip behavior as Cursor, mirrored; same
// snapshot semantics, with keys strictly descending.
//
// A ReverseCursor is not safe for concurrent use by multiple
// goroutines.
type ReverseCursor struct {
	r      *Router
	idx    int
	cur    *blink.ReverseCursor
	err    error
	probes int
}

// NewReverseCursor returns a cursor positioned before the largest key
// ≤ start, in whichever shard owns it.
func (r *Router) NewReverseCursor(start base.Key) *ReverseCursor {
	c := &ReverseCursor{r: r}
	c.open(r.shardFor(start), start)
	return c
}

func (c *ReverseCursor) open(i int, k base.Key) {
	c.idx = i
	c.cur = c.r.engines[i].Tree.NewReverseCursor(k)
	c.probes++
}

// highKey returns the largest key shard i can own.
func (r *Router) highKey(i int) base.Key {
	if r.stride == 0 || i == len(r.engines)-1 {
		return base.Key(^uint64(0))
	}
	return r.lowKey(i+1) - 1
}

// Next advances to the preceding pair, hopping to the previous
// non-empty shard when the current one is exhausted. It returns false
// below the first shard or on error (check Err).
func (c *ReverseCursor) Next() (base.Key, base.Value, bool) {
	if c.err != nil {
		return 0, 0, false
	}
	for {
		k, v, ok := c.cur.Next()
		if ok {
			return k, v, true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return 0, 0, false
		}
		prev := c.idx - 1
		for prev >= 0 && c.r.engines[prev].Tree.Len() == 0 {
			prev--
		}
		if prev < 0 {
			return 0, 0, false
		}
		c.open(prev, c.r.highKey(prev))
	}
}

// Seek repositions the cursor before the largest key ≤ k, switching
// shards as needed. Seeking in either direction is allowed.
func (c *ReverseCursor) Seek(k base.Key) {
	c.open(c.r.shardFor(k), k)
	c.err = nil
}

// Err returns the error that terminated iteration, if any.
func (c *ReverseCursor) Err() error { return c.err }
