package shard

import (
	"blinktree/internal/base"
	"blinktree/internal/blink"
)

// Cursor iterates all shards in ascending key order by stitching
// per-shard blink cursors end to end: partitions are contiguous, so
// exhausting shard i and opening a cursor at shard i+1's low bound
// continues the global order with no merging. It inherits the
// per-shard cursor semantics (§2.1 footnote 3, §5.2): no locks held,
// keys strictly ascending, each key at most once, concurrent mutations
// may or may not be observed.
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	r   *Router
	idx int
	cur *blink.Cursor
	err error
}

// NewCursor returns a cursor positioned before the smallest key ≥
// start, in whichever shard owns it.
func (r *Router) NewCursor(start base.Key) *Cursor {
	i := r.shardFor(start)
	return &Cursor{r: r, idx: i, cur: r.engines[i].Tree.NewCursor(start)}
}

// Next advances to the following pair, hopping to the next shard when
// the current one is exhausted. It returns false at the end of the
// last shard or on error (check Err).
func (c *Cursor) Next() (base.Key, base.Value, bool) {
	if c.err != nil {
		return 0, 0, false
	}
	for {
		k, v, ok := c.cur.Next()
		if ok {
			return k, v, true
		}
		if err := c.cur.Err(); err != nil {
			c.err = err
			return 0, 0, false
		}
		if c.idx+1 >= len(c.r.engines) {
			return 0, 0, false
		}
		c.idx++
		c.cur = c.r.engines[c.idx].Tree.NewCursor(c.r.lowKey(c.idx))
	}
}

// Seek repositions the cursor before the smallest key ≥ k, switching
// shards as needed. Seeking backwards is allowed.
func (c *Cursor) Seek(k base.Key) {
	c.idx = c.r.shardFor(k)
	c.cur = c.r.engines[c.idx].Tree.NewCursor(k)
	c.err = nil
}

// Err returns the error that terminated iteration, if any.
func (c *Cursor) Err() error { return c.err }
