// Package shard scales the Sagiv B-link tree horizontally: it
// range-partitions the uint64 keyspace across N fully independent
// Engines, each a complete instance of the paper's machinery — a
// blink.Tree (§2–§4), its own lock table (§2.2), its own compression
// queue and workers (§5.4), and its own reclamation epoch (§5.3).
//
// The paper's concurrency guarantees are per tree: searches lock
// nothing, updates lock at most one node (Theorem 1), compressors lock
// at most three and never deadlock (Theorem 2). Sharding multiplies
// those guarantees rather than weakening them — a Router never holds
// locks of two shards for one point operation, because every key maps
// to exactly one shard. Contention (lock-table traffic, compression
// queues, root splits, reclamation epochs) is confined to a 1/N slice
// of the keyspace, which is what lets throughput scale with cores
// beyond what a single tree's upper levels allow.
//
// Layout of the package:
//
//   - engine.go: Engine, the bundle of one tree plus its compression
//     and reclamation lifecycle; OpenEngine subsumes what the
//     public blinktree.Open used to assemble inline.
//   - router.go: Router, the range partitioner. Point operations —
//     including the conditional writes Upsert, GetOrInsert, Update,
//     CompareAndSwap and CompareAndDelete, which stay atomic because
//     each key lives in exactly one shard — route by key; ordered
//     operations (Range, Min, Max) visit shards in partition order,
//     which is key order.
//   - cursor.go: Cursor and ReverseCursor stitch per-shard cursors
//     into one ascending (or descending) iterator with the same
//     at-most-once, no-locks semantics as a single tree's cursor
//     (§2.1 footnote 3, §5.2), skipping empty shards without paying
//     a descent to probe them.
//   - iter.go: All/Ascend/Descend adapt the stitched cursors to Go
//     1.23 range-over-func iteration.
//   - batch.go: ApplyBatch groups operations by destination shard and
//     dispatches each group on its own goroutine — amortizing routing
//     and letting disjoint shards proceed truly in parallel. Every
//     logical operation except Update (it carries a function) can be
//     batched. On a durable engine a shard group appends all its log
//     records first and waits for one group commit, so a batch pays
//     ~one fsync per touched shard, not one per operation.
//   - ops.go: the Engine operation surface the Router and facade call.
//     Volatile engines pass straight through to the tree; durable ones
//     (Options.Durable + Dir) wrap each mutation in apply-under-stripe-
//     lock + append-to-WAL + wait-for-group-commit, normalizing every
//     outcome to a put/del record of its resolved value. Recovery
//     (openDurable) and Checkpoint live in engine.go; the log itself
//     is internal/wal. Checkpoint's fuzzy scan runs concurrently with
//     searches and updates but pauses background compression
//     (Compressor.Pause/Resume) and serializes with Compact and
//     DrainCompression — a leftward merge could move an acknowledged
//     pair behind the scan cursor, and truncation would then drop its
//     only durable record.
//
// Durability is per shard: each engine logs to its own segment set
// under Dir/shard<i> and checkpoints independently, so group commit
// never coordinates across shards — the same independence the locks,
// queues and epochs already have.
//
// The partition is static: shard i owns keys [i·stride, (i+1)·stride)
// with stride = ceil(2^64 / N). Static ranges keep routing a single
// integer division and make cross-shard order trivial (all keys of
// shard i precede all keys of shard i+1); the cost is that skewed
// workloads can load shards unevenly — per-shard metrics (Router.
// ShardStats) expose that imbalance.
//
// Above the Router sit two callers: the public blinktree facade
// (in-process) and internal/server, the TCP front-end, which
// coalesces each burst of pipelined network requests into one
// ApplyBatch. The Router is the integration point deliberately: both
// callers get shard parallelism and per-shard group commit from the
// same code path. See ARCHITECTURE.md for the full layer map.
package shard
