package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"blinktree/internal/wal"
)

// layoutFile records a durability directory's topology so a mismatched
// reopen fails loudly instead of silently hiding acknowledged data: a
// single tree logs directly into Dir, while an n-shard index logs into
// Dir/shard<i> with a stride of 2^64/n — recover with the wrong shape
// and fsync-acknowledged keys stop routing to the engine that holds
// them.
const layoutFile = "LAYOUT"

// EnsureLayout validates (or, on first use, records) that dir holds a
// durable index of exactly `shards` partitions. shards == 1 is the
// single-tree front-end.
func EnsureLayout(dir string, shards int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("blinktree: durability dir: %w", err)
	}
	path := filepath.Join(dir, layoutFile)
	data, err := os.ReadFile(path)
	if err == nil {
		var got int
		if _, serr := fmt.Sscanf(strings.TrimSpace(string(data)), "blinktree durable layout: shards=%d", &got); serr != nil {
			return fmt.Errorf("blinktree: %s is not a layout file: %q", path, strings.TrimSpace(string(data)))
		}
		if got != shards {
			return fmt.Errorf("blinktree: durability dir %s was written with shards=%d; reopen with the same front-end and shard count (asked for shards=%d)",
				dir, got, shards)
		}
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	return wal.WriteFileDurable(path, []byte(fmt.Sprintf("blinktree durable layout: shards=%d\n", shards)))
}
