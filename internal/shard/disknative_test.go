package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"blinktree/internal/base"
)

// TestDiskNativePropertyTinyPool is the eviction-under-traversal
// regression test for the pin/epoch gate: randomized concurrent
// Search/Insert/Delete/Upsert against an engine whose buffer pool
// holds only 8 frames — every operation's traversal races eviction and
// frame reuse — checked against a differential in-memory oracle. Run
// with -race this is also the data-race probe for the pooled node
// path. The single-threaded counterpart lives in internal/blink.
func TestDiskNativePropertyTinyPool(t *testing.T) {
	const (
		workers = 4
		readers = 2
		keysPer = 300
		opsPer  = 3000
		frames  = 8
		pageSz  = 256
	)
	e, err := OpenEngine(Options{
		MinPairs:   2,
		PageSize:   pageSz,
		DiskNative: true,
		CacheBytes: frames * pageSz,
	})
	if err != nil {
		t.Fatal(err)
	}

	type state struct {
		val     base.Value
		present bool
	}
	// Each mutator owns a disjoint key slice and is the only writer of
	// its oracle map; the final verifier reads the maps after the join,
	// so no lock is needed around them.
	oracle := make([]map[uint64]state, workers)

	var mwg, wg sync.WaitGroup
	stop := make(chan struct{})
	// Mutators: disjoint key slices, so each worker's per-key history is
	// sequential and its oracle is exact, including read-your-writes.
	for w := 0; w < workers; w++ {
		oracle[w] = make(map[uint64]state)
		mwg.Add(1)
		go func(w int) {
			defer mwg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 1))
			mine := oracle[w]
			for i := 0; i < opsPer; i++ {
				raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
				k := base.Key(raw)
				cur := mine[raw]
				switch {
				case cur.present && rng.Intn(4) == 0:
					if err := e.Delete(k); err != nil {
						t.Errorf("worker %d: delete %d: %v", w, raw, err)
						return
					}
					mine[raw] = state{}
				case rng.Intn(3) == 0:
					v, err := e.Tree.Search(k)
					if cur.present && (err != nil || v != cur.val) {
						t.Errorf("worker %d: search %d: got (%d,%v), oracle %d", w, raw, v, err, cur.val)
						return
					}
					if !cur.present && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("worker %d: search %d: got (%d,%v), oracle absent", w, raw, v, err)
						return
					}
				default:
					next := base.Value(rng.Uint64() | 1)
					if _, _, err := e.Upsert(k, next); err != nil {
						t.Errorf("worker %d: upsert %d: %v", w, raw, err)
						return
					}
					mine[raw] = state{val: next, present: true}
				}
			}
		}(w)
	}
	// Readers: point lookups and ordered scans over everyone's keys.
	// Values race the mutators so only structure is checked — no error
	// but NotFound, and scans must stay strictly ascending.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*7907 + 5))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rng.Intn(8) == 0 {
					last := int64(-1)
					lo := base.Key(rng.Intn(workers * keysPer))
					err := e.Tree.Range(lo, lo+40, func(k base.Key, _ base.Value) bool {
						if int64(k) <= last {
							t.Errorf("scan not ascending: %d after %d", k, last)
							return false
						}
						last = int64(k)
						return true
					})
					if err != nil {
						t.Errorf("reader %d: range: %v", r, err)
						return
					}
					continue
				}
				k := base.Key(rng.Intn(workers * keysPer))
				if _, err := e.Tree.Search(k); err != nil && !errors.Is(err, base.ErrNotFound) {
					t.Errorf("reader %d: search %d: %v", r, k, err)
					return
				}
			}
		}(r)
	}
	// Reclamation keeps running so retired pages get freed (and their
	// frames dropped) while traversals are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := e.CollectGarbage(); err != nil {
					t.Errorf("collect: %v", err)
					return
				}
			}
		}
	}()

	// Mutators run a fixed op budget; when they finish, release the
	// readers and the collector.
	mwg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Settle, then verify the full oracle exactly and scan for phantoms.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for raw, want := range oracle[w] {
			v, err := e.Tree.Search(base.Key(raw))
			got := state{val: v, present: err == nil}
			if err != nil && !errors.Is(err, base.ErrNotFound) {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("key %d: recovered %+v, oracle %+v", raw, got, want)
			}
		}
	}
	total := 0
	err = e.Tree.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		raw := uint64(k)
		w := int(raw) / keysPer
		if w < 0 || w >= workers {
			t.Fatalf("phantom key %d", raw)
		}
		if want := oracle[w][raw]; !want.present || want.val != v {
			t.Fatalf("key %d: scan sees %d, oracle %+v", raw, v, want)
		}
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for w := 0; w < workers; w++ {
		for _, s := range oracle[w] {
			if s.present {
				live++
			}
		}
	}
	if total != live {
		t.Fatalf("scan found %d pairs, oracle has %d", total, live)
	}
	if err := e.Tree.Check(); err != nil {
		t.Fatal(err)
	}
	ps, ok := e.PoolStats()
	if !ok {
		t.Fatal("disk-native engine has no pool")
	}
	if ps.Evictions == 0 {
		t.Fatalf("pool never evicted — the tiny-pool premise failed: %+v", ps)
	}
	if ps.Resident > ps.Capacity {
		t.Fatalf("resident %d exceeds capacity %d", ps.Resident, ps.Capacity)
	}
	if ps.Pinned != 0 {
		t.Fatalf("pins outstanding at rest: %+v", ps)
	}
	t.Logf("pool: %+v", ps)
	// Close runs the pool's leaked-pin audit; it must come back clean.
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
