package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"blinktree/internal/base"
)

// mustRouter builds an in-memory router or fails the test.
func mustRouter(t *testing.T, n int, opts Options) *Router {
	t.Helper()
	r, err := NewRouter(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// spread returns m keys evenly spaced over the full uint64 range, so
// every shard of any small n receives some.
func spread(m int) []base.Key {
	ks := make([]base.Key, m)
	stride := ^uint64(0)/uint64(m) + 1
	for i := range ks {
		ks[i] = base.Key(uint64(i) * stride)
	}
	return ks
}

func TestPartitionCoversKeyspace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 64} {
		r := mustRouter(t, n, Options{MinPairs: 2})
		if got := r.shardFor(0); got != 0 {
			t.Fatalf("n=%d: key 0 -> shard %d", n, got)
		}
		if got := r.shardFor(base.Key(^uint64(0))); got != n-1 {
			t.Fatalf("n=%d: max key -> shard %d, want %d", n, got, n-1)
		}
		// Boundaries belong to the right shard; boundary-1 to the left.
		for i := 1; i < n; i++ {
			lo := r.lowKey(i)
			if got := r.shardFor(lo); got != i {
				t.Fatalf("n=%d: low key of shard %d -> %d", n, i, got)
			}
			if got := r.shardFor(lo - 1); got != i-1 {
				t.Fatalf("n=%d: key below shard %d -> %d", n, i, got)
			}
		}
	}
}

func TestPointOpsRouteAndReport(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(64)
	for _, k := range keys {
		if err := r.Insert(k, base.Value(k)+1); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(keys))
	}
	for _, k := range keys {
		v, err := r.Search(k)
		if err != nil || v != base.Value(k)+1 {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, err)
		}
	}
	if _, err := r.Search(3); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := r.Insert(keys[0], 0); !errors.Is(err, base.ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	// Every shard saw an even slice of the routed inserts (shard 0 also
	// took the duplicate attempt).
	for i, st := range r.ShardStats() {
		want := uint64(16)
		if i == 0 {
			want = 17
		}
		if st.Inserts != want {
			t.Fatalf("shard %d routed %d inserts, want %d", i, st.Inserts, want)
		}
		if st.Len != 16 {
			t.Fatalf("shard %d holds %d pairs", i, st.Len)
		}
	}
	for _, k := range keys {
		if err := r.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after deletes = %d", r.Len())
	}
}

func TestRangeSpansShardBoundaries(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(256)
	for _, k := range keys {
		if err := r.Insert(k, base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan: globally ascending, all keys, each exactly once.
	var got []base.Key
	err := r.Range(0, base.Key(^uint64(0)), func(k base.Key, v base.Value) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("full scan saw %d keys, want %d", len(got), len(keys))
	}
	for i, k := range got {
		if k != keys[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, k, keys[i])
		}
	}
	// A window crossing the 1/4 and 2/4 boundaries.
	lo, hi := keys[50], keys[180]
	got = got[:0]
	if err := r.Range(lo, hi, func(k base.Key, _ base.Value) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 131 || got[0] != lo || got[len(got)-1] != hi {
		t.Fatalf("window scan: %d keys, first %d, last %d", len(got), got[0], got[len(got)-1])
	}
	// Early stop inside a middle shard.
	count := 0
	if err := r.Range(0, base.Key(^uint64(0)), func(base.Key, base.Value) bool {
		count++
		return count < 100
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("early stop after %d keys", count)
	}
	// Inverted bounds scan nothing.
	if err := r.Range(hi, lo, func(base.Key, base.Value) bool {
		t.Fatal("inverted range produced a pair")
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyShards(t *testing.T) {
	r := mustRouter(t, 8, Options{MinPairs: 2})
	// Populate only shard 2 and shard 6.
	k2 := r.lowKey(2) + 5
	k6 := r.lowKey(6) + 5
	for i := 0; i < 10; i++ {
		if err := r.Insert(k2+base.Key(i), 1); err != nil {
			t.Fatal(err)
		}
		if err := r.Insert(k6+base.Key(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if k, _, err := r.Min(); err != nil || k != k2 {
		t.Fatalf("Min = (%d, %v)", k, err)
	}
	if k, _, err := r.Max(); err != nil || k != k6+9 {
		t.Fatalf("Max = (%d, %v)", k, err)
	}
	// Scan across six empty shards.
	var got []base.Key
	if err := r.Range(0, base.Key(^uint64(0)), func(k base.Key, _ base.Value) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("scan over empty shards saw %d keys", len(got))
	}
	// Cursor likewise.
	c := r.NewCursor(0)
	n := 0
	prev := base.Key(0)
	for {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		if n > 0 && k <= prev {
			t.Fatalf("cursor not ascending: %d after %d", k, prev)
		}
		prev = k
		n++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("cursor over empty shards saw %d keys", n)
	}
	// Entirely empty router.
	empty := mustRouter(t, 3, Options{MinPairs: 2})
	if _, _, err := empty.Min(); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("Min on empty = %v", err)
	}
	if _, _, err := empty.Max(); !errors.Is(err, base.ErrNotFound) {
		t.Fatalf("Max on empty = %v", err)
	}
	if _, _, ok := empty.NewCursor(0).Next(); ok {
		t.Fatal("cursor on empty router yielded a pair")
	}
}

func TestCursorStitchesAndSeeks(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(100)
	for _, k := range keys {
		if err := r.Insert(k, base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	c := r.NewCursor(0)
	for i, want := range keys {
		k, v, ok := c.Next()
		if !ok || k != want || v != base.Value(want) {
			t.Fatalf("cursor[%d] = (%d, %d, %v), want key %d", i, k, v, ok, want)
		}
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("cursor past the end yielded a pair")
	}
	// Seek backwards across shards, then forwards.
	c.Seek(keys[10])
	if k, _, ok := c.Next(); !ok || k != keys[10] {
		t.Fatalf("after Seek back: (%d, %v)", k, ok)
	}
	c.Seek(keys[90] + 1)
	if k, _, ok := c.Next(); !ok || k != keys[91] {
		t.Fatalf("after Seek forward: (%d, %v)", k, ok)
	}
}

func TestConcurrentInsertDuringScan(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2, CompressorWorkers: 1})
	base0 := spread(200)
	for _, k := range base0 {
		if err := r.Insert(k, base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	present := make(map[base.Key]bool, len(base0))
	for _, k := range base0 {
		present[k] = true
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Churn keys the scans don't assert on (odd offsets next to
			// the stable spread keys).
			k := base0[rng.Intn(len(base0))] + 1
			if i%2 == 0 {
				_ = r.engines[r.shardFor(k)].Tree.Insert(k, 0)
			} else {
				_ = r.engines[r.shardFor(k)].Tree.Delete(k)
			}
		}
	}()

	for iter := 0; iter < 50; iter++ {
		var prev base.Key
		n := 0
		seen := 0
		c := r.NewCursor(0)
		for {
			k, _, ok := c.Next()
			if !ok {
				break
			}
			if n > 0 && k <= prev {
				t.Fatalf("iter %d: cursor regressed %d after %d", iter, k, prev)
			}
			prev = k
			n++
			if present[k] {
				seen++
			}
		}
		if err := c.Err(); err != nil {
			t.Fatalf("iter %d: cursor error %v", iter, err)
		}
		// Every stable key must be observed: they are never mutated.
		if seen != len(base0) {
			t.Fatalf("iter %d: saw %d of %d stable keys", iter, seen, len(base0))
		}
	}
	close(stop)
	wg.Wait()
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalOpsRouteAndReport(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(16)
	for _, k := range keys {
		if old, existed, err := r.Upsert(k, base.Value(k)); err != nil || existed || old != 0 {
			t.Fatalf("upsert(%d) = (%d, %v, %v)", k, old, existed, err)
		}
	}
	for _, k := range keys {
		if old, existed, err := r.Upsert(k, base.Value(k)+1); err != nil || !existed || old != base.Value(k) {
			t.Fatalf("re-upsert(%d) = (%d, %v, %v)", k, old, existed, err)
		}
	}
	if v, loaded, err := r.GetOrInsert(keys[3], 999); err != nil || !loaded || v != base.Value(keys[3])+1 {
		t.Fatalf("getorinsert = (%d, %v, %v)", v, loaded, err)
	}
	if v, err := r.Update(keys[5], func(v base.Value) base.Value { return v * 2 }); err != nil || v != (base.Value(keys[5])+1)*2 {
		t.Fatalf("update = (%d, %v)", v, err)
	}
	if ok, err := r.CompareAndSwap(keys[7], base.Value(keys[7])+1, 42); err != nil || !ok {
		t.Fatalf("cas = (%v, %v)", ok, err)
	}
	if ok, err := r.CompareAndDelete(keys[9], base.Value(keys[9])+1); err != nil || !ok {
		t.Fatalf("cad = (%v, %v)", ok, err)
	}
	if r.Len() != len(keys)-1 {
		t.Fatalf("Len = %d", r.Len())
	}
	var upserts, updates, cas uint64
	for _, st := range r.ShardStats() {
		upserts += st.Upserts
		updates += st.Updates
		cas += st.Cas
	}
	if upserts != uint64(2*len(keys)+1) || updates != 1 || cas != 2 {
		t.Fatalf("routed counters: upserts=%d updates=%d cas=%d", upserts, updates, cas)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.Upserts != uint64(2*len(keys)+1) || st.Tree.Updates != 1 || st.Tree.Cas != 2 {
		t.Fatalf("aggregate tree counters: %+v", st.Tree)
	}
	if st.Tree.CondLocks.MaxHeld > 1 {
		t.Fatalf("cond footprint %d", st.Tree.CondLocks.MaxHeld)
	}
}

func TestApplyBatchConditionalKinds(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(8)
	if err := r.Insert(keys[0], 10); err != nil {
		t.Fatal(err)
	}
	res := r.ApplyBatch([]Op{
		{Kind: OpUpsert, Key: keys[0], Value: 11},      // over existing
		{Kind: OpUpsert, Key: keys[1], Value: 20},      // fresh
		{Kind: OpGetOrInsert, Key: keys[1], Value: 99}, // loads 20
		{Kind: OpGetOrInsert, Key: keys[2], Value: 30}, // stores 30
		{Kind: OpCompareAndSwap, Key: keys[1], Old: 20, Value: 21},
		{Kind: OpCompareAndSwap, Key: keys[1], Old: 20, Value: 22}, // stale old
		{Kind: OpCompareAndDelete, Key: keys[2], Old: 30},
		{Kind: OpCompareAndSwap, Key: keys[3], Old: 0, Value: 1}, // absent
	})
	if res[0].Err != nil || !res[0].OK || res[0].Value != 10 {
		t.Fatalf("batch upsert over = %+v", res[0])
	}
	if res[1].Err != nil || res[1].OK {
		t.Fatalf("batch upsert fresh = %+v", res[1])
	}
	if res[2].Err != nil || !res[2].OK || res[2].Value != 20 {
		t.Fatalf("batch getorinsert load = %+v", res[2])
	}
	if res[3].Err != nil || res[3].OK || res[3].Value != 30 {
		t.Fatalf("batch getorinsert store = %+v", res[3])
	}
	if res[4].Err != nil || !res[4].OK {
		t.Fatalf("batch cas = %+v", res[4])
	}
	if res[5].Err != nil || res[5].OK {
		t.Fatalf("batch stale cas = %+v", res[5])
	}
	if res[6].Err != nil || !res[6].OK {
		t.Fatalf("batch cad = %+v", res[6])
	}
	if !errors.Is(res[7].Err, base.ErrNotFound) || res[7].OK {
		t.Fatalf("batch cas absent = %+v", res[7])
	}
	if v, err := r.Search(keys[1]); err != nil || v != 21 {
		t.Fatalf("after batch, keys[1] = (%d, %v)", v, err)
	}
}

func TestReverseCursorStitchesShards(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(100)
	for _, k := range keys {
		if err := r.Insert(k, base.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	c := r.NewReverseCursor(base.Key(^uint64(0)))
	for i := len(keys) - 1; i >= 0; i-- {
		k, v, ok := c.Next()
		if !ok || k != keys[i] || v != base.Value(keys[i]) {
			t.Fatalf("reverse[%d] = (%d, %d, %v), want %d", i, k, v, ok, keys[i])
		}
	}
	if _, _, ok := c.Next(); ok {
		t.Fatal("reverse cursor ran past the start")
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// Seek across shards, both directions.
	c.Seek(keys[50])
	if k, _, ok := c.Next(); !ok || k != keys[50] {
		t.Fatalf("after Seek: %d", k)
	}
	c.Seek(keys[10] + 1)
	if k, _, ok := c.Next(); !ok || k != keys[10] {
		t.Fatalf("after Seek down: %d", k)
	}
	// Ascend/Descend round trip.
	var asc, desc []base.Key
	for k := range r.All() {
		asc = append(asc, k)
	}
	for k := range r.Descend(base.Key(^uint64(0)), 0) {
		desc = append(desc, k)
	}
	if len(asc) != len(keys) || len(desc) != len(keys) {
		t.Fatalf("All saw %d, Descend saw %d, want %d", len(asc), len(desc), len(keys))
	}
	for i := range asc {
		if asc[i] != keys[i] || desc[i] != keys[len(keys)-1-i] {
			t.Fatalf("iteration order broken at %d", i)
		}
	}
}

// TestCursorLastShardSkipsStitchProbes is the regression test for the
// stitch-probe fix: a cursor whose start lies inside the last shard
// must route directly to it (one per-shard cursor, like a point op)
// and never probe the others; and stitching over empty shards must
// skip them without opening per-shard cursors.
func TestCursorLastShardSkipsStitchProbes(t *testing.T) {
	r := mustRouter(t, 8, Options{MinPairs: 2})
	last := len(r.engines) - 1
	start := r.lowKey(last) + 5
	for i := 0; i < 10; i++ {
		if err := r.Insert(start+base.Key(i), base.Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Start inside the last shard: exactly one per-shard cursor.
	c := r.NewCursor(start)
	n := 0
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("cursor from last shard saw %d keys", n)
	}
	if c.probes != 1 {
		t.Fatalf("cursor from last shard opened %d per-shard cursors, want 1", c.probes)
	}
	// Start at 0 with seven empty shards before the data: the stitch
	// must skip them all and open only the populated shard's cursor.
	c = r.NewCursor(0)
	n = 0
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("cursor over empty shards saw %d keys", n)
	}
	if c.probes != 2 { // shard 0 (owner of start) + the last shard
		t.Fatalf("cursor over empty shards opened %d per-shard cursors, want 2", c.probes)
	}
	// Mirrored for the reverse cursor: start in shard 0.
	if err := r.engines[0].Tree.Insert(3, 33); err != nil {
		t.Fatal(err)
	}
	rc := r.NewReverseCursor(r.highKey(0))
	if k, v, ok := rc.Next(); !ok || k != 3 || v != 33 {
		t.Fatalf("reverse from first shard = (%d, %d, %v)", k, v, ok)
	}
	if _, _, ok := rc.Next(); ok {
		t.Fatal("reverse cursor left shard 0 downward")
	}
	if rc.probes != 1 {
		t.Fatalf("reverse cursor opened %d per-shard cursors, want 1", rc.probes)
	}
	// Reverse from the top skips the six empty shards between data.
	rc = r.NewReverseCursor(base.Key(^uint64(0)))
	n = 0
	for {
		if _, _, ok := rc.Next(); !ok {
			break
		}
		n++
	}
	if n != 11 {
		t.Fatalf("reverse stitch saw %d keys", n)
	}
	if rc.probes != 2 { // last shard + shard 0
		t.Fatalf("reverse stitch opened %d per-shard cursors, want 2", rc.probes)
	}
}

func TestBulkLoadAcrossShards(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 4})
	keys := spread(10000)
	i := 0
	err := r.BulkLoad(func() (base.Key, base.Value, bool) {
		if i >= len(keys) {
			return 0, 0, false
		}
		k := keys[i]
		i++
		return k, base.Value(k), true
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(keys))
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	for _, st := range r.ShardStats() {
		if st.Len != len(keys)/4 {
			t.Fatalf("shard %d loaded %d pairs, want %d", st.Shard, st.Len, len(keys)/4)
		}
	}
	for _, k := range []base.Key{keys[0], keys[2500], keys[5000], keys[9999]} {
		if v, err := r.Search(k); err != nil || v != base.Value(k) {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, err)
		}
	}
	// Non-ascending streams are rejected, including across a boundary.
	r2 := mustRouter(t, 2, Options{MinPairs: 4})
	bad := []base.Key{1, r2.lowKey(1) + 1, 2}
	j := 0
	err = r2.BulkLoad(func() (base.Key, base.Value, bool) {
		if j >= len(bad) {
			return 0, 0, false
		}
		k := bad[j]
		j++
		return k, 0, true
	}, 0)
	if err == nil {
		t.Fatal("descending cross-boundary stream accepted")
	}
	// A stream confined to early shards leaves the rest empty.
	r3 := mustRouter(t, 4, Options{MinPairs: 4})
	j = 0
	if err := r3.BulkLoad(func() (base.Key, base.Value, bool) {
		if j >= 100 {
			return 0, 0, false
		}
		k := base.Key(j)
		j++
		return k, 0, true
	}, 0); err != nil {
		t.Fatal(err)
	}
	if r3.Len() != 100 {
		t.Fatalf("partial bulk load Len = %d", r3.Len())
	}
	if st := r3.ShardStats(); st[0].Len != 100 || st[3].Len != 0 {
		t.Fatalf("partial bulk load landed wrong: %+v", st)
	}
}

func TestApplyBatch(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 2})
	keys := spread(40)
	ops := make([]Op, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, Op{Kind: OpInsert, Key: k, Value: base.Value(k) * 3})
	}
	for i, res := range r.ApplyBatch(ops) {
		if res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
	// Mixed batch: search hits, search misses, deletes, duplicate insert.
	mixed := []Op{
		{Kind: OpSearch, Key: keys[0]},
		{Kind: OpSearch, Key: keys[0] + 1},
		{Kind: OpDelete, Key: keys[39]},
		{Kind: OpInsert, Key: keys[1], Value: 9},
		{Kind: OpSearch, Key: keys[20]},
	}
	res := r.ApplyBatch(mixed)
	if res[0].Err != nil || res[0].Value != base.Value(keys[0])*3 {
		t.Fatalf("batch search = %+v", res[0])
	}
	if !errors.Is(res[1].Err, base.ErrNotFound) {
		t.Fatalf("batch miss = %v", res[1].Err)
	}
	if res[2].Err != nil {
		t.Fatalf("batch delete = %v", res[2].Err)
	}
	if !errors.Is(res[3].Err, base.ErrDuplicate) {
		t.Fatalf("batch duplicate = %v", res[3].Err)
	}
	if res[4].Err != nil || res[4].Value != base.Value(keys[20])*3 {
		t.Fatalf("batch search = %+v", res[4])
	}
	if r.Len() != 39 {
		t.Fatalf("Len after batch = %d", r.Len())
	}
	// Per-shard batch metrics recorded.
	var batches, bops uint64
	for _, st := range r.ShardStats() {
		batches += st.Batches
		bops += st.BatchOps
	}
	if batches < 4 || bops != uint64(len(ops)+len(mixed)) {
		t.Fatalf("batch metrics: %d batches, %d ops", batches, bops)
	}
	if len(r.ApplyBatch(nil)) != 0 {
		t.Fatal("empty batch produced results")
	}
}

func TestConcurrentMixedAcrossShards(t *testing.T) {
	r := mustRouter(t, 4, Options{MinPairs: 3, CompressorWorkers: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			stride := ^uint64(0)/4096 + 1
			for i := 0; i < 3000; i++ {
				k := base.Key(uint64(rng.Intn(4096)) * stride) // spans all shards
				switch rng.Intn(4) {
				case 0:
					if err := r.Insert(k, base.Value(k)); err != nil && !errors.Is(err, base.ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if err := r.Delete(k); err != nil && !errors.Is(err, base.ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				case 2:
					if v, err := r.Search(k); err == nil && v != base.Value(k) {
						t.Errorf("foreign value %d under %d", v, k)
						return
					}
				default:
					if err := r.Range(k, k+base.Key(stride*8), func(base.Key, base.Value) bool { return true }); err != nil {
						t.Errorf("range: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 || st.Tree.DeleteLocks.MaxHeld > 1 {
		t.Fatalf("update footprint exceeded 1: %+v", st.Tree)
	}
	if st.CompressorMaxLocks > 3 {
		t.Fatalf("compressor footprint %d", st.CompressorMaxLocks)
	}
	if st.Occupancy.Underfull != 0 {
		t.Fatalf("underfull after Compact: %+v", st.Occupancy)
	}
}

func TestStatsAggregation(t *testing.T) {
	r := mustRouter(t, 3, Options{MinPairs: 2})
	keys := spread(90)
	for _, k := range keys {
		if err := r.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, err := r.Search(k); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.Inserts != 90 || st.Tree.Searches != 90 {
		t.Fatalf("aggregate counters: %d inserts, %d searches", st.Tree.Inserts, st.Tree.Searches)
	}
	if st.Tree.InsertLocks.Ops != 90 {
		t.Fatalf("aggregate footprint ops = %d", st.Tree.InsertLocks.Ops)
	}
	if st.Occupancy.Pairs != 90 {
		t.Fatalf("aggregate occupancy pairs = %d", st.Occupancy.Pairs)
	}
	if st.Occupancy.Height < 1 {
		t.Fatalf("aggregate height = %d", st.Occupancy.Height)
	}
}

func TestRouterRejectsBadShardCount(t *testing.T) {
	if _, err := NewRouter(0, Options{}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := NewRouter(-3, Options{}); err == nil {
		t.Fatal("negative shards accepted")
	}
}
