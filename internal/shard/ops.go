package shard

import (
	"blinktree/internal/base"
	"blinktree/internal/wal"
)

// Engine operation surface. The Router and the public facade route
// every logical operation through these methods rather than the inner
// tree, so one code path covers both regimes:
//
//   - Volatile (no WAL): a method is exactly its tree call.
//   - Durable: the tree apply and the log append happen under a
//     per-key stripe lock — so racing mutations of the same key
//     append in apply order and replay converges to the live state —
//     and the operation returns only after its group commit fsyncs.
//     Failed operations (duplicate insert, missing delete, CAS
//     mismatch) log nothing.
//
// Every logical mutation is normalized to its resolved outcome before
// logging: Update logs the computed value, not the closure; CAS logs
// the new value only when it swapped. The ...T variants return the
// commit Ticket instead of waiting, which lets ApplyBatch append a
// whole shard group and block once for its last ticket (group commits
// complete in order, so the last ticket covers the rest).

// Insert stores v under k; base.ErrDuplicate if k is present.
func (e *Engine) Insert(k base.Key, v base.Value) error {
	t, err := e.insertT(k, v)
	if err != nil {
		return err
	}
	return t.Wait()
}

func (e *Engine) insertT(k base.Key, v base.Value) (wal.Ticket, error) {
	if e.wal == nil {
		err := e.Tree.Insert(k, v)
		if err == nil {
			e.markVerify(k)
		}
		return wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	err := e.Tree.Insert(k, v)
	var t wal.Ticket
	if err == nil {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindPut, Key: k, Value: v})
	}
	s.Unlock()
	return t, err
}

// Delete removes k, or returns base.ErrNotFound.
func (e *Engine) Delete(k base.Key) error {
	t, err := e.deleteT(k)
	if err != nil {
		return err
	}
	return t.Wait()
}

func (e *Engine) deleteT(k base.Key) (wal.Ticket, error) {
	if e.wal == nil {
		err := e.Tree.Delete(k)
		if err == nil {
			e.markVerify(k)
		}
		return wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	err := e.Tree.Delete(k)
	var t wal.Ticket
	if err == nil {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindDel, Key: k})
	}
	s.Unlock()
	return t, err
}

// Upsert stores v under k unconditionally, returning the previous
// value and whether one existed.
func (e *Engine) Upsert(k base.Key, v base.Value) (base.Value, bool, error) {
	old, existed, t, err := e.upsertT(k, v)
	if err == nil {
		err = t.Wait()
	}
	return old, existed, err
}

func (e *Engine) upsertT(k base.Key, v base.Value) (base.Value, bool, wal.Ticket, error) {
	if e.wal == nil {
		old, existed, err := e.Tree.Upsert(k, v)
		if err == nil {
			e.markVerify(k)
		}
		return old, existed, wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	old, existed, err := e.Tree.Upsert(k, v)
	var t wal.Ticket
	if err == nil {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindPut, Key: k, Value: v})
	}
	s.Unlock()
	return old, existed, t, err
}

// GetOrInsert returns the value under k, inserting v first when k is
// absent; loaded reports whether it was already present. Only the
// inserting outcome mutates, so only it logs.
func (e *Engine) GetOrInsert(k base.Key, v base.Value) (base.Value, bool, error) {
	actual, loaded, t, err := e.getOrInsertT(k, v)
	if err == nil {
		err = t.Wait()
	}
	return actual, loaded, err
}

func (e *Engine) getOrInsertT(k base.Key, v base.Value) (base.Value, bool, wal.Ticket, error) {
	if e.wal == nil {
		actual, loaded, err := e.Tree.GetOrInsert(k, v)
		if err == nil && !loaded {
			e.markVerify(k)
		}
		return actual, loaded, wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	actual, loaded, err := e.Tree.GetOrInsert(k, v)
	var t wal.Ticket
	if err == nil && !loaded {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindPut, Key: k, Value: actual})
	}
	s.Unlock()
	return actual, loaded, t, err
}

// Update atomically replaces the value under k with fn(current) and
// returns the new value, or base.ErrNotFound. The log records the
// resolved value, never the closure.
func (e *Engine) Update(k base.Key, fn func(base.Value) base.Value) (base.Value, error) {
	if e.wal == nil {
		v, err := e.Tree.Update(k, fn)
		if err == nil {
			e.markVerify(k)
		}
		return v, err
	}
	s := e.stripe(k)
	s.Lock()
	v, err := e.Tree.Update(k, fn)
	var t wal.Ticket
	if err == nil {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindPut, Key: k, Value: v})
	}
	s.Unlock()
	if err != nil {
		return v, err
	}
	return v, t.Wait()
}

// CompareAndSwap replaces k's value with new only when it equals old.
// Only a successful swap mutates, so only it logs.
func (e *Engine) CompareAndSwap(k base.Key, old, new base.Value) (bool, error) {
	swapped, t, err := e.compareAndSwapT(k, old, new)
	if err == nil {
		err = t.Wait()
	}
	return swapped, err
}

func (e *Engine) compareAndSwapT(k base.Key, old, new base.Value) (bool, wal.Ticket, error) {
	if e.wal == nil {
		swapped, err := e.Tree.CompareAndSwap(k, old, new)
		if err == nil && swapped {
			e.markVerify(k)
		}
		return swapped, wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	swapped, err := e.Tree.CompareAndSwap(k, old, new)
	var t wal.Ticket
	if err == nil && swapped {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindPut, Key: k, Value: new})
	}
	s.Unlock()
	return swapped, t, err
}

// CompareAndDelete removes k only when its value equals old.
func (e *Engine) CompareAndDelete(k base.Key, old base.Value) (bool, error) {
	deleted, t, err := e.compareAndDeleteT(k, old)
	if err == nil {
		err = t.Wait()
	}
	return deleted, err
}

func (e *Engine) compareAndDeleteT(k base.Key, old base.Value) (bool, wal.Ticket, error) {
	if e.wal == nil {
		deleted, err := e.Tree.CompareAndDelete(k, old)
		if err == nil && deleted {
			e.markVerify(k)
		}
		return deleted, wal.Ticket{}, err
	}
	s := e.stripe(k)
	s.Lock()
	deleted, err := e.Tree.CompareAndDelete(k, old)
	var t wal.Ticket
	if err == nil && deleted {
		e.markVerify(k)
		t = e.wal.Append(wal.Record{Kind: wal.KindDel, Key: k})
	}
	s.Unlock()
	return deleted, t, err
}

// BulkLoad builds the empty engine bottom-up from a strictly ascending
// pair stream. On a durable engine it is followed by an immediate
// checkpoint, which is how the loaded state becomes durable — bulk
// loading bypasses the per-operation log by design.
func (e *Engine) BulkLoad(pairs func() (base.Key, base.Value, bool), fill float64) error {
	if err := e.Tree.BulkLoad(pairs, fill); err != nil {
		return err
	}
	// Bulk loading bypasses the per-key mutation paths, so the overlay
	// cannot track which buckets changed — all of them did.
	if e.overlay != nil {
		e.overlay.MarkAll()
	}
	return e.Checkpoint()
}
