package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/repl"
	"blinktree/internal/shard"
	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

const (
	// migBatch bounds records per FrameRecords frame (the repl shape).
	migBatch = 512
	// migWindow bounds shipped-minus-acked records before the source
	// pauses — a slow target bounds the source's buffering, never its
	// write path.
	migWindow = 1 << 15
	// migDialTimeout bounds the ingest dial + handshake; migIOTimeout
	// bounds each frame write/read and the ack-progress wait.
	migDialTimeout = 5 * time.Second
	migIOTimeout   = 30 * time.Second
	// migBootstraps bounds snapshot restarts after a checkpoint
	// truncates the chase segment mid-stream.
	migBootstraps = 5
)

// Migrate live-migrates range sh's data and ownership from this node
// to the cluster member at target, blocking until the handoff commits
// (or fails). It is idempotent: re-triggering after any crash or error
// resolves the interrupted attempt — a target that already owns the
// range reports so in the handshake and the source adopts the result;
// otherwise the stream re-runs from a fresh snapshot.
//
// The sequence: snapshot-stream the shard via Engine.StreamState
// (concurrent with writers), chase the WAL tail the snapshot rotation
// left behind, fence the range (new writes refuse with a redirect,
// in-flight batches drain behind the fence barrier), ship the final
// tail, send FrameHandoff, and commit ownership once the target acks.
func (n *Node) Migrate(r *shard.Router, sh int, target string) error {
	if err := n.validShard(sh); err != nil {
		return err
	}
	if target == "" || target == n.self {
		return fmt.Errorf("cluster: migration target %q must be another member", target)
	}
	if !r.Durable() {
		return errors.New("cluster: migration requires a durable server")
	}
	n.migMu.Lock()
	defer n.migMu.Unlock()

	owner, pending, _ := n.OwnedInfo(sh)
	lo, hi := r.ShardSpan(sh)
	switch {
	case owner == target:
		// Already handed off. Reclaim any local copy a crash left
		// behind mid-wipe, then report success (idempotence).
		return wipeRange(r, lo, hi)
	case owner != n.self:
		return fmt.Errorf("%w: range %d is owned by %s", errNotOwner, sh, owner)
	case pending != "" && pending != target:
		return fmt.Errorf("cluster: range %d is fenced toward %s, not %s", sh, pending, target)
	}
	wasFenced := pending == target

	n.migShard.Store(int64(sh))
	n.phase.Store(PhaseSnapshot)
	defer func() {
		n.migShard.Store(-1)
		n.phase.Store(PhaseIdle)
	}()

	sess, already, tgtVersion, err := dialIngest(target, sh)
	if err != nil {
		return fmt.Errorf("cluster: ingest handshake with %s: %w", target, err)
	}
	if already {
		// The target persisted its claim before acking a prior
		// handoff; our commit (and local reclaim) is the missing piece.
		if err := n.adopt(sh, target, tgtVersion); err != nil {
			return err
		}
		return wipeRange(r, lo, hi)
	}
	defer sess.close()

	// The handshake confirmed the target does not own the range (and
	// its durable claim would have survived any crash), so until our
	// FrameHandoff is on the wire the target cannot own it — failures
	// before that point may safely un-fence and resume serving.
	handoffSent := false
	fenced := wasFenced
	fail := func(err error) error {
		if fenced && !handoffSent {
			n.unfence(sh)
		}
		return err
	}

	eng := r.Engine(sh)
	var (
		enc  wire.Buf
		recs = make([]wal.Record, 0, migBatch)
		tr   *wal.TailReader
	)
	defer func() {
		if tr != nil {
			tr.Close()
		}
	}()
	ship := func() error {
		repl.AppendRecords(&enc, 0, 0, recs)
		count := uint64(len(recs))
		recs = recs[:0]
		if err := sess.writeFrame(uint64(sh), wire.FrameRecords, enc.B); err != nil {
			return err
		}
		n.shipped.Add(count)
		sess.shipped += count
		return sess.waitWindow()
	}
	// bootstrap (re)starts the stream: wipe the target's copy, ship a
	// fuzzy snapshot, and leave tr tailing the rotation's segment.
	bootstrap := func() error {
		if tr != nil {
			tr.Close()
			tr = nil
		}
		recs = recs[:0]
		if err := sess.writeFrame(uint64(sh), wire.FrameReset, nil); err != nil {
			return err
		}
		seg, err := eng.StreamState(func(k base.Key, v base.Value) error {
			recs = append(recs, wal.Record{Kind: wal.KindPut, Key: k, Value: v})
			if len(recs) == migBatch {
				return ship()
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("snapshot stream: %w", err)
		}
		if len(recs) > 0 {
			if err := ship(); err != nil {
				return err
			}
		}
		tr = wal.NewTailReader(eng.WALDir(), seg, wal.SegmentHeaderLen)
		return nil
	}
	// drain ships committed tail records until caught up; a checkpoint
	// may truncate the chase segment underneath (ErrTruncated), which
	// restarts the stream from a fresh snapshot.
	bootstraps := 0
	drain := func() error {
		for {
			rs, err := tr.Next(migBatch, recs[:0])
			if errors.Is(err, wal.ErrTruncated) {
				if bootstraps++; bootstraps > migBootstraps {
					return fmt.Errorf("chase segment truncated %d times", bootstraps)
				}
				if err := bootstrap(); err != nil {
					return err
				}
				continue
			}
			if err != nil {
				return err
			}
			recs = rs
			if len(recs) == 0 {
				return nil
			}
			if err := ship(); err != nil {
				return err
			}
		}
	}

	if err := bootstrap(); err != nil {
		return fail(fmt.Errorf("cluster: migrate range %d: %w", sh, err))
	}
	n.phase.Store(PhaseChase)
	if err := drain(); err != nil {
		return fail(fmt.Errorf("cluster: migrate range %d: chase: %w", sh, err))
	}

	// Fence: refuse new writes for the range, wait out in-flight
	// batches, then ship whatever raced in — after the barrier nothing
	// can append to this shard's WAL, so one more drain is final.
	n.phase.Store(PhaseFence)
	fenceStart := time.Now()
	if !fenced {
		if err := n.setFenced(sh, target); err != nil {
			return fmt.Errorf("cluster: persist fence for range %d: %w", sh, err)
		}
		fenced = true
	}
	n.fenceMu.Lock()
	n.fenceMu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	if err := drain(); err != nil {
		return fail(fmt.Errorf("cluster: migrate range %d: final tail: %w", sh, err))
	}

	newVersion := max(n.Version(), tgtVersion) + 1
	enc.Reset()
	enc.U64(newVersion)
	handoffSent = true
	if err := sess.writeFrame(uint64(sh), wire.FrameHandoff, enc.B); err != nil {
		return fmt.Errorf("cluster: migrate range %d: handoff: %w", sh, err)
	}
	if err := sess.awaitDone(); err != nil {
		// The target may or may not have committed; stay fenced — the
		// next Migrate resolves it via the handshake.
		return fmt.Errorf("cluster: migrate range %d: awaiting handoff ack: %w", sh, err)
	}
	fence := time.Since(fenceStart)
	n.lastFenceNS.Store(int64(fence))
	n.totalFenceNS.Add(int64(fence))
	if err := n.commitOut(sh, target, newVersion); err != nil {
		return fmt.Errorf("cluster: persist handoff of range %d: %w", sh, err)
	}
	n.migrations.Add(1)
	n.logf("cluster: migrated range %d to %s (v%d, %d records shipped, fence %v)",
		sh, target, newVersion, sess.shipped, fence.Round(time.Microsecond))
	// The target serves the range now; the local copy is garbage. The
	// wipe is logged like any delete, so recovery cannot resurrect it.
	if err := wipeRange(r, lo, hi); err != nil {
		return fmt.Errorf("cluster: reclaim migrated range %d: %w", sh, err)
	}
	return nil
}

// ResolveFences completes migrations this node crashed in the middle
// of: every range persisted as fenced outbound is re-migrated toward
// its recorded target — the ingest handshake adopts a handoff that had
// already committed on the target, and a fresh stream finishes one
// that had not. Call once at startup (after ReclaimRemote, before
// serving); without it a crash window exists where the target owns the
// range but the source stays fenced forever, holding a stale copy no
// admin re-trigger can reach (the cluster map already names the
// target, so nothing routes a Migrate back here). An unreachable
// target leaves the range fenced — writes keep redirecting, and a
// later re-trigger can still resolve it.
func (n *Node) ResolveFences(r *shard.Router) {
	for sh := 0; sh < n.shards; sh++ {
		owner, pending, _ := n.OwnedInfo(sh)
		if owner != n.self || pending == "" {
			continue
		}
		if err := n.Migrate(r, sh, pending); err != nil {
			n.logf("cluster: resolving fenced range %d toward %s: %v", sh, pending, err)
		}
	}
}

// ReclaimRemote deletes local copies of ranges this node does not own:
// leftovers of an interrupted migration — a handoff that committed
// right before a crash cut the source's reclaim short, or a partial
// ingest whose stream died. Call it once at startup, before serving;
// it is safe because every ingest stream begins with its own wipe, so
// a non-owned copy is pure garbage by definition.
func (n *Node) ReclaimRemote(r *shard.Router) error {
	for sh := 0; sh < n.shards; sh++ {
		if n.state[sh].Load() != rangeRemote {
			continue
		}
		lo, hi := r.ShardSpan(sh)
		if err := wipeRange(r, lo, hi); err != nil {
			return fmt.Errorf("cluster: reclaim range %d: %w", sh, err)
		}
	}
	return nil
}

// migSession is the source's connection to the target's ingest side.
type migSession struct {
	nc      net.Conn
	bw      *bufio.Writer
	shipped uint64

	acked   atomic.Uint64
	done    atomic.Bool
	kick    chan struct{}
	dead    chan struct{}
	readErr error // set before dead closes
}

// dialIngest opens a migration stream to the target: dial, hello,
// OpMigrate ingest handshake. already=true reports the target already
// owns the range (no stream; the connection is closed).
func dialIngest(target string, sh int) (sess *migSession, already bool, version uint64, err error) {
	nc, err := net.DialTimeout("tcp", target, migDialTimeout)
	if err != nil {
		return nil, false, 0, err
	}
	defer func() {
		if sess == nil {
			nc.Close()
		}
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	nc.SetDeadline(time.Now().Add(migDialTimeout))
	if err := wire.WriteHello(nc); err != nil {
		return nil, false, 0, err
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	if _, err := wire.ReadHello(br); err != nil {
		return nil, false, 0, fmt.Errorf("hello: %w", err)
	}
	var b wire.Buf
	b.U8(1) // mode 1: ingest
	b.U32(uint32(sh))
	b.U16(0)
	if err := wire.WriteFrame(nc, 1, wire.OpMigrate, b.B); err != nil {
		return nil, false, 0, err
	}
	_, status, payload, err := wire.ReadFrame(br, nil)
	if err != nil {
		return nil, false, 0, err
	}
	if status != wire.StatusOK {
		return nil, false, 0, wire.StatusError(status, string(payload))
	}
	d := wire.Dec{B: payload}
	alreadyB := d.U8()
	version = d.U64()
	if !d.Done() {
		return nil, false, 0, errors.New("malformed ingest handshake response")
	}
	if alreadyB != 0 {
		nc.Close()
		return nil, true, version, nil
	}
	nc.SetDeadline(time.Time{})
	s := &migSession{
		nc:   nc,
		bw:   bufio.NewWriterSize(nc, 64<<10),
		kick: make(chan struct{}, 1),
		dead: make(chan struct{}),
	}
	go s.readAcks(br)
	return s, false, version, nil
}

// readAcks drains FrameMigAck frames, tracking applied counts and the
// final done flag.
func (s *migSession) readAcks(br *bufio.Reader) {
	var scratch []byte
	for {
		_, code, payload, err := wire.ReadFrame(br, scratch)
		if err != nil {
			s.readErr = err
			close(s.dead)
			return
		}
		if cap(payload) > cap(scratch) {
			scratch = payload[:0]
		}
		if code != wire.FrameMigAck {
			s.readErr = fmt.Errorf("unexpected frame %d on migration stream", code)
			close(s.dead)
			return
		}
		d := wire.Dec{B: payload}
		applied := d.U64()
		done := d.U8()
		if !d.Done() {
			s.readErr = errors.New("malformed migration ack")
			close(s.dead)
			return
		}
		s.acked.Store(applied)
		if done != 0 {
			s.done.Store(true)
		}
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
}

// writeFrame buffers one frame, with a write deadline covering any
// implicit flush.
func (s *migSession) writeFrame(id uint64, code uint8, payload []byte) error {
	select {
	case <-s.dead:
		return fmt.Errorf("migration stream closed: %w", s.readErr)
	default:
	}
	s.nc.SetWriteDeadline(time.Now().Add(migIOTimeout))
	return wire.WriteFrame(s.bw, id, code, payload)
}

// waitWindow flushes and pauses while the shipped-minus-acked window
// is full, failing if the target makes no progress for migIOTimeout.
func (s *migSession) waitWindow() error {
	if s.shipped-s.acked.Load() < migWindow {
		return nil
	}
	if err := s.flush(); err != nil {
		return err
	}
	deadline := time.Now().Add(migIOTimeout)
	for s.shipped-s.acked.Load() >= migWindow {
		if time.Now().After(deadline) {
			return errors.New("migration target stalled (ack window full)")
		}
		select {
		case <-s.kick:
			deadline = time.Now().Add(migIOTimeout)
		case <-s.dead:
			return fmt.Errorf("migration stream closed: %w", s.readErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil
}

// flush pushes buffered frames to the wire.
func (s *migSession) flush() error {
	s.nc.SetWriteDeadline(time.Now().Add(migIOTimeout))
	return s.bw.Flush()
}

// awaitDone flushes and waits for the target's post-handoff ack.
func (s *migSession) awaitDone() error {
	if err := s.flush(); err != nil {
		return err
	}
	deadline := time.Now().Add(migIOTimeout)
	for !s.done.Load() {
		if time.Now().After(deadline) {
			return errors.New("timed out")
		}
		select {
		case <-s.kick:
		case <-s.dead:
			if s.done.Load() {
				return nil
			}
			return fmt.Errorf("stream closed: %w", s.readErr)
		case <-time.After(100 * time.Millisecond):
		}
	}
	return nil
}

// close tears the session down.
func (s *migSession) close() {
	s.nc.Close()
	<-s.dead // reader exits on the closed conn
}
