package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"blinktree/internal/wire"
)

// mustNode builds a node or fails.
func mustNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMapPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir})
	if err := n.commitOut(2, "b:2", 5); err != nil {
		t.Fatal(err)
	}

	// Restart under a different advertised address: self-owned ranges
	// are stored as "" precisely so they survive an address change
	// (ephemeral ports on restart).
	n2 := mustNode(t, NodeConfig{Self: "a:9", Shards: 4, Dir: dir})
	if v := n2.Version(); v != 5 {
		t.Fatalf("version %d after reload, want 5", v)
	}
	for i := 0; i < 4; i++ {
		owner, pending, _ := n2.OwnedInfo(i)
		wantOwner, wantServing := "a:9", true
		if i == 2 {
			wantOwner, wantServing = "b:2", false
		}
		if owner != wantOwner || pending != "" {
			t.Fatalf("range %d reloaded as owner=%q pending=%q, want owner=%q", i, owner, pending, wantOwner)
		}
		if n2.Serving(i) != wantServing {
			t.Fatalf("range %d serving=%v, want %v", i, n2.Serving(i), wantServing)
		}
	}
}

func TestFenceTransitions(t *testing.T) {
	n := mustNode(t, NodeConfig{Self: "a:1", Shards: 4})
	if err := n.setFenced(1, "b:2"); err != nil {
		t.Fatal(err)
	}
	if n.Serving(1) {
		t.Fatal("fenced range still serving")
	}
	if s := n.ClusterStats(); s.Fenced != 1 || s.Owned != 3 {
		t.Fatalf("stats after fence: owned=%d fenced=%d, want 3/1", s.Owned, s.Fenced)
	}

	// The redirect payload must point at the pending target, not the
	// still-recorded owner: a client chasing it should land where the
	// range is about to live.
	m, err := wire.DecodeClusterMap(n.RedirectPayload(1))
	if err != nil {
		t.Fatal(err)
	}
	if m.Owners[1] != "b:2" {
		t.Fatalf("redirect names %q, want the pending target b:2", m.Owners[1])
	}
	if m.Owners[0] != "a:1" {
		t.Fatalf("redirect rewrote unfenced range 0 to %q", m.Owners[0])
	}

	// Abort path: unfence restores serving with ownership unchanged.
	n.unfence(1)
	if !n.Serving(1) {
		t.Fatal("unfenced range not serving")
	}

	// Commit path: fence again, then hand off. The range turns remote
	// and the version adopts the handoff's.
	if err := n.setFenced(1, "b:2"); err != nil {
		t.Fatal(err)
	}
	if err := n.commitOut(1, "b:2", 7); err != nil {
		t.Fatal(err)
	}
	if n.Serving(1) {
		t.Fatal("handed-off range still serving")
	}
	owner, pending, version := n.OwnedInfo(1)
	if owner != "b:2" || pending != "" || version != 7 {
		t.Fatalf("after commitOut: owner=%q pending=%q v=%d, want b:2 \"\" 7", owner, pending, version)
	}
}

func TestActivateInbound(t *testing.T) {
	// A node booted as a non-owner serves nothing until handoffs land.
	n := mustNode(t, NodeConfig{Self: "b:2", Shards: 4, InitialOwner: "a:1"})
	for i := 0; i < 4; i++ {
		if n.Serving(i) {
			t.Fatalf("non-owner serving range %d at boot", i)
		}
	}
	if err := n.activate(3, 9); err != nil {
		t.Fatal(err)
	}
	if !n.Serving(3) {
		t.Fatal("activated range not serving")
	}
	s := n.ClusterStats()
	if s.Takeovers != 1 || s.Owned != 1 || s.Version != 9 {
		t.Fatalf("after activate: takeovers=%d owned=%d v=%d, want 1/1/9", s.Takeovers, s.Owned, s.Version)
	}
}

func TestFenceSurvivesRestart(t *testing.T) {
	// A fenced-outbound marker must outlive a crash: the restarted node
	// stays fenced (redirecting writes) so ResolveFences can finish the
	// handoff instead of resurrecting a split-brain owner.
	dir := t.TempDir()
	n := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir})
	if err := n.setFenced(2, "b:2"); err != nil {
		t.Fatal(err)
	}
	n2 := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir})
	owner, pending, _ := n2.OwnedInfo(2)
	if owner != "a:1" || pending != "b:2" {
		t.Fatalf("reloaded fence: owner=%q pending=%q, want a:1/b:2", owner, pending)
	}
	if n2.Serving(2) {
		t.Fatal("fenced range serving after restart")
	}
}

func TestCorruptMapFallsBack(t *testing.T) {
	dir := t.TempDir()
	n := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir})
	if err := n.commitOut(0, "b:2", 3); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, MapFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // break the CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n2 := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir})
	if v := n2.Version(); v != 1 {
		t.Fatalf("corrupt map was trusted: version %d, want initial 1", v)
	}
	owner, _, _ := n2.OwnedInfo(0)
	if owner != "a:1" {
		t.Fatalf("corrupt map was trusted: owner %q, want initial a:1", owner)
	}

	// A map persisted for a different shard count is likewise ignored
	// wholesale, never half-applied.
	dir2 := t.TempDir()
	n3 := mustNode(t, NodeConfig{Self: "a:1", Shards: 4, Dir: dir2})
	if err := n3.commitOut(1, "c:3", 2); err != nil {
		t.Fatal(err)
	}
	n4 := mustNode(t, NodeConfig{Self: "a:1", Shards: 8, Dir: dir2})
	if v := n4.Version(); v != 1 {
		t.Fatalf("mismatched-shard map was trusted: version %d, want initial 1", v)
	}
	if owner, _, _ := n4.OwnedInfo(1); owner != "a:1" {
		t.Fatalf("mismatched-shard map was trusted: owner %q", owner)
	}
}

func TestClusterMapCodec(t *testing.T) {
	m := &wire.ClusterMap{Version: 42, Owners: []string{"a:1", "b:2", "", "c:3"}}
	var b wire.Buf
	wire.AppendClusterMap(&b, m)
	got, err := wire.DecodeClusterMap(b.B)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != m.Version || len(got.Owners) != len(m.Owners) {
		t.Fatalf("round-trip: %+v", got)
	}
	for i := range m.Owners {
		if got.Owners[i] != m.Owners[i] {
			t.Fatalf("owner %d = %q, want %q", i, got.Owners[i], m.Owners[i])
		}
	}

	// Truncated and trailing-byte payloads are rejected, not guessed at.
	if _, err := wire.DecodeClusterMap(b.B[:len(b.B)-1]); err == nil {
		t.Fatal("truncated map decoded")
	}
	if _, err := wire.DecodeClusterMap(append(append([]byte(nil), b.B...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := wire.DecodeClusterMap(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func TestClusterMapRange(t *testing.T) {
	// The single-owner map must not divide by a zero stride
	// (^uint64(0)/1 + 1 wraps to 0).
	one := &wire.ClusterMap{Version: 1, Owners: []string{"a:1"}}
	if got := one.Range(^uint64(0)); got != 0 {
		t.Fatalf("single-owner Range = %d, want 0", got)
	}
	four := &wire.ClusterMap{Version: 1, Owners: []string{"a", "b", "c", "d"}}
	stride := ^uint64(0)/4 + 1
	cases := map[uint64]int{0: 0, stride - 1: 0, stride: 1, 3 * stride: 3, ^uint64(0): 3}
	for k, want := range cases {
		if got := four.Range(k); got != want {
			t.Fatalf("Range(%d) = %d, want %d", k, got, want)
		}
	}
}
