package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/repl"
	"blinktree/internal/shard"
	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

// ingestAckEvery is how many applied records between flow-control acks.
const ingestAckEvery = 1024

// BeginIngest is the target side of the OpMigrate ingest handshake.
// already=true means this node owns the range from a committed prior
// handoff (the source should adopt, no stream follows). On
// (false, nil) the node's migration slot is held and the caller MUST
// follow with ServeIngest, which releases it.
func (n *Node) BeginIngest(sh int) (already bool, version uint64, err error) {
	if err := n.validShard(sh); err != nil {
		return false, 0, err
	}
	if !n.migMu.TryLock() {
		return false, 0, errors.New("cluster: another migration is in progress on this node")
	}
	owner, pending, ver := n.OwnedInfo(sh)
	if owner == n.self {
		n.migMu.Unlock()
		if pending != "" {
			return false, 0, fmt.Errorf("cluster: range %d is fenced outbound toward %s", sh, pending)
		}
		return true, ver, nil
	}
	return false, ver, nil
}

// AbortIngest releases the slot BeginIngest held when the handshake
// response could not be delivered.
func (n *Node) AbortIngest() { n.migMu.Unlock() }

// ServeIngest runs the target side of a migration stream after a
// successful BeginIngest: wipe the range on FrameReset, apply
// FrameRecords through the router (the target's own WAL group-commits
// them, which is what makes the takeover durable), ack periodically
// for flow control, and on FrameHandoff persist ownership BEFORE the
// final ack — the ack is the source's permission to stop owning the
// range, so the claim must already be durable.
func (n *Node) ServeIngest(nc net.Conn, br *bufio.Reader, bw *bufio.Writer, r *shard.Router, sh int) error {
	defer n.migMu.Unlock()
	lo, hi := r.ShardSpan(sh)
	var (
		scratch  []byte
		recs     []wal.Record
		ops      []shard.Op
		enc      wire.Buf
		applied  uint64
		sinceAck int
	)
	sendAck := func(done bool) error {
		enc.Reset()
		enc.U64(applied)
		if done {
			enc.U8(1)
		} else {
			enc.U8(0)
		}
		if err := wire.WriteFrame(bw, 0, wire.FrameMigAck, enc.B); err != nil {
			return err
		}
		nc.SetWriteDeadline(time.Now().Add(migIOTimeout))
		sinceAck = 0
		return bw.Flush()
	}
	for {
		nc.SetReadDeadline(time.Now().Add(migIOTimeout))
		id, code, payload, err := wire.ReadFrame(br, scratch)
		if err != nil {
			return fmt.Errorf("cluster: ingest range %d: %w", sh, err)
		}
		if cap(payload) > cap(scratch) {
			scratch = payload[:0]
		}
		if int(id) != sh {
			return fmt.Errorf("cluster: ingest frame for range %d on range %d's stream", id, sh)
		}
		switch code {
		case wire.FrameReset:
			// A (re)started stream: drop any partial copy from an
			// earlier attempt before the fresh snapshot lands.
			if err := wipeRange(r, lo, hi); err != nil {
				return fmt.Errorf("cluster: wipe range %d: %w", sh, err)
			}
		case wire.FrameRecords:
			_, _, rs, err := repl.DecodeRecords(payload, recs[:0])
			if err != nil {
				return err
			}
			recs = rs
			for _, rec := range recs {
				if rec.Key < lo || rec.Key > hi {
					return fmt.Errorf("cluster: record for key %d outside range %d [%d,%d]", rec.Key, sh, lo, hi)
				}
			}
			if err := applyRecords(r, recs, &ops); err != nil {
				return fmt.Errorf("cluster: ingest range %d: %w", sh, err)
			}
			applied += uint64(len(recs))
			n.ingested.Add(uint64(len(recs)))
			if sinceAck += len(recs); sinceAck >= ingestAckEvery {
				if err := sendAck(false); err != nil {
					return err
				}
			}
		case wire.FrameHandoff:
			d := wire.Dec{B: payload}
			ver := d.U64()
			if !d.Done() {
				return errors.New("cluster: malformed handoff frame")
			}
			if err := n.activate(sh, ver); err != nil {
				return fmt.Errorf("cluster: persist takeover of range %d: %w", sh, err)
			}
			n.logf("cluster: took over range %d at map v%d (%d records ingested)", sh, ver, applied)
			return sendAck(true)
		default:
			return fmt.Errorf("cluster: unexpected frame %d on migration stream", code)
		}
	}
}

// applyRecords re-applies shipped records through the router — puts as
// upserts, dels as delete-if-present — the WAL replay contract that
// makes at-least-once shipping safe.
func applyRecords(r *shard.Router, recs []wal.Record, ops *[]shard.Op) error {
	*ops = (*ops)[:0]
	for _, rec := range recs {
		switch rec.Kind {
		case wal.KindPut:
			*ops = append(*ops, shard.Op{Kind: shard.OpUpsert, Key: rec.Key, Value: rec.Value})
		case wal.KindDel:
			*ops = append(*ops, shard.Op{Kind: shard.OpDelete, Key: rec.Key})
		}
	}
	for i, res := range r.ApplyBatch(*ops) {
		if res.Err != nil && !((*ops)[i].Kind == shard.OpDelete && errors.Is(res.Err, base.ErrNotFound)) {
			return fmt.Errorf("apply record: %w", res.Err)
		}
	}
	return nil
}

// wipeRange deletes every pair in [lo, hi], batched through ApplyBatch
// so the deletes are logged — the node's own recovery must not
// resurrect wiped pairs.
func wipeRange(r *shard.Router, lo, hi base.Key) error {
	keys := make([]base.Key, 0, 2048)
	ops := make([]shard.Op, 0, 2048)
	for {
		keys = keys[:0]
		err := r.Range(lo, hi, func(k base.Key, _ base.Value) bool {
			keys = append(keys, k)
			return len(keys) < 2048
		})
		if err != nil {
			return err
		}
		if len(keys) == 0 {
			return nil
		}
		ops = ops[:0]
		for _, k := range keys {
			ops = append(ops, shard.Op{Kind: shard.OpDelete, Key: k})
		}
		for _, res := range r.ApplyBatch(ops) {
			if res.Err != nil && !errors.Is(res.Err, base.ErrNotFound) {
				return res.Err
			}
		}
	}
}
