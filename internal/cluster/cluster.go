// Package cluster turns "primary + replica" into "cluster": it owns
// the versioned range-ownership map a cluster of servers shares with
// clients, and performs live migration of a shard's key range from one
// server to another with no lost or phantom acked writes.
//
// The design is the Lehman–Yao argument one level up. Inside a tree,
// readers tolerate concurrent structural change because a split leaves
// a right-link to chase; inside a cluster, clients tolerate a range
// changing servers because a refused op leaves a redirect to chase
// (StatusWrongShard carrying the owner's address). Both sides keep
// serving while the layout changes underneath.
//
// A migration reuses the replication substrate's two guarantees: the
// per-shard WAL is a prefix-consistent record of acknowledged
// mutations, and replay is idempotent (puts as upserts, dels as
// delete-if-present), so records may be shipped at-least-once. The
// source snapshot-streams the shard via Engine.StreamState concurrent
// with writers, chases the tail by reading the WAL segments the
// snapshot rotation left behind, then flips ownership under a brief
// write fence: new writes for the range are refused with a redirect,
// in-flight batches drain behind an RWMutex barrier, the final tail
// ships, and the target takes over. An acknowledged write is therefore
// always either in the shipped prefix or refused-and-retried — never
// silently dropped.
//
// Crash safety without consensus: ownership changes persist on both
// sides in a small CRC-guarded map file, in an order that keeps every
// crash window recoverable by simply re-triggering the migration. The
// target persists "I own it" before acking the handoff; the source
// persists a fenced "migrating out to T" marker before shipping the
// final tail and only un-fences on failure when the handoff frame
// cannot have been sent. Re-triggering resolves every outcome: a
// target that already owns the range says so in the ingest handshake
// (the source adopts the result), and a fenced source with an
// unactivated target still holds the range's full frozen state and
// re-runs the stream from scratch.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/wal"
	"blinktree/internal/wire"
)

// MapFile is the name of the durable ownership record, stored beside
// the per-shard WAL directories.
const MapFile = "clustermap"

// Range serving states, the fast-path word the serving layer checks
// per op.
const (
	// rangeServing: this node owns the range and accepts ops.
	rangeServing uint32 = iota
	// rangeFenced: this node owns the range's data but a migration is
	// past the point of no return — ops are refused with a redirect to
	// the pending target until the handoff resolves.
	rangeFenced
	// rangeRemote: another node owns the range; ops are refused with a
	// redirect to it. Local data for the range, if any, is garbage
	// awaiting the next wipe.
	rangeRemote
)

// Migration phases, exported as a /metrics gauge.
const (
	PhaseIdle uint32 = iota
	PhaseSnapshot
	PhaseChase
	PhaseFence
)

// PhaseName names a migration phase for metrics and logs.
func PhaseName(p uint32) string {
	switch p {
	case PhaseSnapshot:
		return "snapshot"
	case PhaseChase:
		return "chase"
	case PhaseFence:
		return "fence"
	default:
		return "idle"
	}
}

// NodeConfig configures a cluster node. Self and Shards are required.
type NodeConfig struct {
	// Self is this server's advertised address — the string other
	// members and clients reach it by, and the identity recorded in
	// cluster maps.
	Self string
	// Shards is the number of ranges (must match the router's shard
	// count on every member).
	Shards int
	// InitialOwner is the address owning every range when no persisted
	// map exists; empty means Self. A node whose InitialOwner is
	// another member boots owning nothing and redirects everything
	// until ranges are migrated to it.
	InitialOwner string
	// Dir is where the ownership map persists (the server's durability
	// directory). Empty keeps the map in memory only — fine for tests,
	// unsafe for a real cluster restart.
	Dir string
	// Logf receives migration-level notices. Default: discard.
	Logf func(format string, args ...any)
}

// Node is one server's cluster state: the versioned ownership map, the
// per-range serving word the hot path checks, the write fence, and the
// migration engine (source and target sides).
type Node struct {
	self   string
	shards int
	dir    string
	logf   func(format string, args ...any)

	// state[i] is the fast-path serving word for range i
	// (rangeServing/rangeFenced/rangeRemote), readable without mu.
	state []atomic.Uint32

	// fenceMu is the drain barrier between batch appliers and the
	// fence flip: every applier holds it for read around
	// check-ownership-then-apply, and the fence takes it for write
	// once after marking the range fenced, so when Lock returns no
	// in-flight batch can still append to the fenced range's WAL.
	fenceMu sync.RWMutex

	// mu guards the slow-path map state and its persistence.
	mu      sync.Mutex
	version uint64
	owners  []string // owner address per range
	pending []string // fenced ranges' handoff target, "" otherwise

	// migMu serializes migrations through this node (either side).
	migMu sync.Mutex

	// Metrics.
	migShard     atomic.Int64 // range being migrated out, -1 when idle
	phase        atomic.Uint32
	shipped      atomic.Uint64 // records shipped out (source side)
	ingested     atomic.Uint64 // records applied in (target side)
	migrations   atomic.Uint64 // completed outbound handoffs
	takeovers    atomic.Uint64 // completed inbound handoffs
	redirects    atomic.Uint64 // WrongShard refusals served
	lastFenceNS  atomic.Int64  // duration of the last write fence
	totalFenceNS atomic.Int64
}

// NewNode builds a node, loading a persisted ownership map from
// cfg.Dir when present (a missing or torn file falls back to the
// configured initial layout; a corrupt-but-well-formed one is trusted
// only if its CRC passes).
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: NodeConfig.Self required")
	}
	if cfg.Shards <= 0 {
		return nil, errors.New("cluster: NodeConfig.Shards must be positive")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		self:    cfg.Self,
		shards:  cfg.Shards,
		dir:     cfg.Dir,
		logf:    cfg.Logf,
		state:   make([]atomic.Uint32, cfg.Shards),
		version: 1,
		owners:  make([]string, cfg.Shards),
		pending: make([]string, cfg.Shards),
	}
	n.migShard.Store(-1)
	initial := cfg.InitialOwner
	if initial == "" {
		initial = cfg.Self
	}
	for i := range n.owners {
		n.owners[i] = initial
	}
	if cfg.Dir != "" {
		n.loadMap(filepath.Join(cfg.Dir, MapFile))
	}
	for i := range n.owners {
		n.state[i].Store(n.deriveState(i))
	}
	return n, nil
}

// deriveState computes range i's serving word from the map (mu held or
// construction-time).
func (n *Node) deriveState(i int) uint32 {
	switch {
	case n.owners[i] != n.self:
		return rangeRemote
	case n.pending[i] != "":
		return rangeFenced
	default:
		return rangeServing
	}
}

// Self returns the node's advertised address.
func (n *Node) Self() string { return n.self }

// Shards returns the number of ranges.
func (n *Node) Shards() int { return n.shards }

// Serving reports whether ops on range sh should be accepted here.
// This is the per-op hot-path check: one atomic load.
func (n *Node) Serving(sh int) bool {
	return n.state[sh].Load() == rangeServing
}

// FenceRLock/FenceRUnlock bracket a check-ownership-then-apply section
// in the serving layer. See fenceMu.
func (n *Node) FenceRLock()   { n.fenceMu.RLock() }
func (n *Node) FenceRUnlock() { n.fenceMu.RUnlock() }

// Map returns a copy of the node's current ownership map.
func (n *Node) Map() *wire.ClusterMap {
	n.mu.Lock()
	defer n.mu.Unlock()
	return &wire.ClusterMap{Version: n.version, Owners: append([]string(nil), n.owners...)}
}

// MapPayload returns the encoded OpClusterMap response.
func (n *Node) MapPayload() []byte {
	m := n.Map()
	var b wire.Buf
	wire.AppendClusterMap(&b, m)
	return b.B
}

// RedirectPayload returns the encoded StatusWrongShard payload for a
// refused op on range sh: the current map with fenced ranges rewritten
// to their pending targets, so a client chasing the redirect lands on
// the server that is about to own the range.
func (n *Node) RedirectPayload(sh int) []byte {
	n.redirects.Add(1)
	n.mu.Lock()
	m := wire.ClusterMap{Version: n.version, Owners: append([]string(nil), n.owners...)}
	for i, p := range n.pending {
		if p != "" {
			m.Owners[i] = p
		}
	}
	n.mu.Unlock()
	var b wire.Buf
	wire.AppendClusterMap(&b, &m)
	return b.B
}

// Version returns the current map version.
func (n *Node) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Stats is a snapshot of a node's cluster counters.
type Stats struct {
	// Self is the advertised address; Version the map version.
	Self    string
	Version uint64
	// Owned counts ranges currently served here; Fenced those frozen
	// mid-handoff.
	Owned, Fenced int
	// MigratingShard is the range being migrated out (-1 idle) and
	// Phase its phase (PhaseIdle..PhaseFence).
	MigratingShard int64
	Phase          uint32
	// Shipped/Ingested count migration records sent/applied;
	// Migrations/Takeovers completed outbound/inbound handoffs;
	// Redirects WrongShard refusals served.
	Shipped, Ingested     uint64
	Migrations, Takeovers uint64
	Redirects             uint64
	LastFence, FenceTotal time.Duration
}

// ClusterStats returns the node's counters.
func (n *Node) ClusterStats() Stats {
	s := Stats{
		Self:           n.self,
		MigratingShard: n.migShard.Load(),
		Phase:          n.phase.Load(),
		Shipped:        n.shipped.Load(),
		Ingested:       n.ingested.Load(),
		Migrations:     n.migrations.Load(),
		Takeovers:      n.takeovers.Load(),
		Redirects:      n.redirects.Load(),
		LastFence:      time.Duration(n.lastFenceNS.Load()),
		FenceTotal:     time.Duration(n.totalFenceNS.Load()),
	}
	n.mu.Lock()
	s.Version = n.version
	for i := range n.owners {
		switch n.deriveState(i) {
		case rangeServing:
			s.Owned++
		case rangeFenced:
			s.Fenced++
		}
	}
	n.mu.Unlock()
	return s
}

// setFenced marks range sh as migrating out to target and persists the
// marker. After this the range's data is frozen here until the handoff
// resolves (commitOut, adopt, or unfence).
func (n *Node) setFenced(sh int, target string) error {
	n.mu.Lock()
	n.pending[sh] = target
	n.state[sh].Store(rangeFenced)
	err := n.persistMapLocked()
	n.mu.Unlock()
	return err
}

// unfence reverts a fenced range to serving — legal only while the
// handoff frame cannot have been sent (the target cannot own the
// range).
func (n *Node) unfence(sh int) {
	n.mu.Lock()
	n.pending[sh] = ""
	n.state[sh].Store(rangeServing)
	if err := n.persistMapLocked(); err != nil {
		n.logf("cluster: persist map after unfence: %v", err)
	}
	n.mu.Unlock()
}

// commitOut records a completed outbound handoff of range sh.
func (n *Node) commitOut(sh int, target string, version uint64) error {
	n.mu.Lock()
	n.owners[sh] = target
	n.pending[sh] = ""
	if version > n.version {
		n.version = version
	}
	n.state[sh].Store(rangeRemote)
	err := n.persistMapLocked()
	n.mu.Unlock()
	return err
}

// adopt records that the target already owns range sh (a prior handoff
// committed on its side before we crashed or lost the ack).
func (n *Node) adopt(sh int, target string, targetVersion uint64) error {
	n.logf("cluster: adopting committed handoff of range %d to %s", sh, target)
	return n.commitOut(sh, target, targetVersion)
}

// activate records a completed inbound handoff: this node now owns
// range sh. Persisted before the caller acks the handoff — the ack is
// the source's permission to stop owning the range, so our claim must
// be durable first.
func (n *Node) activate(sh int, version uint64) error {
	n.mu.Lock()
	n.owners[sh] = n.self
	n.pending[sh] = ""
	if version > n.version {
		n.version = version
	}
	n.state[sh].Store(rangeServing)
	err := n.persistMapLocked()
	n.mu.Unlock()
	if err == nil {
		n.takeovers.Add(1)
	}
	return err
}

// OwnedInfo reports, under one lock, whether this node serves range sh
// and the fenced-pending target if any — the ingest handshake's view.
func (n *Node) OwnedInfo(sh int) (owner string, pending string, version uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.owners[sh], n.pending[sh], n.version
}

// mapMagic/mapVersion identify the persisted map file format.
const (
	mapMagic   = "BLCM"
	mapVersion = 1
)

// persistMapLocked atomically rewrites the map file (no-op without a
// Dir). Owner and pending addresses equal to self are stored as "" so
// a node restarted under a new address (ephemeral ports in tests)
// still recognizes its own ranges.
func (n *Node) persistMapLocked() error {
	if n.dir == "" {
		return nil
	}
	buf := make([]byte, 0, 16+n.shards*8)
	buf = append(buf, mapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, mapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, n.version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n.shards))
	appendAddr := func(a string) {
		if a == n.self {
			a = ""
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	for i := 0; i < n.shards; i++ {
		appendAddr(n.owners[i])
		appendAddr(n.pending[i])
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli)))
	return wal.WriteFileDurable(filepath.Join(n.dir, MapFile), buf)
}

// loadMap restores a persisted map; a missing, torn, or mismatched
// file leaves the configured initial layout in place.
func (n *Node) loadMap(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	if len(data) < 24 || string(data[0:4]) != mapMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != mapVersion {
		n.logf("cluster: ignoring unrecognized map file %s", path)
		return
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != sum {
		n.logf("cluster: ignoring map file %s with bad checksum", path)
		return
	}
	version := binary.LittleEndian.Uint64(data[8:16])
	shards := int(binary.LittleEndian.Uint32(data[16:20]))
	if shards != n.shards {
		n.logf("cluster: ignoring map file for %d shards (node has %d)", shards, n.shards)
		return
	}
	off := 20
	readAddr := func() (string, bool) {
		if off+2 > len(body) {
			return "", false
		}
		l := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+l > len(body) {
			return "", false
		}
		a := string(body[off : off+l])
		off += l
		if a == "" {
			a = n.self
		}
		return a, true
	}
	owners := make([]string, shards)
	pending := make([]string, shards)
	for i := 0; i < shards; i++ {
		var ok bool
		if owners[i], ok = readAddr(); !ok {
			return
		}
		if pending[i], ok = readAddr(); !ok {
			return
		}
		if pending[i] == n.self {
			pending[i] = "" // "" round-trips as self; pending is never self
		}
	}
	if off != len(body) {
		return
	}
	n.version = version
	n.owners = owners
	n.pending = pending
}

// errNotOwner rejects a migration of a range this node does not own.
var errNotOwner = errors.New("cluster: not the range's owner")

// validShard validates a range index.
func (n *Node) validShard(sh int) error {
	if sh < 0 || sh >= n.shards {
		return fmt.Errorf("cluster: range %d out of [0,%d)", sh, n.shards)
	}
	return nil
}
