// Package reclaim implements epoch-based reclamation of deleted pages.
//
// The paper (§5.3) observes that a node emptied by compression cannot be
// handed back to the allocator immediately: concurrently running
// searches may still hold its address and must be able to read its
// deletion bit and outlink. The paper's release rule — "a node that
// becomes empty at time t can be released when all active searches,
// insertions, and deletions have started after time t" — is exactly
// epoch-based reclamation, which this package provides:
//
//   - every logical operation brackets itself with Enter/Exit;
//   - Retire(id) parks a dead page in a limbo list stamped with the
//     current epoch;
//   - Collect frees every limbo page whose epoch precedes the oldest
//     live operation.
package reclaim

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
)

// slots is the number of striped activity slots. More slots than
// expected concurrent operations keeps Enter wait-free in practice.
const slots = 128

// FreeFunc returns a page to the allocator.
type FreeFunc func(base.PageID) error

// Reclaimer tracks live operations and limbo pages. All methods are safe
// for concurrent use.
type Reclaimer struct {
	free FreeFunc

	epoch atomic.Uint64 // current global epoch, starts at 1
	slot  [slots]paddedSlot

	mu      sync.Mutex
	limbo   []retired
	retired atomic.Uint64 // lifetime count of Retire calls
	freed   atomic.Uint64 // lifetime count of pages handed to free
}

type paddedSlot struct {
	epoch atomic.Uint64 // 0 = inactive, else the epoch the op entered at
	_     [7]uint64     // avoid false sharing between adjacent slots
}

type retired struct {
	id    base.PageID
	epoch uint64
}

// New returns a Reclaimer that frees pages through free.
func New(free FreeFunc) *Reclaimer {
	r := &Reclaimer{free: free}
	r.epoch.Store(1)
	return r
}

// Guard is an open Enter bracket. The zero Guard is invalid.
type Guard struct {
	slot int
}

// Enter marks the start of a logical operation and returns its Guard.
// Every Enter must be paired with exactly one Exit.
//
// Slot choice matters on the hot path: Enter brackets every read as
// well as every write, and an earlier version assigned slots from a
// shared atomic cursor — a read-modify-write on one cache line that
// every concurrent operation fought over. The cursor is gone: each
// Enter starts at a slot drawn from the runtime's per-thread random
// state (rand.Uint64 takes no locks and touches no shared memory) and
// probes linearly from there, so the only shared write left is the CAS
// that claims a free slot, almost always uncontended with 128 slots.
func (r *Reclaimer) Enter() Guard {
	e := r.epoch.Load()
	i := int(rand.Uint64() % slots)
	for {
		if r.slot[i].epoch.CompareAndSwap(0, e) {
			return Guard{slot: i + 1}
		}
		i++
		if i == slots {
			i = 0
		}
	}
}

// Exit closes the bracket opened by Enter.
func (r *Reclaimer) Exit(g Guard) {
	if g.slot == 0 {
		panic("reclaim: Exit with zero Guard")
	}
	r.slot[g.slot-1].epoch.Store(0)
}

// Retire parks a dead page; it will be freed by a later Collect once no
// operation that might still reference it remains live.
func (r *Reclaimer) Retire(id base.PageID) {
	e := r.epoch.Load()
	r.mu.Lock()
	r.limbo = append(r.limbo, retired{id: id, epoch: e})
	r.mu.Unlock()
	r.retired.Add(1)
}

// minActive returns the oldest epoch of any live operation, or MaxUint64
// if none are live.
func (r *Reclaimer) minActive() uint64 {
	min := uint64(math.MaxUint64)
	for i := range r.slot {
		if e := r.slot[i].epoch.Load(); e != 0 && e < min {
			min = e
		}
	}
	return min
}

// Collect advances the epoch and frees every limbo page retired before
// the oldest live operation entered. It returns the number of pages
// freed and the first free error encountered, if any.
func (r *Reclaimer) Collect() (int, error) {
	r.epoch.Add(1)
	min := r.minActive()

	r.mu.Lock()
	var keep, release []retired
	for _, it := range r.limbo {
		if it.epoch < min {
			release = append(release, it)
		} else {
			keep = append(keep, it)
		}
	}
	r.limbo = keep
	r.mu.Unlock()

	var firstErr error
	n := 0
	for _, it := range release {
		if err := r.free(it.id); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	r.freed.Add(uint64(n))
	return n, firstErr
}

// ReclaimStats is a snapshot of lifetime counters.
type ReclaimStats struct {
	Retired uint64 // pages ever retired
	Freed   uint64 // pages handed back to the allocator
	Limbo   int    // pages currently parked
}

// Stats returns the current counters.
func (r *Reclaimer) Stats() ReclaimStats {
	r.mu.Lock()
	l := len(r.limbo)
	r.mu.Unlock()
	return ReclaimStats{
		Retired: r.retired.Load(),
		Freed:   r.freed.Load(),
		Limbo:   l,
	}
}
