package reclaim

import (
	"errors"
	"sync"
	"testing"

	"blinktree/internal/base"
)

// collectFreed runs Collect and returns the ids freed so far via the
// recording free function.
type recorder struct {
	mu    sync.Mutex
	freed []base.PageID
	fail  bool
}

func (rec *recorder) free(id base.PageID) error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.fail {
		return errors.New("boom")
	}
	rec.freed = append(rec.freed, id)
	return nil
}

func (rec *recorder) ids() []base.PageID {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]base.PageID(nil), rec.freed...)
}

func TestRetireFreedWhenQuiet(t *testing.T) {
	rec := &recorder{}
	r := New(rec.free)
	r.Retire(42)
	n, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("freed %d pages, want 1", n)
	}
	if ids := rec.ids(); len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("freed ids = %v", ids)
	}
}

func TestRetireHeldWhileOpLive(t *testing.T) {
	rec := &recorder{}
	r := New(rec.free)

	g := r.Enter() // an old operation is live
	r.Retire(7)    // page retired while the op might reference it

	if n, _ := r.Collect(); n != 0 {
		t.Fatalf("page freed under a live older operation (n=%d)", n)
	}
	if st := r.Stats(); st.Limbo != 1 || st.Retired != 1 || st.Freed != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}

	r.Exit(g)
	if n, _ := r.Collect(); n != 1 {
		t.Fatal("page not freed after the old operation exited")
	}
	if st := r.Stats(); st.Limbo != 0 || st.Freed != 1 {
		t.Fatalf("unexpected stats after free: %+v", st)
	}
}

func TestYoungOpDoesNotBlockOldRetire(t *testing.T) {
	rec := &recorder{}
	r := New(rec.free)

	r.Retire(9)
	// Advance the epoch so a subsequent Enter is strictly younger than
	// the retirement.
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	// Page 9 freed already (nothing was live). Retire another while a
	// young op is live but entered after retirement epoch advanced.
	r.Retire(10)
	_, _ = r.Collect() // bumps epoch; 10 may or may not free depending on live ops — none live, frees
	g := r.Enter()
	r.Retire(11)
	// g entered at the current epoch; 11 was retired at the same epoch,
	// so it must be held.
	if n, _ := r.Collect(); n != 0 {
		t.Fatalf("page 11 freed while same-epoch op live (n=%d)", n)
	}
	r.Exit(g)
	if n, _ := r.Collect(); n != 1 {
		t.Fatal("page 11 not freed after exit")
	}
}

func TestCollectError(t *testing.T) {
	rec := &recorder{fail: true}
	r := New(rec.free)
	r.Retire(1)
	n, err := r.Collect()
	if err == nil {
		t.Fatal("expected free error to propagate")
	}
	if n != 0 {
		t.Fatalf("n = %d with failing free", n)
	}
}

func TestExitZeroGuardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(func(base.PageID) error { return nil }).Exit(Guard{})
}

func TestEnterExitManyConcurrent(t *testing.T) {
	rec := &recorder{}
	r := New(rec.free)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := r.Enter()
				if i%10 == 0 {
					r.Retire(base.PageID(w*1000 + i + 1))
				}
				r.Exit(g)
			}
		}(w)
	}
	wg.Wait()
	// Everything is quiet now; a single collect must free all limbo.
	if _, err := r.Collect(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Limbo != 0 {
		t.Fatalf("limbo not drained: %+v", st)
	}
	if st.Retired != st.Freed {
		t.Fatalf("retired %d != freed %d", st.Retired, st.Freed)
	}
}

func TestSlotExhaustionDoesNotDeadlock(t *testing.T) {
	r := New(func(base.PageID) error { return nil })
	// Occupy many slots simultaneously, then release; Enter must always
	// eventually find a slot.
	guards := make([]Guard, 100)
	for i := range guards {
		guards[i] = r.Enter()
	}
	for _, g := range guards {
		r.Exit(g)
	}
	g := r.Enter()
	r.Exit(g)
}
