package storage

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
)

// BufferPool is a bounded write-back page cache layered over another
// Store — the disk-native serving path. It keeps at most capacity page
// frames resident, evicts in LRU order skipping pinned frames, and
// writes dirty frames back to the underlying store before their frame
// is reused, so every page is always either resident or re-fetchable.
//
// Two access regimes share the pool:
//
//   - The Store methods (Read/Write) copy whole pages in and out,
//     preserving the per-page atomicity contract for callers that treat
//     the pool as just another Store.
//   - Pin/Unpin hands out *Frame handles for zero-copy access: the node
//     layer pins a frame, takes its latch, decodes or encodes in place,
//     and unpins. A pinned frame is never evicted, which is what makes
//     in-place access safe against frame reuse.
//
// See doc.go for the full pin/unpin + eviction contract and how it
// composes with the §5.3 reclamation epochs above.
type BufferPool struct {
	under    Store
	capacity int

	mu      sync.Mutex
	frames  map[base.PageID]*list.Element // -> *Frame
	lru     *list.List                    // front = most recent
	closed  bool
	crashed bool  // severed from under; see Crash
	freeErr error // first failure of a Free deferred past a pin

	hits, misses, evictions, writebacks uint64
	pinned                              int
	pinnedHighWater                     int

	prefetchCh    chan base.PageID
	prefetchQuit  chan struct{}
	prefetchDone  chan struct{}
	prefetches    atomic.Uint64
	prefetchLoads atomic.Uint64
}

// Frame is one resident page. The pool owns the frame's identity (id,
// pin count, dirty bit, LRU position); the holder of a pin owns access
// to its bytes through the latch: RLock to read or decode, Lock to
// mutate or encode. Latch only while pinned, and release the latch
// before Unpin — the pool takes latches during Flush and takes none
// during eviction (eviction requires a zero pin count, which already
// excludes latch holders).
type Frame struct {
	id     base.PageID
	data   []byte
	pins   int  // guarded by pool.mu
	doomed bool // guarded by pool.mu; Free arrived while pinned
	dirty  atomic.Bool
	latch  sync.RWMutex
	// obj caches the decoded object (a *node.Node above) for the bytes
	// in data. Set it only while holding the latch in either mode, so a
	// cached object can never outlive the page image it was decoded
	// from; a raw Write through the Store interface clears it.
	obj atomic.Pointer[any]
}

// ID returns the page this frame holds.
func (f *Frame) ID() base.PageID { return f.id }

// Data returns the frame's page image. Access it only while pinned and
// holding the latch (RLock to read, Lock to write).
func (f *Frame) Data() []byte { return f.data }

// Lock takes the frame latch exclusively (for in-place encodes).
func (f *Frame) Lock() { f.latch.Lock() }

// Unlock releases the exclusive latch.
func (f *Frame) Unlock() { f.latch.Unlock() }

// RLock takes the frame latch shared (for reads and decodes).
func (f *Frame) RLock() { f.latch.RLock() }

// RUnlock releases the shared latch.
func (f *Frame) RUnlock() { f.latch.RUnlock() }

// MarkDirty records that Data was mutated, scheduling write-back on
// eviction or Flush. Call while holding the exclusive latch.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// CachedObject returns the decoded object cached for this frame's
// current content, or nil. Call while pinned.
func (f *Frame) CachedObject() any {
	if p := f.obj.Load(); p != nil {
		return *p
	}
	return nil
}

// SetCachedObject caches the decoded object for the frame's current
// content. Call only while pinned and holding the latch (either mode),
// immediately after decoding from or encoding into Data.
func (f *Frame) SetCachedObject(v any) { f.obj.Store(&v) }

// clearCachedObject drops the cached object (raw byte writes).
func (f *Frame) clearCachedObject() { f.obj.Store(nil) }

// NewBufferPool wraps under with a bounded pool of capacity page
// frames (minimum 4) and starts its read-ahead worker.
func NewBufferPool(under Store, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	p := &BufferPool{
		under:        under,
		capacity:     capacity,
		frames:       make(map[base.PageID]*list.Element, capacity),
		lru:          list.New(),
		prefetchCh:   make(chan base.PageID, 64),
		prefetchQuit: make(chan struct{}),
		prefetchDone: make(chan struct{}),
	}
	go p.prefetcher()
	return p
}

// PageSize implements Store.
func (p *BufferPool) PageSize() int { return p.under.PageSize() }

// Capacity returns the frame budget.
func (p *BufferPool) Capacity() int { return p.capacity }

// frameFor returns the frame for id, faulting it in (and possibly
// evicting an unpinned frame) on a miss. Caller holds p.mu.
func (p *BufferPool) frameFor(id base.PageID) (*Frame, error) {
	if el, ok := p.frames[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*Frame), nil
	}
	p.misses++
	if p.crashed {
		return nil, fmt.Errorf("storage: buffer pool crashed: %w", base.ErrClosed)
	}
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	fr := &Frame{id: id, data: make([]byte, p.under.PageSize())}
	if err := p.under.Read(id, fr.data); err != nil {
		return nil, err
	}
	p.frames[id] = p.lru.PushFront(fr)
	return fr, nil
}

// evictIfFull writes back and drops least-recently-used unpinned
// frames until a frame slot is free. Pinned frames are skipped: a pin
// is the promise that someone is using the frame's bytes in place.
// Caller holds p.mu.
func (p *BufferPool) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		var victim *list.Element
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			if el.Value.(*Frame).pins == 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			return fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", p.capacity)
		}
		fr := victim.Value.(*Frame)
		// pins == 0 and we hold p.mu, so no latch holder exists and none
		// can appear: the frame's bytes are safe to write back directly.
		if fr.dirty.Load() && !p.crashed {
			if err := p.under.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("storage: writeback page %d: %w", fr.id, err)
			}
			fr.dirty.Store(false)
			p.writebacks++
		}
		p.lru.Remove(victim)
		delete(p.frames, fr.id)
		p.evictions++
	}
	return nil
}

// Pin returns the frame holding id, faulting it in on a miss, and
// guarantees the frame stays resident until the matching Unpin. Every
// Pin must be paired with exactly one Unpin.
func (p *BufferPool) Pin(id base.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, base.ErrClosed
	}
	fr, err := p.frameFor(id)
	if err != nil {
		return nil, err
	}
	if fr.pins == 0 {
		p.pinned++
		if p.pinned > p.pinnedHighWater {
			p.pinnedHighWater = p.pinned
		}
	}
	fr.pins++
	return fr, nil
}

// Unpin releases one pin on fr. Unpinning a frame that holds no pin —
// a double unpin, or an unpin that was never paired with a Pin — is a
// caller bug that would let the pool evict a frame still in use, so it
// panics rather than corrupting silently.
func (p *BufferPool) Unpin(fr *Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fr.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of page %d with no outstanding pin", fr.id))
	}
	fr.pins--
	if fr.pins == 0 {
		p.pinned--
		// A Free that raced this pin was deferred to us (see Free); run
		// the underlying free now that the last user is gone.
		if fr.doomed {
			fr.doomed = false
			if !p.crashed {
				if err := p.under.Free(fr.id); err != nil && p.freeErr == nil {
					p.freeErr = err
				}
			}
		}
	}
}

// Prefetch schedules a best-effort asynchronous fault-in of id, so a
// sequential scan's next leaf is resident by the time the scan hops to
// it. It never blocks: when the read-ahead queue is full the hint is
// dropped. Errors (e.g. a page freed between hint and fetch) are
// swallowed — the demand fetch will surface anything real.
func (p *BufferPool) Prefetch(id base.PageID) {
	p.prefetches.Add(1)
	select {
	case p.prefetchCh <- id:
	default:
	}
}

// prefetcher drains the read-ahead queue, faulting pages in unpinned.
func (p *BufferPool) prefetcher() {
	defer close(p.prefetchDone)
	for {
		select {
		case <-p.prefetchQuit:
			return
		case id := <-p.prefetchCh:
			p.mu.Lock()
			if !p.closed {
				if _, ok := p.frames[id]; !ok {
					if _, err := p.frameFor(id); err == nil {
						p.prefetchLoads.Add(1)
						// frameFor counted the fault as a demand miss;
						// a satisfied prefetch is the opposite of one.
						p.misses--
					}
				}
			}
			p.mu.Unlock()
		}
	}
}

// Read implements Store.
func (p *BufferPool) Read(id base.PageID, buf []byte) error {
	if err := checkBuf(p.under.PageSize(), buf); err != nil {
		return err
	}
	fr, err := p.Pin(id)
	if err != nil {
		return err
	}
	fr.RLock()
	copy(buf, fr.data)
	fr.RUnlock()
	p.Unpin(fr)
	return nil
}

// Write implements Store.
func (p *BufferPool) Write(id base.PageID, buf []byte) error {
	if err := checkBuf(p.under.PageSize(), buf); err != nil {
		return err
	}
	// The miss path faults the page in even though we overwrite it
	// whole: the read validates that id is allocated underneath.
	fr, err := p.Pin(id)
	if err != nil {
		return err
	}
	fr.Lock()
	copy(fr.data, buf)
	fr.clearCachedObject()
	fr.MarkDirty()
	fr.Unlock()
	p.Unpin(fr)
	return nil
}

// Allocate implements Store.
func (p *BufferPool) Allocate() (base.PageID, error) {
	p.mu.Lock()
	if p.crashed {
		p.mu.Unlock()
		return 0, fmt.Errorf("storage: buffer pool crashed: %w", base.ErrClosed)
	}
	p.mu.Unlock()
	return p.under.Allocate()
}

// Crash severs the pool from its underlying store for crash-injection
// tests: no further write-back, fault-in, free, or allocation touches
// the store. Resident frames keep serving reads so in-flight
// operations on the abandoned index drain instead of panicking, but
// everything else fails. Without this, an abandoned in-process index
// would keep writing evicted pages into the file a recovered index has
// since reopened — a disk corruption no real kill can produce, since a
// dead process writes nothing.
func (p *BufferPool) Crash() {
	p.mu.Lock()
	p.crashed = true
	p.mu.Unlock()
}

// Free implements Store. The cached frame, if any, is dropped without
// write-back since the page's content is dead. Above the pool, the
// reclamation epochs (§5.3) delay Free past every tree operation that
// could still reach the page — but the read-ahead worker pins outside
// those epochs (a hint can outlive the page it names), so a Free that
// finds the frame pinned marks it doomed and defers the underlying
// free to the last Unpin instead of failing.
func (p *BufferPool) Free(id base.PageID) error {
	p.mu.Lock()
	if el, ok := p.frames[id]; ok {
		fr := el.Value.(*Frame)
		p.lru.Remove(el)
		delete(p.frames, id)
		fr.dirty.Store(false)
		fr.clearCachedObject()
		if fr.pins > 0 {
			fr.doomed = true
			p.mu.Unlock()
			return nil
		}
	}
	if p.crashed {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	return p.under.Free(id)
}

// Pages implements Store.
func (p *BufferPool) Pages() int { return p.under.Pages() }

// Flush writes every dirty frame back to the underlying store. Frames
// pinned by concurrent users are written under their latch, so an
// in-flight encode either lands wholly before or wholly after the
// flush of its frame.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushLocked()
}

func (p *BufferPool) flushLocked() error {
	if p.crashed {
		return fmt.Errorf("storage: buffer pool crashed: %w", base.ErrClosed)
	}
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*Frame)
		fr.RLock()
		// Swap-before-write keeps a dirty mark set after our copy: a
		// later mutator re-dirties and a later flush rewrites.
		if fr.dirty.Swap(false) {
			if err := p.under.Write(fr.id, fr.data); err != nil {
				fr.dirty.Store(true)
				fr.RUnlock()
				return err
			}
			p.writebacks++
		}
		fr.RUnlock()
	}
	return nil
}

// Close stops read-ahead, flushes dirty frames, closes the underlying
// store, and reports leaked pins: any frame still pinned at Close
// means some caller lost track of a Pin, the accounting bug that would
// eventually wedge eviction.
func (p *BufferPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var leaked []base.PageID
	for el := p.lru.Front(); el != nil; el = el.Next() {
		if fr := el.Value.(*Frame); fr.pins > 0 {
			leaked = append(leaked, fr.id)
		}
	}
	ferr := p.flushLocked()
	deferredErr := p.freeErr
	p.mu.Unlock()
	close(p.prefetchQuit)
	<-p.prefetchDone
	if err := p.under.Close(); err != nil {
		return err
	}
	if ferr != nil {
		return ferr
	}
	if deferredErr != nil {
		return fmt.Errorf("storage: deferred free failed: %w", deferredErr)
	}
	if len(leaked) > 0 {
		sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
		return fmt.Errorf("storage: %d pin(s) leaked at close: pages %v", len(leaked), leaked)
	}
	return nil
}

// PoolStats is a snapshot of cache behaviour. Hits/Misses count demand
// lookups (a satisfied prefetch later re-counted as a hit); Prefetches
// counts hints issued and PrefetchLoads the pages actually faulted in
// by read-ahead; Pinned/PinnedHighWater track the pin discipline.
type PoolStats struct {
	Hits, Misses, Evictions, Writebacks uint64
	Prefetches, PrefetchLoads           uint64
	Resident                            int
	Capacity                            int
	Pinned                              int
	PinnedHighWater                     int
}

// Stats returns a snapshot of the pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits: p.hits, Misses: p.misses,
		Evictions: p.evictions, Writebacks: p.writebacks,
		Prefetches:      p.prefetches.Load(),
		PrefetchLoads:   p.prefetchLoads.Load(),
		Resident:        p.lru.Len(),
		Capacity:        p.capacity,
		Pinned:          p.pinned,
		PinnedHighWater: p.pinnedHighWater,
	}
}

// Merge folds o into s for cross-shard aggregation: counters, resident
// frames and capacities sum; pin high-waters take the maximum.
func (s *PoolStats) Merge(o PoolStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
	s.Prefetches += o.Prefetches
	s.PrefetchLoads += o.PrefetchLoads
	s.Resident += o.Resident
	s.Capacity += o.Capacity
	s.Pinned += o.Pinned
	if o.PinnedHighWater > s.PinnedHighWater {
		s.PinnedHighWater = o.PinnedHighWater
	}
}
