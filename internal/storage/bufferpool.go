package storage

import (
	"container/list"
	"fmt"
	"sync"

	"blinktree/internal/base"
)

// BufferPool is a write-back LRU page cache layered over another Store.
// It bounds the number of in-memory page images while preserving the
// per-page read/write atomicity contract: a frame's content is only ever
// touched under the pool lock, and eviction writes dirty frames back to
// the underlying store before reuse.
//
// The pool exists so the paged tree can run with a working set smaller
// than the tree (the disk-resident regime of 1985); hit/miss counters
// feed the experiment harness.
type BufferPool struct {
	under    Store
	capacity int

	mu     sync.Mutex
	frames map[base.PageID]*list.Element // -> *frame
	lru    *list.List                    // front = most recent

	hits, misses, evictions, writebacks uint64
}

type frame struct {
	id    base.PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps under with an LRU cache of capacity pages
// (minimum 4).
func NewBufferPool(under Store, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &BufferPool{
		under:    under,
		capacity: capacity,
		frames:   make(map[base.PageID]*list.Element, capacity),
		lru:      list.New(),
	}
}

// PageSize implements Store.
func (p *BufferPool) PageSize() int { return p.under.PageSize() }

// frameFor returns the (locked-pool) frame for id, faulting it in and
// possibly evicting. Caller holds p.mu.
func (p *BufferPool) frameFor(id base.PageID, loadFromUnder bool) (*frame, error) {
	if el, ok := p.frames[id]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*frame), nil
	}
	p.misses++
	if err := p.evictIfFull(); err != nil {
		return nil, err
	}
	fr := &frame{id: id, data: make([]byte, p.under.PageSize())}
	if loadFromUnder {
		if err := p.under.Read(id, fr.data); err != nil {
			return nil, err
		}
	}
	p.frames[id] = p.lru.PushFront(fr)
	return fr, nil
}

// evictIfFull writes back and drops the least recently used frame when
// the pool is at capacity. Caller holds p.mu.
func (p *BufferPool) evictIfFull() error {
	for p.lru.Len() >= p.capacity {
		el := p.lru.Back()
		fr := el.Value.(*frame)
		if fr.dirty {
			if err := p.under.Write(fr.id, fr.data); err != nil {
				return fmt.Errorf("storage: writeback page %d: %w", fr.id, err)
			}
			p.writebacks++
		}
		p.lru.Remove(el)
		delete(p.frames, fr.id)
		p.evictions++
	}
	return nil
}

// Read implements Store.
func (p *BufferPool) Read(id base.PageID, buf []byte) error {
	if err := checkBuf(p.under.PageSize(), buf); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fr, err := p.frameFor(id, true)
	if err != nil {
		return err
	}
	copy(buf, fr.data)
	return nil
}

// Write implements Store.
func (p *BufferPool) Write(id base.PageID, buf []byte) error {
	if err := checkBuf(p.under.PageSize(), buf); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Fault the page in even though we overwrite it whole: the read
	// validates that id is actually allocated in the underlying store.
	fr, err := p.frameFor(id, true)
	if err != nil {
		return err
	}
	copy(fr.data, buf)
	fr.dirty = true
	return nil
}

// Allocate implements Store.
func (p *BufferPool) Allocate() (base.PageID, error) { return p.under.Allocate() }

// Free implements Store. The cached frame, if any, is dropped without
// write-back since the page's content is dead.
func (p *BufferPool) Free(id base.PageID) error {
	p.mu.Lock()
	if el, ok := p.frames[id]; ok {
		p.lru.Remove(el)
		delete(p.frames, id)
	}
	p.mu.Unlock()
	return p.under.Free(id)
}

// Pages implements Store.
func (p *BufferPool) Pages() int { return p.under.Pages() }

// Flush writes every dirty frame back to the underlying store.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if !fr.dirty {
			continue
		}
		if err := p.under.Write(fr.id, fr.data); err != nil {
			return err
		}
		fr.dirty = false
		p.writebacks++
	}
	return nil
}

// Close flushes and closes the underlying store.
func (p *BufferPool) Close() error {
	if err := p.Flush(); err != nil {
		return err
	}
	return p.under.Close()
}

// PoolStats is a snapshot of cache behaviour.
type PoolStats struct {
	Hits, Misses, Evictions, Writebacks uint64
	Resident                            int
}

// Stats returns a snapshot of the pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits: p.hits, Misses: p.misses,
		Evictions: p.evictions, Writebacks: p.writebacks,
		Resident: p.lru.Len(),
	}
}
