package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
)

// FileStore keeps pages in a single file, page id N occupying byte range
// [(N-1)*PageSize, N*PageSize). A sharded latch makes Read/Write of a
// page mutually atomic; distinct pages proceed in parallel via ReadAt /
// WriteAt. Allocation metadata lives in memory only: FileStore is a
// substrate for the paged tree, not a full recovery story (the module
// offers Snapshot/Load persistence at the tree layer instead).
type FileStore struct {
	pageSize int
	f        *os.File
	free     *freelist
	closed   atomic.Bool

	// syncWrites makes every page write fsync before returning (the
	// per-write durability regime); writes/syncs count activity either
	// way so callers can see what the option costs.
	syncWrites    atomic.Bool
	writes, syncs atomic.Uint64

	mu    sync.Mutex // guards alloc map
	alloc map[base.PageID]bool
	latch [shardCount]sync.RWMutex
}

// NewFileStore creates or truncates path and returns an empty file store.
func NewFileStore(path string, pageSize int) (*FileStore, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	return &FileStore{
		pageSize: pageSize,
		f:        f,
		free:     newFreelist(),
		alloc:    make(map[base.PageID]bool),
	}, nil
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.pageSize }

func (s *FileStore) allocated(id base.PageID) bool {
	s.mu.Lock()
	ok := s.alloc[id]
	s.mu.Unlock()
	return ok
}

// Read implements Store.
func (s *FileStore) Read(id base.PageID, buf []byte) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	if err := checkBuf(s.pageSize, buf); err != nil {
		return err
	}
	if !s.allocated(id) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	l := &s.latch[shardOf(id)]
	l.RLock()
	_, err := s.f.ReadAt(buf, int64(id-1)*int64(s.pageSize))
	l.RUnlock()
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// Write implements Store.
func (s *FileStore) Write(id base.PageID, buf []byte) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	if err := checkBuf(s.pageSize, buf); err != nil {
		return err
	}
	if !s.allocated(id) {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	l := &s.latch[shardOf(id)]
	l.Lock()
	s.writes.Add(1)
	_, err := s.f.WriteAt(buf, int64(id-1)*int64(s.pageSize))
	if err == nil && s.syncWrites.Load() {
		s.syncs.Add(1)
		err = s.f.Sync()
	}
	l.Unlock()
	if err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// SetSyncWrites toggles fsync-on-write: when on, Write returns only
// after the page is on stable storage, making each page write
// individually durable (the paper's indivisible put taken literally)
// at the cost of one fsync per write. Off by default; most durable
// deployments want the WAL's group commit instead and leave page
// writes to accumulate between checkpoints.
func (s *FileStore) SetSyncWrites(on bool) { s.syncWrites.Store(on) }

// FileStoreStats counts page write attempts and the fsyncs attempted
// for them (both count even when the underlying call fails, so the
// cost of the option is visible either way).
type FileStoreStats struct {
	Writes uint64
	Syncs  uint64
}

// Stats returns a snapshot of write/sync counters.
func (s *FileStore) Stats() FileStoreStats {
	return FileStoreStats{Writes: s.writes.Load(), Syncs: s.syncs.Load()}
}

// Allocate implements Store.
func (s *FileStore) Allocate() (base.PageID, error) {
	if s.closed.Load() {
		return base.NilPage, base.ErrClosed
	}
	id := s.free.alloc()
	zero := make([]byte, s.pageSize)
	l := &s.latch[shardOf(id)]
	l.Lock()
	_, err := s.f.WriteAt(zero, int64(id-1)*int64(s.pageSize))
	l.Unlock()
	if err != nil {
		s.free.free(id)
		return base.NilPage, fmt.Errorf("storage: zero page %d: %w", id, err)
	}
	s.mu.Lock()
	s.alloc[id] = true
	s.mu.Unlock()
	return id, nil
}

// Free implements Store.
func (s *FileStore) Free(id base.PageID) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	s.mu.Lock()
	if !s.alloc[id] {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	delete(s.alloc, id)
	s.mu.Unlock()
	s.free.free(id)
	return nil
}

// Pages implements Store.
func (s *FileStore) Pages() int {
	s.mu.Lock()
	n := len(s.alloc)
	s.mu.Unlock()
	return n
}

// Close implements Store.
func (s *FileStore) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	return s.f.Close()
}

// Sync flushes file contents to stable storage.
func (s *FileStore) Sync() error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	return s.f.Sync()
}
