package storage

import (
	"errors"
	"fmt"
	"sync"

	"blinktree/internal/base"
)

// DefaultPageSize is the page size used when an Options.PageSize is zero.
const DefaultPageSize = 4096

// Errors returned by stores.
var (
	// ErrBadPage is returned for out-of-range or unallocated page ids.
	ErrBadPage = errors.New("storage: bad page id")
	// ErrShortPage is returned when a caller's buffer is not PageSize bytes.
	ErrShortPage = errors.New("storage: buffer is not page sized")
)

// Store is a flat array of fixed-size pages. All methods are safe for
// concurrent use. Read and Write of the same page are mutually atomic:
// a Read never observes a torn Write.
type Store interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// Read copies page id into buf, which must be exactly PageSize bytes.
	Read(id base.PageID, buf []byte) error
	// Write copies buf (exactly PageSize bytes) into page id.
	Write(id base.PageID, buf []byte) error
	// Allocate returns a fresh zeroed page.
	Allocate() (base.PageID, error)
	// Free returns a page to the allocator. Reading a freed page is an
	// error until it is reallocated.
	Free(id base.PageID) error
	// Pages returns the number of currently allocated pages.
	Pages() int
	// Close releases resources.
	Close() error
}

// freelist is a simple LIFO page-id recycler shared by the stores.
type freelist struct {
	mu   sync.Mutex
	ids  []base.PageID
	next base.PageID // next never-used id; ids start at 1 (0 is nil)
}

func newFreelist() *freelist { return &freelist{next: 1} }

func (f *freelist) alloc() base.PageID {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := len(f.ids); n > 0 {
		id := f.ids[n-1]
		f.ids = f.ids[:n-1]
		return id
	}
	id := f.next
	f.next++
	return id
}

func (f *freelist) free(id base.PageID) {
	f.mu.Lock()
	f.ids = append(f.ids, id)
	f.mu.Unlock()
}

func (f *freelist) highWater() base.PageID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

func (f *freelist) freeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ids)
}

// shardCount is the number of page-latch shards used by MemStore. It
// bounds memory while keeping unrelated pages from contending.
const shardCount = 64

func shardOf(id base.PageID) int { return int(id % shardCount) }

func checkBuf(size int, buf []byte) error {
	if len(buf) != size {
		return fmt.Errorf("%w: got %d bytes, want %d", ErrShortPage, len(buf), size)
	}
	return nil
}
