package storage

import (
	"sync/atomic"
	"time"

	"blinktree/internal/base"
)

// Metered wraps a Store and counts page operations. It is the I/O probe
// used by the experiment harness: the paper's efficiency arguments are
// about how many page reads, writes and lock acquisitions each algorithm
// needs, which Metered makes observable independent of wall-clock noise.
type Metered struct {
	under Store

	reads, writes, allocs, frees atomic.Uint64
}

// NewMetered wraps under with operation counters.
func NewMetered(under Store) *Metered { return &Metered{under: under} }

// PageSize implements Store.
func (m *Metered) PageSize() int { return m.under.PageSize() }

// Read implements Store.
func (m *Metered) Read(id base.PageID, buf []byte) error {
	m.reads.Add(1)
	return m.under.Read(id, buf)
}

// Write implements Store.
func (m *Metered) Write(id base.PageID, buf []byte) error {
	m.writes.Add(1)
	return m.under.Write(id, buf)
}

// Allocate implements Store.
func (m *Metered) Allocate() (base.PageID, error) {
	m.allocs.Add(1)
	return m.under.Allocate()
}

// Free implements Store.
func (m *Metered) Free(id base.PageID) error {
	m.frees.Add(1)
	return m.under.Free(id)
}

// Pages implements Store.
func (m *Metered) Pages() int { return m.under.Pages() }

// Close implements Store.
func (m *Metered) Close() error { return m.under.Close() }

// IOStats is a snapshot of the counters.
type IOStats struct {
	Reads, Writes, Allocs, Frees uint64
}

// Stats returns the current counters.
func (m *Metered) Stats() IOStats {
	return IOStats{
		Reads:  m.reads.Load(),
		Writes: m.writes.Load(),
		Allocs: m.allocs.Load(),
		Frees:  m.frees.Load(),
	}
}

// Reset zeroes the counters.
func (m *Metered) Reset() {
	m.reads.Store(0)
	m.writes.Store(0)
	m.allocs.Store(0)
	m.frees.Store(0)
}

// Latency wraps a Store and sleeps for a fixed duration on every Read
// and Write, simulating the disk of the paper's era. It turns the
// in-memory substrate into an I/O-bound one so that lock hold times and
// link-chase penalties become visible in wall-clock benchmarks.
type Latency struct {
	under      Store
	read, writ time.Duration
}

// NewLatency wraps under, adding read and write delay per operation.
func NewLatency(under Store, read, write time.Duration) *Latency {
	return &Latency{under: under, read: read, writ: write}
}

// PageSize implements Store.
func (l *Latency) PageSize() int { return l.under.PageSize() }

// Read implements Store.
func (l *Latency) Read(id base.PageID, buf []byte) error {
	if l.read > 0 {
		time.Sleep(l.read)
	}
	return l.under.Read(id, buf)
}

// Write implements Store.
func (l *Latency) Write(id base.PageID, buf []byte) error {
	if l.writ > 0 {
		time.Sleep(l.writ)
	}
	return l.under.Write(id, buf)
}

// Allocate implements Store.
func (l *Latency) Allocate() (base.PageID, error) { return l.under.Allocate() }

// Free implements Store.
func (l *Latency) Free(id base.PageID) error { return l.under.Free(id) }

// Pages implements Store.
func (l *Latency) Pages() int { return l.under.Pages() }

// Close implements Store.
func (l *Latency) Close() error { return l.under.Close() }
