package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"blinktree/internal/base"
)

// storeFactories builds each Store implementation for table-driven tests.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore(256) },
		"file": func() Store {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "pages.db"), 256)
			if err != nil {
				t.Fatalf("NewFileStore: %v", err)
			}
			return fs
		},
		"bufferpool": func() Store {
			fs, err := NewFileStore(filepath.Join(t.TempDir(), "pool.db"), 256)
			if err != nil {
				t.Fatalf("NewFileStore: %v", err)
			}
			return NewBufferPool(fs, 8)
		},
		"metered": func() Store { return NewMetered(NewMemStore(256)) },
		"latency": func() Store { return NewLatency(NewMemStore(256), 0, 0) },
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()

			id, err := s.Allocate()
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			if id == base.NilPage {
				t.Fatal("Allocate returned the nil page")
			}
			out := make([]byte, s.PageSize())
			if err := s.Read(id, out); err != nil {
				t.Fatalf("Read fresh page: %v", err)
			}
			if !bytes.Equal(out, make([]byte, s.PageSize())) {
				t.Fatal("fresh page not zeroed")
			}

			in := make([]byte, s.PageSize())
			for i := range in {
				in[i] = byte(i * 7)
			}
			if err := s.Write(id, in); err != nil {
				t.Fatalf("Write: %v", err)
			}
			if err := s.Read(id, out); err != nil {
				t.Fatalf("Read: %v", err)
			}
			if !bytes.Equal(in, out) {
				t.Fatal("read back differs from written")
			}
		})
	}
}

func TestStoreBadPage(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			buf := make([]byte, s.PageSize())
			if err := s.Read(base.PageID(99), buf); err == nil {
				t.Fatal("Read of unallocated page must fail")
			}
			if err := s.Write(base.PageID(99), buf); err == nil {
				t.Fatal("Write of unallocated page must fail")
			}
			if err := s.Read(base.NilPage, buf); err == nil {
				t.Fatal("Read of nil page must fail")
			}
		})
	}
}

func TestStoreShortBuffer(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			id, _ := s.Allocate()
			if err := s.Read(id, make([]byte, 3)); err == nil {
				t.Fatal("short read buffer must fail")
			}
			if err := s.Write(id, make([]byte, 3)); err == nil {
				t.Fatal("short write buffer must fail")
			}
		})
	}
}

func TestStoreFreeAndReuse(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			id, _ := s.Allocate()
			in := make([]byte, s.PageSize())
			in[0] = 0xFF
			if err := s.Write(id, in); err != nil {
				t.Fatal(err)
			}
			if err := s.Free(id); err != nil {
				t.Fatalf("Free: %v", err)
			}
			if err := s.Free(id); err == nil {
				t.Fatal("double Free must fail")
			}
			buf := make([]byte, s.PageSize())
			if err := s.Read(id, buf); err == nil {
				t.Fatal("Read of freed page must fail")
			}
			id2, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id2 != id {
				t.Fatalf("expected freelist reuse: got %d want %d", id2, id)
			}
			if err := s.Read(id2, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != 0 {
				t.Fatal("reused page not zeroed")
			}
		})
	}
}

func TestStorePagesCount(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			var ids []base.PageID
			for i := 0; i < 10; i++ {
				id, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			if got := s.Pages(); got != 10 {
				t.Fatalf("Pages = %d, want 10", got)
			}
			for _, id := range ids[:4] {
				if err := s.Free(id); err != nil {
					t.Fatal(err)
				}
			}
			if got := s.Pages(); got != 6 {
				t.Fatalf("Pages after frees = %d, want 6", got)
			}
		})
	}
}

func TestStoreClosed(t *testing.T) {
	s := NewMemStore(128)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := s.Read(1, buf); err == nil {
		t.Fatal("Read after Close must fail")
	}
	if _, err := s.Allocate(); err == nil {
		t.Fatal("Allocate after Close must fail")
	}
}

// TestStoreConcurrentDistinctPages hammers distinct pages from many
// goroutines; run with -race this validates the latching scheme.
func TestStoreConcurrentDistinctPages(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			defer s.Close()
			const workers = 8
			ids := make([]base.PageID, workers)
			for i := range ids {
				id, err := s.Allocate()
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					in := make([]byte, s.PageSize())
					out := make([]byte, s.PageSize())
					for i := 0; i < 200; i++ {
						for j := range in {
							in[j] = byte(w*1000 + i)
						}
						if err := s.Write(ids[w], in); err != nil {
							t.Errorf("write: %v", err)
							return
						}
						if err := s.Read(ids[w], out); err != nil {
							t.Errorf("read: %v", err)
							return
						}
						if !bytes.Equal(in, out) {
							t.Errorf("worker %d iteration %d: torn page", w, i)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestStoreNoTornReads checks the get/put indivisibility contract of the
// paper's model: concurrent whole-page writes never yield a mixed image.
func TestStoreNoTornReads(t *testing.T) {
	s := NewMemStore(512)
	defer s.Close()
	id, _ := s.Allocate()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, s.PageSize())
		v := byte(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range buf {
				buf[i] = v
			}
			if err := s.Write(id, buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			v++
		}
	}()

	buf := make([]byte, s.PageSize())
	for i := 0; i < 2000; i++ {
		if err := s.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		first := buf[0]
		for j, b := range buf {
			if b != first {
				t.Fatalf("torn read at byte %d: %d != %d", j, b, first)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestBufferPoolWritebackAndFlush(t *testing.T) {
	under := NewMetered(NewMemStore(128))
	pool := NewBufferPool(under, 4)

	var ids []base.PageID
	for i := 0; i < 12; i++ {
		id, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 128)
		buf[0] = byte(i + 1)
		if err := pool.Write(id, buf); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Capacity 4 < 12 pages: evictions must have written back.
	st := pool.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", st)
	}
	if st.Resident > 4 {
		t.Fatalf("resident %d exceeds capacity", st.Resident)
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// All data must be readable via the pool (faulting from under).
	buf := make([]byte, 128)
	for i, id := range ids {
		if err := pool.Read(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d: got %d want %d", id, buf[0], i+1)
		}
	}
	// A repeated read of the most recent page must hit the cache.
	if err := pool.Read(ids[len(ids)-1], buf); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Hits == 0 {
		t.Fatal("expected some cache hits")
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMeteredCounts(t *testing.T) {
	m := NewMetered(NewMemStore(128))
	defer m.Close()
	id, _ := m.Allocate()
	buf := make([]byte, 128)
	_ = m.Write(id, buf)
	_ = m.Read(id, buf)
	_ = m.Read(id, buf)
	_ = m.Free(id)
	st := m.Stats()
	if st.Reads != 2 || st.Writes != 1 || st.Allocs != 1 || st.Frees != 1 {
		t.Fatalf("unexpected counts: %+v", st)
	}
	m.Reset()
	if st := m.Stats(); st != (IOStats{}) {
		t.Fatalf("Reset did not zero: %+v", st)
	}
}

// Property: writing arbitrary page images round-trips on every store.
func TestStoreRoundTripProperty(t *testing.T) {
	s := NewMemStore(64)
	defer s.Close()
	id, _ := s.Allocate()
	f := func(img [64]byte) bool {
		if err := s.Write(id, img[:]); err != nil {
			return false
		}
		out := make([]byte, 64)
		if err := s.Read(id, out); err != nil {
			return false
		}
		return bytes.Equal(img[:], out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreSync(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "s.db"), 128)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if _, err := fs.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
}
