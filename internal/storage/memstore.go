package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"blinktree/internal/base"
)

// MemStore keeps all pages in memory. It is the default substrate for
// tests and benchmarks. Page reads and writes copy the page under a
// sharded RW latch, so a reader never observes a torn write — the
// indivisibility the paper's get/put model requires.
type MemStore struct {
	pageSize int
	free     *freelist
	closed   atomic.Bool

	mu    sync.RWMutex // guards the pages slice header (growth)
	latch [shardCount]sync.RWMutex
	pages []memPage
}

type memPage struct {
	data  []byte
	alloc bool
}

// NewMemStore returns an empty in-memory store with the given page size
// (DefaultPageSize if zero or negative).
func NewMemStore(pageSize int) *MemStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemStore{pageSize: pageSize, free: newFreelist()}
}

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.pageSize }

func (s *MemStore) page(id base.PageID) (*memPage, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := int(id)
	if i <= 0 || i >= len(s.pages)+1 || !s.pages[i-1].alloc {
		return nil, fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	return &s.pages[i-1], nil
}

// Read implements Store.
func (s *MemStore) Read(id base.PageID, buf []byte) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	if err := checkBuf(s.pageSize, buf); err != nil {
		return err
	}
	p, err := s.page(id)
	if err != nil {
		return err
	}
	l := &s.latch[shardOf(id)]
	l.RLock()
	copy(buf, p.data)
	l.RUnlock()
	return nil
}

// Write implements Store.
func (s *MemStore) Write(id base.PageID, buf []byte) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	if err := checkBuf(s.pageSize, buf); err != nil {
		return err
	}
	p, err := s.page(id)
	if err != nil {
		return err
	}
	l := &s.latch[shardOf(id)]
	l.Lock()
	copy(p.data, buf)
	l.Unlock()
	return nil
}

// Allocate implements Store.
func (s *MemStore) Allocate() (base.PageID, error) {
	if s.closed.Load() {
		return base.NilPage, base.ErrClosed
	}
	id := s.free.alloc()
	s.mu.Lock()
	for int(id) > len(s.pages) {
		s.pages = append(s.pages, memPage{})
	}
	p := &s.pages[id-1]
	if p.data == nil {
		p.data = make([]byte, s.pageSize)
	} else {
		// A recycled page may still be raced by a straggling reader that
		// held its id across Free; clear under the page latch so such a
		// reader sees a whole before- or after-image, never a torn one.
		l := &s.latch[shardOf(id)]
		l.Lock()
		clear(p.data)
		l.Unlock()
	}
	p.alloc = true
	s.mu.Unlock()
	return id, nil
}

// Free implements Store.
func (s *MemStore) Free(id base.PageID) error {
	if s.closed.Load() {
		return base.ErrClosed
	}
	s.mu.Lock()
	i := int(id)
	if i <= 0 || i > len(s.pages) || !s.pages[i-1].alloc {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	s.pages[i-1].alloc = false
	s.mu.Unlock()
	s.free.free(id)
	return nil
}

// Pages implements Store.
func (s *MemStore) Pages() int {
	return int(s.free.highWater()) - 1 - s.free.freeCount()
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.closed.Store(true)
	return nil
}
