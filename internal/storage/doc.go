// Package storage provides the page-store substrate beneath the trees:
// the "secondary storage" of the paper's model (§2.2). A Store hands
// out fixed-size pages addressed by base.PageID and guarantees that
// Read and Write of a single page are indivisible with respect to each
// other — the property the paper's get/put primitives require, and the
// only property the correctness proofs lean on (no ordering across
// pages, no global atomicity).
//
// Map from code to the model:
//
//   - store.go: the Store interface (Allocate/Read/Write/Free), i.e.
//     the paper's page-granular secondary storage with indivisible
//     get/put (§2.2).
//   - memstore.go: MemStore keeps pages in memory, copying under a
//     sharded lock — the configuration every in-memory tree and test
//     uses.
//   - filestore.go: FileStore maps one page per fixed-size slot of a
//     single file, the durable deployment.
//   - bufferpool.go: BufferPool is a bounded LRU write-back cache
//     wrapped around another Store — the "main memory holds a few
//     pages at a time" assumption (§2.2) made explicit and enforced.
//     It is the disk-native serving path: at most Capacity frames
//     resident, everything else faulted in on demand.
//   - wrappers.go: Metered counts operations and Latency injects
//     artificial per-op delay, used by the experiment harness to
//     simulate disks.
//
// The node layer (internal/node) sits directly above: it serializes
// tree nodes through the page codec into whichever Store is
// configured. Each shard of a sharded index (internal/shard) owns a
// disjoint Store — with a file-backed configuration, shard i lives in
// its own "<path>.shard<i>" file.
//
// # Pin/unpin and eviction
//
// BufferPool offers two regimes. As a plain Store it copies pages in
// and out. For zero-copy serving, Pin(id) returns a *Frame whose
// bytes the caller may read or mutate in place, under these rules:
//
//   - A pinned frame is never evicted and its id-to-frame binding
//     never changes. Pin and Unpin must pair exactly: unpinning with
//     no outstanding pin panics (it would license eviction of a frame
//     someone may still use), and pins still outstanding at Close are
//     reported as leaks.
//   - Frame bytes are accessed only while pinned AND holding the
//     frame latch: RLock to read or decode, Lock to mutate or encode,
//     MarkDirty after mutating. Release the latch before Unpin.
//   - A frame's cached decoded object (Frame.SetCachedObject) is set
//     only while holding the latch, so it can never describe bytes
//     other than the frame's current content.
//   - Eviction picks the least-recently-used frame with zero pins,
//     writes it back first if dirty, and only then reuses the slot —
//     so every page is at all times either resident or re-fetchable
//     from the underlying store. Eviction takes no latch: a zero pin
//     count under the pool lock already excludes latch holders.
//   - Lock order: the pool's internal lock may be taken, then a frame
//     latch (Flush does this). Latch holders never call back into the
//     pool except Unpin after unlatching.
//
// How this composes with the paper's §5.3 reclamation epochs, one
// layer up: the tree never holds frame pointers across operations
// (internal/node decodes into fresh Node values under a short pin),
// so a lock-free search racing an eviction either finds the page
// resident or faults it back in — both serve the bytes the last
// writer put there. A page retired by compression is Freed only after
// every epoch that could still reach it has exited; the pool drops
// the frame without write-back at that point. The one actor outside
// the epochs is the pool's own read-ahead worker (Prefetch), whose
// stale hints may pin a page as it is being freed — Free therefore
// defers the underlying free to the last Unpin instead of failing.
//
// # Durability contract
//
// A Store guarantees indivisible single-page reads and writes, and
// nothing more — exactly the paper's model. In particular a completed
// Write is NOT durable: FileStore hands pages to the OS page cache,
// BufferPool may hold them dirty in memory until eviction or Flush,
// and a crash can lose or tear any set of unflushed pages in any
// order. The module's crash-consistency story therefore does not rest
// on the page store at all; it rests on internal/wal, which logs
// logical operations with per-record CRCs and group-commit fsync, and
// rebuilds the page-level state from "checkpoint + log suffix" on
// recovery. Page files under a durable configuration are rebuilt, not
// trusted.
//
// Two knobs harden the page layer itself when that is what an
// experiment wants to measure: FileStore.SetSyncWrites makes each
// page write individually fsynced (its Stats count writes and syncs),
// and BufferPool.Flush forces dirty frames down. Neither is a
// substitute for the WAL: without a log, a crash between two related
// page writes still leaves a torn multi-page structure.
package storage
