// Package storage provides the page-store substrate beneath the trees:
// the "secondary storage" of the paper's model (§2.2). A Store hands
// out fixed-size pages addressed by base.PageID and guarantees that
// Read and Write of a single page are indivisible with respect to each
// other — the property the paper's get/put primitives require, and the
// only property the correctness proofs lean on (no ordering across
// pages, no global atomicity).
//
// Map from code to the model:
//
//   - store.go: the Store interface (Allocate/Read/Write/Free), i.e.
//     the paper's page-granular secondary storage with indivisible
//     get/put (§2.2).
//   - memstore.go: MemStore keeps pages in memory, copying under a
//     sharded lock — the configuration every in-memory tree and test
//     uses.
//   - filestore.go: FileStore maps one page per fixed-size slot of a
//     single file, the durable deployment.
//   - bufferpool.go: BufferPool is an LRU write-back cache wrapped
//     around another Store — the "main memory holds a few pages at a
//     time" assumption (§2.2) made explicit and bounded.
//   - wrappers.go: Metered counts operations and Latency injects
//     artificial per-op delay, used by the experiment harness to
//     simulate disks.
//
// The node layer (internal/node) sits directly above: it serializes
// tree nodes through the page codec into whichever Store is
// configured. Each shard of a sharded index (internal/shard) owns a
// disjoint Store — with a file-backed configuration, shard i lives in
// its own "<path>.shard<i>" file.
package storage
