// Package storage provides the page-store substrate beneath the trees:
// the "secondary storage" of the paper's model (§2.2). A Store hands
// out fixed-size pages addressed by base.PageID and guarantees that
// Read and Write of a single page are indivisible with respect to each
// other — the property the paper's get/put primitives require, and the
// only property the correctness proofs lean on (no ordering across
// pages, no global atomicity).
//
// Map from code to the model:
//
//   - store.go: the Store interface (Allocate/Read/Write/Free), i.e.
//     the paper's page-granular secondary storage with indivisible
//     get/put (§2.2).
//   - memstore.go: MemStore keeps pages in memory, copying under a
//     sharded lock — the configuration every in-memory tree and test
//     uses.
//   - filestore.go: FileStore maps one page per fixed-size slot of a
//     single file, the durable deployment.
//   - bufferpool.go: BufferPool is an LRU write-back cache wrapped
//     around another Store — the "main memory holds a few pages at a
//     time" assumption (§2.2) made explicit and bounded.
//   - wrappers.go: Metered counts operations and Latency injects
//     artificial per-op delay, used by the experiment harness to
//     simulate disks.
//
// The node layer (internal/node) sits directly above: it serializes
// tree nodes through the page codec into whichever Store is
// configured. Each shard of a sharded index (internal/shard) owns a
// disjoint Store — with a file-backed configuration, shard i lives in
// its own "<path>.shard<i>" file.
//
// # Durability contract
//
// A Store guarantees indivisible single-page reads and writes, and
// nothing more — exactly the paper's model. In particular a completed
// Write is NOT durable: FileStore hands pages to the OS page cache,
// BufferPool may hold them dirty in memory until eviction or Flush,
// and a crash can lose or tear any set of unflushed pages in any
// order. The module's crash-consistency story therefore does not rest
// on the page store at all; it rests on internal/wal, which logs
// logical operations with per-record CRCs and group-commit fsync, and
// rebuilds the page-level state from "checkpoint + log suffix" on
// recovery. Page files under a durable configuration are rebuilt, not
// trusted.
//
// Two knobs harden the page layer itself when that is what an
// experiment wants to measure: FileStore.SetSyncWrites makes each
// page write individually fsynced (its Stats count writes and syncs),
// and BufferPool.Flush forces dirty frames down. Neither is a
// substitute for the WAL: without a log, a crash between two related
// page writes still leaves a torn multi-page structure.
package storage
