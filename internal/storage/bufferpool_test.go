package storage

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"blinktree/internal/base"
)

// recorder wraps a Store and records the order of operations reaching
// it, so tests can assert write-back ordering, not just final content.
type recorder struct {
	Store
	mu     sync.Mutex
	events []recEvent
}

type recEvent struct {
	op string // "read", "write"
	id base.PageID
}

func (r *recorder) Read(id base.PageID, buf []byte) error {
	r.mu.Lock()
	r.events = append(r.events, recEvent{"read", id})
	r.mu.Unlock()
	return r.Store.Read(id, buf)
}

func (r *recorder) Write(id base.PageID, buf []byte) error {
	r.mu.Lock()
	r.events = append(r.events, recEvent{"write", id})
	r.mu.Unlock()
	return r.Store.Write(id, buf)
}

func (r *recorder) log() []recEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]recEvent(nil), r.events...)
}

func pageContent(t *testing.T, size int, seed uint64) []byte {
	t.Helper()
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf, seed)
	return buf
}

func allocN(t *testing.T, st Store, n int) []base.PageID {
	t.Helper()
	ids := make([]base.PageID, n)
	for i := range ids {
		id, err := st.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// TestBufferPoolWritebackBeforeReuse pins the ordering recovery
// correctness leans on: a dirty frame's content reaches the underlying
// store before its frame is reused for another page.
func TestBufferPoolWritebackBeforeReuse(t *testing.T) {
	rec := &recorder{Store: NewMemStore(128)}
	pool := NewBufferPool(rec, 4)
	ids := allocN(t, pool, 9)

	// Fill the pool: ids[0..3] resident and clean (faulted by Read).
	buf := make([]byte, pool.PageSize())
	for _, id := range ids[:4] {
		if err := pool.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Dirty ids[0]; it moves to MRU.
	dirty := pageContent(t, pool.PageSize(), 0xD1127)
	if err := pool.Write(ids[0], dirty); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	rec.events = nil // only watch what eviction causes from here on
	rec.mu.Unlock()

	// Touch three new pages: evicts the clean ids[1..3], no write-back.
	for _, id := range ids[4:7] {
		if err := pool.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range rec.log() {
		if e.op == "write" {
			t.Fatalf("clean eviction caused write-back of page %d", e.id)
		}
	}

	// Two more pages: the first evicts dirty ids[0]. Its write-back
	// must appear in the event log before the fault-in read that
	// reuses the frame.
	for _, id := range ids[7:9] {
		if err := pool.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	events := rec.log()
	wrote, lastRead := -1, -1
	for i, e := range events {
		if e.op == "write" && e.id == ids[0] {
			wrote = i
		}
		if e.op == "read" && e.id == ids[8] {
			lastRead = i
		}
	}
	if wrote < 0 {
		t.Fatalf("dirty page %d never written back: %v", ids[0], events)
	}
	if lastRead < 0 || wrote > lastRead {
		t.Fatalf("write-back of %d at %d does not precede reuse read at %d: %v",
			ids[0], wrote, lastRead, events)
	}
	// And the content that landed must be the dirty content.
	got := make([]byte, rec.PageSize())
	if err := rec.Store.Read(ids[0], got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(dirty) {
		t.Fatal("written-back content is not the latest write")
	}

	st := pool.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	if st.Evictions < 4 {
		t.Fatalf("evictions = %d, want ≥ 4", st.Evictions)
	}
}

// TestBufferPoolOverwriteCoalesces: multiple writes to a resident page
// produce one write-back carrying the last content.
func TestBufferPoolOverwriteCoalesces(t *testing.T) {
	rec := &recorder{Store: NewMemStore(128)}
	pool := NewBufferPool(rec, 4)
	ids := allocN(t, pool, 1)
	var last []byte
	for i := 0; i < 10; i++ {
		last = pageContent(t, pool.PageSize(), uint64(i)+7)
		if err := pool.Write(ids[0], last); err != nil {
			t.Fatal(err)
		}
	}
	rec.mu.Lock()
	rec.events = nil
	rec.mu.Unlock()
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, e := range rec.log() {
		if e.op == "write" && e.id == ids[0] {
			writes++
		}
	}
	if writes != 1 {
		t.Fatalf("flush produced %d writes, want 1 (coalesced)", writes)
	}
	got := make([]byte, rec.PageSize())
	if err := rec.Store.Read(ids[0], got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(last) {
		t.Fatal("flushed content is not the last write")
	}
	// A second flush must be a no-op: the frame is clean now.
	rec.mu.Lock()
	rec.events = nil
	rec.mu.Unlock()
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.log()) != 0 {
		t.Fatal("second flush rewrote clean frames")
	}
}

// TestBufferPoolFreeSkipsWriteback: freeing a dirty page drops its
// frame without writing dead content back.
func TestBufferPoolFreeSkipsWriteback(t *testing.T) {
	rec := &recorder{Store: NewMemStore(128)}
	pool := NewBufferPool(rec, 4)
	ids := allocN(t, pool, 1)
	if err := pool.Write(ids[0], pageContent(t, pool.PageSize(), 99)); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	rec.events = nil
	rec.mu.Unlock()
	if err := pool.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.log() {
		if e.op == "write" {
			t.Fatalf("free caused write-back: %v", e)
		}
	}
}

// TestBufferPoolConcurrentWriteback hammers a tiny pool from many
// goroutines — every operation evicts — and verifies that after a
// final flush the underlying store holds each page's last write.
// Run with -race, this is also the data-race probe for the
// eviction/write-back path recovery depends on.
func TestBufferPoolConcurrentWriteback(t *testing.T) {
	under := NewMemStore(128)
	pool := NewBufferPool(under, 4)
	const workers = 8
	const pagesPer = 8
	const rounds = 200
	ids := allocN(t, pool, workers*pagesPer)

	var wg sync.WaitGroup
	finals := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := ids[w*pagesPer : (w+1)*pagesPer]
			finals[w] = make([]uint64, pagesPer)
			buf := make([]byte, pool.PageSize())
			for r := 0; r < rounds; r++ {
				p := (r*7 + w) % pagesPer
				seed := uint64(w)<<32 | uint64(r)
				binary.LittleEndian.PutUint64(buf, seed)
				if err := pool.Write(mine[p], buf); err != nil {
					t.Error(err)
					return
				}
				finals[w][p] = seed
				// Interleave reads of a neighbour's page to force
				// cross-goroutine frame churn.
				other := ids[((w+1)%workers)*pagesPer+p]
				if err := pool.Read(other, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, under.PageSize())
	for w := 0; w < workers; w++ {
		for p := 0; p < pagesPer; p++ {
			id := ids[w*pagesPer+p]
			if err := under.Read(id, buf); err != nil {
				t.Fatal(err)
			}
			if got := binary.LittleEndian.Uint64(buf); got != finals[w][p] {
				t.Fatalf("page %d: got %#x, want %#x", id, got, finals[w][p])
			}
		}
	}
	st := pool.Stats()
	if st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected churn, got %+v", st)
	}
	t.Log(fmt.Sprintf("pool churn: %+v", st))
}

// TestBufferPoolPinBlocksEviction fills a tiny pool around one pinned
// frame and verifies the pinned frame survives arbitrary churn: its
// bytes stay valid in place while every unpinned frame cycles out.
func TestBufferPoolPinnedNeverEvicted(t *testing.T) {
	rec := &recorder{Store: NewMemStore(128)}
	pool := NewBufferPool(rec, 4)
	ids := allocN(t, pool, 12)

	want := pageContent(t, pool.PageSize(), 0xCAFE)
	if err := pool.Write(ids[0], want); err != nil {
		t.Fatal(err)
	}
	fr, err := pool.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	// Churn through 3x the capacity: every other frame must cycle.
	buf := make([]byte, pool.PageSize())
	for _, id := range ids[1:] {
		if err := pool.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Fatal("churn caused no evictions; the test is vacuous")
	}
	if st.Pinned != 1 || st.PinnedHighWater < 1 {
		t.Fatalf("pin accounting: %+v", st)
	}
	// The pinned page was never evicted: no write-back of it reached the
	// underlying store, and its frame bytes are still the dirty content.
	for _, e := range rec.log() {
		if e.op == "write" && e.id == ids[0] {
			t.Fatal("pinned dirty frame was written back (evicted?)")
		}
	}
	fr.RLock()
	got := string(fr.Data())
	fr.RUnlock()
	if got != string(want) {
		t.Fatal("pinned frame content changed under churn")
	}
	pool.Unpin(fr)
	if st := pool.Stats(); st.Pinned != 0 {
		t.Fatalf("pinned = %d after unpin, want 0", st.Pinned)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close after clean unpin: %v", err)
	}
}

// TestBufferPoolAllPinnedExhausts: when every frame is pinned, a miss
// must fail loudly instead of evicting someone's in-use frame.
func TestBufferPoolAllPinnedExhausts(t *testing.T) {
	pool := NewBufferPool(NewMemStore(128), 4)
	ids := allocN(t, pool, 5)
	frames := make([]*Frame, 4)
	for i := 0; i < 4; i++ {
		fr, err := pool.Pin(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = fr
	}
	if _, err := pool.Pin(ids[4]); err == nil {
		t.Fatal("pin beyond capacity with all frames pinned succeeded")
	}
	buf := make([]byte, pool.PageSize())
	if err := pool.Read(ids[4], buf); err == nil {
		t.Fatal("read beyond capacity with all frames pinned succeeded")
	}
	frames[0].RLock() // latching a pinned frame must not deadlock the pool
	frames[0].RUnlock()
	for _, fr := range frames {
		pool.Unpin(fr)
	}
	if err := pool.Read(ids[4], buf); err != nil {
		t.Fatalf("read after unpin: %v", err)
	}
}

// TestBufferPoolUnpinWithoutPinPanics: releasing a pin that is not held
// is a caller bug the pool refuses to absorb.
func TestBufferPoolUnpinWithoutPinPanics(t *testing.T) {
	pool := NewBufferPool(NewMemStore(128), 4)
	ids := allocN(t, pool, 1)
	fr, err := pool.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(fr) // balanced
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	pool.Unpin(fr) // double: must panic
}

// TestBufferPoolLeakedPinDetectedAtClose: a Pin never released is
// reported by Close, naming the page.
func TestBufferPoolLeakedPinDetectedAtClose(t *testing.T) {
	pool := NewBufferPool(NewMemStore(128), 4)
	ids := allocN(t, pool, 2)
	if _, err := pool.Pin(ids[1]); err != nil {
		t.Fatal(err)
	}
	err := pool.Close()
	if err == nil {
		t.Fatal("close with a leaked pin returned nil")
	}
	if want := fmt.Sprintf("pages [%d]", ids[1]); !strings.Contains(err.Error(), want) {
		t.Fatalf("leak error %q does not name the leaked page (%s)", err, want)
	}
}

// TestBufferPoolPrefetch: a prefetch hint faults the page in
// asynchronously, so the later demand access is a hit, and read-ahead
// never evicts a pinned frame to make room.
func TestBufferPoolPrefetch(t *testing.T) {
	pool := NewBufferPool(NewMemStore(128), 4)
	ids := allocN(t, pool, 6)
	pinned, err := pool.Pin(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		pool.Prefetch(id)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().PrefetchLoads < uint64(len(ids)-1) {
		if time.Now().After(deadline) {
			t.Fatalf("prefetch loads stuck at %+v", pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	st := pool.Stats()
	if st.Prefetches < uint64(len(ids)-1) {
		t.Fatalf("prefetches = %d, want ≥ %d", st.Prefetches, len(ids)-1)
	}
	if st.Pinned != 1 {
		t.Fatalf("prefetch disturbed pin accounting: %+v", st)
	}
	// The last prefetched pages must now be demand hits.
	buf := make([]byte, pool.PageSize())
	before := pool.Stats()
	if err := pool.Read(ids[5], buf); err != nil {
		t.Fatal(err)
	}
	after := pool.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("prefetched page was not a demand hit: before %+v after %+v", before, after)
	}
	pool.Unpin(pinned)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}
