// Package workload generates the key distributions and operation mixes
// the experiment harness drives the trees with. Generators are
// deterministic given a seed, so experiment runs are reproducible.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"blinktree/internal/base"
)

// OpKind is one logical operation type.
type OpKind uint8

// Operation kinds. The conditional kinds (OpUpsert, OpUpdate, OpCAS)
// drive the atomic read-modify-write surface of base.Tree.
const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
	OpScan
	OpUpsert
	OpUpdate
	OpCAS

	// NumOpKinds is the number of operation kinds, for per-kind
	// counters; keep it last in the block.
	NumOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpUpsert:
		return "upsert"
	case OpUpdate:
		return "update"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  base.Key
	// Hi is the scan upper bound for OpScan.
	Hi base.Key
}

// KeyDist draws keys from some distribution.
type KeyDist interface {
	// Draw returns the next key using rng.
	Draw(rng *rand.Rand) base.Key
	// Name identifies the distribution in reports.
	Name() string
}

// Uniform draws uniformly from [0, N).
type Uniform struct{ N uint64 }

// Draw implements KeyDist.
func (u Uniform) Draw(rng *rand.Rand) base.Key { return base.Key(rng.Uint64() % u.N) }

// Name implements KeyDist.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%d)", u.N) }

// Zipf draws from a Zipf distribution over [0, N): a few keys are hot.
type Zipf struct {
	N uint64
	S float64 // skew, > 1; default 1.2
}

// Name implements KeyDist.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(%d,s=%.2f)", z.N, z.skew()) }

func (z Zipf) skew() float64 {
	if z.S <= 1 {
		return 1.2
	}
	return z.S
}

// Draw implements KeyDist. A rand.Zipf is derived per call-site rng on
// first use via a small cache keyed by the rng pointer; to stay
// allocation-free we simply construct on demand — Zipf draws are not in
// the measured hot path of any experiment that cares about ns-level
// generator overhead.
func (z Zipf) Draw(rng *rand.Rand) base.Key {
	zp := rand.NewZipf(rng, z.skew(), 1, z.N-1)
	return base.Key(zp.Uint64())
}

// Sequential draws ascending keys (the classic bulk-load /
// time-ordered-insert pattern that stresses the rightmost path).
type Sequential struct{ next uint64 }

// Draw implements KeyDist. Not safe for concurrent use; give each
// worker its own.
func (s *Sequential) Draw(*rand.Rand) base.Key {
	k := s.next
	s.next++
	return base.Key(k)
}

// Name implements KeyDist.
func (s *Sequential) Name() string { return "sequential" }

// HotSet draws from a small hot range with probability HotProb and
// uniformly otherwise.
type HotSet struct {
	N       uint64
	HotN    uint64
	HotProb float64
}

// Draw implements KeyDist.
func (h HotSet) Draw(rng *rand.Rand) base.Key {
	if rng.Float64() < h.HotProb {
		return base.Key(rng.Uint64() % h.HotN)
	}
	return base.Key(rng.Uint64() % h.N)
}

// Name implements KeyDist.
func (h HotSet) Name() string {
	return fmt.Sprintf("hotset(%d/%d,p=%.2f)", h.HotN, h.N, h.HotProb)
}

// Stretch scales another distribution's draws by a constant stride,
// spreading a compact [0, N) population over the full uint64 range —
// the shape a range-partitioned (sharded) index needs so that every
// partition receives traffic. Order and collision structure of the
// base distribution are preserved provided N·Stride ≤ 2^64 (larger
// products wrap around uint64 and fold the high population back onto
// low keys); ^uint64(0)/N + 1 is the canonical full-range stride.
// Generators scale scan spans by Stride too, so Mix.ScanSpan stays in
// population units.
type Stretch struct {
	Base   KeyDist
	Stride uint64
}

// Draw implements KeyDist.
func (s Stretch) Draw(rng *rand.Rand) base.Key {
	return base.Key(uint64(s.Base.Draw(rng)) * s.Stride)
}

// Name implements KeyDist.
func (s Stretch) Name() string {
	return fmt.Sprintf("stretch(%s,x%d)", s.Base.Name(), s.Stride)
}

// Mix is an operation mix in percent; the parts must sum to 100.
type Mix struct {
	SearchPct, InsertPct, DeletePct, ScanPct int
	// UpsertPct, UpdatePct and CasPct add conditional-write traffic
	// (Upsert, Update and CompareAndSwap respectively).
	UpsertPct, UpdatePct, CasPct int
	// ScanSpan is the key width of generated scans.
	ScanSpan uint64
}

// Validate checks the mix sums to 100.
func (m Mix) Validate() error {
	s := m.SearchPct + m.InsertPct + m.DeletePct + m.ScanPct +
		m.UpsertPct + m.UpdatePct + m.CasPct
	if s != 100 {
		return fmt.Errorf("workload: mix sums to %d, want 100", s)
	}
	return nil
}

// String renders the mix for reports.
func (m Mix) String() string {
	s := fmt.Sprintf("%ds/%di/%dd/%dsc", m.SearchPct, m.InsertPct, m.DeletePct, m.ScanPct)
	if m.UpsertPct+m.UpdatePct+m.CasPct > 0 {
		s += fmt.Sprintf("/%dup/%dmod/%dcas", m.UpsertPct, m.UpdatePct, m.CasPct)
	}
	return s
}

// Common mixes used across experiments.
var (
	ReadOnly    = Mix{SearchPct: 100}
	ReadMostly  = Mix{SearchPct: 90, InsertPct: 5, DeletePct: 5}
	Balanced    = Mix{SearchPct: 50, InsertPct: 25, DeletePct: 25}
	InsertHeavy = Mix{SearchPct: 20, InsertPct: 80}
	DeleteHeavy = Mix{SearchPct: 20, InsertPct: 10, DeletePct: 70}
	WriteOnly   = Mix{InsertPct: 50, DeletePct: 50}
	// UpsertHeavy is the cache-fill shape: mostly unconditional
	// upserts with some reads and evictions.
	UpsertHeavy = Mix{SearchPct: 20, UpsertPct: 60, DeletePct: 20}
	// RMW is the read-modify-write serving shape: a blend of all the
	// conditional writes over a read-mostly base.
	RMW = Mix{SearchPct: 30, UpsertPct: 20, UpdatePct: 20, CasPct: 20, DeletePct: 10}
)

// Generator produces a deterministic operation stream. Not safe for
// concurrent use; create one per worker with distinct seeds.
type Generator struct {
	rng  *rand.Rand
	draw func() base.Key
	mix  Mix
	// spanScale converts Mix.ScanSpan from population units to key
	// units (the Stretch stride, or 1).
	spanScale uint64
}

// NewGenerator builds a Generator.
func NewGenerator(seed int64, dist KeyDist, mix Mix) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), mix: mix, spanScale: 1}
	// Unwrap a Stretch so the Zipf fast path below still fires and scan
	// spans scale with the stride.
	scale := uint64(1)
	if st, ok := dist.(Stretch); ok {
		scale = st.Stride
		g.spanScale = st.Stride
		dist = st.Base
	}
	if z, ok := dist.(Zipf); ok {
		// Bind the Zipf sampler once: rand.NewZipf precomputes tables
		// that must not be rebuilt per draw.
		zp := rand.NewZipf(g.rng, z.skew(), 1, z.N-1)
		g.draw = func() base.Key { return base.Key(zp.Uint64() * scale) }
	} else if scale != 1 {
		d := dist
		g.draw = func() base.Key { return base.Key(uint64(d.Draw(g.rng)) * scale) }
	} else {
		g.draw = func() base.Key { return dist.Draw(g.rng) }
	}
	return g, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Intn(100)
	k := g.draw()
	cut := g.mix.SearchPct
	if p < cut {
		return Op{Kind: OpSearch, Key: k}
	}
	if cut += g.mix.InsertPct; p < cut {
		return Op{Kind: OpInsert, Key: k}
	}
	if cut += g.mix.DeletePct; p < cut {
		return Op{Kind: OpDelete, Key: k}
	}
	if cut += g.mix.UpsertPct; p < cut {
		return Op{Kind: OpUpsert, Key: k}
	}
	if cut += g.mix.UpdatePct; p < cut {
		return Op{Kind: OpUpdate, Key: k}
	}
	if cut += g.mix.CasPct; p < cut {
		return Op{Kind: OpCAS, Key: k}
	}
	span := g.mix.ScanSpan
	if span == 0 {
		span = 100
	}
	hi := k + base.Key(span*g.spanScale)
	if hi < k { // saturate at the top of the keyspace
		hi = base.Key(^uint64(0))
	}
	return Op{Kind: OpScan, Key: k, Hi: hi}
}

// Apply executes op against tr, swallowing the benign ErrNotFound /
// ErrDuplicate outcomes that are part of any random mix. It reports
// whether the operation mutated the tree.
func Apply(tr base.Tree, op Op) (bool, error) {
	switch op.Kind {
	case OpSearch:
		_, err := tr.Search(op.Key)
		if err != nil && !errors.Is(err, base.ErrNotFound) {
			return false, err
		}
		return false, nil
	case OpInsert:
		err := tr.Insert(op.Key, base.Value(op.Key))
		if err != nil && !errors.Is(err, base.ErrDuplicate) {
			return false, err
		}
		return err == nil, nil
	case OpDelete:
		err := tr.Delete(op.Key)
		if err != nil && !errors.Is(err, base.ErrNotFound) {
			return false, err
		}
		return err == nil, nil
	case OpUpsert:
		_, _, err := tr.Upsert(op.Key, base.Value(op.Key))
		return err == nil, err
	case OpUpdate:
		// Identity update: exercises the atomic read-modify-write path
		// while preserving the value==key invariant stress checks rely
		// on.
		_, err := tr.Update(op.Key, func(v base.Value) base.Value { return v })
		if err != nil && !errors.Is(err, base.ErrNotFound) {
			return false, err
		}
		return err == nil, nil
	case OpCAS:
		swapped, err := tr.CompareAndSwap(op.Key, base.Value(op.Key), base.Value(op.Key))
		if err != nil && !errors.Is(err, base.ErrNotFound) {
			return false, err
		}
		return err == nil && swapped, nil
	default:
		err := tr.Range(op.Key, op.Hi, func(base.Key, base.Value) bool { return true })
		return false, err
	}
}
