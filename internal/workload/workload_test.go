package workload

import (
	"testing"

	"blinktree/internal/base"
	"blinktree/internal/blink"
)

func TestMixValidate(t *testing.T) {
	if err := (Mix{SearchPct: 50, InsertPct: 50}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Mix{SearchPct: 50}).Validate(); err == nil {
		t.Fatal("bad mix accepted")
	}
	for _, m := range []Mix{ReadOnly, ReadMostly, Balanced, InsertHeavy, DeleteHeavy, WriteOnly} {
		if err := m.Validate(); err != nil {
			t.Fatalf("canned mix %v invalid: %v", m, err)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, err := NewGenerator(42, Uniform{N: 100}, Balanced)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(42, Uniform{N: 100}, Balanced)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("divergence at %d: %v vs %v", i, a, b)
		}
	}
	g3, _ := NewGenerator(43, Uniform{N: 100}, Balanced)
	same := 0
	for i := 0; i < 100; i++ {
		if g1.Next() == g3.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g, _ := NewGenerator(7, Uniform{N: 1000}, Mix{SearchPct: 70, InsertPct: 20, DeletePct: 10})
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	within := func(got, wantPct int) bool {
		want := n * wantPct / 100
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < n/50 // ±2%
	}
	if !within(counts[OpSearch], 70) || !within(counts[OpInsert], 20) || !within(counts[OpDelete], 10) {
		t.Fatalf("mix proportions off: %v", counts)
	}
	if counts[OpScan] != 0 {
		t.Fatal("unexpected scans")
	}
}

func TestDistributions(t *testing.T) {
	g, _ := NewGenerator(1, Uniform{N: 50}, ReadOnly)
	for i := 0; i < 1000; i++ {
		if k := g.Next().Key; k >= 50 {
			t.Fatalf("uniform out of range: %d", k)
		}
	}

	gz, _ := NewGenerator(1, Zipf{N: 1000}, ReadOnly)
	low := 0
	for i := 0; i < 1000; i++ {
		if gz.Next().Key < 10 {
			low++
		}
	}
	if low < 300 {
		t.Fatalf("zipf not skewed: only %d/1000 draws below 10", low)
	}

	seq := &Sequential{}
	gs, _ := NewGenerator(1, seq, ReadOnly)
	for i := 0; i < 100; i++ {
		if k := gs.Next().Key; k != base.Key(i) {
			t.Fatalf("sequential draw %d = %d", i, k)
		}
	}

	gh, _ := NewGenerator(1, HotSet{N: 10000, HotN: 10, HotProb: 0.9}, ReadOnly)
	hot := 0
	for i := 0; i < 1000; i++ {
		if gh.Next().Key < 10 {
			hot++
		}
	}
	if hot < 800 {
		t.Fatalf("hotset not hot: %d/1000", hot)
	}

	stride := ^uint64(0)/64 + 1
	gst, _ := NewGenerator(1, Stretch{Base: Uniform{N: 64}, Stride: stride}, ReadOnly)
	quarters := [4]int{}
	for i := 0; i < 1000; i++ {
		k := uint64(gst.Next().Key)
		if k%stride != 0 {
			t.Fatalf("stretch draw %d not on stride", k)
		}
		quarters[k/(stride*16)]++
	}
	for q, n := range quarters {
		if n == 0 {
			t.Fatalf("stretch never hit quarter %d of the keyspace", q)
		}
	}
}

func TestScanOps(t *testing.T) {
	g, _ := NewGenerator(3, Uniform{N: 100}, Mix{ScanPct: 100, ScanSpan: 25})
	op := g.Next()
	if op.Kind != OpScan || op.Hi != op.Key+25 {
		t.Fatalf("scan op wrong: %+v", op)
	}

	// Under Stretch, spans stay in population units: a 25-key window
	// over the base population spans 25 strides of stretched keyspace
	// (saturating at the top instead of wrapping).
	stride := ^uint64(0)/100 + 1
	gs, _ := NewGenerator(3, Stretch{Base: Uniform{N: 100}, Stride: stride},
		Mix{ScanPct: 100, ScanSpan: 25})
	for i := 0; i < 200; i++ {
		op := gs.Next()
		want := op.Key + base.Key(25*stride)
		if want < op.Key {
			want = base.Key(^uint64(0))
		}
		if op.Hi != want {
			t.Fatalf("stretched scan span: %+v, want hi %d", op, want)
		}
	}

	// Stretch keeps the Zipf fast path: draws must remain skewed and on
	// stride (the sampler is bound once, not rebuilt per draw). The
	// stride must match the population (N·Stride ≤ 2^64).
	zstride := ^uint64(0)/1000 + 1
	gz, _ := NewGenerator(1, Stretch{Base: Zipf{N: 1000}, Stride: zstride}, ReadOnly)
	low := 0
	for i := 0; i < 1000; i++ {
		k := uint64(gz.Next().Key)
		if k%zstride != 0 {
			t.Fatalf("stretched zipf draw %d not on stride", k)
		}
		if k/zstride < 10 {
			low++
		}
	}
	if low < 300 {
		t.Fatalf("stretched zipf not skewed: %d/1000 low draws", low)
	}
}

func TestApplyAgainstTree(t *testing.T) {
	tr, err := blink.New(blink.Config{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGenerator(5, Uniform{N: 200}, Mix{SearchPct: 25, InsertPct: 40, DeletePct: 25, ScanPct: 10, ScanSpan: 20})
	mutations := 0
	for i := 0; i < 5000; i++ {
		mutated, err := Apply(tr, g.Next())
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if mutated {
			mutations++
		}
	}
	if mutations == 0 {
		t.Fatal("no mutations applied")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 0 || tr.Len() > 200 {
		t.Fatalf("implausible Len %d", tr.Len())
	}
}

func TestOpKindString(t *testing.T) {
	if OpSearch.String() != "search" || OpScan.String() != "scan" || OpKind(9).String() == "" {
		t.Fatal("OpKind names wrong")
	}
}
