package blinktree

import (
	"fmt"
	"io"

	"blinktree/internal/snap"
)

// Snapshot stream format (little endian):
//
//	magic "BLTS" | version u32 | count u64 | count′ × (key u64, value u64) | footer
//
// The codec lives in internal/snap and is shared with the WAL
// checkpoint writer, so a checkpoint IS a snapshot. Version 2 (current)
// ends with a pairs-written u64 + CRC-32 footer so corruption and
// truncation are detected on restore; version 1 streams (no footer)
// are still read. The format is front-end agnostic: a snapshot taken
// from a single tree restores into a sharded index and vice versa,
// which is also the supported path for re-partitioning (snapshot with
// N shards, restore with M).

// writeSnapshot streams idx's pairs in ascending key order to w.
func writeSnapshot(idx Index, w io.Writer) error {
	err := snap.Write(w, idx.Len(), func(fn func(Key, Value) bool) error {
		return idx.Range(0, Key(^uint64(0)), fn)
	})
	if err != nil {
		return fmt.Errorf("blinktree: %w", err)
	}
	return nil
}

// readSnapshot loads a snapshot stream into idx. On a durable index it
// follows the BulkLoad pattern — pairs load without per-operation
// logging, then a single checkpoint makes the whole load durable —
// instead of paying one group commit per pair; Restore already
// requires a fresh index with exclusive access.
func readSnapshot(idx Index, r io.Reader) error {
	insert := idx.Insert
	finalize := func() error { return nil }
	switch v := idx.(type) {
	case *Tree:
		insert = v.eng.Tree.Insert
		finalize = v.eng.Checkpoint
	case *Sharded:
		insert = v.r.InsertDirect
		finalize = v.r.Checkpoint
	}
	err := snap.Read(r, func(k Key, v Value) error {
		return insert(k, v)
	})
	if err != nil {
		return fmt.Errorf("blinktree: %w", err)
	}
	if err := finalize(); err != nil {
		return fmt.Errorf("blinktree: %w", err)
	}
	return nil
}

// Snapshot writes a point-in-time copy of the logical data (all
// key/value pairs in ascending key order) to w, ending with a CRC
// footer that Restore verifies. Run it quiesced for an exact snapshot;
// under concurrent mutation it degrades to the scan semantics of
// Range.
func (t *Tree) Snapshot(w io.Writer) error { return writeSnapshot(t, w) }

// Restore loads a snapshot produced by Snapshot into the tree,
// verifying its integrity footer (legacy footerless streams are
// accepted). The tree must be freshly opened with exclusive access
// (existing keys colliding with snapshot keys cause ErrDuplicate). On
// a durable tree the load bypasses the per-operation log and ends
// with one checkpoint, like BulkLoad.
func (t *Tree) Restore(r io.Reader) error { return readSnapshot(t, r) }

// Snapshot writes a point-in-time copy of all shards' data, in global
// ascending key order, to w. Same semantics as Tree.Snapshot.
func (s *Sharded) Snapshot(w io.Writer) error { return writeSnapshot(s, w) }

// Restore loads a snapshot into the sharded index, routing each pair
// to its shard — snapshots move freely between shard counts and the
// single tree.
func (s *Sharded) Restore(r io.Reader) error { return readSnapshot(s, r) }
