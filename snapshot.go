package blinktree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// snapshot stream format (little endian):
//
//	magic "BLTS" | version u32 | count u64 | count × (key u64, value u64)
//
// The format is front-end agnostic: a snapshot taken from a single
// tree restores into a sharded index and vice versa, which is also the
// supported path for re-partitioning (snapshot with N shards, restore
// with M).
var snapMagic = [4]byte{'B', 'L', 'T', 'S'}

const snapVersion = 1

// writeSnapshot streams idx's pairs in ascending key order to w.
func writeSnapshot(idx Index, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(idx.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var pair [16]byte
	err := idx.Range(0, Key(^uint64(0)), func(k Key, v Value) bool {
		binary.LittleEndian.PutUint64(pair[0:], uint64(k))
		binary.LittleEndian.PutUint64(pair[8:], uint64(v))
		_, werr := bw.Write(pair[:])
		return werr == nil
	})
	if err != nil {
		return err
	}
	// The header count is advisory (it can drift under concurrent
	// mutation); Restore trusts the pair stream.
	return bw.Flush()
}

// readSnapshot loads a snapshot stream into idx via Insert.
func readSnapshot(idx Index, r io.Reader) error {
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("blinktree: snapshot header: %w", err)
	}
	if [4]byte(head[0:4]) != snapMagic {
		return fmt.Errorf("blinktree: %w: bad snapshot magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != snapVersion {
		return fmt.Errorf("blinktree: %w: snapshot version %d", ErrCorrupt, v)
	}
	var pair [16]byte
	for {
		if _, err := io.ReadFull(br, pair[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("blinktree: snapshot body: %w", err)
		}
		k := Key(binary.LittleEndian.Uint64(pair[0:]))
		v := Value(binary.LittleEndian.Uint64(pair[8:]))
		if err := idx.Insert(k, v); err != nil {
			return err
		}
	}
}

// Snapshot writes a point-in-time copy of the logical data (all
// key/value pairs in ascending key order) to w. Run it quiesced for an
// exact snapshot; under concurrent mutation it degrades to the scan
// semantics of Range.
func (t *Tree) Snapshot(w io.Writer) error { return writeSnapshot(t, w) }

// Restore loads a snapshot produced by Snapshot into the tree. The tree
// should be freshly opened (existing keys colliding with snapshot keys
// cause ErrDuplicate).
func (t *Tree) Restore(r io.Reader) error { return readSnapshot(t, r) }

// Snapshot writes a point-in-time copy of all shards' data, in global
// ascending key order, to w. Same semantics as Tree.Snapshot.
func (s *Sharded) Snapshot(w io.Writer) error { return writeSnapshot(s, w) }

// Restore loads a snapshot into the sharded index, routing each pair
// to its shard — snapshots move freely between shard counts and the
// single tree.
func (s *Sharded) Restore(r io.Reader) error { return readSnapshot(s, r) }
