package blinktree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// snapshot stream format (little endian):
//
//	magic "BLTS" | version u32 | count u64 | count × (key u64, value u64)
var snapMagic = [4]byte{'B', 'L', 'T', 'S'}

const snapVersion = 1

// Snapshot writes a point-in-time copy of the logical data (all
// key/value pairs in ascending key order) to w. Run it quiesced for an
// exact snapshot; under concurrent mutation it degrades to the scan
// semantics of Range.
func (t *Tree) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(t.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	count := uint64(0)
	var pair [16]byte
	err := t.Range(0, Key(^uint64(0)), func(k Key, v Value) bool {
		binary.LittleEndian.PutUint64(pair[0:], uint64(k))
		binary.LittleEndian.PutUint64(pair[8:], uint64(v))
		if _, err := bw.Write(pair[:]); err != nil {
			return false
		}
		count++
		return true
	})
	if err != nil {
		return err
	}
	// Rewrite an accurate count if it drifted (concurrent mutation):
	// the stream count is advisory; Restore trusts the pair stream and
	// only uses the header count for preallocation.
	return bw.Flush()
}

// Restore loads a snapshot produced by Snapshot into the tree. The tree
// should be freshly opened (existing keys colliding with snapshot keys
// cause ErrDuplicate).
func (t *Tree) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return fmt.Errorf("blinktree: snapshot header: %w", err)
	}
	if [4]byte(head[0:4]) != snapMagic {
		return fmt.Errorf("blinktree: %w: bad snapshot magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != snapVersion {
		return fmt.Errorf("blinktree: %w: snapshot version %d", ErrCorrupt, v)
	}
	var pair [16]byte
	for {
		if _, err := io.ReadFull(br, pair[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("blinktree: snapshot body: %w", err)
		}
		k := Key(binary.LittleEndian.Uint64(pair[0:]))
		v := Value(binary.LittleEndian.Uint64(pair[8:]))
		if err := t.Insert(k, v); err != nil {
			return err
		}
	}
}
