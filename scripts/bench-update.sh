#!/bin/sh
# Promote the last scripts/bench.sh run (BENCH_latest.json) as the
# committed baseline. Review the numbers first: a baseline captured
# during a slow run makes the regression gate blind.
set -eu
cd "$(dirname "$0")/.."

if [ ! -f BENCH_latest.json ]; then
    echo "bench-update: no BENCH_latest.json — run scripts/bench.sh first" >&2
    exit 1
fi
cp BENCH_latest.json BENCH_baseline.json
echo "bench-update: BENCH_baseline.json updated (commit it)"
