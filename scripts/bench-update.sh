#!/bin/sh
# Promote the last scripts/bench.sh run (BENCH_latest.json) as the
# committed baseline. This is the one sanctioned path for moving the
# regression gate: it refuses to promote from a dirty tree (the
# baseline must describe committed code), prints the full per-cell
# delta table for review, and re-runs the comparison afterwards so a
# malformed promotion can never land silently.
#
#   scripts/bench.sh            # produce BENCH_latest.json
#   scripts/bench-update.sh     # review deltas, promote, re-verify
#
# Review the numbers before committing: a baseline captured during a
# slow run makes the regression gate blind; one captured during an
# unusually fast run makes it cry wolf.
set -eu
cd "$(dirname "$0")/.."

if [ ! -f BENCH_latest.json ]; then
    echo "bench-update: no BENCH_latest.json — run scripts/bench.sh first" >&2
    exit 1
fi

# The baseline documents the performance of a commit, not of a working
# tree. Promoting with uncommitted code changes would pin numbers
# nobody can reproduce. (BENCH_latest.json itself is untracked, and a
# stale BENCH_baseline.json modification is exactly what we replace.)
dirty="$(git status --porcelain 2>/dev/null | grep -v 'BENCH_latest\.json$' | grep -v 'BENCH_baseline\.json$' || true)"
if [ -n "$dirty" ]; then
    echo "bench-update: working tree has uncommitted changes — commit or stash first:" >&2
    echo "$dirty" >&2
    exit 1
fi

echo "bench-update: deltas of the run being promoted vs the old baseline:"
echo
# The old baseline may legitimately fail the gate against the new run
# (that is often why the baseline is being moved), so do not let the
# comparison's exit status abort the promotion.
go run ./cmd/benchcompare -baseline BENCH_baseline.json -latest BENCH_latest.json -deltas || true
echo

cp BENCH_latest.json BENCH_baseline.json

# Re-verify: the promoted baseline compared against the run it came
# from must pass trivially. If it does not, the JSON is malformed or
# the copy went wrong — fail loudly now, not in CI.
go run ./cmd/benchcompare -baseline BENCH_baseline.json -latest BENCH_latest.json >/dev/null
echo "bench-update: BENCH_baseline.json updated and re-verified (commit it)"
