#!/bin/sh
# Run the sagivbench E-series at CI scale and write BENCH_latest.json,
# then compare it against the committed BENCH_baseline.json.
#
#   scripts/bench.sh            # run + compare (exit 1 on regression)
#   BENCH_SCALE=0.1 scripts/bench.sh
#
# Keep baseline and comparison runs on the same machine class (same
# GOMAXPROCS at minimum) to avoid false regressions. To promote a
# reviewed run as the new baseline, use scripts/bench-update.sh.
set -eu
cd "$(dirname "$0")/.."

scale="${BENCH_SCALE:-0.02}"
go run ./cmd/sagivbench -scale "$scale" -json BENCH_latest.json
go run ./cmd/benchcompare -baseline BENCH_baseline.json -latest BENCH_latest.json
