package blinktree_test

import (
	"errors"
	"fmt"
	"log"

	"blinktree"
)

// The basic lifecycle: open, insert, search, delete.
func Example() {
	t, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer t.Close()

	_ = t.Insert(42, 420)
	v, _ := t.Search(42)
	fmt.Println(v)

	if _, err := t.Search(7); errors.Is(err, blinktree.ErrNotFound) {
		fmt.Println("7 not found")
	}
	// Output:
	// 420
	// 7 not found
}

// Upsert and friends are atomic read-modify-write operations: one
// descent, with the present/absent decision taken under the single
// held leaf lock — no racy Search+Insert pairs.
func ExampleTree_Upsert() {
	t, _ := blinktree.Open(blinktree.Options{})
	defer t.Close()

	old, existed, _ := t.Upsert(1, 100)
	fmt.Println(old, existed)
	old, existed, _ = t.Upsert(1, 200)
	fmt.Println(old, existed)

	v, _ := t.Update(1, func(v blinktree.Value) blinktree.Value { return v + 5 })
	fmt.Println(v)

	swapped, _ := t.CompareAndSwap(1, 205, 300)
	fmt.Println(swapped)
	deleted, _ := t.CompareAndDelete(1, 999) // stale expectation
	fmt.Println(deleted)
	// Output:
	// 0 false
	// 100 true
	// 205
	// true
	// false
}

// All, Ascend and Descend are range-over-func iterators (Go 1.23).
func ExampleTree_All() {
	t, _ := blinktree.Open(blinktree.Options{})
	defer t.Close()
	for _, k := range []blinktree.Key{5, 1, 9, 3} {
		_ = t.Insert(k, blinktree.Value(k*10))
	}
	for k, v := range t.All() {
		fmt.Println(k, v)
	}
	// Output:
	// 1 10
	// 3 30
	// 5 50
	// 9 90
}

// Descend walks a window in reverse key order.
func ExampleTree_Descend() {
	t, _ := blinktree.Open(blinktree.Options{})
	defer t.Close()
	for i := 0; i < 10; i++ {
		_ = t.Insert(blinktree.Key(i), blinktree.Value(i))
	}
	for k := range t.Descend(7, 4) {
		fmt.Println(k)
	}
	// Output:
	// 7
	// 6
	// 5
	// 4
}

// GetOrInsert is the cache idiom: one atomic lookup-or-fill.
func ExampleSharded_GetOrInsert() {
	s := blinktree.NewSharded(4)
	defer s.Close()

	v, loaded, _ := s.GetOrInsert(42, 420)
	fmt.Println(v, loaded)
	v, loaded, _ = s.GetOrInsert(42, 999)
	fmt.Println(v, loaded)
	// Output:
	// 420 false
	// 420 true
}

// Range scans pairs in ascending key order through the leaf links.
func ExampleTree_Range() {
	t, _ := blinktree.Open(blinktree.Options{})
	defer t.Close()
	for _, k := range []blinktree.Key{5, 1, 9, 3, 7} {
		_ = t.Insert(k, blinktree.Value(k*100))
	}
	_ = t.Range(3, 7, func(k blinktree.Key, v blinktree.Value) bool {
		fmt.Println(k, v)
		return true
	})
	// Output:
	// 3 300
	// 5 500
	// 7 700
}

// Cursors iterate incrementally and can reposition with Seek.
func ExampleTree_NewCursor() {
	t, _ := blinktree.Open(blinktree.Options{})
	defer t.Close()
	for i := 0; i < 10; i++ {
		_ = t.Insert(blinktree.Key(i*10), blinktree.Value(i))
	}
	c := t.NewCursor(35)
	for i := 0; i < 3; i++ {
		k, _, ok := c.Next()
		if !ok {
			break
		}
		fmt.Println(k)
	}
	// Output:
	// 40
	// 50
	// 60
}

// BulkLoad builds a packed tree from sorted input far faster than
// repeated Insert.
func ExampleTree_BulkLoad() {
	t, _ := blinktree.Open(blinktree.Options{MinPairs: 4})
	defer t.Close()
	i := 0
	_ = t.BulkLoad(func() (blinktree.Key, blinktree.Value, bool) {
		if i >= 1000 {
			return 0, 0, false
		}
		k := blinktree.Key(i * 2)
		i++
		return k, blinktree.Value(k), true
	}, 0) // 0 = fully packed
	fmt.Println(t.Len())
	v, _ := t.Search(500)
	fmt.Println(v)
	// Output:
	// 1000
	// 500
}

// Compact repairs occupancy after heavy deletion — the paper's §5.
func ExampleTree_Compact() {
	t, _ := blinktree.Open(blinktree.Options{MinPairs: 4, Compression: blinktree.CompressionManual})
	defer t.Close()
	for i := 0; i < 1000; i++ {
		_ = t.Insert(blinktree.Key(i), 0)
	}
	for i := 0; i < 1000; i++ {
		if i%10 != 0 {
			_ = t.Delete(blinktree.Key(i))
		}
	}
	_ = t.Compact()
	st, _ := t.Stats()
	fmt.Println("underfull nodes:", st.Occupancy.Underfull)
	fmt.Println("invariants:", t.Check() == nil)
	// Output:
	// underfull nodes: 0
	// invariants: true
}

// A sharded index serves the same Index interface as the single tree,
// partitioning the keyspace across independent trees.
func ExampleNewSharded() {
	s := blinktree.NewSharded(4)
	defer s.Close()

	// Keys spread over the full uint64 range land on different shards.
	stride := ^uint64(0)/8 + 1
	for i := uint64(0); i < 8; i++ {
		_ = s.Insert(blinktree.Key(i*stride), blinktree.Value(i))
	}
	fmt.Println("pairs:", s.Len())

	// Ordered scans cross shard boundaries transparently.
	_ = s.Range(0, blinktree.Key(^uint64(0)), func(k blinktree.Key, v blinktree.Value) bool {
		fmt.Println(v)
		return true
	})

	// Batches group by destination shard and run shard-parallel.
	res := s.ApplyBatch([]blinktree.BatchOp{
		{Kind: blinktree.BatchSearch, Key: blinktree.Key(3 * stride)},
		{Kind: blinktree.BatchDelete, Key: blinktree.Key(7 * stride)},
	})
	fmt.Println("search hit:", res[0].Value, "delete ok:", res[1].Err == nil)
	// Output:
	// pairs: 8
	// 0
	// 1
	// 2
	// 3
	// 4
	// 5
	// 6
	// 7
	// search hit: 3 delete ok: true
}
