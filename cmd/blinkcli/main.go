// Command blinkcli is an interactive shell over a blinktree.Tree —
// handy for poking at the data structure and watching compression work.
// With -dir the tree is durable: mutations are write-ahead logged with
// group commit, and restarting blinkcli with the same -dir recovers
// the data (try: insert, quit, reopen, get).
//
// Usage:
//
//	blinkcli [-k 16] [-path tree.db] [-dir walDir] [-verified]
//	blinkcli -addr host:4640
//
// Commands:
//
//	insert <key> <value>     store a pair
//	get <key>                look a key up
//	delete <key>             remove a key
//	scan <lo> <hi>           list pairs in [lo,hi]
//	len | height | stats     introspection
//	compact                  full compression pass
//	checkpoint               durable snapshot + log truncation (-dir mode)
//	check                    validate invariants
//	root                     Merkle state root (-verified, or a -verified server)
//	help | quit
//
// With -addr the shell speaks to a running blinkserver instead of a
// local tree, and gains the integrity commands of a -verified server:
//
//	prove <key>              fetch the inclusion/exclusion proof, show its shape
//	pin                      pin the server's current root for vget
//	vget <key>               VerifiedGet: lookup whose proof must match the pin
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blinktree"
	"blinktree/client"
)

func main() {
	k := flag.Int("k", 16, "minimum pairs per node (the paper's k)")
	path := flag.String("path", "", "optional file-backed page store")
	dir := flag.String("dir", "", "durability directory: WAL + checkpoints, recovered on open")
	verified := flag.Bool("verified", false, "maintain a Merkle state root (the 'root' command)")
	addr := flag.String("addr", "", "speak to a running blinkserver at this address instead of a local tree")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	if *addr != "" {
		cl, err := client.Dial(*addr, client.Options{Conns: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dial:", err)
			os.Exit(1)
		}
		defer cl.Close()
		fmt.Printf("blinkcli — connected to %s. Type 'help'.\n", *addr)
		for {
			fmt.Print("> ")
			if !sc.Scan() {
				return
			}
			if done := execRemote(cl, strings.Fields(sc.Text())); done {
				return
			}
		}
	}

	tr, err := blinktree.Open(blinktree.Options{
		MinPairs: *k, Path: *path,
		Durable: *dir != "", Dir: *dir,
		Verified: *verified,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer tr.Close()

	fmt.Println("blinkcli — Sagiv B*-tree with overtaking. Type 'help'.")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		if done := exec(tr, strings.Fields(sc.Text())); done {
			return
		}
	}
}

// execRemote runs one command line against a server; true on quit.
func execRemote(cl *client.Client, args []string) bool {
	if len(args) == 0 {
		return false
	}
	ctx := context.Background()
	fail := func(err error) { fmt.Println("error:", err) }
	needKey := func(usage string) (blinktree.Key, bool) {
		if len(args) != 2 {
			fmt.Println("usage:", usage)
			return 0, false
		}
		k, err := parseKey(args[1])
		if err != nil {
			fmt.Println("bad number")
			return 0, false
		}
		return k, true
	}
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("insert <k> <v> | get <k> | delete <k> | scan <lo> <hi> | len | checkpoint | root | prove <k> | pin | vget <k> | quit")
	case "insert":
		if len(args) != 3 {
			fmt.Println("usage: insert <key> <value>")
			return false
		}
		k, err1 := parseKey(args[1])
		v, err2 := strconv.ParseUint(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		if err := cl.Insert(ctx, k, blinktree.Value(v)); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "get":
		k, ok := needKey("get <key>")
		if !ok {
			return false
		}
		v, err := cl.Search(ctx, k)
		switch {
		case errors.Is(err, blinktree.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fail(err)
		default:
			fmt.Println(v)
		}
	case "delete":
		k, ok := needKey("delete <key>")
		if !ok {
			return false
		}
		if err := cl.Delete(ctx, k); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "scan":
		if len(args) != 3 {
			fmt.Println("usage: scan <lo> <hi>")
			return false
		}
		lo, err1 := parseKey(args[1])
		hi, err2 := parseKey(args[2])
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		n := 0
		err := cl.Range(ctx, lo, hi, 256, func(k blinktree.Key, v blinktree.Value) bool {
			fmt.Printf("  %d -> %d\n", k, v)
			n++
			return n < 1000
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("(%d pairs)\n", n)
	case "len":
		n, err := cl.Len(ctx)
		if err != nil {
			fail(err)
		} else {
			fmt.Println(n)
		}
	case "checkpoint":
		if err := cl.Checkpoint(ctx); err != nil {
			fail(err)
		} else {
			fmt.Println("ok: state snapshotted, log truncated")
		}
	case "root":
		root, err := cl.Root(ctx)
		if err != nil {
			fail(err)
		} else {
			fmt.Printf("%x\n", root)
		}
	case "prove":
		k, ok := needKey("prove <key>")
		if !ok {
			return false
		}
		p, err := cl.Prove(ctx, k)
		if err != nil {
			fail(err)
			return false
		}
		v, present, err := p.Lookup(uint64(k))
		if err != nil {
			fail(err)
			return false
		}
		root, err := p.Root()
		if err != nil {
			fail(err)
			return false
		}
		if present {
			fmt.Printf("key %d -> %d (inclusion)\n", k, v)
		} else {
			fmt.Printf("key %d absent (exclusion)\n", k)
		}
		fmt.Printf("  shard %d/%d, bucket %d/%d, %d leaf pairs, %d siblings\n",
			p.ShardIdx, p.Shards, p.Bucket, p.Buckets, len(p.Keys), len(p.Siblings))
		fmt.Printf("  folds to root %x\n", root)
	case "pin":
		root, err := cl.Root(ctx)
		if err != nil {
			fail(err)
			return false
		}
		cl.PinRoot(root)
		fmt.Printf("pinned %x\n", root)
	case "vget":
		k, ok := needKey("vget <key>")
		if !ok {
			return false
		}
		v, present, err := cl.VerifiedGet(ctx, k)
		switch {
		case err != nil:
			fail(err)
		case !present:
			fmt.Println("(proven absent)")
		default:
			fmt.Printf("%d (proof verified against pinned root)\n", v)
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", args[0])
	}
	return false
}

func parseKey(s string) (blinktree.Key, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	return blinktree.Key(v), err
}

// exec runs one command line; it returns true on quit.
func exec(tr *blinktree.Tree, args []string) bool {
	if len(args) == 0 {
		return false
	}
	fail := func(err error) { fmt.Println("error:", err) }
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("insert <k> <v> | get <k> | delete <k> | scan <lo> <hi> | len | height | stats | compact | checkpoint | check | root | quit")
	case "insert":
		if len(args) != 3 {
			fmt.Println("usage: insert <key> <value>")
			return false
		}
		k, err1 := parseKey(args[1])
		v, err2 := strconv.ParseUint(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		if err := tr.Insert(k, blinktree.Value(v)); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "get":
		if len(args) != 2 {
			fmt.Println("usage: get <key>")
			return false
		}
		k, err := parseKey(args[1])
		if err != nil {
			fmt.Println("bad number")
			return false
		}
		v, err := tr.Search(k)
		switch {
		case errors.Is(err, blinktree.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fail(err)
		default:
			fmt.Println(v)
		}
	case "delete":
		if len(args) != 2 {
			fmt.Println("usage: delete <key>")
			return false
		}
		k, err := parseKey(args[1])
		if err != nil {
			fmt.Println("bad number")
			return false
		}
		if err := tr.Delete(k); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "scan":
		if len(args) != 3 {
			fmt.Println("usage: scan <lo> <hi>")
			return false
		}
		lo, err1 := parseKey(args[1])
		hi, err2 := parseKey(args[2])
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		n := 0
		err := tr.Range(lo, hi, func(k blinktree.Key, v blinktree.Value) bool {
			fmt.Printf("  %d -> %d\n", k, v)
			n++
			return n < 1000
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("(%d pairs)\n", n)
	case "len":
		fmt.Println(tr.Len())
	case "height":
		fmt.Println(tr.Height())
	case "stats":
		st, err := tr.Stats()
		if err != nil {
			fail(err)
			return false
		}
		fmt.Printf("pairs=%d nodes=%d height=%d underfull=%d meanFill=%.2f\n",
			st.Occupancy.Pairs, st.Occupancy.Nodes, st.Occupancy.Height,
			st.Occupancy.Underfull, st.Occupancy.MeanFill)
		fmt.Printf("splits=%d linkHops=%d restarts=%d merges=%d redist=%d collapses=%d\n",
			st.Tree.Splits, st.Tree.LinkHops, st.Tree.Restarts, st.Merges, st.Redist, st.Collapses)
		fmt.Printf("insert maxLocks=%d, compressor maxLocks=%d, queue=%d, pages retired/freed=%d/%d\n",
			st.Tree.InsertLocks.MaxHeld, st.CompressorMaxLocks, st.QueueDepth,
			st.Reclaim.Retired, st.Reclaim.Freed)
		if st.WAL.Syncs > 0 || st.WAL.Replayed > 0 {
			fmt.Printf("wal: %d records / %d syncs (mean group %.1f), %d replayed at open, %d checkpoints\n",
				st.WAL.Records, st.WAL.Syncs, st.WAL.MeanGroup(), st.WAL.Replayed, st.Checkpoints)
		}
	case "checkpoint":
		if err := tr.Checkpoint(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok: state snapshotted, log truncated")
		}
	case "compact":
		if err := tr.Compact(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "check":
		if err := tr.Check(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok: all invariants hold")
		}
	case "root":
		if !tr.Verified() {
			fmt.Println("error: not a -verified tree")
			return false
		}
		root, err := tr.Root()
		if err != nil {
			fail(err)
		} else {
			fmt.Printf("%x\n", root)
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", args[0])
	}
	return false
}
