// Command blinkcli is an interactive shell over a blinktree.Tree —
// handy for poking at the data structure and watching compression work.
// With -dir the tree is durable: mutations are write-ahead logged with
// group commit, and restarting blinkcli with the same -dir recovers
// the data (try: insert, quit, reopen, get).
//
// Usage:
//
//	blinkcli [-k 16] [-path tree.db] [-dir walDir]
//
// Commands:
//
//	insert <key> <value>     store a pair
//	get <key>                look a key up
//	delete <key>             remove a key
//	scan <lo> <hi>           list pairs in [lo,hi]
//	len | height | stats     introspection
//	compact                  full compression pass
//	checkpoint               durable snapshot + log truncation (-dir mode)
//	check                    validate invariants
//	help | quit
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"blinktree"
)

func main() {
	k := flag.Int("k", 16, "minimum pairs per node (the paper's k)")
	path := flag.String("path", "", "optional file-backed page store")
	dir := flag.String("dir", "", "durability directory: WAL + checkpoints, recovered on open")
	flag.Parse()

	tr, err := blinktree.Open(blinktree.Options{
		MinPairs: *k, Path: *path,
		Durable: *dir != "", Dir: *dir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer tr.Close()

	fmt.Println("blinkcli — Sagiv B*-tree with overtaking. Type 'help'.")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		if done := exec(tr, strings.Fields(sc.Text())); done {
			return
		}
	}
}

func parseKey(s string) (blinktree.Key, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	return blinktree.Key(v), err
}

// exec runs one command line; it returns true on quit.
func exec(tr *blinktree.Tree, args []string) bool {
	if len(args) == 0 {
		return false
	}
	fail := func(err error) { fmt.Println("error:", err) }
	switch args[0] {
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("insert <k> <v> | get <k> | delete <k> | scan <lo> <hi> | len | height | stats | compact | checkpoint | check | quit")
	case "insert":
		if len(args) != 3 {
			fmt.Println("usage: insert <key> <value>")
			return false
		}
		k, err1 := parseKey(args[1])
		v, err2 := strconv.ParseUint(args[2], 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		if err := tr.Insert(k, blinktree.Value(v)); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "get":
		if len(args) != 2 {
			fmt.Println("usage: get <key>")
			return false
		}
		k, err := parseKey(args[1])
		if err != nil {
			fmt.Println("bad number")
			return false
		}
		v, err := tr.Search(k)
		switch {
		case errors.Is(err, blinktree.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fail(err)
		default:
			fmt.Println(v)
		}
	case "delete":
		if len(args) != 2 {
			fmt.Println("usage: delete <key>")
			return false
		}
		k, err := parseKey(args[1])
		if err != nil {
			fmt.Println("bad number")
			return false
		}
		if err := tr.Delete(k); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "scan":
		if len(args) != 3 {
			fmt.Println("usage: scan <lo> <hi>")
			return false
		}
		lo, err1 := parseKey(args[1])
		hi, err2 := parseKey(args[2])
		if err1 != nil || err2 != nil {
			fmt.Println("bad number")
			return false
		}
		n := 0
		err := tr.Range(lo, hi, func(k blinktree.Key, v blinktree.Value) bool {
			fmt.Printf("  %d -> %d\n", k, v)
			n++
			return n < 1000
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("(%d pairs)\n", n)
	case "len":
		fmt.Println(tr.Len())
	case "height":
		fmt.Println(tr.Height())
	case "stats":
		st, err := tr.Stats()
		if err != nil {
			fail(err)
			return false
		}
		fmt.Printf("pairs=%d nodes=%d height=%d underfull=%d meanFill=%.2f\n",
			st.Occupancy.Pairs, st.Occupancy.Nodes, st.Occupancy.Height,
			st.Occupancy.Underfull, st.Occupancy.MeanFill)
		fmt.Printf("splits=%d linkHops=%d restarts=%d merges=%d redist=%d collapses=%d\n",
			st.Tree.Splits, st.Tree.LinkHops, st.Tree.Restarts, st.Merges, st.Redist, st.Collapses)
		fmt.Printf("insert maxLocks=%d, compressor maxLocks=%d, queue=%d, pages retired/freed=%d/%d\n",
			st.Tree.InsertLocks.MaxHeld, st.CompressorMaxLocks, st.QueueDepth,
			st.Reclaim.Retired, st.Reclaim.Freed)
		if st.WAL.Syncs > 0 || st.WAL.Replayed > 0 {
			fmt.Printf("wal: %d records / %d syncs (mean group %.1f), %d replayed at open, %d checkpoints\n",
				st.WAL.Records, st.WAL.Syncs, st.WAL.MeanGroup(), st.WAL.Replayed, st.Checkpoints)
		}
	case "checkpoint":
		if err := tr.Checkpoint(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok: state snapshotted, log truncated")
		}
	case "compact":
		if err := tr.Compact(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok")
		}
	case "check":
		if err := tr.Check(); err != nil {
			fail(err)
		} else {
			fmt.Println("ok: all invariants hold")
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", args[0])
	}
	return false
}
