// Command blinkstress hammers a Sagiv tree — or a sharded fleet of
// them — with a concurrent mix of searches, insertions, deletions and
// background compression for a fixed duration, then validates every
// structural invariant: an executable form of Theorems 1 and 2. A
// non-zero exit means a bug.
//
// Usage:
//
//	blinkstress [-duration 10s] [-workers 8] [-compressors 2]
//	            [-k 4] [-keys 100000] [-mix balanced] [-shards 1]
//	            [-durable] [-dir path] [-net] [-addr host:port] [-repl]
//	            [-disk] [-cache-ratio 0.10]
//
// With -shards N > 1 the keyspace is range-partitioned across N
// independent trees (each with its own compression workers) and the
// stress keys are spread over the full uint64 range so every shard
// receives traffic; the report then includes per-shard balance.
//
// With -durable the workload runs against a WAL-backed index in -dir
// (a temp dir by default): workers mutate disjoint key sets while
// recording every acknowledged operation in an oracle, checkpoints run
// concurrently, and halfway through the run the log committer is
// killed at a random torn-write offset. The index is then recovered
// from disk and every surviving key is checked against the oracle —
// acknowledged operations must all be present, and nothing may appear
// that was never issued. The recovered index then takes more traffic
// and a final invariant check.
//
// With -net the stress runs over TCP: blinkstress spawns a real
// server process (itself, re-executed in a hidden serve mode, so the
// parent can kill -9 it), drives it through the client package with
// per-worker exact oracles, and verifies every read against the
// oracle plus a final full-scan phantom check. -net -durable adds the
// crash: the server process is SIGKILLed mid-run, restarted on the
// same directory, and recovery is verified over the wire — every
// acknowledged write present, zero phantoms. -addr targets an
// already-running server instead of spawning one (volatile mode
// only).
//
// With -disk the stress runs the full disk-native campaign: a real
// spawned server process serving through the bounded buffer pool over
// page files, with the pool budget set to -cache-ratio of the expected
// dataset (default 10%, so ~90% of pages live only on disk). Workers
// drive an exact per-key oracle plus range scans (read-ahead), the
// server is kill -9'd mid-run, restarted on the same directory, and
// recovery is verified over the wire; a final local reopen checks the
// structural invariants and asserts the pool actually churned
// (evictions > 0). See cmd/blinkstress/disk.go for the precise claim.
//
// With -repl the stress exercises asynchronous replication end to
// end: a durable primary and a durable follower (both real spawned
// processes), an exact oracle, a convergence barrier with exact
// verification of the follower, then a kill -9 of the primary, a
// promotion of the follower over the wire, and per-key
// prefix-consistency verification of the promoted follower (see
// cmd/blinkstress/repl.go for the precise claim).
//
// With -cluster the stress exercises live shard migration end to end:
// two durable cluster members (real spawned processes on fixed ports),
// a cluster-aware client with an exact per-worker oracle, half the
// ranges migrated from one member to the other while writes flow, a
// kill -9 of the migration target mid-stream and later of the source
// mid-stream — each followed by a restart on the same address and
// directory and a re-triggered migration — then a settle pass and full
// verification: every acknowledged write present on the member the map
// names, zero phantoms anywhere (see cmd/blinkstress/cluster.go for
// the precise claim).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
	"blinktree/internal/base"
	"blinktree/internal/shard"
	"blinktree/internal/workload"
)

func main() {
	dur := flag.Duration("duration", 10*time.Second, "stress duration")
	workers := flag.Int("workers", 8, "mutator goroutines")
	compressors := flag.Int("compressors", 2, "background compression workers per tree")
	k := flag.Int("k", 4, "minimum pairs per node")
	keys := flag.Uint64("keys", 100000, "key population size")
	mixName := flag.String("mix", "balanced", "read-only|read-mostly|balanced|insert-heavy|delete-heavy|write-only|upsert-heavy|rmw")
	shards := flag.Int("shards", 1, "range partitions (1 = single tree)")
	durable := flag.Bool("durable", false, "WAL-backed run with mid-run kill, recovery and oracle verification")
	dirFlag := flag.String("dir", "", "durability directory for -durable (default: a temp dir)")
	netMode := flag.Bool("net", false, "stress a spawned blinkserver over TCP (with -durable: kill -9 + recovery)")
	addrFlag := flag.String("addr", "", "with -net: target this already-running server instead of spawning one")
	netServe := flag.Bool("net-serve", false, "internal: run as the spawned server child of a -net parent")
	replMode := flag.Bool("repl", false, "primary + follower pair: converge, kill -9 the primary, promote, verify")
	followFlag := flag.String("follow", "", "internal: with -net-serve, follow this primary address")
	diskMode := flag.Bool("disk", false, "disk-native campaign: buffer-pool-backed server, exact oracle, kill -9 + recovery")
	cacheRatio := flag.Float64("cache-ratio", 0.10, "with -disk: pool budget as a fraction of the expected dataset")
	diskNative := flag.Bool("disk-native", false, "internal: with -net-serve, serve through a buffer pool")
	cacheBytes := flag.Int64("cache-bytes", 0, "internal: with -net-serve -disk-native, pool budget per shard")
	pageSize := flag.Int("page-size", 0, "internal: with -net-serve -disk-native, page size in bytes")
	clusterMode := flag.Bool("cluster", false, "two-node cluster: live range migration under load, kill -9 of either node mid-migration, exact oracle")
	auditMode := flag.Bool("audit", false, "verified replication audit: tamper with the follower's checkpoint and WAL (CRCs fixed), every injection must be detected, zero false alarms")
	verifiedFlag := flag.Bool("verified", false, "internal: with -net-serve, maintain a Merkle state root")
	serveAddr := flag.String("serve-addr", "", "internal: with -net-serve, explicit TCP listen address")
	clusterAdvertise := flag.String("cluster-advertise", "", "internal: with -net-serve, serve as a cluster member at this address")
	clusterInitial := flag.String("cluster-initial", "", "internal: with -net-serve, initial owner of every range")
	flag.Parse()

	if *netServe {
		runNetServe(*shards, *k, *compressors, *durable, *dirFlag, *followFlag, *diskNative, *cacheBytes, *pageSize, *serveAddr, *clusterAdvertise, *clusterInitial, *verifiedFlag)
		return
	}
	if *auditMode {
		runAudit(*shards, *k, *compressors, *dirFlag)
		return
	}
	if *clusterMode {
		runCluster(*dur, *workers, *shards, *k, *compressors, *dirFlag)
		return
	}
	if *diskMode {
		runDisk(*dur, *workers, *shards, *k, *compressors, *dirFlag, *cacheRatio)
		return
	}
	if *replMode {
		runRepl(*dur, *workers, *shards, *k, *compressors, *dirFlag)
		return
	}
	if *netMode {
		runNet(*dur, *workers, *shards, *k, *compressors, *durable, *dirFlag, *addrFlag)
		return
	}
	if *durable {
		runDurable(*dur, *workers, *shards, *k, *compressors, *dirFlag)
		return
	}

	mixes := map[string]workload.Mix{
		"read-only":    workload.ReadOnly,
		"read-mostly":  workload.ReadMostly,
		"balanced":     workload.Balanced,
		"insert-heavy": workload.InsertHeavy,
		"delete-heavy": workload.DeleteHeavy,
		"write-only":   workload.WriteOnly,
		"upsert-heavy": workload.UpsertHeavy,
		"rmw":          workload.RMW,
	}
	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: need at least 1\n", *shards)
		os.Exit(2)
	}

	opts := blinktree.Options{
		MinPairs:          *k,
		CompressorWorkers: *compressors,
	}
	var tr blinktree.Index
	var sh *blinktree.Sharded
	if *shards > 1 {
		s, err := blinktree.OpenSharded(*shards, opts)
		if err != nil {
			fatal("open", err)
		}
		tr, sh = s, s
	} else {
		t, err := blinktree.Open(opts)
		if err != nil {
			fatal("open", err)
		}
		tr = t
	}
	defer tr.Close()

	// Stretch the key population over the full uint64 range so all
	// shards see traffic (harmless for the single tree).
	stride := ^uint64(0) / *keys + 1
	dist := workload.Stretch{Base: workload.Uniform{N: *keys}, Stride: stride}

	// Preload half the key population so deletes find targets
	// immediately.
	for i := uint64(0); i < *keys; i += 2 {
		if err := tr.Insert(blinktree.Key(i*stride), blinktree.Value(i*stride)); err != nil {
			fatal("preload", err)
		}
	}

	fmt.Printf("blinkstress: %d workers, %d compressors, mix=%s, k=%d, keys=%d, shards=%d, %v\n",
		*workers, *compressors, *mixName, *k, *keys, *shards, *dur)

	var ops, failures atomic.Uint64
	var kindOps [workload.NumOpKinds]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(int64(w)*977, dist, mix)
			if err != nil {
				failures.Add(1)
				fmt.Fprintln(os.Stderr, "generator:", err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				if _, err := workload.Apply(tr, op); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d: %v on %+v\n", w, err, op)
					return
				}
				ops.Add(1)
				kindOps[op.Kind].Add(1)
			}
		}(w)
	}
	// Periodic garbage collection, as a long-running deployment would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := tr.CollectGarbage(); err != nil {
					failures.Add(1)
					fmt.Fprintln(os.Stderr, "collect:", err)
					return
				}
			}
		}
	}()

	// Watchdog: ops must keep flowing; a stall means deadlock/livelock.
	deadline := time.After(*dur)
	lastOps := uint64(0)
	stalled := false
	tick := time.NewTicker(2 * time.Second)
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-tick.C:
			cur := ops.Load()
			if cur == lastOps && failures.Load() == 0 {
				stalled = true
				break loop
			}
			lastOps = cur
		}
	}
	tick.Stop()
	close(stop)
	wg.Wait()

	if stalled {
		fatal("watchdog", fmt.Errorf("no progress for 2s — possible deadlock"))
	}
	if failures.Load() > 0 {
		fatal("workload", fmt.Errorf("%d operation failures", failures.Load()))
	}

	// Settle and validate.
	if err := tr.Compact(); err != nil {
		fatal("compact", err)
	}
	if err := tr.Check(); err != nil {
		fatal("check", err)
	}
	st, err := tr.Stats()
	if err != nil {
		fatal("stats", err)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 || st.Tree.DeleteLocks.MaxHeld > 1 || st.Tree.CondLocks.MaxHeld > 1 {
		fatal("locks", fmt.Errorf("update footprint exceeded 1: %+v", st.Tree))
	}
	if st.CompressorMaxLocks > 3 {
		fatal("locks", fmt.Errorf("compressor footprint %d > 3", st.CompressorMaxLocks))
	}

	rate := float64(ops.Load()) / dur.Seconds()
	fmt.Printf("PASS: %d ops (%.0f ops/s), %d restarts, %d link hops, %d merges, %d redistributions\n",
		ops.Load(), rate, st.Tree.Restarts, st.Tree.LinkHops, st.Merges, st.Redist)
	fmt.Printf("      occupancy: %d nodes, height %d, %d underfull, mean fill %.2f; pages freed %d\n",
		st.Occupancy.Nodes, st.Occupancy.Height, st.Occupancy.Underfull,
		st.Occupancy.MeanFill, st.Reclaim.Freed)
	fmt.Println("      per-op-kind throughput:")
	for kind := workload.OpKind(0); kind < workload.NumOpKinds; kind++ {
		n := kindOps[kind].Load()
		if n == 0 {
			continue
		}
		fmt.Printf("        %-7s %12d ops  %12.0f ops/s\n", kind, n, float64(n)/dur.Seconds())
	}
	if sh != nil {
		fmt.Println("      shard balance (routed ops / pairs / height):")
		for _, ss := range sh.ShardStats() {
			routed := ss.Searches + ss.Inserts + ss.Deletes + ss.Upserts +
				ss.Updates + ss.Cas + ss.Scans
			fmt.Printf("        shard %2d: %9d ops  %7d pairs  height %d\n",
				ss.Shard, routed, ss.Len, ss.Height)
		}
	}
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "FAIL (%s): %v\n", what, err)
	os.Exit(1)
}

// runDurable is the -durable mode: a WAL-backed mixed workload with an
// oracle, a mid-run committer kill at a random torn-write offset,
// recovery, and verification that recovery is prefix-consistent —
// every acknowledged op present, no phantoms.
func runDurable(dur time.Duration, workers, shards, k, compressors int, dir string) {
	if shards < 1 {
		fatal("durable", fmt.Errorf("-shards %d: need at least 1", shards))
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-wal")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	opts := shard.Options{MinPairs: k, CompressorWorkers: compressors, Durable: true, Dir: dir}
	open := func() *shard.Router {
		r, err := shard.NewRouter(shards, opts)
		if err != nil {
			fatal("open", err)
		}
		return r
	}
	r := open()
	fmt.Printf("blinkstress durable: %d workers, shards=%d, k=%d, dir=%s, %v\n",
		workers, shards, k, dir, dur)

	// Each worker owns a disjoint key slice, so per-key histories are
	// sequential and the oracle is exact: lastAcked is the state after
	// the newest acknowledged op; attempt is the single in-flight op a
	// crash may or may not have persisted.
	const keysPer = 512
	type state struct {
		val     base.Value
		present bool
	}
	lastAcked := make([]map[uint64]state, workers)
	attempt := make([]map[uint64]state, workers)
	stride := ^uint64(0)/uint64(workers*keysPer) + 1
	key := func(raw uint64) base.Key { return base.Key(raw * stride) }

	var ops atomic.Uint64
	var killed atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lastAcked[w] = make(map[uint64]state)
		attempt[w] = make(map[uint64]state)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
				cur := lastAcked[w][raw]
				var next state
				var err error
				switch {
				case cur.present && rng.Intn(4) == 0:
					next = state{}
					err = r.Delete(key(raw))
				case cur.present && rng.Intn(3) == 0:
					next = state{val: cur.val + 1, present: true}
					_, err = r.Update(key(raw), func(v base.Value) base.Value { return v + 1 })
				default:
					next = state{val: base.Value(rng.Uint64() | 1), present: true}
					_, _, err = r.Upsert(key(raw), next.val)
				}
				if err != nil {
					if !killed.Load() {
						fatal("durable workload", err)
					}
					attempt[w][raw] = next
					return
				}
				lastAcked[w][raw] = next
				ops.Add(1)
			}
		}(w)
	}
	// Checkpoint under load: the fuzzy snapshot + idempotent log suffix
	// must hold up while the kill can land at any moment.
	ckpts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		period := dur / 8
		if period < 100*time.Millisecond {
			period = 100 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := r.Checkpoint(); err != nil {
					if !killed.Load() {
						fatal("checkpoint", err)
					}
					return
				}
				ckpts++
			}
		}
	}()

	time.Sleep(dur / 2)
	partial := rand.Intn(64)
	killed.Store(true)
	r.CrashWAL(partial)
	close(stop)
	wg.Wait()
	ackedOps := ops.Load()
	fmt.Printf("      killed committer mid-group (torn write: %d bytes) after %d acked ops, %d checkpoints\n",
		partial, ackedOps, ckpts)
	if pre, err := r.Stats(); err == nil {
		fmt.Printf("      pre-crash wal: %d records / %d syncs (mean group %.1f, max %d)\n",
			pre.WAL.Records, pre.WAL.Syncs, pre.WAL.MeanGroup(), pre.WAL.MaxGroup)
	}

	// Recover from disk and verify against the oracle.
	r2 := open()
	defer r2.Close()
	verified := 0
	for w := 0; w < workers; w++ {
		for raw, want := range lastAcked[w] {
			v, err := r2.Search(key(raw))
			if err != nil && !errors.Is(err, blinktree.ErrNotFound) {
				fatal("verify", err)
			}
			got := state{val: v, present: err == nil}
			if got == want {
				verified++
				continue
			}
			if alt, ok := attempt[w][raw]; ok && got == alt {
				verified++ // the in-flight op's record survived the tear
				continue
			}
			fatal("verify", fmt.Errorf("key %d: recovered %+v, acked %+v, attempt %+v",
				raw, got, want, attempt[w][raw]))
		}
	}
	// No phantoms: every recovered pair must map back to an oracle entry.
	phantoms := 0
	err := r2.Range(0, base.Key(^uint64(0)), func(kk base.Key, v base.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / keysPer
		if w < 0 || w >= workers || uint64(kk)%stride != 0 {
			phantoms++
			return false
		}
		got := state{val: v, present: true}
		if got != lastAcked[w][raw] {
			if alt, ok := attempt[w][raw]; !ok || got != alt {
				phantoms++
				return false
			}
		}
		return true
	})
	if err != nil {
		fatal("verify scan", err)
	}
	if phantoms > 0 {
		fatal("verify", fmt.Errorf("%d phantom pairs survived recovery", phantoms))
	}

	// The recovered index must be fully live: more traffic, then the
	// structural invariants.
	for i := uint64(0); i < 5000; i++ {
		raw := i % uint64(workers*keysPer)
		if _, _, err := r2.Upsert(key(raw), base.Value(i)); err != nil {
			fatal("post-recovery traffic", err)
		}
	}
	if err := r2.Checkpoint(); err != nil {
		fatal("post-recovery checkpoint", err)
	}
	if err := r2.Check(); err != nil {
		fatal("post-recovery check", err)
	}
	st, err := r2.Stats()
	if err != nil {
		fatal("stats", err)
	}
	fmt.Printf("PASS: %d oracle keys verified, 0 phantoms; recovery replayed %d records\n",
		verified, st.WAL.Replayed)
	fmt.Printf("      wal: %d records / %d syncs (mean group %.1f, max %d), %d bytes, %d rotations, %d checkpoints\n",
		st.WAL.Records, st.WAL.Syncs, st.WAL.MeanGroup(), st.WAL.MaxGroup,
		st.WAL.Bytes, st.WAL.Rotations, st.Checkpoints)
}
