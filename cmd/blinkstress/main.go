// Command blinkstress hammers a Sagiv tree — or a sharded fleet of
// them — with a concurrent mix of searches, insertions, deletions and
// background compression for a fixed duration, then validates every
// structural invariant: an executable form of Theorems 1 and 2. A
// non-zero exit means a bug.
//
// Usage:
//
//	blinkstress [-duration 10s] [-workers 8] [-compressors 2]
//	            [-k 4] [-keys 100000] [-mix balanced] [-shards 1]
//
// With -shards N > 1 the keyspace is range-partitioned across N
// independent trees (each with its own compression workers) and the
// stress keys are spread over the full uint64 range so every shard
// receives traffic; the report then includes per-shard balance.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
	"blinktree/internal/workload"
)

func main() {
	dur := flag.Duration("duration", 10*time.Second, "stress duration")
	workers := flag.Int("workers", 8, "mutator goroutines")
	compressors := flag.Int("compressors", 2, "background compression workers per tree")
	k := flag.Int("k", 4, "minimum pairs per node")
	keys := flag.Uint64("keys", 100000, "key population size")
	mixName := flag.String("mix", "balanced", "read-only|read-mostly|balanced|insert-heavy|delete-heavy|write-only|upsert-heavy|rmw")
	shards := flag.Int("shards", 1, "range partitions (1 = single tree)")
	flag.Parse()

	mixes := map[string]workload.Mix{
		"read-only":    workload.ReadOnly,
		"read-mostly":  workload.ReadMostly,
		"balanced":     workload.Balanced,
		"insert-heavy": workload.InsertHeavy,
		"delete-heavy": workload.DeleteHeavy,
		"write-only":   workload.WriteOnly,
		"upsert-heavy": workload.UpsertHeavy,
		"rmw":          workload.RMW,
	}
	mix, ok := mixes[*mixName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mixName)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards %d: need at least 1\n", *shards)
		os.Exit(2)
	}

	opts := blinktree.Options{
		MinPairs:          *k,
		CompressorWorkers: *compressors,
	}
	var tr blinktree.Index
	var sh *blinktree.Sharded
	if *shards > 1 {
		s, err := blinktree.OpenSharded(*shards, opts)
		if err != nil {
			fatal("open", err)
		}
		tr, sh = s, s
	} else {
		t, err := blinktree.Open(opts)
		if err != nil {
			fatal("open", err)
		}
		tr = t
	}
	defer tr.Close()

	// Stretch the key population over the full uint64 range so all
	// shards see traffic (harmless for the single tree).
	stride := ^uint64(0) / *keys + 1
	dist := workload.Stretch{Base: workload.Uniform{N: *keys}, Stride: stride}

	// Preload half the key population so deletes find targets
	// immediately.
	for i := uint64(0); i < *keys; i += 2 {
		if err := tr.Insert(blinktree.Key(i*stride), blinktree.Value(i*stride)); err != nil {
			fatal("preload", err)
		}
	}

	fmt.Printf("blinkstress: %d workers, %d compressors, mix=%s, k=%d, keys=%d, shards=%d, %v\n",
		*workers, *compressors, *mixName, *k, *keys, *shards, *dur)

	var ops, failures atomic.Uint64
	var kindOps [workload.NumOpKinds]atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(int64(w)*977, dist, mix)
			if err != nil {
				failures.Add(1)
				fmt.Fprintln(os.Stderr, "generator:", err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				if _, err := workload.Apply(tr, op); err != nil {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "worker %d: %v on %+v\n", w, err, op)
					return
				}
				ops.Add(1)
				kindOps[op.Kind].Add(1)
			}
		}(w)
	}
	// Periodic garbage collection, as a long-running deployment would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := tr.CollectGarbage(); err != nil {
					failures.Add(1)
					fmt.Fprintln(os.Stderr, "collect:", err)
					return
				}
			}
		}
	}()

	// Watchdog: ops must keep flowing; a stall means deadlock/livelock.
	deadline := time.After(*dur)
	lastOps := uint64(0)
	stalled := false
	tick := time.NewTicker(2 * time.Second)
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-tick.C:
			cur := ops.Load()
			if cur == lastOps && failures.Load() == 0 {
				stalled = true
				break loop
			}
			lastOps = cur
		}
	}
	tick.Stop()
	close(stop)
	wg.Wait()

	if stalled {
		fatal("watchdog", fmt.Errorf("no progress for 2s — possible deadlock"))
	}
	if failures.Load() > 0 {
		fatal("workload", fmt.Errorf("%d operation failures", failures.Load()))
	}

	// Settle and validate.
	if err := tr.Compact(); err != nil {
		fatal("compact", err)
	}
	if err := tr.Check(); err != nil {
		fatal("check", err)
	}
	st, err := tr.Stats()
	if err != nil {
		fatal("stats", err)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 || st.Tree.DeleteLocks.MaxHeld > 1 || st.Tree.CondLocks.MaxHeld > 1 {
		fatal("locks", fmt.Errorf("update footprint exceeded 1: %+v", st.Tree))
	}
	if st.CompressorMaxLocks > 3 {
		fatal("locks", fmt.Errorf("compressor footprint %d > 3", st.CompressorMaxLocks))
	}

	rate := float64(ops.Load()) / dur.Seconds()
	fmt.Printf("PASS: %d ops (%.0f ops/s), %d restarts, %d link hops, %d merges, %d redistributions\n",
		ops.Load(), rate, st.Tree.Restarts, st.Tree.LinkHops, st.Merges, st.Redist)
	fmt.Printf("      occupancy: %d nodes, height %d, %d underfull, mean fill %.2f; pages freed %d\n",
		st.Occupancy.Nodes, st.Occupancy.Height, st.Occupancy.Underfull,
		st.Occupancy.MeanFill, st.Reclaim.Freed)
	fmt.Println("      per-op-kind throughput:")
	for kind := workload.OpKind(0); kind < workload.NumOpKinds; kind++ {
		n := kindOps[kind].Load()
		if n == 0 {
			continue
		}
		fmt.Printf("        %-7s %12d ops  %12.0f ops/s\n", kind, n, float64(n)/dur.Seconds())
	}
	if sh != nil {
		fmt.Println("      shard balance (routed ops / pairs / height):")
		for _, ss := range sh.ShardStats() {
			routed := ss.Searches + ss.Inserts + ss.Deletes + ss.Upserts +
				ss.Updates + ss.Cas + ss.Scans
			fmt.Printf("        shard %2d: %9d ops  %7d pairs  height %d\n",
				ss.Shard, routed, ss.Len, ss.Height)
		}
	}
}

func fatal(what string, err error) {
	fmt.Fprintf(os.Stderr, "FAIL (%s): %v\n", what, err)
	os.Exit(1)
}
